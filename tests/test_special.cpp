// Tests for the incomplete gamma functions, the modified Bessel functions
// I_0/I_1 (Rician support) and K_0/K_1 (double-Rayleigh support), and the
// Kolmogorov distribution.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/special/bessel_i.hpp"
#include "rfade/special/bessel_k.hpp"
#include "rfade/special/gamma.hpp"
#include "rfade/special/kolmogorov.hpp"
#include "rfade/support/error.hpp"

namespace {

using rfade::special::chi_square_survival;
using rfade::special::kolmogorov_p_value;
using rfade::special::kolmogorov_survival;
using rfade::special::regularized_gamma_p;
using rfade::special::regularized_gamma_q;

TEST(Gamma, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(1.0, 0.0), 1.0);
}

TEST(Gamma, PPlusQEqualsOne) {
  for (const double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (const double x : {0.1, 0.9, 2.0, 5.0, 20.0, 80.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(Gamma, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^{-x}.
  for (const double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-13);
  }
}

TEST(Gamma, ErfSpecialCase) {
  // P(1/2, x) = erf(sqrt(x)).
  for (const double x : {0.2, 0.5, 1.0, 4.0}) {
    EXPECT_NEAR(regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-12);
  }
}

TEST(Gamma, Monotone) {
  double previous = -1.0;
  for (double x = 0.0; x < 20.0; x += 0.25) {
    const double p = regularized_gamma_p(3.0, x);
    EXPECT_GE(p, previous);
    previous = p;
  }
}

TEST(Gamma, RejectsBadArguments) {
  EXPECT_THROW((void)regularized_gamma_p(0.0, 1.0), rfade::ContractViolation);
  EXPECT_THROW((void)regularized_gamma_p(-1.0, 1.0), rfade::ContractViolation);
  EXPECT_THROW((void)regularized_gamma_q(1.0, -1.0), rfade::ContractViolation);
}

TEST(ChiSquare, SurvivalKnownValues) {
  // dof = 2: survival = e^{-x/2}.
  for (const double x : {0.5, 2.0, 6.0}) {
    EXPECT_NEAR(chi_square_survival(x, 2.0), std::exp(-0.5 * x), 1e-12);
  }
  // Median of chi^2(1) is ~0.4549.
  EXPECT_NEAR(chi_square_survival(0.45493642311957, 1.0), 0.5, 1e-9);
}

TEST(ChiSquare, TailsBehave) {
  EXPECT_NEAR(chi_square_survival(0.0, 5.0), 1.0, 1e-14);
  EXPECT_LT(chi_square_survival(100.0, 5.0), 1e-15);
}

TEST(Kolmogorov, LimitsAndKnownValue) {
  EXPECT_DOUBLE_EQ(kolmogorov_survival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(kolmogorov_survival(-1.0), 1.0);
  EXPECT_LT(kolmogorov_survival(3.0), 1e-7);
  // Q_KS(1) = 2 (e^{-2} - e^{-8} + e^{-18} - ...) ~ 0.26999967.
  EXPECT_NEAR(kolmogorov_survival(1.0), 0.26999967, 1e-7);
}

TEST(Kolmogorov, Monotone) {
  double previous = 2.0;
  for (double lambda = 0.05; lambda < 3.0; lambda += 0.05) {
    const double q = kolmogorov_survival(lambda);
    // Monotone up to the ~1e-13 cancellation noise of the alternating
    // series near its lambda -> 0 plateau.
    EXPECT_LE(q, previous + 1e-12);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
    previous = q;
  }
}

TEST(BesselI, MatchesStandardLibrary) {
  // Spans the series (<= 30) and asymptotic (> 30) regimes; libstdc++'s
  // std::cyl_bessel_i is the reference.
  for (const double x : {0.0, 0.05, 0.5, 1.0, 4.0, 12.0, 25.0, 29.9, 30.1,
                         45.0, 100.0, 400.0}) {
    const double ref0 = std::cyl_bessel_i(0.0, x);
    const double ref1 = std::cyl_bessel_i(1.0, x);
    EXPECT_NEAR(rfade::special::bessel_i0(x), ref0, 1e-12 * ref0 + 1e-14)
        << "x=" << x;
    EXPECT_NEAR(rfade::special::bessel_i1(x), ref1,
                1e-12 * std::abs(ref1) + 1e-14)
        << "x=" << x;
  }
}

TEST(BesselI, ScaledVariantsAndParity) {
  for (const double x : {0.2, 3.0, 17.0, 29.0, 60.0, 250.0}) {
    // Scaled agrees with e^{-x} I(x) where the unscaled value is finite.
    EXPECT_NEAR(rfade::special::bessel_i0e(x),
                std::exp(-x) * rfade::special::bessel_i0(x),
                1e-12 * rfade::special::bessel_i0e(x))
        << "x=" << x;
    EXPECT_NEAR(rfade::special::bessel_i1e(x),
                std::exp(-x) * rfade::special::bessel_i1(x),
                1e-12 * std::abs(rfade::special::bessel_i1e(x)))
        << "x=" << x;
    // I0 even, I1 odd.
    EXPECT_DOUBLE_EQ(rfade::special::bessel_i0(-x),
                     rfade::special::bessel_i0(x));
    EXPECT_DOUBLE_EQ(rfade::special::bessel_i1(-x),
                     -rfade::special::bessel_i1(x));
  }
  // The scaled forms stay finite far past the e^709 overflow of I itself.
  EXPECT_GT(rfade::special::bessel_i0e(5000.0), 0.0);
  EXPECT_TRUE(std::isfinite(rfade::special::bessel_i0e(5000.0)));
  EXPECT_DOUBLE_EQ(rfade::special::bessel_i0(0.0), 1.0);
  EXPECT_DOUBLE_EQ(rfade::special::bessel_i1(0.0), 0.0);
}

TEST(Kolmogorov, PValueScalesWithSampleSize) {
  // Same statistic, more samples => more significant (smaller p).
  const double d = 0.05;
  const double p_small = kolmogorov_p_value(d, 100.0);
  const double p_large = kolmogorov_p_value(d, 10000.0);
  EXPECT_GT(p_small, p_large);
  EXPECT_THROW((void)kolmogorov_p_value(-0.1, 10.0), rfade::ContractViolation);
  EXPECT_THROW((void)kolmogorov_p_value(0.1, 0.0), rfade::ContractViolation);
}

TEST(BesselK, MatchesStandardLibrary) {
  // Both regimes of the implementation: the DLMF log series (x <= 2) and
  // the trapezoidal integral representation beyond, including the
  // switchover neighbourhood.
  for (const double x : {1e-3, 0.01, 0.1, 0.5, 1.0, 1.9, 2.0, 2.1, 3.0, 5.0,
                         10.0, 30.0, 100.0, 500.0}) {
    const double k0_ref = std::cyl_bessel_k(0.0, x);
    const double k1_ref = std::cyl_bessel_k(1.0, x);
    EXPECT_NEAR(rfade::special::bessel_k0(x), k0_ref,
                1e-12 * std::abs(k0_ref))
        << "K0 at x=" << x;
    EXPECT_NEAR(rfade::special::bessel_k1(x), k1_ref,
                1e-12 * std::abs(k1_ref))
        << "K1 at x=" << x;
  }
}

TEST(BesselK, ScaledVariantsConsistent) {
  for (const double x : {0.2, 1.5, 3.0, 20.0, 200.0}) {
    EXPECT_NEAR(rfade::special::bessel_k0e(x),
                std::exp(x) * rfade::special::bessel_k0(x),
                1e-11 * rfade::special::bessel_k0e(x));
    EXPECT_NEAR(rfade::special::bessel_k1e(x),
                std::exp(x) * rfade::special::bessel_k1(x),
                1e-11 * rfade::special::bessel_k1e(x));
  }
  // Far beyond exp underflow the scaled forms must stay finite and match
  // the leading asymptotic sqrt(pi / 2x).
  const double x = 1e4;
  const double leading = std::sqrt(0.5 * M_PI / x);
  EXPECT_NEAR(rfade::special::bessel_k0e(x), leading, 1e-4 * leading);
  EXPECT_GT(rfade::special::bessel_k1e(x), rfade::special::bessel_k0e(x));
}

TEST(BesselK, LimitingBehaviour) {
  // x K1(x) -> 1 as x -> 0 (the double-Rayleigh CDF hinges on this), and
  // K0 diverges logarithmically: K0(x) + ln(x/2) -> -gamma.
  EXPECT_NEAR(1e-8 * rfade::special::bessel_k1(1e-8), 1.0, 1e-12);
  EXPECT_NEAR(rfade::special::bessel_k0(1e-8) + std::log(0.5e-8),
              -0.5772156649015329, 1e-10);
  EXPECT_THROW((void)rfade::special::bessel_k0(0.0),
               rfade::ContractViolation);
  EXPECT_THROW((void)rfade::special::bessel_k1(-1.0),
               rfade::ContractViolation);
  EXPECT_THROW((void)rfade::special::bessel_k0e(0.0),
               rfade::ContractViolation);
  EXPECT_THROW((void)rfade::special::bessel_k1e(-2.0),
               rfade::ContractViolation);
}

}  // namespace
