// Tests for the float32 emission pipeline (core::Precision::Float32):
// keyed/cursor/seek bit-identity on all three stream backends (the float
// path is its own bit-reference), float-vs-double agreement of the
// colored covariance through the narrowed coloring operator (including a
// forced-PSD target), KS acceptance of the Rayleigh/Rician/TWDP envelope
// marginals in float, shard-merge exactness of the accumulators over
// float blocks, and the ChannelSpec precision knob (hash participation
// plus canonicalization where no float path exists).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/fading_stream.hpp"
#include "rfade/core/plan.hpp"
#include "rfade/metrics/accumulators.hpp"
#include "rfade/metrics/health.hpp"
#include "rfade/metrics/tap.hpp"
#include "rfade/service/accumulators.hpp"
#include "rfade/service/channel_spec.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/stats/distributions.hpp"
#include "rfade/stats/fading_metrics.hpp"
#include "rfade/stats/ks_test.hpp"

namespace {

using namespace rfade;
using core::ColoringPlan;
using core::FadingStream;
using core::FadingStreamOptions;
using core::Precision;
using doppler::StreamBackend;
using numeric::cdouble;
using numeric::CMatrix;
using numeric::CMatrixF;
using service::ChannelSpec;
using service::EmissionMode;

CMatrix paper_covariance() {
  return channel::spectral_covariance_matrix(
      channel::paper_spectral_scenario());
}

FadingStreamOptions float_options(StreamBackend backend) {
  FadingStreamOptions options;
  options.backend = backend;
  options.idft_size = 128;
  options.normalized_doppler = 0.1;
  options.overlap = backend == StreamBackend::WindowedOverlapAdd ? 32 : 0;
  options.seed = 0xF10A7;
  options.precision = Precision::Float32;
  return options;
}

/// Thinned branch-0 envelope subsequence of `blocks` consecutive blocks
/// (samples inside a block are temporally correlated; KS needs
/// approximately independent draws).
numeric::RVector thinned_envelopes(FadingStream& stream, int blocks,
                                   std::size_t stride) {
  numeric::RVector samples;
  for (int b = 0; b < blocks; ++b) {
    const CMatrix block = stream.next_block();
    for (std::size_t t = 0; t < block.rows(); t += stride) {
      samples.push_back(std::abs(block(t, 0)));
    }
  }
  return samples;
}

// --- keyed / cursor / seek bit-identity -------------------------------------

TEST(Float32Stream, KeyedBlocksEqualCursorAndSurviveSeeksAllBackends) {
  const CMatrix k = paper_covariance();
  for (const StreamBackend backend :
       {StreamBackend::IndependentBlock, StreamBackend::WindowedOverlapAdd,
        StreamBackend::OverlapSaveFir}) {
    const FadingStreamOptions options = float_options(backend);
    FadingStream cursor(k, options);
    FadingStream keyed(k, options);
    FadingStream seeker(k, options);
    EXPECT_EQ(cursor.precision(), Precision::Float32);

    std::vector<CMatrixF> blocks;
    for (std::uint64_t b = 0; b < 5; ++b) {
      blocks.push_back(cursor.next_block_f32());
    }
    for (std::uint64_t b = 0; b < 5; ++b) {
      EXPECT_EQ(keyed.generate_block_f32(options.seed, b), blocks[b])
          << doppler::stream_backend_name(backend) << " block " << b;
    }
    // Seeking backward and forward reproduces the same float
    // realisation, including stateful backends (history replay).
    seeker.seek(3);
    EXPECT_EQ(seeker.next_block_f32(), blocks[3])
        << doppler::stream_backend_name(backend);
    seeker.seek(1);
    EXPECT_EQ(seeker.next_block_f32(), blocks[1])
        << doppler::stream_backend_name(backend);
    EXPECT_EQ(seeker.next_block_f32(), blocks[2])
        << doppler::stream_backend_name(backend);
  }
}

TEST(Float32Stream, WidenedFacadeMatchesNativeFloatBlocks) {
  // next_block()/generate_block() on a Float32 stream are exact widenings
  // of the float blocks — one realisation per stream, two read widths.
  const CMatrix k = paper_covariance();
  const FadingStreamOptions options =
      float_options(StreamBackend::OverlapSaveFir);
  FadingStream wide(k, options);
  FadingStream narrow(k, options);
  for (std::uint64_t b = 0; b < 3; ++b) {
    const CMatrix w = wide.next_block();
    const CMatrixF f = narrow.next_block_f32();
    ASSERT_EQ(w.rows(), f.rows());
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_EQ(w.data()[i].real(),
                static_cast<double>(f.data()[i].real()));
      EXPECT_EQ(w.data()[i].imag(),
                static_cast<double>(f.data()[i].imag()));
    }
  }
}

// --- coloring operator accuracy ---------------------------------------------

/// Relative Frobenius error between L_f L_f^H (widened float coloring,
/// double arithmetic) and the plan's double effective covariance.
double narrowed_coloring_error(const ColoringPlan& plan) {
  const auto& clone = plan.coloring_f32();
  const std::size_t n = clone.transposed.rows();
  CMatrix khat(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cdouble acc(0.0, 0.0);
      for (std::size_t l = 0; l < n; ++l) {
        // clone.transposed is L^T: L(i, l) = transposed(l, i).
        const cdouble li(clone.transposed(l, i).real(),
                         clone.transposed(l, i).imag());
        const cdouble lj(clone.transposed(l, j).real(),
                         clone.transposed(l, j).imag());
        acc += li * std::conj(lj);
      }
      khat(i, j) = acc;
    }
  }
  return stats::relative_frobenius_error(khat, plan.effective_covariance());
}

TEST(Float32Plan, NarrowedColoringReproducesCovariance) {
  const auto plan = ColoringPlan::create(paper_covariance());
  EXPECT_LT(narrowed_coloring_error(*plan), 1e-4);
}

TEST(Float32Plan, NarrowedColoringReproducesForcedPsdCovariance) {
  // Indefinite Hermitian target (eigenvalues 3.1, -0.05, -0.05): PSD
  // forcing clips, and the narrowed operator must reproduce the *forced*
  // covariance to float accuracy.
  CMatrix k(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      k(i, j) = cdouble(i == j ? 1.0 : 1.05, 0.0);
    }
  }
  const auto plan = ColoringPlan::create(k);
  EXPECT_GT(stats::relative_frobenius_error(plan->effective_covariance(), k),
            1e-3);  // forcing actually moved the target
  EXPECT_LT(narrowed_coloring_error(*plan), 1e-4);
}

// --- envelope marginals in float --------------------------------------------

TEST(Float32Envelopes, RayleighKsPasses) {
  const ChannelSpec spec = ChannelSpec::Builder()
                               .rayleigh(paper_covariance())
                               .backend(StreamBackend::OverlapSaveFir)
                               .idft_size(256)
                               .doppler(0.1)
                               .precision(Precision::Float32)
                               .build();
  const auto channel = spec.compile();
  FadingStream stream = channel->make_stream(0xBEEF);
  ASSERT_EQ(stream.precision(), Precision::Float32);
  const numeric::RVector samples = thinned_envelopes(stream, 60, 32);
  const double power = channel->plan()->effective_covariance()(0, 0).real();
  const auto rayleigh = stats::RayleighDistribution::from_gaussian_power(power);
  const auto ks =
      stats::ks_test(samples, [&](double r) { return rayleigh.cdf(r); });
  EXPECT_GT(ks.p_value, 1e-3);
}

TEST(Float32Envelopes, RicianKsPasses) {
  const double k_factor = 4.0;
  const ChannelSpec spec = ChannelSpec::Builder()
                               .rician(paper_covariance(), k_factor)
                               .backend(StreamBackend::WindowedOverlapAdd)
                               .overlap(64)
                               .idft_size(256)
                               .doppler(0.1)
                               .precision(Precision::Float32)
                               .build();
  const auto channel = spec.compile();
  FadingStream stream = channel->make_stream(0x51C32);
  ASSERT_EQ(stream.precision(), Precision::Float32);
  const numeric::RVector samples = thinned_envelopes(stream, 60, 32);
  const double power = channel->plan()->effective_covariance()(0, 0).real();
  const auto rician =
      stats::RicianDistribution::from_k_factor(k_factor, power);
  const auto ks =
      stats::ks_test(samples, [&](double r) { return rician.cdf(r); });
  EXPECT_GT(ks.p_value, 1e-3);
}

TEST(Float32Envelopes, TwdpKsPasses) {
  const double k_factor = 5.0;
  const double delta = 0.6;
  // Incommensurate wave Dopplers: the marginal is TWDP only once the
  // deterministic specular phase difference sweeps the circle.
  const ChannelSpec spec = ChannelSpec::Builder()
                               .twdp(paper_covariance(), k_factor, delta)
                               .idft_size(256)
                               .doppler(0.1)
                               .wave_dopplers(0.04, -0.025)
                               .precision(Precision::Float32)
                               .build();
  const auto channel = spec.compile();
  FadingStream stream = channel->make_stream(0x7D0);
  ASSERT_EQ(stream.precision(), Precision::Float32);
  const numeric::RVector samples = thinned_envelopes(stream, 60, 32);
  const double power = channel->plan()->effective_covariance()(0, 0).real();
  const auto twdp =
      stats::TwdpDistribution::from_parameters(k_factor, delta, power);
  const auto ks =
      stats::ks_test(samples, [&](double r) { return twdp.cdf(r); });
  EXPECT_GT(ks.p_value, 1e-3);
}

// --- accumulator shard merges over float blocks -----------------------------

TEST(Float32Accumulators, ShardMergeIsExactOverFloatBlocks) {
  const CMatrix k = paper_covariance();
  const FadingStreamOptions options =
      float_options(StreamBackend::OverlapSaveFir);
  FadingStream stream(k, options);
  const std::size_t n = k.rows();

  std::vector<CMatrixF> blocks;
  for (std::uint64_t b = 0; b < 6; ++b) {
    blocks.push_back(stream.generate_block_f32(options.seed, b));
  }

  service::EnvelopeMomentAccumulator moments_all(n);
  service::EnvelopeMomentAccumulator moments_even(n);
  service::EnvelopeMomentAccumulator moments_odd(n);
  service::ComplexCovarianceAccumulator cov_all(n);
  service::ComplexCovarianceAccumulator cov_even(n);
  service::ComplexCovarianceAccumulator cov_odd(n);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    moments_all.accumulate(blocks[b]);
    cov_all.accumulate(blocks[b]);
    (b % 2 == 0 ? moments_even : moments_odd).accumulate(blocks[b]);
    (b % 2 == 0 ? cov_even : cov_odd).accumulate(blocks[b]);
  }
  moments_even.merge(moments_odd);
  cov_even.merge(cov_odd);

  EXPECT_EQ(moments_even.count(), moments_all.count());
  for (std::size_t j = 0; j < n; ++j) {
    const auto merged = moments_even.finalize(j);
    const auto single = moments_all.finalize(j);
    EXPECT_EQ(merged.mean, single.mean) << "branch " << j;
    EXPECT_EQ(merged.second_moment, single.second_moment) << "branch " << j;
    EXPECT_EQ(merged.fourth_moment, single.fourth_moment) << "branch " << j;
    EXPECT_EQ(merged.variance, single.variance) << "branch " << j;
    EXPECT_EQ(merged.amount_of_fading, single.amount_of_fading)
        << "branch " << j;
  }
  EXPECT_EQ(cov_even.finalize(), cov_all.finalize());
}

// --- link-level metrics over float blocks -----------------------------------

CMatrix widened(const CMatrixF& block) {
  CMatrix out(block.rows(), block.cols());
  for (std::size_t i = 0; i < block.size(); ++i) {
    out.data()[i] = cdouble(static_cast<double>(block.data()[i].real()),
                            static_cast<double>(block.data()[i].imag()));
  }
  return out;
}

TEST(Float32Metrics, FloatObserveEqualsWidenedObserveBitForBit) {
  // The f32 accumulate overloads are exact widenings: folding a float
  // block and folding its double widening are the same multiset, so
  // every read-out matches EXPECT_EQ-exactly.
  const CMatrix k = paper_covariance();
  const FadingStreamOptions options =
      float_options(StreamBackend::OverlapSaveFir);
  FadingStream stream(k, options);
  const std::size_t n = k.rows();
  const std::vector<double> thresholds{0.5, 1.0};
  const std::vector<std::size_t> lags{1, 2, 4};
  std::vector<double> rms(n);
  std::vector<double> omega(n);
  for (std::size_t j = 0; j < n; ++j) {
    omega[j] = k(j, j).real();
    rms[j] = std::sqrt(omega[j]);
  }

  metrics::LevelCrossingAccumulator lcr_f(n, thresholds, rms);
  metrics::LevelCrossingAccumulator lcr_d(n, thresholds, rms);
  metrics::AcfAccumulator acf_f(n, lags);
  metrics::AcfAccumulator acf_d(n, lags);
  metrics::MutualInformationAccumulator mi_f(n, 10.0, omega, lags);
  metrics::MutualInformationAccumulator mi_d(n, 10.0, omega, lags);
  for (std::uint64_t b = 0; b < 6; ++b) {
    const CMatrixF block = stream.generate_block_f32(options.seed, b);
    const CMatrix wide = widened(block);
    lcr_f.accumulate(block);
    lcr_d.accumulate(wide);
    acf_f.accumulate(block);
    acf_d.accumulate(wide);
    mi_f.accumulate(block);
    mi_d.accumulate(wide);
  }

  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t t = 0; t < thresholds.size(); ++t) {
      const auto from_float = lcr_f.finalize(j, t);
      const auto from_double = lcr_d.finalize(j, t);
      EXPECT_EQ(from_float.up_crossings, from_double.up_crossings);
      EXPECT_EQ(from_float.samples_below, from_double.samples_below);
      EXPECT_EQ(from_float.longest_fade, from_double.longest_fade);
    }
    for (const std::size_t lag : lags) {
      EXPECT_EQ(acf_f.correlation_sum(j, lag), acf_d.correlation_sum(j, lag));
      EXPECT_EQ(mi_f.lag_product_sum(j, lag), mi_d.lag_product_sum(j, lag));
    }
    EXPECT_EQ(mi_f.sum(j), mi_d.sum(j));
    EXPECT_EQ(mi_f.sum_squares(j), mi_d.sum_squares(j));
  }
}

TEST(Float32Metrics, TapShardMergeIsExactOverFloatBlocks) {
  // Two taps splitting a float timeline merge into the single-pass tap
  // bit-for-bit — the cross-shard boundary state (fade runs, lag rings)
  // stitches float-fed segments exactly as double-fed ones.
  const CMatrix k = paper_covariance();
  const FadingStreamOptions options =
      float_options(StreamBackend::OverlapSaveFir);
  FadingStream stream(k, options);
  const std::size_t n = k.rows();

  metrics::AnalyticReference reference;
  reference.normalized_doppler = options.normalized_doppler;
  reference.branch_power.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    reference.branch_power[j] = k(j, j).real();
  }
  reference.rayleigh = false;  // colored branches: publish, don't gate

  metrics::MetricsTapConfig config;
  config.publish_every_blocks = 0;  // manual publish only
  metrics::MetricsTap single(reference, config);
  metrics::MetricsTap left(reference, config);
  metrics::MetricsTap right(reference, config);
  for (std::uint64_t b = 0; b < 9; ++b) {
    const CMatrixF block = stream.generate_block_f32(options.seed, b);
    single.observe(block);
    (b < 4 ? left : right).observe(block);
  }
  left.merge(right);

  EXPECT_EQ(left.samples_observed(), single.samples_observed());
  ASSERT_NE(left.level_crossings(), nullptr);
  ASSERT_NE(left.autocorrelation(), nullptr);
  ASSERT_NE(left.mutual_information(), nullptr);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t t = 0; t < config.thresholds.size(); ++t) {
      const auto merged = left.level_crossings()->finalize(j, t);
      const auto one_pass = single.level_crossings()->finalize(j, t);
      EXPECT_EQ(merged.up_crossings, one_pass.up_crossings);
      EXPECT_EQ(merged.samples_below, one_pass.samples_below);
      EXPECT_EQ(merged.longest_fade, one_pass.longest_fade);
      EXPECT_EQ(merged.lcr_per_sample, one_pass.lcr_per_sample);
      EXPECT_EQ(merged.afd_samples, one_pass.afd_samples);
    }
    for (const std::size_t lag : config.lags) {
      EXPECT_EQ(left.autocorrelation()->correlation_sum(j, lag),
                single.autocorrelation()->correlation_sum(j, lag));
      EXPECT_EQ(left.mutual_information()->lag_product_sum(j, lag),
                single.mutual_information()->lag_product_sum(j, lag));
    }
    EXPECT_EQ(left.mutual_information()->sum(j),
              single.mutual_information()->sum(j));
  }
}

TEST(Float32Metrics, RiceGatesPassOnFloatStream) {
  // The Rice LCR/AFD laws hold for the float emission path too: float
  // rounding (~1e-7 relative) is far below the statistical tolerance.
  const double fm = 0.05;
  const std::vector<double> thresholds{0.5, 1.0};
  FadingStreamOptions options;
  options.backend = StreamBackend::OverlapSaveFir;
  options.idft_size = 512;
  options.normalized_doppler = fm;
  options.seed = 0xF32C;
  options.precision = Precision::Float32;
  FadingStream stream(CMatrix::identity(1), options);
  ASSERT_EQ(stream.precision(), Precision::Float32);

  metrics::LevelCrossingAccumulator accumulator(1, thresholds, {1.0});
  for (int b = 0; b < 400; ++b) {
    accumulator.accumulate(stream.next_block_f32());
  }
  for (std::size_t t = 0; t < thresholds.size(); ++t) {
    const double rho = thresholds[t];
    const auto measured = accumulator.finalize(0, t);
    const double lcr_expected = stats::theoretical_lcr(rho, fm);
    const double afd_expected = stats::theoretical_afd(rho, fm);
    EXPECT_NEAR(measured.lcr_per_sample, lcr_expected, 0.10 * lcr_expected)
        << "rho " << rho;
    EXPECT_NEAR(measured.afd_samples, afd_expected, 0.10 * afd_expected)
        << "rho " << rho;
  }

  metrics::AnalyticReference reference;
  reference.normalized_doppler = fm;
  reference.branch_power = {1.0};
  reference.rayleigh = true;
  for (const auto& report :
       metrics::evaluate_health(accumulator, reference, {})) {
    EXPECT_TRUE(report.ok) << report.metric << " " << report.parameter
                           << " drift " << report.drift;
  }
}

// --- ChannelSpec precision knob ---------------------------------------------

TEST(ChannelSpecPrecision, ParticipatesInHashForStreamSpecs) {
  const CMatrix k = paper_covariance();
  const ChannelSpec f64 = ChannelSpec::Builder().rayleigh(k).build();
  const ChannelSpec f32 = ChannelSpec::Builder()
                              .rayleigh(k)
                              .precision(Precision::Float32)
                              .build();
  EXPECT_EQ(f64.precision(), Precision::Float64);
  EXPECT_EQ(f32.precision(), Precision::Float32);
  EXPECT_NE(f64.content_hash(), f32.content_hash());
  EXPECT_FALSE(f64 == f32);
}

TEST(ChannelSpecPrecision, CanonicalizedWhereNoFloatPathExists) {
  const CMatrix k = paper_covariance();
  // Instant emission has no float pipeline: the knob is inert and must
  // collapse so equal specs hash (and cache) equal.
  const ChannelSpec instant_f64 =
      ChannelSpec::Builder().rayleigh(k).instant().build();
  const ChannelSpec instant_f32 = ChannelSpec::Builder()
                                      .rayleigh(k)
                                      .instant()
                                      .precision(Precision::Float32)
                                      .build();
  EXPECT_EQ(instant_f32.precision(), Precision::Float64);
  EXPECT_EQ(instant_f64.content_hash(), instant_f32.content_hash());
  EXPECT_TRUE(instant_f64 == instant_f32);

  // The cascaded real-time generator is double-only as well.
  const ChannelSpec cascaded_f64 =
      ChannelSpec::Builder().cascaded(k, k).build();
  const ChannelSpec cascaded_f32 = ChannelSpec::Builder()
                                       .cascaded(k, k)
                                       .precision(Precision::Float32)
                                       .build();
  EXPECT_EQ(cascaded_f32.precision(), Precision::Float64);
  EXPECT_EQ(cascaded_f64.content_hash(), cascaded_f32.content_hash());
  EXPECT_TRUE(cascaded_f64 == cascaded_f32);
}

TEST(ChannelSpecPrecision, PrecisionNamesAreStableLabels) {
  EXPECT_STREQ(core::precision_name(Precision::Float64), "f64");
  EXPECT_STREQ(core::precision_name(Precision::Float32), "f32");
}

}  // namespace
