// Tests for the conventional baseline generators [1]-[6] and the
// sum-of-sinusoids reference model: each must work inside its documented
// scope and fail exactly the way the paper says it fails outside it.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/baselines/beaulieu_merani.hpp"
#include "rfade/baselines/ertel_reed.hpp"
#include "rfade/baselines/natarajan.hpp"
#include "rfade/baselines/salz_winters.hpp"
#include "rfade/baselines/sorooshyari_daut.hpp"
#include "rfade/baselines/sum_of_sinusoids.hpp"
#include "rfade/channel/spectral.hpp"
#include "rfade/core/psd.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/special/bessel.hpp"
#include "rfade/stats/autocorrelation.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

/// Sample covariance of `n` draws from any generator with .sample(rng).
template <typename Generator>
CMatrix measure_covariance(const Generator& gen, std::size_t dim,
                           std::size_t n, std::uint64_t seed) {
  random::Rng rng(seed);
  stats::CovarianceAccumulator acc(dim);
  for (std::size_t i = 0; i < n; ++i) {
    acc.add(gen.sample(rng));
  }
  return acc.covariance();
}

CMatrix non_psd_equal_power_matrix() {
  CMatrix k = CMatrix::identity(3);
  k(0, 1) = k(1, 0) = cdouble(0.9, 0.0);
  k(1, 2) = k(2, 1) = cdouble(0.9, 0.0);
  k(0, 2) = k(2, 0) = cdouble(-0.5, 0.0);  // inconsistent triangle
  return k;
}

// ---------------------------------------------------------------------------
// Salz-Winters [1]
// ---------------------------------------------------------------------------

TEST(SalzWinters, CompositeCovarianceStructure) {
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const auto c = baselines::composite_real_covariance(k);
  ASSERT_EQ(c.rows(), 6u);
  // A block = Re(K)/2, twice on the diagonal.
  EXPECT_NEAR(c(0, 1), 0.5 * k(0, 1).real(), 1e-14);
  EXPECT_NEAR(c(3, 4), 0.5 * k(0, 1).real(), 1e-14);
  // B block = -Im(K)/2 and antisymmetric.
  EXPECT_NEAR(c(0, 4), -0.5 * k(0, 1).imag(), 1e-14);
  EXPECT_NEAR(c(4, 0), c(0, 4), 1e-14);  // symmetric overall
  // The composite is a valid symmetric matrix.
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(c(i, j), c(j, i), 1e-14);
    }
  }
}

TEST(SalzWinters, AchievesComplexCovarianceForEqualPowers) {
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const baselines::SalzWintersGenerator gen(k);
  const CMatrix measured = measure_covariance(gen, 3, 150000, 51);
  EXPECT_LT(stats::relative_frobenius_error(measured, k), 0.02);
}

TEST(SalzWinters, RejectsUnequalPowers) {
  CMatrix k = CMatrix::identity(2);
  k(1, 1) = cdouble(2.0, 0.0);
  EXPECT_THROW((void)baselines::SalzWintersGenerator{k}, ValueError);
}

TEST(SalzWinters, FailsOnNonPsdMatrix) {
  EXPECT_THROW((void)baselines::SalzWintersGenerator{non_psd_equal_power_matrix()},
               NotPositiveDefiniteError);
}

// ---------------------------------------------------------------------------
// Ertel-Reed [2]
// ---------------------------------------------------------------------------

TEST(ErtelReed, AchievesComplexCorrelation) {
  const double power = 2.0;
  const cdouble rho(0.4, 0.35);
  const baselines::ErtelReedGenerator gen(power, rho);
  const CMatrix measured = [&] {
    random::Rng rng(52);
    stats::CovarianceAccumulator acc(2);
    for (int i = 0; i < 200000; ++i) {
      acc.add(gen.sample(rng));
    }
    return acc.covariance();
  }();
  EXPECT_NEAR(measured(0, 0).real(), power, 0.03);
  EXPECT_NEAR(measured(1, 1).real(), power, 0.03);
  // E[z_0 conj(z_1)] = power * rho.
  EXPECT_NEAR(std::abs(measured(0, 1) - power * rho), 0.0, 0.04);
}

TEST(ErtelReed, MatrixConstructorMatchesScalarOne) {
  CMatrix k = CMatrix::identity(2);
  k(0, 1) = cdouble(0.6, -0.2);
  k(1, 0) = std::conj(k(0, 1));
  const baselines::ErtelReedGenerator gen(k);
  EXPECT_DOUBLE_EQ(gen.power(), 1.0);
  EXPECT_EQ(gen.rho(), cdouble(0.6, -0.2));
}

TEST(ErtelReed, ScopeRestrictions) {
  EXPECT_THROW((void)baselines::ErtelReedGenerator(1.0, cdouble(1.2, 0.0)),
               ValueError);  // |rho| > 1
  EXPECT_THROW((void)baselines::ErtelReedGenerator(-1.0, cdouble(0.2, 0.0)),
               ValueError);  // bad power
  EXPECT_THROW((void)baselines::ErtelReedGenerator{CMatrix::identity(3)},
               ValueError);  // N != 2
  CMatrix unequal = CMatrix::identity(2);
  unequal(1, 1) = cdouble(3.0, 0.0);
  EXPECT_THROW((void)baselines::ErtelReedGenerator{unequal}, ValueError);
}

TEST(ErtelReed, FullCorrelationEdgeCase) {
  const baselines::ErtelReedGenerator gen(1.0, cdouble(1.0, 0.0));
  random::Rng rng(53);
  for (int i = 0; i < 50; ++i) {
    const auto z = gen.sample(rng);
    EXPECT_NEAR(std::abs(z[0] - z[1]), 0.0, 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Beaulieu-Merani [3]/[4]
// ---------------------------------------------------------------------------

TEST(BeaulieuMerani, WorksOnPositiveDefiniteEqualPowerMatrix) {
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const baselines::BeaulieuMeraniGenerator gen(k);
  EXPECT_EQ(gen.dimension(), 3u);
  const CMatrix measured = measure_covariance(gen, 3, 150000, 54);
  EXPECT_LT(stats::relative_frobenius_error(measured, k), 0.02);
  // Coloring is genuinely lower triangular (Cholesky).
  EXPECT_EQ(gen.coloring_matrix()(0, 2), cdouble{});
}

TEST(BeaulieuMerani, FailsOnNonPositiveDefinite) {
  EXPECT_THROW((void)
      baselines::BeaulieuMeraniGenerator{non_psd_equal_power_matrix()},
      NotPositiveDefiniteError);
  // Rank-deficient (PSD but singular) also fails — eigen-coloring's edge.
  CMatrix rank1(2, 2, cdouble(1.0, 0.0));
  EXPECT_THROW((void)baselines::BeaulieuMeraniGenerator{rank1},
               NotPositiveDefiniteError);
}

TEST(BeaulieuMerani, RejectsUnequalPowers) {
  CMatrix k = CMatrix::identity(2);
  k(1, 1) = cdouble(4.0, 0.0);
  EXPECT_THROW((void)baselines::BeaulieuMeraniGenerator{k}, ValueError);
}

// ---------------------------------------------------------------------------
// Natarajan et al. [5]
// ---------------------------------------------------------------------------

TEST(Natarajan, SupportsUnequalPowers) {
  CMatrix k = CMatrix::identity(2);
  k(0, 0) = cdouble(1.0, 0.0);
  k(1, 1) = cdouble(5.0, 0.0);
  k(0, 1) = k(1, 0) = cdouble(1.2, 0.0);  // real covariance: in-scope
  const baselines::NatarajanGenerator gen(k);
  const CMatrix measured = measure_covariance(gen, 2, 150000, 55);
  EXPECT_LT(stats::relative_frobenius_error(measured, k), 0.02);
}

TEST(Natarajan, RealForcingBiasesComplexCovariances) {
  // The documented flaw: with complex K the achieved covariance is Re(K).
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const baselines::NatarajanGenerator gen(k);
  EXPECT_LT(numeric::max_abs_diff(gen.achieved_covariance(),
                                  numeric::to_complex(numeric::real_part(k))),
            1e-14);
  const CMatrix measured = measure_covariance(gen, 3, 150000, 56);
  // Close to Re(K)...
  EXPECT_LT(
      stats::relative_frobenius_error(measured, gen.achieved_covariance()),
      0.02);
  // ...and measurably far from the true complex K (imag parts ~ 0.48 lost).
  EXPECT_GT(stats::relative_frobenius_error(measured, k), 0.15);
}

TEST(Natarajan, FailsWhenRealPartNotPd) {
  CMatrix k = CMatrix::identity(2);
  k(0, 1) = k(1, 0) = cdouble(1.5, 0.0);
  EXPECT_THROW((void)baselines::NatarajanGenerator{k}, NotPositiveDefiniteError);
}

// ---------------------------------------------------------------------------
// Sorooshyari-Daut [6]
// ---------------------------------------------------------------------------

TEST(SorooshyariDaut, WorksOnPdMatrix) {
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const baselines::SorooshyariDautGenerator gen(k);
  EXPECT_DOUBLE_EQ(gen.forcing_distance(), 0.0);  // PD input: untouched
  const CMatrix measured = measure_covariance(gen, 3, 150000, 57);
  EXPECT_LT(stats::relative_frobenius_error(measured, k), 0.02);
}

TEST(SorooshyariDaut, EpsilonForcingEnablesNonPsdInput) {
  const CMatrix k = non_psd_equal_power_matrix();
  const baselines::SorooshyariDautGenerator gen(k, 1e-3);
  EXPECT_GT(gen.forcing_distance(), 0.0);
  // The forced matrix is PD (all eigenvalues >= epsilon) and Hermitian.
  EXPECT_TRUE(core::is_positive_semidefinite(gen.forced_covariance()));
  // Its forcing distance strictly exceeds the paper's clip distance (E6).
  const auto clip = core::force_positive_semidefinite(k);
  EXPECT_GT(gen.forcing_distance(), clip.frobenius_distance);
}

TEST(SorooshyariDaut, RejectsUnequalPowers) {
  CMatrix k = CMatrix::identity(2);
  k(1, 1) = cdouble(2.0, 0.0);
  EXPECT_THROW((void)baselines::SorooshyariDautGenerator{k}, ValueError);
}

TEST(SorooshyariDautRealTime, AssumesInputVariance) {
  const CMatrix k = CMatrix::identity(2);
  const baselines::SorooshyariDautRealTime gen(k, 256, 0.1, 0.5);
  EXPECT_DOUBLE_EQ(gen.assumed_variance(), 1.0);
  EXPECT_LT(gen.true_branch_variance(), 0.05);  // filter shrinks the power

  // Realised power is off by exactly the variance ratio.
  random::Rng rng(58);
  double power = 0.0;
  std::size_t count = 0;
  for (int b = 0; b < 100; ++b) {
    const CMatrix block = gen.generate_block(rng);
    for (std::size_t l = 0; l < block.rows(); ++l) {
      power += std::norm(block(l, 0));
      ++count;
    }
  }
  const double measured_ratio = power / double(count);  // desired power = 1
  EXPECT_NEAR(measured_ratio / gen.true_branch_variance(), 1.0, 0.15);
}

// ---------------------------------------------------------------------------
// Sum of sinusoids (Clarke/Jakes)
// ---------------------------------------------------------------------------

TEST(SumOfSinusoids, PowerIsTwo) {
  // The Clarke normalisation sqrt(2/Np) gives E|z|^2 = 2.
  const baselines::SumOfSinusoidsGenerator gen(32, 0.05);
  random::Rng rng(59);
  double power = 0.0;
  std::size_t count = 0;
  for (int b = 0; b < 50; ++b) {
    const auto block = gen.generate_block(512, rng);
    for (const auto& v : block) {
      power += std::norm(v);
    }
    count += block.size();
  }
  EXPECT_NEAR(power / double(count), 2.0, 0.1);
}

TEST(SumOfSinusoids, AutocorrelationTracksJ0) {
  // Independent construction, same second-order statistics as the IDFT
  // branch: ensemble autocorrelation -> J0(2 pi fm d).
  const double fm = 0.05;
  const baselines::SumOfSinusoidsGenerator gen(64, fm);
  random::Rng rng(60);
  const std::size_t max_lag = 40;
  numeric::RVector avg(max_lag + 1, 0.0);
  const int blocks = 200;
  for (int b = 0; b < blocks; ++b) {
    const auto block = gen.generate_block(1024, rng);
    const auto rho = stats::normalized_autocorrelation(block, max_lag);
    for (std::size_t d = 0; d <= max_lag; ++d) {
      avg[d] += rho[d] / blocks;
    }
  }
  for (std::size_t d = 0; d <= max_lag; d += 8) {
    EXPECT_NEAR(avg[d], special::bessel_j0(2.0 * M_PI * fm * double(d)), 0.08)
        << "lag " << d;
  }
}

TEST(SumOfSinusoids, ValidatesArguments) {
  EXPECT_THROW((void)baselines::SumOfSinusoidsGenerator(0, 0.1), ContractViolation);
  EXPECT_THROW((void)baselines::SumOfSinusoidsGenerator(8, 0.0), ContractViolation);
  EXPECT_THROW((void)baselines::SumOfSinusoidsGenerator(8, 0.6), ContractViolation);
  const baselines::SumOfSinusoidsGenerator gen(8, 0.1);
  random::Rng rng(61);
  EXPECT_THROW((void)gen.generate_block(0, rng), ContractViolation);
}

}  // namespace
