// Tests for the ExactSum superaccumulator and the shard-mergeable
// service accumulators built on it: exactness, order/shard invariance,
// bit-identical merges, and the error taxonomy of the failure paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "rfade/numeric/matrix.hpp"
#include "rfade/service/accumulators.hpp"
#include "rfade/support/exact_sum.hpp"

namespace {

using namespace rfade;
using support::ExactSum;

std::vector<double> mixed_magnitude_values(std::size_t count,
                                           unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> mantissa(-1.0, 1.0);
  std::uniform_int_distribution<int> exponent(-300, 300);
  std::vector<double> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(std::ldexp(mantissa(rng), exponent(rng)));
  }
  return values;
}

TEST(ExactSum, EmptyIsZero) {
  const ExactSum sum;
  EXPECT_EQ(sum.value(), 0.0);
  EXPECT_EQ(sum.count(), 0u);
}

TEST(ExactSum, SimpleSumsAreExact) {
  ExactSum sum;
  sum.add(0.25);
  sum.add(0.5);
  sum.add(-0.125);
  EXPECT_EQ(sum.value(), 0.625);
  EXPECT_EQ(sum.count(), 3u);
}

TEST(ExactSum, CatastrophicCancellationIsExact) {
  // Naive double accumulation loses the 1.0 entirely: 1e300 + 1 == 1e300.
  ExactSum sum;
  sum.add(1e300);
  sum.add(1.0);
  sum.add(-1e300);
  EXPECT_EQ(sum.value(), 1.0);
}

TEST(ExactSum, TinyValuesSurviveHugeIntermediates) {
  ExactSum sum;
  sum.add(1e-300);
  sum.add(1e280);
  sum.add(-1e280);
  EXPECT_EQ(sum.value(), 1e-300);
}

TEST(ExactSum, SubnormalsAccumulateExactly) {
  const double tiny = std::numeric_limits<double>::denorm_min();
  ExactSum sum;
  for (int i = 0; i < 7; ++i) {
    sum.add(tiny);
  }
  EXPECT_EQ(sum.value(), 7.0 * tiny);
}

TEST(ExactSum, OrderInvariantToTheBit) {
  const auto values = mixed_magnitude_values(5000, 12345);
  ExactSum forward;
  for (const double v : values) {
    forward.add(v);
  }
  auto shuffled = values;
  std::mt19937_64 rng(999);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  ExactSum reordered;
  for (const double v : shuffled) {
    reordered.add(v);
  }
  EXPECT_EQ(forward.value(), reordered.value());
}

TEST(ExactSum, MergeEqualsSingleAccumulatorExactly) {
  const auto values = mixed_magnitude_values(4096, 777);
  ExactSum single;
  for (const double v : values) {
    single.add(v);
  }
  // Any sharding, merged in any order, is bit-identical.
  for (const std::size_t split : {std::size_t{1}, std::size_t{1000},
                                  std::size_t{4095}}) {
    ExactSum a;
    ExactSum b;
    for (std::size_t i = 0; i < values.size(); ++i) {
      (i < split ? a : b).add(values[i]);
    }
    ExactSum ab = a;
    ab.merge(b);
    ExactSum ba = b;
    ba.merge(a);
    EXPECT_EQ(ab.value(), single.value());
    EXPECT_EQ(ba.value(), single.value());
    EXPECT_EQ(ab.count(), single.count());
  }
}

TEST(ExactSum, ManyAddsCrossNormalizationCadence) {
  // More adds than kNormalizeEvery, all equal: total must stay exact.
  const std::size_t n = (1u << 20) + 123;
  ExactSum sum;
  for (std::size_t i = 0; i < n; ++i) {
    sum.add(0.5);
  }
  EXPECT_EQ(sum.value(), 0.5 * static_cast<double>(n));
}

TEST(ExactSum, RejectsNonFinite) {
  ExactSum sum;
  EXPECT_THROW(sum.add(std::numeric_limits<double>::infinity()), ValueError);
  EXPECT_THROW(sum.add(std::numeric_limits<double>::quiet_NaN()), ValueError);
}

TEST(ExactSum, ResetClearsState) {
  ExactSum sum;
  sum.add(3.0);
  sum.reset();
  EXPECT_EQ(sum.value(), 0.0);
  EXPECT_EQ(sum.count(), 0u);
}

// --- service accumulators ---------------------------------------------------

numeric::CMatrix random_block(std::size_t rows, std::size_t cols,
                              unsigned seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal(0.0, 1.0);
  numeric::CMatrix block(rows, cols);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block.data()[i] = numeric::cdouble(normal(rng), normal(rng));
  }
  return block;
}

TEST(EnvelopeMomentAccumulator, ShardedMergeIsBitExact) {
  const std::size_t n = 3;
  std::vector<numeric::CMatrix> blocks;
  for (unsigned b = 0; b < 4; ++b) {
    blocks.push_back(random_block(128, n, 100 + b));
  }

  service::EnvelopeMomentAccumulator single(n);
  for (const auto& block : blocks) {
    single.accumulate(block);
  }

  service::EnvelopeMomentAccumulator shard_a(n);
  service::EnvelopeMomentAccumulator shard_b(n);
  shard_a.accumulate(blocks[0]);
  shard_a.accumulate(blocks[1]);
  shard_b.accumulate(blocks[2]);
  shard_b.accumulate(blocks[3]);
  shard_a.merge(shard_b);

  EXPECT_EQ(shard_a.count(), single.count());
  for (std::size_t j = 0; j < n; ++j) {
    const auto merged = shard_a.finalize(j);
    const auto direct = single.finalize(j);
    EXPECT_EQ(merged.mean, direct.mean);
    EXPECT_EQ(merged.second_moment, direct.second_moment);
    EXPECT_EQ(merged.fourth_moment, direct.fourth_moment);
    EXPECT_EQ(merged.variance, direct.variance);
    EXPECT_EQ(merged.amount_of_fading, direct.amount_of_fading);
  }
}

TEST(EnvelopeMomentAccumulator, MomentsMatchNaiveSums) {
  const auto block = random_block(64, 2, 7);
  service::EnvelopeMomentAccumulator acc(2);
  acc.accumulate(block);
  const auto moments = acc.finalize(0);
  double sum_r = 0.0;
  for (std::size_t t = 0; t < block.rows(); ++t) {
    sum_r += std::abs(block(t, 0));
  }
  EXPECT_NEAR(moments.mean, sum_r / 64.0, 1e-12);
  EXPECT_GT(moments.second_moment, 0.0);
}

TEST(EnvelopeMomentAccumulator, Rejections) {
  service::EnvelopeMomentAccumulator acc(2);
  EXPECT_THROW(acc.accumulate(random_block(4, 3, 1)), ContractViolation);
  EXPECT_THROW(acc.finalize(0), ValueError);
  service::EnvelopeMomentAccumulator other(3);
  EXPECT_THROW(acc.merge(other), DimensionError);
  EXPECT_THROW(service::EnvelopeMomentAccumulator(0), ContractViolation);
}

TEST(ComplexCovarianceAccumulator, ShardedMergeIsBitExact) {
  const std::size_t n = 3;
  std::vector<numeric::CMatrix> blocks;
  for (unsigned b = 0; b < 3; ++b) {
    blocks.push_back(random_block(96, n, 200 + b));
  }
  service::ComplexCovarianceAccumulator single(n);
  for (const auto& block : blocks) {
    single.accumulate(block);
  }
  service::ComplexCovarianceAccumulator shard_a(n);
  service::ComplexCovarianceAccumulator shard_b(n);
  shard_a.accumulate(blocks[0]);
  shard_b.accumulate(blocks[1]);
  shard_b.accumulate(blocks[2]);
  shard_b.merge(shard_a);  // merge order must not matter

  const numeric::CMatrix merged = shard_b.finalize();
  const numeric::CMatrix direct = single.finalize();
  ASSERT_EQ(merged.rows(), direct.rows());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged.data()[i].real(), direct.data()[i].real());
    EXPECT_EQ(merged.data()[i].imag(), direct.data()[i].imag());
  }
}

TEST(ComplexCovarianceAccumulator, Rejections) {
  service::ComplexCovarianceAccumulator acc(2);
  EXPECT_THROW(acc.finalize(), ValueError);
  service::ComplexCovarianceAccumulator other(4);
  EXPECT_THROW(acc.merge(other), DimensionError);
}

}  // namespace
