// Tests for the Bessel functions, including a cross-check against
// libstdc++'s std::cyl_bessel_j (an independent implementation).

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/special/bessel.hpp"

namespace {

using rfade::special::bessel_j0;
using rfade::special::bessel_j1;
using rfade::special::bessel_jn;

TEST(Bessel, ValuesAtZero) {
  EXPECT_DOUBLE_EQ(bessel_j0(0.0), 1.0);
  EXPECT_DOUBLE_EQ(bessel_j1(0.0), 0.0);
  EXPECT_DOUBLE_EQ(bessel_jn(2, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(bessel_jn(10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(bessel_jn(0, 0.0), 1.0);
}

TEST(Bessel, KnownReferenceValues) {
  // Abramowitz & Stegun tabulated values.
  EXPECT_NEAR(bessel_j0(1.0), 0.7651976865579666, 1e-12);
  EXPECT_NEAR(bessel_j0(2.0), 0.2238907791412357, 1e-12);
  EXPECT_NEAR(bessel_j0(5.0), -0.1775967713143383, 1e-12);
  EXPECT_NEAR(bessel_j1(1.0), 0.4400505857449335, 1e-12);
  EXPECT_NEAR(bessel_j1(2.0), 0.5767248077568734, 1e-12);
  EXPECT_NEAR(bessel_jn(2, 1.0), 0.1149034849319005, 1e-12);
  EXPECT_NEAR(bessel_jn(5, 5.0), 0.2611405461201701, 1e-11);
}

TEST(Bessel, FirstZerosOfJ0) {
  // j_{0,1} = 2.404825557695773, j_{0,2} = 5.520078110286311.
  EXPECT_NEAR(bessel_j0(2.404825557695773), 0.0, 1e-12);
  EXPECT_NEAR(bessel_j0(5.520078110286311), 0.0, 1e-12);
}

TEST(Bessel, ReflectionIdentities) {
  for (const double x : {0.3, 1.7, 4.2, 9.9}) {
    EXPECT_NEAR(bessel_j0(-x), bessel_j0(x), 1e-14);
    EXPECT_NEAR(bessel_j1(-x), -bessel_j1(x), 1e-14);
    EXPECT_NEAR(bessel_jn(3, -x), -bessel_jn(3, x), 1e-13);
    EXPECT_NEAR(bessel_jn(4, -x), bessel_jn(4, x), 1e-13);
    EXPECT_NEAR(bessel_jn(-3, x), -bessel_jn(3, x), 1e-13);
    EXPECT_NEAR(bessel_jn(-4, x), bessel_jn(4, x), 1e-13);
  }
}

class BesselCrossCheck : public testing::TestWithParam<int> {};

TEST_P(BesselCrossCheck, AgreesWithStdCylBesselJ) {
  const int n = GetParam();
  for (double x = 0.05; x <= 40.0; x += 0.35) {
    const double ours = bessel_jn(n, x);
    const double reference =
        std::cyl_bessel_j(static_cast<double>(n), x);
    EXPECT_NEAR(ours, reference, 2e-10)
        << "n=" << n << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, BesselCrossCheck,
                         testing::Values(0, 1, 2, 3, 4, 5, 7, 10, 13, 16, 20,
                                         25, 30, 40),
                         [](const auto& tinfo) {
                           return "order" + std::to_string(tinfo.param);
                         });

TEST(Bessel, ThreeTermRecurrenceHolds) {
  // J_{n-1}(x) + J_{n+1}(x) = (2n/x) J_n(x).
  for (const double x : {0.7, 2.5, 6.0, 11.0, 14.5, 25.0}) {
    for (int n = 1; n <= 12; ++n) {
      const double lhs = bessel_jn(n - 1, x) + bessel_jn(n + 1, x);
      const double rhs = 2.0 * n / x * bessel_jn(n, x);
      EXPECT_NEAR(lhs, rhs, 1e-9) << "n=" << n << " x=" << x;
    }
  }
}

TEST(Bessel, SumIdentityNormalisation) {
  // J_0(x) + 2 sum_{k>=1} J_{2k}(x) = 1.
  for (const double x : {0.5, 3.0, 8.0, 15.0}) {
    double sum = bessel_jn(0, x);
    for (int k = 1; k <= 40; ++k) {
      sum += 2.0 * bessel_jn(2 * k, x);
    }
    EXPECT_NEAR(sum, 1.0, 1e-10) << "x=" << x;
  }
}

TEST(Bessel, SeriesAsymptoticCrossoverIsSmooth) {
  // Values straddling the internal crossover at |x| = 12 must agree with
  // the independent reference to the same tolerance on both sides.
  for (const double x : {11.9, 11.99, 12.0, 12.01, 12.1}) {
    EXPECT_NEAR(bessel_j0(x), std::cyl_bessel_j(0.0, x), 2e-11) << x;
    EXPECT_NEAR(bessel_j1(x), std::cyl_bessel_j(1.0, x), 2e-11) << x;
  }
}

TEST(Bessel, HighOrderSmallArgumentUnderflowsGracefully) {
  // J_50(1) ~ 2.9e-80: Miller's algorithm must not produce NaN/Inf.
  const double value = bessel_jn(50, 1.0);
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_NEAR(value, 0.0, 1e-60);
  EXPECT_GT(value, 0.0);  // J_n(x) > 0 for 0 < x << n
}

TEST(Bessel, LargeArgument) {
  // Asymptotic region: compare against std at x = 100.
  for (const int n : {0, 1, 2, 5}) {
    EXPECT_NEAR(bessel_jn(n, 100.0),
                std::cyl_bessel_j(static_cast<double>(n), 100.0), 1e-11)
        << "n=" << n;
  }
}

TEST(Bessel, PaperArguments) {
  // The arguments the paper's scenarios actually use.
  // Spectral: J0(2 pi * 50 * tau) for tau in {1, 3, 4} ms.
  EXPECT_NEAR(bessel_j0(2.0 * M_PI * 50.0 * 1e-3),
              std::cyl_bessel_j(0.0, 2.0 * M_PI * 50.0 * 1e-3), 1e-13);
  // Spatial: J_q(2 pi d) for d in {1, 2}, q up to ~30.
  for (int q = 0; q <= 30; ++q) {
    for (const double d : {1.0, 2.0}) {
      EXPECT_NEAR(bessel_jn(q, 2.0 * M_PI * d),
                  std::cyl_bessel_j(static_cast<double>(q), 2.0 * M_PI * d),
                  1e-10);
    }
  }
}

}  // namespace
