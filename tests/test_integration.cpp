// End-to-end integration tests: physical scenario -> covariance -> generator
// -> measured statistics, cross-validation of the proposed method against
// the conventional baselines inside their common scope, and the full
// paper-parameter real-time pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/baselines/beaulieu_merani.hpp"
#include "rfade/baselines/sorooshyari_daut.hpp"
#include "rfade/channel/spatial.hpp"
#include "rfade/channel/spectral.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/stats/fading_metrics.hpp"
#include "rfade/stats/moments.hpp"

namespace {

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

TEST(Integration, SpectralScenarioEndToEnd) {
  // Paper Sec. 6 spectral case: scenario -> Eq. (22) -> generator -> stats.
  const auto scenario = channel::paper_spectral_scenario();
  const CMatrix k = channel::spectral_covariance_matrix(scenario);
  const core::EnvelopeGenerator gen(k);
  const auto report = core::validate_generator(
      gen, {.samples = 200000, .seed = 71, .parallel = true,
            .chunk_size = 8192, .ks_samples_per_branch = 20000});
  EXPECT_LT(report.covariance_rel_error, 0.01);
  EXPECT_GT(report.worst_ks_p_value, 1e-4);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_LT(report.envelope_mean_rel_error[j], 0.01);
    EXPECT_LT(report.envelope_variance_rel_error[j], 0.03);
  }
}

TEST(Integration, SpatialScenarioEndToEnd) {
  const auto scenario = channel::paper_spatial_scenario();
  const CMatrix k = channel::spatial_covariance_matrix(scenario);
  const core::EnvelopeGenerator gen(k);
  const auto report = core::validate_generator(
      gen, {.samples = 200000, .seed = 72, .parallel = true,
            .chunk_size = 8192, .ks_samples_per_branch = 20000});
  EXPECT_LT(report.covariance_rel_error, 0.01);
  EXPECT_GT(report.worst_ks_p_value, 1e-4);
}

TEST(Integration, ProposedMatchesBeaulieuMeraniInsideItsScope) {
  // On a PD equal-power K both methods must realise the same covariance;
  // the proposed method's advantage is only *outside* this scope.
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const core::EnvelopeGenerator proposed(k);
  const baselines::BeaulieuMeraniGenerator conventional(k);

  random::Rng rng_a(73);
  random::Rng rng_b(74);
  stats::CovarianceAccumulator acc_a(3);
  stats::CovarianceAccumulator acc_b(3);
  numeric::CVector z(3);
  for (int i = 0; i < 150000; ++i) {
    proposed.sample_into(rng_a, z);
    acc_a.add(z);
    acc_b.add(conventional.sample(rng_b));
  }
  EXPECT_LT(stats::relative_frobenius_error(acc_a.covariance(),
                                            acc_b.covariance()),
            0.03);
}

TEST(Integration, ProposedHandlesWhatBaselinesCannot) {
  // A covariance specification no conventional method covers completely:
  // unequal powers (kills [1],[2],[3],[4],[6]) + complex covariances
  // (kills [5]) + not PSD (kills everything Cholesky-based).
  core::CovarianceBuilder builder(3);
  builder.set_gaussian_power(0, 1.0)
      .set_gaussian_power(1, 2.0)
      .set_gaussian_power(2, 0.5);
  builder.set_cross_entry(0, 1, cdouble(1.3, 0.4));
  builder.set_cross_entry(1, 2, cdouble(0.9, -0.2));
  builder.set_cross_entry(0, 2, cdouble(-0.6, 0.3));
  const CMatrix k = builder.build();
  ASSERT_FALSE(core::is_positive_semidefinite(k));

  const core::EnvelopeGenerator gen(k);
  EXPECT_FALSE(gen.coloring().psd.was_psd);
  const auto report = core::validate_generator(
      gen, {.samples = 150000, .seed = 75, .parallel = true,
            .chunk_size = 8192, .ks_samples_per_branch = 15000});
  // The generator realises the nearest-PSD covariance faithfully.
  EXPECT_LT(report.covariance_rel_error, 0.02);
  EXPECT_GT(report.worst_ks_p_value, 1e-4);
}

TEST(Integration, PaperParameterRealTimePipeline) {
  // Full Sec. 6 configuration: M=4096, fm=0.05, sigma_orig^2=1/2, Eq. (22).
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  core::RealTimeOptions options;
  options.idft_size = 4096;
  options.normalized_doppler = 0.05;
  options.input_variance_per_dim = 0.5;
  const core::RealTimeGenerator gen(k, options);

  random::Rng rng(76);
  // Envelope RMS must equal sigma_g = sqrt(diag K) = 1 per branch.
  numeric::RVector e0;
  stats::CovarianceAccumulator acc(3);
  numeric::CVector z(3);
  for (int b = 0; b < 30; ++b) {
    const CMatrix block = gen.generate_block(rng);
    for (std::size_t l = 0; l < block.rows(); ++l) {
      e0.push_back(std::abs(block(l, 0)));
      for (std::size_t j = 0; j < 3; ++j) {
        z[j] = block(l, j);
      }
      acc.add(z);
    }
  }
  EXPECT_NEAR(stats::rms(e0), 1.0, 0.05);
  EXPECT_LT(stats::relative_frobenius_error(acc.covariance(), k), 0.08);
}

TEST(Integration, RealTimeFadingMetricsMatchRayleighTheory) {
  // LCR at rho = 1/sqrt(2) for the paper's Fs = 1 kHz, Fm = 50 Hz setup.
  const CMatrix k = CMatrix::identity(1);
  core::RealTimeOptions options;
  options.idft_size = 4096;
  options.normalized_doppler = 0.05;  // Fm/Fs = 50/1000
  options.input_variance_per_dim = 0.5;
  const core::RealTimeGenerator gen(k, options);

  const double sample_rate_hz = 1000.0;
  const double max_doppler_hz = 50.0;
  random::Rng rng(77);
  numeric::RVector envelope;
  for (int b = 0; b < 40; ++b) {
    const numeric::RMatrix block = gen.generate_envelope_block(rng);
    for (std::size_t l = 0; l < block.rows(); ++l) {
      envelope.push_back(block(l, 0));
    }
  }
  const double rho = 1.0 / std::sqrt(2.0);
  const double threshold = rho * stats::rms(envelope);
  const auto metrics =
      stats::measure_fading_metrics(envelope, threshold, sample_rate_hz);
  const double lcr_theory = stats::theoretical_lcr(rho, max_doppler_hz);
  const double afd_theory = stats::theoretical_afd(rho, max_doppler_hz);
  EXPECT_NEAR(metrics.level_crossing_rate / lcr_theory, 1.0, 0.15);
  EXPECT_NEAR(metrics.average_fade_duration / afd_theory, 1.0, 0.2);
}

TEST(Integration, ProposedVsFlawedRealTimePowerComparison) {
  // The E7 headline, end to end: identical K, identical branch design;
  // only the variance handling differs.
  const CMatrix k =
      channel::spatial_covariance_matrix(channel::paper_spatial_scenario());
  core::RealTimeOptions good;
  good.idft_size = 1024;
  good.normalized_doppler = 0.05;
  good.input_variance_per_dim = 0.5;
  const core::RealTimeGenerator proposed(k, good);
  const baselines::SorooshyariDautRealTime flawed(k, 1024, 0.05, 0.5);

  auto mean_power = [](const CMatrix& block) {
    double power = 0.0;
    for (std::size_t l = 0; l < block.rows(); ++l) {
      power += std::norm(block(l, 0));
    }
    return power / double(block.rows());
  };

  random::Rng rng_a(78);
  random::Rng rng_b(79);
  double power_good = 0.0;
  double power_flawed = 0.0;
  const int blocks = 40;
  for (int b = 0; b < blocks; ++b) {
    power_good += mean_power(proposed.generate_block(rng_a)) / blocks;
    power_flawed += mean_power(flawed.generate_block(rng_b)) / blocks;
  }
  EXPECT_NEAR(power_good, 1.0, 0.1);     // proposed: correct power
  EXPECT_LT(power_flawed, 1e-2);         // flawed: orders of magnitude off
}

TEST(Integration, EigenMethodAblationProducesIdenticalStatistics) {
  // A1 sanity: Jacobi- and QL-based coloring realise the same covariance.
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  core::GeneratorOptions jacobi;
  jacobi.coloring.psd.eigen_method = numeric::EigenMethod::Jacobi;
  const core::EnvelopeGenerator gen_jacobi(k, jacobi);
  const core::EnvelopeGenerator gen_ql(k);
  EXPECT_LT(numeric::max_abs_diff(
                numeric::gram(gen_jacobi.coloring_matrix()),
                numeric::gram(gen_ql.coloring_matrix())),
            1e-9);
}

}  // namespace
