// Tests for the real-time generator (paper Sec. 5, Fig. 3): achieved
// covariance with the Eq. (19) correction, the Sorooshyari-Daut failure
// mode without it, per-branch J0 autocorrelation, and Rayleigh marginals.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/channel/spatial.hpp"
#include "rfade/channel/spectral.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/special/bessel.hpp"
#include "rfade/stats/autocorrelation.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/stats/distributions.hpp"
#include "rfade/stats/ks_test.hpp"
#include "rfade/stats/moments.hpp"

namespace {

using namespace rfade;
using core::RealTimeGenerator;
using core::RealTimeOptions;
using core::VarianceHandling;
using numeric::cdouble;
using numeric::CMatrix;

RealTimeOptions small_options() {
  // Smaller blocks than the paper's M=4096 keep test runtime low while
  // exercising the same machinery.
  RealTimeOptions options;
  options.idft_size = 512;
  options.normalized_doppler = 0.05;
  options.input_variance_per_dim = 0.5;
  return options;
}

TEST(RealTime, BlockShapesAndAccessors) {
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const RealTimeGenerator gen(k, small_options());
  EXPECT_EQ(gen.dimension(), 3u);
  EXPECT_EQ(gen.block_size(), 512u);
  EXPECT_GT(gen.branch_output_variance(), 0.0);
  EXPECT_DOUBLE_EQ(gen.assumed_variance(), gen.branch_output_variance());

  random::Rng rng(1);
  const CMatrix block = gen.generate_block(rng);
  EXPECT_EQ(block.rows(), 512u);
  EXPECT_EQ(block.cols(), 3u);
  const numeric::RMatrix envelopes = gen.generate_envelope_block(rng);
  EXPECT_EQ(envelopes.rows(), 512u);
  EXPECT_EQ(envelopes.cols(), 3u);
}

TEST(RealTime, DeterministicGivenSeed) {
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const RealTimeGenerator gen(k, small_options());
  random::Rng a(5);
  random::Rng b(5);
  EXPECT_LT(numeric::max_abs_diff(gen.generate_block(a), gen.generate_block(b)),
            0.0 + 1e-15);
}

TEST(RealTime, AchievesDesiredCovarianceWithAnalyticCorrection) {
  // The paper's central Sec. 5 claim: with the Eq. (19) correction the
  // lag-0 covariance across time equals the desired K.
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const RealTimeGenerator gen(k, small_options());
  random::Rng rng(2);
  stats::CovarianceAccumulator acc(3);
  numeric::CVector z(3);
  for (int b = 0; b < 120; ++b) {
    const CMatrix block = gen.generate_block(rng);
    for (std::size_t l = 0; l < block.rows(); ++l) {
      for (std::size_t j = 0; j < 3; ++j) {
        z[j] = block(l, j);
      }
      acc.add(z);
    }
  }
  // Time samples are correlated, so convergence is slower than i.i.d.;
  // 120 blocks x 512 samples still pins the covariance within ~5%.
  EXPECT_LT(stats::relative_frobenius_error(acc.covariance(), k), 0.05);
}

TEST(RealTime, VarianceUnawareModeMisscalesPower) {
  // Experiment E7's mechanism: without the Eq. (19) correction the
  // realised power is sigma_g^2 / (2 sigma_orig^2) times the desired one.
  const CMatrix k =
      channel::spatial_covariance_matrix(channel::paper_spatial_scenario());
  RealTimeOptions flawed = small_options();
  flawed.variance_handling = VarianceHandling::AssumeInputVariance;
  const RealTimeGenerator gen(k, flawed);
  EXPECT_DOUBLE_EQ(gen.assumed_variance(), 1.0);  // 2 * 0.5

  const double expected_ratio = gen.branch_output_variance() / 1.0;
  random::Rng rng(3);
  double power = 0.0;
  std::size_t count = 0;
  for (int b = 0; b < 60; ++b) {
    const CMatrix block = gen.generate_block(rng);
    for (std::size_t l = 0; l < block.rows(); ++l) {
      power += std::norm(block(l, 0));
      ++count;
    }
  }
  const double measured_ratio = (power / double(count)) / k(0, 0).real();
  EXPECT_NEAR(measured_ratio / expected_ratio, 1.0, 0.1);
  // And the mis-scaling is dramatic (orders of magnitude).
  EXPECT_LT(measured_ratio, 1e-2);
}

TEST(RealTime, BranchAutocorrelationTracksJ0) {
  // Every colored output z_k keeps the J0(2 pi fm d) autocorrelation
  // because all branches share the same Doppler filter.
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  RealTimeOptions options = small_options();
  options.idft_size = 4096;  // long blocks for a clean estimate
  const RealTimeGenerator gen(k, options);
  random::Rng rng(4);

  const std::size_t max_lag = 60;
  numeric::RVector avg(max_lag + 1, 0.0);
  const int blocks = 12;
  for (int b = 0; b < blocks; ++b) {
    const CMatrix block = gen.generate_block(rng);
    numeric::CVector series(block.rows());
    for (std::size_t l = 0; l < block.rows(); ++l) {
      series[l] = block(l, 1);  // middle branch
    }
    const auto rho = stats::normalized_autocorrelation(series, max_lag);
    for (std::size_t d = 0; d <= max_lag; ++d) {
      avg[d] += rho[d] / blocks;
    }
  }
  for (std::size_t d = 0; d <= max_lag; d += 10) {
    EXPECT_NEAR(avg[d],
                special::bessel_j0(2.0 * M_PI * 0.05 * double(d)), 0.1)
        << "lag " << d;
  }
}

TEST(RealTime, EnvelopesAreRayleigh) {
  const CMatrix k =
      channel::spatial_covariance_matrix(channel::paper_spatial_scenario());
  const RealTimeGenerator gen(k, small_options());
  random::Rng rng(5);
  // One decorrelated sample per block per branch.
  numeric::RVector samples;
  for (int b = 0; b < 1500; ++b) {
    const numeric::RMatrix envelopes = gen.generate_envelope_block(rng);
    samples.push_back(envelopes(0, 0));
  }
  const auto rayleigh =
      stats::RayleighDistribution::from_gaussian_power(k(0, 0).real());
  const auto ks =
      stats::ks_test(samples, [&](double r) { return rayleigh.cdf(r); });
  EXPECT_GT(ks.p_value, 1e-3);
}

TEST(RealTime, CrossCorrelationOrderingFollowsK) {
  // Envelope correlation should be ordered like |K_kj| (strongly
  // correlated Gaussians => strongly correlated envelopes).
  const CMatrix k =
      channel::spatial_covariance_matrix(channel::paper_spatial_scenario());
  const RealTimeGenerator gen(k, small_options());
  random::Rng rng(6);
  double corr01 = 0.0;
  double corr02 = 0.0;
  int blocks = 40;
  for (int b = 0; b < blocks; ++b) {
    const numeric::RMatrix env = gen.generate_envelope_block(rng);
    numeric::RVector e0(env.rows()), e1(env.rows()), e2(env.rows());
    for (std::size_t l = 0; l < env.rows(); ++l) {
      e0[l] = env(l, 0);
      e1[l] = env(l, 1);
      e2[l] = env(l, 2);
    }
    corr01 += stats::pearson_correlation(e0, e1) / blocks;
    corr02 += stats::pearson_correlation(e0, e2) / blocks;
  }
  // |K_01| = 0.8123 > |K_02| = 0.3730 => envelope correlation follows.
  EXPECT_GT(corr01, corr02);
  EXPECT_GT(corr01, 0.4);
}

TEST(RealTime, NonPsdDesiredMatrixHandled) {
  CMatrix k = CMatrix::identity(2);
  k(0, 1) = cdouble(1.3, 0.0);
  k(1, 0) = cdouble(1.3, 0.0);
  const RealTimeGenerator gen(k, small_options());
  EXPECT_FALSE(gen.coloring().psd.was_psd);
  EXPECT_TRUE(core::is_positive_semidefinite(gen.effective_covariance()));
  random::Rng rng(7);
  EXPECT_NO_THROW((void)gen.generate_block(rng));
}

TEST(RealTime, RejectsInvalidOptions) {
  const CMatrix k = CMatrix::identity(2);
  RealTimeOptions bad = small_options();
  bad.normalized_doppler = 0.9;  // above Nyquist
  EXPECT_THROW((void)RealTimeGenerator(k, bad), ContractViolation);
  bad = small_options();
  bad.input_variance_per_dim = 0.0;
  EXPECT_THROW((void)RealTimeGenerator(k, bad), ContractViolation);
}

}  // namespace
