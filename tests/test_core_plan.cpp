// Tests for the shared plan layer (plan.hpp): ColoringPlan reuse across
// generators is bit-identical to the per-class construction paths, blocked
// draws agree with per-sample draws bit-for-bit, the bulk batched paths are
// deterministic and thread-count/order independent, and the blocked GEMM
// kernels reproduce the naive reference products exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/core/plan.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/bulk_gaussian.hpp"
#include "rfade/random/philox.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/support/error.hpp"
#include "rfade/support/parallel.hpp"

namespace {

using namespace rfade;
using core::ColoringPlan;
using core::EnvelopeGenerator;
using core::SamplePipeline;
using numeric::cdouble;
using numeric::CMatrix;

CMatrix paper_k() {
  return channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
}

CMatrix tridiagonal_covariance(std::size_t n) {
  CMatrix k = CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = cdouble(0.4, 0.2);
    k(i + 1, i) = cdouble(0.4, -0.2);
  }
  return k;
}

CMatrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  random::Rng rng(seed);
  CMatrix a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      a(i, j) = rng.complex_gaussian(1.0);
    }
  }
  return a;
}

TEST(ColoringPlan, SharedAcrossGeneratorsBitIdentical) {
  const CMatrix k = paper_k();
  const auto plan = ColoringPlan::create(k);

  // One plan, three consumers: per-class construction and plan reuse must
  // produce the same bits with the same seed.
  const EnvelopeGenerator from_matrix(k);
  const EnvelopeGenerator from_plan(plan);
  const SamplePipeline pipeline(plan);

  EXPECT_LT(numeric::max_abs_diff(from_matrix.coloring_matrix(),
                                  from_plan.coloring_matrix()),
            1e-300);
  random::Rng a(42);
  random::Rng b(42);
  random::Rng c(42);
  for (int i = 0; i < 50; ++i) {
    const auto za = from_matrix.sample(a);
    const auto zb = from_plan.sample(b);
    const auto zc = pipeline.sample(c);
    for (std::size_t j = 0; j < k.rows(); ++j) {
      EXPECT_EQ(za[j], zb[j]);
      EXPECT_EQ(za[j], zc[j]);
    }
  }
}

TEST(ColoringPlan, MatchesHandRolledSeedPath) {
  // The seed code's per-draw loop (streaming matvec over L), reproduced
  // verbatim, must match SamplePipeline::sample_into bit-for-bit.
  const CMatrix k = paper_k();
  const auto plan = ColoringPlan::create(k);
  const SamplePipeline pipeline(plan);
  const std::size_t n = plan->dimension();
  const CMatrix& l = plan->coloring_matrix();

  random::Rng rng_new(7);
  random::Rng rng_old(7);
  numeric::CVector z_new(n);
  for (int t = 0; t < 100; ++t) {
    pipeline.sample_into(rng_new, z_new);
    numeric::CVector z_old(n, cdouble{});
    for (std::size_t j = 0; j < n; ++j) {
      const cdouble w = rng_old.complex_gaussian(1.0);
      const cdouble scaled = w * 1.0;
      for (std::size_t i = 0; i < n; ++i) {
        z_old[i] += l(i, j) * scaled;
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(z_new[j], z_old[j]);
    }
  }
}

TEST(ColoringPlan, RealTimeSharedPlanBitIdentical) {
  const CMatrix k = paper_k();
  const auto plan = ColoringPlan::create(k);
  core::RealTimeOptions options;
  options.idft_size = 256;
  options.normalized_doppler = 0.05;
  const core::RealTimeGenerator from_matrix(k, options);
  const core::RealTimeGenerator from_plan(plan, options);
  EXPECT_EQ(from_matrix.plan()->coloring_matrix(),
            from_plan.plan()->coloring_matrix());

  random::Rng a(11);
  random::Rng b(11);
  const CMatrix block_a = from_matrix.generate_block(a);
  const CMatrix block_b = from_plan.generate_block(b);
  EXPECT_EQ(block_a, block_b);
}

TEST(ColoringPlan, RealTimeMatchesHandRolledColoring) {
  // The seed RealTimeGenerator colored with a per-instant triple loop;
  // the pipeline's blocked color_block must reproduce it bit-for-bit.
  const CMatrix k = paper_k();
  core::RealTimeOptions options;
  options.idft_size = 128;
  options.parallel_branches = true;
  const core::RealTimeGenerator gen(k, options);
  const std::size_t n = gen.dimension();
  const std::size_t m = gen.block_size();
  const CMatrix& l = gen.plan()->coloring_matrix();

  random::Rng rng_new(13);
  random::Rng rng_old(13);
  const CMatrix block_new = gen.generate_block(rng_new);

  CMatrix branch_outputs(n, m);
  for (std::size_t j = 0; j < n; ++j) {
    const numeric::CVector u = gen.branch().generate_block(rng_old);
    for (std::size_t t = 0; t < m; ++t) {
      branch_outputs(j, t) = u[t];
    }
  }
  const double inv_sigma = 1.0 / std::sqrt(gen.assumed_variance());
  CMatrix block_old(m, n, cdouble{});
  for (std::size_t t = 0; t < m; ++t) {
    for (std::size_t j = 0; j < n; ++j) {
      const cdouble w = branch_outputs(j, t) * inv_sigma;
      for (std::size_t i = 0; i < n; ++i) {
        block_old(t, i) += l(i, j) * w;
      }
    }
  }
  EXPECT_EQ(block_new, block_old);
}

TEST(SamplePipeline, BlockedMatchesPerSampleBitwise) {
  const auto plan = ColoringPlan::create(tridiagonal_covariance(12));
  const SamplePipeline pipeline(plan);
  const std::size_t n = pipeline.dimension();

  random::Rng rng_block(99);
  random::Rng rng_draw(99);
  const CMatrix block = pipeline.sample_block(257, rng_block);
  numeric::CVector z(n);
  for (std::size_t t = 0; t < block.rows(); ++t) {
    pipeline.sample_into(rng_draw, z);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(block(t, j), z[j]) << "row " << t << " col " << j;
    }
  }
  // Both rngs must end in the same state: the blocked path consumed the
  // generator in exactly per-draw order.
  EXPECT_EQ(rng_block.next_u64(), rng_draw.next_u64());
}

TEST(SamplePipeline, StreamDeterministicForAnyThreadCount) {
  const auto plan = ColoringPlan::create(tridiagonal_covariance(6));
  core::PipelineOptions serial_options;
  serial_options.block_size = 512;
  serial_options.parallel = false;
  core::PipelineOptions parallel_options = serial_options;
  parallel_options.parallel = true;
  const SamplePipeline serial(plan, serial_options);
  const SamplePipeline parallel(plan, parallel_options);

  // 5000 samples = 10 blocks (one partial): serial vs thread-pool fan-out
  // must agree bit-for-bit, because every block's randomness is a pure
  // function of (seed, block index).
  const CMatrix a = serial.sample_stream(5000, 0xABCDEF);
  const CMatrix b = parallel.sample_stream(5000, 0xABCDEF);
  EXPECT_EQ(a, b);
}

TEST(SamplePipeline, StreamBlocksRegenerableInAnyOrder) {
  const auto plan = ColoringPlan::create(tridiagonal_covariance(5));
  core::PipelineOptions options;
  options.block_size = 300;
  const SamplePipeline pipeline(plan);
  const SamplePipeline pipeline_opts(plan, options);

  const std::size_t count = 1000;  // blocks of 300: 300/300/300/100
  const CMatrix stream = pipeline_opts.sample_stream(count, 5);
  // Reassemble from individual blocks requested in reverse order.
  const std::size_t n = plan->dimension();
  CMatrix rebuilt(count, n);
  for (std::size_t block = 4; block-- > 0;) {
    const std::size_t begin = block * options.block_size;
    const std::size_t rows = std::min(options.block_size, count - begin);
    const CMatrix piece = pipeline.sample_block(rows, 5, block);
    for (std::size_t t = 0; t < rows; ++t) {
      for (std::size_t j = 0; j < n; ++j) {
        rebuilt(begin + t, j) = piece(t, j);
      }
    }
  }
  EXPECT_EQ(stream, rebuilt);
}

TEST(SamplePipeline, BulkPathInvariantToSampleVariance) {
  const auto plan = ColoringPlan::create(tridiagonal_covariance(4));
  core::PipelineOptions big;
  big.sample_variance = 25.0;
  const SamplePipeline unit(plan);
  const SamplePipeline scaled(plan, big);
  // Step 6's sigma_w cancels exactly in the batched path.
  EXPECT_EQ(unit.sample_block(100, 3, 0), scaled.sample_block(100, 3, 0));
}

TEST(SamplePipeline, BulkPathAchievesDesiredCovariance) {
  const CMatrix k = paper_k();
  const auto plan = ColoringPlan::create(k);
  const SamplePipeline pipeline(plan);
  const CMatrix z = pipeline.sample_stream(200000, 0xBEEF);
  stats::CovarianceAccumulator acc(k.rows());
  numeric::CVector row(k.rows());
  for (std::size_t t = 0; t < z.rows(); ++t) {
    for (std::size_t j = 0; j < k.rows(); ++j) {
      row[j] = z(t, j);
    }
    acc.add(row);
  }
  EXPECT_LT(stats::relative_frobenius_error(acc.covariance(), k), 0.01);
}

TEST(SamplePipeline, ColorBlockMatchesManualLoop) {
  const auto plan = ColoringPlan::create(tridiagonal_covariance(7));
  const SamplePipeline pipeline(plan);
  const std::size_t n = plan->dimension();
  const CMatrix w = random_matrix(93, n, 21);
  const double variance = 0.37;

  const CMatrix colored = pipeline.color_block(w, variance);
  const double inv_sigma = 1.0 / std::sqrt(variance);
  const CMatrix& l = plan->coloring_matrix();
  CMatrix expected(w.rows(), n, cdouble{});
  for (std::size_t t = 0; t < w.rows(); ++t) {
    for (std::size_t j = 0; j < n; ++j) {
      const cdouble scaled = w(t, j) * inv_sigma;
      for (std::size_t i = 0; i < n; ++i) {
        expected(t, i) += l(i, j) * scaled;
      }
    }
  }
  EXPECT_EQ(colored, expected);
}

TEST(SamplePipeline, RejectsInvalidArguments) {
  const auto plan = ColoringPlan::create(tridiagonal_covariance(3));
  EXPECT_THROW(SamplePipeline(nullptr), ContractViolation);
  core::PipelineOptions bad_variance;
  bad_variance.sample_variance = 0.0;
  EXPECT_THROW(SamplePipeline(plan, bad_variance), ContractViolation);
  core::PipelineOptions bad_block;
  bad_block.block_size = 0;
  EXPECT_THROW(SamplePipeline(plan, bad_block), ContractViolation);

  const SamplePipeline pipeline(plan);
  random::Rng rng(1);
  EXPECT_THROW((void)pipeline.sample_block(0, rng), ContractViolation);
  EXPECT_THROW((void)pipeline.sample_block(0, 1, 0), ContractViolation);
  EXPECT_THROW((void)pipeline.color_block(CMatrix(4, 2), 1.0),
               ContractViolation);
  EXPECT_THROW((void)pipeline.color_block(CMatrix(4, 3), 0.0),
               ContractViolation);
}

TEST(MatrixOps, MultiplyBlockBitIdenticalToNaive) {
  const CMatrix a = random_matrix(200, 17, 31);
  const CMatrix b = random_matrix(17, 9, 32);
  const CMatrix naive = numeric::multiply(a, b);
  const CMatrix blocked = numeric::multiply_block(a, b);
  EXPECT_EQ(naive, blocked);
}

TEST(MatrixOps, MultiplyBlockPlanarBitIdentical) {
  const std::size_t m = 150;
  const std::size_t k = 11;
  const std::size_t n = 11;
  const CMatrix a = random_matrix(m, k, 41);
  const CMatrix b = random_matrix(k, n, 42);
  std::vector<double> a_re(m * k);
  std::vector<double> a_im(m * k);
  std::vector<double> b_re(k * n);
  std::vector<double> b_im(k * n);
  for (std::size_t i = 0; i < m * k; ++i) {
    a_re[i] = a.data()[i].real();
    a_im[i] = a.data()[i].imag();
  }
  for (std::size_t i = 0; i < k * n; ++i) {
    b_re[i] = b.data()[i].real();
    b_im[i] = b.data()[i].imag();
  }
  CMatrix planar(m, n);
  numeric::multiply_block_planar(a_re.data(), a_im.data(), m, k, b_re.data(),
                                 b_im.data(), n, planar.data());
  EXPECT_EQ(numeric::multiply_block(a, b), planar);
}

TEST(BulkGaussian, ConsumesExactPhiloxCounterBlocks) {
  // Sample t of substream (seed, stream) must be the Box-Muller image of
  // counter block t — the contract that makes ranges order-independent.
  const std::uint64_t seed = 0x5EED;
  const std::uint64_t stream = 9;
  const std::size_t count = 64;
  std::vector<double> re(count);
  std::vector<double> im(count);
  random::fill_complex_gaussians_planar(seed, stream, 1.0, count, re.data(),
                                        im.data());
  for (const std::size_t t : {0ul, 1ul, 31ul, 63ul}) {
    const auto words = random::PhiloxEngine::block(
        {static_cast<std::uint32_t>(seed),
         static_cast<std::uint32_t>(seed >> 32)},
        {static_cast<std::uint32_t>(t), 0u,
         static_cast<std::uint32_t>(stream), 0u});
    const std::uint64_t bits01 =
        (static_cast<std::uint64_t>(words[1]) << 32) | words[0];
    const std::uint64_t bits23 =
        (static_cast<std::uint64_t>(words[3]) << 32) | words[2];
    const double u = 1.0 - random::to_unit_double(bits01);
    const double v = 6.283185307179586476925286766559 *
                     random::to_unit_double(bits23);
    const double radius = std::sqrt(0.5) * std::sqrt(-2.0 * std::log(u));
    // The bulk kernel may evaluate log/sin/cos through vectorized libm
    // variants; allow a few ulp.
    EXPECT_NEAR(re[t], radius * std::cos(v), 1e-10);
    EXPECT_NEAR(im[t], radius * std::sin(v), 1e-10);
  }
  // And the fill itself is a pure function of its key.
  std::vector<double> re2(count);
  std::vector<double> im2(count);
  random::fill_complex_gaussians_planar(seed, stream, 1.0, count, re2.data(),
                                        im2.data());
  EXPECT_EQ(re, re2);
  EXPECT_EQ(im, im2);
}

TEST(BulkGaussian, BlockSubstreamHelperMatchesPhiloxStream) {
  // block_substream(seed, b) must be the Philox engine on stream b + 1.
  random::Rng helper = random::block_substream(0x1234, 6);
  random::Rng manual(0x1234, 7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(helper.next_u64(), manual.next_u64());
  }
}

TEST(SamplePipeline, StreamComposesWithOuterPoolWork) {
  // A pool task that itself calls sample_stream must not deadlock: the
  // distributor runs nested work inline on the worker, and the per-block
  // substreams make the result identical to the top-level call.
  const auto plan = ColoringPlan::create(tridiagonal_covariance(4));
  const SamplePipeline pipeline(plan);
  const CMatrix direct = pipeline.sample_stream(3000, 17);
  std::vector<CMatrix> nested(4);
  support::parallel_for_chunked(
      4,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        for (std::size_t i = begin; i < end; ++i) {
          nested[i] = pipeline.sample_stream(3000, 17);
        }
      },
      {/*chunk_size=*/1, /*serial=*/false});
  for (const CMatrix& result : nested) {
    EXPECT_EQ(result, direct);
  }
}

TEST(EnvelopeGenerator, StreamConvenienceMatchesPipeline) {
  const CMatrix k = paper_k();
  const EnvelopeGenerator gen(k);
  EXPECT_EQ(gen.sample_stream(1000, 77),
            gen.pipeline().sample_stream(1000, 77));
}

}  // namespace
