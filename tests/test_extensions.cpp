// Tests for the extension modules: Gauss 2F1, the exact envelope
// correlation map (forward + inverse, validated against Monte-Carlo), the
// whitening transform, and the streaming Doppler source.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/core/covariance_spec.hpp"
#include "rfade/core/envelope_correlation.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/core/whitening.hpp"
#include "rfade/doppler/streaming.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/special/bessel.hpp"
#include "rfade/special/hypergeometric.hpp"
#include "rfade/stats/autocorrelation.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/stats/distributions.hpp"
#include "rfade/stats/ks_test.hpp"
#include "rfade/stats/moments.hpp"

namespace {

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

constexpr double kPi = 3.141592653589793238462643383279502884;

// ---------------------------------------------------------------------------
// Gauss 2F1
// ---------------------------------------------------------------------------

TEST(Hypergeometric, ElementaryIdentities) {
  // 2F1(1, 1; 2; x) = -ln(1-x)/x.
  for (const double x : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(special::hypergeometric_2f1(1.0, 1.0, 2.0, x),
                -std::log(1.0 - x) / x, 1e-12);
  }
  // 2F1(a, b; c; 0) = 1.
  EXPECT_DOUBLE_EQ(special::hypergeometric_2f1(-0.5, -0.5, 1.0, 0.0), 1.0);
  // Binomial case: 2F1(-n, b; b; -x) = (1+x)^n for integer n.
  EXPECT_NEAR(special::hypergeometric_2f1(-3.0, 2.0, 2.0, -0.5),
              std::pow(1.5, 3.0), 1e-12);
}

TEST(Hypergeometric, RayleighCaseEndpoint) {
  // 2F1(-1/2, -1/2; 1; 1) = 4/pi (Gauss's theorem).
  EXPECT_NEAR(special::hypergeometric_2f1(-0.5, -0.5, 1.0, 1.0), 4.0 / kPi,
              1e-10);
}

TEST(Hypergeometric, DomainChecks) {
  EXPECT_THROW((void)special::hypergeometric_2f1(1.0, 1.0, 1.0, 1.5),
               ContractViolation);
  EXPECT_THROW((void)special::hypergeometric_2f1(1.0, 1.0, -2.0, 0.5),
               ContractViolation);
  // At |x| = 1 the series needs c - a - b > 0.
  EXPECT_THROW((void)special::hypergeometric_2f1(1.0, 1.0, 1.5, 1.0),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// Envelope correlation map
// ---------------------------------------------------------------------------

TEST(EnvelopeCorrelation, ForwardMapProperties) {
  EXPECT_NEAR(core::envelope_correlation_from_gaussian(cdouble(0, 0), 1, 1),
              0.0, 1e-14);
  EXPECT_NEAR(core::envelope_correlation_from_gaussian(cdouble(1, 0), 1, 1),
              1.0, 1e-10);
  // Depends only on |mu|.
  EXPECT_NEAR(core::envelope_correlation_from_gaussian(cdouble(0, 0.6), 1, 1),
              core::envelope_correlation_from_gaussian(cdouble(0.6, 0), 1, 1),
              1e-14);
  // Strictly increasing in |mu|.
  double previous = -1.0;
  for (double mag = 0.0; mag <= 1.0; mag += 0.05) {
    const double value = core::envelope_correlation_from_gaussian(
        cdouble(mag, 0.0), 1.0, 1.0);
    EXPECT_GT(value, previous);
    previous = value;
  }
  // Close to the popular |rho|^2 approximation but not equal.
  const double exact =
      core::envelope_correlation_from_gaussian(cdouble(0.7, 0), 1, 1);
  EXPECT_NEAR(exact, 0.49, 0.05);
}

TEST(EnvelopeCorrelation, InverseMapRoundTrip) {
  for (const double target : {0.05, 0.2, 0.5, 0.8, 0.95}) {
    const double rho =
        core::gaussian_correlation_for_envelope_correlation(target);
    const double back = core::envelope_correlation_from_gaussian(
        cdouble(rho, 0.0), 1.0, 1.0);
    EXPECT_NEAR(back, target, 1e-10) << "target " << target;
  }
  EXPECT_DOUBLE_EQ(core::gaussian_correlation_for_envelope_correlation(0.0),
                   0.0);
  EXPECT_DOUBLE_EQ(core::gaussian_correlation_for_envelope_correlation(1.0),
                   1.0);
  EXPECT_THROW((void)core::gaussian_correlation_for_envelope_correlation(1.5),
               ContractViolation);
}

TEST(EnvelopeCorrelation, MatchesMonteCarlo) {
  // The exact 2F1 formula against measured Pearson correlation of the
  // generated envelopes — a deep end-to-end consistency check between the
  // analytic layer and the generator.
  for (const double mag : {0.3, 0.6, 0.9}) {
    core::CovarianceBuilder builder(2);
    builder.set_gaussian_power(0, 1.0).set_gaussian_power(1, 2.0);
    const cdouble mu = mag * std::sqrt(2.0) * std::polar(1.0, 0.7);
    builder.set_cross_entry(0, 1, mu);
    const core::EnvelopeGenerator gen(builder.build());
    const double predicted =
        core::envelope_correlation_from_gaussian(mu, 1.0, 2.0);

    random::Rng rng(0xEC0 + static_cast<std::uint64_t>(mag * 100));
    const std::size_t n = 200000;
    numeric::RVector r0(n);
    numeric::RVector r1(n);
    for (std::size_t t = 0; t < n; ++t) {
      const auto r = gen.sample_envelopes(rng);
      r0[t] = r[0];
      r1[t] = r[1];
    }
    const double measured = stats::pearson_correlation(r0, r1);
    EXPECT_NEAR(measured, predicted, 0.01) << "|rho| = " << mag;
  }
}

TEST(EnvelopeCorrelation, MatrixForm) {
  core::CovarianceBuilder builder(3);
  builder.set_gaussian_power(0, 1.0)
      .set_gaussian_power(1, 1.0)
      .set_gaussian_power(2, 1.0);
  builder.set_cross_entry(0, 1, cdouble(0.8, 0.0));
  builder.set_cross_entry(1, 2, cdouble(0.0, 0.5));
  builder.set_cross_entry(0, 2, cdouble(0.0, 0.0));
  const auto rho = core::envelope_correlation_matrix(builder.build());
  EXPECT_DOUBLE_EQ(rho(0, 0), 1.0);
  EXPECT_NEAR(rho(0, 1), rho(1, 0), 1e-15);
  EXPECT_GT(rho(0, 1), rho(1, 2));  // 0.8 vs 0.5 magnitude
  EXPECT_NEAR(rho(0, 2), 0.0, 1e-14);
}

// ---------------------------------------------------------------------------
// Whitening transform
// ---------------------------------------------------------------------------

TEST(Whitening, InvertsColoringOnFullRankMatrix) {
  core::CovarianceBuilder builder(3);
  builder.set_gaussian_power(0, 1.0)
      .set_gaussian_power(1, 2.0)
      .set_gaussian_power(2, 0.5);
  builder.set_cross_entry(0, 1, cdouble(0.4, 0.3));
  builder.set_cross_entry(1, 2, cdouble(0.2, -0.1));
  builder.set_cross_entry(0, 2, cdouble(0.1, 0.0));
  const CMatrix k = builder.build();
  const core::EnvelopeGenerator gen(k);
  const core::WhiteningTransform whitener(k);
  EXPECT_EQ(whitener.rank(), 3u);

  // Whitened samples must have identity covariance.
  random::Rng rng(0xEC1);
  stats::CovarianceAccumulator acc(3);
  for (int t = 0; t < 100000; ++t) {
    acc.add(whitener.whiten(gen.sample(rng)));
  }
  EXPECT_LT(stats::relative_frobenius_error(acc.covariance(),
                                            CMatrix::identity(3)),
            0.02);
}

TEST(Whitening, PseudoInverseOnRankDeficientMatrix) {
  // K = v v^H: rank 1; whitening keeps one unit-variance direction and
  // returns zero in the annihilated one.
  const numeric::CVector v = {cdouble(1, 0), cdouble(0, 1)};
  CMatrix k(2, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      k(i, j) = v[i] * std::conj(v[j]);
    }
  }
  const core::WhiteningTransform whitener(k);
  EXPECT_EQ(whitener.rank(), 1u);

  const core::EnvelopeGenerator gen(k);
  random::Rng rng(0xEC2);
  stats::RunningStats power_kept;
  stats::RunningStats power_null;
  for (int t = 0; t < 20000; ++t) {
    const auto w = whitener.whiten(gen.sample(rng));
    // Exactly one coordinate carries power; identify by magnitude order.
    const double p0 = std::norm(w[0]);
    const double p1 = std::norm(w[1]);
    power_kept.add(std::max(p0, p1));
    power_null.add(std::min(p0, p1));
  }
  EXPECT_NEAR(power_kept.mean(), 1.0, 0.05);
  EXPECT_LT(power_null.mean(), 1e-12);
}

TEST(Whitening, ValidatesInput) {
  EXPECT_THROW(core::WhiteningTransform{CMatrix(2, 3)}, ContractViolation);
  const core::WhiteningTransform w(CMatrix::identity(2));
  EXPECT_THROW((void)w.whiten(numeric::CVector(3)), ContractViolation);
}

// ---------------------------------------------------------------------------
// Streaming Doppler source
// ---------------------------------------------------------------------------

TEST(Streaming, VariancePreservedAcrossBlocks) {
  doppler::StreamingFadingSource source(512, 0.08, 0.5, 32);
  random::Rng rng(0xEC3);
  const auto stream = source.take(512 * 20, rng);
  EXPECT_NEAR(stats::mean_power(stream) / source.output_variance(), 1.0,
              0.08);
}

TEST(Streaming, MarginalStaysRayleigh) {
  doppler::StreamingFadingSource source(256, 0.1, 0.5, 16);
  random::Rng rng(0xEC4);
  // Decimate to roughly independent samples (one per block length).
  numeric::RVector samples;
  for (int i = 0; i < 3000; ++i) {
    const auto chunk = source.take(256, rng);
    samples.push_back(std::abs(chunk[0]));
  }
  const auto rayleigh = stats::RayleighDistribution::from_gaussian_power(
      source.output_variance());
  const auto ks =
      stats::ks_test(samples, [&](double r) { return rayleigh.cdf(r); });
  EXPECT_GT(ks.p_value, 1e-3);
}

TEST(Streaming, AutocorrelationStillTracksJ0) {
  const double fm = 0.05;
  doppler::StreamingFadingSource source(4096, fm, 0.5, 64);
  random::Rng rng(0xEC5);
  const std::size_t length = 4096 * 8;  // spans several block boundaries
  const auto stream = source.take(length, rng);
  const auto rho = stats::normalized_autocorrelation(stream, 40);
  for (std::size_t d = 0; d <= 40; d += 10) {
    EXPECT_NEAR(rho[d], special::bessel_j0(2.0 * kPi * fm * double(d)), 0.1)
        << "lag " << d;
  }
}

TEST(Streaming, ContinuousAcrossBoundaries) {
  // No sample repetition at block boundaries: consecutive outputs around a
  // boundary must not be bit-identical (the double-emission bug guard).
  doppler::StreamingFadingSource source(64, 0.1, 0.5, 8);
  random::Rng rng(0xEC6);
  const auto stream = source.take(64 * 5, rng);
  std::size_t identical_neighbors = 0;
  for (std::size_t i = 1; i < stream.size(); ++i) {
    identical_neighbors += stream[i] == stream[i - 1] ? 1u : 0u;
  }
  EXPECT_EQ(identical_neighbors, 0u);
}

TEST(Streaming, ValidatesOptions) {
  EXPECT_THROW(doppler::StreamingFadingSource(64, 0.1, 0.5, 0),
               ContractViolation);
  EXPECT_THROW(doppler::StreamingFadingSource(64, 0.1, 0.5, 40),
               ContractViolation);
}

}  // namespace
