// Tests for the scenario subsystem (scenario/): Rician/LOS mean offsets
// threaded through the SamplePipeline hot paths (K = 0 degenerates to the
// plain Rayleigh path bit-for-bit; batched == per-draw with a mean), the
// Rician K-factor sweep against the analytic envelope marginals, and the
// cascaded Rayleigh generator against product-channel theory (second
// moments, Hadamard effective covariance, amount of fading ~ 3).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/plan.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/scenario/cascaded.hpp"
#include "rfade/scenario/scenario_spec.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using core::ColoringPlan;
using core::SamplePipeline;
using numeric::cdouble;
using numeric::CMatrix;
using scenario::CascadedRayleighGenerator;
using scenario::ScenarioSpec;

CMatrix paper_k() {
  return channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
}

CMatrix tridiagonal_covariance(std::size_t n) {
  CMatrix k = CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = cdouble(0.4, 0.2);
    k(i + 1, i) = cdouble(0.4, -0.2);
  }
  return k;
}

// --- Rician / LOS ------------------------------------------------------------

TEST(ScenarioSpec, KZeroIsBitIdenticalToPlainRayleighPipeline) {
  // The acceptance contract: a K = 0 Rician scenario must reproduce the
  // existing Rayleigh batched output bit-for-bit, because the all-zero
  // mean never enters the pipeline.
  const auto plan = ColoringPlan::create(paper_k());
  const ScenarioSpec spec = ScenarioSpec::rician(paper_k(), 0.0, 1.3);
  const SamplePipeline scenario_pipeline = spec.make_pipeline(plan);
  const SamplePipeline plain_pipeline(plan);

  EXPECT_FALSE(spec.has_los());
  EXPECT_FALSE(scenario_pipeline.has_mean_offset());
  EXPECT_EQ(scenario_pipeline.sample_stream(5000, 0xCAFE),
            plain_pipeline.sample_stream(5000, 0xCAFE));

  random::Rng a(7);
  random::Rng b(7);
  EXPECT_EQ(scenario_pipeline.sample_block(257, a),
            plain_pipeline.sample_block(257, b));
}

TEST(ScenarioSpec, MeanThreadedBatchedMatchesPerDraw) {
  // With a LOS mean the batched rng-compatible path must still be
  // bit-identical to per-draw sampling (same GEMM order, mean added last).
  const auto plan = ColoringPlan::create(tridiagonal_covariance(6));
  const ScenarioSpec spec =
      ScenarioSpec::rician(tridiagonal_covariance(6), 4.0, 0.7);
  const SamplePipeline pipeline = spec.make_pipeline(plan);
  ASSERT_TRUE(pipeline.has_mean_offset());

  random::Rng rng_block(31);
  random::Rng rng_draw(31);
  const CMatrix block = pipeline.sample_block(200, rng_block);
  numeric::CVector z(pipeline.dimension());
  for (std::size_t t = 0; t < block.rows(); ++t) {
    pipeline.sample_into(rng_draw, z);
    for (std::size_t j = 0; j < z.size(); ++j) {
      EXPECT_EQ(block(t, j), z[j]) << "row " << t << " col " << j;
    }
  }

  // And the stream path is deterministic for any thread count.
  core::PipelineOptions serial;
  serial.block_size = 512;
  serial.parallel = false;
  const SamplePipeline serial_pipeline = spec.make_pipeline(plan, serial);
  core::PipelineOptions parallel = serial;
  parallel.parallel = true;
  const SamplePipeline parallel_pipeline = spec.make_pipeline(plan, parallel);
  EXPECT_EQ(serial_pipeline.sample_stream(3000, 5),
            parallel_pipeline.sample_stream(3000, 5));
}

TEST(ScenarioSpec, LosMeanShiftsSampleMeanNotCovariance) {
  // The LOS offset moves E[Z] to m but leaves the *centered* covariance
  // at K_bar: the mean must survive normalization and coloring untouched.
  const auto plan = ColoringPlan::create(paper_k());
  const ScenarioSpec spec = ScenarioSpec::rician(paper_k(), 2.5, 0.4);
  const SamplePipeline pipeline = spec.make_pipeline(plan);
  const numeric::CVector mean = spec.los_mean(*plan);

  const CMatrix z = pipeline.sample_stream(200000, 0xA11CE);
  stats::CovarianceAccumulator acc(pipeline.dimension());
  numeric::CVector row(pipeline.dimension());
  for (std::size_t t = 0; t < z.rows(); ++t) {
    row.assign(z.data() + t * z.cols(), z.data() + (t + 1) * z.cols());
    acc.add(row);
  }
  const numeric::CVector sample_mean = acc.mean();
  for (std::size_t j = 0; j < mean.size(); ++j) {
    EXPECT_NEAR(std::abs(sample_mean[j] - mean[j]), 0.0, 0.02)
        << "branch " << j;
  }
  EXPECT_LT(stats::relative_frobenius_error(acc.covariance_centered(),
                                            plan->effective_covariance()),
            0.02);
}

TEST(ScenarioSpec, RicianKFactorSweepMatchesTheoreticalMoments) {
  // K-factor sweep: measured envelope mean/variance against the exact
  // Rician marginals, plus the KS test on the full distribution.
  const auto plan = ColoringPlan::create(paper_k());
  for (const double k_factor : {0.0, 0.5, 2.0, 8.0}) {
    const ScenarioSpec spec = ScenarioSpec::rician(paper_k(), k_factor, 0.9);
    core::ValidationOptions options;
    options.samples = 60000;
    options.seed = 0x51C;
    options.ks_samples_per_branch = 4000;
    const auto report = scenario::validate_scenario(spec, plan, options);
    EXPECT_LT(report.max_mean_rel_error, 0.01) << "K=" << k_factor;
    EXPECT_LT(report.max_variance_rel_error, 0.05) << "K=" << k_factor;
    EXPECT_GT(report.worst_ks_p_value, 1e-3) << "K=" << k_factor;
  }
}

TEST(ScenarioSpec, PerBranchKFactors) {
  // Mixed scenario: one pure-Rayleigh branch among LOS branches keeps its
  // Rayleigh marginal while the others go Rician.
  std::vector<scenario::RicianBranch> branches = {
      {0.0, 0.0}, {1.0, 0.5}, {9.0, -1.1}};
  const ScenarioSpec spec = ScenarioSpec::rician(paper_k(), branches);
  EXPECT_TRUE(spec.has_los());
  const auto plan = spec.build_plan();
  const numeric::CVector mean = spec.los_mean(*plan);
  ASSERT_EQ(mean.size(), 3u);
  EXPECT_EQ(mean[0], cdouble{});
  // |m_j|^2 = K_j * K_bar_jj.
  const double p1 = plan->effective_covariance()(1, 1).real();
  const double p2 = plan->effective_covariance()(2, 2).real();
  EXPECT_NEAR(std::norm(mean[1]), 1.0 * p1, 1e-12);
  EXPECT_NEAR(std::norm(mean[2]), 9.0 * p2, 1e-12);

  core::ValidationOptions options;
  options.samples = 60000;
  options.seed = 0x5EED5;
  options.ks_samples_per_branch = 4000;
  const auto report = scenario::validate_scenario(spec, plan, options);
  EXPECT_LT(report.max_mean_rel_error, 0.01);
  EXPECT_GT(report.worst_ks_p_value, 1e-3);
}

TEST(ScenarioSpec, RealTimeLosMeanProducesRicianEnvelopes) {
  // The same mean threads through the real-time Doppler path: the block
  // mean shifts to m while the K = 0 configuration stays bit-identical to
  // a generator without any mean.
  const CMatrix k = paper_k();
  const ScenarioSpec spec = ScenarioSpec::rician(k, 6.0, 0.25);
  const auto plan = ColoringPlan::create(k);

  core::RealTimeOptions plain_options;
  plain_options.idft_size = 512;
  const core::RealTimeGenerator plain(plan, plain_options);

  const numeric::CVector mean = spec.los_mean(*plan);
  core::RealTimeOptions los_options = plain_options;
  los_options.los_mean = mean;
  const core::RealTimeGenerator rician(plan, los_options);

  random::Rng rng_a(3);
  random::Rng rng_b(3);
  const CMatrix block_plain = plain.generate_block(rng_a);
  const CMatrix block_rician = rician.generate_block(rng_b);
  // Same diffuse bits, shifted by exactly m (the add is the last pass, so
  // the shift is exact in floating point).
  for (std::size_t t = 0; t < block_plain.rows(); ++t) {
    for (std::size_t j = 0; j < block_plain.cols(); ++j) {
      EXPECT_EQ(block_rician(t, j), block_plain(t, j) + mean[j]);
    }
  }

  // Empty mean == no-op: bit-identical to the pre-scenario generator.
  core::RealTimeOptions zero_options = plain_options;
  zero_options.los_mean = numeric::CVector(k.rows(), cdouble{});
  const core::RealTimeGenerator zero(plan, zero_options);
  random::Rng rng_c(3);
  EXPECT_EQ(zero.generate_block(rng_c), block_plain);
}

TEST(ScenarioSpec, RejectsInvalidInput) {
  EXPECT_THROW((void)ScenarioSpec::rician(paper_k(), -0.5), ContractViolation);
  EXPECT_THROW((void)ScenarioSpec::rician(
                   paper_k(), std::vector<scenario::RicianBranch>(2)),
               ContractViolation);
  const ScenarioSpec spec = ScenarioSpec::rician(paper_k(), 1.0);
  const auto wrong_plan = ColoringPlan::create(tridiagonal_covariance(5));
  EXPECT_THROW((void)spec.los_mean(*wrong_plan), ContractViolation);
  EXPECT_THROW((void)spec.make_pipeline(nullptr), ContractViolation);

  // Pipeline-level mean contract: wrong size rejected.
  core::PipelineOptions bad;
  bad.mean_offset = numeric::CVector(2, cdouble{1.0, 0.0});
  const auto plan = ColoringPlan::create(paper_k());
  EXPECT_THROW(SamplePipeline(plan, bad), ContractViolation);
}

// --- cascaded Rayleigh -------------------------------------------------------

TEST(Cascaded, SecondMomentsMatchProductChannelTheory) {
  const CascadedRayleighGenerator gen(paper_k(), tridiagonal_covariance(3));
  const auto report = gen.envelope_moment_diagnostics(200000, 0xCA5CADE);
  EXPECT_LT(report.max_mean_rel_error, 0.01);
  EXPECT_LT(report.max_second_moment_rel_error, 0.02);
  for (std::size_t j = 0; j < gen.dimension(); ++j) {
    // Amount of fading E[r^4]/E[r^2]^2 - 1 = 3 for the cascade (vs 1 for
    // Rayleigh) — the fourth moment converges slowly, hence the loose band.
    EXPECT_NEAR(report.measured_amount_of_fading[j], 3.0, 0.35)
        << "branch " << j;
  }
}

TEST(Cascaded, EffectiveCovarianceIsHadamardProduct) {
  const CMatrix k1 = paper_k();
  const CMatrix k2 = tridiagonal_covariance(3);
  const CascadedRayleighGenerator gen(k1, k2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(gen.effective_covariance()(i, j), k1(i, j) * k2(i, j));
    }
  }
  const auto report = gen.envelope_moment_diagnostics(200000, 0xFACADE);
  EXPECT_LT(report.covariance_rel_error, 0.02);
}

TEST(Cascaded, TheoreticalMomentFormulas) {
  const CascadedRayleighGenerator gen(paper_k(), paper_k());
  for (std::size_t j = 0; j < gen.dimension(); ++j) {
    const double s1 = gen.first_stage().plan().effective_covariance()(j, j).real();
    const double s2 =
        gen.second_stage().plan().effective_covariance()(j, j).real();
    EXPECT_NEAR(gen.envelope_mean(j),
                0.25 * 3.14159265358979324 * std::sqrt(s1 * s2), 1e-12);
    EXPECT_NEAR(gen.envelope_second_moment(j), s1 * s2, 1e-12);
    EXPECT_NEAR(gen.envelope_fourth_moment(j), 4.0 * s1 * s2 * s1 * s2, 1e-12);
    EXPECT_NEAR(gen.envelope_variance(j),
                gen.envelope_second_moment(j) -
                    gen.envelope_mean(j) * gen.envelope_mean(j),
                1e-12);
  }
}

TEST(Cascaded, StreamDeterministicAndBlockwiseRegenerable) {
  scenario::CascadedOptions serial;
  serial.block_size = 700;
  serial.parallel = false;
  scenario::CascadedOptions parallel = serial;
  parallel.parallel = true;
  const auto plan1 = ColoringPlan::create(tridiagonal_covariance(4));
  const auto plan2 = ColoringPlan::create(paper_k());
  const CascadedRayleighGenerator serial_gen(plan1, plan1, serial);
  const CascadedRayleighGenerator parallel_gen(plan1, plan1, parallel);
  const CMatrix a = serial_gen.sample_stream(3000, 99);
  const CMatrix b = parallel_gen.sample_stream(3000, 99);
  EXPECT_EQ(a, b);

  // Blocks regenerate independently, in any order.
  CMatrix rebuilt(3000, serial_gen.dimension());
  for (std::size_t block = 5; block-- > 0;) {
    const std::size_t begin = block * serial.block_size;
    const std::size_t rows = std::min(serial.block_size, 3000 - begin);
    if (begin >= 3000) {
      continue;
    }
    const CMatrix piece = serial_gen.sample_block(rows, 99, block);
    std::copy(piece.data(), piece.data() + piece.size(),
              rebuilt.data() + begin * rebuilt.cols());
  }
  EXPECT_EQ(a, rebuilt);

  // The two stages draw from disjoint Philox keys: equal plans must still
  // give different (independent) stage samples.
  const CMatrix z1 = serial_gen.first_stage().sample_block(
      16, CascadedRayleighGenerator::stage_seed(99, 0), 0);
  const CMatrix z2 = serial_gen.second_stage().sample_block(
      16, CascadedRayleighGenerator::stage_seed(99, 1), 0);
  EXPECT_NE(z1, z2);

  EXPECT_THROW(CascadedRayleighGenerator(plan1, plan2), ContractViolation);
}

// --- envelope-domain validator contracts ------------------------------------

TEST(EnvelopeValidation, RejectsBadMarginals) {
  const auto plan = ColoringPlan::create(paper_k());
  const SamplePipeline pipeline(plan);
  std::vector<core::EnvelopeMarginal> short_marginals(2);
  EXPECT_THROW(
      (void)core::validate_envelopes(pipeline, short_marginals, {}),
      ContractViolation);
  std::vector<core::EnvelopeMarginal> bad(3);
  EXPECT_THROW((void)core::validate_envelopes(pipeline, bad, {}),
               ContractViolation);
  // Moments set but cdf left empty: must be rejected up front, not fail
  // with bad_function_call deep inside the KS pass.
  std::vector<core::EnvelopeMarginal> no_cdf(
      3, core::EnvelopeMarginal{1.0, 0.2, nullptr});
  EXPECT_THROW((void)core::validate_envelopes(pipeline, no_cdf, {}),
               ContractViolation);
}

}  // namespace
