// Tests for the FFT module: known transforms, roundtrips, Parseval,
// cross-validation against the O(N^2) reference for both radix-2 and
// Bluestein paths.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/fft/fft.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using fft::Direction;
using numeric::cdouble;
using numeric::CVector;
using numeric::RVector;

constexpr double kPi = 3.141592653589793238462643383279502884;

CVector random_signal(std::size_t n, std::uint64_t seed) {
  random::Rng rng(seed);
  CVector x(n);
  for (auto& v : x) {
    v = cdouble(rng.gaussian(), rng.gaussian());
  }
  return x;
}

double max_diff(const CVector& a, const CVector& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

TEST(Fft, PowerOfTwoDetection) {
  EXPECT_FALSE(fft::is_power_of_two(0));
  EXPECT_TRUE(fft::is_power_of_two(1));
  EXPECT_TRUE(fft::is_power_of_two(1024));
  EXPECT_FALSE(fft::is_power_of_two(3));
  EXPECT_FALSE(fft::is_power_of_two(1000));
}

TEST(Fft, ImpulseTransformsToConstant) {
  CVector x(8, cdouble{});
  x[0] = cdouble(1, 0);
  const CVector spectrum = fft::dft(x);
  for (const cdouble& value : spectrum) {
    EXPECT_NEAR(std::abs(value - cdouble(1, 0)), 0.0, 1e-14);
  }
}

TEST(Fft, ConstantTransformsToDelta) {
  const CVector x(16, cdouble(1, 0));
  const CVector spectrum = fft::dft(x);
  EXPECT_NEAR(std::abs(spectrum[0] - cdouble(16, 0)), 0.0, 1e-12);
  for (std::size_t k = 1; k < 16; ++k) {
    EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInCorrectBin) {
  const std::size_t n = 64;
  const std::size_t bin = 5;
  CVector x(n);
  for (std::size_t l = 0; l < n; ++l) {
    x[l] = std::polar(1.0, 2.0 * kPi * double(bin) * double(l) / double(n));
  }
  const CVector spectrum = fft::dft(x);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = k == bin ? double(n) : 0.0;
    EXPECT_NEAR(std::abs(spectrum[k]), expected, 1e-10) << "k=" << k;
  }
}

TEST(Fft, IdftIncludesOneOverN) {
  // idft(dft(x)) must be the identity (the paper's 1/M convention).
  const CVector x = random_signal(256, 42);
  const CVector back = fft::idft(fft::dft(x));
  EXPECT_LT(max_diff(back, x), 1e-12);
}

TEST(Fft, EmptyAndSizeOne) {
  EXPECT_TRUE(fft::dft({}).empty());
  const CVector one = {cdouble(3, -2)};
  EXPECT_EQ(fft::dft(one)[0], cdouble(3, -2));
  EXPECT_EQ(fft::idft(one)[0], cdouble(3, -2));
}

TEST(Fft, InplaceRejectsNonPowerOfTwo) {
  CVector x(6);
  EXPECT_THROW((void)fft::fft_pow2_inplace(x, Direction::Forward),
               ContractViolation);
}

class FftSizes : public testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  const CVector x = random_signal(n, 1000 + n);
  const CVector fast = fft::dft(x);
  const CVector slow = fft::naive_dft(x, Direction::Forward);
  // Naive DFT error itself grows with n; tolerance scales accordingly.
  EXPECT_LT(max_diff(fast, slow), 1e-9 * std::max<double>(1.0, double(n)));
}

TEST_P(FftSizes, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const CVector x = random_signal(n, 2000 + n);
  EXPECT_LT(max_diff(fft::idft(fft::dft(x)), x), 1e-10);
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  const CVector x = random_signal(n, 3000 + n);
  const CVector spectrum = fft::dft(x);
  double time_energy = 0.0;
  double freq_energy = 0.0;
  for (const auto& v : x) {
    time_energy += std::norm(v);
  }
  for (const auto& v : spectrum) {
    freq_energy += std::norm(v);
  }
  EXPECT_NEAR(freq_energy / double(n), time_energy,
              1e-10 * std::max(1.0, time_energy));
}

INSTANTIATE_TEST_SUITE_P(
    PowersOfTwoAndNot, FftSizes,
    testing::Values(std::size_t{2}, std::size_t{3}, std::size_t{4},
                    std::size_t{5}, std::size_t{7}, std::size_t{8},
                    std::size_t{12}, std::size_t{16}, std::size_t{31},
                    std::size_t{64}, std::size_t{100}, std::size_t{128},
                    std::size_t{255}, std::size_t{257}, std::size_t{1000},
                    std::size_t{1024}),
    [](const auto& tinfo) { return "n" + std::to_string(tinfo.param); });

TEST(Fft, LinearityHolds) {
  const CVector x = random_signal(128, 7);
  const CVector y = random_signal(128, 8);
  const cdouble alpha(2.0, -1.0);
  CVector combo(128);
  for (std::size_t i = 0; i < 128; ++i) {
    combo[i] = alpha * x[i] + y[i];
  }
  const CVector lhs = fft::dft(combo);
  const CVector fx = fft::dft(x);
  const CVector fy = fft::dft(y);
  double m = 0.0;
  for (std::size_t k = 0; k < 128; ++k) {
    m = std::max(m, std::abs(lhs[k] - (alpha * fx[k] + fy[k])));
  }
  EXPECT_LT(m, 1e-11);
}

TEST(Fft, TimeShiftBecomesPhaseRamp) {
  const std::size_t n = 64;
  const std::size_t shift = 3;
  const CVector x = random_signal(n, 9);
  CVector shifted(n);
  for (std::size_t l = 0; l < n; ++l) {
    shifted[l] = x[(l + n - shift) % n];
  }
  const CVector fx = fft::dft(x);
  const CVector fs = fft::dft(shifted);
  for (std::size_t k = 0; k < n; ++k) {
    const cdouble ramp =
        std::polar(1.0, -2.0 * kPi * double(k) * double(shift) / double(n));
    EXPECT_NEAR(std::abs(fs[k] - ramp * fx[k]), 0.0, 1e-11);
  }
}

TEST(Fft, ForwardInverseAreConjugateTransforms) {
  // inverse(x) == conj(forward(conj(x))).
  const CVector x = random_signal(96, 10);  // Bluestein path
  CVector conj_x(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    conj_x[i] = std::conj(x[i]);
  }
  const CVector lhs = fft::transform(x, Direction::Inverse);
  const CVector rhs_raw = fft::transform(conj_x, Direction::Forward);
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    m = std::max(m, std::abs(lhs[i] - std::conj(rhs_raw[i])));
  }
  EXPECT_LT(m, 1e-11);
}

TEST(Fft, LargeTransformAccuracy) {
  // M = 4096 is the paper's IDFT size; verify roundtrip accuracy there.
  const CVector x = random_signal(4096, 11);
  EXPECT_LT(max_diff(fft::idft(fft::dft(x)), x), 1e-11);
}

TEST(Fft, Pow2PlanBitIdenticalToAdHocTransform) {
  // The plan caches the exact twiddle value sequence (incremental with
  // periodic resync) and the bit-reversal permutation, so its output
  // must match fft_pow2_inplace bit for bit — this is what lets the
  // overlap-save streaming backend swap the cached plan in without
  // changing a single output bit.
  for (std::size_t n : {1u, 2u, 8u, 256u, 2048u, 8192u}) {
    const fft::Pow2Plan plan(n);
    EXPECT_EQ(plan.size(), n);
    const CVector x = random_signal(n, 17 + n);
    for (const Direction direction :
         {Direction::Forward, Direction::Inverse}) {
      CVector ad_hoc = x;
      fft::fft_pow2_inplace(ad_hoc, direction);
      CVector planned = x;
      plan.transform(planned, direction);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(planned[i].real(), ad_hoc[i].real()) << "n=" << n;
        EXPECT_EQ(planned[i].imag(), ad_hoc[i].imag()) << "n=" << n;
      }
    }
    // The dft/idft wrappers match the free functions bitwise too.
    const CVector spectrum = plan.dft(x);
    const CVector reference = fft::dft(x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(spectrum[i], reference[i]);
    }
    const CVector back = plan.idft(spectrum);
    const CVector back_reference = fft::idft(spectrum);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(back[i], back_reference[i]);
    }
  }
}

TEST(Fft, Pow2PlanRejectsBadSizes) {
  EXPECT_THROW((void)fft::Pow2Plan(0), ContractViolation);
  EXPECT_THROW((void)fft::Pow2Plan(12), ContractViolation);
  const fft::Pow2Plan plan(8);
  CVector wrong(4);
  EXPECT_THROW(plan.transform(wrong, Direction::Forward), ContractViolation);
}

// --- real-input transforms ---------------------------------------------------

RVector random_real_signal(std::size_t n, std::uint64_t seed) {
  random::Rng rng(seed);
  RVector x(n);
  for (double& v : x) {
    v = rng.gaussian();
  }
  return x;
}

CVector complexify(const RVector& x) {
  CVector z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    z[i] = cdouble(x[i], 0.0);
  }
  return z;
}

TEST(FftReal, PairTransformMatchesNaiveDft) {
  // The pairing identity: DFTs of two real sequences out of one complex
  // transform, validated against the O(N^2) reference at the issue's
  // sizes (N = 1 is the degenerate pack: fx = x[0], fy = y[0]).
  for (std::size_t n : {1u, 2u, 4u, 4096u}) {
    const fft::Pow2Plan plan(n);
    const RVector x = random_real_signal(n, 100 + n);
    const RVector y = random_real_signal(n, 200 + n);
    CVector fx;
    CVector fy;
    plan.transform_real_pair(x, y, fx, fy);
    const CVector ref_x = fft::naive_dft(complexify(x), Direction::Forward);
    const CVector ref_y = fft::naive_dft(complexify(y), Direction::Forward);
    const double tol = 1e-9 * std::max<double>(1.0, double(n));
    EXPECT_LT(max_diff(fx, ref_x), tol) << "n=" << n;
    EXPECT_LT(max_diff(fy, ref_y), tol) << "n=" << n;
    // Real inputs give conjugate-symmetric spectra.
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t r = (n - k) % n;
      EXPECT_NEAR(std::abs(fx[k] - std::conj(fx[r])), 0.0, 1e-12);
      EXPECT_NEAR(std::abs(fy[k] - std::conj(fy[r])), 0.0, 1e-12);
    }
  }
}

TEST(FftReal, SplitTransformMatchesNaiveDft) {
  // The split identity: a length-2N real DFT from an N-point complex
  // transform (sequence lengths 2, 4, 8, 8192 — the N/2-plan sizes for
  // the issue's N list above 1).
  for (std::size_t half : {1u, 2u, 4u, 4096u}) {
    const fft::Pow2Plan plan(half);
    const RVector x = random_real_signal(2 * half, 300 + half);
    const CVector spectrum = plan.transform_real(x);
    ASSERT_EQ(spectrum.size(), 2 * half);
    const CVector reference =
        fft::naive_dft(complexify(x), Direction::Forward);
    EXPECT_LT(max_diff(spectrum, reference),
              1e-9 * std::max<double>(1.0, double(2 * half)))
        << "2n=" << 2 * half;
  }
}

TEST(FftReal, SplitRoundTripRecoversSignal) {
  for (std::size_t half : {1u, 2u, 4u, 64u, 4096u}) {
    const fft::Pow2Plan plan(half);
    const RVector x = random_real_signal(2 * half, 400 + half);
    const RVector back = plan.inverse_real(plan.transform_real(x));
    ASSERT_EQ(back.size(), x.size());
    double m = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      m = std::max(m, std::abs(back[i] - x[i]));
    }
    EXPECT_LT(m, 1e-11) << "2n=" << 2 * half;
  }
}

TEST(FftReal, TransformRealRejectsWrongLength) {
  const fft::Pow2Plan plan(8);
  EXPECT_THROW((void)plan.transform_real(RVector(8)), ContractViolation);
  EXPECT_THROW((void)plan.inverse_real(CVector(8)), ContractViolation);
  RVector x(4);
  RVector y(8);
  CVector fx;
  CVector fy;
  EXPECT_THROW(plan.transform_real_pair(x, y, fx, fy), ContractViolation);
}

// --- batched planar transforms -----------------------------------------------

TEST(Fft, BatchedTransformBitIdenticalPerLane) {
  // Every lane of the planar batch must reproduce the scalar planned
  // transform bit for bit — this equivalence is what lets the batched
  // overlap-save sweep replace the per-branch fills without changing a
  // single output bit.
  for (std::size_t n : {1u, 2u, 8u, 256u, 4096u}) {
    const fft::Pow2Plan plan(n);
    for (std::size_t batch : {1u, 3u, 8u}) {
      std::vector<CVector> lanes(batch);
      std::vector<double> re(n * batch);
      std::vector<double> im(n * batch);
      for (std::size_t b = 0; b < batch; ++b) {
        lanes[b] = random_signal(n, 7000 + 31 * n + b);
        for (std::size_t p = 0; p < n; ++p) {
          re[p * batch + b] = lanes[b][p].real();
          im[p * batch + b] = lanes[b][p].imag();
        }
      }
      for (const Direction direction :
           {Direction::Forward, Direction::Inverse}) {
        std::vector<double> bre = re;
        std::vector<double> bim = im;
        plan.transform_batched(bre.data(), bim.data(), batch, direction);
        for (std::size_t b = 0; b < batch; ++b) {
          CVector scalar = lanes[b];
          plan.transform(scalar, direction);
          for (std::size_t p = 0; p < n; ++p) {
            EXPECT_EQ(bre[p * batch + b], scalar[p].real())
                << "n=" << n << " batch=" << batch << " lane=" << b;
            EXPECT_EQ(bim[p * batch + b], scalar[p].imag())
                << "n=" << n << " batch=" << batch << " lane=" << b;
          }
        }
      }
    }
  }
}

TEST(Fft, MultiplyBatchedPointwiseMatchesComplexMultiply) {
  const std::size_t n = 257;  // odd, exercises the vector epilogue
  const CVector h = random_signal(n, 51);
  for (std::size_t batch : {1u, 5u, 8u}) {
    std::vector<CVector> lanes(batch);
    std::vector<double> re(n * batch);
    std::vector<double> im(n * batch);
    for (std::size_t b = 0; b < batch; ++b) {
      lanes[b] = random_signal(n, 600 + b);
      for (std::size_t p = 0; p < n; ++p) {
        re[p * batch + b] = lanes[b][p].real();
        im[p * batch + b] = lanes[b][p].imag();
      }
    }
    fft::multiply_batched_pointwise(re.data(), im.data(), n, batch, h.data());
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t p = 0; p < n; ++p) {
        cdouble expected = lanes[b][p];
        expected *= h[p];  // the exact scalar operation the kernel mirrors
        EXPECT_EQ(re[p * batch + b], expected.real());
        EXPECT_EQ(im[p * batch + b], expected.imag());
      }
    }
  }
}

// --- Bluestein plan ----------------------------------------------------------

TEST(Fft, BluesteinPlanBitIdenticalToAdHocTransform) {
  // The plan replays the ad-hoc Bluestein value sequence from cached
  // chirp/kernel tables, so non-power-of-two overlap-save fallbacks can
  // swap it in without changing a bit.
  for (std::size_t n : {1u, 3u, 5u, 12u, 24u, 100u, 257u, 1000u}) {
    const fft::BluesteinPlan plan(n);
    EXPECT_EQ(plan.size(), n);
    const CVector x = random_signal(n, 900 + n);
    CVector out;
    CVector scratch;
    for (const Direction direction :
         {Direction::Forward, Direction::Inverse}) {
      plan.transform(x, out, direction, scratch);
      const CVector reference = fft::transform(x, direction);
      ASSERT_EQ(out.size(), reference.size());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i].real(), reference[i].real()) << "n=" << n;
        EXPECT_EQ(out[i].imag(), reference[i].imag()) << "n=" << n;
      }
    }
  }
}

TEST(Fft, BluesteinPlanRejectsBadInput) {
  EXPECT_THROW((void)fft::BluesteinPlan(0), ContractViolation);
  const fft::BluesteinPlan plan(5);
  CVector wrong(4);
  CVector out;
  CVector scratch;
  EXPECT_THROW(plan.transform(wrong, out, Direction::Forward, scratch),
               ContractViolation);
}

// --- RealConvolver -----------------------------------------------------------

TEST(Fft, RealConvolverSpectrumBitIdenticalToDft) {
  const std::size_t n = 64;
  const auto plan = std::make_shared<const fft::Pow2Plan>(n);
  const RVector kernel = random_real_signal(n, 77);
  const fft::RealConvolver convolver(plan, kernel);
  const CVector reference = fft::dft(complexify(kernel));
  ASSERT_EQ(convolver.kernel_spectrum().size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(convolver.kernel_spectrum()[k], reference[k]);
  }
}

TEST(Fft, RealConvolverPackedMatchesManualPath) {
  // convolve_packed must be bit-identical to transforming the packed
  // input and multiplying by the kernel spectrum by hand — the exact
  // inline loop the overlap-save branch source used to run.
  const std::size_t n = 128;
  const auto plan = std::make_shared<const fft::Pow2Plan>(n);
  const RVector kernel = random_real_signal(n, 88);
  const fft::RealConvolver convolver(plan, kernel);
  const CVector in = random_signal(n, 89);

  CVector expected = in;
  plan->transform(expected, Direction::Forward);
  for (std::size_t k = 0; k < n; ++k) {
    expected[k] *= convolver.kernel_spectrum()[k];
  }
  plan->transform(expected, Direction::Inverse);

  CVector work;
  convolver.convolve_packed(in, work);
  ASSERT_EQ(work.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(work[k], expected[k]);
  }
}

TEST(Fft, RealConvolverPairIsCircularConvolution) {
  // One forward + one inverse transform convolves BOTH real streams with
  // the real kernel (the pairing trick); validate against the O(N^2)
  // circular convolution of each stream separately.
  const std::size_t n = 32;
  const auto plan = std::make_shared<const fft::Pow2Plan>(n);
  const RVector kernel = random_real_signal(n, 90);
  const fft::RealConvolver convolver(plan, kernel);
  const RVector x = random_real_signal(n, 91);
  const RVector y = random_real_signal(n, 92);

  RVector out_x(n);
  RVector out_y(n);
  CVector work;
  convolver.convolve_pair(x.data(), y.data(), out_x.data(), out_y.data(),
                          work);

  for (std::size_t l = 0; l < n; ++l) {
    double cx = 0.0;
    double cy = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double h = kernel[(l + n - j) % n];
      cx += h * x[j];
      cy += h * y[j];
    }
    EXPECT_NEAR(out_x[l], cx, 1e-10);
    EXPECT_NEAR(out_y[l], cy, 1e-10);
  }
}

}  // namespace
