// Tests for the statistics module: moments, covariance accumulation,
// autocorrelation, GoF tests, histogram, fading metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/random/rng.hpp"
#include "rfade/stats/autocorrelation.hpp"
#include "rfade/stats/chi_square.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/stats/distributions.hpp"
#include "rfade/stats/fading_metrics.hpp"
#include "rfade/stats/histogram.hpp"
#include "rfade/stats/ks_test.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/special/gamma.hpp"
#include "rfade/stats/moments.hpp"

namespace {

using namespace rfade;
using numeric::cdouble;
using numeric::CVector;
using numeric::RVector;

TEST(RunningStats, KnownValues) {
  stats::RunningStats acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.add(x);
  }
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
  EXPECT_NEAR(acc.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  random::Rng rng(1);
  stats::RunningStats all;
  stats::RunningStats part1;
  stats::RunningStats part2;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(1.0, 3.0);
    all.add(x);
    (i < 400 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), all.count());
  EXPECT_NEAR(part1.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(part1.variance(), all.variance(), 1e-10);
}

TEST(RunningStats, MergeWithEmpty) {
  stats::RunningStats a;
  stats::RunningStats b;
  a.add(5.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(Moments, SpanHelpers) {
  const RVector xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(stats::variance(xs), 1.25);
  const CVector zs = {cdouble(3, 4), cdouble(0, 0)};
  EXPECT_DOUBLE_EQ(stats::mean_power(zs), 12.5);
}

TEST(Moments, QuantileSorted) {
  const RVector xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(stats::quantile_sorted(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::quantile_sorted(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(stats::quantile_sorted(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(stats::quantile_sorted(xs, 0.25), 2.0);
  EXPECT_THROW((void)stats::quantile_sorted(xs, 1.5), ContractViolation);
}

TEST(Moments, PearsonCorrelation) {
  const RVector a = {1.0, 2.0, 3.0, 4.0};
  const RVector b = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(stats::pearson_correlation(a, b), 1.0, 1e-12);
  const RVector c = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(stats::pearson_correlation(a, c), -1.0, 1e-12);
}

TEST(Covariance, KnownDeterministicVectors) {
  stats::CovarianceAccumulator acc(2);
  // Two deterministic draws: (1, i) and (1, -i).
  acc.add(CVector{cdouble(1, 0), cdouble(0, 1)});
  acc.add(CVector{cdouble(1, 0), cdouble(0, -1)});
  const auto k = acc.covariance();
  EXPECT_NEAR(k(0, 0).real(), 1.0, 1e-14);
  EXPECT_NEAR(k(1, 1).real(), 1.0, 1e-14);
  // E[z0 conj(z1)] = ((1)(-i) + (1)(i))/2 = 0.
  EXPECT_NEAR(std::abs(k(0, 1)), 0.0, 1e-14);
}

TEST(Covariance, MergeEqualsConcatenation) {
  random::Rng rng(3);
  stats::CovarianceAccumulator all(3);
  stats::CovarianceAccumulator a(3);
  stats::CovarianceAccumulator b(3);
  for (int i = 0; i < 500; ++i) {
    CVector z(3);
    for (auto& v : z) {
      v = rng.complex_gaussian(1.0);
    }
    all.add(z);
    (i % 2 == 0 ? a : b).add(z);
  }
  a.merge(b);
  EXPECT_LT(numeric::max_abs_diff(a.covariance(), all.covariance()), 1e-12);
}

TEST(Covariance, CenteredSubtractsMean) {
  stats::CovarianceAccumulator acc(1);
  for (int i = 0; i < 100; ++i) {
    acc.add(CVector{cdouble(5.0, 0.0)});  // constant
  }
  EXPECT_NEAR(acc.covariance()(0, 0).real(), 25.0, 1e-12);
  EXPECT_NEAR(acc.covariance_centered()(0, 0).real(), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(acc.mean()[0] - cdouble(5, 0)), 0.0, 1e-12);
}

TEST(Covariance, RelativeFrobeniusError) {
  const auto id = numeric::CMatrix::identity(2);
  EXPECT_DOUBLE_EQ(stats::relative_frobenius_error(id, id), 0.0);
  auto scaled = numeric::scale(id, cdouble(1.1, 0));
  EXPECT_NEAR(stats::relative_frobenius_error(scaled, id), 0.1, 1e-12);
}

TEST(Autocorrelation, FftMatchesDirect) {
  random::Rng rng(4);
  CVector x(512);
  for (auto& v : x) {
    v = rng.complex_gaussian(2.0);
  }
  for (const auto mode :
       {stats::AutocorrMode::Biased, stats::AutocorrMode::Unbiased}) {
    const CVector fast = stats::autocorrelation(x, 60, mode);
    const CVector slow = stats::autocorrelation_direct(x, 60, mode);
    for (std::size_t d = 0; d <= 60; ++d) {
      EXPECT_NEAR(std::abs(fast[d] - slow[d]), 0.0, 1e-10) << "lag " << d;
    }
  }
}

TEST(Autocorrelation, PureToneGivesCosineLikePhase) {
  // x[l] = e^{i w l} has autocorrelation r[d] = e^{i w d} exactly.
  const double w = 0.3;
  CVector x(1024);
  for (std::size_t l = 0; l < x.size(); ++l) {
    x[l] = std::polar(1.0, w * static_cast<double>(l));
  }
  const CVector r =
      stats::autocorrelation(x, 20, stats::AutocorrMode::Unbiased);
  for (std::size_t d = 0; d <= 20; ++d) {
    EXPECT_NEAR(std::abs(r[d] - std::polar(1.0, w * double(d))), 0.0, 1e-9);
  }
}

TEST(Autocorrelation, NormalizedStartsAtOne) {
  random::Rng rng(5);
  CVector x(256);
  for (auto& v : x) {
    v = rng.complex_gaussian(1.0);
  }
  const RVector rho = stats::normalized_autocorrelation(x, 10);
  EXPECT_DOUBLE_EQ(rho[0], 1.0);
  EXPECT_THROW((void)stats::autocorrelation(x, 256), ContractViolation);
}

TEST(Distributions, RayleighMomentsAndQuantiles) {
  const stats::RayleighDistribution r(2.0);
  EXPECT_NEAR(r.mean(), 2.0 * std::sqrt(M_PI / 2.0), 1e-12);
  EXPECT_NEAR(r.variance(), (2.0 - M_PI / 2.0) * 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.cdf(0.0), 0.0);
  EXPECT_NEAR(r.cdf(r.quantile(0.3)), 0.3, 1e-12);
  EXPECT_NEAR(r.cdf(r.quantile(0.99)), 0.99, 1e-12);
  // Median = sigma sqrt(2 ln 2).
  EXPECT_NEAR(r.quantile(0.5), 2.0 * std::sqrt(2.0 * std::log(2.0)), 1e-12);
  // pdf integrates to cdf (spot check by finite difference).
  const double h = 1e-6;
  EXPECT_NEAR((r.cdf(1.0 + h) - r.cdf(1.0 - h)) / (2 * h), r.pdf(1.0), 1e-6);
}

TEST(Distributions, RayleighFromGaussianPowerMatchesPaperConstants) {
  // Paper Eqs. (14)-(15): E{r} = 0.8862 sigma_g, Var{r} = 0.2146 sigma_g^2.
  const double sigma_g2 = 3.0;
  const auto r = stats::RayleighDistribution::from_gaussian_power(sigma_g2);
  EXPECT_NEAR(r.mean(), 0.8862 * std::sqrt(sigma_g2), 1e-4);
  EXPECT_NEAR(r.variance(), 0.2146 * sigma_g2, 1e-4);
}

TEST(Distributions, RicianMomentsAndLimits) {
  // K = 0 is exactly Rayleigh.
  const auto rayleigh = stats::RayleighDistribution::from_gaussian_power(2.0);
  const auto k0 = stats::RicianDistribution::from_k_factor(0.0, 2.0);
  EXPECT_DOUBLE_EQ(k0.nu(), 0.0);
  EXPECT_NEAR(k0.mean(), rayleigh.mean(), 1e-13);
  EXPECT_NEAR(k0.variance(), rayleigh.variance(), 1e-12);
  for (const double r : {0.2, 0.8, 1.5, 3.0}) {
    EXPECT_NEAR(k0.pdf(r), rayleigh.pdf(r), 1e-12);
    EXPECT_NEAR(k0.cdf(r), rayleigh.cdf(r), 1e-9);
  }

  // Moments: E[r^2] = 2 sigma^2 + nu^2 always; and for K >> 1 the
  // distribution concentrates near nu (mean -> nu, variance -> sigma^2).
  const auto rician = stats::RicianDistribution::from_k_factor(4.0, 2.0);
  EXPECT_NEAR(rician.second_moment(),
              2.0 * rician.sigma() * rician.sigma() +
                  rician.nu() * rician.nu(),
              1e-13);
  EXPECT_NEAR(rician.k_factor(), 4.0, 1e-13);
  const auto large_k = stats::RicianDistribution::from_k_factor(400.0, 2.0);
  EXPECT_NEAR(large_k.mean(), large_k.nu(), 0.01 * large_k.nu());
  EXPECT_NEAR(large_k.variance(), large_k.sigma() * large_k.sigma(),
              0.01 * large_k.sigma() * large_k.sigma());
}

TEST(Distributions, RicianCdfPdfConsistency) {
  const auto rician = stats::RicianDistribution::from_k_factor(3.0, 1.0);
  EXPECT_DOUBLE_EQ(rician.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(rician.cdf(-1.0), 0.0);
  EXPECT_NEAR(rician.cdf(rician.nu() + 50.0 * rician.sigma()), 1.0, 1e-12);
  // Far-tail band: every r past the bulk must give 1, never collapse back
  // towards 0 (regression: the adaptive stencil used to miss the bulk
  // when all its initial points landed in the deep tail).
  for (const double r : {10.0, 20.0, 28.0, 29.0, 35.0, 100.0}) {
    EXPECT_NEAR(rician.cdf(r), 1.0, 1e-9) << "r=" << r;
  }
  // Large K concentrates the density in a narrow peak around nu; the
  // integration window must still find it.
  const auto huge = stats::RicianDistribution::from_k_factor(10000.0, 2.0);
  EXPECT_NEAR(huge.cdf(huge.nu()), 0.5, 0.01);
  EXPECT_NEAR(huge.cdf(huge.nu() + 9.0 * huge.sigma()), 1.0, 1e-9);
  EXPECT_LT(huge.cdf(huge.nu() - 9.0 * huge.sigma()), 1e-9);
  // CDF is the integral of the pdf: finite-difference spot check, plus
  // monotonicity across the support.
  double previous = 0.0;
  for (double r = 0.1; r < 5.0; r += 0.1) {
    const double c = rician.cdf(r);
    EXPECT_GE(c, previous);
    previous = c;
    const double h = 1e-5;
    EXPECT_NEAR((rician.cdf(r + h) - rician.cdf(r - h)) / (2 * h),
                rician.pdf(r), 1e-5);
  }
  // Mean/variance agree with direct numeric integration of the pdf.
  double mean = 0.0;
  double m2 = 0.0;
  const double hi = rician.nu() + 10.0 * rician.sigma();
  const int steps = 200000;
  for (int i = 0; i < steps; ++i) {
    const double r = (i + 0.5) * hi / steps;
    const double w = rician.pdf(r) * hi / steps;
    mean += r * w;
    m2 += r * r * w;
  }
  EXPECT_NEAR(rician.mean(), mean, 1e-6);
  EXPECT_NEAR(rician.variance(), m2 - mean * mean, 1e-6);
  EXPECT_THROW((void)stats::RicianDistribution(-1.0, 1.0), ContractViolation);
  EXPECT_THROW((void)stats::RicianDistribution(1.0, 0.0), ContractViolation);
  EXPECT_THROW((void)stats::RicianDistribution::from_k_factor(-0.1, 1.0),
               ContractViolation);
}

TEST(Distributions, DoubleRayleighClosedForm) {
  const auto dr = stats::DoubleRayleighDistribution(0.8, 1.3);
  const double c = 0.8 * 1.3;
  EXPECT_DOUBLE_EQ(dr.scale(), c);
  EXPECT_NEAR(dr.mean(), 0.5 * M_PI * c, 1e-14);
  EXPECT_NEAR(dr.second_moment(), 4.0 * c * c, 1e-14);
  EXPECT_NEAR(dr.variance(), 4.0 * c * c - std::pow(0.5 * M_PI * c, 2),
              1e-12);
  // CDF limits and monotonicity; the pdf is its derivative.
  EXPECT_DOUBLE_EQ(dr.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dr.cdf(-1.0), 0.0);
  EXPECT_NEAR(dr.cdf(100.0 * c), 1.0, 1e-12);
  double previous = 0.0;
  for (double r = 0.05; r < 8.0 * c; r += 0.1) {
    const double value = dr.cdf(r);
    EXPECT_GE(value, previous);
    previous = value;
    const double h = 1e-6;
    EXPECT_NEAR((dr.cdf(r + h) - dr.cdf(r - h)) / (2 * h), dr.pdf(r), 1e-6)
        << "r=" << r;
  }
  // Mean/second moment agree with direct numeric integration of the pdf
  // (the far tail is heavier than Rayleigh, so integrate generously).
  double mean = 0.0;
  double m2 = 0.0;
  const double hi = 40.0 * c;
  const int steps = 400000;
  for (int i = 0; i < steps; ++i) {
    const double r = (i + 0.5) * hi / steps;
    const double w = dr.pdf(r) * hi / steps;
    mean += r * w;
    m2 += r * r * w;
  }
  EXPECT_NEAR(dr.mean(), mean, 1e-5);
  EXPECT_NEAR(dr.second_moment(), m2, 1e-4);
  // from_gaussian_powers takes the complex stage powers 2 sigma^2.
  const auto from_powers =
      stats::DoubleRayleighDistribution::from_gaussian_powers(2.0 * 0.64,
                                                              2.0 * 1.69);
  EXPECT_NEAR(from_powers.scale(), c, 1e-14);
  EXPECT_THROW((void)stats::DoubleRayleighDistribution(0.0, 1.0),
               ContractViolation);
  EXPECT_THROW(
      (void)stats::DoubleRayleighDistribution::from_gaussian_powers(1.0,
                                                                    -1.0),
      ContractViolation);
}

TEST(Distributions, TwdpDegeneratesToRicianAndRayleigh) {
  // Delta = 0 is a single specular wave: the law must *be* the Rician
  // one, bit-for-bit (exact delegation, not quadrature).
  const double power = 1.4;
  const auto twdp = stats::TwdpDistribution::from_parameters(3.0, 0.0, power);
  const auto rician = stats::RicianDistribution::from_k_factor(3.0, power);
  EXPECT_DOUBLE_EQ(twdp.v2(), 0.0);
  for (double r = 0.0; r < 6.0; r += 0.37) {
    EXPECT_EQ(twdp.pdf(r), rician.pdf(r)) << "r=" << r;
    EXPECT_EQ(twdp.cdf(r), rician.cdf(r)) << "r=" << r;
  }
  EXPECT_EQ(twdp.mean(), rician.mean());
  // K = 0 is Rayleigh regardless of Delta.
  const auto zero_k = stats::TwdpDistribution::from_parameters(0.0, 0.7,
                                                              power);
  const auto rayleigh = stats::RayleighDistribution::from_gaussian_power(
      power);
  EXPECT_NEAR(zero_k.mean(), rayleigh.mean(), 1e-14);
  EXPECT_NEAR(zero_k.cdf(1.0), rayleigh.cdf(1.0), 1e-12);
}

TEST(Distributions, TwdpMomentsAndCdfConsistency) {
  const auto twdp = stats::TwdpDistribution::from_parameters(3.0, 0.8, 1.0);
  // Parameter inversion and the exact second moment.
  EXPECT_NEAR(twdp.k_factor(), 3.0, 1e-12);
  EXPECT_NEAR(twdp.delta(), 0.8, 1e-12);
  EXPECT_NEAR(twdp.second_moment(), 1.0 + 3.0 * 1.0, 1e-12);
  // CDF limits, monotonicity, derivative = pdf.
  EXPECT_DOUBLE_EQ(twdp.cdf(0.0), 0.0);
  EXPECT_NEAR(twdp.cdf(twdp.v1() + twdp.v2() + 50.0 * twdp.sigma()), 1.0,
              1e-12);
  double previous = 0.0;
  for (double r = 0.1; r < 5.0; r += 0.2) {
    const double value = twdp.cdf(r);
    EXPECT_GE(value, previous);
    previous = value;
    const double h = 1e-5;
    EXPECT_NEAR((twdp.cdf(r + h) - twdp.cdf(r - h)) / (2 * h), twdp.pdf(r),
                1e-4)
        << "r=" << r;
  }
  // Mean and (exact) second moment against direct integration of the
  // mixture pdf.
  double mean = 0.0;
  double m2 = 0.0;
  const double hi = twdp.v1() + twdp.v2() + 10.0 * twdp.sigma();
  const int steps = 200000;
  for (int i = 0; i < steps; ++i) {
    const double r = (i + 0.5) * hi / steps;
    const double w = twdp.pdf(r) * hi / steps;
    mean += r * w;
    m2 += r * r * w;
  }
  EXPECT_NEAR(twdp.mean(), mean, 1e-6);
  EXPECT_NEAR(twdp.second_moment(), m2, 1e-5);
  // Contracts: Delta outside [0, 1], negative K, bad powers.
  EXPECT_THROW((void)stats::TwdpDistribution::from_parameters(1.0, -0.1, 1.0),
               ContractViolation);
  EXPECT_THROW((void)stats::TwdpDistribution::from_parameters(1.0, 1.1, 1.0),
               ContractViolation);
  EXPECT_THROW((void)stats::TwdpDistribution::from_parameters(-1.0, 0.5, 1.0),
               ContractViolation);
  EXPECT_THROW((void)stats::TwdpDistribution::from_parameters(1.0, 0.5, 0.0),
               ContractViolation);
  EXPECT_THROW((void)stats::TwdpDistribution(1.0, 2.0, 1.0),
               ContractViolation);
}

TEST(Distributions, LognormalMomentsAndQuantiles) {
  // 6 dB shadowing of an amplitude gain, 0 dB median.
  const auto ln = stats::LognormalDistribution::from_db(0.0, 6.0);
  const double s = 6.0 * std::log(10.0) / 20.0;
  EXPECT_NEAR(ln.mean(), std::exp(0.5 * s * s), 1e-12);
  EXPECT_NEAR(ln.second_moment(), std::exp(2.0 * s * s), 1e-12);
  EXPECT_NEAR(ln.quantile(0.5), 1.0, 1e-10);  // median = 10^{0/20}
  EXPECT_NEAR(ln.cdf(ln.quantile(0.1)), 0.1, 1e-10);
  EXPECT_NEAR(ln.cdf(ln.quantile(0.975)), 0.975, 1e-10);
  const double h = 1e-6;
  EXPECT_NEAR((ln.cdf(1.3 + h) - ln.cdf(1.3 - h)) / (2 * h), ln.pdf(1.3),
              1e-6);
  EXPECT_THROW((void)stats::LognormalDistribution(0.0, 0.0),
               ContractViolation);
}

TEST(Distributions, NakagamiMomentsQuantilesAndRayleighLimit) {
  // m = 1 is exactly Rayleigh with sigma_g^2 = Omega.
  const double omega = 2.5;
  const stats::NakagamiDistribution nak1(1.0, omega);
  const auto rayleigh =
      stats::RayleighDistribution::from_gaussian_power(omega);
  for (double r : {0.3, 0.9, 1.7, 3.0}) {
    EXPECT_NEAR(nak1.cdf(r), rayleigh.cdf(r), 1e-12);
    EXPECT_NEAR(nak1.pdf(r), rayleigh.pdf(r), 1e-12);
  }
  EXPECT_NEAR(nak1.mean(), rayleigh.mean(), 1e-12);
  for (double m : {0.5, 1.0, 2.5, 4.0}) {
    const stats::NakagamiDistribution nak(m, omega);
    EXPECT_NEAR(nak.second_moment(), omega, 1e-12);
    // Quantile inverts the exact incomplete-gamma CDF.
    for (double p : {0.01, 0.3, 0.5, 0.9, 0.999}) {
      EXPECT_NEAR(nak.cdf(nak.quantile(p)), p, 1e-10) << "m=" << m;
    }
    const double h = 1e-6;
    EXPECT_NEAR((nak.cdf(1.0 + h) - nak.cdf(1.0 - h)) / (2 * h), nak.pdf(1.0),
                1e-6);
    // Amount of fading E[(r^2 - Omega)^2]/Omega^2 = 1/m: deep fades for
    // small m, shallower than Rayleigh for m > 1.
    const double mean = nak.mean();
    EXPECT_LT(std::abs(mean * mean + nak.variance() - omega), 1e-12);
  }
  EXPECT_THROW((void)stats::NakagamiDistribution(0.49, 1.0),
               ContractViolation);
  EXPECT_THROW((void)stats::NakagamiDistribution(1.0, 0.0),
               ContractViolation);
}

TEST(Distributions, WeibullMomentsQuantilesAndRayleighLimit) {
  // shape 2 is exactly Rayleigh with sigma = scale / sqrt(2).
  const stats::WeibullDistribution wb2(2.0, 2.0);
  const stats::RayleighDistribution rayleigh(2.0 / std::sqrt(2.0));
  for (double r : {0.3, 1.1, 2.4}) {
    EXPECT_NEAR(wb2.cdf(r), rayleigh.cdf(r), 1e-12);
    EXPECT_NEAR(wb2.pdf(r), rayleigh.pdf(r), 1e-12);
  }
  const stats::WeibullDistribution wb(1.4, 0.8);
  EXPECT_NEAR(wb.mean(), 0.8 * std::tgamma(1.0 + 1.0 / 1.4), 1e-12);
  EXPECT_NEAR(wb.second_moment(), 0.64 * std::tgamma(1.0 + 2.0 / 1.4),
              1e-12);
  for (double p : {0.05, 0.5, 0.99}) {
    EXPECT_NEAR(wb.cdf(wb.quantile(p)), p, 1e-12);
  }
  EXPECT_THROW((void)stats::WeibullDistribution(0.0, 1.0), ContractViolation);
  EXPECT_THROW((void)stats::WeibullDistribution(1.0, -1.0),
               ContractViolation);
}

TEST(Distributions, SuzukiMomentsAndMixtureCdf) {
  const double sigma_g2 = 2.0;
  const auto suzuki =
      stats::SuzukiDistribution::from_gaussian_power(sigma_g2, 0.0, 6.0);
  // Independent product: moments factor exactly.
  const auto rayleigh =
      stats::RayleighDistribution::from_gaussian_power(sigma_g2);
  EXPECT_NEAR(suzuki.mean(), suzuki.shadowing().mean() * rayleigh.mean(),
              1e-12);
  EXPECT_NEAR(suzuki.second_moment(),
              suzuki.shadowing().second_moment() * sigma_g2, 1e-12);
  // CDF is a proper distribution function and matches the pdf.
  EXPECT_DOUBLE_EQ(suzuki.cdf(0.0), 0.0);
  EXPECT_NEAR(suzuki.cdf(1e3), 1.0, 1e-9);
  EXPECT_LT(suzuki.cdf(0.5), suzuki.cdf(1.5));
  const double h = 1e-6;
  EXPECT_NEAR((suzuki.cdf(1.2 + h) - suzuki.cdf(1.2 - h)) / (2 * h),
              suzuki.pdf(1.2), 1e-6);
  // sigma_dB -> 0 degenerates to the plain Rayleigh CDF.
  const auto narrow =
      stats::SuzukiDistribution::from_gaussian_power(sigma_g2, 0.0, 1e-6);
  EXPECT_NEAR(narrow.cdf(1.0), rayleigh.cdf(1.0), 1e-8);
  // Heavier low-end tail than Rayleigh at equal diffuse power (shadowing
  // spreads the local mean).
  const auto wide =
      stats::SuzukiDistribution::from_gaussian_power(sigma_g2, 0.0, 8.0);
  EXPECT_GT(wide.cdf(0.05), rayleigh.cdf(0.05));
}

TEST(Distributions, NormalQuantileInvertsCdf) {
  for (double p : {1e-9, 1e-4, 0.02, 0.3, 0.5, 0.77, 0.999, 1.0 - 1e-9}) {
    EXPECT_NEAR(stats::normal_cdf(stats::normal_quantile(p)), p,
                1e-14 + 1e-12 * p);
  }
  EXPECT_NEAR(stats::normal_quantile(0.975), 1.959963984540054, 1e-12);
  EXPECT_THROW((void)stats::normal_quantile(0.0), ContractViolation);
  EXPECT_THROW((void)stats::normal_quantile(1.0), ContractViolation);
}

TEST(Distributions, InverseRegularizedGammaP) {
  for (double a : {0.5, 1.0, 2.5, 4.0, 17.0}) {
    for (double p : {1e-6, 0.03, 0.5, 0.97, 0.9999}) {
      const double x = special::inverse_regularized_gamma_p(a, p);
      EXPECT_NEAR(special::regularized_gamma_p(a, x), p, 1e-10)
          << "a=" << a << " p=" << p;
    }
  }
  EXPECT_DOUBLE_EQ(special::inverse_regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_THROW((void)special::inverse_regularized_gamma_p(2.0, 1.0),
               ContractViolation);
}

TEST(Distributions, NormalAndExponential) {
  EXPECT_NEAR(stats::normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(stats::normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(stats::normal_cdf(2.0, 2.0, 5.0), 0.5, 1e-15);
  EXPECT_NEAR(stats::exponential_cdf(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-14);
  EXPECT_DOUBLE_EQ(stats::exponential_cdf(-1.0, 1.0), 0.0);
}

TEST(KsTest, AcceptsCorrectDistribution) {
  random::Rng rng(6);
  const auto rayleigh = stats::RayleighDistribution::from_gaussian_power(1.0);
  RVector samples(20000);
  for (auto& s : samples) {
    s = std::abs(rng.complex_gaussian(1.0));
  }
  const auto result =
      stats::ks_test(samples, [&](double x) { return rayleigh.cdf(x); });
  EXPECT_GT(result.p_value, 1e-3);
  EXPECT_LT(result.statistic, 0.02);
}

TEST(KsTest, RejectsWrongDistribution) {
  random::Rng rng(7);
  RVector samples(20000);
  for (auto& s : samples) {
    s = std::abs(rng.complex_gaussian(1.0));  // Rayleigh(sigma_g^2 = 1)
  }
  // Test against a Rayleigh with twice the power: must reject hard.
  const auto wrong = stats::RayleighDistribution::from_gaussian_power(2.0);
  const auto result =
      stats::ks_test(samples, [&](double x) { return wrong.cdf(x); });
  EXPECT_LT(result.p_value, 1e-10);
}

TEST(KsTest, TwoSample) {
  random::Rng rng(8);
  RVector a(5000);
  RVector b(5000);
  RVector c(5000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.gaussian();
    b[i] = rng.gaussian();
    c[i] = rng.gaussian() + 1.0;  // shifted
  }
  EXPECT_LT(stats::ks_two_sample_statistic(a, b), 0.05);
  EXPECT_GT(stats::ks_two_sample_statistic(a, c), 0.3);
}

TEST(ChiSquareGof, AcceptsAndRejects) {
  random::Rng rng(9);
  const auto rayleigh = stats::RayleighDistribution::from_gaussian_power(1.0);
  RVector samples(20000);
  for (auto& s : samples) {
    s = std::abs(rng.complex_gaussian(1.0));
  }
  const auto good = stats::chi_square_gof(
      samples, [&](double p) { return rayleigh.quantile(p); }, 32);
  EXPECT_EQ(good.dof, 31u);
  EXPECT_GT(good.p_value, 1e-3);

  const auto wrong = stats::RayleighDistribution::from_gaussian_power(1.5);
  const auto bad = stats::chi_square_gof(
      samples, [&](double p) { return wrong.quantile(p); }, 32);
  EXPECT_LT(bad.p_value, 1e-10);

  EXPECT_THROW((void)stats::chi_square_gof(
                   RVector(10), [](double p) { return p; }, 8),
               ContractViolation);
}

TEST(Histogram, CountsAndDensity) {
  stats::Histogram h(0.0, 10.0, 10);
  for (double x = 0.5; x < 10.0; x += 1.0) {
    h.add(x);
  }
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.count(b), 1u);
    EXPECT_NEAR(h.density(b), 0.1, 1e-12);
    EXPECT_NEAR(h.center(b), 0.5 + double(b), 1e-12);
  }
  // Out-of-range values clamp to edge bins.
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
}

TEST(FadingMetrics, TheoreticalFormulas) {
  // Peak of LCR at rho = 1/sqrt(2).
  const double fd = 50.0;
  const double lcr_peak = stats::theoretical_lcr(1.0 / std::sqrt(2.0), fd);
  EXPECT_GT(lcr_peak, stats::theoretical_lcr(0.1, fd));
  EXPECT_GT(lcr_peak, stats::theoretical_lcr(2.0, fd));
  // AFD at rho=1: (e - 1)/(fd sqrt(2 pi)).
  EXPECT_NEAR(stats::theoretical_afd(1.0, fd),
              (std::exp(1.0) - 1.0) / (fd * std::sqrt(2.0 * M_PI)), 1e-12);
}

TEST(FadingMetrics, MeasuredOnSyntheticTrace) {
  // Envelope = |sin|: crosses 0.5 upward twice per period of 100 samples.
  RVector envelope(10000);
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    envelope[i] = std::abs(std::sin(2.0 * M_PI * double(i) / 100.0)) + 0.01;
  }
  const auto metrics = stats::measure_fading_metrics(envelope, 0.5, 1000.0);
  // 10000 samples at 1 kHz = 10 s; 100 periods => 200 up-crossings => 20/s.
  EXPECT_NEAR(metrics.level_crossing_rate, 20.0, 1.0);
  EXPECT_GT(metrics.average_fade_duration, 0.0);
  EXPECT_EQ(metrics.crossings, 200u);
}

TEST(FadingMetrics, Rms) {
  EXPECT_DOUBLE_EQ(stats::rms(RVector{3.0, 4.0, 3.0, 4.0}),
                   std::sqrt(12.5));
  EXPECT_THROW((void)stats::rms(RVector{}), ContractViolation);
}

}  // namespace
