// Tests for the PSD-forcing step (paper Sec. 4.2), including the claim
// that clip-to-zero dominates epsilon-replacement in Frobenius norm.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/core/psd.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/rng.hpp"

namespace {

using namespace rfade;
using core::PsdOptions;
using core::PsdPolicy;
using numeric::cdouble;
using numeric::CMatrix;

/// Hermitian matrix with prescribed eigenvalues and a random basis.
CMatrix hermitian_with_spectrum(const numeric::RVector& spectrum,
                                std::uint64_t seed) {
  const std::size_t n = spectrum.size();
  random::Rng rng(seed);
  // Random Hermitian -> eigenvectors form a random unitary basis.
  CMatrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      g(i, j) = cdouble(rng.gaussian(), rng.gaussian());
    }
  }
  const auto eig = numeric::eigen_hermitian(
      numeric::hermitian_part(numeric::add(g, numeric::conjugate_transpose(g))));
  numeric::HermitianEigen prescribed;
  prescribed.values = spectrum;
  prescribed.vectors = eig.vectors;
  return numeric::reconstruct(prescribed);
}

TEST(PsdForcing, PsdInputIsReturnedUnchanged) {
  const CMatrix k = hermitian_with_spectrum({0.5, 1.0, 2.0}, 1);
  const auto result = core::force_positive_semidefinite(k);
  EXPECT_TRUE(result.was_psd);
  EXPECT_EQ(result.frobenius_distance, 0.0);
  EXPECT_LT(numeric::max_abs_diff(result.matrix, k), 1e-15);
}

TEST(PsdForcing, ClipRemovesNegativeEigenvalues) {
  const numeric::RVector spectrum = {-0.5, 0.3, 1.2};
  const CMatrix k = hermitian_with_spectrum(spectrum, 2);
  const auto result = core::force_positive_semidefinite(k);
  EXPECT_FALSE(result.was_psd);
  // Adjusted eigenvalues: clip to zero, order preserved (ascending).
  EXPECT_DOUBLE_EQ(result.adjusted_eigenvalues[0], 0.0);
  EXPECT_NEAR(result.adjusted_eigenvalues[1], 0.3, 1e-10);
  EXPECT_NEAR(result.adjusted_eigenvalues[2], 1.2, 1e-10);
  // Frobenius distance equals sqrt(sum of squared clipped eigenvalues).
  EXPECT_NEAR(result.frobenius_distance, 0.5, 1e-9);
  EXPECT_TRUE(core::is_positive_semidefinite(result.matrix));
  EXPECT_TRUE(numeric::is_hermitian(result.matrix));
}

TEST(PsdForcing, EpsilonReplacementMatchesRef6) {
  const numeric::RVector spectrum = {-0.5, 0.3, 1.2};
  const CMatrix k = hermitian_with_spectrum(spectrum, 3);
  PsdOptions options;
  options.policy = PsdPolicy::EpsilonReplace;
  options.epsilon = 1e-3;
  const auto result = core::force_positive_semidefinite(k, options);
  EXPECT_FALSE(result.was_psd);
  EXPECT_DOUBLE_EQ(result.adjusted_eigenvalues[0], 1e-3);
  // Distance: sqrt((-0.5 - 1e-3)^2) = 0.501.
  EXPECT_NEAR(result.frobenius_distance, 0.501, 1e-9);
}

TEST(PsdForcing, EpsilonReplacesExactZerosToo) {
  // Ref [6] replaces lambda <= 0 (so Cholesky never sees a zero pivot);
  // the paper's clip keeps zeros at zero.
  const numeric::RVector spectrum = {0.0, 1.0};
  const CMatrix k = hermitian_with_spectrum(spectrum, 4);
  PsdOptions epsilon_options;
  epsilon_options.policy = PsdPolicy::EpsilonReplace;
  epsilon_options.epsilon = 0.01;
  const auto eps_result = core::force_positive_semidefinite(k, epsilon_options);
  EXPECT_NEAR(eps_result.adjusted_eigenvalues[0], 0.01, 1e-12);

  const auto clip_result = core::force_positive_semidefinite(k);
  EXPECT_NEAR(clip_result.adjusted_eigenvalues[0], 0.0, 1e-9);
}

struct PsdTrial {
  std::size_t n;
  std::uint64_t seed;
};

class PsdDominance : public testing::TestWithParam<PsdTrial> {};

TEST_P(PsdDominance, ClipIsAlwaysCloserInFrobeniusNorm) {
  // The paper's precision claim (Sec. 4.2): for every non-PSD K, the
  // clip-to-zero approximation is strictly closer than epsilon replacement.
  const auto [n, seed] = GetParam();
  random::Rng rng(seed);
  numeric::RVector spectrum(n);
  bool has_negative = false;
  for (auto& lambda : spectrum) {
    lambda = rng.gaussian();  // mixes positive and negative
    has_negative |= lambda < 0.0;
  }
  if (!has_negative) {
    spectrum[0] = -std::abs(spectrum[0]) - 0.1;
  }
  std::sort(spectrum.begin(), spectrum.end());
  const CMatrix k = hermitian_with_spectrum(spectrum, seed ^ 0xFEED);

  const auto clip = core::force_positive_semidefinite(k);
  PsdOptions eps_options;
  eps_options.policy = PsdPolicy::EpsilonReplace;
  for (const double epsilon : {1e-6, 1e-4, 1e-2}) {
    eps_options.epsilon = epsilon;
    const auto eps = core::force_positive_semidefinite(k, eps_options);
    EXPECT_LT(clip.frobenius_distance, eps.frobenius_distance)
        << "epsilon=" << epsilon;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Trials, PsdDominance,
    testing::Values(PsdTrial{2, 21}, PsdTrial{3, 22}, PsdTrial{4, 23},
                    PsdTrial{5, 24}, PsdTrial{8, 25}, PsdTrial{12, 26},
                    PsdTrial{16, 27}, PsdTrial{32, 28}),
    [](const auto& tinfo) { return "n" + std::to_string(tinfo.param.n); });

TEST(PsdForcing, Idempotent) {
  const CMatrix k = hermitian_with_spectrum({-1.0, 0.5, 2.0}, 5);
  const auto once = core::force_positive_semidefinite(k);
  const auto twice = core::force_positive_semidefinite(once.matrix);
  EXPECT_TRUE(twice.was_psd);
  EXPECT_LT(numeric::max_abs_diff(twice.matrix, once.matrix), 1e-10);
}

TEST(PsdForcing, PreservesPositivePartOfSpectrum) {
  // Clipping must not disturb the positive eigenvalues.
  const numeric::RVector spectrum = {-2.0, 1.0, 3.0, 7.0};
  const CMatrix k = hermitian_with_spectrum(spectrum, 6);
  const auto result = core::force_positive_semidefinite(k);
  const auto eig = numeric::eigen_hermitian(result.matrix);
  EXPECT_NEAR(eig.values[0], 0.0, 1e-9);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-9);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-9);
  EXPECT_NEAR(eig.values[3], 7.0, 1e-9);
}

TEST(PsdForcing, BothEigenMethodsAgree) {
  const CMatrix k = hermitian_with_spectrum({-0.7, 0.2, 1.5, 2.5}, 7);
  PsdOptions jacobi_options;
  jacobi_options.eigen_method = numeric::EigenMethod::Jacobi;
  const auto a = core::force_positive_semidefinite(k, jacobi_options);
  const auto b = core::force_positive_semidefinite(k);  // QL default
  EXPECT_LT(numeric::max_abs_diff(a.matrix, b.matrix), 1e-9);
}

TEST(PsdForcing, ValidatesOptions) {
  const CMatrix k = CMatrix::identity(2);
  PsdOptions bad;
  bad.epsilon = 0.0;
  EXPECT_THROW((void)core::force_positive_semidefinite(k, bad), ContractViolation);
  bad.epsilon = 1e-4;
  bad.tolerance = -1.0;
  EXPECT_THROW((void)core::force_positive_semidefinite(k, bad), ContractViolation);
  EXPECT_THROW((void)core::force_positive_semidefinite(CMatrix(2, 3)),
               ContractViolation);
}

TEST(IsPsd, Classification) {
  EXPECT_TRUE(core::is_positive_semidefinite(CMatrix::identity(3)));
  EXPECT_TRUE(core::is_positive_semidefinite(
      hermitian_with_spectrum({0.0, 1.0}, 8)));
  EXPECT_FALSE(core::is_positive_semidefinite(
      hermitian_with_spectrum({-0.1, 1.0}, 9)));
}

}  // namespace
