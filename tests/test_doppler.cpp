// Tests for the Doppler machinery: Eq. (21) filter structure, the Eq. (19)
// variance (analytic vs empirical), and the J0 autocorrelation target of
// Eq. (20).

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/doppler/filter.hpp"
#include "rfade/doppler/idft_generator.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/special/bessel.hpp"
#include "rfade/stats/autocorrelation.hpp"
#include "rfade/stats/distributions.hpp"
#include "rfade/stats/ks_test.hpp"
#include "rfade/stats/moments.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using doppler::DopplerFilterDesign;
using doppler::IdftRayleighBranch;

TEST(DopplerFilter, PaperParametersGiveKm204) {
  // Sec. 6: M = 4096, fm = 0.05 => km = 204.
  const auto design = doppler::young_beaulieu_filter(4096, 0.05);
  EXPECT_EQ(design.km, 204u);
  EXPECT_EQ(design.size(), 4096u);
}

TEST(DopplerFilter, StructureMatchesEq21) {
  const std::size_t m = 1024;
  const double fm = 0.1;
  const auto design = doppler::young_beaulieu_filter(m, fm);
  const auto& f = design.coefficients;
  const std::size_t km = design.km;

  // F[0] = 0.
  EXPECT_EQ(f[0], 0.0);
  // In-band bins sample the Jakes spectrum.
  for (std::size_t k = 1; k < km; ++k) {
    const double ratio = double(k) / (fm * double(m));
    EXPECT_NEAR(f[k], std::sqrt(0.5 / std::sqrt(1.0 - ratio * ratio)), 1e-12);
    EXPECT_GT(f[k], 0.0);
  }
  // Stopband is exactly zero.
  for (std::size_t k = km + 1; k < m - km; ++k) {
    EXPECT_EQ(f[k], 0.0) << "k=" << k;
  }
  // Mirror symmetry F[M-k] = F[k] for every k in 1..M-1.
  for (std::size_t k = 1; k < m; ++k) {
    EXPECT_NEAR(f[k], f[m - k], 1e-14);
  }
  // Band-edge coefficient matches the closed form.
  const double km_d = double(km);
  const double edge = std::sqrt(
      km_d / 2.0 *
      (M_PI / 2.0 - std::atan((km_d - 1.0) / std::sqrt(2.0 * km_d - 1.0))));
  EXPECT_NEAR(f[km], edge, 1e-12);
  // Spectrum coefficients grow toward the band edge (Jakes peaking).
  EXPECT_GT(f[km - 1], f[1]);
}

TEST(DopplerFilter, ValidatesArguments) {
  EXPECT_THROW((void)doppler::young_beaulieu_filter(4, 0.1), ContractViolation);
  EXPECT_THROW((void)doppler::young_beaulieu_filter(64, 0.0), ContractViolation);
  EXPECT_THROW((void)doppler::young_beaulieu_filter(64, 0.5), ContractViolation);
  // fm*M < 1 => no in-band bin.
  EXPECT_THROW((void)doppler::young_beaulieu_filter(64, 0.01), ContractViolation);
}

TEST(DopplerFilter, Eq19VarianceMatchesDirectSum) {
  const auto design = doppler::young_beaulieu_filter(2048, 0.05);
  double sum_f2 = 0.0;
  for (const double f : design.coefficients) {
    sum_f2 += f * f;
  }
  const double sigma_orig2 = 0.5;
  EXPECT_NEAR(doppler::post_filter_variance(design, sigma_orig2),
              2.0 * sigma_orig2 / (2048.0 * 2048.0) * sum_f2, 1e-15);
  EXPECT_THROW((void)doppler::post_filter_variance(design, 0.0), ContractViolation);
}

TEST(DopplerFilter, NormalizedAutocorrelationTracksJ0) {
  // Eq. (20): g[d]/g[0] ~ J0(2 pi fm d).
  const double fm = 0.05;
  const auto design = doppler::young_beaulieu_filter(4096, fm);
  const auto rho = doppler::theoretical_normalized_autocorrelation(design, 100);
  EXPECT_DOUBLE_EQ(rho[0], 1.0);
  for (std::size_t d = 1; d <= 100; ++d) {
    const double j0 = special::bessel_j0(2.0 * M_PI * fm * double(d));
    EXPECT_NEAR(rho[d], j0, 0.02) << "lag " << d;
  }
}

TEST(DopplerFilter, SmallKmEdgeCase) {
  // km = 1: only the band-edge coefficients are nonzero.
  const auto design = doppler::young_beaulieu_filter(64, 1.5 / 64.0);
  EXPECT_EQ(design.km, 1u);
  EXPECT_GT(design.coefficients[1], 0.0);
  EXPECT_GT(design.coefficients[63], 0.0);
  EXPECT_EQ(design.coefficients[2], 0.0);
}

TEST(IdftBranch, BlockShapeAndZeroMean) {
  IdftRayleighBranch branch(1024, 0.05, 0.5);
  random::Rng rng(11);
  const auto block = branch.generate_block(rng);
  ASSERT_EQ(block.size(), 1024u);
  numeric::cdouble mean{};
  for (const auto& v : block) {
    mean += v;
  }
  mean /= 1024.0;
  // Zero-mean within Monte-Carlo noise (stddev of mean ~ sigma_g/sqrt(M),
  // but samples are correlated; use a generous bound).
  EXPECT_LT(std::abs(mean), 10.0 * std::sqrt(branch.output_variance()));
}

TEST(IdftBranch, EmpiricalVarianceMatchesEq19) {
  // The paper's headline quantity: the filter changes the variance, and
  // Eq. (19) predicts the new value exactly.
  IdftRayleighBranch branch(512, 0.08, 0.5);
  random::Rng rng(12);
  double power = 0.0;
  const int blocks = 300;
  for (int b = 0; b < blocks; ++b) {
    const auto block = branch.generate_block(rng);
    for (const auto& v : block) {
      power += std::norm(v);
    }
  }
  const double measured = power / (512.0 * blocks);
  EXPECT_NEAR(measured / branch.output_variance(), 1.0, 0.05);
  // And it is far from the input variance 2*sigma_orig^2 = 1.
  EXPECT_LT(branch.output_variance(), 0.01);
}

TEST(IdftBranch, EmpiricalAutocorrelationTracksJ0) {
  const double fm = 0.05;
  IdftRayleighBranch branch(4096, fm, 0.5);
  random::Rng rng(13);
  // Average the normalised autocorrelation over several blocks.
  const std::size_t max_lag = 60;
  numeric::RVector avg(max_lag + 1, 0.0);
  const int blocks = 20;
  for (int b = 0; b < blocks; ++b) {
    const auto block = branch.generate_block(rng);
    const auto rho = stats::normalized_autocorrelation(block, max_lag);
    for (std::size_t d = 0; d <= max_lag; ++d) {
      avg[d] += rho[d] / blocks;
    }
  }
  for (std::size_t d = 0; d <= max_lag; d += 5) {
    const double j0 = special::bessel_j0(2.0 * M_PI * fm * double(d));
    EXPECT_NEAR(avg[d], j0, 0.08) << "lag " << d;
  }
}

TEST(IdftBranch, EnvelopeIsRayleigh) {
  // One sample per block is independent across blocks: KS-test those.
  IdftRayleighBranch branch(256, 0.1, 0.5);
  random::Rng rng(14);
  const int n = 4000;
  numeric::RVector samples(n);
  for (int i = 0; i < n; ++i) {
    const auto block = branch.generate_block(rng);
    samples[static_cast<std::size_t>(i)] = std::abs(block[0]);
  }
  const auto rayleigh =
      stats::RayleighDistribution::from_gaussian_power(branch.output_variance());
  const auto ks =
      stats::ks_test(samples, [&](double r) { return rayleigh.cdf(r); });
  EXPECT_GT(ks.p_value, 1e-3);
}

TEST(IdftBranch, RealAndImaginaryPartsUncorrelated) {
  // Eq. (18) with the real Eq. (21) filter: r_RI = 0.
  IdftRayleighBranch branch(512, 0.08, 0.5);
  random::Rng rng(15);
  double cross = 0.0;
  double power = 0.0;
  const int blocks = 200;
  for (int b = 0; b < blocks; ++b) {
    const auto block = branch.generate_block(rng);
    for (const auto& v : block) {
      cross += v.real() * v.imag();
      power += std::norm(v);
    }
  }
  EXPECT_LT(std::abs(cross) / power, 0.02);
}

TEST(IdftBranch, EnvelopeBlockMatchesComplexBlock) {
  IdftRayleighBranch branch(256, 0.1, 0.5);
  random::Rng rng_a(16);
  random::Rng rng_b(16);
  const auto complex_block = branch.generate_block(rng_a);
  const auto envelope_block = branch.generate_envelope_block(rng_b);
  for (std::size_t l = 0; l < 256; ++l) {
    EXPECT_DOUBLE_EQ(envelope_block[l], std::abs(complex_block[l]));
  }
}

}  // namespace
