// Tests for the RNG stack: Philox structure, stream independence,
// distributional quality of the Gaussian/complex-Gaussian samplers.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/random/philox.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/random/xoshiro.hpp"
#include "rfade/stats/distributions.hpp"
#include "rfade/stats/ks_test.hpp"
#include "rfade/stats/moments.hpp"

namespace {

using namespace rfade;
using random::EngineKind;
using random::GaussianAlgorithm;
using random::PhiloxEngine;
using random::Rng;
using random::XoshiroEngine;

TEST(Philox, DeterministicGivenSeed) {
  PhiloxEngine a(123, 0);
  PhiloxEngine b(123, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Philox, DifferentSeedsDiffer) {
  PhiloxEngine a(1, 0);
  PhiloxEngine b(2, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(Philox, DifferentStreamsDiffer) {
  PhiloxEngine a(7, 0);
  PhiloxEngine b(7, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(Philox, SeekReplaysBlock) {
  PhiloxEngine a(99, 5);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 8; ++i) {
    first.push_back(a.next_u64());
  }
  a.seek(0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.next_u64(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(Philox, BlockFunctionIsPureAndSensitive) {
  const std::array<std::uint32_t, 2> key = {0x12345678u, 0x9ABCDEF0u};
  const std::array<std::uint32_t, 4> ctr = {1u, 2u, 3u, 4u};
  const auto out1 = PhiloxEngine::block(key, ctr);
  const auto out2 = PhiloxEngine::block(key, ctr);
  EXPECT_EQ(out1, out2);  // pure function

  // Single-bit counter change flips roughly half the output bits.
  auto ctr_flipped = ctr;
  ctr_flipped[0] ^= 1u;
  const auto out3 = PhiloxEngine::block(key, ctr_flipped);
  int flipped_bits = 0;
  for (std::size_t w = 0; w < 4; ++w) {
    flipped_bits += std::popcount(out1[w] ^ out3[w]);
  }
  EXPECT_GT(flipped_bits, 32);  // avalanche: expect ~64 of 128
  EXPECT_LT(flipped_bits, 96);

  // Key sensitivity as well.
  auto key_flipped = key;
  key_flipped[1] ^= 0x80000000u;
  const auto out4 = PhiloxEngine::block(key_flipped, ctr);
  EXPECT_NE(out1, out4);
}

TEST(Xoshiro, DeterministicAndStreamsDiffer) {
  XoshiroEngine a(42, 0);
  XoshiroEngine b(42, 0);
  XoshiroEngine c(42, 1);
  bool stream_differs = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    stream_differs |= va != c.next_u64();
  }
  EXPECT_TRUE(stream_differs);
}

TEST(Rng, Uniform01Range) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMoments) {
  Rng rng(6);
  stats::RunningStats acc;
  for (int i = 0; i < 200000; ++i) {
    acc.add(rng.uniform01());
  }
  EXPECT_NEAR(acc.mean(), 0.5, 0.005);
  EXPECT_NEAR(acc.variance(), 1.0 / 12.0, 0.002);
}

class GaussianQuality
    : public testing::TestWithParam<std::pair<EngineKind, GaussianAlgorithm>> {
};

TEST_P(GaussianQuality, MomentsAndKsAgainstNormal) {
  const auto [kind, algorithm] = GetParam();
  Rng rng(kind, 1234, 0, algorithm);
  const std::size_t n = 100000;
  numeric::RVector samples(n);
  stats::RunningStats acc;
  double third = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    samples[i] = rng.gaussian();
    acc.add(samples[i]);
    third += samples[i] * samples[i] * samples[i];
  }
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.variance(), 1.0, 0.02);
  EXPECT_NEAR(third / double(n), 0.0, 0.05);  // skewness ~ 0

  const auto ks = stats::ks_test(
      samples, [](double x) { return stats::normal_cdf(x); });
  EXPECT_GT(ks.p_value, 1e-4) << "engine/algorithm produced non-normal output";
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndAlgorithms, GaussianQuality,
    testing::Values(
        std::make_pair(EngineKind::Philox, GaussianAlgorithm::BoxMuller),
        std::make_pair(EngineKind::Philox, GaussianAlgorithm::Polar),
        std::make_pair(EngineKind::Xoshiro, GaussianAlgorithm::BoxMuller),
        std::make_pair(EngineKind::Xoshiro, GaussianAlgorithm::Polar)),
    [](const auto& tinfo) {
      std::string name =
          tinfo.param.first == EngineKind::Philox ? "Philox" : "Xoshiro";
      name += tinfo.param.second == GaussianAlgorithm::BoxMuller ? "BoxMuller"
                                                                : "Polar";
      return name;
    });

TEST(Rng, GaussianMeanStddevParameters) {
  Rng rng(7);
  stats::RunningStats acc;
  for (int i = 0; i < 100000; ++i) {
    acc.add(rng.gaussian(3.0, 2.0));
  }
  EXPECT_NEAR(acc.mean(), 3.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
  EXPECT_THROW((void)rng.gaussian(0.0, -1.0), ContractViolation);
}

TEST(Rng, ComplexGaussianVarianceSplit) {
  Rng rng(8);
  const double variance = 4.0;
  stats::RunningStats re;
  stats::RunningStats im;
  double cross = 0.0;
  double power = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const auto z = rng.complex_gaussian(variance);
    re.add(z.real());
    im.add(z.imag());
    cross += z.real() * z.imag();
    power += std::norm(z);
  }
  // Per-dimension variance = variance / 2 (paper Sec. 4.1).
  EXPECT_NEAR(re.variance(), variance / 2.0, 0.05);
  EXPECT_NEAR(im.variance(), variance / 2.0, 0.05);
  // Independence of real/imaginary parts.
  EXPECT_NEAR(cross / n, 0.0, 0.05);
  // Total power E|z|^2 = variance.
  EXPECT_NEAR(power / n, variance, 0.08);
}

TEST(Rng, ForkStreamIsIndependentAndDeterministic) {
  const Rng root(101);
  Rng s1 = root.fork_stream(1);
  Rng s1_again = root.fork_stream(1);
  Rng s2 = root.fork_stream(2);
  double corr = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const double a = s1.gaussian();
    const double b = s2.gaussian();
    EXPECT_EQ(a, s1_again.gaussian());
    corr += a * b;
  }
  EXPECT_NEAR(corr / 50000.0, 0.0, 0.02);
}

TEST(Rng, EngineNamesReported) {
  EXPECT_STREQ(Rng(EngineKind::Philox, 1, 0).engine_name(), "philox4x32-10");
  EXPECT_STREQ(Rng(EngineKind::Xoshiro, 1, 0).engine_name(), "xoshiro256++");
}

TEST(Rng, ChiSquareUniformityOfBits) {
  // 256 buckets over the top byte of next_u64.
  Rng rng(2024);
  std::array<int, 256> counts{};
  const int n = 256000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.next_u64() >> 56)];
  }
  double chi2 = 0.0;
  const double expected = n / 256.0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // dof = 255; mean 255, stddev ~ sqrt(510) ~ 22.6. 5 sigma window.
  EXPECT_LT(chi2, 255.0 + 5.0 * 22.6);
  EXPECT_GT(chi2, 255.0 - 5.0 * 22.6);
}

}  // namespace
