// Tests for the instant-mode envelope generator (paper Sec. 4.4-4.5):
// achieved covariance, envelope moments (Eqs. 14-15), Rayleigh-ness,
// arbitrary powers, non-PSD handling, determinism and parallel validation.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/core/power.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/stats/moments.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using core::EnvelopeGenerator;
using core::GeneratorOptions;
using numeric::cdouble;
using numeric::CMatrix;

TEST(Power, Eq11RoundTrip) {
  for (const double p : {0.1, 1.0, 7.5}) {
    EXPECT_NEAR(core::envelope_power_from_gaussian_power(
                    core::gaussian_power_from_envelope_power(p)),
                p, 1e-12);
  }
  // Constants of Eqs. (14)-(15).
  EXPECT_NEAR(core::envelope_mean_from_gaussian_power(1.0), 0.8862, 5e-5);
  EXPECT_NEAR(core::envelope_power_from_gaussian_power(1.0), 0.2146, 5e-5);
  EXPECT_NEAR(core::kRayleighVarianceFactor, 0.2146018, 1e-6);
  EXPECT_DOUBLE_EQ(core::envelope_rms_from_gaussian_power(4.0), 2.0);
  EXPECT_THROW((void)core::gaussian_power_from_envelope_power(0.0),
               ContractViolation);
}

TEST(Generator, AccessorsAndShapes) {
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const EnvelopeGenerator gen(k);
  EXPECT_EQ(gen.dimension(), 3u);
  EXPECT_LT(numeric::max_abs_diff(gen.desired_covariance(), k), 1e-15);
  EXPECT_LT(numeric::max_abs_diff(gen.effective_covariance(), k), 1e-12);

  random::Rng rng(1);
  EXPECT_EQ(gen.sample(rng).size(), 3u);
  EXPECT_EQ(gen.sample_envelopes(rng).size(), 3u);
  const CMatrix block = gen.sample_block(10, rng);
  EXPECT_EQ(block.rows(), 10u);
  EXPECT_EQ(block.cols(), 3u);
  EXPECT_THROW((void)gen.sample_block(0, rng), ContractViolation);
}

TEST(Generator, DeterministicGivenSeed) {
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const EnvelopeGenerator gen(k);
  random::Rng a(77);
  random::Rng b(77);
  for (int i = 0; i < 20; ++i) {
    const auto za = gen.sample(a);
    const auto zb = gen.sample(b);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(za[j], zb[j]);
    }
  }
}

TEST(Generator, AchievesDesiredCovariance) {
  // Experiment E5's core assertion at test scale.
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const EnvelopeGenerator gen(k);
  random::Rng rng(2);
  stats::CovarianceAccumulator acc(3);
  numeric::CVector z(3);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    gen.sample_into(rng, z);
    acc.add(z);
  }
  EXPECT_LT(stats::relative_frobenius_error(acc.covariance(), k), 0.01);
}

TEST(Generator, SampleVarianceOptionDoesNotChangeStatistics) {
  // Step 6 allows *arbitrary* variance sigma_w^2; the division by sigma_w
  // must make the output statistics invariant.
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  GeneratorOptions big_variance;
  big_variance.sample_variance = 25.0;
  const EnvelopeGenerator unit(k);
  const EnvelopeGenerator scaled(k, big_variance);

  for (const EnvelopeGenerator* gen : {&unit, &scaled}) {
    random::Rng rng(3);
    stats::CovarianceAccumulator acc(3);
    numeric::CVector z(3);
    for (int i = 0; i < 100000; ++i) {
      gen->sample_into(rng, z);
      acc.add(z);
    }
    EXPECT_LT(stats::relative_frobenius_error(acc.covariance(), k), 0.02);
  }
  EXPECT_THROW((void)EnvelopeGenerator(k, GeneratorOptions{.coloring = {},
                                                     .sample_variance = 0.0}),
               ContractViolation);
}

TEST(Generator, UnequalPowersAreRealised) {
  // The headline generalisation: arbitrary (unequal) powers.
  core::CovarianceBuilder builder(3);
  builder.set_gaussian_power(0, 0.5)
      .set_gaussian_power(1, 2.0)
      .set_gaussian_power(2, 7.0);
  builder.set_cross_entry(0, 1, cdouble(0.4, 0.3));
  builder.set_cross_entry(0, 2, cdouble(-0.2, 0.5));
  builder.set_cross_entry(1, 2, cdouble(1.0, -0.8));
  const CMatrix k = builder.build();
  ASSERT_TRUE(core::is_positive_semidefinite(k));

  const EnvelopeGenerator gen(k);
  const auto report = core::validate_generator(
      gen, {.samples = 150000, .seed = 4, .parallel = true,
            .chunk_size = 8192, .ks_samples_per_branch = 20000});
  EXPECT_LT(report.covariance_rel_error, 0.02);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_LT(report.envelope_mean_rel_error[j], 0.01) << "branch " << j;
    EXPECT_LT(report.envelope_variance_rel_error[j], 0.03) << "branch " << j;
  }
  EXPECT_GT(report.worst_ks_p_value, 1e-4);
}

TEST(Generator, DesiredEnvelopePowersViaEq11) {
  // Start from envelope powers sigma_r^2 (algorithm step 1) and verify the
  // measured envelope variance comes back as requested.
  const double sigma_r2 = 0.4;
  core::CovarianceBuilder builder(2);
  builder.set_envelope_power(0, sigma_r2).set_envelope_power(1, sigma_r2);
  builder.set_cross_entry(0, 1, cdouble(0.5, 0.0));
  const EnvelopeGenerator gen(builder.build());

  random::Rng rng(5);
  stats::RunningStats env0;
  for (int i = 0; i < 200000; ++i) {
    env0.add(gen.sample_envelopes(rng)[0]);
  }
  EXPECT_NEAR(env0.variance() / sigma_r2, 1.0, 0.03);
  // And the mean follows E{r} = sigma_r sqrt(pi / (4 - pi)).
  const double expected_mean =
      std::sqrt(sigma_r2) * std::sqrt(M_PI / (4.0 - M_PI));
  EXPECT_NEAR(env0.mean() / expected_mean, 1.0, 0.02);
}

TEST(Generator, NonPsdInputRealisesForcedCovariance) {
  // Desired K is not PSD; generator must realise the clipped K_bar.
  CMatrix k = CMatrix::identity(2);
  k(0, 1) = cdouble(1.4, 0.0);  // |corr| > 1 => eigenvalues {2.4, -0.4}
  k(1, 0) = cdouble(1.4, 0.0);
  const EnvelopeGenerator gen(k);
  EXPECT_FALSE(gen.coloring().psd.was_psd);
  EXPECT_GT(numeric::max_abs_diff(gen.effective_covariance(), k), 0.1);

  random::Rng rng(6);
  stats::CovarianceAccumulator acc(2);
  numeric::CVector z(2);
  for (int i = 0; i < 150000; ++i) {
    gen.sample_into(rng, z);
    acc.add(z);
  }
  EXPECT_LT(stats::relative_frobenius_error(acc.covariance(),
                                            gen.effective_covariance()),
            0.02);
}

TEST(Generator, FullyCorrelatedDegenerateCase) {
  // K = ones(2,2): rank 1, envelopes identical up to phase.
  CMatrix k(2, 2, cdouble(1.0, 0.0));
  const EnvelopeGenerator gen(k);
  random::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto z = gen.sample(rng);
    // The zero eigenvalue of the rank-1 K is computed to ~1e-16, whose
    // square root injects ~1e-8 into the second coloring column; the two
    // outputs agree to sqrt(machine epsilon).
    EXPECT_NEAR(std::abs(z[0] - z[1]), 0.0, 1e-6);
  }
}

TEST(Generator, ParallelValidationMatchesSerial) {
  // Chunk-keyed streams: identical results for serial and parallel runs.
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const EnvelopeGenerator gen(k);
  core::ValidationOptions serial{.samples = 30000,
                                 .seed = 8,
                                 .parallel = false,
                                 .chunk_size = 4096,
                                 .ks_samples_per_branch = 5000};
  core::ValidationOptions parallel = serial;
  parallel.parallel = true;
  const auto a = core::validate_generator(gen, serial);
  const auto b = core::validate_generator(gen, parallel);
  EXPECT_DOUBLE_EQ(a.covariance_rel_error, b.covariance_rel_error);
  EXPECT_LT(
      numeric::max_abs_diff(a.sample_covariance, b.sample_covariance), 0.0 + 1e-15);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(a.ks_p_values[j], b.ks_p_values[j]);
  }
}

TEST(Generator, CholeskyColoringOptionWorksOnPdMatrix) {
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  GeneratorOptions options;
  options.coloring.method = core::ColoringMethod::Cholesky;
  const EnvelopeGenerator gen(k, options);
  random::Rng rng(9);
  stats::CovarianceAccumulator acc(3);
  numeric::CVector z(3);
  for (int i = 0; i < 100000; ++i) {
    gen.sample_into(rng, z);
    acc.add(z);
  }
  EXPECT_LT(stats::relative_frobenius_error(acc.covariance(), k), 0.02);
}

TEST(Generator, RejectsInvalidCovariance) {
  EXPECT_THROW((void)EnvelopeGenerator(CMatrix(2, 3)), ContractViolation);
  CMatrix bad_diag = CMatrix::identity(2);
  bad_diag(0, 0) = cdouble(-1.0, 0.0);
  EXPECT_THROW((void)EnvelopeGenerator(bad_diag), ContractViolation);
}

TEST(Generator, SampleIntoValidatesSize) {
  const EnvelopeGenerator gen(CMatrix::identity(3));
  random::Rng rng(10);
  numeric::CVector wrong(2);
  EXPECT_THROW((void)gen.sample_into(rng, wrong), ContractViolation);
}

}  // namespace
