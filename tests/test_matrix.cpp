// Tests for the dense matrix container and the linear-algebra kernels.

#include <gtest/gtest.h>

#include "rfade/numeric/matrix.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;
using numeric::CVector;
using numeric::RMatrix;
using numeric::RVector;

TEST(Matrix, ConstructionAndAccess) {
  CMatrix m(2, 3, cdouble(1.0, -1.0));
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FALSE(m.is_square());
  EXPECT_EQ(m(1, 2), cdouble(1.0, -1.0));
  m(0, 0) = cdouble(5.0, 0.0);
  EXPECT_EQ(m.at(0, 0), cdouble(5.0, 0.0));
}

TEST(Matrix, AtChecksBounds) {
  CMatrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), ContractViolation);
  EXPECT_THROW((void)m.at(0, 2), ContractViolation);
}

TEST(Matrix, FromRowsAndIdentity) {
  const RMatrix m = RMatrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  const CMatrix id = CMatrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(id(i, j), (i == j ? cdouble(1.0) : cdouble{}));
    }
  }
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW((void)RMatrix::from_rows({{1.0, 2.0}, {3.0}}), ContractViolation);
}

TEST(Matrix, EqualityAndFill) {
  RMatrix a(2, 2, 1.0);
  RMatrix b(2, 2, 1.0);
  EXPECT_TRUE(a == b);
  b.fill(2.0);
  EXPECT_FALSE(a == b);
}

TEST(MatrixOps, MultiplyKnownProduct) {
  const RMatrix a = RMatrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const RMatrix b = RMatrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const RMatrix c = numeric::multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixOps, MultiplyShapeMismatchThrows) {
  const RMatrix a(2, 3, 1.0);
  const RMatrix b(2, 3, 1.0);
  EXPECT_THROW((void)numeric::multiply(a, b), ContractViolation);
}

TEST(MatrixOps, ComplexMultiplyAndMatvec) {
  const CMatrix a =
      CMatrix::from_rows({{cdouble(0, 1), cdouble(1, 0)},
                          {cdouble(2, 0), cdouble(0, -1)}});
  const CVector x = {cdouble(1, 0), cdouble(0, 1)};
  const CVector y = numeric::multiply(a, x);
  EXPECT_EQ(y[0], cdouble(0, 2));   // i*1 + 1*i = 2i
  EXPECT_EQ(y[1], cdouble(3, 0));   // 2*1 + (-i)*i = 2+1
}

TEST(MatrixOps, ConjugateTranspose) {
  const CMatrix a = CMatrix::from_rows({{cdouble(1, 2), cdouble(3, 4)}});
  const CMatrix ah = numeric::conjugate_transpose(a);
  EXPECT_EQ(ah.rows(), 2u);
  EXPECT_EQ(ah.cols(), 1u);
  EXPECT_EQ(ah(0, 0), cdouble(1, -2));
  EXPECT_EQ(ah(1, 0), cdouble(3, -4));
}

TEST(MatrixOps, GramEqualsLTimesLH) {
  const CMatrix l = CMatrix::from_rows(
      {{cdouble(1, 0), cdouble(0, 0)}, {cdouble(2, 1), cdouble(3, 0)}});
  const CMatrix g = numeric::gram(l);
  const CMatrix expected =
      numeric::multiply(l, numeric::conjugate_transpose(l));
  EXPECT_LT(numeric::max_abs_diff(g, expected), 1e-14);
  EXPECT_TRUE(numeric::is_hermitian(g));
}

TEST(MatrixOps, NormsAndDiffs) {
  const CMatrix a = CMatrix::from_rows({{cdouble(3, 4)}});
  EXPECT_DOUBLE_EQ(numeric::frobenius_norm(a), 5.0);
  EXPECT_DOUBLE_EQ(numeric::max_abs(a), 5.0);
  const CMatrix b = CMatrix::from_rows({{cdouble(0, 0)}});
  EXPECT_DOUBLE_EQ(numeric::max_abs_diff(a, b), 5.0);
}

TEST(MatrixOps, HermitianDetection) {
  CMatrix h = CMatrix::from_rows(
      {{cdouble(2, 0), cdouble(1, 1)}, {cdouble(1, -1), cdouble(3, 0)}});
  EXPECT_TRUE(numeric::is_hermitian(h));
  h(0, 1) = cdouble(1, 2);
  EXPECT_FALSE(numeric::is_hermitian(h));
  // Imaginary diagonal breaks hermitianness.
  CMatrix d = CMatrix::identity(2);
  d(0, 0) = cdouble(1, 0.5);
  EXPECT_FALSE(numeric::is_hermitian(d));
  // Non-square is never Hermitian.
  EXPECT_FALSE(numeric::is_hermitian(CMatrix(2, 3)));
}

TEST(MatrixOps, HermitianPartProjects) {
  const CMatrix a = CMatrix::from_rows(
      {{cdouble(1, 1), cdouble(2, 0)}, {cdouble(0, 0), cdouble(4, -2)}});
  const CMatrix h = numeric::hermitian_part(a);
  EXPECT_TRUE(numeric::is_hermitian(h));
  EXPECT_DOUBLE_EQ(h(0, 0).real(), 1.0);
  EXPECT_DOUBLE_EQ(h(0, 0).imag(), 0.0);
  EXPECT_EQ(h(0, 1), std::conj(h(1, 0)));
}

TEST(MatrixOps, AddSubtractScale) {
  const CMatrix a(2, 2, cdouble(1, 1));
  const CMatrix b(2, 2, cdouble(2, -1));
  EXPECT_EQ(numeric::add(a, b)(0, 0), cdouble(3, 0));
  EXPECT_EQ(numeric::subtract(a, b)(1, 1), cdouble(-1, 2));
  EXPECT_EQ(numeric::scale(a, cdouble(0, 1))(0, 0), cdouble(-1, 1));
}

TEST(MatrixOps, DiagAndTrace) {
  const CMatrix d = numeric::diag(RVector{1.0, 2.0, 3.0});
  EXPECT_EQ(d(1, 1), cdouble(2, 0));
  EXPECT_EQ(d(0, 1), cdouble{});
  EXPECT_EQ(numeric::trace(d), cdouble(6, 0));
  const CVector diag_back = numeric::diagonal(d);
  EXPECT_EQ(diag_back[2], cdouble(3, 0));
  EXPECT_THROW((void)numeric::trace(CMatrix(2, 3)), ContractViolation);
}

TEST(MatrixOps, RealImagConversions) {
  const CMatrix a = CMatrix::from_rows({{cdouble(1, 2)}});
  EXPECT_DOUBLE_EQ(numeric::real_part(a)(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(numeric::imag_part(a)(0, 0), 2.0);
  const RMatrix r = RMatrix::from_rows({{7.0}});
  EXPECT_EQ(numeric::to_complex(r)(0, 0), cdouble(7, 0));
}

TEST(MatrixOps, TransposeReal) {
  const RMatrix a = RMatrix::from_rows({{1.0, 2.0, 3.0}});
  const RMatrix t = numeric::transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
}

}  // namespace
