// Tests for the time-varying scenario subsystem: the MeanSource
// generalization of the pipeline mean hook (constant / Doppler-phasor /
// block forms, with the zero and constant fast paths bit-identical to
// the PR-2 behaviour), TWDP fading in instant and real-time modes
// (degeneracies: Delta = 0 -> Rician, K = 0 -> bit-identical Rayleigh),
// and the real-time cascaded generator (product autocorrelation,
// double-Rayleigh KS, Hadamard covariance).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <utility>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/mean_source.hpp"
#include "rfade/core/plan.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/doppler/filter.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/scenario/cascaded.hpp"
#include "rfade/scenario/scenario_spec.hpp"
#include "rfade/scenario/timevarying/cascaded_realtime.hpp"
#include "rfade/scenario/timevarying/twdp.hpp"
#include "rfade/stats/autocorrelation.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/stats/ks_test.hpp"
#include "rfade/stats/moments.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using core::ColoringPlan;
using core::MeanSource;
using core::SamplePipeline;
using numeric::cdouble;
using numeric::CMatrix;
using numeric::CVector;
using scenario::CascadedRealTimeGenerator;
using scenario::TwdpGenerator;
using scenario::TwdpSpec;

constexpr double kTwoPi = 6.283185307179586476925286766559;

CMatrix paper_k() {
  return channel::spectral_covariance_matrix(
      channel::paper_spectral_scenario());
}

CMatrix tridiagonal_covariance(std::size_t n) {
  CMatrix k = CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = cdouble(0.4, 0.2);
    k(i + 1, i) = cdouble(0.4, -0.2);
  }
  return k;
}

// --- MeanSource --------------------------------------------------------------

TEST(MeanSource, ClassifiesZeroConstantAndTimeVarying) {
  EXPECT_TRUE(MeanSource().is_zero());
  EXPECT_TRUE(MeanSource(CVector{}).is_zero());
  EXPECT_TRUE(MeanSource(CVector(3, cdouble{})).is_zero());
  // A phasor with all-zero amplitudes is zero regardless of frequency.
  EXPECT_TRUE(
      MeanSource::doppler_phasor(CVector(3, cdouble{}), 0.1).is_zero());

  const MeanSource constant(CVector{cdouble(1.0, 0.5), cdouble{}});
  EXPECT_FALSE(constant.is_zero());
  EXPECT_TRUE(constant.is_constant());
  EXPECT_EQ(constant.dimension(), 2u);

  // Frequency 0 phasors are constant; several static terms collapse to
  // one summed vector.
  const MeanSource static_sum = MeanSource::phasor_sum(
      {core::MeanPhasorTerm{CVector(2, cdouble(0.5, 0.0)), 0.0},
       core::MeanPhasorTerm{CVector(2, cdouble(0.25, 1.0)), 0.0}});
  EXPECT_TRUE(static_sum.is_constant());
  ASSERT_EQ(static_sum.terms().size(), 1u);
  EXPECT_EQ(static_sum.terms().front().amplitudes[0], cdouble(0.75, 1.0));

  const MeanSource moving =
      MeanSource::doppler_phasor(CVector(2, cdouble(1.0, 0.0)), 0.02);
  EXPECT_TRUE(moving.is_time_varying());
  EXPECT_FALSE(moving.is_constant());

  // Individually non-zero static terms that cancel exactly collapse to
  // the zero mean (fast path + -0.0 bit-compatibility preserved).
  const MeanSource cancelling = MeanSource::phasor_sum(
      {core::MeanPhasorTerm{CVector(2, cdouble(0.5, -1.0)), 0.0},
       core::MeanPhasorTerm{CVector(2, cdouble(-0.5, 1.0)), 0.0}});
  EXPECT_TRUE(cancelling.is_zero());
}

TEST(MeanSource, PhasorEvaluationMatchesClosedForm) {
  const CVector amplitude{cdouble(0.8, -0.3), cdouble(0.0, 1.2)};
  const double f = 0.037;
  const MeanSource mean = MeanSource::doppler_phasor(amplitude, f);
  for (const std::uint64_t l : {0ULL, 1ULL, 17ULL, 4096ULL, 1000003ULL}) {
    const CVector m = mean.mean_at_instant(l, 2);
    const cdouble rot = std::polar(
        1.0, kTwoPi * std::fmod(f * static_cast<double>(l), 1.0));
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(std::abs(m[j] - amplitude[j] * rot), 0.0, 1e-12)
          << "l=" << l << " j=" << j;
    }
  }
}

TEST(MeanSource, BlockFormIsPeriodic) {
  CMatrix block(3, 2);
  for (std::size_t l = 0; l < 3; ++l) {
    block(l, 0) = cdouble(double(l), 0.0);
    block(l, 1) = cdouble(0.0, double(l) + 1.0);
  }
  const MeanSource mean = MeanSource::block(block);
  EXPECT_TRUE(mean.is_time_varying());
  EXPECT_EQ(mean.dimension(), 2u);
  for (const std::uint64_t l : {0ULL, 1ULL, 2ULL, 3ULL, 7ULL, 300ULL}) {
    const CVector m = mean.mean_at_instant(l, 2);
    EXPECT_EQ(m[0], block(l % 3, 0)) << "l=" << l;
    EXPECT_EQ(m[1], block(l % 3, 1)) << "l=" << l;
  }
}

TEST(MeanSource, RejectsInvalidInput) {
  // Frequency out of the normalised band or non-finite.
  EXPECT_THROW((void)MeanSource::doppler_phasor(CVector(2, cdouble(1, 0)),
                                                0.6),
               ContractViolation);
  EXPECT_THROW((void)MeanSource::doppler_phasor(
                   CVector(2, cdouble(1, 0)),
                   std::numeric_limits<double>::quiet_NaN()),
               ContractViolation);
  // Empty term amplitudes and mismatched dimensions across terms.
  EXPECT_THROW(
      (void)MeanSource::phasor_sum({core::MeanPhasorTerm{CVector{}, 0.0}}),
      ContractViolation);
  EXPECT_THROW((void)MeanSource::phasor_sum(
                   {core::MeanPhasorTerm{CVector(2, cdouble(1, 0)), 0.0},
                    core::MeanPhasorTerm{CVector(3, cdouble(1, 0)), 0.1}}),
               ContractViolation);
  // Empty or non-finite block.
  EXPECT_THROW((void)MeanSource::block(CMatrix{}), ContractViolation);
  CMatrix bad(2, 2);
  bad(1, 1) = cdouble(std::numeric_limits<double>::infinity(), 0.0);
  EXPECT_THROW((void)MeanSource::block(bad), ContractViolation);
  // Pipeline-level dimension contract: a 2-branch mean on a 3-branch plan.
  const auto plan = ColoringPlan::create(paper_k());
  core::PipelineOptions options;
  options.mean_offset =
      MeanSource::doppler_phasor(CVector(2, cdouble(1.0, 0.0)), 0.01);
  EXPECT_THROW(SamplePipeline(plan, options), ContractViolation);
}

// --- Doppler-shifted LOS through the pipeline hot paths ----------------------

TEST(DopplerLos, StreamRowsCarryTheRotatedMeanExactly) {
  const auto plan = ColoringPlan::create(paper_k());
  const scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::rician(paper_k(), 4.0, 0.6);
  const double f_los = 0.013;

  core::PipelineOptions zero_options;
  zero_options.block_size = 512;
  const SamplePipeline plain(plan, zero_options);

  core::PipelineOptions los_options = zero_options;
  los_options.mean_offset = spec.doppler_los_mean(*plan, f_los);
  const SamplePipeline moving(plan, los_options);
  ASSERT_TRUE(moving.has_time_varying_mean());

  // The diffuse bits are untouched; row t is shifted by exactly
  // m e^{i 2 pi f t} with t the absolute stream row — across block
  // boundaries (block_size 512) and identically for the standalone
  // block path.
  const CVector base = spec.los_mean(*plan);
  const CMatrix z0 = plain.sample_stream(1500, 0xD0BB);
  const CMatrix z1 = moving.sample_stream(1500, 0xD0BB);
  for (std::size_t t = 0; t < z0.rows(); ++t) {
    const cdouble rot = std::polar(
        1.0, kTwoPi * std::fmod(f_los * static_cast<double>(t), 1.0));
    for (std::size_t j = 0; j < z0.cols(); ++j) {
      EXPECT_NEAR(std::abs(z1(t, j) - (z0(t, j) + base[j] * rot)), 0.0,
                  1e-13)
          << "t=" << t << " j=" << j;
    }
  }

  // Serial == parallel on the time-varying path too.
  core::PipelineOptions serial = los_options;
  serial.parallel = false;
  EXPECT_EQ(SamplePipeline(plan, serial).sample_stream(3000, 9),
            moving.sample_stream(3000, 9));

  // Standalone blocks line up with the stream rows they correspond to.
  const CMatrix block1 = moving.sample_block(512, 0xD0BB, 1);
  for (std::size_t t = 0; t < 512; ++t) {
    for (std::size_t j = 0; j < block1.cols(); ++j) {
      EXPECT_EQ(block1(t, j), z1(512 + t, j));
    }
  }
}

TEST(DopplerLos, EnvelopesStayRicianUnderRotation) {
  // |m e^{i 2 pi f l}| is constant, so the envelope marginal of every
  // time instant is the same Rician law — the envelope validator must
  // pass against the static-scenario marginals.
  const auto plan = ColoringPlan::create(paper_k());
  const scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::rician(paper_k(), 2.0, 0.3);
  core::PipelineOptions options;
  options.mean_offset = spec.doppler_los_mean(*plan, 0.031);
  const SamplePipeline pipeline(plan, options);

  core::ValidationOptions validation;
  validation.samples = 60000;
  validation.seed = 0x10C0;
  validation.ks_samples_per_branch = 4000;
  const auto report = core::validate_envelopes(
      pipeline, spec.marginals(*plan), validation);
  EXPECT_LT(report.max_mean_rel_error, 0.01);
  EXPECT_GT(report.worst_ks_p_value, 1e-3);
}

TEST(DopplerLos, RealTimeAutocorrelationGainsTheSpectralLine) {
  // With a Doppler-shifted LOS the branch autocorrelation is
  // K_bar rho(d) + |m|^2 e^{i 2 pi f_LOS d}: the diffuse J0-like decay
  // plus an undamped rotating line.  Measure it over many blocks.
  const CMatrix k = paper_k();
  const auto plan = ColoringPlan::create(k);
  const scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::rician(k, 3.0, 0.8);

  core::RealTimeOptions options;
  options.idft_size = 512;
  options.normalized_doppler = 0.08;
  options.los_mean = spec.doppler_los_mean(*plan, 0.02);
  const core::RealTimeGenerator generator(plan, options);

  const std::size_t max_lag = 40;
  const int blocks = 60;
  const std::size_t m = options.idft_size;
  random::Rng rng(0x10D);
  CVector accumulated(max_lag + 1);
  for (int b = 0; b < blocks; ++b) {
    // Continue the LOS trajectory across blocks so every block sees the
    // same relative rotation structure.
    const CMatrix block = generator.generate_block(rng, b * m);
    CVector series(m);
    for (std::size_t l = 0; l < m; ++l) {
      series[l] = block(l, 0);
    }
    const CVector rho =
        stats::autocorrelation(series, max_lag, stats::AutocorrMode::Unbiased);
    for (std::size_t d = 0; d <= max_lag; ++d) {
      accumulated[d] += rho[d] / double(blocks);
    }
  }

  const double diffuse_power = plan->effective_covariance()(0, 0).real();
  const double los_power = std::norm(spec.los_mean(*plan)[0]);
  const numeric::RVector rho_theory =
      doppler::theoretical_normalized_autocorrelation(
          generator.branch().filter(), max_lag);
  const double scale = diffuse_power + los_power;
  for (std::size_t d = 0; d <= max_lag; d += 4) {
    const cdouble line = std::polar(los_power, kTwoPi * 0.02 * double(d));
    const cdouble theory = diffuse_power * rho_theory[d] + line;
    EXPECT_NEAR(std::abs(accumulated[d] - theory) / scale, 0.0, 0.08)
        << "lag " << d;
  }
}

// --- TWDP --------------------------------------------------------------------

TEST(Twdp, KZeroIsBitIdenticalToPlainRayleigh) {
  const auto plan = ColoringPlan::create(paper_k());
  const TwdpSpec spec = TwdpSpec::uniform(paper_k(), 0.0, 0.9);
  EXPECT_FALSE(spec.has_specular());
  const TwdpGenerator generator(plan, spec);
  const SamplePipeline plain(plan);
  EXPECT_EQ(generator.sample_stream(5000, 0xCAFE),
            plain.sample_stream(5000, 0xCAFE));
  // realtime_mean of a K = 0 spec is the zero MeanSource.
  EXPECT_TRUE(spec.realtime_mean(*plan, 0.01, 0.02).is_zero());
}

TEST(Twdp, DeltaZeroReproducesTheRicianScenario) {
  // Delta = 0 leaves a single wave of power K K_bar_jj: the marginal is
  // the exact Rician law of the Rician scenario with the same K.
  const auto plan = ColoringPlan::create(paper_k());
  const TwdpSpec twdp = TwdpSpec::uniform(paper_k(), 2.5, 0.0);
  const scenario::ScenarioSpec rician =
      scenario::ScenarioSpec::rician(paper_k(), 2.5, 0.0);
  for (std::size_t j = 0; j < 3; ++j) {
    const auto twdp_marginal = twdp.branch_marginal(*plan, j);
    const auto rician_marginal = rician.branch_marginal(*plan, j);
    EXPECT_DOUBLE_EQ(twdp_marginal.v2(), 0.0);
    EXPECT_EQ(twdp_marginal.mean(), rician_marginal.mean());
    for (double r = 0.2; r < 4.0; r += 0.6) {
      EXPECT_EQ(twdp_marginal.cdf(r), rician_marginal.cdf(r)) << "r=" << r;
    }
  }
  // And the generated envelopes pass validation against those marginals.
  const TwdpGenerator generator(plan, twdp);
  core::ValidationOptions options;
  options.samples = 50000;
  options.seed = 0x0D;
  options.ks_samples_per_branch = 3000;
  const auto report = scenario::validate_twdp(generator, options);
  EXPECT_LT(report.max_mean_rel_error, 0.01);
  EXPECT_GT(report.worst_ks_p_value, 1e-3);
}

TEST(Twdp, KsSweepAgainstExactMarginals) {
  const auto plan = ColoringPlan::create(paper_k());
  for (const auto& [k_factor, delta] :
       {std::pair{1.0, 1.0}, std::pair{3.0, 0.5}, std::pair{5.0, 0.9}}) {
    const TwdpSpec spec = TwdpSpec::uniform(paper_k(), k_factor, delta);
    const TwdpGenerator generator(plan, spec);
    core::ValidationOptions options;
    options.samples = 60000;
    options.seed = 0x7DDB;
    options.ks_samples_per_branch = 3000;
    const auto report = scenario::validate_twdp(generator, options);
    EXPECT_LT(report.max_mean_rel_error, 0.01)
        << "K=" << k_factor << " Delta=" << delta;
    EXPECT_LT(report.max_second_moment_rel_error, 0.02)
        << "K=" << k_factor << " Delta=" << delta;
    EXPECT_GT(report.worst_ks_p_value, 1e-3)
        << "K=" << k_factor << " Delta=" << delta;
  }
}

TEST(Twdp, StreamDeterministicAndBlockwiseRegenerable) {
  scenario::TwdpOptions serial;
  serial.block_size = 700;
  serial.parallel = false;
  scenario::TwdpOptions parallel = serial;
  parallel.parallel = true;
  const auto plan = ColoringPlan::create(tridiagonal_covariance(4));
  const TwdpSpec spec = TwdpSpec::uniform(tridiagonal_covariance(4), 2.0, 0.7);
  const TwdpGenerator serial_gen(plan, spec, serial);
  const TwdpGenerator parallel_gen(plan, spec, parallel);
  const CMatrix a = serial_gen.sample_stream(3000, 99);
  EXPECT_EQ(a, parallel_gen.sample_stream(3000, 99));

  // Blocks regenerate independently, in any order.
  CMatrix rebuilt(3000, serial_gen.dimension());
  for (std::size_t block = 5; block-- > 0;) {
    const std::size_t begin = block * serial.block_size;
    if (begin >= 3000) {
      continue;
    }
    const std::size_t rows = std::min<std::size_t>(serial.block_size,
                                                   3000 - begin);
    const CMatrix piece = serial_gen.sample_block(rows, 99, block);
    std::copy(piece.data(), piece.data() + piece.size(),
              rebuilt.data() + begin * rebuilt.cols());
  }
  EXPECT_EQ(a, rebuilt);

  // The wave-phase stream is disjoint from the diffuse stream: adding
  // the waves does not perturb the diffuse bits.
  const SamplePipeline plain(plan, [&] {
    core::PipelineOptions options;
    options.block_size = serial.block_size;
    options.parallel = false;
    return options;
  }());
  const CMatrix diffuse = plain.sample_stream(3000, 99);
  const TwdpSpec::SpecularWaves waves = spec.specular_waves(*plan);
  // Each row's specular addition has modulus within the wave triangle
  // bounds for every branch.
  for (std::size_t t = 0; t < 40; ++t) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double s = std::abs(a(t, j) - diffuse(t, j));
      const double v1 = std::abs(waves.first[j]);
      const double v2 = std::abs(waves.second[j]);
      EXPECT_LE(s, v1 + v2 + 1e-9);
      EXPECT_GE(s, v1 - v2 - 1e-9);
    }
  }
}

TEST(Twdp, RealTimeMeanAddsDeterministicWaveTrajectories) {
  const CMatrix k = paper_k();
  const auto plan = ColoringPlan::create(k);
  const TwdpSpec spec = TwdpSpec::per_branch(
      k, {scenario::TwdpBranch{3.0, 0.6, 0.2, -0.9},
          scenario::TwdpBranch{1.0, 1.0, 0.0, 1.1},
          scenario::TwdpBranch{0.0, 0.0, 0.0, 0.0}});
  const double f1 = 0.04;
  const double f2 = -0.025;

  core::RealTimeOptions plain_options;
  plain_options.idft_size = 256;
  const core::RealTimeGenerator plain(plan, plain_options);

  core::RealTimeOptions twdp_options = plain_options;
  twdp_options.los_mean = spec.realtime_mean(*plan, f1, f2);
  const core::RealTimeGenerator generator(plan, twdp_options);

  random::Rng rng_a(11);
  random::Rng rng_b(11);
  const CMatrix z0 = plain.generate_block(rng_a);
  const CMatrix z1 = generator.generate_block(rng_b);
  const TwdpSpec::SpecularWaves waves = spec.specular_waves(*plan);
  for (std::size_t l = 0; l < z0.rows(); ++l) {
    const cdouble rot1 = std::polar(
        1.0, kTwoPi * std::fmod(f1 * static_cast<double>(l), 1.0));
    const cdouble rot2 = std::polar(
        1.0, kTwoPi * std::fmod(f2 * static_cast<double>(l), 1.0));
    for (std::size_t j = 0; j < z0.cols(); ++j) {
      const cdouble expected =
          z0(l, j) + waves.first[j] * rot1 + waves.second[j] * rot2;
      EXPECT_NEAR(std::abs(z1(l, j) - expected), 0.0, 1e-12)
          << "l=" << l << " j=" << j;
    }
  }
  // Branch 3 has K = 0: its wave amplitudes vanish, so its samples match
  // the plain generator bit-for-bit... up to the shared mean pass, which
  // adds exact zeros for it.
  for (std::size_t l = 0; l < z0.rows(); ++l) {
    EXPECT_EQ(z1(l, 2), z0(l, 2));
  }
}

TEST(Twdp, RejectsInvalidParameters) {
  EXPECT_THROW((void)TwdpSpec::uniform(paper_k(), -1.0, 0.5),
               ContractViolation);
  EXPECT_THROW((void)TwdpSpec::uniform(paper_k(), 1.0, -0.1),
               ContractViolation);
  EXPECT_THROW((void)TwdpSpec::uniform(paper_k(), 1.0, 1.5),
               ContractViolation);
  EXPECT_THROW((void)TwdpSpec::per_branch(
                   paper_k(), std::vector<scenario::TwdpBranch>(2)),
               ContractViolation);
  const TwdpSpec spec = TwdpSpec::uniform(paper_k(), 1.0, 0.5);
  const auto wrong_plan = ColoringPlan::create(tridiagonal_covariance(5));
  EXPECT_THROW((void)spec.specular_waves(*wrong_plan), ContractViolation);
  EXPECT_THROW((void)spec.branch_marginal(*wrong_plan, 0),
               ContractViolation);
  EXPECT_THROW((void)spec.realtime_mean(*wrong_plan, 0.01, 0.02),
               ContractViolation);
  EXPECT_THROW(TwdpGenerator(wrong_plan, spec), ContractViolation);
  // Wave Doppler outside the normalised band — rejected even on a K = 0
  // scenario whose mean would vanish (fail where the bad value appears).
  const auto plan = ColoringPlan::create(paper_k());
  EXPECT_THROW((void)spec.realtime_mean(*plan, 0.7, 0.0),
               ContractViolation);
  const TwdpSpec rayleigh_spec = TwdpSpec::uniform(paper_k(), 0.0, 0.0);
  EXPECT_THROW((void)rayleigh_spec.realtime_mean(*plan, 0.0, 0.9),
               ContractViolation);
  const scenario::ScenarioSpec zero_k =
      scenario::ScenarioSpec::rician(paper_k(), 0.0);
  EXPECT_THROW((void)zero_k.doppler_los_mean(*plan, 0.6), ContractViolation);
  // MeanSource::add_to_rows rejects a mismatched row width up front.
  const MeanSource mean =
      MeanSource::doppler_phasor(CVector(2, cdouble(1.0, 0.0)), 0.01);
  std::vector<cdouble> row(4);
  EXPECT_THROW(mean.add_to_rows(0, 1, 4, row.data()), ContractViolation);
}

// --- cascaded real-time ------------------------------------------------------

TEST(CascadedRealTime, BlocksAreDeterministicAndStagesIndependent) {
  scenario::CascadedRealTimeOptions options;
  options.idft_size = 256;
  options.first_doppler = 0.05;
  options.second_doppler = 0.11;
  const CascadedRealTimeGenerator gen(paper_k(), tridiagonal_covariance(3),
                                      options);
  EXPECT_EQ(gen.dimension(), 3u);
  EXPECT_EQ(gen.block_size(), 256u);

  // Pure function of (seed, block): regenerating gives identical bits;
  // different blocks and different seeds differ.
  const CMatrix a = gen.generate_block(42, 7);
  EXPECT_EQ(a, gen.generate_block(42, 7));
  EXPECT_NE(a, gen.generate_block(42, 8));
  EXPECT_NE(a, gen.generate_block(43, 7));

  // The product block is exactly stage1 (.) stage2 drawn from the
  // disjoint stage streams.
  random::Rng rng1(CascadedRealTimeGenerator::stage_seed(42, 0), 8);
  random::Rng rng2(CascadedRealTimeGenerator::stage_seed(42, 1), 8);
  const CMatrix z1 = gen.first_stage().generate_block(rng1);
  const CMatrix z2 = gen.second_stage().generate_block(rng2);
  const CMatrix product = gen.generate_block(42, 7);
  for (std::size_t i = 0; i < product.size(); ++i) {
    EXPECT_EQ(product.data()[i], z1.data()[i] * z2.data()[i]);
  }

  // Hadamard covariance accounting.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(gen.effective_covariance()(i, j),
                gen.first_stage().effective_covariance()(i, j) *
                    gen.second_stage().effective_covariance()(i, j));
    }
  }

  // Dimension mismatch between the stages is rejected up front.
  EXPECT_THROW(CascadedRealTimeGenerator(paper_k(),
                                         tridiagonal_covariance(5), options),
               ContractViolation);
}

TEST(CascadedRealTime, AutocorrelationIsTheProductOfStageLaws) {
  // The acceptance claim: the cascaded autocorrelation matches
  // K1_jj K2_jj rho1(d) rho2(d) — the product of the two stages'
  // analytic Eq. (17) laws with their *different* Dopplers.
  scenario::CascadedRealTimeOptions options;
  options.idft_size = 512;
  options.first_doppler = 0.06;
  options.second_doppler = 0.13;
  const CascadedRealTimeGenerator gen(paper_k(), paper_k(), options);

  const std::size_t max_lag = 40;
  const int blocks = 80;
  CVector accumulated(max_lag + 1);
  for (int b = 0; b < blocks; ++b) {
    const CMatrix block = gen.generate_block(0xACC, b);
    CVector series(block.rows());
    for (std::size_t l = 0; l < block.rows(); ++l) {
      series[l] = block(l, 0);
    }
    const CVector rho =
        stats::autocorrelation(series, max_lag, stats::AutocorrMode::Unbiased);
    for (std::size_t d = 0; d <= max_lag; ++d) {
      accumulated[d] += rho[d] / double(blocks);
    }
  }

  const numeric::RVector rho_product =
      gen.theoretical_normalized_autocorrelation(max_lag);
  const double power = gen.effective_covariance()(0, 0).real();
  EXPECT_NEAR(accumulated[0].real(), power, 0.12 * power);
  for (std::size_t d = 0; d <= max_lag; d += 4) {
    EXPECT_NEAR(std::abs(accumulated[d] - power * rho_product[d]) / power,
                0.0, 0.12)
        << "lag " << d;
  }
  // The product decays strictly faster than either stage alone at the
  // first few lags (both factors < 1).
  const numeric::RVector rho1 =
      doppler::theoretical_normalized_autocorrelation(
          gen.first_stage().branch().filter(), max_lag);
  for (std::size_t d = 2; d <= 8; ++d) {
    EXPECT_LT(rho_product[d], std::abs(rho1[d]) + 1e-12);
  }
}

TEST(CascadedRealTime, EnvelopeMarginalIsDoubleRayleigh) {
  // Marginal check on the Doppler-faded cascade: the per-instant law is
  // the closed-form Bessel-K double-Rayleigh.  Samples within a block
  // are temporally correlated, so KS needs decorrelated draws: take a
  // thinned subsequence across many blocks.
  scenario::CascadedRealTimeOptions options;
  options.idft_size = 256;
  options.first_doppler = 0.1;
  options.second_doppler = 0.17;
  const CascadedRealTimeGenerator gen(paper_k(), tridiagonal_covariance(3),
                                      options);

  const auto marginal = gen.branch_marginal(0);
  numeric::RVector thinned;
  stats::RunningStats moments;
  const std::size_t stride = 32;  // ~3 Doppler periods at fm = 0.1
  for (int b = 0; b < 40; ++b) {
    const numeric::RMatrix envelopes = gen.generate_envelope_block(0x5EA, b);
    for (std::size_t l = 0; l < envelopes.rows(); l += stride) {
      thinned.push_back(envelopes(l, 0));
    }
    for (std::size_t l = 0; l < envelopes.rows(); ++l) {
      moments.add(envelopes(l, 0));
    }
  }
  const auto ks = stats::ks_test(
      thinned, [&marginal](double r) { return marginal.cdf(r); });
  EXPECT_GT(ks.p_value, 1e-3);
  EXPECT_NEAR(moments.mean(), marginal.mean(), 0.05 * marginal.mean());
  const double m2 = moments.variance() + moments.mean() * moments.mean();
  EXPECT_NEAR(m2, marginal.second_moment(),
              0.08 * marginal.second_moment());
}

// --- instant-mode cascade: KS upgrade ---------------------------------------

TEST(Cascaded, ValidatorRunsKsAgainstDoubleRayleigh) {
  const scenario::CascadedRayleighGenerator gen(paper_k(),
                                                tridiagonal_covariance(3));
  core::ValidationOptions options;
  options.samples = 60000;
  options.seed = 0xDB1;
  options.ks_samples_per_branch = 4000;
  const auto report = scenario::validate_cascaded(gen, options);
  EXPECT_LT(report.max_mean_rel_error, 0.01);
  EXPECT_LT(report.max_second_moment_rel_error, 0.02);
  EXPECT_GT(report.worst_ks_p_value, 1e-3);
  // The marginal agrees with the generator's own moment formulas.
  for (std::size_t j = 0; j < gen.dimension(); ++j) {
    const auto marginal = gen.branch_marginal(j);
    EXPECT_NEAR(marginal.mean(), gen.envelope_mean(j), 1e-12);
    EXPECT_NEAR(marginal.second_moment(), gen.envelope_second_moment(j),
                1e-12);
  }
}

}  // namespace
