// Property-based sweeps over physical parameter grids: invariants that must
// hold for *every* physically-meaningful configuration, not just the
// paper's Sec. 6 instances.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/channel/spatial.hpp"
#include "rfade/channel/spectral.hpp"
#include "rfade/core/envelope_correlation.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/core/psd.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/doppler/filter.hpp"
#include "rfade/fft/fft.hpp"
#include "rfade/numeric/eigen_hermitian.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/special/bessel.hpp"
#include "rfade/stats/moments.hpp"

namespace {

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

constexpr double kPi = 3.141592653589793238462643383279502884;

// ---------------------------------------------------------------------------
// Spatial covariance: physically realisable => positive semi-definite
// ---------------------------------------------------------------------------

struct SpatialGridCase {
  std::size_t antennas;
  double spacing;
  double spread_deg;
  double angle_deg;
};

class SpatialPhysics : public testing::TestWithParam<SpatialGridCase> {};

TEST_P(SpatialPhysics, CovarianceIsPositiveSemiDefinite) {
  // The Salz-Winters covariances come from an actual field model, so the
  // assembled matrix must be (numerically) PSD for every geometry.
  const auto [antennas, spacing, spread_deg, angle_deg] = GetParam();
  channel::SpatialScenario s;
  s.antenna_count = antennas;
  s.spacing_wavelengths = spacing;
  s.angle_spread_rad = spread_deg * kPi / 180.0;
  s.mean_angle_rad = angle_deg * kPi / 180.0;
  const CMatrix k = channel::spatial_covariance_matrix(s);
  EXPECT_TRUE(numeric::is_hermitian(k, 1e-10));
  const auto eig = numeric::eigen_hermitian(k);
  EXPECT_GE(eig.values.front(), -1e-8)
      << "min eigenvalue " << eig.values.front();
  // Unit diagonal (power sigma^2 = 1) and bounded correlations.
  for (std::size_t i = 0; i < antennas; ++i) {
    EXPECT_NEAR(k(i, i).real(), 1.0, 1e-10);
    for (std::size_t j = 0; j < antennas; ++j) {
      EXPECT_LE(std::abs(k(i, j)), 1.0 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, SpatialPhysics,
    testing::Values(SpatialGridCase{2, 0.1, 5.0, 0.0},
                    SpatialGridCase{3, 0.5, 10.0, 30.0},
                    SpatialGridCase{4, 1.0, 20.0, -45.0},
                    SpatialGridCase{5, 2.0, 45.0, 90.0},
                    SpatialGridCase{6, 0.25, 90.0, 10.0},
                    SpatialGridCase{8, 0.5, 180.0, 0.0},
                    SpatialGridCase{3, 4.0, 2.0, 170.0},
                    SpatialGridCase{7, 1.5, 60.0, -120.0}),
    [](const auto& tinfo) {
      return "n" + std::to_string(tinfo.param.antennas) + "_idx" +
             std::to_string(static_cast<int>(tinfo.param.spacing * 100)) +
             "_" + std::to_string(static_cast<int>(tinfo.param.spread_deg));
    });

// ---------------------------------------------------------------------------
// Spectral covariance: magnitude bound and consistency
// ---------------------------------------------------------------------------

struct SpectralGridCase {
  double separation_khz;
  double tau_ms;
  double doppler_hz;
  double spread_us;
};

class SpectralPhysics : public testing::TestWithParam<SpectralGridCase> {};

TEST_P(SpectralPhysics, CrossCovarianceMagnitudeBounded) {
  // |mu_kj| = sigma^2 |J0| / sqrt(1 + (dw st)^2) <= sigma^2.
  const auto [sep_khz, tau_ms, doppler, spread_us] = GetParam();
  channel::SpectralScenario s;
  s.carrier_hz = {900e6, 900e6 - sep_khz * 1e3};
  s.delay_s = numeric::RMatrix(2, 2, 0.0);
  s.delay_s(0, 1) = s.delay_s(1, 0) = tau_ms * 1e-3;
  s.max_doppler_hz = doppler;
  s.rms_delay_spread_s = spread_us * 1e-6;
  s.gaussian_power = 2.0;
  const CMatrix k = channel::spectral_covariance_matrix(s);
  EXPECT_LE(std::abs(k(0, 1)), 2.0 + 1e-12);
  EXPECT_TRUE(numeric::is_hermitian(k));
  // Closed-form check of the magnitude.
  const double dw = 2.0 * kPi * sep_khz * 1e3;
  const double st = spread_us * 1e-6;
  const double expected =
      2.0 *
      std::abs(special::bessel_j0(2.0 * kPi * doppler * tau_ms * 1e-3)) /
      std::sqrt(1.0 + dw * st * dw * st);
  EXPECT_NEAR(std::abs(k(0, 1)), expected, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Channels, SpectralPhysics,
    testing::Values(SpectralGridCase{0.0, 0.0, 10.0, 0.0},
                    SpectralGridCase{100.0, 0.5, 50.0, 1.0},
                    SpectralGridCase{200.0, 1.0, 50.0, 1.0},
                    SpectralGridCase{400.0, 3.0, 100.0, 2.0},
                    SpectralGridCase{1000.0, 10.0, 200.0, 5.0},
                    SpectralGridCase{50.0, 20.0, 5.0, 0.5}),
    [](const auto& tinfo) {
      return "sep" + std::to_string(static_cast<int>(tinfo.param.separation_khz)) +
             "_tau" + std::to_string(static_cast<int>(tinfo.param.tau_ms * 10));
    });

// ---------------------------------------------------------------------------
// Doppler filter: J0 tracking across the design grid
// ---------------------------------------------------------------------------

struct FilterGridCase {
  std::size_t m;
  double fm;
};

class FilterDesignGrid : public testing::TestWithParam<FilterGridCase> {};

TEST_P(FilterDesignGrid, TheoreticalAutocorrelationTracksJ0) {
  const auto [m, fm] = GetParam();
  const auto design = doppler::young_beaulieu_filter(m, fm);
  // Check over lags covering roughly two J0 oscillations.
  const auto max_lag = static_cast<std::size_t>(
      std::min(double(m) / 4.0, 1.2 / fm));
  const auto rho =
      doppler::theoretical_normalized_autocorrelation(design, max_lag);
  // The J0 approximation degrades with the coarseness of the spectral
  // sampling: km bins cover the Doppler band, so allow O(1/km) error.
  const double tolerance = 0.03 + 1.5 / static_cast<double>(design.km);
  for (std::size_t d = 0; d <= max_lag; ++d) {
    EXPECT_NEAR(rho[d], special::bessel_j0(2.0 * kPi * fm * double(d)),
                tolerance)
        << "M=" << m << " fm=" << fm << " lag=" << d;
  }
  // Eq. (19) variance is positive and far below the input variance for
  // narrowband filters.
  const double sigma_g2 = doppler::post_filter_variance(design, 0.5);
  EXPECT_GT(sigma_g2, 0.0);
  EXPECT_LT(sigma_g2, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, FilterDesignGrid,
    testing::Values(FilterGridCase{512, 0.05}, FilterGridCase{1024, 0.02},
                    FilterGridCase{1024, 0.1}, FilterGridCase{2048, 0.05},
                    FilterGridCase{4096, 0.01}, FilterGridCase{4096, 0.05},
                    FilterGridCase{4096, 0.2}, FilterGridCase{8192, 0.005}),
    [](const auto& tinfo) {
      return "m" + std::to_string(tinfo.param.m) + "_fm" +
             std::to_string(static_cast<int>(tinfo.param.fm * 1000));
    });

// ---------------------------------------------------------------------------
// FFT: large and prime lengths
// ---------------------------------------------------------------------------

class FftLargeSizes : public testing::TestWithParam<std::size_t> {};

TEST_P(FftLargeSizes, RoundTripAtScale) {
  const std::size_t n = GetParam();
  random::Rng rng(n);
  numeric::CVector x(n);
  for (auto& v : x) {
    v = cdouble(rng.gaussian(), rng.gaussian());
  }
  const auto back = fft::idft(fft::dft(x));
  double max_diff = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_diff = std::max(max_diff, std::abs(back[i] - x[i]));
  }
  EXPECT_LT(max_diff, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftLargeSizes,
                         testing::Values(std::size_t{1009},   // prime
                                         std::size_t{4099},   // prime
                                         std::size_t{6144},   // 3 * 2^11
                                         std::size_t{16384},  // 2^14
                                         std::size_t{10000}),
                         [](const auto& tinfo) {
                           return "n" + std::to_string(tinfo.param);
                         });

// ---------------------------------------------------------------------------
// Eigensolvers: degenerate (clustered) spectra
// ---------------------------------------------------------------------------

TEST(EigenDegenerate, ClusteredEigenvaluesStillDecompose) {
  // Spectrum {1, 1, 1, 2, 2}: eigenvectors are not unique, but the
  // decomposition identities must still hold for both methods.
  random::Rng rng(0x0DE);
  const std::size_t n = 5;
  CMatrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      g(i, j) = cdouble(rng.gaussian(), rng.gaussian());
    }
  }
  const auto basis = numeric::eigen_hermitian(numeric::hermitian_part(
      numeric::add(g, numeric::conjugate_transpose(g))));
  numeric::HermitianEigen prescribed;
  prescribed.values = {1.0, 1.0, 1.0, 2.0, 2.0};
  prescribed.vectors = basis.vectors;
  const CMatrix a = numeric::reconstruct(prescribed);

  for (const auto method :
       {numeric::EigenMethod::Jacobi, numeric::EigenMethod::TridiagonalQL}) {
    const auto eig = numeric::eigen_hermitian(a, method);
    EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
    EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
    EXPECT_NEAR(eig.values[4], 2.0, 1e-10);
    EXPECT_LT(numeric::max_abs_diff(numeric::reconstruct(eig), a), 1e-9);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: envelope-correlation theory vs the paper's Eq. (23) scenario
// ---------------------------------------------------------------------------

TEST(EnvelopeTheory, SpatialScenarioEnvelopeCorrelationsPredicted) {
  // The exact 2F1 map must predict the measured envelope correlations of
  // the paper's own spatial configuration.
  const CMatrix k =
      channel::spatial_covariance_matrix(channel::paper_spatial_scenario());
  const auto predicted = core::envelope_correlation_matrix(k);
  const core::EnvelopeGenerator gen(k);
  random::Rng rng(0x0E23);
  const std::size_t n = 150000;
  std::vector<numeric::RVector> env(3, numeric::RVector(n));
  for (std::size_t t = 0; t < n; ++t) {
    const auto r = gen.sample_envelopes(rng);
    for (std::size_t j = 0; j < 3; ++j) {
      env[j][t] = r[j];
    }
  }
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a + 1; b < 3; ++b) {
      const double measured = stats::pearson_correlation(env[a], env[b]);
      EXPECT_NEAR(measured, predicted(a, b), 0.015)
          << "pair " << a << "," << b;
    }
  }
}

// ---------------------------------------------------------------------------
// Generator: dimension sweep end-to-end
// ---------------------------------------------------------------------------

class GeneratorDimensions : public testing::TestWithParam<std::size_t> {};

TEST_P(GeneratorDimensions, TridiagonalCovarianceRealised) {
  const std::size_t n = GetParam();
  CMatrix k = CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = cdouble(0.45, 0.2);
    k(i + 1, i) = cdouble(0.45, -0.2);
  }
  ASSERT_TRUE(core::is_positive_semidefinite(k));
  const core::EnvelopeGenerator gen(k);
  const auto report = core::validate_generator(
      gen, {.samples = 60000, .seed = 0xD13 + n, .parallel = true,
            .chunk_size = 8192, .ks_samples_per_branch = 5000});
  EXPECT_LT(report.covariance_rel_error, 0.03) << "N=" << n;
  EXPECT_GT(report.worst_ks_p_value, 1e-4) << "N=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorDimensions,
                         testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{5}, std::size_t{8},
                                         std::size_t{12}, std::size_t{16},
                                         std::size_t{24}),
                         [](const auto& tinfo) {
                           return "n" + std::to_string(tinfo.param);
                         });

}  // namespace
