// Tests for the channel correlation models — the reproduction of the
// paper's Eq. (22) (spectral) and Eq. (23) (spatial) matrices, plus
// physical limit checks.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/channel/mobility.hpp"
#include "rfade/channel/spatial.hpp"
#include "rfade/channel/spectral.hpp"
#include "rfade/core/psd.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/special/bessel.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

// ---------------------------------------------------------------------------
// Spectral model (paper Sec. 2, Eqs. 3-4; experiment E1)
// ---------------------------------------------------------------------------

TEST(Spectral, ReproducesPaperEq22ToPrintedPrecision) {
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  // The paper prints 4 decimals; allow half a unit in the last place.
  EXPECT_LT(numeric::max_abs_diff(k, channel::paper_eq22_matrix()), 5e-5);
}

TEST(Spectral, Eq22IsPositiveDefinite) {
  // The paper states K in (22) is positive definite.
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  EXPECT_TRUE(core::is_positive_semidefinite(k));
}

TEST(Spectral, MatrixIsValidCovariance) {
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  EXPECT_TRUE(numeric::is_hermitian(k));
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(k(j, j).real(), 1.0, 1e-14);  // sigma^2 = 1
    EXPECT_EQ(k(j, j).imag(), 0.0);
  }
}

TEST(Spectral, CoincidentCarriersAndZeroDelayGiveFullCorrelation) {
  // Delta f = 0 and tau = 0 => mu = sigma^2 exactly (Rxx = sigma^2/2).
  channel::SpectralScenario s;
  s.carrier_hz = {900e6, 900e6};
  s.delay_s = numeric::RMatrix(2, 2, 0.0);
  s.max_doppler_hz = 50.0;
  s.rms_delay_spread_s = 1e-6;
  s.gaussian_power = 2.5;
  const auto c = channel::spectral_cross_covariance(s, 0, 1);
  EXPECT_NEAR(c.rxx, 1.25, 1e-12);
  EXPECT_NEAR(c.rxy, 0.0, 1e-15);
  const CMatrix k = channel::spectral_covariance_matrix(s);
  EXPECT_NEAR(std::abs(k(0, 1) - cdouble(2.5, 0.0)), 0.0, 1e-12);
}

TEST(Spectral, CorrelationDecaysWithFrequencySeparation) {
  // |mu| = sigma^2 J0 / sqrt(1 + (dw st)^2): decreasing in |f_k - f_j|.
  double previous = 1e9;
  for (const double sep_khz : {100.0, 200.0, 400.0, 800.0}) {
    channel::SpectralScenario s;
    s.carrier_hz = {900e6, 900e6 - sep_khz * 1e3};
    s.delay_s = numeric::RMatrix(2, 2, 0.0);
    s.max_doppler_hz = 50.0;
    s.rms_delay_spread_s = 1e-6;
    const CMatrix k = channel::spectral_covariance_matrix(s);
    const double magnitude = std::abs(k(0, 1));
    EXPECT_LT(magnitude, previous);
    previous = magnitude;
  }
}

TEST(Spectral, DopplerDelayProductModulatesViaJ0) {
  // With no frequency separation, mu = sigma^2 J0(2 pi Fm tau).
  channel::SpectralScenario s;
  s.carrier_hz = {900e6, 900e6};
  s.delay_s = numeric::RMatrix(2, 2, 0.0);
  s.delay_s(0, 1) = s.delay_s(1, 0) = 2e-3;
  s.max_doppler_hz = 80.0;
  s.rms_delay_spread_s = 0.0;
  const CMatrix k = channel::spectral_covariance_matrix(s);
  EXPECT_NEAR(k(0, 1).real(),
              special::bessel_j0(2.0 * M_PI * 80.0 * 2e-3), 1e-12);
  EXPECT_NEAR(k(0, 1).imag(), 0.0, 1e-15);
}

TEST(Spectral, HermitianPairSymmetry) {
  const auto s = channel::paper_spectral_scenario();
  const auto c01 = channel::spectral_cross_covariance(s, 0, 1);
  const auto c10 = channel::spectral_cross_covariance(s, 1, 0);
  EXPECT_DOUBLE_EQ(c01.rxx, c10.rxx);
  EXPECT_DOUBLE_EQ(c01.rxy, -c10.rxy);  // sign flips with delta omega
  const cdouble mu01 = core::covariance_entry(c01);
  const cdouble mu10 = core::covariance_entry(c10);
  EXPECT_NEAR(std::abs(mu01 - std::conj(mu10)), 0.0, 1e-15);
}

TEST(Spectral, ValidatesInput) {
  channel::SpectralScenario s;
  s.carrier_hz = {1.0, 2.0};
  s.delay_s = numeric::RMatrix(3, 3, 0.0);  // wrong shape
  EXPECT_THROW((void)channel::spectral_covariance_matrix(s), ContractViolation);

  s.delay_s = numeric::RMatrix(2, 2, 0.0);
  s.delay_s(0, 1) = 1.0;  // asymmetric (s.delay_s(1,0) stays 0)
  EXPECT_THROW((void)channel::spectral_covariance_matrix(s), ContractViolation);

  s.delay_s(1, 0) = 1.0;
  s.gaussian_power = -1.0;
  EXPECT_THROW((void)channel::spectral_covariance_matrix(s), ContractViolation);
}

// ---------------------------------------------------------------------------
// Spatial model (paper Sec. 3, Eqs. 5-7; experiment E2)
// ---------------------------------------------------------------------------

TEST(Spatial, ReproducesPaperEq23ToPrintedPrecision) {
  const CMatrix k =
      channel::spatial_covariance_matrix(channel::paper_spatial_scenario());
  EXPECT_LT(numeric::max_abs_diff(k, channel::paper_eq23_matrix()), 5e-5);
}

TEST(Spatial, Eq23IsRealBecausePhiIsZero) {
  // Phi = 0 kills every sin((2m+1)Phi) term (paper Sec. 6).
  const CMatrix k =
      channel::spatial_covariance_matrix(channel::paper_spatial_scenario());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(k(i, j).imag(), 0.0, 1e-12);
    }
  }
  EXPECT_TRUE(core::is_positive_semidefinite(k));
}

TEST(Spatial, ZeroSeparationGivesUnitNormalisedCorrelation) {
  const auto s = channel::paper_spatial_scenario();
  EXPECT_NEAR(channel::spatial_rxx_normalized(s, 0), 1.0, 1e-12);
  EXPECT_NEAR(channel::spatial_rxy_normalized(s, 0), 0.0, 1e-12);
}

TEST(Spatial, IsotropicScatteringReducesToClarkeJ0) {
  // Delta = pi makes every sinc term vanish: Rxx~ -> J0(z d).
  channel::SpatialScenario s = channel::paper_spatial_scenario();
  s.angle_spread_rad = M_PI;
  for (const int d : {1, 2}) {
    EXPECT_NEAR(channel::spatial_rxx_normalized(s, d),
                special::bessel_j0(2.0 * M_PI * s.spacing_wavelengths * d),
                1e-10);
  }
}

TEST(Spatial, RxyAntisymmetricInSeparation) {
  channel::SpatialScenario s = channel::paper_spatial_scenario();
  s.mean_angle_rad = 0.7;  // nonzero Phi so Rxy is nontrivial
  const double forward = channel::spatial_rxy_normalized(s, 1);
  const double backward = channel::spatial_rxy_normalized(s, -1);
  EXPECT_NE(forward, 0.0);
  EXPECT_NEAR(forward, -backward, 1e-12);
  // Rxx is even in separation.
  EXPECT_NEAR(channel::spatial_rxx_normalized(s, 1),
              channel::spatial_rxx_normalized(s, -1), 1e-12);
}

TEST(Spatial, NonzeroPhiGivesComplexHermitianMatrix) {
  channel::SpatialScenario s = channel::paper_spatial_scenario();
  s.mean_angle_rad = 0.5;
  const CMatrix k = channel::spatial_covariance_matrix(s);
  EXPECT_TRUE(numeric::is_hermitian(k));
  EXPECT_GT(std::abs(k(0, 1).imag()), 1e-3);  // genuinely complex now
}

TEST(Spatial, CorrelationDecaysWithSpacing) {
  double previous = 1.0;
  for (const double spacing : {0.1, 0.5, 1.0, 2.0}) {
    channel::SpatialScenario s = channel::paper_spatial_scenario();
    s.antenna_count = 2;
    s.spacing_wavelengths = spacing;
    const CMatrix k = channel::spatial_covariance_matrix(s);
    const double magnitude = std::abs(k(0, 1));
    EXPECT_LE(magnitude, previous + 1e-9) << "spacing " << spacing;
    previous = magnitude;
  }
}

TEST(Spatial, PowerScalesLinearly) {
  channel::SpatialScenario s = channel::paper_spatial_scenario();
  s.gaussian_power = 4.0;
  const CMatrix k = channel::spatial_covariance_matrix(s);
  const CMatrix k_unit =
      channel::spatial_covariance_matrix(channel::paper_spatial_scenario());
  EXPECT_LT(
      numeric::max_abs_diff(k, numeric::scale(k_unit, cdouble(4.0, 0.0))),
      1e-10);
}

TEST(Spatial, ValidatesInput) {
  channel::SpatialScenario s = channel::paper_spatial_scenario();
  s.antenna_count = 0;
  EXPECT_THROW((void)channel::spatial_covariance_matrix(s), ContractViolation);
  s = channel::paper_spatial_scenario();
  s.spacing_wavelengths = -1.0;
  EXPECT_THROW((void)channel::spatial_covariance_matrix(s), ContractViolation);
  s = channel::paper_spatial_scenario();
  s.mean_angle_rad = 4.0;  // > pi
  EXPECT_THROW((void)channel::spatial_covariance_matrix(s), ContractViolation);
}

TEST(CovarianceEntry, Eq13SignConventions) {
  // mu = (Rxx + Ryy) - i (Rxy - Ryx).
  core::CrossCovariance c;
  c.rxx = 0.3;
  c.ryy = 0.2;
  c.rxy = -0.1;
  c.ryx = 0.05;
  const cdouble mu = core::covariance_entry(c);
  EXPECT_DOUBLE_EQ(mu.real(), 0.5);
  EXPECT_DOUBLE_EQ(mu.imag(), 0.15);
}

TEST(CovarianceBuilder, BuildsAndValidates) {
  core::CovarianceBuilder builder(2);
  builder.set_gaussian_power(0, 1.0).set_gaussian_power(1, 2.0);
  builder.set_cross_entry(0, 1, cdouble(0.5, 0.25));
  const CMatrix k = builder.build();
  EXPECT_EQ(k(1, 0), cdouble(0.5, -0.25));
  EXPECT_EQ(k(1, 1), cdouble(2.0, 0.0));
}

TEST(CovarianceBuilder, EnvelopePowerConversion) {
  core::CovarianceBuilder builder(1);
  builder.set_envelope_power(0, 0.2146018366);  // ~ (1 - pi/4) * 1
  const CMatrix k = builder.build();
  EXPECT_NEAR(k(0, 0).real(), 1.0, 1e-8);  // Eq. (11) round trip
}

TEST(CovarianceBuilder, RejectsMisuse) {
  core::CovarianceBuilder builder(2);
  EXPECT_THROW((void)builder.set_gaussian_power(2, 1.0), ContractViolation);
  EXPECT_THROW((void)builder.set_gaussian_power(0, -1.0), ContractViolation);
  EXPECT_THROW((void)builder.set_cross_entry(1, 1, cdouble(0.1, 0)),
               ContractViolation);
  // Unset diagonal power must fail at build().
  builder.set_gaussian_power(0, 1.0);
  EXPECT_THROW((void)builder.build(), ContractViolation);
}

TEST(Mobility, PaperSection6Kinematics) {
  // Sec. 6: carrier 900 MHz, v = 60 km/h => Fm ~ 50 Hz, fm = 0.05 at 1 kHz.
  const double fm_hz = channel::max_doppler_hz_kmh(900e6, 60.0);
  EXPECT_NEAR(fm_hz, 50.0, 0.1);
  EXPECT_NEAR(channel::normalized_doppler(fm_hz, 1000.0), 0.05, 1e-4);
  EXPECT_NEAR(channel::wavelength_m(900e6), 0.333, 1e-3);
}

TEST(Mobility, CoherenceSummaries) {
  // Coherence time shrinks with Doppler; bandwidth shrinks with spread.
  EXPECT_GT(channel::coherence_time_s(10.0), channel::coherence_time_s(100.0));
  EXPECT_NEAR(channel::coherence_time_s(50.0), 9.0 / (16.0 * M_PI * 50.0),
              1e-12);
  EXPECT_NEAR(channel::coherence_bandwidth_hz(1e-6), 200e3, 1e-6);
  EXPECT_THROW((void)channel::coherence_time_s(0.0), ContractViolation);
  EXPECT_THROW((void)channel::max_doppler_hz(0.0, 10.0), ContractViolation);
  EXPECT_THROW((void)channel::normalized_doppler(50.0, 0.0),
               ContractViolation);
}

}  // namespace
