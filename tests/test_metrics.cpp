// Link-level metrics layer: the Wang & Abdi mutual-information closed
// forms, the shard-mergeable streaming accumulators (K-shard merge ==
// single pass bit-for-bit, boundary state stitched across block splits
// and association orders), the analytic health gates on real stream
// output (Rice LCR/AFD, J0 autocorrelation, MI statistics on all three
// stream backends), and the MetricsTap wiring into core::FadingStream /
// service::Session with telemetry gauge publication.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "rfade/core/fading_stream.hpp"
#include "rfade/metrics/accumulators.hpp"
#include "rfade/metrics/health.hpp"
#include "rfade/metrics/tap.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/service/channel_service.hpp"
#include "rfade/special/bessel.hpp"
#include "rfade/stats/fading_metrics.hpp"
#include "rfade/stats/mutual_information.hpp"
#include "rfade/support/error.hpp"
#include "rfade/telemetry/telemetry.hpp"

using namespace rfade;
using metrics::AcfAccumulator;
using metrics::AnalyticReference;
using metrics::LevelCrossingAccumulator;
using metrics::MetricsTap;
using metrics::MetricsTapConfig;
using metrics::MutualInformationAccumulator;
using numeric::cdouble;
using numeric::CMatrix;

namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;

CMatrix random_block(std::mt19937_64& gen, std::size_t rows,
                     std::size_t cols) {
  std::normal_distribution<double> normal(0.0, 0.70710678118654752);
  CMatrix block(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < cols; ++j) {
      block(r, j) = cdouble(normal(gen), normal(gen));
    }
  }
  return block;
}

CMatrix rows_of(const CMatrix& all, std::size_t begin, std::size_t end) {
  CMatrix out(end - begin, all.cols());
  for (std::size_t r = begin; r < end; ++r) {
    for (std::size_t j = 0; j < all.cols(); ++j) {
      out(r - begin, j) = all(r, j);
    }
  }
  return out;
}

}  // namespace

// --- Wang & Abdi closed forms ------------------------------------------------

TEST(MutualInformationReference, ExponentialIntegralKnownValues) {
  EXPECT_NEAR(stats::expint_e1(0.1), 1.8229239584, 1e-9);
  EXPECT_NEAR(stats::expint_e1(1.0), 0.2193839344, 1e-9);
  EXPECT_NEAR(stats::expint_e1(5.0), 0.0011482955, 1e-9);
  EXPECT_THROW((void)stats::expint_e1(0.0), ValueError);
  EXPECT_THROW((void)stats::expint_e1(-1.0), ValueError);
}

TEST(MutualInformationReference, MeanMatchesQuadratureAndMonteCarlo) {
  // Closed form log2(e) e^{1/s} E1(1/s) vs an independent Monte Carlo
  // draw of log2(1 + s X), X ~ Exp(1).
  const double snr = 10.0;
  const double mean = stats::mi_mean(snr);
  std::mt19937_64 gen(0xA1);
  std::exponential_distribution<double> exponential(1.0);
  double sum = 0.0;
  const int draws = 400000;
  for (int i = 0; i < draws; ++i) {
    sum += std::log2(1.0 + snr * exponential(gen));
  }
  EXPECT_NEAR(mean, sum / draws, 0.01);
  EXPECT_GT(stats::mi_variance(snr), 0.0);
}

TEST(MutualInformationReference, FirstLaguerreCoefficientClosedForm) {
  // a_1 = -E[sX/(1+sX)] = -(1 - e^{1/s} E1(1/s) / s).
  const double snr = 10.0;
  const auto a = stats::mi_laguerre_coefficients(snr, 4);
  const double closed =
      -(1.0 - std::exp(1.0 / snr) * stats::expint_e1(1.0 / snr) / snr);
  EXPECT_NEAR(a[0], closed, 1e-8);
}

TEST(MutualInformationReference, AutocovarianceLimits) {
  const double snr = 10.0;
  const double variance = stats::mi_variance(snr);
  EXPECT_NEAR(stats::mi_autocovariance(snr, 1.0), variance, 1e-9);
  EXPECT_NEAR(stats::mi_autocovariance(snr, -1.0), variance, 1e-9);
  EXPECT_EQ(stats::mi_autocovariance(snr, 0.0), 0.0);
  // The Laguerre series approaches the variance from below as rho -> 1.
  const double near_one = stats::mi_autocovariance(snr, 0.999);
  EXPECT_LT(near_one, variance);
  EXPECT_GT(near_one, 0.9 * variance);
  // Monotone in |field correlation|.
  EXPECT_GT(stats::mi_autocovariance(snr, 0.8),
            stats::mi_autocovariance(snr, 0.5));
}

// --- accumulator vs the offline estimator ------------------------------------

TEST(LevelCrossingAccumulatorTest, MatchesOfflineEstimatorExactly) {
  std::mt19937_64 gen(0xBEEF);
  const std::size_t n = 4096;
  const CMatrix trace = random_block(gen, n, 1);
  numeric::RVector envelope(n);
  for (std::size_t i = 0; i < n; ++i) envelope[i] = std::abs(trace(i, 0));

  const double rho = 0.7;
  LevelCrossingAccumulator accumulator(1, {rho}, {1.0});
  accumulator.accumulate(trace);
  const auto stats_streaming = accumulator.finalize(0, 0);

  const auto offline = stats::measure_fading_metrics(envelope, rho, 1.0);
  EXPECT_EQ(stats_streaming.up_crossings, offline.crossings);
  EXPECT_DOUBLE_EQ(stats_streaming.lcr_per_sample *
                       static_cast<double>(n),
                   offline.level_crossing_rate *
                       static_cast<double>(n));
  EXPECT_DOUBLE_EQ(stats_streaming.afd_samples,
                   offline.average_fade_duration);
}

TEST(AcfAccumulatorTest, MatchesBruteForceSums) {
  std::mt19937_64 gen(0xACF);
  const std::size_t n = 600;
  const CMatrix trace = random_block(gen, n, 1);
  AcfAccumulator accumulator(1, {5, 17});
  accumulator.accumulate(trace);
  for (const std::size_t lag : {std::size_t{5}, std::size_t{17}}) {
    cdouble brute(0.0, 0.0);
    for (std::size_t t = lag; t < n; ++t) {
      brute += trace(t, 0) * std::conj(trace(t - lag, 0));
    }
    const cdouble streamed = accumulator.correlation_sum(0, lag);
    EXPECT_NEAR(streamed.real(), brute.real(), 1e-9);
    EXPECT_NEAR(streamed.imag(), brute.imag(), 1e-9);
  }
}

// --- bit-exact K-shard merge --------------------------------------------------

TEST(MetricsAccumulators, ShardMergeEqualsSinglePassBitForBit) {
  // Random sample-level splits (not just block boundaries) merged in
  // random association orders must reproduce the single-pass state
  // bit-for-bit: integer counts equal, ExactSum read-outs bit-identical.
  std::mt19937_64 gen(0x5EED);
  const std::size_t dimension = 2;
  const std::vector<double> thresholds{0.3, 1.0};
  const std::vector<double> rms{1.0, 1.0};
  const std::vector<std::size_t> lags{1, 3, 7, 20};
  const std::vector<double> omega{1.0, 1.0};
  const double snr = 10.0;

  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 1 + gen() % 500;
    const CMatrix all = random_block(gen, n, dimension);

    LevelCrossingAccumulator lcr_single(dimension, thresholds, rms);
    AcfAccumulator acf_single(dimension, lags);
    MutualInformationAccumulator mi_single(dimension, snr, omega, lags);
    lcr_single.accumulate(all);
    acf_single.accumulate(all);
    mi_single.accumulate(all);

    // Random adjacent partition into up to 5 shards.
    std::vector<std::size_t> cuts{0, n};
    for (int i = 0; i < 3; ++i) cuts.push_back(gen() % (n + 1));
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    struct Shard {
      LevelCrossingAccumulator lcr;
      AcfAccumulator acf;
      MutualInformationAccumulator mi;
    };
    std::vector<Shard> shards;
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      Shard shard{LevelCrossingAccumulator(dimension, thresholds, rms),
                  AcfAccumulator(dimension, lags),
                  MutualInformationAccumulator(dimension, snr, omega, lags)};
      const CMatrix segment = rows_of(all, cuts[i], cuts[i + 1]);
      shard.lcr.accumulate(segment);
      shard.acf.accumulate(segment);
      shard.mi.accumulate(segment);
      shards.push_back(std::move(shard));
    }

    // Merge adjacent pairs in a random association order.
    while (shards.size() > 1) {
      const std::size_t i = gen() % (shards.size() - 1);
      shards[i].lcr.merge(shards[i + 1].lcr);
      shards[i].acf.merge(shards[i + 1].acf);
      shards[i].mi.merge(shards[i + 1].mi);
      shards.erase(shards.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    }
    const Shard& merged = shards.front();

    for (std::size_t j = 0; j < dimension; ++j) {
      for (std::size_t t = 0; t < thresholds.size(); ++t) {
        const auto a = lcr_single.finalize(j, t);
        const auto b = merged.lcr.finalize(j, t);
        EXPECT_EQ(a.samples, b.samples);
        EXPECT_EQ(a.samples_below, b.samples_below);
        EXPECT_EQ(a.up_crossings, b.up_crossings);
        EXPECT_EQ(a.longest_fade, b.longest_fade);
      }
      for (const std::size_t lag : acf_single.lags()) {
        const cdouble a = acf_single.correlation_sum(j, lag);
        const cdouble b = merged.acf.correlation_sum(j, lag);
        // Bit-for-bit: exact double equality, not approximate.
        EXPECT_EQ(a.real(), b.real());
        EXPECT_EQ(a.imag(), b.imag());
      }
      EXPECT_EQ(mi_single.sum(j), merged.mi.sum(j));
      EXPECT_EQ(mi_single.sum_squares(j), merged.mi.sum_squares(j));
      for (const std::size_t lag : lags) {
        EXPECT_EQ(mi_single.lag_product_sum(j, lag),
                  merged.mi.lag_product_sum(j, lag));
      }
    }
  }
}

TEST(MetricsAccumulators, MergeRejectsMismatchedConfigurations) {
  LevelCrossingAccumulator a(1, {0.5}, {1.0});
  LevelCrossingAccumulator b(1, {0.7}, {1.0});
  EXPECT_THROW(a.merge(b), DimensionError);
  AcfAccumulator c(1, {1, 2});
  AcfAccumulator d(2, {1, 2});
  EXPECT_THROW(c.merge(d), DimensionError);
  MutualInformationAccumulator e(1, 10.0, {1.0}, {1});
  MutualInformationAccumulator f(1, 20.0, {1.0}, {1});
  EXPECT_THROW(e.merge(f), DimensionError);
}

TEST(MetricsAccumulators, BlockShardedStreamMergesExactly) {
  // The production sharding shape: adjacent block ranges of one keyed
  // stream realisation folded by separate accumulators, merged at the
  // join — equals the single continuous walk bit-for-bit.
  core::FadingStreamOptions options;
  options.backend = doppler::StreamBackend::OverlapSaveFir;
  options.idft_size = 256;
  options.normalized_doppler = 0.05;
  options.seed = 0x11;
  core::FadingStream stream(CMatrix::identity(2), options);

  const std::vector<std::size_t> lags{1, 4, 16};
  AcfAccumulator single(2, lags);
  AcfAccumulator shard_a(2, lags);
  AcfAccumulator shard_b(2, lags);
  for (std::uint64_t b = 0; b < 12; ++b) {
    const CMatrix block = stream.generate_block(options.seed, b);
    single.accumulate(block);
    (b < 5 ? shard_a : shard_b).accumulate(block);
  }
  shard_a.merge(shard_b);
  for (std::size_t j = 0; j < 2; ++j) {
    for (const std::size_t lag : single.lags()) {
      const cdouble a = single.correlation_sum(j, lag);
      const cdouble b = shard_a.correlation_sum(j, lag);
      EXPECT_EQ(a.real(), b.real());
      EXPECT_EQ(a.imag(), b.imag());
    }
  }
}

// --- analytic gates on real stream output -------------------------------------

TEST(MetricsAnalyticGates, RiceLcrAfdOnAllBackends) {
  const double fm = 0.05;
  const std::vector<double> thresholds{0.5, 1.0};
  for (const auto backend : {doppler::StreamBackend::IndependentBlock,
                             doppler::StreamBackend::WindowedOverlapAdd,
                             doppler::StreamBackend::OverlapSaveFir}) {
    core::FadingStreamOptions options;
    options.backend = backend;
    options.idft_size = 512;
    options.normalized_doppler = fm;
    options.seed = 0x1C4;
    core::FadingStream stream(CMatrix::identity(2), options);

    LevelCrossingAccumulator accumulator(2, thresholds, {1.0, 1.0});
    for (int b = 0; b < 400; ++b) {
      accumulator.accumulate(stream.next_block());
    }
    for (std::size_t j = 0; j < 2; ++j) {
      for (std::size_t t = 0; t < thresholds.size(); ++t) {
        const double rho = thresholds[t];
        const auto measured = accumulator.finalize(j, t);
        const double lcr_expected = stats::theoretical_lcr(rho, fm);
        const double afd_expected = stats::theoretical_afd(rho, fm);
        EXPECT_NEAR(measured.lcr_per_sample, lcr_expected,
                    0.10 * lcr_expected)
            << doppler::stream_backend_name(backend) << " branch " << j
            << " rho " << rho;
        EXPECT_NEAR(measured.afd_samples, afd_expected, 0.10 * afd_expected)
            << doppler::stream_backend_name(backend) << " branch " << j
            << " rho " << rho;
      }
    }
  }
}

TEST(MetricsAnalyticGates, StreamingAcfMatchesJ0OnAllBackends) {
  const double fm = 0.05;
  const std::vector<std::size_t> lags{1, 2, 4, 8, 16, 32};
  for (const auto backend : {doppler::StreamBackend::IndependentBlock,
                             doppler::StreamBackend::WindowedOverlapAdd,
                             doppler::StreamBackend::OverlapSaveFir}) {
    core::FadingStreamOptions options;
    options.backend = backend;
    options.idft_size = 512;
    options.normalized_doppler = fm;
    options.seed = 0xACF0;
    core::FadingStream stream(CMatrix::identity(1), options);

    AcfAccumulator accumulator(1, lags);
    for (int b = 0; b < 600; ++b) {
      accumulator.accumulate(stream.next_block());
    }
    for (const std::size_t lag : lags) {
      const double expected =
          special::bessel_j0(2.0 * kPi * fm * static_cast<double>(lag));
      const cdouble measured = accumulator.autocorrelation(0, lag);
      // Same tolerance the offline seam tests use (0.1); the
      // independent-block backend dilutes cross-seam pairs but stays
      // within it at lags << M.
      EXPECT_NEAR(measured.real(), expected, 0.1)
          << doppler::stream_backend_name(backend) << " lag " << lag;
      EXPECT_NEAR(measured.imag(), 0.0, 0.1)
          << doppler::stream_backend_name(backend) << " lag " << lag;
    }
  }
}

TEST(MetricsAnalyticGates, MutualInformationMatchesWangAbdiClosedForms) {
  const double fm = 0.05;
  const double snr = 10.0;
  const std::vector<std::size_t> lags{2, 4, 8};
  core::FadingStreamOptions options;
  options.backend = doppler::StreamBackend::OverlapSaveFir;
  options.idft_size = 512;
  options.normalized_doppler = fm;
  options.seed = 0x31;
  core::FadingStream stream(CMatrix::identity(2), options);

  MutualInformationAccumulator accumulator(2, snr, {1.0, 1.0}, lags);
  for (int b = 0; b < 600; ++b) {
    accumulator.accumulate(stream.next_block());
  }
  const double mean_expected = stats::mi_mean(snr);
  const double variance_expected = stats::mi_variance(snr);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(accumulator.mean(j), mean_expected, 0.03 * mean_expected);
    EXPECT_NEAR(accumulator.variance(j), variance_expected,
                0.10 * variance_expected);
    for (const std::size_t lag : lags) {
      const double field =
          special::bessel_j0(2.0 * kPi * fm * static_cast<double>(lag));
      const double expected = stats::mi_autocovariance(snr, field);
      EXPECT_NEAR(accumulator.autocovariance(j, lag), expected,
                  0.15 * variance_expected)
          << "branch " << j << " lag " << lag;
    }
  }
}

// --- MetricsTap ---------------------------------------------------------------

namespace {

AnalyticReference unit_rayleigh_reference(std::size_t dimension, double fm,
                                          double snr) {
  AnalyticReference reference;
  reference.normalized_doppler = fm;
  reference.branch_power.assign(dimension, 1.0);
  reference.rayleigh = true;
  reference.snr_linear = snr;
  return reference;
}

}  // namespace

TEST(MetricsTapTest, DisabledTapObservesNothing) {
  MetricsTapConfig config;
  config.enabled = false;
  config.publish_every_blocks = 0;
  MetricsTap tap(unit_rayleigh_reference(1, 0.05, 10.0), config);
  std::mt19937_64 gen(1);
  tap.observe(random_block(gen, 64, 1));
  EXPECT_EQ(tap.samples_observed(), 0u);
  EXPECT_EQ(tap.blocks_observed(), 0u);
  tap.set_enabled(true);
  tap.observe(random_block(gen, 64, 1));
  EXPECT_EQ(tap.samples_observed(), 64u);
  EXPECT_EQ(tap.blocks_observed(), 1u);
}

TEST(MetricsTapTest, RejectsEmptyConfiguration) {
  MetricsTapConfig config;
  config.thresholds.clear();
  config.lags.clear();
  config.snr_linear = 0.0;
  EXPECT_THROW(MetricsTap(unit_rayleigh_reference(1, 0.05, 10.0), config),
               ValueError);
}

TEST(MetricsTapTest, AttachesToFadingStreamAndGatesHealthy) {
  core::FadingStreamOptions options;
  options.backend = doppler::StreamBackend::OverlapSaveFir;
  options.idft_size = 512;
  options.normalized_doppler = 0.05;
  options.seed = 0x7A9;
  core::FadingStream stream(CMatrix::identity(2), options);

  telemetry::Registry registry;
  MetricsTapConfig config;
  config.thresholds = {0.5, 1.0};
  config.lags = {1, 2, 4, 8};
  config.snr_linear = 10.0;
  config.publish_every_blocks = 0;
  config.registry = &registry;
  auto tap = std::make_shared<MetricsTap>(
      unit_rayleigh_reference(2, options.normalized_doppler, 10.0), config);
  stream.set_metrics_tap(tap);

  for (int b = 0; b < 400; ++b) {
    (void)stream.next_block();
  }
  EXPECT_EQ(tap->blocks_observed(), 400u);
  EXPECT_EQ(tap->samples_observed(), 400u * stream.block_size());

  const auto reports = tap->health();
  ASSERT_FALSE(reports.empty());
  for (const auto& report : reports) {
    EXPECT_TRUE(report.ok) << report.metric << " branch " << report.branch
                           << " parameter " << report.parameter << ": measured "
                           << report.measured << " expected " << report.expected
                           << " drift " << report.drift;
  }
  EXPECT_TRUE(tap->healthy());

  if (telemetry::kCompiledIn) {
    tap->publish();
    const std::string text = telemetry::prometheus_text(registry);
    EXPECT_NE(text.find("rfade_metrics_lcr_per_sample"), std::string::npos);
    EXPECT_NE(text.find("rfade_metrics_acf_re"), std::string::npos);
    EXPECT_NE(text.find("rfade_metrics_mi_mean"), std::string::npos);
    EXPECT_NE(text.find("rfade_metrics_drift"), std::string::npos);
    EXPECT_NE(text.find("rfade_metrics_healthy"), std::string::npos);
    const std::string json = telemetry::json_snapshot(registry);
    EXPECT_NE(json.find("rfade_metrics_mi_variance"), std::string::npos);
  }
}

TEST(MetricsTapTest, ShardTapsMergeBitExactly) {
  core::FadingStreamOptions options;
  options.backend = doppler::StreamBackend::OverlapSaveFir;
  options.idft_size = 256;
  options.normalized_doppler = 0.05;
  options.seed = 0xD1;
  core::FadingStream stream(CMatrix::identity(1), options);

  MetricsTapConfig config;
  config.publish_every_blocks = 0;
  const AnalyticReference reference = unit_rayleigh_reference(1, 0.05, 10.0);
  MetricsTap single(reference, config);
  MetricsTap shard_a(reference, config);
  MetricsTap shard_b(reference, config);
  for (std::uint64_t b = 0; b < 10; ++b) {
    const CMatrix block = stream.generate_block(options.seed, b);
    single.observe(block);
    (b < 4 ? shard_a : shard_b).observe(block);
  }
  shard_a.merge(shard_b);
  EXPECT_EQ(single.samples_observed(), shard_a.samples_observed());
  const auto* acf_single = single.autocorrelation();
  const auto* acf_merged = shard_a.autocorrelation();
  ASSERT_NE(acf_single, nullptr);
  ASSERT_NE(acf_merged, nullptr);
  for (const std::size_t lag : acf_single->lags()) {
    const cdouble a = acf_single->correlation_sum(0, lag);
    const cdouble b = acf_merged->correlation_sum(0, lag);
    EXPECT_EQ(a.real(), b.real());
    EXPECT_EQ(a.imag(), b.imag());
  }
  const auto* lcr_single = single.level_crossings();
  const auto* lcr_merged = shard_a.level_crossings();
  for (std::size_t t = 0; t < lcr_single->thresholds().size(); ++t) {
    EXPECT_EQ(lcr_single->finalize(0, t).up_crossings,
              lcr_merged->finalize(0, t).up_crossings);
    EXPECT_EQ(lcr_single->finalize(0, t).samples_below,
              lcr_merged->finalize(0, t).samples_below);
  }
  EXPECT_EQ(single.mutual_information()->sum(0),
            shard_a.mutual_information()->sum(0));
}

// --- service-layer wiring -----------------------------------------------------

TEST(SessionMetrics, StreamSessionGatesHealthy) {
  service::ChannelService service;
  const service::ChannelSpec spec =
      service::ChannelSpec::Builder()
          .rayleigh(CMatrix::identity(2))
          .backend(doppler::StreamBackend::OverlapSaveFir)
          .idft_size(512)
          .doppler(0.05)
          .build();
  service::Session session = service.open_session(spec, 0xBEE);
  MetricsTapConfig config;
  config.publish_every_blocks = 0;
  auto tap = session.enable_metrics(config);
  ASSERT_NE(tap, nullptr);
  EXPECT_EQ(session.metrics_tap(), tap);
  // The reference was derived from the compiled spec.
  EXPECT_DOUBLE_EQ(tap->reference().normalized_doppler, 0.05);
  EXPECT_TRUE(tap->reference().rayleigh);
  ASSERT_EQ(tap->reference().branch_power.size(), 2u);

  for (int b = 0; b < 400; ++b) {
    (void)session.next_block();
  }
  EXPECT_EQ(tap->blocks_observed(), 400u);
  EXPECT_TRUE(tap->healthy());
}

TEST(SessionMetrics, InstantModeRejectsMetrics) {
  service::ChannelService service;
  const service::ChannelSpec spec = service::ChannelSpec::Builder()
                                        .rayleigh(CMatrix::identity(2))
                                        .instant()
                                        .build();
  service::Session session = service.open_session(spec, 1);
  EXPECT_THROW((void)session.enable_metrics(MetricsTapConfig{}),
               UnsupportedOperationError);
}

TEST(SessionMetrics, KeyedPathsAreNeverObserved) {
  service::ChannelService service;
  const service::ChannelSpec spec =
      service::ChannelSpec::Builder()
          .rayleigh(CMatrix::identity(1))
          .backend(doppler::StreamBackend::IndependentBlock)
          .idft_size(256)
          .doppler(0.05)
          .build();
  service::Session session = service.open_session(spec, 2);
  auto tap = session.enable_metrics(MetricsTapConfig{});
  (void)session.generate_block(0);
  (void)session.generate_envelope_block(1);
  EXPECT_EQ(tap->blocks_observed(), 0u);
  (void)session.next_block();
  EXPECT_EQ(tap->blocks_observed(), 1u);
}
