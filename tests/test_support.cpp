// Tests for the support module: contracts, thread pool, deterministic
// parallel-for, CSV/table emission, CLI parsing, timers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <numeric>

#include "rfade/support/cli.hpp"
#include "rfade/support/contracts.hpp"
#include "rfade/support/csv.hpp"
#include "rfade/support/parallel.hpp"
#include "rfade/support/table.hpp"
#include "rfade/support/thread_pool.hpp"
#include "rfade/support/timer.hpp"

namespace {

using namespace rfade;
using namespace rfade::support;

TEST(Contracts, ExpectsThrowsWithContext) {
  try {
    RFADE_EXPECTS(1 == 2, "one is not two");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Contracts, EnsuresThrows) {
  EXPECT_THROW(RFADE_ENSURES(false, "post"), ContractViolation);
  EXPECT_NO_THROW(RFADE_ENSURES(true, "post"));
}

TEST(ErrorHierarchy, AllDeriveFromError) {
  EXPECT_THROW(throw DimensionError("d"), Error);
  EXPECT_THROW(throw ValueError("v"), Error);
  EXPECT_THROW(throw ConvergenceError("c"), Error);
  EXPECT_THROW(throw NotPositiveDefiniteError("n"), Error);
  EXPECT_THROW(throw ContractViolation("cv"), Error);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw ValueError("boom"); });
  EXPECT_THROW(f.get(), ValueError);
}

TEST(ThreadPool, GlobalPoolIsShared) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_chunked(
      1000,
      [&hits](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          ++hits[i];
        }
      },
      {.chunk_size = 64, .serial = false});
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, ChunkBoundariesIndependentOfSerialFlag) {
  // Chunk decomposition must be a pure function of (n, chunk_size).
  auto collect = [](bool serial) {
    std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> chunks;
    std::mutex m;
    parallel_for_chunked(
        1003,
        [&](std::size_t begin, std::size_t end, std::size_t index) {
          const std::lock_guard<std::mutex> lock(m);
          chunks.emplace_back(begin, end, index);
        },
        {.chunk_size = 100, .serial = serial});
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  EXPECT_EQ(collect(true), collect(false));
}

TEST(ParallelFor, ChunkCountMatches) {
  EXPECT_EQ(chunk_count(0, {.chunk_size = 10, .serial = false}), 0u);
  EXPECT_EQ(chunk_count(10, {.chunk_size = 10, .serial = false}), 1u);
  EXPECT_EQ(chunk_count(11, {.chunk_size = 10, .serial = false}), 2u);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for_chunked(
          100,
          [](std::size_t begin, std::size_t, std::size_t) {
            if (begin == 32) {
              throw ValueError("chunk failure");
            }
          },
          {.chunk_size = 16, .serial = false}),
      ValueError);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for_chunked(
      0, [&called](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Csv, WritesRowsAndFormats) {
  const std::string path = testing::TempDir() + "rfade_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a", "b"});
    csv.write_numeric_row({1.5, -2.25});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "1.5,-2.25");
  std::remove(path.c_str());
}

TEST(Csv, FormatsComplex) {
  EXPECT_EQ(CsvWriter::format(std::complex<double>(1.5, -0.5)), "1.5-0.5i");
  EXPECT_EQ(CsvWriter::format(std::complex<double>(0.0, 2.0)), "0+2i");
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), Error);
}

TEST(Table, AlignsColumns) {
  TablePrinter table("demo");
  table.set_header({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "2.5"});
  const std::string rendered = table.str();
  EXPECT_NE(rendered.find("== demo =="), std::string::npos);
  EXPECT_NE(rendered.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(rendered.find("---"), std::string::npos);
}

TEST(Table, NumberFormatters) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(scientific(12345.0, 2), "1.23e+04");
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--samples", "100", "--fm=0.05", "--verbose"};
  ArgParser args(5, argv);
  EXPECT_EQ(args.get_size("samples", 0), 100u);
  EXPECT_DOUBLE_EQ(args.get_double("fm", 0.0), 0.05);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("absent"));
  EXPECT_EQ(args.get("absent", "fallback"), "fallback");
}

TEST(Cli, RejectsPositionalAndMalformed) {
  const char* argv_bad[] = {"prog", "positional"};
  EXPECT_THROW(ArgParser(2, argv_bad), Error);

  const char* argv_num[] = {"prog", "--x", "notanumber"};
  const ArgParser args(3, argv_num);
  EXPECT_THROW((void)args.get_double("x", 0.0), ValueError);
  EXPECT_THROW((void)args.get_size("x", 0), ValueError);
}

TEST(Cli, RejectsNegativeSize) {
  const char* argv[] = {"prog", "--n", "-5"};
  const ArgParser args(3, argv);
  EXPECT_THROW((void)args.get_size("n", 0), ValueError);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  const double t0 = timer.seconds();
  EXPECT_GE(t0, 0.0);
  // Monotone non-decreasing.
  EXPECT_GE(timer.seconds(), t0);
  EXPECT_GE(timer.milliseconds(), 0.0);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);
}

}  // namespace
