// Tests for the complex Cholesky factorization and triangular solves.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/numeric/cholesky.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;
using numeric::CVector;

/// Random Hermitian positive-definite matrix A = G G^H + n I.
CMatrix random_spd(std::size_t n, std::uint64_t seed) {
  random::Rng rng(seed);
  CMatrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      g(i, j) = cdouble(rng.gaussian(), rng.gaussian());
    }
  }
  CMatrix a = numeric::gram(g);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) += cdouble(static_cast<double>(n), 0.0);
  }
  return a;
}

TEST(Cholesky, IdentityFactorsToIdentity) {
  const CMatrix id = CMatrix::identity(4);
  const CMatrix l = numeric::cholesky(id);
  EXPECT_LT(numeric::max_abs_diff(l, id), 1e-14);
}

TEST(Cholesky, KnownRealMatrix) {
  // [[4, 2], [2, 5]] = L L^T with L = [[2, 0], [1, 2]].
  const CMatrix a = CMatrix::from_rows(
      {{cdouble(4, 0), cdouble(2, 0)}, {cdouble(2, 0), cdouble(5, 0)}});
  const CMatrix l = numeric::cholesky(a);
  EXPECT_NEAR(l(0, 0).real(), 2.0, 1e-14);
  EXPECT_NEAR(l(1, 0).real(), 1.0, 1e-14);
  EXPECT_NEAR(l(1, 1).real(), 2.0, 1e-14);
  EXPECT_NEAR(std::abs(l(0, 1)), 0.0, 1e-14);
}

TEST(Cholesky, ComplexFactorReconstructs) {
  const CMatrix a = CMatrix::from_rows(
      {{cdouble(2, 0), cdouble(0.5, 0.5)}, {cdouble(0.5, -0.5), cdouble(2, 0)}});
  const CMatrix l = numeric::cholesky(a);
  EXPECT_LT(numeric::max_abs_diff(numeric::gram(l), a), 1e-14);
  // Strictly lower triangular: upper part must be zero.
  EXPECT_EQ(l(0, 1), cdouble{});
  // Real positive diagonal.
  EXPECT_GT(l(0, 0).real(), 0.0);
  EXPECT_EQ(l(0, 0).imag(), 0.0);
}

struct CholeskyCase {
  std::size_t n;
  std::uint64_t seed;
};

class CholeskyProperty : public testing::TestWithParam<CholeskyCase> {};

TEST_P(CholeskyProperty, ReconstructsRandomSpd) {
  const auto [n, seed] = GetParam();
  const CMatrix a = random_spd(n, seed);
  const CMatrix l = numeric::cholesky(a);
  const double scale = numeric::max_abs(a);
  EXPECT_LT(numeric::max_abs_diff(numeric::gram(l), a), 1e-11 * scale);
  EXPECT_TRUE(numeric::is_positive_definite(a));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CholeskyProperty,
    testing::Values(CholeskyCase{1, 10}, CholeskyCase{2, 11},
                    CholeskyCase{3, 12}, CholeskyCase{5, 13},
                    CholeskyCase{8, 14}, CholeskyCase{16, 15},
                    CholeskyCase{32, 16}, CholeskyCase{64, 17}),
    [](const auto& tinfo) { return "n" + std::to_string(tinfo.param.n); });

TEST(Cholesky, ThrowsOnIndefinite) {
  const CMatrix a = CMatrix::from_rows(
      {{cdouble(1, 0), cdouble(2, 0)}, {cdouble(2, 0), cdouble(1, 0)}});
  EXPECT_THROW((void)numeric::cholesky(a), NotPositiveDefiniteError);
  EXPECT_FALSE(numeric::is_positive_definite(a));
}

TEST(Cholesky, ThrowsOnSemiDefinite) {
  // Rank-1 matrix: positive semi-definite but not definite.
  const CMatrix a = CMatrix::from_rows(
      {{cdouble(1, 0), cdouble(1, 0)}, {cdouble(1, 0), cdouble(1, 0)}});
  EXPECT_THROW((void)numeric::cholesky(a), NotPositiveDefiniteError);
}

TEST(Cholesky, ThrowsOnNegativeDiagonal) {
  const CMatrix a = CMatrix::from_rows({{cdouble(-1, 0)}});
  EXPECT_THROW((void)numeric::cholesky(a), NotPositiveDefiniteError);
}

TEST(Cholesky, RejectsNonHermitian) {
  CMatrix a = CMatrix::identity(2);
  a(0, 1) = cdouble(0, 1);
  a(1, 0) = cdouble(0, 1);  // should be -i for Hermitian
  EXPECT_THROW((void)numeric::cholesky(a), ContractViolation);
}

TEST(Cholesky, NearSingularRespectsTolerance) {
  // Eigenvalues {2, 1e-16}: numerically singular => rejected.
  const CMatrix a = CMatrix::from_rows(
      {{cdouble(1.0, 0), cdouble(1.0 - 5e-17, 0)},
       {cdouble(1.0 - 5e-17, 0), cdouble(1.0, 0)}});
  EXPECT_THROW((void)numeric::cholesky(a), NotPositiveDefiniteError);
}

TEST(SolveLowerTriangular, SolvesKnownSystem) {
  const CMatrix l = CMatrix::from_rows(
      {{cdouble(2, 0), cdouble(0, 0)}, {cdouble(1, 0), cdouble(3, 0)}});
  const CVector b = {cdouble(4, 0), cdouble(11, 0)};
  const CVector y = numeric::solve_lower_triangular(l, b);
  EXPECT_NEAR(std::abs(y[0] - cdouble(2, 0)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(y[1] - cdouble(3, 0)), 0.0, 1e-14);
}

TEST(SolveLowerTriangular, ValidatesInput) {
  const CMatrix l = CMatrix::identity(2);
  EXPECT_THROW((void)numeric::solve_lower_triangular(l, CVector(3)),
               ContractViolation);
  CMatrix zero_diag = CMatrix::identity(2);
  zero_diag(1, 1) = cdouble{};
  EXPECT_THROW((void)numeric::solve_lower_triangular(zero_diag, CVector(2)),
               ValueError);
}

TEST(Cholesky, FactorSolvesLinearSystem) {
  // Verify L from Cholesky solves A x = b via forward substitution on L.
  const CMatrix a = random_spd(6, 77);
  const CMatrix l = numeric::cholesky(a);
  random::Rng rng(123);
  CVector x_true(6);
  for (auto& v : x_true) {
    v = cdouble(rng.gaussian(), rng.gaussian());
  }
  const CVector b = numeric::multiply(a, x_true);
  // Solve L y = b, then L^H x = y (backward substitution via conjugate).
  const CVector y = numeric::solve_lower_triangular(l, b);
  // Backward substitution on L^H.
  CVector x(6);
  for (std::size_t ii = 6; ii-- > 0;) {
    cdouble acc = y[ii];
    for (std::size_t j = ii + 1; j < 6; ++j) {
      acc -= std::conj(l(j, ii)) * x[j];
    }
    x[ii] = acc / std::conj(l(ii, ii));
  }
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-9);
  }
}

}  // namespace
