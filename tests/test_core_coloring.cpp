// Tests for the coloring-matrix step (paper Sec. 4.3): the defining
// identity L L^H = K_bar, behaviour on PSD/non-PSD/rank-deficient input,
// and the Cholesky alternative.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/core/coloring.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using core::ColoringMethod;
using core::ColoringOptions;
using numeric::cdouble;
using numeric::CMatrix;

CMatrix random_covariance(std::size_t n, std::uint64_t seed, double shift) {
  random::Rng rng(seed);
  CMatrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      g(i, j) = cdouble(rng.gaussian(), rng.gaussian());
    }
  }
  CMatrix k = numeric::gram(g);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) += cdouble(shift, 0.0);
  }
  return k;
}

struct ColoringCase {
  std::size_t n;
  std::uint64_t seed;
};

class EigenColoring : public testing::TestWithParam<ColoringCase> {};

TEST_P(EigenColoring, GramIdentityOnPositiveDefinite) {
  const auto [n, seed] = GetParam();
  const CMatrix k = random_covariance(n, seed, 1.0);
  const auto result = core::compute_coloring(k);
  const double scale = numeric::max_abs(k);
  // Paper Eq. (10): L L^H = K.
  EXPECT_LT(numeric::max_abs_diff(numeric::gram(result.matrix), k),
            1e-10 * scale);
  EXPECT_LT(numeric::max_abs_diff(result.effective_covariance, k),
            1e-12 * scale);
  EXPECT_TRUE(result.psd.was_psd);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EigenColoring,
    testing::Values(ColoringCase{1, 31}, ColoringCase{2, 32},
                    ColoringCase{3, 33}, ColoringCase{4, 34},
                    ColoringCase{8, 35}, ColoringCase{16, 36},
                    ColoringCase{32, 37}),
    [](const auto& tinfo) { return "n" + std::to_string(tinfo.param.n); });

TEST(Coloring, RankDeficientMatrixWorksWithEigenRoute) {
  // K = v v^H is PSD with rank 1: Cholesky fails, eigen-coloring succeeds.
  const numeric::CVector v = {cdouble(1, 0), cdouble(0.5, -0.5)};
  CMatrix k(2, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      k(i, j) = v[i] * std::conj(v[j]);
    }
  }
  const auto eigen_result = core::compute_coloring(k);
  EXPECT_LT(numeric::max_abs_diff(numeric::gram(eigen_result.matrix), k),
            1e-12);

  ColoringOptions cholesky_options;
  cholesky_options.method = ColoringMethod::Cholesky;
  EXPECT_THROW((void)core::compute_coloring(k, cholesky_options),
               NotPositiveDefiniteError);
}

TEST(Coloring, NonPsdMatrixIsForcedThenColored) {
  // Start PSD, poison one off-diagonal pair to break PSD-ness.
  CMatrix k = random_covariance(3, 40, 0.1);
  k(0, 1) = cdouble(10.0, 0.0);
  k(1, 0) = cdouble(10.0, 0.0);
  const auto result = core::compute_coloring(k);
  EXPECT_FALSE(result.psd.was_psd);
  // L L^H equals the *forced* covariance, not the desired one.
  EXPECT_LT(numeric::max_abs_diff(numeric::gram(result.matrix),
                                  result.effective_covariance),
            1e-9);
  EXPECT_GT(result.psd.frobenius_distance, 0.0);
  EXPECT_TRUE(core::is_positive_semidefinite(result.effective_covariance));
}

TEST(Coloring, CholeskyAndEigenYieldSameCovariance) {
  const CMatrix k = random_covariance(5, 41, 2.0);
  const auto eigen_result = core::compute_coloring(k);
  ColoringOptions cholesky_options;
  cholesky_options.method = ColoringMethod::Cholesky;
  const auto cholesky_result = core::compute_coloring(k, cholesky_options);
  // The factors differ (square vs triangular) but the Gram products agree.
  EXPECT_LT(numeric::max_abs_diff(numeric::gram(eigen_result.matrix),
                                  numeric::gram(cholesky_result.matrix)),
            1e-9 * numeric::max_abs(k));
}

TEST(Coloring, EigenColoringIsVTimesSqrtLambda) {
  // White-box check of steps 4-5: columns of L are sqrt(lambda_j) v_j.
  const CMatrix k = random_covariance(4, 42, 1.0);
  const auto result = core::compute_coloring(k);
  for (std::size_t j = 0; j < 4; ++j) {
    const double root = std::sqrt(result.psd.adjusted_eigenvalues[j]);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(std::abs(result.matrix(i, j) -
                           result.psd.eigenvectors(i, j) * root),
                  0.0, 1e-12);
    }
  }
}

TEST(Coloring, JacobiEigenMethodOption) {
  const CMatrix k = random_covariance(6, 43, 1.0);
  ColoringOptions options;
  options.psd.eigen_method = numeric::EigenMethod::Jacobi;
  const auto result = core::compute_coloring(k, options);
  EXPECT_LT(numeric::max_abs_diff(numeric::gram(result.matrix), k),
            1e-9 * numeric::max_abs(k));
}

TEST(Coloring, RejectsInvalidInput) {
  EXPECT_THROW((void)core::compute_coloring(CMatrix(2, 3)), ContractViolation);
  CMatrix not_hermitian = CMatrix::identity(2);
  not_hermitian(0, 1) = cdouble(1, 0);
  EXPECT_THROW((void)core::compute_coloring(not_hermitian), ContractViolation);
}

}  // namespace
