// Tests for the Hermitian eigensolvers: defining identities, cross-method
// agreement, and property sweeps over random Hermitian matrices.

#include <gtest/gtest.h>

#include <cmath>

#include "rfade/numeric/eigen_hermitian.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;
using numeric::EigenMethod;
using numeric::HermitianEigen;

/// Random Hermitian matrix A = G + G^H with entries from a seeded Rng.
CMatrix random_hermitian(std::size_t n, std::uint64_t seed) {
  random::Rng rng(seed);
  CMatrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      g(i, j) = cdouble(rng.gaussian(), rng.gaussian());
    }
  }
  return numeric::hermitian_part(numeric::add(g, numeric::conjugate_transpose(g)));
}

double unitarity_error(const CMatrix& v) {
  const CMatrix vhv = numeric::multiply(numeric::conjugate_transpose(v), v);
  return numeric::max_abs_diff(vhv, CMatrix::identity(v.rows()));
}

double decomposition_error(const CMatrix& a, const HermitianEigen& eig) {
  return numeric::max_abs_diff(numeric::reconstruct(eig), a);
}

class EigenBothMethods : public testing::TestWithParam<EigenMethod> {};

TEST_P(EigenBothMethods, DiagonalMatrix) {
  const CMatrix a = numeric::diag(numeric::RVector{3.0, -1.0, 2.0});
  const HermitianEigen eig = numeric::eigen_hermitian(a, GetParam());
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], -1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
  EXPECT_LT(unitarity_error(eig.vectors), 1e-12);
}

TEST_P(EigenBothMethods, Known2x2Hermitian) {
  // [[2, i], [-i, 2]] has eigenvalues 1 and 3.
  const CMatrix a = CMatrix::from_rows(
      {{cdouble(2, 0), cdouble(0, 1)}, {cdouble(0, -1), cdouble(2, 0)}});
  const HermitianEigen eig = numeric::eigen_hermitian(a, GetParam());
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
  EXPECT_LT(decomposition_error(a, eig), 1e-12);
}

TEST_P(EigenBothMethods, OneByOneAndIdentity) {
  const CMatrix one = CMatrix::from_rows({{cdouble(-4.5, 0)}});
  const HermitianEigen e1 = numeric::eigen_hermitian(one, GetParam());
  EXPECT_NEAR(e1.values[0], -4.5, 1e-14);

  const CMatrix id = CMatrix::identity(5);
  const HermitianEigen e2 = numeric::eigen_hermitian(id, GetParam());
  for (const double lambda : e2.values) {
    EXPECT_NEAR(lambda, 1.0, 1e-12);
  }
}

TEST_P(EigenBothMethods, RankDeficientOuterProduct) {
  // A = v v^H has one eigenvalue ||v||^2 and the rest zero.
  const numeric::CVector v = {cdouble(1, 1), cdouble(2, 0), cdouble(0, -1)};
  CMatrix a(3, 3);
  double norm2 = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    norm2 += std::norm(v[i]);
    for (std::size_t j = 0; j < 3; ++j) {
      a(i, j) = v[i] * std::conj(v[j]);
    }
  }
  const HermitianEigen eig = numeric::eigen_hermitian(a, GetParam());
  EXPECT_NEAR(eig.values[0], 0.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 0.0, 1e-12);
  EXPECT_NEAR(eig.values[2], norm2, 1e-10);
  EXPECT_LT(decomposition_error(a, eig), 1e-10);
}

TEST_P(EigenBothMethods, RejectsNonHermitian) {
  CMatrix a = CMatrix::identity(2);
  a(0, 1) = cdouble(1, 0);  // asymmetric
  EXPECT_THROW((void)numeric::eigen_hermitian(a, GetParam()), ContractViolation);
  EXPECT_THROW((void)numeric::eigen_hermitian(CMatrix(2, 3), GetParam()),
               ContractViolation);
}

INSTANTIATE_TEST_SUITE_P(Methods, EigenBothMethods,
                         testing::Values(EigenMethod::Jacobi,
                                         EigenMethod::TridiagonalQL),
                         [](const auto& tinfo) {
                           return tinfo.param == EigenMethod::Jacobi
                                      ? "Jacobi"
                                      : "TridiagonalQL";
                         });

struct EigenPropertyCase {
  std::size_t n;
  std::uint64_t seed;
};

class EigenProperty : public testing::TestWithParam<EigenPropertyCase> {};

TEST_P(EigenProperty, DefiningIdentitiesHoldForBothMethods) {
  const auto [n, seed] = GetParam();
  const CMatrix a = random_hermitian(n, seed);
  const double scale = std::max(1.0, numeric::max_abs(a));

  for (const EigenMethod method :
       {EigenMethod::Jacobi, EigenMethod::TridiagonalQL}) {
    const HermitianEigen eig = numeric::eigen_hermitian(a, method);
    ASSERT_EQ(eig.values.size(), n);
    // Ascending eigenvalues.
    for (std::size_t i = 0; i + 1 < n; ++i) {
      EXPECT_LE(eig.values[i], eig.values[i + 1] + 1e-12 * scale);
    }
    EXPECT_LT(unitarity_error(eig.vectors), 1e-11) << "n=" << n;
    EXPECT_LT(decomposition_error(a, eig), 1e-10 * scale) << "n=" << n;
    // Trace equals eigenvalue sum.
    double sum = 0.0;
    for (const double lambda : eig.values) {
      sum += lambda;
    }
    EXPECT_NEAR(sum, numeric::trace(a).real(), 1e-9 * scale * double(n));
  }
}

TEST_P(EigenProperty, MethodsAgreeOnEigenvalues) {
  const auto [n, seed] = GetParam();
  const CMatrix a = random_hermitian(n, seed ^ 0xABCDEF);
  const HermitianEigen jacobi =
      numeric::eigen_hermitian(a, EigenMethod::Jacobi);
  const HermitianEigen ql =
      numeric::eigen_hermitian(a, EigenMethod::TridiagonalQL);
  const double scale = std::max(1.0, numeric::max_abs(a));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(jacobi.values[i], ql.values[i], 1e-10 * scale) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EigenProperty,
    testing::Values(EigenPropertyCase{2, 1}, EigenPropertyCase{3, 2},
                    EigenPropertyCase{4, 3}, EigenPropertyCase{5, 4},
                    EigenPropertyCase{8, 5}, EigenPropertyCase{12, 6},
                    EigenPropertyCase{16, 7}, EigenPropertyCase{24, 8},
                    EigenPropertyCase{32, 9}, EigenPropertyCase{48, 10},
                    EigenPropertyCase{64, 11}),
    [](const auto& tinfo) { return "n" + std::to_string(tinfo.param.n); });

TEST(Eigen, RealSymmetricAgreesWithAnalyticFormula) {
  // [[a, b], [b, c]] eigenvalues: (a+c)/2 +- sqrt(((a-c)/2)^2 + b^2).
  const double a = 2.0;
  const double b = -1.5;
  const double c = -1.0;
  const CMatrix m = CMatrix::from_rows(
      {{cdouble(a, 0), cdouble(b, 0)}, {cdouble(b, 0), cdouble(c, 0)}});
  const double mid = 0.5 * (a + c);
  const double rad = std::sqrt(0.25 * (a - c) * (a - c) + b * b);
  const HermitianEigen eig = numeric::eigen_hermitian(m);
  EXPECT_NEAR(eig.values[0], mid - rad, 1e-12);
  EXPECT_NEAR(eig.values[1], mid + rad, 1e-12);
}

TEST(Eigen, EigenvectorsSatisfyAvEqualsLambdaV) {
  const CMatrix a = random_hermitian(10, 99);
  const HermitianEigen eig = numeric::eigen_hermitian(a);
  for (std::size_t j = 0; j < 10; ++j) {
    numeric::CVector v(10);
    for (std::size_t i = 0; i < 10; ++i) {
      v[i] = eig.vectors(i, j);
    }
    const numeric::CVector av = numeric::multiply(a, v);
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_NEAR(std::abs(av[i] - eig.values[j] * v[i]), 0.0, 1e-9);
    }
  }
}

TEST(Eigen, ZeroMatrix) {
  const CMatrix zero(4, 4, cdouble{});
  for (const EigenMethod method :
       {EigenMethod::Jacobi, EigenMethod::TridiagonalQL}) {
    const HermitianEigen eig = numeric::eigen_hermitian(zero, method);
    for (const double lambda : eig.values) {
      EXPECT_EQ(lambda, 0.0);
    }
    EXPECT_LT(unitarity_error(eig.vectors), 1e-13);
  }
}

TEST(Eigen, LargeSpreadEigenvalues) {
  // Widely spread spectrum exercises shift/deflation logic.
  const CMatrix a = numeric::diag(numeric::RVector{1e-8, 1.0, 1e8});
  for (const EigenMethod method :
       {EigenMethod::Jacobi, EigenMethod::TridiagonalQL}) {
    const HermitianEigen eig = numeric::eigen_hermitian(a, method);
    EXPECT_NEAR(eig.values[0], 1e-8, 1e-16);
    EXPECT_NEAR(eig.values[1], 1.0, 1e-8);
    EXPECT_NEAR(eig.values[2], 1e8, 1.0);
  }
}

}  // namespace
