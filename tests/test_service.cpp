// Tests for the serving layer: ChannelSpec canonical hashing and typed
// rejections, PlanCache hit/miss/eviction/collision behaviour, Session
// bit-identity against the keyed stream/instant engines, the batcher,
// sharded accumulator merges, and the legacy-wrapper equivalences.

#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/fading_stream.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/scenario/composite/suzuki.hpp"
#include "rfade/scenario/timevarying/cascaded_realtime.hpp"
#include "rfade/scenario/timevarying/twdp.hpp"
#include "rfade/service/accumulators.hpp"
#include "rfade/service/channel_service.hpp"
#include "rfade/service/channel_spec.hpp"
#include "rfade/service/plan_cache.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;
using service::ChannelSpec;
using service::ChannelService;
using service::CompiledChannel;
using service::EmissionMode;
using service::FadingFamily;
using service::MarginalSpec;
using service::PlanCache;
using service::Session;

CMatrix paper_covariance() {
  return channel::spectral_covariance_matrix(
      channel::paper_spectral_scenario());
}

bool bit_equal(const CMatrix& a, const CMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) {
      return false;
    }
  }
  return true;
}

// --- error taxonomy ---------------------------------------------------------

TEST(ErrorTaxonomy, MachineReadableCodes) {
  EXPECT_EQ(ContractViolation("c").code(), ErrorCode::ContractViolation);
  EXPECT_EQ(DimensionError("d").code(), ErrorCode::DimensionMismatch);
  EXPECT_EQ(ValueError("v").code(), ErrorCode::DomainError);
  EXPECT_EQ(ConvergenceError("c").code(), ErrorCode::ConvergenceFailure);
  EXPECT_EQ(NotPositiveDefiniteError("n").code(),
            ErrorCode::NotPositiveDefinite);
  EXPECT_EQ(InvalidSpecError("i").code(), ErrorCode::InvalidSpec);
  EXPECT_EQ(UnsupportedOperationError("u").code(),
            ErrorCode::UnsupportedOperation);
  EXPECT_EQ(Error("e").code(), ErrorCode::Unknown);
  EXPECT_STREQ(InvalidSpecError("i").code_name(), "invalid_spec");
  EXPECT_STREQ(ContractViolation("c").code_name(), "contract_violation");
  EXPECT_STREQ(error_code_name(ErrorCode::UnsupportedOperation),
               "unsupported_operation");
}

TEST(ErrorTaxonomy, SpecErrorsDeriveFromError) {
  EXPECT_THROW(throw InvalidSpecError("i"), Error);
  EXPECT_THROW(throw UnsupportedOperationError("u"), Error);
}

// --- ChannelSpec ------------------------------------------------------------

TEST(ChannelSpec, HashStableAcrossBuilderOrderings) {
  const CMatrix k = paper_covariance();
  const ChannelSpec a = ChannelSpec::Builder()
                            .rician(k, 3.0, 0.25)
                            .doppler(0.08)
                            .idft_size(512)
                            .backend(doppler::StreamBackend::OverlapSaveFir)
                            .build();
  const ChannelSpec b = ChannelSpec::Builder()
                            .backend(doppler::StreamBackend::OverlapSaveFir)
                            .idft_size(512)
                            .doppler(0.08)
                            .rician(k, 3.0, 0.25)
                            .build();
  EXPECT_EQ(a.content_hash(), b.content_hash());
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.family(), FadingFamily::Rician);
  EXPECT_EQ(a.dimension(), 3u);
}

TEST(ChannelSpec, CanonicalizationCollapsesDegenerateSpecs) {
  const CMatrix k = paper_covariance();
  // All-K-zero Rician IS the Rayleigh core.
  const ChannelSpec rayleigh = ChannelSpec::Builder().rayleigh(k).build();
  const ChannelSpec zero_k = ChannelSpec::Builder().rician(k, 0.0).build();
  EXPECT_EQ(zero_k.family(), FadingFamily::Rayleigh);
  EXPECT_EQ(zero_k.content_hash(), rayleigh.content_hash());
  EXPECT_TRUE(zero_k == rayleigh);

  // An all-zero constant mean is no mean.
  const ChannelSpec zero_mean =
      ChannelSpec::Builder()
          .rayleigh(k)
          .constant_mean(numeric::CVector(3, cdouble(0.0, 0.0)))
          .build();
  EXPECT_EQ(zero_mean.content_hash(), rayleigh.content_hash());

  // Stream-only knobs are inert under instant emission.
  const ChannelSpec instant_a = ChannelSpec::Builder()
                                    .rayleigh(k)
                                    .instant()
                                    .doppler(0.2)
                                    .idft_size(1024)
                                    .build();
  const ChannelSpec instant_b =
      ChannelSpec::Builder().rayleigh(k).instant().build();
  EXPECT_EQ(instant_a.content_hash(), instant_b.content_hash());
  EXPECT_TRUE(instant_a == instant_b);
}

TEST(ChannelSpec, HashSeparatesDistinctScenarios) {
  const CMatrix k = paper_covariance();
  const auto base = ChannelSpec::Builder().rayleigh(k).build();
  const auto faster = ChannelSpec::Builder().rayleigh(k).doppler(0.1).build();
  const auto rician = ChannelSpec::Builder().rician(k, 2.0).build();
  EXPECT_NE(base.content_hash(), faster.content_hash());
  EXPECT_NE(base.content_hash(), rician.content_hash());
  EXPECT_FALSE(base == faster);
}

TEST(ChannelSpec, TypedSpecRejections) {
  const CMatrix k = paper_covariance();
  // No family picked.
  EXPECT_THROW((void)ChannelSpec::Builder().doppler(0.1).build(),
               InvalidSpecError);
  // Branch-count mismatch.
  EXPECT_THROW((void)ChannelSpec::Builder()
                   .rician(k, {scenario::RicianBranch{1.0, 0.0}})
                   .build(),
               InvalidSpecError);
  // TWDP Delta out of [0, 1].
  EXPECT_THROW((void)ChannelSpec::Builder().twdp(k, 2.0, 1.5).build(),
               InvalidSpecError);
  // Stream Doppler out of (0, 0.5).
  EXPECT_THROW((void)ChannelSpec::Builder().rayleigh(k).doppler(0.6).build(),
               InvalidSpecError);
  // Copula cannot stream.
  numeric::RMatrix target(2, 2);
  target(0, 0) = target(1, 1) = 1.0;
  target(0, 1) = target(1, 0) = 0.4;
  EXPECT_THROW((void)ChannelSpec::Builder()
                   .copula(target, {MarginalSpec::nakagami(2.0, 1.0),
                                    MarginalSpec::rayleigh(1.0)})
                   .streaming()
                   .build(),
               InvalidSpecError);
  // Copula marginal domain violations.
  EXPECT_THROW((void)ChannelSpec::Builder()
                   .copula(target, {MarginalSpec::nakagami(0.2, 1.0),
                                    MarginalSpec::rayleigh(1.0)})
                   .build(),
               InvalidSpecError);
  // Deep numeric validation stays with the compile layers.
  EXPECT_THROW(
      (void)ChannelSpec::Builder().rayleigh(CMatrix(2, 3)).build().compile(),
      ContractViolation);
}

// --- PlanCache --------------------------------------------------------------

TEST(PlanCache, HitMissEvictionCounters) {
  const CMatrix k = paper_covariance();
  PlanCache cache(2);
  const auto spec_a = ChannelSpec::Builder().rayleigh(k).build();
  const auto spec_b = ChannelSpec::Builder().rayleigh(k).doppler(0.1).build();
  const auto spec_c = ChannelSpec::Builder().rayleigh(k).doppler(0.2).build();

  const auto a1 = cache.get_or_compile(spec_a);  // miss
  const auto a2 = cache.get_or_compile(spec_a);  // hit, same bundle
  EXPECT_EQ(a1.get(), a2.get());
  const auto b1 = cache.get_or_compile(spec_b);  // miss, size 2
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);

  // A touches spec_a, so spec_b is LRU and must be the eviction victim.
  (void)cache.get_or_compile(spec_a);
  (void)cache.get_or_compile(spec_c);  // miss + eviction of spec_b
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_NE(cache.peek(spec_a), nullptr);
  EXPECT_EQ(cache.peek(spec_b), nullptr);
  EXPECT_NE(cache.peek(spec_c), nullptr);

  // Evicted bundles stay valid for holders.
  EXPECT_EQ(b1->dimension(), 3u);
  EXPECT_THROW(PlanCache(0), ContractViolation);
}

TEST(PlanCache, ConcurrentSameSpecSharesOneBundle) {
  const CMatrix k = paper_covariance();
  PlanCache cache(4);
  const auto spec = ChannelSpec::Builder().rayleigh(k).build();
  std::vector<std::future<std::shared_ptr<const CompiledChannel>>> futures;
  futures.reserve(8);
  for (int i = 0; i < 8; ++i) {
    futures.push_back(std::async(std::launch::async,
                                 [&] { return cache.get_or_compile(spec); }));
  }
  std::vector<std::shared_ptr<const CompiledChannel>> bundles;
  bundles.reserve(8);
  for (auto& f : futures) {
    bundles.push_back(f.get());
  }
  // All callers got content-equal bundles, and the cache settled on one.
  for (const auto& bundle : bundles) {
    EXPECT_TRUE(bundle->spec() == spec);
  }
  EXPECT_EQ(cache.stats().size, 1u);
  EXPECT_EQ(cache.peek(spec)->content_hash(), spec.content_hash());
}

// --- Session bit-identity ---------------------------------------------------

TEST(Session, StreamWalkMatchesKeyedFadingStreamAllBackends) {
  const CMatrix k = paper_covariance();
  for (const auto backend : {doppler::StreamBackend::IndependentBlock,
                             doppler::StreamBackend::WindowedOverlapAdd,
                             doppler::StreamBackend::OverlapSaveFir}) {
    const ChannelSpec spec = ChannelSpec::Builder()
                                 .rayleigh(k)
                                 .backend(backend)
                                 .idft_size(256)
                                 .doppler(0.05)
                                 .build();
    ChannelService svc;
    Session session = svc.open_session(spec, /*seed=*/42);

    // The reference: a hand-assembled stateful FadingStream on the same
    // plan and options.
    const auto channel = svc.compile(spec);
    core::FadingStream reference(channel->plan(),
                                 channel->stream_options(42));
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(bit_equal(session.next_block(), reference.next_block()));
    }
    // seek() matches the keyed path at an arbitrary index.
    session.seek(7);
    EXPECT_EQ(session.next_block_index(), 7u);
    EXPECT_TRUE(
        bit_equal(session.next_block(), reference.generate_block(42, 7)));
    EXPECT_EQ(session.block_size(), channel->block_size());
  }
}

TEST(Session, RicianAndSuzukiStreamsMatchTheirEngines) {
  const CMatrix k = paper_covariance();
  ChannelService svc;

  const ChannelSpec rician = ChannelSpec::Builder()
                                 .rician(k, 4.0, 0.3)
                                 .los_doppler(0.02)
                                 .idft_size(256)
                                 .build();
  Session rician_session = svc.open_session(rician, 9);
  core::FadingStream rician_reference(
      svc.compile(rician)->plan(), svc.compile(rician)->stream_options(9));
  EXPECT_TRUE(
      bit_equal(rician_session.next_block(), rician_reference.next_block()));

  scenario::composite::ShadowingSpec shadowing;
  shadowing.sigma_db = 3.0;
  shadowing.decorrelation_samples = 256.0;
  const ChannelSpec suzuki =
      ChannelSpec::Builder().suzuki(k, shadowing).idft_size(256).build();
  Session suzuki_session = svc.open_session(suzuki, 11);
  core::FadingStream suzuki_reference =
      svc.compile(suzuki)->make_stream(11);
  EXPECT_TRUE(
      bit_equal(suzuki_session.next_block(), suzuki_reference.next_block()));
}

TEST(Session, CascadedStreamMatchesRealTimeGenerator) {
  const CMatrix k = paper_covariance();
  const ChannelSpec spec = ChannelSpec::Builder()
                               .cascaded(k, k)
                               .idft_size(256)
                               .doppler(0.05)
                               .second_doppler(0.02)
                               .build();
  ChannelService svc;
  Session session = svc.open_session(spec, 5);
  const auto channel = svc.compile(spec);
  const scenario::CascadedRealTimeGenerator reference =
      channel->make_cascaded_stream(5);
  for (std::uint64_t b = 0; b < 2; ++b) {
    EXPECT_TRUE(bit_equal(session.next_block(),
                          reference.generate_block(5, b)));
  }
}

TEST(Session, InstantWalkMatchesKeyedPipelines) {
  const CMatrix k = paper_covariance();
  ChannelService svc;

  const ChannelSpec rayleigh =
      ChannelSpec::Builder().rayleigh(k).instant().block_size(64).build();
  Session session = svc.open_session(rayleigh, 3);
  const auto channel = svc.compile(rayleigh);
  EXPECT_TRUE(bit_equal(session.next_block(),
                        channel->pipeline().sample_block(64, 3, 0)));
  session.seek(12);
  EXPECT_TRUE(bit_equal(session.next_block(),
                        channel->pipeline().sample_block(64, 3, 12)));

  const ChannelSpec twdp = ChannelSpec::Builder()
                               .twdp(k, 5.0, 0.6)
                               .instant()
                               .block_size(64)
                               .build();
  Session twdp_session = svc.open_session(twdp, 21);
  EXPECT_TRUE(bit_equal(
      twdp_session.next_block(),
      svc.compile(twdp)->twdp_generator().sample_block(64, 21, 0)));
}

TEST(Session, CopulaChannelsAreEnvelopeOnly) {
  numeric::RMatrix target(2, 2);
  target(0, 0) = target(1, 1) = 1.0;
  target(0, 1) = target(1, 0) = 0.5;
  const ChannelSpec spec =
      ChannelSpec::Builder()
          .copula(target, {MarginalSpec::nakagami(2.0, 1.5),
                           MarginalSpec::weibull(2.5, 1.0)})
          .block_size(32)
          .laguerre_terms(48)
          .quadrature_panels(512)
          .build();
  ChannelService svc;
  Session session = svc.open_session(spec, 17);
  EXPECT_TRUE(session.channel().envelope_only());
  EXPECT_THROW((void)session.next_block(), UnsupportedOperationError);
  const numeric::RMatrix envelopes = session.next_envelope_block();
  EXPECT_EQ(envelopes.rows(), 32u);
  EXPECT_EQ(envelopes.cols(), 2u);
  const numeric::RMatrix keyed =
      svc.compile(spec)->copula_transform().sample_envelope_block(32, 17, 0);
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    EXPECT_EQ(envelopes.data()[i], keyed.data()[i]);
  }
}

// --- concurrency + batching -------------------------------------------------

TEST(ChannelService, ConcurrentSharedPlanSessionsMatchIsolatedSessions) {
  const CMatrix k = paper_covariance();
  const ChannelSpec spec = ChannelSpec::Builder()
                               .rayleigh(k)
                               .backend(doppler::StreamBackend::OverlapSaveFir)
                               .idft_size(256)
                               .build();
  ChannelService svc;
  constexpr int kTenants = 6;
  constexpr std::uint64_t kBlocks = 3;

  // Shared-plan tenants, all pulling concurrently.
  std::vector<Session> shared;
  shared.reserve(kTenants);
  const auto channel = svc.compile(spec);
  for (int t = 0; t < kTenants; ++t) {
    shared.push_back(ChannelService::open_session(channel, 1000 + t));
  }
  std::vector<std::vector<CMatrix>> concurrent(kTenants);
  {
    std::vector<std::thread> threads;
    threads.reserve(kTenants);
    for (int t = 0; t < kTenants; ++t) {
      threads.emplace_back([&, t] {
        for (std::uint64_t b = 0; b < kBlocks; ++b) {
          concurrent[t].push_back(shared[t].generate_block(b));
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }

  // Isolated tenants: each on its own freshly-compiled channel,
  // walking sequentially.
  for (int t = 0; t < kTenants; ++t) {
    Session isolated(spec.compile(), 1000 + t);
    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      EXPECT_TRUE(bit_equal(concurrent[t][b], isolated.next_block()));
    }
  }
  // One compile served every shared tenant.
  EXPECT_EQ(svc.cache_stats().misses, 1u);
}

TEST(ChannelService, BatcherIsBitIdenticalToSequentialPulls) {
  const CMatrix k = paper_covariance();
  const ChannelSpec stream_spec =
      ChannelSpec::Builder().rayleigh(k).idft_size(256).build();
  const ChannelSpec instant_spec =
      ChannelSpec::Builder().rician(k, 2.0).instant().block_size(48).build();
  ChannelService svc;

  std::vector<Session> batched;
  batched.push_back(svc.open_session(stream_spec, 1));
  batched.push_back(svc.open_session(instant_spec, 2));
  batched.push_back(svc.open_session(stream_spec, 3));
  std::vector<Session*> pointers{&batched[0], &batched[1], &batched[2]};

  std::vector<Session> sequential;
  sequential.push_back(svc.open_session(stream_spec, 1));
  sequential.push_back(svc.open_session(instant_spec, 2));
  sequential.push_back(svc.open_session(stream_spec, 3));

  for (int round = 0; round < 2; ++round) {
    const auto blocks = ChannelService::pull_blocks(pointers);
    ASSERT_EQ(blocks.size(), 3u);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      EXPECT_TRUE(bit_equal(blocks[i], sequential[i].next_block()));
      EXPECT_EQ(batched[i].next_block_index(),
                sequential[i].next_block_index());
    }
  }

  // Explicit request list: mixed sessions, repeated indices.
  const std::vector<service::BlockRequest> requests{
      {&batched[0], 5}, {&batched[1], 0}, {&batched[0], 5}};
  const auto blocks = ChannelService::generate_blocks(requests);
  EXPECT_TRUE(bit_equal(blocks[0], batched[0].generate_block(5)));
  EXPECT_TRUE(bit_equal(blocks[2], blocks[0]));
}

TEST(ChannelService, TwoShardAccumulatorMergeEqualsSingleRun) {
  const CMatrix k = paper_covariance();
  const ChannelSpec spec = ChannelSpec::Builder()
                               .rayleigh(k)
                               .backend(doppler::StreamBackend::OverlapSaveFir)
                               .idft_size(256)
                               .build();
  ChannelService svc;
  Session session = svc.open_session(spec, 1234);
  constexpr std::uint64_t kBlocks = 4;

  service::EnvelopeMomentAccumulator single_moments(3);
  service::ComplexCovarianceAccumulator single_covariance(3);
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    const CMatrix block = session.generate_block(b);
    single_moments.accumulate(block);
    single_covariance.accumulate(block);
  }

  // Shards split the block range and run through *separate* sessions on
  // the same (spec, seed): the keyed contract makes them the same blocks.
  service::EnvelopeMomentAccumulator moments_a(3);
  service::EnvelopeMomentAccumulator moments_b(3);
  service::ComplexCovarianceAccumulator covariance_a(3);
  service::ComplexCovarianceAccumulator covariance_b(3);
  Session shard_a = svc.open_session(spec, 1234);
  Session shard_b = svc.open_session(spec, 1234);
  for (std::uint64_t b = 0; b < kBlocks / 2; ++b) {
    const CMatrix block = shard_a.generate_block(b);
    moments_a.accumulate(block);
    covariance_a.accumulate(block);
  }
  for (std::uint64_t b = kBlocks / 2; b < kBlocks; ++b) {
    const CMatrix block = shard_b.generate_block(b);
    moments_b.accumulate(block);
    covariance_b.accumulate(block);
  }
  moments_a.merge(moments_b);
  covariance_a.merge(covariance_b);

  for (std::size_t j = 0; j < 3; ++j) {
    const auto merged = moments_a.finalize(j);
    const auto direct = single_moments.finalize(j);
    EXPECT_EQ(merged.mean, direct.mean);
    EXPECT_EQ(merged.second_moment, direct.second_moment);
    EXPECT_EQ(merged.fourth_moment, direct.fourth_moment);
    EXPECT_EQ(merged.variance, direct.variance);
    EXPECT_EQ(merged.amount_of_fading, direct.amount_of_fading);
  }
  const CMatrix merged_cov = covariance_a.finalize();
  const CMatrix direct_cov = single_covariance.finalize();
  EXPECT_TRUE(bit_equal(merged_cov, direct_cov));
}

// --- legacy wrappers --------------------------------------------------------

TEST(LegacyWrappers, EnvelopeGeneratorMatchesPlanConstruction) {
  const CMatrix k = paper_covariance();
  core::GeneratorOptions options;
  options.sample_variance = 2.0;
  options.mean_offset = numeric::CVector(3, cdouble(0.1, -0.2));
  const core::EnvelopeGenerator wrapped(k, options);
  const core::EnvelopeGenerator direct(
      core::ColoringPlan::create(k, options.coloring), options);
  EXPECT_TRUE(bit_equal(wrapped.sample_stream(96, 5),
                        direct.sample_stream(96, 5)));
}

TEST(LegacyWrappers, SuzukiGeneratorMatchesPlanConstruction) {
  const CMatrix k = paper_covariance();
  scenario::composite::ShadowingSpec shadowing;
  shadowing.sigma_db = 5.0;
  shadowing.decorrelation_samples = 128.0;
  const scenario::composite::SuzukiGenerator wrapped(k, shadowing, {});
  const scenario::composite::SuzukiGenerator direct(
      core::ColoringPlan::create(k, {}), shadowing, {});
  EXPECT_TRUE(bit_equal(wrapped.sample_block(64, 7, 0),
                        direct.sample_block(64, 7, 0)));
}

TEST(LegacyWrappers, TwdpGeneratorMatchesPlanConstruction) {
  const CMatrix k = paper_covariance();
  const auto spec = scenario::TwdpSpec::uniform(k, 6.0, 0.7);
  const scenario::TwdpGenerator wrapped(spec, {});
  const scenario::TwdpGenerator direct(spec.build_plan({}), spec, {});
  EXPECT_TRUE(bit_equal(wrapped.sample_block(64, 13, 2),
                        direct.sample_block(64, 13, 2)));
  // K = 0 canonicalizes to the Rayleigh family inside the wrapper but
  // must still construct and match.
  const auto zero_k = scenario::TwdpSpec::uniform(k, 0.0, 0.0);
  const scenario::TwdpGenerator wrapped_zero(zero_k, {});
  const scenario::TwdpGenerator direct_zero(zero_k.build_plan({}), zero_k,
                                            {});
  EXPECT_TRUE(bit_equal(wrapped_zero.sample_block(32, 1, 0),
                        direct_zero.sample_block(32, 1, 0)));
}

}  // namespace
