// Telemetry subsystem: sharded counters, the mergeable log-bucketed
// LatencyHistogram (shard-merge == single-run, bucket for bucket),
// registry identity, the Prometheus / JSON exporters, Chrome trace
// well-formedness (parsed in-test), and the disabled-mode fast paths.
//
// The concurrency cases (sharded counter adds, concurrent histogram
// recording) run under the TSan CI leg.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "rfade/service/channel_service.hpp"
#include "rfade/service/plan_cache.hpp"
#include "rfade/telemetry/telemetry.hpp"

using namespace rfade;
using telemetry::Counter;
using telemetry::Gauge;
using telemetry::HistogramSnapshot;
using telemetry::LatencyHistogram;
using telemetry::Registry;
using telemetry::Span;
using telemetry::TraceEvent;
using telemetry::Tracer;

namespace {

// --- a minimal strict JSON parser (enough to validate exporter output) ------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<JsonObject>(value);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<JsonArray>(value);
  }
  [[nodiscard]] const JsonObject& object() const {
    return std::get<JsonObject>(value);
  }
  [[nodiscard]] const JsonArray& array() const {
    return std::get<JsonArray>(value);
  }
  [[nodiscard]] double number() const { return std::get<double>(value); }
  [[nodiscard]] const std::string& string() const {
    return std::get<std::string>(value);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parse the whole document; gtest-fails and returns nullopt on any
  /// syntax error or trailing garbage.
  std::optional<JsonValue> parse() {
    JsonValue value;
    if (!parse_value(value)) {
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      ADD_FAILURE() << "trailing characters at offset " << pos_;
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(const std::string& what) {
    ADD_FAILURE() << "JSON parse error at offset " << pos_ << ": " << what;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char expected) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != expected) {
      return fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return parse_object(out);
    }
    if (c == '[') {
      return parse_array(out);
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) {
        return false;
      }
      out.value = std::move(s);
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out.value = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out.value = false;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out.value = nullptr;
      return true;
    }
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{')) {
      return false;
    }
    JsonObject object;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out.value = std::move(object);
      return true;
    }
    for (;;) {
      std::string key;
      skip_ws();
      if (!parse_string(key)) {
        return false;
      }
      if (!consume(':')) {
        return false;
      }
      JsonValue value;
      if (!parse_value(value)) {
        return false;
      }
      object.emplace(std::move(key), std::move(value));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (!consume('}')) {
      return false;
    }
    out.value = std::move(object);
    return true;
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[')) {
      return false;
    }
    JsonArray array;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out.value = std::move(array);
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!parse_value(value)) {
        return false;
      }
      array.push_back(std::move(value));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (!consume(']')) {
      return false;
    }
    out.value = std::move(array);
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return fail("bad escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            c = '"';
            break;
          case '\\':
            c = '\\';
            break;
          case '/':
            c = '/';
            break;
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return fail("bad \\u escape");
            }
            pos_ += 4;  // validated as hex, decoded as '?' (names only)
            c = '?';
            break;
          }
          default:
            return fail("unknown escape");
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) {
      return fail("unterminated string");
    }
    ++pos_;  // closing quote
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return fail("expected value");
    }
    try {
      out.value = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      return fail("bad number");
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// RAII guard: tests flip the global recording/tracing switches and must
/// restore them for their neighbours.
struct TelemetryGuard {
  TelemetryGuard() = default;
  ~TelemetryGuard() {
    telemetry::set_enabled(false);
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

// --- instruments -------------------------------------------------------------

TEST(TelemetryCounter, ConcurrentShardedAddsSumExactly) {
  Counter counter;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(TelemetryCounter, MergeAddsShardwise) {
  Counter a;
  Counter b;
  a.add(7);
  b.add(35);
  a.merge(b);
  EXPECT_EQ(a.value(), 42u);
  EXPECT_EQ(b.value(), 35u);  // source untouched
}

TEST(TelemetryGauge, SetAndAdd) {
  Gauge gauge;
  gauge.set(4.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.add(-1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
}

// --- histogram bucket layout -------------------------------------------------

TEST(TelemetryHistogram, BucketIndexRoundTrips) {
  // Every probe value must land in a bucket whose [lower, upper] range
  // contains it; small values get exact unit buckets.
  const std::uint64_t probes[] = {0,    1,    31,        32,         33,
                                  63,   64,   65,        1000,       4096,
                                  4097, 1u << 20,        (1u << 20) + 17,
                                  std::uint64_t{1} << 40,
                                  ~std::uint64_t{0}};
  for (const std::uint64_t v : probes) {
    const std::size_t index = LatencyHistogram::bucket_index(v);
    ASSERT_LT(index, LatencyHistogram::kBucketCount) << "value " << v;
    EXPECT_LE(LatencyHistogram::bucket_lower(index), v) << "value " << v;
    EXPECT_GE(LatencyHistogram::bucket_upper(index), v) << "value " << v;
  }
  for (std::uint64_t v = 0; v < LatencyHistogram::kLinear; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_width(v), 1u);
  }
}

TEST(TelemetryHistogram, BucketsPartitionTheRange) {
  // Consecutive buckets tile the value axis with no gaps or overlaps.
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBucketCount; ++i) {
    EXPECT_EQ(LatencyHistogram::bucket_upper(i) + 1,
              LatencyHistogram::bucket_lower(i + 1))
        << "bucket " << i;
  }
  EXPECT_EQ(LatencyHistogram::bucket_upper(LatencyHistogram::kBucketCount - 1),
            ~std::uint64_t{0});
}

TEST(TelemetryHistogram, CountSumMinMaxExact) {
  LatencyHistogram histogram;
  histogram.record(100);
  histogram.record(250);
  histogram.record(50);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum(), 400u);
  EXPECT_EQ(histogram.min(), 50u);
  EXPECT_EQ(histogram.max(), 250u);
}

TEST(TelemetryHistogram, QuantileWithinBucketResolution) {
  LatencyHistogram histogram;
  for (std::uint64_t v = 1; v <= 10'000; ++v) {
    histogram.record(v);
  }
  const HistogramSnapshot snap = histogram.snapshot();
  // Sub-bucket resolution is 2^-5, so the bucket representative sits
  // within ~3.2% of the true order statistic.
  EXPECT_NEAR(snap.quantile(0.50), 5000.0, 5000.0 * 0.033);
  EXPECT_NEAR(snap.quantile(0.90), 9000.0, 9000.0 * 0.033);
  EXPECT_NEAR(snap.quantile(0.99), 9900.0, 9900.0 * 0.033);
  EXPECT_EQ(snap.max, 10'000u);
  EXPECT_DOUBLE_EQ(snap.mean(), 5000.5);
}

TEST(TelemetryHistogram, QuantileEdgeCases) {
  LatencyHistogram empty;
  EXPECT_EQ(empty.snapshot().quantile(0.5), 0.0);
  LatencyHistogram one;
  one.record(17);
  // A single small value lives in an exact unit bucket: every quantile
  // is that value.
  EXPECT_DOUBLE_EQ(one.snapshot().quantile(0.0), 17.0);
  EXPECT_DOUBLE_EQ(one.snapshot().quantile(0.5), 17.0);
  EXPECT_DOUBLE_EQ(one.snapshot().quantile(1.0), 17.0);
}

// --- the acceptance-criterion invariant: K-shard merge == single run --------

TEST(TelemetryHistogram, ShardMergeEqualsSingleRunBucketForBucket) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kSamples = 20'000;
  std::mt19937_64 rng(0x5EED);
  // Log-uniform latencies spanning ns to tens of seconds.
  std::uniform_real_distribution<double> exponent(0.0, 34.0);

  LatencyHistogram single;
  std::vector<std::unique_ptr<LatencyHistogram>> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    shards.push_back(std::make_unique<LatencyHistogram>());
  }
  for (std::size_t i = 0; i < kSamples; ++i) {
    const auto value = static_cast<std::uint64_t>(
        std::exp2(exponent(rng)));
    single.record(value);
    shards[i % kShards]->record(value);  // round-robin sharding
  }

  LatencyHistogram merged;
  for (const auto& shard : shards) {
    merged.merge(*shard);
  }

  const HistogramSnapshot lhs = merged.snapshot();
  const HistogramSnapshot rhs = single.snapshot();
  EXPECT_EQ(lhs.count, rhs.count);
  EXPECT_EQ(lhs.sum, rhs.sum);
  EXPECT_EQ(lhs.min, rhs.min);
  EXPECT_EQ(lhs.max, rhs.max);
  ASSERT_EQ(lhs.buckets.size(), rhs.buckets.size());
  for (std::size_t i = 0; i < lhs.buckets.size(); ++i) {
    ASSERT_EQ(lhs.buckets[i], rhs.buckets[i]) << "bucket " << i;
  }
}

TEST(TelemetryHistogram, MergeIsOrderInvariant) {
  LatencyHistogram a1;
  LatencyHistogram b1;
  LatencyHistogram a2;
  LatencyHistogram b2;
  for (std::uint64_t v : {3u, 900u, 40'000u, 123u}) {
    a1.record(v);
    a2.record(v);
  }
  for (std::uint64_t v : {9u, 900u, 7'777u}) {
    b1.record(v);
    b2.record(v);
  }
  LatencyHistogram ab;
  ab.merge(a1);
  ab.merge(b1);
  LatencyHistogram ba;
  ba.merge(b2);
  ba.merge(a2);
  const HistogramSnapshot lhs = ab.snapshot();
  const HistogramSnapshot rhs = ba.snapshot();
  EXPECT_EQ(lhs.count, rhs.count);
  EXPECT_EQ(lhs.sum, rhs.sum);
  EXPECT_EQ(lhs.min, rhs.min);
  EXPECT_EQ(lhs.max, rhs.max);
  EXPECT_EQ(lhs.buckets, rhs.buckets);
}

TEST(TelemetryHistogram, ConcurrentRecordingLosesNothing) {
  LatencyHistogram histogram;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        histogram.record(t * 1000 + (i & 255));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  const HistogramSnapshot snap = histogram.snapshot();
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 7'000u + 255u);
}

// --- registry ----------------------------------------------------------------

TEST(TelemetryRegistry, SameNameAndLabelsInternToOneInstrument) {
  Registry registry;
  const auto a = registry.counter("requests_total");
  const auto b = registry.counter("requests_total");
  const auto c = registry.counter("requests_total",
                                  telemetry::label("shard", "1"));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  a->add(2);
  EXPECT_EQ(b->value(), 2u);
  EXPECT_EQ(registry.counters().size(), 2u);
}

TEST(TelemetryRegistry, EntriesSortedAndTyped) {
  Registry registry;
  registry.gauge("zeta")->set(1.0);
  registry.gauge("alpha")->set(2.0);
  const auto gauges = registry.gauges();
  ASSERT_EQ(gauges.size(), 2u);
  EXPECT_EQ(gauges[0].name, "alpha");
  EXPECT_EQ(gauges[1].name, "zeta");
}

TEST(TelemetryRegistry, LabelFormatsPrometheusPair) {
  EXPECT_EQ(telemetry::label("backend", "overlap-save-fir"),
            "backend=\"overlap-save-fir\"");
}

// --- exporters ---------------------------------------------------------------

TEST(TelemetryExport, PrometheusExpositionShape) {
  Registry registry;
  registry.counter("rfade_test_requests_total",
                   telemetry::label("kind", "unit"))
      ->add(5);
  registry.gauge("rfade_test_depth")->set(3.5);
  const auto histogram = registry.histogram("rfade_test_latency_ns");
  histogram->record(100);
  histogram->record(100);
  histogram->record(90'000);

  const std::string text = telemetry::prometheus_text(registry);
  EXPECT_NE(text.find("# TYPE rfade_test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rfade_test_requests_total{kind=\"unit\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rfade_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("rfade_test_depth 3.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rfade_test_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("rfade_test_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("rfade_test_latency_ns_sum 90200"), std::string::npos);
  EXPECT_NE(text.find("rfade_test_latency_ns_count 3"), std::string::npos);

  // Cumulative bucket series must be non-decreasing and end at count.
  std::uint64_t last = 0;
  std::size_t bucket_lines = 0;
  std::size_t pos = 0;
  while ((pos = text.find("rfade_test_latency_ns_bucket", pos)) !=
         std::string::npos) {
    const std::size_t space = text.find(' ', pos);
    const std::size_t eol = text.find('\n', space);
    const std::uint64_t cumulative =
        std::stoull(text.substr(space + 1, eol - space - 1));
    EXPECT_GE(cumulative, last);
    last = cumulative;
    ++bucket_lines;
    pos = eol;
  }
  EXPECT_GE(bucket_lines, 3u);  // two occupied buckets + the +Inf line
  EXPECT_EQ(last, 3u);
}

TEST(TelemetryExport, JsonSnapshotParsesAndCarriesQuantiles) {
  Registry registry;
  registry.counter("c_total")->add(1);
  registry.gauge("g")->set(-2.25);
  const auto histogram = registry.histogram(
      "h_ns", telemetry::label("backend", "independent-block"));
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    histogram->record(v);
  }

  const std::string json = telemetry::json_snapshot(registry);
  const auto parsed = JsonParser(json).parse();
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  const JsonObject& root = parsed->object();
  ASSERT_EQ(root.count("schema_version"), 1u);
  EXPECT_EQ(root.at("schema_version").number(),
            static_cast<double>(telemetry::kJsonSchemaVersion));
  ASSERT_EQ(root.count("counters"), 1u);
  ASSERT_EQ(root.count("gauges"), 1u);
  ASSERT_EQ(root.count("histograms"), 1u);

  const JsonArray& histograms = root.at("histograms").array();
  ASSERT_EQ(histograms.size(), 1u);
  const JsonObject& h = histograms[0].object();
  EXPECT_EQ(h.at("name").string(), "h_ns");
  EXPECT_EQ(h.at("labels").string(), "backend=\"independent-block\"");
  EXPECT_EQ(h.at("count").number(), 1000.0);
  EXPECT_EQ(h.at("max").number(), 1000.0);
  EXPECT_NEAR(h.at("p50").number(), 500.0, 500.0 * 0.033);
  EXPECT_NEAR(h.at("p99").number(), 990.0, 990.0 * 0.033);
  ASSERT_TRUE(h.at("buckets").is_array());
  EXPECT_FALSE(h.at("buckets").array().empty());

  const JsonObject& g = root.at("gauges").array()[0].object();
  EXPECT_DOUBLE_EQ(g.at("value").number(), -2.25);
}

// --- tracing -----------------------------------------------------------------

TEST(TelemetryTrace, ChromeTraceJsonIsWellFormedAndNests) {
  const TelemetryGuard guard;
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(telemetry::kCompiledIn);

  {
    const Span outer("outer");
    {
      const Span inner("inner");
      // A tiny busy wait so dur > 0 even with coarse clocks.
      volatile int sink = 0;
      for (int i = 0; i < 1000; ++i) {
        sink = sink + i;
      }
    }
  }
  std::thread([] { const Span other("other-thread"); }).join();

  tracer.set_enabled(false);
  const std::string json = tracer.chrome_trace_json();
  const auto parsed = JsonParser(json).parse();
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  const JsonObject& root = parsed->object();
  ASSERT_EQ(root.count("traceEvents"), 1u);
  const JsonArray& events = root.at("traceEvents").array();

  if (!telemetry::kCompiledIn) {
    EXPECT_TRUE(events.empty());
    return;
  }
  ASSERT_EQ(events.size(), 3u);

  const JsonObject* outer_event = nullptr;
  const JsonObject* inner_event = nullptr;
  for (const JsonValue& value : events) {
    ASSERT_TRUE(value.is_object());
    const JsonObject& event = value.object();
    // Chrome trace-event required fields for complete events.
    ASSERT_EQ(event.count("name"), 1u);
    ASSERT_EQ(event.at("ph").string(), "X");
    ASSERT_GE(event.at("ts").number(), 0.0);
    ASSERT_GE(event.at("dur").number(), 0.0);
    ASSERT_EQ(event.count("pid"), 1u);
    ASSERT_EQ(event.count("tid"), 1u);
    if (event.at("name").string() == "outer") {
      outer_event = &event;
    }
    if (event.at("name").string() == "inner") {
      inner_event = &event;
    }
  }
  ASSERT_NE(outer_event, nullptr);
  ASSERT_NE(inner_event, nullptr);
  // Scoped nesting: the inner span's interval lies inside the outer's
  // on the same thread row — what the trace viewer's flame graph needs.
  EXPECT_EQ(outer_event->at("tid").number(), inner_event->at("tid").number());
  EXPECT_LE(outer_event->at("ts").number(), inner_event->at("ts").number());
  EXPECT_GE(outer_event->at("ts").number() + outer_event->at("dur").number(),
            inner_event->at("ts").number() + inner_event->at("dur").number());
}

TEST(TelemetryTrace, DisabledSpansRecordNothing) {
  const TelemetryGuard guard;
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(false);
  {
    const Span span("invisible");
  }
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TelemetryTrace, CapacityBoundsTheBufferAndCountsDrops) {
  const TelemetryGuard guard;
  Tracer& tracer = Tracer::global();
  tracer.clear();
  const std::size_t original_capacity = tracer.capacity();
  tracer.set_capacity(2);
  tracer.set_enabled(telemetry::kCompiledIn);
  for (int i = 0; i < 5; ++i) {
    const Span span("spam");
  }
  tracer.set_enabled(false);
  if (telemetry::kCompiledIn) {
    EXPECT_EQ(tracer.events().size(), 2u);
    EXPECT_EQ(tracer.dropped(), 3u);
  }
  tracer.set_capacity(original_capacity);
}

// --- disabled-mode fast paths ------------------------------------------------

TEST(TelemetryDisabled, ScopedTimerRecordsOnlyWhenEnabled) {
  const TelemetryGuard guard;
  LatencyHistogram histogram;
  telemetry::set_enabled(false);
  {
    const telemetry::ScopedTimer timer(&histogram);
  }
  EXPECT_EQ(histogram.count(), 0u);
  {
    const telemetry::ScopedTimer timer(nullptr);  // null target is always safe
  }

  telemetry::set_enabled(true);
  {
    const telemetry::ScopedTimer timer(&histogram);
  }
  EXPECT_EQ(histogram.count(), telemetry::kCompiledIn ? 1u : 0u);
}

TEST(TelemetryDisabled, RecordIfEnabledGates) {
  const TelemetryGuard guard;
  LatencyHistogram histogram;
  telemetry::set_enabled(false);
  telemetry::record_if_enabled(&histogram, 42);
  EXPECT_EQ(histogram.count(), 0u);
  telemetry::set_enabled(true);
  telemetry::record_if_enabled(&histogram, 42);
  EXPECT_EQ(histogram.count(), telemetry::kCompiledIn ? 1u : 0u);
}

// --- serving-layer wiring ----------------------------------------------------

#if RFADE_TELEMETRY

TEST(TelemetryWiring, PlanCacheCountersLiveOnTheGlobalRegistry) {
  // Each PlanCache instance registers distinctly-labelled counters;
  // stats() is a view over exactly those counters.
  service::PlanCache cache(2);
  const auto spec = service::ChannelSpec::Builder()
                        .rayleigh(numeric::CMatrix::identity(2))
                        .instant()
                        .block_size(16)
                        .build();
  (void)cache.get_or_compile(spec);
  (void)cache.get_or_compile(spec);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);

  std::uint64_t hits_on_registry = 0;
  std::uint64_t labelled_instances = 0;
  for (const telemetry::CounterEntry& entry :
       Registry::global().counters()) {
    if (entry.name == "rfade_plan_cache_hits_total") {
      ++labelled_instances;
      hits_on_registry += entry.value;
    }
  }
  EXPECT_GE(labelled_instances, 1u);  // ours, plus any older caches
  EXPECT_GE(hits_on_registry, 1u);
  const std::string text = telemetry::prometheus_text();
  EXPECT_NE(text.find("rfade_plan_cache_hits_total{cache="),
            std::string::npos);
}

TEST(TelemetryWiring, SessionPullsRecordLatencyWhenEnabled) {
  const TelemetryGuard guard;
  const auto before_histogram =
      Registry::global().histogram("rfade_session_next_block_ns");
  const std::uint64_t before = before_histogram->count();

  service::ChannelService service_instance;
  const auto spec = service::ChannelSpec::Builder()
                        .rayleigh(numeric::CMatrix::identity(2))
                        .idft_size(256)
                        .doppler(0.05)
                        .build();
  auto session = service_instance.open_session(spec, 7);
  (void)session.next_block();  // idle: must not record
  EXPECT_EQ(before_histogram->count(), before);

  telemetry::set_enabled(true);
  (void)session.next_block();
  EXPECT_EQ(before_histogram->count(), before + 1);
  const std::uint64_t seeks_before =
      Registry::global().counter("rfade_session_seeks_total")->value();
  session.seek(0);
  EXPECT_EQ(Registry::global().counter("rfade_session_seeks_total")->value(),
            seeks_before + 1);
}

TEST(TelemetryWiring, StreamBackendHistogramIsLabelled) {
  const TelemetryGuard guard;
  telemetry::set_enabled(true);
  core::FadingStreamOptions options;
  options.idft_size = 256;
  options.seed = 11;
  core::FadingStream stream(numeric::CMatrix::identity(2), options);
  (void)stream.next_block();
  const auto histogram = Registry::global().histogram(
      "rfade_stream_block_fill_ns",
      telemetry::label("backend", "independent-block") + "," +
          telemetry::label("precision", "f64"));
  EXPECT_GE(histogram->count(), 1u);
}

#endif  // RFADE_TELEMETRY

}  // namespace
