// Tests for the composite-fading subsystem (scenario/composite/ + the
// core GainSource hook): the multiplicative gain threaded through every
// SamplePipeline / FadingStream hot path (unit gain bit-identical to the
// gain-free Rayleigh paths — the acceptance anchor), the Gudmundson
// shadowing process (marginal, exponential ACF, cross-branch coloring,
// seekability), Suzuki generation (KS against the exact lognormal
// mixture, streaming next_block/seek == keyed blocks on every backend)
// and the Gaussian-copula marginal transform (Nakagami-m / Weibull KS,
// Rayleigh pre-distortion anchor, realized envelope correlation).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "rfade/core/envelope_correlation.hpp"
#include "rfade/core/fading_stream.hpp"
#include "rfade/core/gain_source.hpp"
#include "rfade/core/plan.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/metrics/accumulators.hpp"
#include "rfade/metrics/health.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/special/bessel.hpp"
#include "rfade/scenario/composite/copula.hpp"
#include "rfade/scenario/composite/shadowing.hpp"
#include "rfade/scenario/composite/suzuki.hpp"
#include "rfade/stats/moments.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using core::ColoringPlan;
using core::FadingStream;
using core::FadingStreamOptions;
using core::GainSource;
using core::SamplePipeline;
using numeric::cdouble;
using numeric::CMatrix;
using numeric::RMatrix;
using numeric::RVector;
using scenario::composite::CopulaMarginal;
using scenario::composite::CopulaMarginalTransform;
using scenario::composite::ShadowingDesign;
using scenario::composite::ShadowingProcess;
using scenario::composite::ShadowingSpec;
using scenario::composite::SuzukiGenerator;

CMatrix tridiagonal_covariance(std::size_t n) {
  CMatrix k = CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = cdouble(0.4, 0.2);
    k(i + 1, i) = cdouble(0.4, -0.2);
  }
  return k;
}

ShadowingSpec fast_shadowing() {
  // Unphysically fast shadowing (decorrelates in a few samples) so
  // statistical tests see many independent shadowing draws cheaply.
  ShadowingSpec spec;
  spec.sigma_db = 6.0;
  spec.decorrelation_samples = 4.0;
  spec.spacing = 1;
  return spec;
}

// --- GainSource contracts ----------------------------------------------------

TEST(GainSource, UnitAndAllOnesCollapse) {
  EXPECT_TRUE(GainSource().is_unit());
  EXPECT_TRUE(GainSource::unit().is_unit());
  EXPECT_TRUE(GainSource::constant({}).is_unit());
  EXPECT_TRUE(GainSource::constant({1.0, 1.0, 1.0}).is_unit());
  EXPECT_EQ(GainSource::constant({1.0, 1.0}).dimension(), 0u);
  const GainSource g = GainSource::constant({2.0, 0.5});
  EXPECT_FALSE(g.is_unit());
  EXPECT_TRUE(g.is_constant());
  EXPECT_FALSE(g.is_time_varying());
  EXPECT_EQ(g.dimension(), 2u);
}

TEST(GainSource, RejectsNonPositiveAndNonFinite) {
  EXPECT_THROW((void)GainSource::constant({1.0, 0.0}), ContractViolation);
  EXPECT_THROW((void)GainSource::constant({-2.0}), ContractViolation);
  EXPECT_THROW((void)GainSource::constant({std::nan("")}),
               ContractViolation);
  EXPECT_THROW(
      (void)GainSource::constant({std::numeric_limits<double>::infinity()}),
      ContractViolation);
  EXPECT_THROW((void)GainSource::dynamic(nullptr), ContractViolation);
}

TEST(GainSource, PipelineRejectsDimensionMismatch) {
  const auto plan = ColoringPlan::create(tridiagonal_covariance(4));
  core::PipelineOptions options;
  options.gain = GainSource::constant({2.0, 3.0});  // N = 2 != 4
  EXPECT_THROW((void)SamplePipeline(plan, options), ContractViolation);
  options.gain = GainSource::dynamic(
      std::make_shared<const ShadowingProcess>(3, fast_shadowing(), 1));
  EXPECT_THROW((void)SamplePipeline(plan, options), ContractViolation);
}

TEST(GainSource, GainsAtAndMultiplyRows) {
  const GainSource g = GainSource::constant({2.0, 0.5});
  std::vector<double> gains(2);
  g.gains_at(7, gains);
  EXPECT_EQ(gains[0], 2.0);
  EXPECT_EQ(gains[1], 0.5);
  std::vector<cdouble> rows = {cdouble(1.0, -1.0), cdouble(3.0, 2.0),
                               cdouble(0.5, 0.0), cdouble(-2.0, 4.0)};
  g.multiply_rows(0, 2, 2, rows.data());
  EXPECT_EQ(rows[0], cdouble(2.0, -2.0));
  EXPECT_EQ(rows[1], cdouble(1.5, 1.0));
  EXPECT_EQ(rows[2], cdouble(1.0, 0.0));
  EXPECT_EQ(rows[3], cdouble(-1.0, 2.0));
  // The unit gain writes ones and leaves rows untouched.
  std::vector<double> unit_gains(5);
  GainSource::unit().gains_at(3, unit_gains);
  for (double v : unit_gains) {
    EXPECT_EQ(v, 1.0);
  }
}

// --- bit-identity of the unit-gain paths (acceptance anchor) -----------------

TEST(GainSource, UnitGainBitIdenticalOnEveryPipelinePath) {
  const auto plan = ColoringPlan::create(tridiagonal_covariance(6));
  const SamplePipeline plain(plan);
  core::PipelineOptions with_unit;
  with_unit.gain = GainSource::unit();
  const SamplePipeline unit(plan, with_unit);
  core::PipelineOptions with_ones;
  with_ones.gain = GainSource::constant(RVector(6, 1.0));
  const SamplePipeline ones(plan, with_ones);

  EXPECT_FALSE(unit.has_gain());
  EXPECT_FALSE(ones.has_gain());

  // Bulk-keyed block, parallel stream, per-draw and rng-batched paths.
  EXPECT_EQ(unit.sample_block(333, 0xFEED, 2), plain.sample_block(333, 0xFEED, 2));
  EXPECT_EQ(unit.sample_stream(5000, 0xCAFE), plain.sample_stream(5000, 0xCAFE));
  EXPECT_EQ(ones.sample_stream(5000, 0xCAFE), plain.sample_stream(5000, 0xCAFE));
  random::Rng a(7);
  random::Rng b(7);
  EXPECT_EQ(unit.sample_block(257, a), plain.sample_block(257, b));
  random::Rng c(9);
  random::Rng d(9);
  numeric::CVector zu(6);
  numeric::CVector zp(6);
  for (int i = 0; i < 50; ++i) {
    unit.sample_into(c, zu, static_cast<std::uint64_t>(i));
    plain.sample_into(d, zp, static_cast<std::uint64_t>(i));
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(zu[j], zp[j]);
    }
  }
  // color_block path.
  const CMatrix w = plain.sample_block(64, 0xB0B, 0);
  EXPECT_EQ(unit.color_block(w, 2.0), plain.color_block(w, 2.0));
}

TEST(GainSource, UnitGainBitIdenticalOnEveryStreamBackend) {
  const CMatrix k = tridiagonal_covariance(4);
  for (const doppler::StreamBackend backend :
       {doppler::StreamBackend::IndependentBlock,
        doppler::StreamBackend::WindowedOverlapAdd,
        doppler::StreamBackend::OverlapSaveFir}) {
    FadingStreamOptions options;
    options.backend = backend;
    options.idft_size = 256;
    options.normalized_doppler = 0.05;
    options.seed = 0x5EED;
    FadingStream plain(k, options);
    FadingStreamOptions with_unit = options;
    with_unit.gain = GainSource::unit();
    FadingStream unit(k, with_unit);
    for (int b = 0; b < 3; ++b) {
      EXPECT_EQ(unit.next_block(), plain.next_block())
          << doppler::stream_backend_name(backend) << " block " << b;
    }
    EXPECT_EQ(unit.generate_block(0x5EED, 5), plain.generate_block(0x5EED, 5))
        << doppler::stream_backend_name(backend);
  }
}

TEST(GainSource, ConstantGainScalesColumnsExactly) {
  const auto plan = ColoringPlan::create(tridiagonal_covariance(3));
  const SamplePipeline plain(plan);
  core::PipelineOptions options;
  const RVector gains = {2.0, 0.25, 3.5};
  options.gain = GainSource::constant(gains);
  const SamplePipeline gained(plan, options);
  const CMatrix z = plain.sample_block(200, 0xD0, 0);
  const CMatrix g = gained.sample_block(200, 0xD0, 0);
  for (std::size_t t = 0; t < z.rows(); ++t) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(g(t, j), z(t, j) * gains[j]);
    }
  }
}

TEST(GainSource, DynamicGainBatchedMatchesPerDraw) {
  // With a time-varying gain the rng-batched path must still equal
  // per-draw sampling at matching instants.
  const auto plan = ColoringPlan::create(tridiagonal_covariance(3));
  core::PipelineOptions options;
  options.gain = GainSource::dynamic(
      std::make_shared<const ShadowingProcess>(3, fast_shadowing(), 0xAB));
  const SamplePipeline pipeline(plan, options);
  ASSERT_TRUE(pipeline.has_gain());
  ASSERT_TRUE(pipeline.has_time_varying_gain());
  random::Rng rng_block(31);
  random::Rng rng_draw(31);
  const CMatrix block = pipeline.sample_block(100, rng_block);
  numeric::CVector z(3);
  for (std::size_t t = 0; t < block.rows(); ++t) {
    pipeline.sample_into(rng_draw, z, t);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(block(t, j), z[j]) << "row " << t;
    }
  }
  // And the parallel stream is thread-count independent.
  core::PipelineOptions serial = options;
  serial.block_size = 512;
  serial.parallel = false;
  core::PipelineOptions parallel = serial;
  parallel.parallel = true;
  EXPECT_EQ(SamplePipeline(plan, serial).sample_stream(3000, 5),
            SamplePipeline(plan, parallel).sample_stream(3000, 5));
}

// --- ShadowingProcess --------------------------------------------------------

TEST(Shadowing, RejectsOutOfRangeParameters) {
  ShadowingSpec spec;
  spec.sigma_db = 0.0;
  EXPECT_THROW((void)ShadowingDesign(2, spec), ContractViolation);
  spec = {};
  spec.sigma_db = 25.0;
  EXPECT_THROW((void)ShadowingDesign(2, spec), ContractViolation);
  spec = {};
  spec.mean_db = 60.0;
  EXPECT_THROW((void)ShadowingDesign(2, spec), ContractViolation);
  spec = {};
  spec.decorrelation_samples = 0.5;
  EXPECT_THROW((void)ShadowingDesign(2, spec), ContractViolation);
  spec = {};
  spec.spacing = 0;
  EXPECT_THROW((void)ShadowingDesign(2, spec), ContractViolation);
  spec = {};
  spec.truncation_tolerance = 0.0;
  EXPECT_THROW((void)ShadowingDesign(2, spec), ContractViolation);
  spec = {};
  spec.branch_correlation = RMatrix(3, 3, 0.0);  // wrong size for N = 2
  EXPECT_THROW((void)ShadowingDesign(2, spec), ContractViolation);
  spec = {};
  spec.branch_correlation = RMatrix(2, 2, 0.0);
  spec.branch_correlation(0, 0) = 1.0;
  spec.branch_correlation(1, 1) = 0.5;  // diagonal must be 1
  EXPECT_THROW((void)ShadowingDesign(2, spec), ContractViolation);
  spec.branch_correlation(1, 1) = 1.0;
  spec.branch_correlation(0, 1) = 0.4;
  spec.branch_correlation(1, 0) = -0.4;  // asymmetric
  EXPECT_THROW((void)ShadowingDesign(2, spec), ContractViolation);
  spec.branch_correlation(1, 0) = 0.4;
  EXPECT_NO_THROW((void)ShadowingDesign(2, spec));
  EXPECT_THROW((void)ShadowingDesign(0, ShadowingSpec{}), ContractViolation);
}

TEST(Shadowing, GainsArePureFunctionsOfSeedAndInstant) {
  ShadowingSpec spec;
  spec.sigma_db = 5.0;
  spec.decorrelation_samples = 64.0;
  spec.spacing = 8;
  const ShadowingProcess process(3, spec, 0xC0DE);
  std::vector<double> whole(900 * 3);
  process.gains_for_rows(100, 900, whole);
  // Split calls reproduce the same gains (no carried state).
  std::vector<double> head(500 * 3);
  std::vector<double> tail(400 * 3);
  process.gains_for_rows(100, 500, head);
  process.gains_for_rows(600, 400, tail);
  for (std::size_t i = 0; i < head.size(); ++i) {
    EXPECT_EQ(head[i], whole[i]);
  }
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i], whole[500 * 3 + i]);
  }
  for (double g : whole) {
    EXPECT_GT(g, 0.0);
  }
  // A different seed is a different realisation.
  const ShadowingProcess other(3, spec, 0xC0DF);
  std::vector<double> other_gains(900 * 3);
  other.gains_for_rows(100, 900, other_gains);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < whole.size(); ++i) {
    differing += other_gains[i] != whole[i] ? 1 : 0;
  }
  EXPECT_GT(differing, whole.size() / 2);
}

TEST(Shadowing, NodeMarginalAndGudmundsonAcf) {
  ShadowingSpec spec;
  spec.sigma_db = 6.0;
  spec.mean_db = -2.0;
  spec.decorrelation_samples = 8.0;
  spec.spacing = 1;
  const ShadowingProcess process(1, spec, 0x51);
  const std::size_t count = 200000;
  std::vector<double> gains(count);
  process.gains_for_rows(0, count, gains);
  // Recover the dB field: spacing 1 means no interpolation.
  std::vector<double> db(count);
  for (std::size_t i = 0; i < count; ++i) {
    db[i] = 20.0 * std::log10(gains[i]);
  }
  stats::RunningStats moments;
  for (double v : db) {
    moments.add(v);
  }
  EXPECT_NEAR(moments.mean(), -2.0, 0.1);
  EXPECT_NEAR(std::sqrt(moments.variance()), 6.0, 0.1);
  // Empirical ACF vs Gudmundson's e^{-d/D} on the node grid.
  const double mean = moments.mean();
  const double var = moments.variance();
  for (const std::size_t lag : {1ul, 4ul, 8ul, 16ul}) {
    double acc = 0.0;
    for (std::size_t i = 0; i + lag < count; ++i) {
      acc += (db[i] - mean) * (db[i + lag] - mean);
    }
    const double rho = acc / (static_cast<double>(count - lag) * var);
    const double expected =
        std::exp(-static_cast<double>(lag) / spec.decorrelation_samples);
    EXPECT_NEAR(rho, expected, 0.02) << "lag " << lag;
  }
  // node_db agrees with the recovered field.
  const RVector first = process.node_db(0);
  EXPECT_NEAR(first[0], db[0], 1e-12);
}

TEST(Shadowing, CrossBranchCorrelationThroughColoringPlan) {
  ShadowingSpec spec = fast_shadowing();
  spec.branch_correlation = RMatrix(2, 2, 0.0);
  spec.branch_correlation(0, 0) = spec.branch_correlation(1, 1) = 1.0;
  spec.branch_correlation(0, 1) = spec.branch_correlation(1, 0) = 0.7;
  const ShadowingProcess process(2, spec, 0x7E57);
  EXPECT_NEAR(process.design()->effective_branch_correlation()(0, 1), 0.7,
              1e-12);
  const std::size_t count = 120000;
  std::vector<double> gains(count * 2);
  process.gains_for_rows(0, count, gains);
  stats::RunningStats s0;
  stats::RunningStats s1;
  double cross = 0.0;
  std::vector<double> db0(count);
  std::vector<double> db1(count);
  for (std::size_t i = 0; i < count; ++i) {
    db0[i] = 20.0 * std::log10(gains[2 * i]);
    db1[i] = 20.0 * std::log10(gains[2 * i + 1]);
    s0.add(db0[i]);
    s1.add(db1[i]);
  }
  for (std::size_t i = 0; i < count; ++i) {
    cross += (db0[i] - s0.mean()) * (db1[i] - s1.mean());
  }
  const double rho = cross / (static_cast<double>(count) *
                              std::sqrt(s0.variance() * s1.variance()));
  EXPECT_NEAR(rho, 0.7, 0.03);
}

TEST(Shadowing, NonPsdBranchCorrelationIsForced) {
  // A 3-branch "correlation" that is not PSD: the process's own coloring
  // plan must force it (the paper's step 3) instead of failing.
  ShadowingSpec spec = fast_shadowing();
  spec.branch_correlation = RMatrix(3, 3, 0.9);
  for (std::size_t i = 0; i < 3; ++i) {
    spec.branch_correlation(i, i) = 1.0;
  }
  spec.branch_correlation(0, 1) = spec.branch_correlation(1, 0) = -0.9;
  const ShadowingDesign design(3, spec);
  const RMatrix& effective = design.effective_branch_correlation();
  for (std::size_t i = 0; i < 3; ++i) {
    // Eigenvalue clipping may move the diagonal (it is the Frobenius-
    // nearest PSD matrix, not a diagonal-preserving one); the marginal
    // accounting must track the *effective* per-branch dB deviation.
    EXPECT_GT(effective(i, i), 0.0);
    EXPECT_NEAR(design.effective_sigma_db(i),
                spec.sigma_db * std::sqrt(effective(i, i)), 1e-12);
  }
  // The realised matrix is PSD: a second plan accepts it unchanged.
  const auto forced = ColoringPlan::create(numeric::to_complex(effective));
  EXPECT_LT(forced->coloring().psd.frobenius_distance, 1e-9);
}

// --- Suzuki ------------------------------------------------------------------

TEST(Suzuki, MarginalsPassKsAgainstLognormalMixture) {
  // Fast shadowing + stride 32 so retained samples are effectively
  // independent draws of the composite law (see validate_suzuki docs).
  ShadowingSpec spec = fast_shadowing();
  const SuzukiGenerator generator(tridiagonal_covariance(3), spec);
  core::ValidationOptions options;
  options.samples = 60000;
  options.chunk_size = 2048;
  options.ks_samples_per_branch = 15000;
  const auto report = validate_suzuki(generator, options, /*stride=*/32);
  EXPECT_LT(report.max_mean_rel_error, 0.02);
  EXPECT_LT(report.max_second_moment_rel_error, 0.05);
  EXPECT_GT(report.worst_ks_p_value, 1e-3);
}

TEST(Suzuki, MomentsHoldUnderPhysicalSlowShadowing) {
  // A physically-paced configuration (decorrelation over thousands of
  // samples, coarse node grid): the mean/second-moment columns stay
  // consistent even though consecutive samples are strongly dependent.
  ShadowingSpec spec;
  spec.sigma_db = 4.0;
  spec.decorrelation_samples = 1024.0;
  spec.spacing = 64;
  const SuzukiGenerator generator(tridiagonal_covariance(2), spec);
  core::ValidationOptions options;
  options.samples = 400000;
  options.seed = 0x5A;
  const auto report = validate_suzuki(generator, options, /*stride=*/16);
  // ~25 shadowing decorrelation lengths in the thinned trace: moments
  // converge slowly, so the tolerances are loose.
  EXPECT_LT(report.max_mean_rel_error, 0.08);
  EXPECT_LT(report.max_second_moment_rel_error, 0.2);
}

TEST(Suzuki, StreamingMatchesKeyedBlocksAndSeeks) {
  // Acceptance: streaming Suzuki next_block()/seek() == keyed
  // generate_block on every backend.
  ShadowingSpec spec;
  spec.sigma_db = 5.0;
  spec.decorrelation_samples = 256.0;
  spec.spacing = 16;
  const SuzukiGenerator generator(tridiagonal_covariance(3), spec);
  for (const doppler::StreamBackend backend :
       {doppler::StreamBackend::IndependentBlock,
        doppler::StreamBackend::WindowedOverlapAdd,
        doppler::StreamBackend::OverlapSaveFir}) {
    FadingStreamOptions options;
    options.backend = backend;
    options.idft_size = 256;
    options.seed = 0x5EED + static_cast<int>(backend);
    FadingStream stream = generator.make_stream(options);
    std::vector<CMatrix> blocks;
    for (int b = 0; b < 3; ++b) {
      blocks.push_back(stream.next_block());
    }
    for (int b = 0; b < 3; ++b) {
      EXPECT_EQ(blocks[b], stream.generate_block(options.seed, b))
          << doppler::stream_backend_name(backend) << " block " << b;
    }
    stream.seek(1);
    EXPECT_EQ(stream.next_block(), blocks[1])
        << doppler::stream_backend_name(backend) << " after seek";
  }
}

TEST(Suzuki, StreamGainIsContinuousAcrossBlockBoundaries) {
  // The shadowing trajectory is indexed by absolute instant, so the
  // per-sample envelope gain ratio across a block seam must move slowly
  // (no restart): compare the shadowing gains straddling the boundary.
  ShadowingSpec spec;
  spec.sigma_db = 6.0;
  spec.decorrelation_samples = 4096.0;
  spec.spacing = 32;
  const ShadowingProcess process(1, spec, 0xBEEF);
  const std::size_t block = 512;
  std::vector<double> gains(2 * block);
  process.gains_for_rows(0, 2 * block, gains);
  // Ratio across the seam stays within a few percent at D = 4096.
  const double before = gains[block - 1];
  const double after = gains[block];
  EXPECT_NEAR(after / before, 1.0, 0.05);
}

TEST(Suzuki, StreamAcfFollowsJ0TimesGudmundsonProductLaw) {
  // The PR-5 leftover: the composite stream's normalised complex ACF is
  // the Rayleigh core's J0(2 pi fm d) times the lognormal-gain factor
  // exp(sigma_n^2 (e^{-d/D} - 1)), sigma_n = sigma_dB ln(10)/20 — the
  // "J0 x Gudmundson-exponential" product law — measured here with the
  // streaming metrics::AcfAccumulator over real Suzuki blocks.
  ShadowingSpec spec;
  spec.sigma_db = 8.0;
  spec.decorrelation_samples = 32.0;
  spec.spacing = 1;  // exact per-sample synthesis: no interpolation bias
  const double fm = 0.02;
  const SuzukiGenerator generator(CMatrix::identity(1), spec);

  // Two estimator traps handled here: (a) at fm = 0.02 the Jakes
  // spectrum occupies only a handful of bins of a small IDFT grid, so
  // the core's own ACF tracks J0 at lags 16-24 only for idft_size >=
  // 1024; (b) the lognormal gain (sigma_n ~ 0.92) inflates the ACF
  // estimator variance by its fourth-moment ratio e^{4 sigma_n^2} ~
  // 30x.  Shard over four independent seeds and merge — the production
  // pattern the accumulator's merge() exists for.
  const std::vector<std::size_t> lags{4, 8, 16, 24};
  metrics::AcfAccumulator accumulator(1, lags);
  for (std::uint64_t seed : {0x5A2u, 0x5A3u, 0x5A4u, 0x5A5u}) {
    FadingStreamOptions options;
    options.backend = doppler::StreamBackend::OverlapSaveFir;
    options.idft_size = 1024;
    options.normalized_doppler = fm;
    options.seed = seed;
    FadingStream stream = generator.make_stream(options);
    metrics::AcfAccumulator shard(1, lags);
    for (int b = 0; b < 1500; ++b) {
      shard.accumulate(stream.next_block());
    }
    accumulator.merge(shard);
  }

  metrics::AnalyticReference reference;
  reference.normalized_doppler = fm;
  reference.branch_power = {1.0};
  reference.rayleigh = true;
  reference.shadowing =
      metrics::ShadowingReference{spec.sigma_db, spec.decorrelation_samples};

  for (const std::size_t lag : lags) {
    const double product_law = metrics::expected_acf(reference, lag);
    const double bare_j0 = special::bessel_j0(
        2.0 * 3.141592653589793 * fm * static_cast<double>(lag));
    const double measured = accumulator.autocorrelation(0, lag).real();
    EXPECT_NEAR(measured, product_law, 0.07) << "lag " << lag;
    // The shadowing factor is what closes the gap: the product law must
    // fit strictly better than the bare Rayleigh J0 reference.
    EXPECT_LT(std::abs(measured - product_law),
              std::abs(measured - bare_j0))
        << "lag " << lag;
  }

  // And the drift gate agrees: a Suzuki reference evaluates the ACF
  // family against the product law, within the default tolerance.
  for (const auto& report :
       metrics::evaluate_health(accumulator, reference, {})) {
    EXPECT_TRUE(report.ok) << "lag " << report.parameter << " drift "
                           << report.drift;
  }
}

TEST(Suzuki, RejectsNullPlan) {
  EXPECT_THROW(
      (void)SuzukiGenerator(std::shared_ptr<const ColoringPlan>(nullptr),
                            ShadowingSpec{}),
      ContractViolation);
  core::ValidationOptions options;
  const SuzukiGenerator generator(tridiagonal_covariance(2),
                                  fast_shadowing());
  EXPECT_THROW((void)validate_suzuki(generator, options, 0),
               ContractViolation);
}

// --- Copula marginal transform -----------------------------------------------

TEST(Copula, RayleighPairMatchesExactHypergeometricLaw) {
  // The Laguerre/Downton machinery must reproduce the closed-form 2F1
  // envelope-correlation law for Rayleigh marginals — the pre-distortion
  // anchor tying the copula layer to core/envelope_correlation.hpp.
  RMatrix target(2, 2, 0.0);
  target(0, 0) = target(1, 1) = 1.0;
  const CopulaMarginalTransform transform(
      target, {CopulaMarginal::rayleigh(1.0), CopulaMarginal::rayleigh(2.0)});
  for (double lambda : {0.0, 0.1, 0.3, 0.6, 0.85}) {
    const double expected = core::envelope_correlation_from_gaussian(
        cdouble(std::sqrt(lambda), 0.0), 1.0, 1.0);
    EXPECT_NEAR(transform.pair_envelope_correlation(0, 1, lambda), expected,
                2e-3)
        << "lambda " << lambda;
  }
  // Identical marginals at full power correlation approach rho_env = 1.
  EXPECT_NEAR(transform.pair_envelope_correlation(0, 0, 1.0), 1.0, 2e-3);
}

TEST(Copula, PredistortionHitsTargetForNakagami) {
  // Pre-distorted lambda differs from the naive target and the forward
  // map sends it back to the requested envelope correlation.
  RMatrix target(2, 2, 0.0);
  target(0, 0) = target(1, 1) = 1.0;
  target(0, 1) = target(1, 0) = 0.6;
  const CopulaMarginalTransform transform(
      target,
      {CopulaMarginal::nakagami(2.5, 1.0), CopulaMarginal::nakagami(4.0, 2.0)});
  const double lambda = transform.predistorted_power_correlation(0, 1);
  EXPECT_GT(lambda, 0.0);
  EXPECT_LT(lambda, 1.0);
  EXPECT_NEAR(transform.pair_envelope_correlation(0, 1, lambda), 0.6, 1e-6);
  // The realised prediction under the effective covariance matches too
  // (no PSD forcing needed for a 2x2 with lambda < 1).
  const RMatrix predicted = transform.predicted_envelope_correlation();
  EXPECT_NEAR(predicted(0, 1), 0.6, 1e-6);
}

TEST(Copula, NakagamiMarginalsPassKs) {
  // Acceptance: KS for m in {0.5, 1, 2.5, 4} with a correlated core.
  RMatrix target(4, 4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    target(i, i) = 1.0;
  }
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    target(i, i + 1) = target(i + 1, i) = 0.5;
  }
  const CopulaMarginalTransform transform(
      target,
      {CopulaMarginal::nakagami(0.5, 1.0), CopulaMarginal::nakagami(1.0, 2.0),
       CopulaMarginal::nakagami(2.5, 1.5),
       CopulaMarginal::nakagami(4.0, 0.8)});
  core::ValidationOptions options;
  options.samples = 60000;
  options.ks_samples_per_branch = 15000;
  const auto report = validate_copula(transform, options);
  EXPECT_LT(report.max_mean_rel_error, 0.01);
  EXPECT_LT(report.max_variance_rel_error, 0.05);
  EXPECT_GT(report.worst_ks_p_value, 1e-3);
}

TEST(Copula, WeibullMarginalsPassKs) {
  RMatrix target(2, 2, 0.0);
  target(0, 0) = target(1, 1) = 1.0;
  target(0, 1) = target(1, 0) = 0.4;
  const CopulaMarginalTransform transform(
      target,
      {CopulaMarginal::weibull(1.5, 1.0), CopulaMarginal::weibull(3.0, 2.0)});
  core::ValidationOptions options;
  options.samples = 60000;
  options.ks_samples_per_branch = 15000;
  const auto report = validate_copula(transform, options);
  EXPECT_LT(report.max_mean_rel_error, 0.01);
  EXPECT_GT(report.worst_ks_p_value, 1e-3);
}

TEST(Copula, RealizedEnvelopeCorrelationMatchesSpec) {
  // Acceptance: the measured Pearson correlation of the transformed
  // envelopes hits the envelope-domain spec (through the pre-distortion)
  // within Monte-Carlo tolerance.
  RMatrix target(3, 3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    target(i, i) = 1.0;
  }
  target(0, 1) = target(1, 0) = 0.7;
  target(0, 2) = target(2, 0) = 0.3;
  target(1, 2) = target(2, 1) = 0.5;
  const CopulaMarginalTransform transform(
      target,
      {CopulaMarginal::nakagami(0.5, 1.0), CopulaMarginal::nakagami(2.5, 1.0),
       CopulaMarginal::weibull(3.0, 1.0)});
  const std::size_t count = 300000;
  const RMatrix r = transform.sample_envelope_stream(count, 0xC0A);
  std::vector<stats::RunningStats> stats_per_branch(3);
  for (std::size_t t = 0; t < count; ++t) {
    for (std::size_t j = 0; j < 3; ++j) {
      stats_per_branch[j].add(r(t, j));
    }
  }
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      double cross = 0.0;
      for (std::size_t t = 0; t < count; ++t) {
        cross += (r(t, i) - stats_per_branch[i].mean()) *
                 (r(t, j) - stats_per_branch[j].mean());
      }
      const double rho =
          cross / (static_cast<double>(count) *
                   std::sqrt(stats_per_branch[i].variance() *
                             stats_per_branch[j].variance()));
      EXPECT_NEAR(rho, target(i, j), 0.015) << "pair " << i << "," << j;
    }
  }
}

TEST(Copula, ForcedCoreStillMatchesItsPrediction) {
  // A chain of strong targets over dissimilar marginals demands a
  // non-PSD Gaussian core; the plan forces it (paper Sec. 4.2) and
  // predicted_envelope_correlation() reports the realisable correlation
  // — the measured envelopes must match the prediction, not the
  // original (infeasible) spec.
  RMatrix target(4, 4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    target(i, i) = 1.0;
  }
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    target(i, i + 1) = target(i + 1, i) = 0.6;
  }
  const CopulaMarginalTransform transform(
      target,
      {CopulaMarginal::nakagami(0.5, 1.0), CopulaMarginal::nakagami(1.0, 1.5),
       CopulaMarginal::nakagami(2.5, 2.0),
       CopulaMarginal::nakagami(4.0, 2.5)});
  const RMatrix predicted = transform.predicted_envelope_correlation();
  // Forcing moved the chain correlations down from the spec.
  EXPECT_LT(predicted(0, 1), 0.6);
  const std::size_t count = 200000;
  const RMatrix r = transform.sample_envelope_stream(count, 0xF0);
  std::vector<stats::RunningStats> branch_stats(4);
  for (std::size_t t = 0; t < count; ++t) {
    for (std::size_t j = 0; j < 4; ++j) {
      branch_stats[j].add(r(t, j));
    }
  }
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    double cross = 0.0;
    for (std::size_t t = 0; t < count; ++t) {
      cross += (r(t, i) - branch_stats[i].mean()) *
               (r(t, i + 1) - branch_stats[i + 1].mean());
    }
    const double measured =
        cross / (static_cast<double>(count) *
                 std::sqrt(branch_stats[i].variance() *
                           branch_stats[i + 1].variance()));
    EXPECT_NEAR(measured, predicted(i, i + 1), 0.02) << "pair " << i;
  }
}

TEST(Copula, KeyedBlocksArePureAndStreamIsThreadCountFree) {
  RMatrix target(2, 2, 0.0);
  target(0, 0) = target(1, 1) = 1.0;
  target(0, 1) = target(1, 0) = 0.5;
  scenario::composite::CopulaOptions serial;
  serial.block_size = 512;
  serial.parallel = false;
  const CopulaMarginalTransform a(
      target,
      {CopulaMarginal::nakagami(2.5, 1.0), CopulaMarginal::weibull(2.0, 1.0)},
      serial);
  scenario::composite::CopulaOptions parallel = serial;
  parallel.parallel = true;
  const CopulaMarginalTransform b(
      target,
      {CopulaMarginal::nakagami(2.5, 1.0), CopulaMarginal::weibull(2.0, 1.0)},
      parallel);
  EXPECT_EQ(a.sample_envelope_stream(3000, 9),
            b.sample_envelope_stream(3000, 9));
  EXPECT_EQ(a.sample_envelope_block(100, 3, 7),
            b.sample_envelope_block(100, 3, 7));
}

TEST(Copula, RejectsBadTargetsAndUnreachableCorrelation) {
  RMatrix target(2, 2, 0.0);
  target(0, 0) = target(1, 1) = 1.0;
  const std::vector<CopulaMarginal> marginals = {
      CopulaMarginal::nakagami(0.5, 1.0), CopulaMarginal::weibull(8.0, 1.0)};
  // Negative / unit / asymmetric / bad-diagonal targets.
  target(0, 1) = target(1, 0) = -0.2;
  EXPECT_THROW((void)CopulaMarginalTransform(target, marginals),
               ContractViolation);
  target(0, 1) = target(1, 0) = 1.0;
  EXPECT_THROW((void)CopulaMarginalTransform(target, marginals),
               ContractViolation);
  target(0, 1) = 0.3;
  target(1, 0) = 0.6;
  EXPECT_THROW((void)CopulaMarginalTransform(target, marginals),
               ContractViolation);
  target(0, 1) = target(1, 0) = 0.3;
  target(1, 1) = 0.9;
  EXPECT_THROW((void)CopulaMarginalTransform(target, marginals),
               ContractViolation);
  target(1, 1) = 1.0;
  // Reachability: the maximum envelope correlation of this dissimilar
  // pair is < 1; ask for more than the forward map can deliver.
  target(0, 1) = target(1, 0) = 0.0;
  const CopulaMarginalTransform probe(target, marginals);
  const double rho_max = probe.pair_envelope_correlation(0, 1, 1.0);
  ASSERT_LT(rho_max, 0.999);
  target(0, 1) = target(1, 0) = 0.5 * (rho_max + 1.0);
  EXPECT_THROW((void)CopulaMarginalTransform(target, marginals),
               ContractViolation);
  // Nakagami m = 1 is Rayleigh: the transform's m = 1 marginal and the
  // rayleigh anchor agree on the realised correlation map.
  RMatrix pair(2, 2, 0.0);
  pair(0, 0) = pair(1, 1) = 1.0;
  const CopulaMarginalTransform nakagami_one(
      pair,
      {CopulaMarginal::nakagami(1.0, 1.0), CopulaMarginal::nakagami(1.0, 1.0)});
  const CopulaMarginalTransform rayleigh(
      pair, {CopulaMarginal::rayleigh(1.0), CopulaMarginal::rayleigh(1.0)});
  for (double lambda : {0.2, 0.7}) {
    EXPECT_NEAR(nakagami_one.pair_envelope_correlation(0, 1, lambda),
                rayleigh.pair_envelope_correlation(0, 1, lambda), 1e-9);
  }
}

}  // namespace
