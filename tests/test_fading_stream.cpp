// Tests for the unified streaming layer (doppler/branch_source.hpp +
// core/fading_stream.hpp): bit-identity of the independent-block backend
// with the Sec. 5 RealTimeGenerator, keyed/cursor/seek equivalence for
// every backend, seam continuity of the autocorrelation for the
// windowed-overlap-add and overlap-save backends (and the demonstrable
// seam failure of independent blocks that motivates them), variance and
// covariance preservation, the TWDP and cascaded real-time generators on
// the stream layer, and option contract rejection.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/fading_stream.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/doppler/branch_source.hpp"
#include "rfade/doppler/streaming.hpp"
#include "rfade/random/bulk_gaussian.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/scenario/timevarying/cascaded_realtime.hpp"
#include "rfade/scenario/timevarying/twdp.hpp"
#include "rfade/special/bessel.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/support/error.hpp"

namespace {

using namespace rfade;
using core::FadingStream;
using core::FadingStreamOptions;
using doppler::StreamBackend;
using numeric::cdouble;
using numeric::CMatrix;
using numeric::CVector;

constexpr double kTwoPi = 6.283185307179586476925286766559;

CMatrix paper_k() {
  return channel::spectral_covariance_matrix(
      channel::paper_spectral_scenario());
}

/// One-branch (N = 1, unit power) stream options: the colored output is
/// u / sigma_g itself, so trace statistics probe the backend directly.
FadingStreamOptions scalar_options(StreamBackend backend, std::size_t m,
                                   double fm, std::size_t overlap) {
  FadingStreamOptions options;
  options.backend = backend;
  options.idft_size = m;
  options.normalized_doppler = fm;
  options.overlap = backend == StreamBackend::WindowedOverlapAdd ? overlap : 0;
  options.seed = 0x5EA11;
  return options;
}

/// Concatenate `blocks` consecutive blocks of a one-branch stream.
CVector collect_trace(FadingStream& stream, std::size_t blocks) {
  CVector trace;
  trace.reserve(blocks * stream.block_size());
  for (std::size_t b = 0; b < blocks; ++b) {
    const CMatrix block = stream.next_block();
    for (std::size_t l = 0; l < block.rows(); ++l) {
      trace.push_back(block(l, 0));
    }
  }
  return trace;
}

double trace_power(const CVector& y) {
  double power = 0.0;
  for (const cdouble& v : y) {
    power += std::norm(v);
  }
  return power / static_cast<double>(y.size());
}

/// Whole-trace normalised autocorrelation at one lag (direct sum — cheap
/// for a handful of lags, no FFT length constraints).
double acf_at(const CVector& y, std::size_t d) {
  cdouble sum{};
  for (std::size_t t = 0; t + d < y.size(); ++t) {
    sum += y[t] * std::conj(y[t + d]);
  }
  return sum.real() /
         (static_cast<double>(y.size() - d) * trace_power(y));
}

/// Seam-restricted normalised autocorrelation: only pairs (t, t+d) that
/// straddle a block boundary (multiples of \p block_size) contribute, so
/// the estimate isolates exactly the cross-seam correlation the
/// independent-block backend destroys.
double seam_acf(const CVector& y, std::size_t block_size, std::size_t d) {
  cdouble sum{};
  std::size_t pairs = 0;
  for (std::size_t boundary = block_size; boundary + d < y.size();
       boundary += block_size) {
    for (std::size_t t = boundary - std::min(boundary, d); t < boundary;
         ++t) {
      sum += y[t] * std::conj(y[t + d]);
      ++pairs;
    }
  }
  return sum.real() / (static_cast<double>(pairs) * trace_power(y));
}

// --- bit-identity with the Sec. 5 generator ---------------------------------

TEST(FadingStream, IndependentBackendBitIdenticalToRealTimeGenerator) {
  const auto plan = core::ColoringPlan::create(paper_k());

  core::RealTimeOptions realtime;
  realtime.idft_size = 512;
  realtime.normalized_doppler = 0.05;
  const core::RealTimeGenerator generator(plan, realtime);

  FadingStreamOptions streaming;
  streaming.idft_size = 512;
  streaming.normalized_doppler = 0.05;
  streaming.seed = 0xB17;
  FadingStream stream(plan, streaming);

  // The stream's block b is the Sec. 5 block drawn from the per-block
  // substream (seed, b + 1) — the exact keying the cascaded generator has
  // always used, so the anchor is the historical bit pattern.
  for (std::uint64_t b = 0; b < 3; ++b) {
    random::Rng rng(0xB17, b + 1);
    const CMatrix expected = generator.generate_block(rng, b * 512);
    EXPECT_EQ(stream.next_block(), expected) << "block " << b;
    EXPECT_EQ(stream.generate_block(0xB17, b), expected) << "block " << b;
  }
}

// --- keyed / cursor / seek equivalence --------------------------------------

TEST(FadingStream, KeyedBlocksEqualCursorAndSurviveSeeks) {
  for (const StreamBackend backend :
       {StreamBackend::IndependentBlock, StreamBackend::WindowedOverlapAdd,
        StreamBackend::OverlapSaveFir}) {
    FadingStreamOptions options =
        scalar_options(backend, 128, 0.1, /*overlap=*/32);
    FadingStream cursor(CMatrix::identity(1), options);
    FadingStream keyed(CMatrix::identity(1), options);
    FadingStream seeker(CMatrix::identity(1), options);

    std::vector<CMatrix> blocks;
    for (std::uint64_t b = 0; b < 5; ++b) {
      blocks.push_back(cursor.next_block());
    }
    for (std::uint64_t b = 0; b < 5; ++b) {
      EXPECT_EQ(keyed.generate_block(options.seed, b), blocks[b])
          << doppler::stream_backend_name(backend) << " block " << b;
    }
    // Seeking backward and forward reproduces the same realisation,
    // including stateful backends (history replay).
    seeker.seek(3);
    EXPECT_EQ(seeker.next_block(), blocks[3])
        << doppler::stream_backend_name(backend);
    seeker.seek(1);
    EXPECT_EQ(seeker.next_block(), blocks[1])
        << doppler::stream_backend_name(backend);
    EXPECT_EQ(seeker.next_block(), blocks[2])
        << doppler::stream_backend_name(backend);
    EXPECT_EQ(seeker.next_block_index(), 3u);
  }
}

TEST(FadingStream, ParallelAndSerialBranchesBitIdentical) {
  for (const StreamBackend backend :
       {StreamBackend::IndependentBlock, StreamBackend::OverlapSaveFir}) {
    FadingStreamOptions parallel;
    parallel.backend = backend;
    parallel.idft_size = 128;
    parallel.normalized_doppler = 0.1;
    parallel.seed = 0x9A;
    FadingStreamOptions serial = parallel;
    serial.parallel_branches = false;

    FadingStream a(paper_k(), parallel);
    FadingStream b(paper_k(), serial);
    for (int block = 0; block < 3; ++block) {
      EXPECT_EQ(a.next_block(), b.next_block())
          << doppler::stream_backend_name(backend);
    }
  }
}

// --- variance / covariance preservation -------------------------------------

TEST(FadingStream, AllBackendsPreserveVarianceAndCovariance) {
  // The Eq. (19) normalisation must hold for every backend: WOLA's
  // crossfade is equal-power, and the overlap-save FIR's output variance
  // equals sigma_g^2 by Parseval — so the colored lag-0 covariance is the
  // desired K in all three cases.
  const CMatrix k = paper_k();
  for (const StreamBackend backend :
       {StreamBackend::IndependentBlock, StreamBackend::WindowedOverlapAdd,
        StreamBackend::OverlapSaveFir}) {
    FadingStreamOptions options;
    options.backend = backend;
    options.idft_size = 512;
    options.normalized_doppler = 0.08;
    options.overlap =
        backend == StreamBackend::WindowedOverlapAdd ? 64 : 0;
    options.seed = 0xC0;
    FadingStream stream(k, options);
    EXPECT_DOUBLE_EQ(stream.assumed_variance(),
                     stream.branch_output_variance());

    stats::CovarianceAccumulator acc(3);
    CVector z(3);
    for (int b = 0; b < 120; ++b) {
      const CMatrix block = stream.next_block();
      for (std::size_t l = 0; l < block.rows(); ++l) {
        for (std::size_t j = 0; j < 3; ++j) {
          z[j] = block(l, j);
        }
        acc.add(z);
      }
    }
    EXPECT_LT(stats::relative_frobenius_error(acc.covariance(), k), 0.06)
        << doppler::stream_backend_name(backend);
  }
}

// --- seam continuity ---------------------------------------------------------

TEST(FadingStream, ContinuousBackendsKeepJ0AcrossSeams) {
  // The satellite claim: estimated over a trace spanning many block
  // boundaries — including the seam-restricted estimator, whose every
  // pair crosses a boundary — the autocorrelation matches J0(2 pi fm d)
  // within the same 0.1 tolerance as the within-block tests
  // (RealTime.BranchAutocorrelationTracksJ0), for both continuous
  // backends.
  const double fm = 0.05;
  const std::size_t m = 512;
  for (const StreamBackend backend :
       {StreamBackend::WindowedOverlapAdd, StreamBackend::OverlapSaveFir}) {
    FadingStream stream(CMatrix::identity(1),
                        scalar_options(backend, m, fm, /*overlap=*/128));
    const std::size_t bs = stream.block_size();
    const CVector trace = collect_trace(stream, 1200);

    EXPECT_NEAR(trace_power(trace), 1.0, 0.05)
        << doppler::stream_backend_name(backend);
    for (const std::size_t d : {1u, 2u, 3u, 4u, 8u, 16u, 32u, 60u}) {
      const double j0 = special::bessel_j0(kTwoPi * fm * double(d));
      EXPECT_NEAR(acf_at(trace, d), j0, 0.1)
          << doppler::stream_backend_name(backend) << " whole-trace lag "
          << d;
      EXPECT_NEAR(seam_acf(trace, bs, d), j0, 0.1)
          << doppler::stream_backend_name(backend) << " seam lag " << d;
    }
  }
}

TEST(FadingStream, IndependentBackendFailsAtTheSeam) {
  // Regression-protects the motivation: concatenated independent blocks
  // have *zero* correlation across a boundary, so the seam-restricted
  // estimate misses J0 by far more than the tolerance the continuous
  // backends meet.  (The within-block law still holds — that is what the
  // historical tests check.)
  const double fm = 0.05;
  const std::size_t m = 512;
  FadingStream stream(
      CMatrix::identity(1),
      scalar_options(StreamBackend::IndependentBlock, m, fm, 0));
  const CVector trace = collect_trace(stream, 1200);
  for (const std::size_t d : {1u, 2u, 3u, 4u}) {
    const double j0 = special::bessel_j0(kTwoPi * fm * double(d));
    EXPECT_GT(std::abs(seam_acf(trace, m, d) - j0), 0.1) << "lag " << d;
  }
  EXPECT_GT(std::abs(seam_acf(trace, m, 1) -
                     special::bessel_j0(kTwoPi * fm)),
            0.5);
}

TEST(FadingStream, OverlapSaveIsStationaryAcrossManyBoundaries) {
  // Sharper than the J0 match: the overlap-save process is *exactly*
  // stationary, so the seam-restricted estimate agrees with the
  // whole-trace one (up to Monte-Carlo noise) at every lag — here over a
  // trace of 1200 blocks, i.e. pairs crossing over a thousand seams.
  const double fm = 0.08;
  const std::size_t m = 256;
  FadingStream stream(
      CMatrix::identity(1),
      scalar_options(StreamBackend::OverlapSaveFir, m, fm, 0));
  const CVector trace = collect_trace(stream, 1200);
  for (const std::size_t d : {1u, 4u, 16u, 48u}) {
    EXPECT_NEAR(seam_acf(trace, m, d), acf_at(trace, d), 0.06)
        << "lag " << d;
  }
}

TEST(FadingStream, BatchedFillBitIdenticalToPerBranchForEveryBackend) {
  // The batched overlap-save sweep (one planar multi-lane FFT over the
  // shared plan) must reproduce the per-branch PR-4/5 output bit for bit,
  // and the flag must be a pure no-op on the other backends.  N = 3
  // exercises a partial lane group; the 10-branch case below a full
  // 8-lane group plus a 2-lane tail.
  for (const StreamBackend backend :
       {StreamBackend::IndependentBlock, StreamBackend::WindowedOverlapAdd,
        StreamBackend::OverlapSaveFir}) {
    FadingStreamOptions batched;
    batched.backend = backend;
    batched.idft_size = 64;
    batched.normalized_doppler = 0.1;
    batched.overlap = backend == StreamBackend::WindowedOverlapAdd ? 16 : 0;
    batched.seed = 0xBA7C;
    batched.batched_fill = true;
    FadingStreamOptions per_branch = batched;
    per_branch.batched_fill = false;

    FadingStream a(paper_k(), batched);
    FadingStream b(paper_k(), per_branch);
    for (int block = 0; block < 4; ++block) {
      EXPECT_EQ(a.next_block(), b.next_block())
          << doppler::stream_backend_name(backend) << " block " << block;
    }
    // Seeks reset the batch's cached input windows too.
    a.seek(1);
    b.seek(1);
    EXPECT_EQ(a.next_block(), b.next_block())
        << doppler::stream_backend_name(backend);
    a.seek(6);
    b.seek(6);
    EXPECT_EQ(a.next_block(), b.next_block())
        << doppler::stream_backend_name(backend);
  }

  // Ten branches: one full zmm-width lane group plus a two-lane tail.
  CMatrix k10 = CMatrix::identity(10);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      if (i != j) {
        k10(i, j) = cdouble(0.3, 0.0);
      }
    }
  }
  FadingStreamOptions batched;
  batched.backend = StreamBackend::OverlapSaveFir;
  batched.idft_size = 64;
  batched.normalized_doppler = 0.1;
  batched.seed = 0xBA7D;
  FadingStreamOptions per_branch = batched;
  per_branch.batched_fill = false;
  FadingStream a(k10, batched);
  FadingStream b(k10, per_branch);
  for (int block = 0; block < 3; ++block) {
    EXPECT_EQ(a.next_block(), b.next_block()) << "block " << block;
  }
}

TEST(FadingStream, NonPowerOfTwoOverlapSaveKeyedEqualsCursorAndSeek) {
  // M = 12 makes 2M = 24 non-power-of-two: the overlap-save fallback runs
  // the design's preallocated Bluestein plan (the batched sweep opts
  // out), and the keyed / cursor / seek equivalence must hold exactly as
  // on the radix-2 path.
  FadingStreamOptions options =
      scalar_options(StreamBackend::OverlapSaveFir, 12, 0.1, 0);
  FadingStream cursor(CMatrix::identity(1), options);
  FadingStream keyed(CMatrix::identity(1), options);
  FadingStream seeker(CMatrix::identity(1), options);

  std::vector<CMatrix> blocks;
  for (std::uint64_t b = 0; b < 5; ++b) {
    blocks.push_back(cursor.next_block());
  }
  for (std::uint64_t b = 0; b < 5; ++b) {
    EXPECT_EQ(keyed.generate_block(options.seed, b), blocks[b])
        << "block " << b;
  }
  seeker.seek(4);
  EXPECT_EQ(seeker.next_block(), blocks[4]);
  seeker.seek(0);
  EXPECT_EQ(seeker.next_block(), blocks[0]);
  EXPECT_EQ(seeker.next_block(), blocks[1]);
}

TEST(FadingStream, SeekableBulkFillsAgreeOnOverlap) {
  // The seekable bulk substream underlying the overlap-save inputs:
  // sample t consumes counter block t regardless of the window asked
  // for, so overlapping windows agree bit-for-bit.
  std::vector<double> re_full(256), im_full(256);
  random::fill_complex_gaussians_planar(0xF00, 7, 1.3, 256, re_full.data(),
                                        im_full.data());
  std::vector<double> re_part(96), im_part(96);
  random::fill_complex_gaussians_planar(0xF00, 7, 1.3, /*first_sample=*/100,
                                        96, re_part.data(), im_part.data());
  for (std::size_t t = 0; t < 96; ++t) {
    EXPECT_EQ(re_part[t], re_full[100 + t]) << "t=" << t;
    EXPECT_EQ(im_part[t], im_full[100 + t]) << "t=" << t;
  }
}

// --- contracts ---------------------------------------------------------------

TEST(FadingStream, RejectsInvalidOptions) {
  const CMatrix k = CMatrix::identity(2);
  FadingStreamOptions bad;

  // WOLA overlap out of range (the M/2 bound keeps at most two blocks
  // alive per output sample).
  bad.backend = StreamBackend::WindowedOverlapAdd;
  bad.idft_size = 64;
  bad.normalized_doppler = 0.1;
  bad.overlap = 32;
  EXPECT_THROW((void)FadingStream(k, bad), ContractViolation);

  // Overlap is meaningless on the other backends — reject early rather
  // than silently ignore.
  bad = {};
  bad.overlap = 16;
  EXPECT_THROW((void)FadingStream(k, bad), ContractViolation);
  bad.backend = StreamBackend::OverlapSaveFir;
  EXPECT_THROW((void)FadingStream(k, bad), ContractViolation);

  // Doppler/filter contracts surface at construction for every backend.
  for (const StreamBackend backend :
       {StreamBackend::IndependentBlock, StreamBackend::WindowedOverlapAdd,
        StreamBackend::OverlapSaveFir}) {
    FadingStreamOptions options;
    options.backend = backend;
    options.normalized_doppler = 0.9;  // above Nyquist
    EXPECT_THROW((void)FadingStream(k, options), ContractViolation);
    options = {};
    options.backend = backend;
    options.idft_size = 4;  // below the minimum IDFT size
    EXPECT_THROW((void)FadingStream(k, options), ContractViolation);
    options = {};
    options.backend = backend;
    options.input_variance_per_dim = 0.0;
    EXPECT_THROW((void)FadingStream(k, options), ContractViolation);
  }

  // Caller-rng blocks exist only for the independent-block backend.
  FadingStreamOptions continuous;
  continuous.backend = StreamBackend::OverlapSaveFir;
  continuous.idft_size = 64;
  continuous.normalized_doppler = 0.1;
  FadingStream stream(k, continuous);
  random::Rng rng(1);
  EXPECT_THROW((void)stream.generate_block_from(rng), ContractViolation);
}

// --- the compatibility shim --------------------------------------------------

TEST(FadingStream, StreamingShimFirstChunkMatchesBranchBlock) {
  // StreamingFadingSource is now a per-sample shim over the WOLA branch
  // source; its first M - overlap samples are the head of the first
  // Fig. 2 block, bit-for-bit — pinning compatibility with the
  // historical implementation.
  doppler::StreamingFadingSource shim(512, 0.05, 0.5, 64);
  random::Rng rng_shim(0x11F);
  random::Rng rng_branch(0x11F);
  const doppler::IdftRayleighBranch branch(512, 0.05, 0.5);
  const CVector chunk = shim.take(448, rng_shim);
  const CVector block = branch.generate_block(rng_branch);
  for (std::size_t l = 0; l < 448; ++l) {
    EXPECT_EQ(chunk[l], block[l]) << "l=" << l;
  }
  EXPECT_EQ(shim.design().continuity_horizon(), 64u);
}

// --- TWDP on the stream layer ------------------------------------------------

TEST(TwdpStream, WaveTrajectoriesContinuousAcrossBlocks) {
  const CMatrix k = paper_k();
  const auto plan = core::ColoringPlan::create(k);
  const scenario::TwdpSpec spec = scenario::TwdpSpec::uniform(k, 3.0, 0.6);
  const double f1 = 0.04;
  const double f2 = -0.025;

  FadingStreamOptions options;
  options.backend = StreamBackend::OverlapSaveFir;
  options.idft_size = 256;
  options.normalized_doppler = 0.08;
  options.seed = 0xA1;

  FadingStream plain(plan, options);
  FadingStream twdp =
      scenario::twdp_fading_stream(plan, spec, f1, f2, options);
  const scenario::TwdpSpec::SpecularWaves waves = spec.specular_waves(*plan);

  // The diffuse bits are untouched; row l of block b is shifted by the
  // wave pair at the *absolute* instant 256 b + l, so the deterministic
  // trajectories never restart at a block seam.
  for (int b = 0; b < 2; ++b) {
    const CMatrix z0 = plain.next_block();
    const CMatrix z1 = twdp.next_block();
    for (std::size_t l = 0; l < z0.rows(); ++l) {
      const double instant = double(b) * 256.0 + double(l);
      const cdouble rot1 =
          std::polar(1.0, kTwoPi * std::fmod(f1 * instant, 1.0));
      const cdouble rot2 =
          std::polar(1.0, kTwoPi * std::fmod(f2 * instant, 1.0));
      for (std::size_t j = 0; j < z0.cols(); ++j) {
        const cdouble expected =
            z0(l, j) + waves.first[j] * rot1 + waves.second[j] * rot2;
        EXPECT_NEAR(std::abs(z1(l, j) - expected), 0.0, 1e-12)
            << "b=" << b << " l=" << l << " j=" << j;
      }
    }
  }
}

TEST(TwdpStream, RayleighSpecIsBitIdenticalToPlainStream) {
  const CMatrix k = paper_k();
  const auto plan = core::ColoringPlan::create(k);
  const scenario::TwdpSpec spec = scenario::TwdpSpec::uniform(k, 0.0, 0.9);

  FadingStreamOptions options;
  options.backend = StreamBackend::WindowedOverlapAdd;
  options.idft_size = 256;
  options.normalized_doppler = 0.08;
  options.overlap = 32;
  options.seed = 0xA2;

  FadingStream plain(plan, options);
  FadingStream twdp =
      scenario::twdp_fading_stream(plan, spec, 0.01, 0.02, options);
  for (int b = 0; b < 3; ++b) {
    EXPECT_EQ(twdp.next_block(), plain.next_block()) << "block " << b;
  }

  // And a mismatched plan is rejected up front.
  const auto wrong_plan = core::ColoringPlan::create(CMatrix::identity(5));
  EXPECT_THROW((void)scenario::twdp_fading_stream(wrong_plan, spec, 0.01,
                                                  0.02, options),
               ContractViolation);
}

// --- cascaded real-time on the stream layer ----------------------------------

TEST(CascadedStream, NextBlockMatchesKeyedBlocks) {
  scenario::CascadedRealTimeOptions options;
  options.idft_size = 256;
  options.first_doppler = 0.06;
  options.second_doppler = 0.13;
  options.backend = StreamBackend::OverlapSaveFir;
  options.stream_seed = 0xCA5;
  scenario::CascadedRealTimeGenerator gen(
      paper_k(), CMatrix::identity(3), options);

  for (std::uint64_t b = 0; b < 3; ++b) {
    EXPECT_EQ(gen.next_block(), gen.generate_block(0xCA5, b))
        << "block " << b;
  }
  gen.seek(1);
  EXPECT_EQ(gen.next_block(), gen.generate_block(0xCA5, 1));
}

TEST(CascadedStream, ContinuousProductKeepsTheAkkiHaberLawAcrossSeams) {
  // Mobile-to-mobile continuity: with overlap-save stages, the *product*
  // process keeps the rho1(d) rho2(d) law across block boundaries — the
  // seam-restricted estimate matches the analytic product, which the
  // independent-block cascade zeroes at every seam.
  scenario::CascadedRealTimeOptions options;
  options.idft_size = 256;
  options.first_doppler = 0.05;
  options.second_doppler = 0.11;
  options.backend = StreamBackend::OverlapSaveFir;
  options.stream_seed = 0x17;
  scenario::CascadedRealTimeGenerator gen(
      CMatrix::identity(1), CMatrix::identity(1), options);

  CVector trace;
  trace.reserve(1000 * 256);
  for (int b = 0; b < 1000; ++b) {
    const CMatrix block = gen.next_block();
    for (std::size_t l = 0; l < block.rows(); ++l) {
      trace.push_back(block(l, 0));
    }
  }
  const numeric::RVector rho =
      gen.theoretical_normalized_autocorrelation(4);
  for (const std::size_t d : {1u, 2u, 3u, 4u}) {
    EXPECT_NEAR(seam_acf(trace, 256, d), rho[d], 0.15) << "lag " << d;
  }
}

}  // namespace
