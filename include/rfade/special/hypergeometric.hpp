#pragma once

/// \file hypergeometric.hpp
/// \brief Gauss hypergeometric function 2F1(a, b; c; x) by series.
///
/// Needed for the *exact* envelope cross-correlation of a bivariate
/// Rayleigh pair (core/envelope_correlation.hpp):
///   E[r_1 r_2] = (pi/4) sigma_g1 sigma_g2 2F1(-1/2, -1/2; 1; |rho|^2).
/// The series converges for |x| < 1 and, because c - a - b = 2 > 0 in that
/// use, also at x = 1 (value 4/pi).

namespace rfade::special {

/// 2F1(a, b; c; x) via the defining power series.
/// \pre |x| <= 1 and, when |x| == 1, c - a - b > 0 (else ConvergenceError);
///      c must not be a non-positive integer.
[[nodiscard]] double hypergeometric_2f1(double a, double b, double c,
                                        double x);

}  // namespace rfade::special
