#pragma once

/// \file bessel_i.hpp
/// \brief Modified Bessel functions of the first kind, I_0 and I_1.
///
/// These carry the Rician (LOS) extension of the paper's generator: I_0
/// appears in the Rician envelope pdf and CDF, and the exact Rician mean
/// goes through the Laguerre polynomial
///   L_{1/2}(-K) = e^{-K/2} [(1 + K) I_0(K/2) + K I_1(K/2)],
/// which the scenario layer evaluates via the exponentially-scaled
/// variants below so large K-factors never overflow (I_n(x) ~ e^x).
///
/// Implementation: the defining power series for |x| <= 30 (all terms
/// positive — no cancellation — and e^30 is far below the double range),
/// Hankel's asymptotic expansion beyond (its smallest term is ~e^{-2x},
/// i.e. negligible past the switchover).  Accuracy ~1e-13 relative; the
/// test suite cross-checks against libstdc++'s std::cyl_bessel_i.

namespace rfade::special {

/// I_0(x), zeroth-order modified Bessel function of the first kind.
[[nodiscard]] double bessel_i0(double x);

/// I_1(x), first-order modified Bessel function of the first kind.
[[nodiscard]] double bessel_i1(double x);

/// Exponentially scaled I_0: e^{-|x|} I_0(x).  Finite for all x.
[[nodiscard]] double bessel_i0e(double x);

/// Exponentially scaled I_1: e^{-|x|} I_1(x).  Finite for all x.
[[nodiscard]] double bessel_i1e(double x);

}  // namespace rfade::special
