#pragma once

/// \file bessel_k.hpp
/// \brief Modified Bessel functions of the second kind, K_0 and K_1.
///
/// These carry the cascaded (double) Rayleigh extension after Ibdah &
/// Ding, "Statistical Simulation Models for Cascaded Rayleigh Fading
/// Channels": the envelope of the product of two independent Rayleigh
/// factors with per-dimension scales s1, s2 has the closed-form law
///
///   pdf(r) = (r / c^2) K_0(r / c),   cdf(r) = 1 - (r / c) K_1(r / c),
///
/// with c = s1 s2 (stats::DoubleRayleighDistribution) — which is what
/// lets the cascaded validators run KS tests instead of moment checks.
///
/// Implementation: the DLMF 10.31 log series (built on special::bessel_i0
/// / bessel_i1) for x <= 2 — every coefficient is exact and the series
/// converges in a few terms — and the trapezoidal rule on the integral
/// representation K_n(x) = int_0^inf e^{-x cosh t} cosh(n t) dt beyond.
/// The integrand is analytic, even in t and doubly-exponentially decaying,
/// so the trapezoid sum converges geometrically in the step size; ~1e-13
/// relative over the domain rfade uses.  The test suite cross-checks
/// against libstdc++'s std::cyl_bessel_k.

namespace rfade::special {

/// K_0(x), zeroth-order modified Bessel function of the second kind.
/// \pre x > 0 (K_0 diverges logarithmically at 0).
[[nodiscard]] double bessel_k0(double x);

/// K_1(x), first-order modified Bessel function of the second kind.
/// \pre x > 0 (K_1 ~ 1/x at 0).
[[nodiscard]] double bessel_k1(double x);

/// Exponentially scaled K_0: e^{x} K_0(x).  Avoids underflow of the
/// e^{-x} tail for large x.  \pre x > 0.
[[nodiscard]] double bessel_k0e(double x);

/// Exponentially scaled K_1: e^{x} K_1(x).  \pre x > 0.
[[nodiscard]] double bessel_k1e(double x);

}  // namespace rfade::special
