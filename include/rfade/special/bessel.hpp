#pragma once

/// \file bessel.hpp
/// \brief Bessel functions of the first kind, J_n for integer order.
///
/// These are the paper's workhorse special functions:
///  * J_0 appears in the Jakes spectral covariance (Eq. 3) and as the target
///    autocorrelation of every Doppler-faded branch (Eq. 20),
///  * J_q for integer q >= 0 appears in the Salz-Winters spatial correlation
///    series (Eqs. 5-6).
///
/// Implementation: power series for small argument, Hankel asymptotic
/// expansion for large argument, stable upward recurrence when n < x and
/// Miller's normalised downward recurrence when n >= x.  Accuracy is
/// ~1e-10 absolute or better over the domain rfade uses (|x| < ~1e3,
/// n < ~200); the test suite cross-checks against libstdc++'s
/// std::cyl_bessel_j.

namespace rfade::special {

/// J_0(x), zeroth-order Bessel function of the first kind.
[[nodiscard]] double bessel_j0(double x);

/// J_1(x), first-order Bessel function of the first kind.
[[nodiscard]] double bessel_j1(double x);

/// J_n(x) for any integer order (negative orders via J_{-n} = (-1)^n J_n).
[[nodiscard]] double bessel_jn(int n, double x);

}  // namespace rfade::special
