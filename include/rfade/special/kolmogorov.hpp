#pragma once

/// \file kolmogorov.hpp
/// \brief Kolmogorov distribution, the asymptotic law of the KS statistic.
///
/// The stats module tests whether generated envelopes are Rayleigh (paper
/// Sec. 4.5) using the one-sample KS test; p-values come from the
/// Kolmogorov survival function implemented here.

namespace rfade::special {

/// Survival function Q_KS(lambda) = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
/// Returns 1 for lambda <= 0.
[[nodiscard]] double kolmogorov_survival(double lambda);

/// Asymptotic p-value of a one-sample KS statistic \p d on \p n samples,
/// using the Stephens small-sample correction
/// lambda = (sqrt(n) + 0.12 + 0.11/sqrt(n)) * d.
[[nodiscard]] double kolmogorov_p_value(double d, double n);

}  // namespace rfade::special
