#pragma once

/// \file gamma.hpp
/// \brief Regularized incomplete gamma functions P(a,x) and Q(a,x).
///
/// Used by the chi-square goodness-of-fit test (stats/chi_square.hpp):
/// the survival function of a chi-square distribution with k degrees of
/// freedom is Q(k/2, x/2).

namespace rfade::special {

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a).
/// \pre a > 0, x >= 0.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
/// \pre a > 0, x >= 0.
[[nodiscard]] double regularized_gamma_q(double a, double x);

/// Survival function of the chi-square distribution:
/// Pr[X > x] for X ~ chi^2(dof).
[[nodiscard]] double chi_square_survival(double x, double dof);

/// Inverse of the regularized lower incomplete gamma: the x with
/// P(a, x) = p, by a Wilson-Hilferty / small-a initial guess refined with
/// safeguarded Newton steps (the quantile kernel of the Nakagami-m
/// marginal and of the gamma-family copula transforms).
/// \pre a > 0, p in [0, 1).
[[nodiscard]] double inverse_regularized_gamma_p(double a, double p);

}  // namespace rfade::special
