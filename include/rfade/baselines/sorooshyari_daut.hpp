#pragma once

/// \file sorooshyari_daut.hpp
/// \brief Baseline [6]: Sorooshyari & Daut 2003 — epsilon PSD forcing +
///        Cholesky, and the variance-unaware real-time combination.
///
/// Two components:
///   * SorooshyariDautGenerator — instant mode.  Non-positive eigenvalues
///     are replaced by a small epsilon (so Cholesky remains performable),
///     then CN(0,1) samples are colored with the Cholesky factor.  Equal
///     powers only.  The epsilon forcing is strictly farther from K in
///     Frobenius norm than the paper's clip-to-zero (experiment E6).
///   * SorooshyariDautRealTime — the Sec. VI combination of [6] with the
///     Young-Beaulieu IDFT branches, reproduced faithfully *including its
///     flaw*: step 6 of [6] assumes the branch outputs keep the unit input
///     variance, ignoring the Doppler filter's gain (Eq. 19).  The achieved
///     envelope powers are off by sigma_g^2 / (2 sigma_orig^2) — orders of
///     magnitude (experiment E7).

#include "rfade/core/plan.hpp"
#include "rfade/core/psd.hpp"
#include "rfade/doppler/idft_generator.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::baselines {

/// Instant-mode generator after Sorooshyari & Daut.
class SorooshyariDautGenerator {
 public:
  /// \param epsilon the eigenvalue replacement value of [6].
  /// \throws ValueError on unequal powers.
  explicit SorooshyariDautGenerator(const numeric::CMatrix& k,
                                    double epsilon = 1e-4);

  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }

  /// One draw of N correlated complex Gaussians.
  [[nodiscard]] numeric::CVector sample(random::Rng& rng) const;

  /// The epsilon-forced covariance actually colored.
  [[nodiscard]] const numeric::CMatrix& forced_covariance() const noexcept {
    return pipeline_.plan().desired_covariance();
  }

  /// Frobenius distance ||K_forced - K||_F of the epsilon forcing.
  [[nodiscard]] double forcing_distance() const noexcept {
    return forcing_distance_;
  }

 private:
  std::size_t dim_;
  double forcing_distance_ = 0.0;
  core::SamplePipeline pipeline_;
};

/// Real-time combination of [6] with IDFT Doppler branches — reproduces
/// the variance-unaware normalisation (the paper's headline critique).
class SorooshyariDautRealTime {
 public:
  /// \param m IDFT size, \param fm normalised Doppler, \param
  /// input_variance_per_dim sigma_orig^2 (the method implicitly assumes
  /// 2*sigma_orig^2 = 1-like input variance survives the filter).
  SorooshyariDautRealTime(const numeric::CMatrix& k, std::size_t m, double fm,
                          double input_variance_per_dim = 0.5,
                          double epsilon = 1e-4);

  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }
  [[nodiscard]] std::size_t block_size() const noexcept {
    return branch_.block_size();
  }

  /// One block: M x N complex Gaussians (mis-scaled, by construction).
  [[nodiscard]] numeric::CMatrix generate_block(random::Rng& rng) const;

  /// The true branch output variance (Eq. 19) this method *should* use.
  [[nodiscard]] double true_branch_variance() const noexcept {
    return branch_.output_variance();
  }

  /// The variance the method actually assumes (2 sigma_orig^2).
  [[nodiscard]] double assumed_variance() const noexcept {
    return assumed_variance_;
  }

 private:
  std::size_t dim_;
  core::SamplePipeline pipeline_;
  doppler::IdftRayleighBranch branch_;
  double assumed_variance_;
};

}  // namespace rfade::baselines
