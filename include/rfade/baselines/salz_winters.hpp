#pragma once

/// \file salz_winters.hpp
/// \brief Baseline [1]: Salz & Winters 1994 real-composite coloring.
///
/// The method generates the 2N-vector C = (x_1..x_N, y_1..y_N) of real
/// Gaussians by coloring a 2N x 2N *real* covariance matrix with its
/// eigendecomposition B D^{1/2}.  Its documented shortcomings, which the
/// paper's Sec. 1 enumerates and experiment E9 demonstrates:
///   * equal-power envelopes only (enforced here; unequal powers throw),
///   * the correlation matrix must be positive semi-definite — otherwise
///     the coloring matrix turns complex and the produced statistics are
///     wrong; this implementation throws NotPositiveDefiniteError instead
///     of silently producing a wrong result.

#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::baselines {

/// Correlated-Gaussian generator after Salz & Winters.
class SalzWintersGenerator {
 public:
  /// \param k desired covariance of the complex Gaussians (Eqs. 12-13);
  ///          must have an equal-power diagonal.
  /// \throws ValueError on unequal powers; NotPositiveDefiniteError when
  ///         the real composite covariance is not PSD.
  explicit SalzWintersGenerator(const numeric::CMatrix& k);

  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }

  /// One draw of N correlated complex Gaussians.
  [[nodiscard]] numeric::CVector sample(random::Rng& rng) const;

  /// The 2N x 2N real composite covariance this method colors.
  [[nodiscard]] const numeric::RMatrix& composite_covariance() const noexcept {
    return composite_;
  }

 private:
  std::size_t dim_;
  numeric::RMatrix composite_;  // [[A, B], [B^T, A]]
  numeric::RMatrix coloring_;   // B D^{1/2} of the composite matrix
};

/// Build the 2N x 2N real composite covariance [[A,B],[B^T,A]] from K,
/// with A = Re(K)/2 and B = -Im(K)/2.  Exposed for tests.
[[nodiscard]] numeric::RMatrix composite_real_covariance(
    const numeric::CMatrix& k);

}  // namespace rfade::baselines
