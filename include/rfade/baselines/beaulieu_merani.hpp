#pragma once

/// \file beaulieu_merani.hpp
/// \brief Baselines [3]/[4]: Beaulieu 1999 (N=2) generalised by
///        Beaulieu & Merani 2000 to N >= 2 via Cholesky coloring.
///
/// The generator colors i.i.d. CN(0,1) samples with the Cholesky factor of
/// the desired covariance matrix.  Correct whenever K is positive definite
/// and the powers are equal — and *only* then: the Cholesky factorization
/// throws on semi-definite or indefinite K (experiment E9), which is the
/// restriction the paper's eigen-coloring removes.

#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::baselines {

/// Cholesky-coloring generator after Beaulieu & Merani.
class BeaulieuMeraniGenerator {
 public:
  /// \throws ValueError on unequal powers;
  ///         NotPositiveDefiniteError when K is not positive definite.
  explicit BeaulieuMeraniGenerator(const numeric::CMatrix& k);

  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }

  /// One draw of N correlated complex Gaussians.
  [[nodiscard]] numeric::CVector sample(random::Rng& rng) const;

  /// The lower-triangular Cholesky coloring factor.
  [[nodiscard]] const numeric::CMatrix& coloring_matrix() const noexcept {
    return coloring_;
  }

 private:
  std::size_t dim_;
  numeric::CMatrix coloring_;
};

}  // namespace rfade::baselines
