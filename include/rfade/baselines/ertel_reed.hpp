#pragma once

/// \file ertel_reed.hpp
/// \brief Baseline [2]: Ertel & Reed 1998 — two equal-power correlated
///        Rayleigh envelopes.
///
/// The closed form for exactly N = 2 branches with common power sigma^2 and
/// complex correlation coefficient rho = mu_12 / sigma^2:
///   z_1 = sigma w_1
///   z_2 = sigma (conj(rho) w_1 + sqrt(1 - |rho|^2) w_2),  w_i iid CN(0,1).
/// Anything beyond two branches or unequal powers is out of the method's
/// scope (throws) — the restriction the paper's algorithm removes.

#include <complex>

#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::baselines {

/// Two-branch correlated complex Gaussian generator.
class ErtelReedGenerator {
 public:
  /// \param power common sigma^2 > 0.
  /// \param rho complex correlation coefficient, |rho| <= 1, defined by
  ///        E[z_1 conj(z_2)] = sigma^2 rho.
  ErtelReedGenerator(double power, std::complex<double> rho);

  /// Construct from a 2x2 covariance matrix (must be equal-power).
  explicit ErtelReedGenerator(const numeric::CMatrix& k);

  /// One draw (z_1, z_2).
  [[nodiscard]] numeric::CVector sample(random::Rng& rng) const;

  [[nodiscard]] double power() const noexcept { return power_; }
  [[nodiscard]] std::complex<double> rho() const noexcept { return rho_; }

 private:
  double power_;
  std::complex<double> rho_;
  double orthogonal_gain_;  // sqrt(1 - |rho|^2)
};

}  // namespace rfade::baselines
