#pragma once

/// \file sum_of_sinusoids.hpp
/// \brief Clarke/Jakes sum-of-sinusoids reference fading model.
///
/// The classical alternative to the IDFT generator (paper refs. [8], [12]):
///   z[l] = sqrt(2/Np) sum_{n=1}^{Np} exp(i (2 pi fm l cos(alpha_n) + phi_n))
/// with arrival angles alpha_n and phases phi_n i.i.d. uniform.  As
/// Np -> inf the process converges to a complex Gaussian with Jakes
/// autocorrelation J0(2 pi fm d).  rfade uses it as an *independent*
/// cross-check of the Doppler machinery: two different constructions must
/// produce the same second-order statistics.

#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::baselines {

/// Single-branch sum-of-sinusoids Rayleigh fading generator.
class SumOfSinusoidsGenerator {
 public:
  /// \param num_paths Np, number of sinusoids; >= 8 recommended.
  /// \param fm normalised maximum Doppler in (0, 0.5].
  SumOfSinusoidsGenerator(std::size_t num_paths, double fm);

  /// Generate \p length complex samples with a fresh random path set.
  [[nodiscard]] numeric::CVector generate_block(std::size_t length,
                                                random::Rng& rng) const;

  [[nodiscard]] std::size_t num_paths() const noexcept { return num_paths_; }
  [[nodiscard]] double normalized_doppler() const noexcept { return fm_; }

 private:
  std::size_t num_paths_;
  double fm_;
};

}  // namespace rfade::baselines
