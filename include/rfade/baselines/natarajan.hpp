#pragma once

/// \file natarajan.hpp
/// \brief Baseline [5]: Natarajan, Nassar & Chandrasekhar 2000 — arbitrary
///        powers via Cholesky, with covariances *forced real*.
///
/// The method supports unequal powers, but (a) it relies on Cholesky, so K
/// must be positive definite, and (b) it forces the covariances of the
/// complex Gaussians to be real (Eq. (8) of [5]).  When the physical K has
/// complex off-diagonal entries — the typical case, cf. the paper's
/// Eq. (22) — the achieved covariance is Re(K), a measurable bias that
/// experiment E9 quantifies via achieved_covariance().

#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::baselines {

/// Real-forced Cholesky generator after Natarajan et al.
class NatarajanGenerator {
 public:
  /// \throws NotPositiveDefiniteError when Re(K) is not positive definite.
  explicit NatarajanGenerator(const numeric::CMatrix& k);

  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }

  /// One draw of N complex Gaussians (covariance = Re(K), not K).
  [[nodiscard]] numeric::CVector sample(random::Rng& rng) const;

  /// The covariance the method actually realises: Re(K).
  [[nodiscard]] const numeric::CMatrix& achieved_covariance() const noexcept {
    return achieved_;
  }

 private:
  std::size_t dim_;
  numeric::CMatrix achieved_;  // Re(K) widened back to complex
  numeric::CMatrix coloring_;
};

}  // namespace rfade::baselines
