#pragma once

/// \file fft.hpp
/// \brief Complex FFT: iterative radix-2 Cooley-Tukey plus Bluestein's
///        algorithm for arbitrary lengths.
///
/// Conventions (matching the paper's Fig. 2 / Eq. (17) usage):
///   forward : X[k] = sum_l x[l] e^{-i 2 pi k l / N}     (unnormalised)
///   inverse : x[l] = sum_k X[k] e^{+i 2 pi k l / N}     (unnormalised)
///   idft    : inverse scaled by 1/N — the exact operator in the paper's
///             u_j[l] = (1/M) sum_k U_j[k] e^{i 2 pi k l / M}.
///
/// The Young-Beaulieu generator uses M = 4096 (a power of two) but the
/// library supports any M >= 1 via Bluestein, so callers can match an
/// arbitrary autocorrelation-design length.

#include "rfade/numeric/matrix.hpp"

namespace rfade::fft {

using numeric::cdouble;
using numeric::CVector;

/// Transform direction (see file comment for sign conventions).
enum class Direction { Forward, Inverse };

/// True when \p n is a power of two (n == 0 returns false).
[[nodiscard]] bool is_power_of_two(std::size_t n);

/// In-place radix-2 FFT; \p data.size() must be a power of two.
void fft_pow2_inplace(CVector& data, Direction direction);

/// FFT of any length: radix-2 when possible, Bluestein otherwise.
/// Unnormalised in both directions.
[[nodiscard]] CVector transform(const CVector& data, Direction direction);

/// Unnormalised forward DFT.
[[nodiscard]] CVector dft(const CVector& data);

/// Inverse DFT including the 1/N factor — the paper's IDFT operator.
[[nodiscard]] CVector idft(const CVector& data);

/// O(N^2) reference DFT used by the test suite to validate the FFT.
[[nodiscard]] CVector naive_dft(const CVector& data, Direction direction);

}  // namespace rfade::fft
