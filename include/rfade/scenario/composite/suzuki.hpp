#pragma once

/// \file suzuki.hpp
/// \brief Suzuki (lognormal-over-Rayleigh) composite fading on the
///        shared plan/stream layers.
///
/// The Suzuki process (Suzuki, "A Statistical Model for Urban Radio
/// Propagation", IEEE Trans. Commun. 25(7), 1977) models the received
/// envelope as a Rayleigh small-scale process whose local mean is
/// modulated by slow lognormal shadowing:
///
///   Z_l = g(l) (.) (L W_l / sigma_w),   r_j = |z_j| = g_j R_j,
///
/// with g the correlated-lognormal amplitude gain of
/// scenario/composite/shadowing.hpp (Gudmundson-correlated in time,
/// optionally correlated across branches through its own coloring plan)
/// and L W / sigma_w the paper's correlated diffuse core — the diffuse
/// cross-covariance stays exactly whatever covariance spec the scenario
/// was built on, because the gain multiplies *after* coloring.  Branch
/// j's envelope marginal is the exact stats::SuzukiDistribution
/// (lognormal mixture of Rayleigh laws), which feeds the PR-2
/// envelope-domain KS validators.
///
/// Two generation modes on the shared machinery:
///   * instant/batched — SamplePipeline blocks with the shadowing gain
///     threaded through PipelineOptions::gain: sample_block(count, seed,
///     b) stays a pure function of the key (the gain keys its own
///     seekable white tape off the same seed);
///   * continuous stream — make_stream() injects the gain into a
///     core::FadingStream, so every BranchSource backend (independent /
///     WOLA / overlap-save) gains Suzuki shadowing with
///     next_block()/seek() still equivalent to the keyed
///     generate_block(seed, b) path.

#include <cstdint>
#include <memory>
#include <vector>

#include "rfade/core/fading_stream.hpp"
#include "rfade/core/plan.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/scenario/composite/shadowing.hpp"
#include "rfade/stats/distributions.hpp"

namespace rfade::scenario::composite {

/// Options for SuzukiGenerator's batched paths.
struct SuzukiOptions {
  /// Rows per block in sample_stream (also the Philox substream
  /// granularity, so changing it changes the stream's bit pattern).
  std::size_t block_size = 4096;
  /// Fan stream blocks over the global thread pool (bit-identical either
  /// way).
  bool parallel = true;
  /// Coloring options applied when the plan is built from a raw
  /// covariance.
  core::ColoringOptions coloring;
};

/// Generator of N jointly-correlated Suzuki envelopes: correlated
/// lognormal shadowing over the paper's correlated Rayleigh core.
class SuzukiGenerator {
 public:
  /// Build the diffuse plan from a raw covariance.
  SuzukiGenerator(numeric::CMatrix diffuse_covariance, ShadowingSpec shadowing,
                  SuzukiOptions options = {});

  /// Share an existing diffuse plan; options.coloring is ignored.
  SuzukiGenerator(std::shared_ptr<const core::ColoringPlan> plan,
                  ShadowingSpec shadowing, SuzukiOptions options = {});

  /// Number of envelopes N.
  [[nodiscard]] std::size_t dimension() const noexcept {
    return plan_->dimension();
  }

  /// The diffuse plan (paper steps 1-5).
  [[nodiscard]] const std::shared_ptr<const core::ColoringPlan>& plan()
      const noexcept {
    return plan_;
  }

  /// Diffuse K_bar = L L^H.
  [[nodiscard]] const numeric::CMatrix& effective_covariance() const noexcept {
    return plan_->effective_covariance();
  }

  /// The shared shadowing design (validated spec, FIR taps, branch
  /// coloring).
  [[nodiscard]] const std::shared_ptr<const ShadowingDesign>&
  shadowing_design() const noexcept {
    return shadowing_;
  }

  /// The shadowing gain source realised for generation seed \p seed
  /// (GainSource::dynamic over a keyed ShadowingProcess) — what every
  /// draw path threads through PipelineOptions::gain.
  [[nodiscard]] core::GainSource shadowing_gain(std::uint64_t seed) const;

  /// A draw pipeline with the seed-keyed shadowing gain installed.
  [[nodiscard]] core::SamplePipeline make_pipeline(std::uint64_t seed) const;

  // --- instant/batched draws (block-keyed like SamplePipeline) --------------

  /// One block of \p count composite draws keyed by (\p seed,
  /// \p block_index) — a pure function of the key; rows carry the
  /// absolute instants block_index * block_size + t, which index the
  /// shadowing trajectory.
  [[nodiscard]] numeric::CMatrix sample_block(std::size_t count,
                                              std::uint64_t seed,
                                              std::uint64_t block_index) const;

  /// \p count draws as a count x N matrix, block-parallel over the
  /// thread pool; bit-identical for any thread count.
  [[nodiscard]] numeric::CMatrix sample_stream(std::size_t count,
                                               std::uint64_t seed) const;

  /// Envelope moduli of sample_stream: count x N real matrix.
  [[nodiscard]] numeric::RMatrix sample_envelope_stream(
      std::size_t count, std::uint64_t seed) const;

  // --- continuous stream mode ----------------------------------------------

  /// A FadingStream with this scenario's shadowing gain injected
  /// (keyed off \p options.seed); every backend works, and
  /// next_block()/seek() remain equivalent to generate_block(seed(), b).
  /// \p options.gain and \p options.coloring are overwritten.
  [[nodiscard]] core::FadingStream make_stream(
      core::FadingStreamOptions options = {}) const;

  // --- theory / validation ---------------------------------------------------

  /// Exact Suzuki marginal of branch \p j from the diffuse effective
  /// diagonal and the branch's effective shadowing sigma_dB.
  [[nodiscard]] stats::SuzukiDistribution branch_marginal(
      std::size_t j) const;

  /// All N marginals for core::validate_envelope_source.
  [[nodiscard]] std::vector<core::EnvelopeMarginal> marginals() const;

 private:
  std::shared_ptr<const core::ColoringPlan> plan_;
  std::shared_ptr<const ShadowingDesign> shadowing_;
  SuzukiOptions options_;
};

/// One-call envelope-domain validation of a Suzuki generator against its
/// exact lognormal-mixture marginals (KS + moment checks through the
/// shared deterministic chunked Monte-Carlo).
///
/// \p instant_stride thins the trace: each retained sample is
/// \p instant_stride instants after the previous one (stride 1 keeps
/// every sample).  The KS machinery assumes (nearly) independent
/// samples, while shadowing correlates envelopes over the decorrelation
/// distance — pick stride >> decorrelation_samples for calibrated KS
/// p-values; the moment columns are consistent either way.
[[nodiscard]] core::EnvelopeValidationReport validate_suzuki(
    const SuzukiGenerator& generator,
    const core::ValidationOptions& options = {},
    std::size_t instant_stride = 1);

}  // namespace rfade::scenario::composite
