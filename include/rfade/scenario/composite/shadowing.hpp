#pragma once

/// \file shadowing.hpp
/// \brief Correlated lognormal shadowing: a Gudmundson-style
///        exponentially correlated Gaussian-in-dB gain process behind the
///        core::TimeVaryingGain hook.
///
/// Composite (Suzuki) channels modulate the paper's correlated diffuse
/// field by a slowly-varying lognormal amplitude gain (Suzuki, "A
/// Statistical Model for Urban Radio Propagation", IEEE Trans. Commun.
/// 25(7), 1977).  The canonical correlation model for the dB-domain
/// Gaussian S is Gudmundson's exponential law
///
///   E[S(l) S(l + d)] = sigma_dB^2 e^{-|d| / D}
///
/// ("Correlation Model for Shadow Fading in Mobile Radio Systems",
/// Electron. Lett. 27(23), 1991), with D the decorrelation distance in
/// samples.  ShadowingProcess realises that law with the same
/// key-addressed design as every other rfade stream — any gain value is
/// a pure function of (seed, absolute instant):
///
///   * the unit-variance dB field is synthesised on a coarse grid (one
///     node per `spacing` samples) as a truncated-FIR moving average of a
///     *seekable* white bulk-Philox tape: node t is sum_k h[k] w[t+K-1-k]
///     with h[k] = c a^k, a = e^{-spacing / D}, and c chosen for exactly
///     unit variance — the ACF on the grid is a^{|d|} up to the
///     truncation tolerance, i.e. Gudmundson's law sampled at the node
///     rate.  Because the tape is indexed by absolute node position
///     (random::fill_complex_gaussians_planar with a sample offset),
///     blocks of gains regenerate independently, in any order, on any
///     thread — shadowing composes with every BranchSource backend and
///     with seek();
///   * cross-branch correlation runs through the process's own small
///     coloring plan: the branch correlation matrix R_s is PSD-forced and
///     factored by core::ColoringPlan (the paper's steps 3-5 applied to
///     the shadowing field), and the per-branch white tapes are mixed
///     with the resulting L_s, so E[S_j S_k] = sigma_dB^2 Re(L_s L_s^H)_jk;
///   * within a coarse interval the *amplitude* gain 10^{S/20} is
///     linearly interpolated between the neighbouring nodes — continuous
///     envelopes at a per-sample cost of one lerp per branch.  Shadowing
///     varies over hundreds-to-thousands of samples, so adjacent nodes
///     are nearly equal and the interpolated marginal is lognormal to
///     well below Monte-Carlo resolution (use spacing = 1 for the exact
///     law at every sample).
///
/// ShadowingDesign is the immutable build-once half (validation, FIR
/// taps, branch coloring); ShadowingProcess binds a design to a seed and
/// is the cheap per-realisation object handed to GainSource::dynamic.

#include <cstdint>
#include <memory>
#include <span>

#include "rfade/core/gain_source.hpp"
#include "rfade/core/plan.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/stats/distributions.hpp"

namespace rfade::scenario::composite {

/// Parameters of a correlated-lognormal shadowing field (see file
/// comment for the model).
struct ShadowingSpec {
  /// dB-domain standard deviation sigma_dB; typical urban values are
  /// 3-10 dB.  \pre 0 < sigma_db <= 20.
  double sigma_db = 4.0;
  /// dB-domain mean (median gain in dB); 0 keeps the composite power
  /// centred on the diffuse power.  \pre |mean_db| <= 40.
  double mean_db = 0.0;
  /// Gudmundson decorrelation distance D in samples: ACF e^{-|d| / D}.
  /// \pre finite, >= 1.
  double decorrelation_samples = 2048.0;
  /// Coarse-grid spacing in samples (one synthesised dB node per
  /// `spacing` samples, amplitude-lerped in between).  \pre >= 1;
  /// spacing = 1 synthesises every sample exactly.
  std::size_t spacing = 64;
  /// Cross-branch correlation of the dB fields (N x N, symmetric, unit
  /// diagonal, entries in [-1, 1]).  Empty = independent branches.  Not
  /// necessarily PD — the coloring plan PSD-forces it exactly like the
  /// paper forces K.
  numeric::RMatrix branch_correlation;
  /// FIR truncation tolerance: taps stop once a^K <= tolerance, so the
  /// realised ACF is a^{|d|} (1 - a^{2(K-d)}) / (1 - a^{2K}).
  /// \pre in (0, 0.1].
  double truncation_tolerance = 1e-6;
};

/// Immutable build-once description of a shadowing field: validated
/// spec, FIR taps, and the branch coloring plan.  One design serves any
/// number of keyed ShadowingProcess realisations.
class ShadowingDesign {
 public:
  /// \param dimension number of branches N >= 1.  When the spec carries
  ///        a branch correlation its size must be N x N.
  ShadowingDesign(std::size_t dimension, ShadowingSpec spec);

  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }
  [[nodiscard]] const ShadowingSpec& spec() const noexcept { return spec_; }

  /// Per-node AR coefficient a = e^{-spacing / D} of the coarse grid.
  [[nodiscard]] double coarse_alpha() const noexcept { return alpha_; }

  /// FIR length K (a^K <= truncation tolerance, capped at 1 << 15).
  [[nodiscard]] std::size_t taps() const noexcept { return taps_.size(); }

  /// Realised cross-branch dB correlation Re(L_s L_s^H) after PSD
  /// forcing (identity when the spec has no branch correlation).
  [[nodiscard]] const numeric::RMatrix& effective_branch_correlation()
      const noexcept {
    return effective_correlation_;
  }

  /// Effective dB standard deviation of branch \p j:
  /// sigma_dB sqrt(R_bar_jj) (differs from spec().sigma_db only when PSD
  /// forcing moved the diagonal).
  [[nodiscard]] double effective_sigma_db(std::size_t j) const;

  /// Exact lognormal marginal of branch \p j's amplitude gain.
  [[nodiscard]] stats::LognormalDistribution gain_marginal(
      std::size_t j) const;

  /// The normalised FIR taps h[k] = c a^k (sum of squares 1).
  [[nodiscard]] const numeric::RVector& taps_vector() const noexcept {
    return taps_;
  }

  /// True when branches are mixed by a non-identity L_s.
  [[nodiscard]] bool has_mixing() const noexcept {
    return mixing_.size() > 0;
  }

  /// The branch mixing matrix L_s (empty when has_mixing() is false).
  [[nodiscard]] const numeric::CMatrix& mixing_matrix() const noexcept {
    return mixing_;
  }

 private:
  std::size_t dim_;
  ShadowingSpec spec_;
  double alpha_;
  /// h[k] = c a^k with sum h^2 == 1.
  numeric::RVector taps_;
  /// Branch mixing matrix L_s (empty = identity / independent branches).
  numeric::CMatrix mixing_;
  numeric::RMatrix effective_correlation_;
};

/// One keyed realisation of a shadowing field: the TimeVaryingGain
/// handed to GainSource::dynamic / FadingStreamOptions::gain.  Gains are
/// pure functions of (seed, absolute instant) — seekable, order-free,
/// thread-free.
class ShadowingProcess final : public core::TimeVaryingGain {
 public:
  ShadowingProcess(std::shared_ptr<const ShadowingDesign> design,
                   std::uint64_t seed);

  /// Convenience: build a fresh design (validates \p spec) and bind it.
  ShadowingProcess(std::size_t dimension, ShadowingSpec spec,
                   std::uint64_t seed);

  [[nodiscard]] std::size_t dimension() const noexcept override {
    return design_->dimension();
  }

  void gains_for_rows(std::uint64_t first_instant, std::size_t rows,
                      std::span<double> out) const override;

  [[nodiscard]] const std::shared_ptr<const ShadowingDesign>& design()
      const noexcept {
    return design_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// dB field at coarse node \p node (mean_db + sigma_db S_j), one entry
  /// per branch — the quantity Gudmundson's ACF is stated for; exposed
  /// for statistical tests.
  [[nodiscard]] numeric::RVector node_db(std::uint64_t node) const;

 private:
  /// Amplitude gains at coarse nodes [first_node, first_node + count):
  /// out is count x N row-major.
  void node_gains(std::uint64_t first_node, std::size_t count,
                  double* out) const;

  std::shared_ptr<const ShadowingDesign> design_;
  std::uint64_t seed_;
};

}  // namespace rfade::scenario::composite
