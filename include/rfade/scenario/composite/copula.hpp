#pragma once

/// \file copula.hpp
/// \brief Gaussian-copula marginal transform: correlated Nakagami-m /
///        Weibull envelope sets over the paper's correlated
///        complex-Gaussian core.
///
/// The paper's generator hits an arbitrary covariance at the
/// complex-Gaussian level; many link abstractions instead specify (a)
/// non-Rayleigh *marginals* (Nakagami-m, Weibull) and (b) a correlation
/// target in the *envelope* domain.  Following the Gaussian-copula
/// construction analysed by Xu, Ye, Chu, Lu, Rostami Ghadi & Wong,
/// "Gaussian Copula-Based Outage Performance Analysis of Fluid Antenna
/// Systems: Channel Coefficient- or Envelope-Level Correlation Matrix?"
/// (arXiv:2509.09411), each branch of the correlated core is pushed
/// through its exact probability transform:
///
///   x_j = |z_j|^2 / K_bar_jj  ~ Exp(1)   (the Rayleigh-core copula),
///   u_j = 1 - e^{-x_j}        ~ U(0, 1),
///   r_j = F_j^{-1}(u_j)                   (inverse target CDF),
///
/// which preserves the core's dependence structure exactly while giving
/// branch j any continuous marginal F_j.  The envelope-domain Pearson
/// correlation realised between two transformed branches depends only on
/// the power correlation lambda = |rho_g|^2 of the underlying Gaussians,
/// through the bivariate-exponential (Downton) Laguerre expansion
///
///   rho_env(lambda) = sum_{k >= 1} lambda^k c_k^{(i)} c_k^{(j)}
///                     / sqrt(Var_i Var_j),
///   c_k = integral_0^inf F^{-1}(1 - e^{-x}) L_k(x) e^{-x} dx,
///
/// a strictly increasing map.  CopulaMarginalTransform precomputes the
/// c_k tables once per marginal, *pre-distorts* the caller's envelope
/// correlation target through the inverse map (the Rayleigh<->Nakagami
/// covariance pre-distortion of the roadmap — Rayleigh marginals
/// reproduce the exact 2F1 envelope-correlation law of
/// core/envelope_correlation.hpp as a special case), assembles the core
/// covariance K_g with those lambdas, and lets the plan layer PSD-force
/// it exactly as the paper forces K.  Draws ride the batched
/// SamplePipeline paths (block-keyed, thread-free) with the transform
/// applied per sample.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rfade/core/plan.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/numeric/matrix.hpp"

namespace rfade::scenario::composite {

/// One branch's target envelope marginal: exact quantile/CDF plus the
/// analytic moments the correlation machinery and validators need.
class CopulaMarginal {
 public:
  /// Nakagami-m marginal (stats::NakagamiDistribution).
  /// \pre m >= 0.5, omega > 0.
  [[nodiscard]] static CopulaMarginal nakagami(double m, double omega);

  /// Weibull marginal (stats::WeibullDistribution).  \pre shape > 0,
  /// scale > 0.
  [[nodiscard]] static CopulaMarginal weibull(double shape, double scale);

  /// Rayleigh marginal with complex-Gaussian power sigma_g^2 — the
  /// identity transform up to scale, kept as the exactness anchor.
  [[nodiscard]] static CopulaMarginal rayleigh(double sigma_g_squared);

  [[nodiscard]] const std::string& family() const noexcept { return family_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept { return variance_; }
  [[nodiscard]] double quantile(double p) const { return quantile_(p); }
  [[nodiscard]] double cdf(double r) const { return cdf_(r); }

 private:
  std::string family_;
  double mean_ = 0.0;
  double variance_ = 0.0;
  std::function<double(double)> quantile_;
  std::function<double(double)> cdf_;
};

/// Options for CopulaMarginalTransform.
struct CopulaOptions {
  /// Laguerre terms K of the correlation expansion; the lambda^K tail
  /// bounds the truncation error, so ~96 covers any target <= 0.95.
  std::size_t laguerre_terms = 96;
  /// Composite-Simpson panels (in sqrt(x)) of the coefficient
  /// quadrature.
  std::size_t quadrature_panels = 4096;
  /// Rows per block in sample_envelope_stream (Philox substream
  /// granularity).
  std::size_t block_size = 4096;
  /// Fan stream blocks over the global thread pool.
  bool parallel = true;
  /// Coloring options of the core plan (PSD forcing etc.).
  core::ColoringOptions coloring;
};

/// Generator of N envelopes with prescribed marginals and a prescribed
/// envelope-domain correlation, via the Gaussian copula over the
/// paper's correlated core (see file comment).
class CopulaMarginalTransform {
 public:
  /// \param envelope_correlation N x N symmetric target with unit
  ///        diagonal and off-diagonal entries in [0, 1); must be
  ///        reachable for the given marginal pair (throws otherwise).
  /// \param marginals one target marginal per branch.
  CopulaMarginalTransform(numeric::RMatrix envelope_correlation,
                          std::vector<CopulaMarginal> marginals,
                          CopulaOptions options = {});

  [[nodiscard]] std::size_t dimension() const noexcept {
    return marginals_.size();
  }
  [[nodiscard]] const numeric::RMatrix& envelope_correlation_target()
      const noexcept {
    return target_;
  }
  [[nodiscard]] const CopulaMarginal& marginal(std::size_t j) const;

  /// The pre-distorted complex-Gaussian core covariance K_g (unit
  /// diagonal, real entries sqrt(lambda_ij)) handed to the plan layer.
  [[nodiscard]] const numeric::CMatrix& core_covariance() const noexcept {
    return core_covariance_;
  }

  /// The power correlation lambda_ij the pre-distortion chose for a
  /// pair (the quantity the Downton expansion is a function of).
  [[nodiscard]] double predistorted_power_correlation(std::size_t i,
                                                      std::size_t j) const;

  /// The shared core plan (PSD forcing may have adjusted K_g).
  [[nodiscard]] const std::shared_ptr<const core::ColoringPlan>& plan()
      const noexcept {
    return pipeline_.plan_handle();
  }

  /// Forward map: the envelope correlation the transform realises
  /// between branches \p i and \p j when their Gaussians have power
  /// correlation \p gaussian_power_correlation in [0, 1].
  [[nodiscard]] double pair_envelope_correlation(
      std::size_t i, std::size_t j, double gaussian_power_correlation) const;

  /// Envelope correlation predicted under the plan's *effective* core
  /// covariance — equals the target when no PSD forcing was needed.
  [[nodiscard]] numeric::RMatrix predicted_envelope_correlation() const;

  // --- draws (block-keyed like SamplePipeline) ------------------------------

  /// One block of \p count transformed envelopes keyed by (\p seed,
  /// \p block_index): the core block pushed through Phi -> F_j^{-1}
  /// per branch.  Pure function of the key.
  [[nodiscard]] numeric::RMatrix sample_envelope_block(
      std::size_t count, std::uint64_t seed, std::uint64_t block_index) const;

  /// \p count transformed envelope draws, block-parallel over the
  /// thread pool; bit-identical for any thread count.
  [[nodiscard]] numeric::RMatrix sample_envelope_stream(
      std::size_t count, std::uint64_t seed) const;

  /// All N marginals for core::validate_envelope_source.
  [[nodiscard]] std::vector<core::EnvelopeMarginal> marginals() const;

 private:
  /// In-place transform of a core block (count x N) to envelopes.
  void transform_block(const numeric::CMatrix& core,
                       numeric::RMatrix& out) const;

  numeric::RMatrix target_;
  std::vector<CopulaMarginal> marginals_;
  CopulaOptions options_;
  /// Per-branch Laguerre coefficients c_0 .. c_{K-1} of the
  /// standardized transform g(x) = F^{-1}(1 - e^{-x}).
  std::vector<std::vector<double>> laguerre_;
  /// Pre-distorted pairwise power correlations lambda_ij.
  numeric::RMatrix lambda_;
  numeric::CMatrix core_covariance_;
  core::SamplePipeline pipeline_;
  /// Effective per-branch core powers K_bar_jj (normalisation of the
  /// exponential copula variable).
  numeric::RVector core_power_;
};

/// One-call envelope-domain validation of a copula transform against its
/// exact target marginals.
[[nodiscard]] core::EnvelopeValidationReport validate_copula(
    const CopulaMarginalTransform& transform,
    const core::ValidationOptions& options = {});

}  // namespace rfade::scenario::composite
