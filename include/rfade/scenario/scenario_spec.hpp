#pragma once

/// \file scenario_spec.hpp
/// \brief Scenario layer: Rician/LOS extensions of the paper's correlated
///        Rayleigh generator on the shared plan layer (plan.hpp).
///
/// The paper's algorithm colors i.i.d. complex Gaussians to hit an
/// arbitrary covariance K of the *diffuse* components (steps 1-7).  A
/// line-of-sight scenario adds a deterministic specular component per
/// branch on top of the same colored diffuse field:
///
///   Z = L W / sigma_w + m,     m_j = sqrt(K_j K_bar_jj) e^{i phi_j}
///
/// where K_j is branch j's Rician K-factor (LOS-to-diffuse power ratio)
/// and phi_j its LOS phase.  The envelope |z_j| is then Rician with the
/// exact marginal stats::RicianDistribution — and the cross-branch diffuse
/// correlation is still whatever covariance spec the scenario was built
/// on, because the mean is added *after* coloring and never interacts
/// with normalization.  K_j = 0 for every branch degenerates to the
/// paper's pure-Rayleigh generator bit-for-bit (the pipeline drops the
/// all-zero mean pass entirely).
///
/// ScenarioSpec is the build-once description: diffuse covariance +
/// per-branch K-factors/phases.  It produces the shared ColoringPlan,
/// derives the LOS mean vector from the plan's *effective* covariance
/// (post PSD-forcing — the diffuse power the generator actually
/// realises), threads the mean into SamplePipeline / EnvelopeGenerator /
/// RealTimeGenerator options, and exposes the analytic per-branch
/// envelope marginals the envelope-domain validators compare against.
///
/// Cascaded (double) Rayleigh scenarios — the other extension axis, after
/// Ibdah & Ding, "Statistical Simulation Models for Cascaded Rayleigh
/// Fading Channels" — live in scenario/cascaded.hpp.

#include <memory>
#include <vector>

#include "rfade/core/plan.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/stats/distributions.hpp"

namespace rfade::scenario {

/// Per-branch LOS description: Rician K-factor (>= 0, LOS power over
/// diffuse power) and the LOS phase in radians.
struct RicianBranch {
  double k_factor = 0.0;
  double los_phase = 0.0;
};

/// Immutable description of one generation scenario: a diffuse covariance
/// (any covariance spec — spectral, spatial, hand-built) plus optional
/// per-branch LOS components.
class ScenarioSpec {
 public:
  /// Pure-Rayleigh scenario (every K-factor zero) — the paper's baseline.
  static ScenarioSpec rayleigh(numeric::CMatrix diffuse_covariance);

  /// Uniform-K Rician scenario: every branch gets the same K-factor and
  /// LOS phase.  \pre k_factor >= 0 and finite.
  static ScenarioSpec rician(numeric::CMatrix diffuse_covariance,
                             double k_factor, double los_phase = 0.0);

  /// Per-branch Rician scenario.  \pre branches.size() == N, every
  /// K-factor >= 0 and finite.
  static ScenarioSpec rician(numeric::CMatrix diffuse_covariance,
                             std::vector<RicianBranch> branches);

  [[nodiscard]] std::size_t dimension() const noexcept {
    return diffuse_.rows();
  }
  [[nodiscard]] const numeric::CMatrix& diffuse_covariance() const noexcept {
    return diffuse_;
  }
  [[nodiscard]] const std::vector<RicianBranch>& branches() const noexcept {
    return branches_;
  }
  /// True when any branch has K > 0.
  [[nodiscard]] bool has_los() const noexcept { return has_los_; }

  /// Build the shared coloring plan of the diffuse part (steps 1-5).
  [[nodiscard]] std::shared_ptr<const core::ColoringPlan> build_plan(
      core::ColoringOptions options = {}) const;

  /// LOS mean vector m_j = sqrt(K_j K_bar_jj) e^{i phi_j}, derived from
  /// the plan's effective (realised) covariance diagonal.  Empty when the
  /// scenario has no LOS component — so a K = 0 pipeline is bit-identical
  /// to the plain Rayleigh one.
  [[nodiscard]] numeric::CVector los_mean(const core::ColoringPlan& plan) const;

  /// Moving-terminal LOS: the same mean with the line-of-sight Doppler
  /// shift applied per time instant, m_j(l) = m_j e^{i 2 pi f_LOS l}
  /// (core::MeanSource::doppler_phasor), for RealTimeOptions::los_mean or
  /// any pipeline mean hook.  Zero when the scenario has no LOS
  /// component.  \pre |normalized_los_doppler| <= 0.5, finite.
  [[nodiscard]] core::MeanSource doppler_los_mean(
      const core::ColoringPlan& plan, double normalized_los_doppler) const;

  /// Draw-phase executor with the LOS mean threaded into the batched /
  /// streamed / per-draw hot paths.  \p options.mean_offset is overwritten.
  [[nodiscard]] core::SamplePipeline make_pipeline(
      std::shared_ptr<const core::ColoringPlan> plan,
      core::PipelineOptions options = {}) const;

  /// Analytic marginal of branch \p j (Rician; exact Rayleigh when K = 0)
  /// under the plan's effective covariance.
  [[nodiscard]] stats::RicianDistribution branch_marginal(
      const core::ColoringPlan& plan, std::size_t j) const;

  /// All N analytic envelope marginals, ready for the envelope-domain
  /// validators (core::validate_envelopes).
  [[nodiscard]] std::vector<core::EnvelopeMarginal> marginals(
      const core::ColoringPlan& plan) const;

 private:
  ScenarioSpec(numeric::CMatrix diffuse, std::vector<RicianBranch> branches);

  numeric::CMatrix diffuse_;
  std::vector<RicianBranch> branches_;
  bool has_los_ = false;
};

/// One-call envelope-domain validation of a scenario: builds the pipeline
/// on \p plan and runs core::validate_envelopes against the scenario's
/// analytic marginals.
[[nodiscard]] core::EnvelopeValidationReport validate_scenario(
    const ScenarioSpec& spec, std::shared_ptr<const core::ColoringPlan> plan,
    const core::ValidationOptions& options = {});

}  // namespace rfade::scenario
