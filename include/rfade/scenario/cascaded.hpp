#pragma once

/// \file cascaded.hpp
/// \brief Cascaded (double) Rayleigh envelopes from two correlated
///        complex-Gaussian stages on shared coloring plans.
///
/// Mobile-to-mobile and keyhole channels are modelled as the *product* of
/// two independent Rayleigh stages (Ibdah & Ding, "Statistical Simulation
/// Models for Cascaded Rayleigh Fading Channels"): each time instant
///
///   Z = Z1 (.) Z2,   Z_s = L_s W_s / sigma_w   (s = 1, 2; (.) Hadamard)
///
/// where each stage is the paper's generator on its own ColoringPlan —
/// stage 1 carrying, e.g., the TX-side spatial correlation and stage 2 the
/// RX-side.  The stages draw from disjoint Philox key spaces derived from
/// one user seed, so the cascaded stream inherits the plan layer's
/// bit-reproducibility (any thread count, blocks regenerable in any
/// order).
///
/// Correlation accounting: with independent stages,
///   E[z_k conj(z_j)] = K1_kj K2_kj
/// — the *Hadamard product* of the stage covariances is the effective
/// covariance of the cascaded process (Schur's product theorem keeps it
/// PSD).  Envelope moments follow from the product of independent
/// Rayleigh moments:
///   E[r]   = (pi/4) sigma_1 sigma_2
///   E[r^2] = sigma_1^2 sigma_2^2
///   E[r^4] = 4 sigma_1^4 sigma_2^4  =>  amount of fading = 3 (vs 1 for
///   Rayleigh — the deeper-fade signature of the cascade).
///
/// envelope_moment_diagnostics() measures all of the above against theory
/// with the same deterministic chunked Monte-Carlo the validators use.

#include <cstdint>
#include <memory>
#include <vector>

#include "rfade/core/plan.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/stats/distributions.hpp"

namespace rfade::scenario {

/// Options for CascadedRayleighGenerator.
struct CascadedOptions {
  /// Rows per block in sample_stream (also the Philox substream
  /// granularity, so changing it changes the stream's bit pattern).
  std::size_t block_size = 4096;
  /// Fan stream blocks over the global thread pool (bit-identical either
  /// way).
  bool parallel = true;
  /// Coloring options applied when plans are built from raw covariances.
  core::ColoringOptions coloring;
};

/// Measured-vs-theory report of envelope_moment_diagnostics().
struct CascadedMomentReport {
  std::size_t samples = 0;
  numeric::RVector measured_mean;
  numeric::RVector expected_mean;
  numeric::RVector mean_rel_error;
  numeric::RVector measured_second_moment;
  numeric::RVector expected_second_moment;
  numeric::RVector second_moment_rel_error;
  /// Measured E[r^4]/E[r^2]^2 - 1 per branch (theory: 3).
  numeric::RVector measured_amount_of_fading;
  /// Sample complex covariance of Z vs the Hadamard product K1 (.) K2,
  /// relative Frobenius.
  double covariance_rel_error = 0.0;
  double max_mean_rel_error = 0.0;
  double max_second_moment_rel_error = 0.0;
};

/// Generator of N cascaded Rayleigh envelopes with per-stage correlation.
class CascadedRayleighGenerator {
 public:
  /// Share two stage plans (equal dimension).  CascadedOptions::coloring
  /// is ignored — the plans already encode it.
  CascadedRayleighGenerator(std::shared_ptr<const core::ColoringPlan> first,
                            std::shared_ptr<const core::ColoringPlan> second,
                            CascadedOptions options = {});

  /// Build both plans from raw stage covariances.
  CascadedRayleighGenerator(numeric::CMatrix first_covariance,
                            numeric::CMatrix second_covariance,
                            CascadedOptions options = {});

  /// Number of envelopes N.
  [[nodiscard]] std::size_t dimension() const noexcept {
    return first_.dimension();
  }
  [[nodiscard]] const core::SamplePipeline& first_stage() const noexcept {
    return first_;
  }
  [[nodiscard]] const core::SamplePipeline& second_stage() const noexcept {
    return second_;
  }

  /// The Hadamard product K1 (.) K2 of the stage effective covariances —
  /// the covariance the cascaded process realises.
  [[nodiscard]] const numeric::CMatrix& effective_covariance() const noexcept {
    return effective_;
  }

  // --- theory (per branch, from the stage effective diagonals) -------------

  /// Closed-form double-Rayleigh marginal of branch \p j (envelope CDF
  /// 1 - x K_1(x) via Bessel K), from the stage effective diagonals —
  /// what upgrades the cascaded validator from moment checks to KS tests.
  [[nodiscard]] stats::DoubleRayleighDistribution branch_marginal(
      std::size_t j) const;

  /// All N marginals for core::validate_envelope_source.
  [[nodiscard]] std::vector<core::EnvelopeMarginal> marginals() const;

  /// E[r_j] = (pi/4) sigma_1j sigma_2j.
  [[nodiscard]] double envelope_mean(std::size_t j) const;
  /// E[r_j^2] = sigma_1j^2 sigma_2j^2.
  [[nodiscard]] double envelope_second_moment(std::size_t j) const;
  /// Var[r_j] = sigma_1j^2 sigma_2j^2 (1 - pi^2/16).
  [[nodiscard]] double envelope_variance(std::size_t j) const;
  /// E[r_j^4] = 4 sigma_1j^4 sigma_2j^4.
  [[nodiscard]] double envelope_fourth_moment(std::size_t j) const;

  // --- draws (deterministic, block-keyed like SamplePipeline) --------------

  /// One block of \p count cascaded draws keyed by (\p seed,
  /// \p block_index): the Hadamard product of the two stages' batched
  /// blocks.  Stage s draws from Philox keys derived as stage_seed(seed,
  /// s), so the stages are mutually independent and both are pure
  /// functions of the arguments.
  [[nodiscard]] numeric::CMatrix sample_block(std::size_t count,
                                              std::uint64_t seed,
                                              std::uint64_t block_index) const;

  /// \p count cascaded draws as a count x N matrix, block-parallel over
  /// the thread pool; bit-identical for any thread count.
  [[nodiscard]] numeric::CMatrix sample_stream(std::size_t count,
                                               std::uint64_t seed) const;

  /// Envelope moduli of sample_stream: count x N real matrix.
  [[nodiscard]] numeric::RMatrix sample_envelope_stream(
      std::size_t count, std::uint64_t seed) const;

  /// Deterministic chunked Monte-Carlo of the envelope moments and the
  /// Hadamard covariance claim.
  [[nodiscard]] CascadedMomentReport envelope_moment_diagnostics(
      std::size_t samples, std::uint64_t seed) const;

  /// The derived Philox seed of stage \p stage (0 or 1) — exposed so
  /// tests can reproduce stage draws independently.
  [[nodiscard]] static std::uint64_t stage_seed(std::uint64_t seed,
                                                std::uint64_t stage);

 private:
  core::SamplePipeline first_;
  core::SamplePipeline second_;
  CascadedOptions options_;
  numeric::CMatrix effective_;
};

/// One-call envelope-domain validation of a cascaded generator against
/// its closed-form double-Rayleigh marginals — KS tests on the exact
/// Bessel-K CDF, not just moment checks.
[[nodiscard]] core::EnvelopeValidationReport validate_cascaded(
    const CascadedRayleighGenerator& generator,
    const core::ValidationOptions& options = {});

}  // namespace rfade::scenario
