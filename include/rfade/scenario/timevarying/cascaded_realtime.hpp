#pragma once

/// \file cascaded_realtime.hpp
/// \brief Real-time (Doppler-faded) cascaded Rayleigh generation: the
///        product of two independently Doppler-faded stages.
///
/// The instant-mode cascade (scenario/cascaded.hpp, after Ibdah & Ding,
/// "Statistical Simulation Models for Cascaded Rayleigh Fading
/// Channels") multiplies two independent correlated draws per time
/// instant.  Mobile-to-mobile channels are the *real-time* version of
/// the same product: both ends move, so each stage is a full Sec. 5
/// Doppler-faded process with its own maximum Doppler, and each time
/// instant multiplies the two stage vectors elementwise:
///
///   Z[l] = Z1[l] (.) Z2[l],   Z_s[l] = L_s W_s[l] / sigma_g_s
///
/// with stage s an rfade::core::RealTimeGenerator (Young-Beaulieu IDFT
/// branches + Eq. (19) variance correction) on its own ColoringPlan and
/// its own disjoint Philox key space (CascadedRayleighGenerator's
/// stage_seed derivation), so blocks are pure functions of
/// (seed, block index).
///
/// Product accounting, for independent zero-mean stages:
///   * covariance: E[z_k conj(z_j)] = K1_kj K2_kj — the Hadamard product
///     of the stage effective covariances (Schur keeps it PSD);
///   * autocorrelation: R_j(d) = K1_jj K2_jj rho1(d) rho2(d) — the
///     *product* of the stage branch autocorrelations, each the
///     J0-approximating Eq. (17) law of its own Doppler filter.  For
///     equal-power stages with Dopplers fm1, fm2 this is the classical
///     Akki-Haber mobile-to-mobile J0(2 pi fm1 d) J0(2 pi fm2 d) shape;
///   * marginal: each branch envelope is the closed-form double-Rayleigh
///     law stats::DoubleRayleighDistribution (Bessel K), so validators
///     can run KS tests, not just moment checks.

#include <cstdint>
#include <memory>
#include <vector>

#include "rfade/core/fading_stream.hpp"
#include "rfade/core/plan.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/stats/distributions.hpp"

namespace rfade::scenario {

/// Options for CascadedRealTimeGenerator.  One IDFT size is shared by
/// both stages (the product needs matching block lengths); each stage
/// gets its own maximum Doppler — fm1 for the transmit-side motion, fm2
/// for the receive side.
struct CascadedRealTimeOptions {
  /// IDFT size M — time samples per block, for both stages.
  std::size_t idft_size = 4096;
  /// Normalised maximum Doppler of stage 1 (TX mobility), in (0, 0.5).
  double first_doppler = 0.05;
  /// Normalised maximum Doppler of stage 2 (RX mobility), in (0, 0.5).
  double second_doppler = 0.05;
  /// sigma_orig^2 per dimension at the Doppler-filter inputs.
  double input_variance_per_dim = 0.5;
  /// Eq. (19) correction vs the ref. [6] flaw, applied to both stages.
  core::VarianceHandling variance_handling =
      core::VarianceHandling::AnalyticCorrection;
  /// Coloring options applied when plans are built from raw covariances.
  core::ColoringOptions coloring;
  /// Synthesize each stage's N branch IDFTs on the global thread pool.
  bool parallel_branches = true;
  /// Temporal-synthesis backend of both stages.  The default reproduces
  /// the historical independent-block behaviour bit-for-bit; the
  /// continuous backends (core/fading_stream.hpp) make the *product*
  /// process seam-free too — the Ibdah & Ding cascades are unbounded
  /// stationary processes, and with OverlapSaveFir the simulated one is
  /// as well.
  doppler::StreamBackend backend = doppler::StreamBackend::IndependentBlock;
  /// WOLA crossfade length (0 picks idft_size / 8; WOLA backend only).
  std::size_t overlap = 0;
  /// Key of the stateful next_block() realisation (the keyed
  /// generate_block ignores it).
  std::uint64_t stream_seed = 0;
};

/// Generator of N cascaded, temporally Doppler-faded envelopes.
class CascadedRealTimeGenerator {
 public:
  /// Share two stage plans (equal dimension N).
  CascadedRealTimeGenerator(std::shared_ptr<const core::ColoringPlan> first,
                            std::shared_ptr<const core::ColoringPlan> second,
                            CascadedRealTimeOptions options = {});

  /// Build both plans from raw stage covariances.
  CascadedRealTimeGenerator(numeric::CMatrix first_covariance,
                            numeric::CMatrix second_covariance,
                            CascadedRealTimeOptions options = {});

  /// Number of envelopes N.
  [[nodiscard]] std::size_t dimension() const noexcept {
    return first_stream_.dimension();
  }
  /// Rows per generated block (M, or M - overlap for the WOLA backend).
  [[nodiscard]] std::size_t block_size() const noexcept {
    return first_stream_.block_size();
  }
  /// Independent-block (Sec. 5) view of stage 1 — the exact generator the
  /// keyed path multiplies under the default backend; kept for
  /// stage-level diagnostics and filter access.  Note it is always the
  /// independent-block engine: under the WOLA backend its block_size()
  /// is M while this generator emits M - overlap rows per block (see
  /// block_size() / first_stream() for the configured backend).
  [[nodiscard]] const core::RealTimeGenerator& first_stage() const noexcept {
    return first_;
  }
  [[nodiscard]] const core::RealTimeGenerator& second_stage() const noexcept {
    return second_;
  }
  /// The stage stream engines (the configured backend).
  [[nodiscard]] const core::FadingStream& first_stream() const noexcept {
    return first_stream_;
  }
  [[nodiscard]] const core::FadingStream& second_stream() const noexcept {
    return second_stream_;
  }

  /// The Hadamard product K1 (.) K2 of the stage effective covariances.
  [[nodiscard]] const numeric::CMatrix& effective_covariance() const noexcept {
    return effective_;
  }

  // --- draws (deterministic, keyed like the instant-mode cascade) ----------

  /// One block_size() x N block keyed by (\p seed, \p block_index): the
  /// Hadamard product of the two stages' Doppler-faded blocks, each stage
  /// drawing from its own disjoint Philox stream
  /// (stage_seed, block_index + 1).  A pure function of the key — blocks
  /// regenerate independently, in any order, on any thread — for *every*
  /// backend (continuous stages replay their one block of carried
  /// state); under the default independent-block backend it is
  /// bit-identical to the pre-stream-layer implementation.
  [[nodiscard]] numeric::CMatrix generate_block(
      std::uint64_t seed, std::uint64_t block_index = 0) const;

  /// One block of envelopes |Z|.
  [[nodiscard]] numeric::RMatrix generate_envelope_block(
      std::uint64_t seed, std::uint64_t block_index = 0) const;

  // --- continuous stream (stateful cursor keyed by options.stream_seed) ----

  /// The next block of the continuous product process: both stage
  /// streams advance in lockstep and multiply elementwise.  Equals
  /// generate_block(options.stream_seed, b) for the block index this
  /// call consumes.
  [[nodiscard]] numeric::CMatrix next_block();

  /// Envelopes |Z| of next_block().
  [[nodiscard]] numeric::RMatrix next_envelope_block();

  /// Jump the cursor to \p block_index (both stages; O(one block)).
  void seek(std::uint64_t block_index);

  /// Index of the block the next next_block() call will emit.
  [[nodiscard]] std::uint64_t next_block_index() const noexcept {
    return first_stream_.next_block_index();
  }

  // --- theory --------------------------------------------------------------

  /// rho1(d) rho2(d) for d = 0..max_lag: the normalised complex
  /// autocorrelation of every cascaded branch — the product of the stage
  /// filters' Eq. (17) laws (~ J0(2 pi fm1 d) J0(2 pi fm2 d)).
  [[nodiscard]] numeric::RVector theoretical_normalized_autocorrelation(
      std::size_t max_lag) const;

  /// Closed-form double-Rayleigh marginal of branch \p j from the stage
  /// effective diagonals.
  [[nodiscard]] stats::DoubleRayleighDistribution branch_marginal(
      std::size_t j) const;

  /// All N marginals for core::validate_envelope_source.
  [[nodiscard]] std::vector<core::EnvelopeMarginal> marginals() const;

  /// The derived Philox seed of stage \p stage (0 or 1) — the same
  /// derivation as the instant-mode cascade, exposed for tests.
  [[nodiscard]] static std::uint64_t stage_seed(std::uint64_t seed,
                                                std::uint64_t stage);

 private:
  core::RealTimeGenerator first_;
  core::RealTimeGenerator second_;
  core::FadingStream first_stream_;
  core::FadingStream second_stream_;
  numeric::CMatrix effective_;
};

}  // namespace rfade::scenario
