#pragma once

/// \file twdp.hpp
/// \brief TWDP (two-wave with diffuse power) fading scenarios on the
///        shared plan layer, after Maric & Njemcevic, "On the Simulation
///        and Correlation Properties of TWDP Fading Process"
///        (arXiv:2502.03388).
///
/// TWDP generalises Rician fading to *two* specular waves riding on the
/// correlated diffuse field the paper's algorithm generates:
///
///   Z_j = v1_j e^{i(theta1_j + phi1)} + v2_j e^{i(theta2_j + phi2)}
///         + (L W / sigma_w)_j
///
/// Per branch the wave amplitudes come from the (K, Delta)
/// parameterisation — K = (v1^2 + v2^2) / K_bar_jj the total
/// specular-to-diffuse power ratio, Delta = 2 v1 v2 / (v1^2 + v2^2) in
/// [0, 1] the relative amplitude — with v_{1,2}^2 =
/// (K K_bar_jj / 2)(1 +- sqrt(1 - Delta^2)).  Delta = 0 collapses to the
/// Rician scenario (one wave), K = 0 to pure Rayleigh.
///
/// Two generation modes, matching the source model:
///
///   * *instant mode* (TwdpGenerator): each draw is an independent
///     channel realisation — the wave phases phi1, phi2 are uniformly
///     random per draw, drawn from a dedicated per-block Philox
///     substream so blocks stay pure functions of (seed, block index)
///     like every other batched path.  The envelope marginal is the
///     exact stats::TwdpDistribution.
///   * *real-time mode* (TwdpSpec::realtime_mean): deterministic phase
///     trajectories phi_i(l) = 2 pi f_i l — each wave Doppler-shifted by
///     its own normalised frequency — expressed as a two-term
///     core::MeanSource phasor sum and threaded through
///     RealTimeOptions::los_mean (one independent block at a time) or,
///     for an unbounded stationary trace, through twdp_fading_stream: a
///     core::FadingStream whose wave trajectories are indexed by the
///     absolute stream instant and whose diffuse field can use the
///     continuous overlap-add / overlap-save backends, so neither the
///     specular phases nor the diffuse autocorrelation break at block
///     seams — the process Maric & Njemcevic's simulator is defined as.
///
/// The diffuse cross-branch correlation is whatever covariance spec the
/// scenario was built on: the specular add happens after coloring and
/// never touches normalisation, exactly like the Rician LOS mean.

#include <cstdint>
#include <memory>
#include <vector>

#include "rfade/core/fading_stream.hpp"
#include "rfade/core/mean_source.hpp"
#include "rfade/core/plan.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/stats/distributions.hpp"

namespace rfade::scenario {

/// Per-branch TWDP description: total specular-to-diffuse power ratio K,
/// relative wave amplitude Delta in [0, 1], and the deterministic phase
/// offsets of the two waves.
struct TwdpBranch {
  double k_factor = 0.0;
  double delta = 0.0;
  double phase1 = 0.0;
  double phase2 = 0.0;
};

/// Immutable description of a TWDP scenario: a diffuse covariance (any
/// spec) plus the per-branch two-wave parameters.
class TwdpSpec {
 public:
  /// Uniform scenario: every branch gets the same (K, Delta) and zero
  /// phase offsets.  \pre K >= 0 finite, Delta in [0, 1].
  static TwdpSpec uniform(numeric::CMatrix diffuse_covariance,
                          double k_factor, double delta);

  /// Per-branch scenario.  \pre branches.size() == N; every K >= 0
  /// finite, every Delta in [0, 1], phases finite.
  static TwdpSpec per_branch(numeric::CMatrix diffuse_covariance,
                             std::vector<TwdpBranch> branches);

  [[nodiscard]] std::size_t dimension() const noexcept {
    return diffuse_.rows();
  }
  [[nodiscard]] const numeric::CMatrix& diffuse_covariance() const noexcept {
    return diffuse_;
  }
  [[nodiscard]] const std::vector<TwdpBranch>& branches() const noexcept {
    return branches_;
  }
  /// True when any branch has K > 0.
  [[nodiscard]] bool has_specular() const noexcept { return has_specular_; }

  /// Build the shared coloring plan of the diffuse part (steps 1-5).
  [[nodiscard]] std::shared_ptr<const core::ColoringPlan> build_plan(
      core::ColoringOptions options = {}) const;

  /// The two complex wave-amplitude vectors under \p plan's effective
  /// (realised) diffuse powers: first_j = v1_j e^{i theta1_j},
  /// second_j = v2_j e^{i theta2_j}.
  struct SpecularWaves {
    numeric::CVector first;
    numeric::CVector second;
  };
  [[nodiscard]] SpecularWaves specular_waves(
      const core::ColoringPlan& plan) const;

  /// Real-time deterministic-phase mean: the two-term phasor sum
  /// m(l) = first e^{i 2 pi f1 l} + second e^{i 2 pi f2 l}, for
  /// RealTimeOptions::los_mean.  Zero (skipping the add pass) when the
  /// scenario has no specular component.  \pre |f| <= 0.5, finite.
  [[nodiscard]] core::MeanSource realtime_mean(const core::ColoringPlan& plan,
                                               double first_wave_doppler,
                                               double second_wave_doppler)
      const;

  /// Exact TWDP marginal of branch \p j (Rician when Delta = 0, Rayleigh
  /// when K = 0) under the plan's effective covariance.
  [[nodiscard]] stats::TwdpDistribution branch_marginal(
      const core::ColoringPlan& plan, std::size_t j) const;

  /// All N analytic envelope marginals for core::validate_envelope_source.
  [[nodiscard]] std::vector<core::EnvelopeMarginal> marginals(
      const core::ColoringPlan& plan) const;

 private:
  TwdpSpec(numeric::CMatrix diffuse, std::vector<TwdpBranch> branches);

  numeric::CMatrix diffuse_;
  std::vector<TwdpBranch> branches_;
  bool has_specular_ = false;
};

/// Options for TwdpGenerator.
struct TwdpOptions {
  /// Rows per block in sample_stream (also the Philox substream
  /// granularity of both the diffuse draws and the wave phases).
  std::size_t block_size = 4096;
  /// Fan stream blocks over the global thread pool (bit-identical
  /// either way).
  bool parallel = true;
  /// Coloring options applied when the plan is built from the spec.
  core::ColoringOptions coloring;
};

/// Instant-mode TWDP generator: correlated diffuse draws through the
/// batched SamplePipeline paths plus the two specular waves with
/// per-draw uniformly-random phases.  A K = 0 scenario skips the
/// specular pass (and its phase stream) entirely — bit-identical to the
/// plain Rayleigh pipeline.
class TwdpGenerator {
 public:
  /// Share an existing plan; TwdpOptions::coloring is ignored.
  TwdpGenerator(std::shared_ptr<const core::ColoringPlan> plan, TwdpSpec spec,
                TwdpOptions options = {});

  /// Build the plan from the spec's diffuse covariance.
  explicit TwdpGenerator(TwdpSpec spec, TwdpOptions options = {});

  [[nodiscard]] std::size_t dimension() const noexcept {
    return pipeline_.dimension();
  }
  [[nodiscard]] const TwdpSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const core::SamplePipeline& pipeline() const noexcept {
    return pipeline_;
  }

  /// One deterministic block keyed by (\p seed, \p block_index): diffuse
  /// rows from the bulk batched path plus, per row, the two waves at
  /// phases drawn from the block's phase substream.
  [[nodiscard]] numeric::CMatrix sample_block(std::size_t count,
                                              std::uint64_t seed,
                                              std::uint64_t block_index) const;

  /// \p count draws as a count x N matrix, block-parallel over the
  /// thread pool; bit-identical for any thread count.
  [[nodiscard]] numeric::CMatrix sample_stream(std::size_t count,
                                               std::uint64_t seed) const;

  /// Envelope moduli of sample_stream: count x N real matrix.
  [[nodiscard]] numeric::RMatrix sample_envelope_stream(
      std::size_t count, std::uint64_t seed) const;

  /// The analytic marginals under the generator's plan.
  [[nodiscard]] std::vector<core::EnvelopeMarginal> marginals() const {
    return spec_.marginals(pipeline_.plan());
  }

  /// The derived Philox seed of the wave-phase stream — disjoint from
  /// the diffuse draw stream, exposed so tests can reproduce phases.
  [[nodiscard]] static std::uint64_t phase_seed(std::uint64_t seed);

 private:
  /// Add the specular waves (random phases from the block's phase
  /// substream) to the `count` x N diffuse rows in `out`; no-op when the
  /// spec has no specular component.
  void add_waves(std::size_t count, std::uint64_t seed,
                 std::uint64_t block_index, numeric::cdouble* out) const;

  core::SamplePipeline pipeline_;
  TwdpSpec spec_;
  /// Complex wave amplitudes (phase offsets folded in) under the plan.
  numeric::CVector first_wave_;
  numeric::CVector second_wave_;
  /// False when every branch has Delta = 0 (second wave identically
  /// zero) — the second rotation and add pass are skipped entirely.
  bool second_wave_active_ = false;
  TwdpOptions options_;
};

/// One-call envelope-domain validation of an instant-mode TWDP scenario
/// against its exact marginals.
[[nodiscard]] core::EnvelopeValidationReport validate_twdp(
    const TwdpGenerator& generator,
    const core::ValidationOptions& options = {});

/// Continuous real-time TWDP stream: \p options' diffuse Doppler backend
/// plus the spec's two deterministic wave trajectories (realtime_mean at
/// \p first_wave_doppler / \p second_wave_doppler), threaded by absolute
/// stream instant so the wave phases — and, with a continuous backend,
/// the diffuse autocorrelation — are seamless across blocks.  Any
/// los_mean already set in \p options is replaced.  \pre the plan's
/// dimension matches the spec's.
[[nodiscard]] core::FadingStream twdp_fading_stream(
    std::shared_ptr<const core::ColoringPlan> plan, const TwdpSpec& spec,
    double first_wave_doppler, double second_wave_doppler,
    core::FadingStreamOptions options = {});

}  // namespace rfade::scenario
