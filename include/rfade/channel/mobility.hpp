#pragma once

/// \file mobility.hpp
/// \brief Physical mobility/channel parameter conversions (paper Sec. 2).
///
/// The paper's Doppler quantities are derived from mobile kinematics:
///   Fm = v / lambda = v f_c / c   (max Doppler shift)
///   fm = Fm / Fs                  (normalised Doppler)
/// plus the standard coherence summaries used to sanity-check scenarios:
///   T_c ~ 9 / (16 pi Fm)          (coherence time, 50% correlation)
///   B_c ~ 1 / (5 sigma_tau)       (coherence bandwidth, 50% correlation).
/// The Sec. 6 example (900 MHz, 60 km/h) maps to Fm = 50 Hz through these
/// helpers, which the tests verify.

namespace rfade::channel {

/// Speed of light [m/s].
inline constexpr double kSpeedOfLight = 299792458.0;

/// Carrier wavelength lambda = c / f_c [m].  \pre carrier_hz > 0.
[[nodiscard]] double wavelength_m(double carrier_hz);

/// Maximum Doppler shift Fm = v f_c / c [Hz].
/// \pre carrier_hz > 0, speed_mps >= 0.
[[nodiscard]] double max_doppler_hz(double carrier_hz, double speed_mps);

/// Convenience overload taking the speed in km/h.
[[nodiscard]] double max_doppler_hz_kmh(double carrier_hz, double speed_kmh);

/// Normalised Doppler fm = Fm / Fs.  \pre sample_rate_hz > 0.
[[nodiscard]] double normalized_doppler(double max_doppler, double sample_rate_hz);

/// 50%-correlation coherence time ~ 9 / (16 pi Fm) [s].  \pre Fm > 0.
[[nodiscard]] double coherence_time_s(double max_doppler);

/// 50%-correlation coherence bandwidth ~ 1 / (5 sigma_tau) [Hz].
/// \pre rms_delay_spread_s > 0.
[[nodiscard]] double coherence_bandwidth_hz(double rms_delay_spread_s);

}  // namespace rfade::channel
