#pragma once

/// \file spatial.hpp
/// \brief Fading correlation as a function of antenna spacing in arrays
///        (paper Sec. 3, after Salz & Winters).
///
/// For a uniform linear array of Tx antennas with spacing D, wavelength
/// lambda, z = 2 pi D / lambda, signals arriving within +-Delta of mean
/// angle Phi, the normalised covariances between antennas k and j
/// (d = k - j) are the Bessel series of Eqs. (5)-(6):
///
///   Rxx~ = J0(z d) + 2 sum_{m>=1} J_{2m}(z d) cos(2 m Phi) sinc(2 m Delta)
///   Rxy~ = 2 sum_{m>=0} J_{2m+1}(z d) sin((2m+1) Phi) sinc((2m+1) Delta)
///
/// with sinc(a) = sin(a)/a, and the dimensioned covariances are
/// R = sigma^2 R~ / 2 (Eq. 7).  The covariance-matrix entry (Eq. 13)
/// becomes mu_kj = sigma^2 (Rxx~ - i Rxy~).
///
/// This module reproduces the paper's Eq. (23) matrix from the Sec. 6
/// parameters (see paper_spatial_scenario()).

#include "rfade/core/covariance_spec.hpp"
#include "rfade/numeric/matrix.hpp"

namespace rfade::channel {

/// Uniform-linear-array scenario (MIMO transmit correlation).
struct SpatialScenario {
  /// Number of antennas N.
  std::size_t antenna_count = 0;
  /// Spacing over wavelength, D / lambda.
  double spacing_wavelengths = 0.5;
  /// Angular spread Delta [rad]; arrivals span Phi +- Delta.
  double angle_spread_rad = 0.17453292519943295;  // 10 degrees
  /// Mean arrival angle Phi [rad], |Phi| <= pi.
  double mean_angle_rad = 0.0;
  /// Common power sigma^2 of the complex Gaussians.
  double gaussian_power = 1.0;
  /// Series truncation: stop after this many terms at the latest.
  std::size_t max_series_terms = 512;
  /// Series truncation: stop once terms fall below this threshold.
  double series_tolerance = 1e-14;
};

/// Normalised Rxx~ (Eq. 5) for antenna separation \p separation = k - j.
[[nodiscard]] double spatial_rxx_normalized(const SpatialScenario& s,
                                            int separation);

/// Normalised Rxy~ (Eq. 6) for antenna separation \p separation = k - j.
[[nodiscard]] double spatial_rxy_normalized(const SpatialScenario& s,
                                            int separation);

/// The four real covariances (via Eq. 7) for the antenna pair (k, j).
[[nodiscard]] core::CrossCovariance spatial_cross_covariance(
    const SpatialScenario& s, std::size_t k, std::size_t j);

/// Assemble the full N x N covariance matrix K of Eqs. (12)-(13).
[[nodiscard]] numeric::CMatrix spatial_covariance_matrix(
    const SpatialScenario& s);

/// The exact Sec. 6 spatial scenario: N=3, D/lambda=1, Delta=10 degrees,
/// Phi=0, sigma^2=1.  Its covariance matrix is the paper's Eq. (23).
[[nodiscard]] SpatialScenario paper_spatial_scenario();

/// The paper's Eq. (23) matrix as printed (4 decimal places).
[[nodiscard]] numeric::CMatrix paper_eq23_matrix();

}  // namespace rfade::channel
