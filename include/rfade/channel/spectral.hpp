#pragma once

/// \file spectral.hpp
/// \brief Fading correlation as functions of time delay and frequency
///        separation (paper Sec. 2, Jakes' model).
///
/// For two zero-mean complex Gaussian processes z_k(t), z_j(t + tau_kj) at
/// carrier frequencies f_k, f_j with common power sigma^2 (Eqs. 3-4):
///
///   Rxx = Ryy = sigma^2 J0(2 pi Fm tau) / (2 [1 + (dw sigma_tau)^2])
///   Rxy = -Ryx = -dw sigma_tau Rxx,        dw = 2 pi (f_k - f_j)
///
/// and the covariance-matrix entry (Eq. 13) is
///   mu_kj = (Rxx + Ryy) - i (Rxy - Ryx) = 2 Rxx (1 + i dw sigma_tau).
///
/// This module reproduces the paper's Eq. (22) matrix bit-for-bit from the
/// Sec. 6 parameters (see paper_spectral_scenario()).

#include "rfade/core/covariance_spec.hpp"
#include "rfade/numeric/matrix.hpp"

namespace rfade::channel {

/// OFDM-like scenario: N carriers with pairwise arrival delays.
struct SpectralScenario {
  /// Carrier frequency of each process [Hz].
  numeric::RVector carrier_hz;
  /// Symmetric matrix of arrival time delays tau_kj [s]; diagonal ignored.
  numeric::RMatrix delay_s;
  /// Maximum Doppler shift Fm = v f_c / c [Hz].
  double max_doppler_hz = 0.0;
  /// RMS delay spread sigma_tau of the channel [s].
  double rms_delay_spread_s = 0.0;
  /// Common power sigma^2 of the complex Gaussian processes.
  double gaussian_power = 1.0;

  /// Number of processes N.
  [[nodiscard]] std::size_t size() const { return carrier_hz.size(); }
};

/// The four real covariances (Eqs. 3-4) for the pair (k, j), k != j.
[[nodiscard]] core::CrossCovariance spectral_cross_covariance(
    const SpectralScenario& scenario, std::size_t k, std::size_t j);

/// Assemble the full N x N covariance matrix K of Eqs. (12)-(13).
[[nodiscard]] numeric::CMatrix spectral_covariance_matrix(
    const SpectralScenario& scenario);

/// The exact Sec. 6 spectral scenario: N=3, sigma^2=1, Fs=1 kHz, Fm=50 Hz,
/// adjacent carrier separation 200 kHz (f1 > f2 > f3), sigma_tau=1 us,
/// tau12=1 ms, tau23=3 ms, tau13=4 ms.  Its covariance matrix is the
/// paper's Eq. (22).
[[nodiscard]] SpectralScenario paper_spectral_scenario();

/// The paper's Eq. (22) matrix as printed (4 decimal places), for
/// regression comparison.
[[nodiscard]] numeric::CMatrix paper_eq22_matrix();

}  // namespace rfade::channel
