#pragma once

/// \file tap.hpp
/// \brief MetricsTap: opt-in link-level metrics over an emitted stream.
///
/// A tap owns one set of streaming accumulators (accumulators.hpp), an
/// AnalyticReference derived from the emitting spec (health.hpp), and
/// the telemetry gauges it publishes into.  It attaches to
/// core::FadingStream (set_metrics_tap) or service::Session
/// (enable_metrics); the host calls observe() on every emitted block.
///
/// Cost model mirrors telemetry::set_enabled: a *disabled* tap's
/// observe() is one relaxed atomic load and a never-taken branch — the
/// hot path pays nothing until someone turns the tap on.  An enabled
/// tap runs the metrics-path accumulators (ExactSum folds per sample),
/// which is deliberate: exact shard-mergeable statistics, not hot-path
/// arithmetic.  bench_metrics_overhead pins both costs.
///
/// Publishing: every publish_every_blocks observed blocks (and on any
/// explicit publish() call) the tap pushes measured values and drift
/// gauges to its telemetry registry:
///
///   rfade_metrics_lcr_per_sample{branch,rho}     measured LCR
///   rfade_metrics_afd_samples{branch,rho}        measured AFD
///   rfade_metrics_acf_re/_im{branch,lag}         normalised complex ACF
///   rfade_metrics_mi_mean/_variance{branch}      MI statistics (bits)
///   rfade_metrics_mi_autocov{branch,lag}
///   rfade_metrics_drift{metric,branch,parameter} drift vs analytic ref
///   rfade_metrics_healthy{}                      1 while every gate ok
///   rfade_metrics_observed_samples{}             instants folded in
///
/// Shard taps over adjacent block ranges merge() exactly (delegating to
/// the accumulators' bit-exact seam stitching).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rfade/metrics/accumulators.hpp"
#include "rfade/metrics/health.hpp"
#include "rfade/numeric/matrix.hpp"

namespace rfade::telemetry {
class Registry;
class Gauge;
}  // namespace rfade::telemetry

namespace rfade::metrics {

/// What a MetricsTap tracks and where it publishes.
struct MetricsTapConfig {
  /// Normalised LCR/AFD thresholds rho = R / R_rms; empty disables the
  /// level-crossing accumulator.
  std::vector<double> thresholds = {0.5, 1.0};
  /// Autocorrelation / MI-autocovariance lags in samples; empty disables
  /// the ACF accumulator and MI lag tracking.
  std::vector<std::size_t> lags = {1, 2, 4, 8};
  /// Linear SNR of the mutual-information observable I = log2(1+snr|h|^2);
  /// <= 0 disables the MI accumulator.
  double snr_linear = 10.0;
  /// Blocks between automatic gauge publishes; 0 = only explicit
  /// publish() calls.
  std::size_t publish_every_blocks = 16;
  /// Drift tolerances of the health gates.
  HealthTolerances tolerances;
  /// Extra label attached to every published gauge (e.g. a session id);
  /// empty publishes unlabelled-by-session gauges.
  std::string session;
  /// Registry the gauges intern into; nullptr = telemetry::Registry::global().
  telemetry::Registry* registry = nullptr;
  /// Construct enabled?  (set_enabled flips it at runtime either way.)
  bool enabled = true;
};

/// Opt-in streaming metrics over one block stream (see file comment).
/// observe() is not thread-safe (one tap per stream/session cursor, like
/// the cursor itself); set_enabled may race with observe harmlessly.
class MetricsTap {
 public:
  /// \throws ValueError when the config enables nothing, or dimensions
  ///         disagree with \p reference.branch_power.
  MetricsTap(AnalyticReference reference, MetricsTapConfig config);
  ~MetricsTap();

  MetricsTap(const MetricsTap&) = delete;
  MetricsTap& operator=(const MetricsTap&) = delete;

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  [[nodiscard]] const AnalyticReference& reference() const noexcept {
    return reference_;
  }
  [[nodiscard]] const MetricsTapConfig& config() const noexcept {
    return config_;
  }
  /// Blocks folded in so far (enabled observes only).
  [[nodiscard]] std::uint64_t blocks_observed() const noexcept {
    return blocks_observed_;
  }
  /// Instants folded in so far.
  [[nodiscard]] std::uint64_t samples_observed() const noexcept;

  /// Folds one emitted block (rows = instants, cols = branches) into
  /// every enabled accumulator; no-op (one relaxed load) when disabled.
  void observe(const numeric::CMatrix& block);
  /// Float32 overload: exact widening, same accumulator path.
  void observe(const numeric::CMatrixF& block);

  /// Pushes measured + drift gauges to the registry now (automatic every
  /// publish_every_blocks).  No-op when telemetry is compiled out or no
  /// samples were observed.
  void publish();

  /// Evaluates every applicable analytic gate against the current state.
  [[nodiscard]] std::vector<DriftReport> health() const;
  /// True while every evaluated gate is within tolerance (vacuously true
  /// for families with no analytic reference).
  [[nodiscard]] bool healthy() const;

  /// Folds \p other, which observed the blocks immediately following
  /// this tap's, onto the end — bit-exact via the accumulators' seam
  /// stitching.  \throws DimensionError on mismatched configuration.
  void merge(const MetricsTap& other);

  /// The underlying accumulators (null when disabled by config) — the
  /// read surface for tests and offline analysis.
  [[nodiscard]] const LevelCrossingAccumulator* level_crossings()
      const noexcept {
    return lcr_ ? &*lcr_ : nullptr;
  }
  [[nodiscard]] const AcfAccumulator* autocorrelation() const noexcept {
    return acf_ ? &*acf_ : nullptr;
  }
  [[nodiscard]] const MutualInformationAccumulator* mutual_information()
      const noexcept {
    return mi_ ? &*mi_ : nullptr;
  }

 private:
  template <typename Block>
  void observe_impl(const Block& block);

  [[nodiscard]] std::shared_ptr<telemetry::Gauge> gauge(
      const std::string& name, const std::string& labels);

  AnalyticReference reference_;
  MetricsTapConfig config_;
  std::size_t dimension_;
  std::atomic<bool> enabled_;
  std::uint64_t blocks_observed_ = 0;
  std::unique_ptr<LevelCrossingAccumulator> lcr_;
  std::unique_ptr<AcfAccumulator> acf_;
  std::unique_ptr<MutualInformationAccumulator> mi_;
};

}  // namespace rfade::metrics
