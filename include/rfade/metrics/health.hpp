#pragma once

/// \file health.hpp
/// \brief Spec-derived analytic references and online drift gates.
///
/// The offline validators (PR 2-4 test suites) compare measured
/// second-order statistics against closed forms once, at test time.
/// This header turns the same closed forms into *production* references:
/// an AnalyticReference is derived from the compiled channel spec (fm,
/// per-branch powers, shadowing parameters, SNR), and evaluate_health()
/// scores each streaming accumulator's read-out against it, yielding
/// per-metric drift values a MetricsTap publishes as gauges.
///
/// Which references apply depends on the family:
///   * Rayleigh cores: Rice LCR/AFD, the J0 complex ACF, and the
///     Wang & Abdi mutual-information statistics all hold;
///   * Suzuki composites: the complex ACF follows the product law
///     J0(2 pi fm d) * exp(sigma_n^2 (e^{-d/D} - 1)) with
///     sigma_n = sigma_dB ln(10)/20 (lognormal gain ACF over the
///     Gudmundson dB-domain exponential); the Rayleigh-only LCR/MI
///     references do not apply and their gates are skipped;
///   * other families (Rician, TWDP, cascaded): measured values are
///     still published, but no analytic gate is evaluated.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "rfade/metrics/accumulators.hpp"

namespace rfade::metrics {

/// Shadowing parameters relevant to the composite ACF product law.
struct ShadowingReference {
  double sigma_db = 0.0;              ///< dB-domain standard deviation
  double decorrelation_samples = 1.0; ///< Gudmundson D in samples
};

/// The spec-derived ground truth a MetricsTap gates against.
struct AnalyticReference {
  /// Normalised maximum Doppler fm = Fm/Fs of the core process.
  double normalized_doppler = 0.0;
  /// Per-branch mean power Omega_j (diagonal of the effective
  /// covariance); scales thresholds and normalises |h|^2.
  std::vector<double> branch_power;
  /// True when the complex field is (conditionally) Rayleigh, i.e. the
  /// Rice LCR/AFD and Wang & Abdi MI references hold.
  bool rayleigh = false;
  /// Set for Suzuki composites: switches the ACF reference to the
  /// product law and disables the Rayleigh-only gates.
  std::optional<ShadowingReference> shadowing;
  /// Linear SNR of the mutual-information observable.
  double snr_linear = 10.0;
};

/// Expected up-crossings per sample at normalised threshold \p rho
/// (Rice: sqrt(2 pi) fm rho e^{-rho^2}).
[[nodiscard]] double expected_lcr_per_sample(const AnalyticReference& ref,
                                             double rho);

/// Expected mean fade duration in samples at normalised threshold
/// \p rho (Rice: (e^{rho^2} - 1) / (rho fm sqrt(2 pi))).
[[nodiscard]] double expected_afd_samples(const AnalyticReference& ref,
                                          double rho);

/// Expected normalised complex-ACF real part at \p lag samples:
/// J0(2 pi fm lag), times the shadowing product-law factor
/// exp(sigma_n^2 (e^{-lag/D} - 1)) when \p ref carries shadowing.
[[nodiscard]] double expected_acf(const AnalyticReference& ref,
                                  std::size_t lag);

/// Expected E[I] in bits (Wang & Abdi; Rayleigh-only).
[[nodiscard]] double expected_mi_mean(const AnalyticReference& ref);

/// Expected Var[I] in bits^2 (Wang & Abdi; Rayleigh-only).
[[nodiscard]] double expected_mi_variance(const AnalyticReference& ref);

/// Expected MI autocovariance at \p lag samples, via the Laguerre series
/// at field correlation J0(2 pi fm lag) (Rayleigh-only).
[[nodiscard]] double expected_mi_autocovariance(const AnalyticReference& ref,
                                                std::size_t lag);

/// Per-metric drift tolerances, interpreted by evaluate_health() (see
/// DriftReport::drift for the normalisation each family uses).  Defaults
/// accommodate the Monte Carlo noise of a few hundred blocks; tighten
/// them for long-running sessions.
struct HealthTolerances {
  double lcr = 0.25;       ///< relative error of up-crossings/sample
  double afd = 0.25;       ///< relative error of mean fade duration
  double acf = 0.12;       ///< absolute error of the normalised ACF
  double mi_mean = 0.10;   ///< relative error of E[I]
  double mi_variance = 0.20;  ///< relative error of Var[I]
  /// Absolute error of C(lag), normalised by the analytic variance
  /// (autocovariance MC noise scales with C(0)).
  double mi_autocovariance = 0.25;
};

/// One gate evaluation: a measured statistic against its reference.
struct DriftReport {
  std::string metric;  ///< "lcr", "afd", "acf", "mi_mean", ...
  std::size_t branch = 0;
  /// Threshold rho for lcr/afd, lag for acf/mi_autocovariance, else 0.
  double parameter = 0.0;
  double measured = 0.0;
  double expected = 0.0;
  /// The normalised deviation compared against the tolerance: relative
  /// for lcr/afd/mi_mean/mi_variance, absolute for acf, variance-scaled
  /// absolute for mi_autocovariance.
  double drift = 0.0;
  double tolerance = 0.0;
  bool ok = true;
};

/// Gates \p lcr's read-outs against the Rice references.  Empty when the
/// reference is not Rayleigh (no analytic LCR applies).
[[nodiscard]] std::vector<DriftReport> evaluate_health(
    const LevelCrossingAccumulator& lcr, const AnalyticReference& ref,
    const HealthTolerances& tolerances);

/// Gates \p acf's normalised ACF (real part) against J0 or the Suzuki
/// product law.  Lags with no pairs yet are skipped.
[[nodiscard]] std::vector<DriftReport> evaluate_health(
    const AcfAccumulator& acf, const AnalyticReference& ref,
    const HealthTolerances& tolerances);

/// Gates \p mi's mean/variance/autocovariance against the Wang & Abdi
/// closed forms.  Empty when the reference is not Rayleigh.
[[nodiscard]] std::vector<DriftReport> evaluate_health(
    const MutualInformationAccumulator& mi, const AnalyticReference& ref,
    const HealthTolerances& tolerances);

}  // namespace rfade::metrics
