#pragma once

/// \file accumulators.hpp
/// \brief Single-pass, shard-mergeable streaming accumulators for
///        link-level second-order statistics.
///
/// Unlike the moment/covariance accumulators (service/accumulators.hpp),
/// whose statistics are plain per-sample sums, the metrics here are
/// *sequential*: level crossings compare a sample with its predecessor,
/// and lag products pair a sample with one d instants earlier.  Shard
/// merging therefore has to carry explicit cross-boundary state — the
/// open fade run at a shard's edges, and the first/last max-lag samples
/// (lag ring) — and merge() stitches the seam exactly:
///
///   * integer counts (crossings, samples below, run lengths) are
///     stitched with pure integer arithmetic, so merged == single-pass
///     trivially bit-for-bit;
///   * real sums (lag products, MI moments) live in support::ExactSum,
///     and merge() folds the seam-spanning products from the carried
///     boundary samples into the same order-invariant superaccumulator —
///     the merged state accumulates exactly the single-pass *multiset*
///     of terms, hence reads out bit-identically.
///
/// merge() consumes an *adjacent following* segment (this = earlier
/// samples, other = the samples immediately after); with that ordering
/// it is associative, so any K-way sharding of a block range, merged in
/// any association order, equals the single-pass accumulator bit-for-bit
/// — the contract the metrics tests pin on real stream output.
///
/// All accumulators take complex blocks (rows = instants, cols =
/// branches) in double or float32 (widened exactly, preserving the
/// bit-exact contract for float-fed shards).  Not thread-safe: one
/// instance per shard, merge at the join.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rfade/numeric/matrix.hpp"
#include "rfade/support/exact_sum.hpp"

namespace rfade::metrics {

/// Read-out of one (branch, threshold) cell of LevelCrossingAccumulator.
struct LevelCrossingStats {
  std::uint64_t samples = 0;         ///< instants observed
  std::uint64_t samples_below = 0;   ///< instants with r < threshold
  std::uint64_t up_crossings = 0;    ///< transitions r[t-1] < T <= r[t]
  /// Longest fade (below-run) bounded by above-threshold samples on both
  /// sides within the observed range (edge runs are censored).
  std::uint64_t longest_fade = 0;
  /// Up-crossings per sample; multiply by the sample rate for crossings/s.
  /// Compares against stats::theoretical_lcr(rho, fm) with normalised fm.
  double lcr_per_sample = 0.0;
  /// Mean fade duration in samples (samples_below / up_crossings); 0
  /// until the first crossing (the stats::measure_fading_metrics
  /// convention).  Compares against
  /// stats::theoretical_afd(rho, fm) with normalised fm.
  double afd_samples = 0.0;
};

/// Streaming level-crossing / fade-duration counter at configurable
/// normalised thresholds rho (envelope threshold rho * rms per branch).
///
/// Uses the same crossing convention as stats::measure_fading_metrics
/// (up-crossing = previous strictly below, current at-or-above), so the
/// two agree exactly on a shared trace.
class LevelCrossingAccumulator {
 public:
  /// \param dimension   branches N >= 1.
  /// \param thresholds  normalised thresholds rho > 0 (at least one).
  /// \param branch_rms  per-branch RMS envelope (size N) used to scale
  ///                    rho into absolute levels; typically
  ///                    sqrt(diag of the effective covariance).
  LevelCrossingAccumulator(std::size_t dimension,
                           std::vector<double> thresholds,
                           std::vector<double> branch_rms);

  /// Folds the envelopes |z| of a complex block (count x N), row order.
  void accumulate(const numeric::CMatrix& block);

  /// Float32 block overload; samples widen to double exactly, so float
  /// shards keep the bit-exact merge contract among themselves.
  void accumulate(const numeric::CMatrixF& block);

  /// Folds an envelope block (count x N, r >= 0) directly.
  void accumulate_envelopes(const numeric::RMatrix& envelopes);

  /// Stitches \p other, whose samples immediately follow this
  /// accumulator's, onto the end: counts add, and the seam (this's
  /// trailing below-run meeting other's leading run) is re-joined exactly
  /// as a single pass would have seen it.  Associative under adjacency.
  /// \throws DimensionError when dimensions/thresholds differ.
  void merge(const LevelCrossingAccumulator& other);

  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  [[nodiscard]] const std::vector<double>& thresholds() const noexcept {
    return thresholds_;
  }
  /// Instants folded in (per branch).
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Statistics of (\p branch, thresholds()[\p threshold_index]); a pure
  /// function of the accumulated sequence.
  [[nodiscard]] LevelCrossingStats finalize(
      std::size_t branch, std::size_t threshold_index) const;

 private:
  /// One (branch, threshold) state-machine cell.  `run` is the open
  /// trailing below-run; until the first above sample (`seen_above`)
  /// the whole segment is one leading run and `leading` is meaningless.
  struct Cell {
    std::uint64_t below = 0;
    std::uint64_t crossings = 0;
    std::uint64_t leading = 0;  ///< below-run before the first above sample
    std::uint64_t run = 0;      ///< open below-run at the end
    std::uint64_t longest = 0;  ///< longest both-side-closed below-run
    bool seen_above = false;
  };

  void fold(std::size_t branch, double envelope);

  std::size_t dimension_;
  std::vector<double> thresholds_;
  std::vector<double> levels_;  ///< absolute levels, row-major N x T
  std::vector<Cell> cells_;     ///< row-major N x T
  std::uint64_t count_ = 0;
};

/// Streaming complex autocorrelation at a configurable lag list.
///
/// Per (branch, lag d) the exact sums of z_t conj(z_{t-d}) over every
/// pair in the observed range; lag 0 (power) is always tracked for
/// normalisation.  The boundary state carried for merging is the first
/// and last max-lag samples of the segment; merge() forms exactly the
/// seam-spanning products a single pass would have formed.
class AcfAccumulator {
 public:
  /// \param dimension branches N >= 1.
  /// \param lags      positive lags (in samples) to track; deduplicated
  ///                  and sorted, lag 0 implicitly added.  \pre at least
  ///                  one positive lag.
  AcfAccumulator(std::size_t dimension, std::vector<std::size_t> lags);

  void accumulate(const numeric::CMatrix& block);
  /// Float32 overload; widened exactly (see LevelCrossingAccumulator).
  void accumulate(const numeric::CMatrixF& block);

  /// Stitches the adjacent following segment \p other (see file comment).
  /// \throws DimensionError when dimensions/lag lists differ.
  void merge(const AcfAccumulator& other);

  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  /// The tracked lags, sorted, starting with 0.
  [[nodiscard]] const std::vector<std::size_t>& lags() const noexcept {
    return lags_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Raw exact sum of z_t conj(z_{t-lag}) for bit-exactness tests.
  /// \p lag must be one of lags().
  [[nodiscard]] numeric::cdouble correlation_sum(std::size_t branch,
                                                 std::size_t lag) const;

  /// Normalised autocorrelation estimate at \p lag (one of lags()):
  /// (sum / (count - lag)) / (power sum / count); for the Jakes spectrum
  /// its real part estimates J0(2 pi fm lag).  \throws ValueError when
  /// count() <= lag or the trace has zero power.
  [[nodiscard]] numeric::cdouble autocorrelation(std::size_t branch,
                                                 std::size_t lag) const;

 private:
  std::size_t lag_index(std::size_t lag) const;

  std::size_t dimension_;
  std::vector<std::size_t> lags_;  ///< sorted, lags_[0] == 0
  std::size_t max_lag_;
  std::uint64_t count_ = 0;
  std::vector<support::ExactSum> re_;  ///< row-major N x lags
  std::vector<support::ExactSum> im_;
  /// First min(count, max_lag) samples per branch, in stream order.
  std::vector<std::vector<numeric::cdouble>> head_;
  /// Ring of the last max_lag samples per branch; sample at absolute
  /// index q lives at q % max_lag.
  std::vector<std::vector<numeric::cdouble>> ring_;
};

/// Streaming mean/variance/autocovariance of the instantaneous mutual
/// information I_t = log2(1 + snr |z_t|^2 / omega) per branch, the
/// observable whose closed forms stats/mutual_information.hpp supplies.
///
/// Same boundary-state design as AcfAccumulator, over the real I trace.
class MutualInformationAccumulator {
 public:
  /// \param dimension  branches N >= 1.
  /// \param snr_linear linear SNR gamma > 0.
  /// \param branch_power per-branch mean power omega_j > 0 (size N)
  ///                   normalising |z|^2 to unit mean, so X = |h|^2 is
  ///                   Exp(1) for Rayleigh branches.
  /// \param lags       positive autocovariance lags; may be empty (then
  ///                   only mean/variance are tracked).
  MutualInformationAccumulator(std::size_t dimension, double snr_linear,
                               std::vector<double> branch_power,
                               std::vector<std::size_t> lags);

  void accumulate(const numeric::CMatrix& block);
  /// Float32 overload; widened exactly (see LevelCrossingAccumulator).
  void accumulate(const numeric::CMatrixF& block);

  /// Stitches the adjacent following segment \p other (see file comment).
  /// \throws DimensionError when configurations differ.
  void merge(const MutualInformationAccumulator& other);

  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  [[nodiscard]] double snr_linear() const noexcept { return snr_; }
  [[nodiscard]] const std::vector<std::size_t>& lags() const noexcept {
    return lags_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Raw exact sums for bit-exactness tests.
  [[nodiscard]] double sum(std::size_t branch) const;
  [[nodiscard]] double sum_squares(std::size_t branch) const;
  [[nodiscard]] double lag_product_sum(std::size_t branch,
                                       std::size_t lag) const;

  /// E[I] estimate in bits.  \throws ValueError when empty.
  [[nodiscard]] double mean(std::size_t branch) const;
  /// Population variance estimate in bits^2.  \throws ValueError when empty.
  [[nodiscard]] double variance(std::size_t branch) const;
  /// Autocovariance estimate at \p lag (one of lags()):
  /// sum(I_t I_{t-lag}) / (count - lag) - mean^2.  \throws ValueError
  /// when count() <= lag.
  [[nodiscard]] double autocovariance(std::size_t branch,
                                      std::size_t lag) const;

 private:
  std::size_t lag_index(std::size_t lag) const;
  void fold(std::size_t branch, double information);

  std::size_t dimension_;
  double snr_;
  std::vector<double> inv_power_;  ///< snr / omega_j, the |z|^2 scale
  std::vector<std::size_t> lags_;  ///< sorted positive lags (no 0 entry)
  std::size_t max_lag_;
  std::uint64_t count_ = 0;
  std::vector<support::ExactSum> sum_;       ///< per branch
  std::vector<support::ExactSum> sum_sq_;    ///< per branch
  std::vector<support::ExactSum> lag_sum_;   ///< row-major N x lags
  std::vector<std::vector<double>> head_;
  std::vector<std::vector<double>> ring_;
};

}  // namespace rfade::metrics
