#pragma once

/// \file parallel.hpp
/// \brief Deterministic blocked parallel-for on top of the thread pool.
///
/// Work over [0, n) is split into fixed-size *chunks* whose boundaries do
/// not depend on the number of worker threads.  Callers that need
/// reproducible randomness key a counter-based RNG stream off the chunk
/// index, so a run with 1 thread and a run with 24 threads produce
/// bit-identical results — the property the DESIGN.md E10 scaling bench and
/// the parallel Monte-Carlo validation tests rely on.

#include <cstddef>
#include <functional>

namespace rfade::support {

/// Parameters controlling how parallel_for_chunked splits its range.
struct ChunkingOptions {
  /// Elements per chunk; boundaries are i*chunk_size regardless of threads.
  std::size_t chunk_size = 1024;
  /// Force serial execution (useful for debugging and as a baseline).
  bool serial = false;
};

/// Invoke `body(begin, end, chunk_index)` over consecutive chunks of [0, n).
///
/// Chunks are distributed over ThreadPool::global().  The chunk decomposition
/// is a pure function of (n, options.chunk_size), never of thread count.
/// The first exception thrown by any chunk is rethrown on the caller's
/// thread after all chunks finish.
void parallel_for_chunked(
    std::size_t n,
    const std::function<void(std::size_t begin, std::size_t end,
                             std::size_t chunk_index)>& body,
    const ChunkingOptions& options = {});

/// Number of chunks parallel_for_chunked will create for a range of size
/// \p n — callers use this to pre-size per-chunk accumulators.
[[nodiscard]] std::size_t chunk_count(std::size_t n,
                                      const ChunkingOptions& options = {});

}  // namespace rfade::support
