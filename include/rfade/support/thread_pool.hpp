#pragma once

/// \file thread_pool.hpp
/// \brief A small fixed-size thread pool with future-based task submission.
///
/// The Monte-Carlo harnesses in bench/ fan envelope generation out over a
/// pool of worker threads.  The pool is deliberately simple — one shared
/// queue guarded by a mutex — because rfade's parallel tasks are coarse
/// (thousands of envelope draws per task), so queue contention is
/// negligible.  Exceptions thrown inside a task surface through the
/// returned future, per the Core Guidelines rule that errors must not be
/// swallowed on background threads.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace rfade::support {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Create a pool with \p thread_count workers.
  /// \param thread_count number of workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t thread_count = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue \p task; the returned future yields the task's result or
  /// rethrows its exception.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([packaged]() { (*packaged)(); });
      note_enqueued(queue_.size());
    }
    wake_.notify_one();
    return result;
  }

  /// Number of worker threads in the pool.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// True when the calling thread is a worker of *any* ThreadPool.  Work
  /// distributors (parallel_for_chunked) use this to run nested work
  /// inline: a pool task that submits to the pool and blocks on the result
  /// would deadlock once every worker is waiting.
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// Process-wide shared pool (lazily constructed, sized to the hardware).
  static ThreadPool& global();

 private:
  void worker_loop();

  /// Telemetry taps (rfade_thread_pool_queue_depth gauge +
  /// rfade_thread_pool_tasks_total counter), called with mutex_ held;
  /// no-ops unless telemetry is compiled in and enabled.
  void note_enqueued(std::size_t depth) noexcept;
  void note_dequeued(std::size_t depth) noexcept;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace rfade::support
