#pragma once

/// \file contracts.hpp
/// \brief Lightweight Expects/Ensures-style contract checks.
///
/// Following the C++ Core Guidelines (I.6/I.8), public API preconditions are
/// stated explicitly and checked at the call boundary.  Violations throw
/// rfade::ContractViolation carrying the failing expression and location;
/// they are programming errors in the caller, not recoverable conditions,
/// but throwing keeps the library usable from tests and long-running
/// simulation harnesses.

#include <string>

#include "rfade/support/error.hpp"

namespace rfade::detail {

[[nodiscard]] inline std::string format_contract(const char* kind,
                                                 const char* expr,
                                                 const char* file, int line,
                                                 const std::string& message) {
  std::string what(kind);
  what += " failed: (";
  what += expr;
  what += ") at ";
  what += file;
  what += ':';
  what += std::to_string(line);
  if (!message.empty()) {
    what += " — ";
    what += message;
  }
  return what;
}

[[noreturn]] inline void raise_contract(const char* kind, const char* expr,
                                        const char* file, int line,
                                        const std::string& message) {
  throw ContractViolation(
      format_contract(kind, expr, file, line, message));
}

[[noreturn]] inline void raise_spec(const char* expr, const char* file,
                                    int line, const std::string& message) {
  throw InvalidSpecError(
      format_contract("spec validation", expr, file, line, message));
}

}  // namespace rfade::detail

/// Check a precondition; throws rfade::ContractViolation when \p cond is false.
#define RFADE_EXPECTS(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::rfade::detail::raise_contract("precondition", #cond, __FILE__,    \
                                      __LINE__, (msg));                   \
    }                                                                     \
  } while (false)

/// Check a postcondition; throws rfade::ContractViolation when \p cond is false.
#define RFADE_ENSURES(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::rfade::detail::raise_contract("postcondition", #cond, __FILE__,   \
                                      __LINE__, (msg));                   \
    }                                                                     \
  } while (false)

/// Check a declarative-spec validation rule; throws rfade::InvalidSpecError
/// (ErrorCode::InvalidSpec) when \p cond is false.  Unlike RFADE_EXPECTS,
/// a failure flags *rejectable caller input* — the service layer catches
/// these and returns typed rejections instead of treating them as bugs.
#define RFADE_SPEC_EXPECTS(cond, msg)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::rfade::detail::raise_spec(#cond, __FILE__, __LINE__, (msg));      \
    }                                                                     \
  } while (false)
