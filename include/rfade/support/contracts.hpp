#pragma once

/// \file contracts.hpp
/// \brief Lightweight Expects/Ensures-style contract checks.
///
/// Following the C++ Core Guidelines (I.6/I.8), public API preconditions are
/// stated explicitly and checked at the call boundary.  Violations throw
/// rfade::ContractViolation carrying the failing expression and location;
/// they are programming errors in the caller, not recoverable conditions,
/// but throwing keeps the library usable from tests and long-running
/// simulation harnesses.

#include <string>

#include "rfade/support/error.hpp"

namespace rfade::detail {

[[noreturn]] inline void raise_contract(const char* kind, const char* expr,
                                        const char* file, int line,
                                        const std::string& message) {
  std::string what(kind);
  what += " failed: (";
  what += expr;
  what += ") at ";
  what += file;
  what += ':';
  what += std::to_string(line);
  if (!message.empty()) {
    what += " — ";
    what += message;
  }
  throw ContractViolation(what);
}

}  // namespace rfade::detail

/// Check a precondition; throws rfade::ContractViolation when \p cond is false.
#define RFADE_EXPECTS(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::rfade::detail::raise_contract("precondition", #cond, __FILE__,    \
                                      __LINE__, (msg));                   \
    }                                                                     \
  } while (false)

/// Check a postcondition; throws rfade::ContractViolation when \p cond is false.
#define RFADE_ENSURES(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::rfade::detail::raise_contract("postcondition", #cond, __FILE__,   \
                                      __LINE__, (msg));                   \
    }                                                                     \
  } while (false)
