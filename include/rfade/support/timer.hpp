#pragma once

/// \file timer.hpp
/// \brief Monotonic wall-clock timer for the benchmark harnesses.

#include <chrono>

namespace rfade::support {

/// Stopwatch over std::chrono::steady_clock.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rfade::support
