#pragma once

/// \file cli.hpp
/// \brief Tiny `--flag value` command-line parser for the example programs.
///
/// Examples accept a handful of numeric overrides (sample counts, Doppler
/// parameters, output paths).  The parser understands `--name value`,
/// `--name=value`, and bare boolean flags `--name`.

#include <optional>
#include <string>
#include <unordered_map>

namespace rfade::support {

/// Immutable view of parsed command-line options.
class ArgParser {
 public:
  /// Parse argv; throws rfade::Error on malformed input (e.g. positional
  /// arguments, which no rfade example accepts).
  ArgParser(int argc, const char* const* argv);

  /// True when `--name` appeared (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of `--name`, or \p fallback when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;

  /// Numeric value of `--name`, or \p fallback when absent; throws
  /// rfade::ValueError when present but unparsable.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Integer value of `--name`, or \p fallback when absent; throws
  /// rfade::ValueError when present but unparsable or negative.
  [[nodiscard]] std::size_t get_size(const std::string& name,
                                     std::size_t fallback) const;

 private:
  std::unordered_map<std::string, std::string> values_;
};

}  // namespace rfade::support
