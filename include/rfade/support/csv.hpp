#pragma once

/// \file csv.hpp
/// \brief Minimal CSV emission for example programs and bench harnesses.
///
/// Examples dump envelope traces and sweep results as CSV so they can be
/// plotted externally (gnuplot/matplotlib) and diffed against the paper's
/// figures.  Only writing is supported; rfade never parses CSV.

#include <complex>
#include <fstream>
#include <string>
#include <vector>

namespace rfade::support {

/// Streams rows of mixed string/number cells to a CSV file.
class CsvWriter {
 public:
  /// Open \p path for writing; throws rfade::Error when the file cannot
  /// be created.
  explicit CsvWriter(const std::string& path);

  /// Write a header or data row of preformatted cells.
  void write_row(const std::vector<std::string>& cells);

  /// Write a row of doubles at full precision.
  void write_numeric_row(const std::vector<double>& cells);

  /// Format helpers shared with the table printer.
  static std::string format(double value, int precision = 12);
  static std::string format(std::complex<double> value, int precision = 6);

 private:
  std::ofstream out_;
};

}  // namespace rfade::support
