#pragma once

/// \file table.hpp
/// \brief Fixed-width console tables for the experiment harnesses.
///
/// Every bench binary reports its results as an aligned text table mirroring
/// the corresponding artefact in the paper (EXPERIMENTS.md records the
/// mapping).  Keeping the printer in one place makes bench output uniform.

#include <string>
#include <vector>

namespace rfade::support {

/// Collects rows of cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// \param title caption printed above the table.
  explicit TablePrinter(std::string title);

  /// Set the column headers (defines the column count).
  void set_header(const std::vector<std::string>& header);

  /// Append a data row; shorter rows are padded with empty cells.
  void add_row(const std::vector<std::string>& row);

  /// Render the table to a string.
  [[nodiscard]] std::string str() const;

  /// Render the table to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format \p value with \p precision significant-looking fixed digits.
[[nodiscard]] std::string fixed(double value, int precision = 4);

/// Format \p value in scientific notation with \p precision digits.
[[nodiscard]] std::string scientific(double value, int precision = 3);

}  // namespace rfade::support
