#pragma once

/// \file exact_sum.hpp
/// \brief Order-invariant exact accumulation of IEEE doubles.
///
/// ExactSum is a fixed-point superaccumulator: every finite double is
/// decomposed into its exact 53-bit integer significand and added into a
/// wide array of base-2^32 limbs spanning the full double exponent range.
/// Because each add is exact integer arithmetic, the accumulated state —
/// and therefore value() — is a pure function of the *multiset* of inputs:
/// independent of add order, chunking, or thread/shard layout.  merge() is
/// limb-wise addition, so combining shard accumulators is exactly
/// associative and commutative.
///
/// This is what makes the service-layer validator accumulators
/// (service/accumulators.hpp) shard-mergeable with *bit-exact* equality:
/// a two-shard run merged equals the single-run answer, not merely up to
/// rounding.  The approach follows the "superaccumulator" line of exact
/// summation work (Kulisch accumulators; Collange et al.'s reproducible
/// BLAS); this implementation favours simplicity over peak throughput —
/// it is for statistics accumulation, not the sample hot path.

#include <cstdint>

namespace rfade::support {

/// Exact, order-invariant sum of finite doubles.
///
/// Not thread-safe; accumulate per-thread/shard instances and merge().
class ExactSum {
 public:
  ExactSum() noexcept;

  /// Adds \p x exactly.  Throws rfade::ValueError (ErrorCode::DomainError)
  /// for NaN or infinity — a poisoned statistic should fail loudly, not
  /// silently saturate.
  void add(double x);

  /// Number of add() calls folded in (including via merge()).
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Folds \p other into this accumulator; exactly equivalent to having
  /// replayed all of other's add() calls here, in any order.
  void merge(const ExactSum& other) noexcept;

  /// The accumulated sum rounded back to double: a deterministic pure
  /// function of the accumulated *multiset* (order- and shard-invariant),
  /// faithful to the exact sum (the internal state is exact; only this
  /// final read-out rounds).
  [[nodiscard]] double value() const noexcept;

  /// Resets to the empty sum.
  void reset() noexcept;

 private:
  // Limbs in base 2^32 covering bit positions from below the smallest
  // subnormal contribution through above the largest finite double times
  // 2^63 of carry headroom.  Limb i holds a signed coefficient of
  // 2^(32*i - kPointShift); coefficients may drift past 2^32 between
  // normalizations (headroom tracked by pending_).
  static constexpr int kLimbs = 68;
  // Smallest contribution bit: a subnormal's significand scaled to an
  // integer occupies bit e - 53 with e >= -1073, so shift the fixed
  // point by 1126 to keep every index non-negative.
  static constexpr int kPointShift = 1126;
  // Normalize before signed-limb magnitudes can approach 2^63: each add
  // deposits strictly less than 2^32 into any one limb, and a canonical
  // state starts below 2^32 per limb, so after k adds |limb| < (k+1)·2^32.
  // k = 2^20 keeps magnitudes under 2^53 — ample margin below 2^63.
  static constexpr std::uint64_t kNormalizeEvery = 1u << 20;

  void normalize() const noexcept;

  mutable std::int64_t limbs_[kLimbs];
  std::uint64_t count_ = 0;
  mutable std::uint64_t pending_ = 0;
};

}  // namespace rfade::support
