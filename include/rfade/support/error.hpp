#pragma once

/// \file error.hpp
/// \brief Exception hierarchy used across the rfade library.
///
/// All library errors derive from rfade::Error so that callers can catch a
/// single base type.  Specific subclasses communicate *why* an operation
/// failed (dimension mismatch, loss of positive definiteness, failure to
/// converge, ...), which the baseline-shortcoming experiments (DESIGN.md E9)
/// rely on to distinguish failure modes of the conventional methods.

#include <stdexcept>
#include <string>

namespace rfade {

/// Base class of every exception thrown by the rfade library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A checked API precondition or postcondition was violated.
class ContractViolation : public Error {
 public:
  using Error::Error;
};

/// Operand shapes are incompatible (e.g. multiplying a 3x2 by a 4x4 matrix).
class DimensionError : public Error {
 public:
  using Error::Error;
};

/// A scalar argument is outside its mathematical domain.
class ValueError : public Error {
 public:
  using Error::Error;
};

/// An iterative numerical routine failed to converge within its budget.
class ConvergenceError : public Error {
 public:
  using Error::Error;
};

/// A factorization requiring positive definiteness met a matrix without it.
///
/// This is the precise failure mode of the Cholesky-based conventional
/// generators ([4], [5], [6] in the paper) that the proposed
/// eigendecomposition-based coloring avoids.
class NotPositiveDefiniteError : public Error {
 public:
  using Error::Error;
};

}  // namespace rfade
