#pragma once

/// \file error.hpp
/// \brief Exception hierarchy and machine-readable error taxonomy used
///        across the rfade library.
///
/// All library errors derive from rfade::Error so that callers can catch a
/// single base type.  Specific subclasses communicate *why* an operation
/// failed (dimension mismatch, loss of positive definiteness, failure to
/// converge, ...), which the baseline-shortcoming experiments (DESIGN.md E9)
/// rely on to distinguish failure modes of the conventional methods.
///
/// Every error additionally carries a stable machine-readable ErrorCode,
/// so a serving layer (service/channel_service.hpp) can map rejections to
/// typed responses without parsing what() strings: precondition failures
/// raised by support/contracts.hpp arrive as ErrorCode::ContractViolation,
/// declarative spec validation as ErrorCode::InvalidSpec, and so on.  The
/// code is part of the API contract; the what() text is not.

#include <stdexcept>
#include <string>

namespace rfade {

/// Stable machine-readable failure taxonomy.  Codes identify the *class*
/// of failure, never the call site; new codes may be appended but existing
/// values never change meaning.
enum class ErrorCode {
  Unknown = 0,          ///< untyped legacy failure
  ContractViolation,    ///< checked pre/postcondition failed (caller bug)
  DimensionMismatch,    ///< operand shapes incompatible
  DomainError,          ///< scalar argument outside its mathematical domain
  ConvergenceFailure,   ///< iterative routine exhausted its budget
  NotPositiveDefinite,  ///< factorization met a non-PD matrix
  InvalidSpec,          ///< declarative channel/scenario spec rejected
  UnsupportedOperation  ///< operation undefined for the compiled family
};

/// Stable lowercase identifier of \p code (e.g. "invalid_spec"), suitable
/// for logs and wire formats.
[[nodiscard]] constexpr const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::ContractViolation:
      return "contract_violation";
    case ErrorCode::DimensionMismatch:
      return "dimension_mismatch";
    case ErrorCode::DomainError:
      return "domain_error";
    case ErrorCode::ConvergenceFailure:
      return "convergence_failure";
    case ErrorCode::NotPositiveDefinite:
      return "not_positive_definite";
    case ErrorCode::InvalidSpec:
      return "invalid_spec";
    case ErrorCode::UnsupportedOperation:
      return "unsupported_operation";
    case ErrorCode::Unknown:
      break;
  }
  return "unknown";
}

/// Base class of every exception thrown by the rfade library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 ErrorCode code = ErrorCode::Unknown)
      : std::runtime_error(what), code_(code) {}

  /// The machine-readable failure class.
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

  /// Stable identifier of code() (see error_code_name).
  [[nodiscard]] const char* code_name() const noexcept {
    return error_code_name(code_);
  }

 private:
  ErrorCode code_;
};

/// A checked API precondition or postcondition was violated.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what)
      : Error(what, ErrorCode::ContractViolation) {}
};

/// Operand shapes are incompatible (e.g. multiplying a 3x2 by a 4x4 matrix).
class DimensionError : public Error {
 public:
  explicit DimensionError(const std::string& what)
      : Error(what, ErrorCode::DimensionMismatch) {}
};

/// A scalar argument is outside its mathematical domain.
class ValueError : public Error {
 public:
  explicit ValueError(const std::string& what)
      : Error(what, ErrorCode::DomainError) {}
};

/// An iterative numerical routine failed to converge within its budget.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what)
      : Error(what, ErrorCode::ConvergenceFailure) {}
};

/// A factorization requiring positive definiteness met a matrix without it.
///
/// This is the precise failure mode of the Cholesky-based conventional
/// generators ([4], [5], [6] in the paper) that the proposed
/// eigendecomposition-based coloring avoids.
class NotPositiveDefiniteError : public Error {
 public:
  explicit NotPositiveDefiniteError(const std::string& what)
      : Error(what, ErrorCode::NotPositiveDefinite) {}
};

/// A declarative channel/scenario spec failed validation — a *recoverable*
/// rejection of caller input (unlike ContractViolation, which flags a
/// programming error).  The service layer turns these into typed request
/// rejections.
class InvalidSpecError : public Error {
 public:
  explicit InvalidSpecError(const std::string& what)
      : Error(what, ErrorCode::InvalidSpec) {}
};

/// The requested operation is undefined for the compiled channel family
/// (e.g. complex blocks of an envelope-only copula channel).
class UnsupportedOperationError : public Error {
 public:
  explicit UnsupportedOperationError(const std::string& what)
      : Error(what, ErrorCode::UnsupportedOperation) {}
};

}  // namespace rfade
