#pragma once

/// \file simd.hpp
/// \brief Function-multiversioning helper for the batched hot-path kernels.
///
/// RFADE_TARGET_CLONES_AVX2 compiles the annotated function twice — a
/// baseline-ISA version and an AVX2 version — and lets the dynamic loader
/// (ifunc) pick at startup.  The AVX2 clone deliberately does *not* enable
/// FMA: fused contraction would change the bit pattern of the planar GEMM
/// against the std::complex reference kernels, and the hot paths promise
/// bit-identical results across code paths.  On toolchains or targets
/// without multiversioning support the macro expands to nothing and the
/// baseline loop is used everywhere.

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RFADE_DETAIL_ASAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define RFADE_DETAIL_ASAN 1
#endif

#if defined(__x86_64__) && defined(__linux__) && \
    (defined(__GNUC__) || defined(__clang__)) && !defined(RFADE_DETAIL_ASAN)
#define RFADE_TARGET_CLONES_AVX2 __attribute__((target_clones("default", "avx2")))
#else
#define RFADE_TARGET_CLONES_AVX2
#endif
