#pragma once

/// \file simd.hpp
/// \brief Function-multiversioning helpers for the batched hot-path kernels.
///
/// RFADE_TARGET_CLONES_AVX2 compiles the annotated function twice — a
/// baseline-ISA version and an AVX2 version — and lets the dynamic loader
/// (ifunc) pick at startup.  RFADE_TARGET_CLONES_WIDE is the wider tier:
/// it adds an avx512f clone (512-bit vectors) on x86-64.  On aarch64 the
/// macros expand to nothing *by design*: NEON is part of the baseline ISA
/// there, so the default build already auto-vectorizes the kernels with
/// NEON and there is no wider tier to clone (SVE multiversioning needs the
/// GCC 14+ "arch=" FMV syntax; revisit when the toolchain floor moves).
///
/// Bit-identity contract: the clones deliberately do *not* enable FMA via
/// the target set (neither "avx2" nor the x86 FMV machinery turns on
/// -mfma), and AVX-512F — whose 512-bit FMA is part of the base feature —
/// is kept honest by compiling every strict-FP kernel TU with
/// -ffp-contract=off (see CMakeLists.txt): fused contraction would change
/// the bit pattern of the planar kernels against the std::complex
/// reference paths, and the hot paths promise bit-identical results
/// across code paths and clone tiers.  The one exception is the bulk
/// Box-Muller fill, whose transcendental calls go through libmvec: vector
/// variants of log/sin/cos differ across ISA widths by a few ulp, so that
/// kernel's cross-ISA contract is ulp-level (its within-process purity is
/// still exact — ifunc resolves one clone per process).  On toolchains or
/// targets without multiversioning support the macros expand to nothing
/// and the baseline loop is used everywhere.

// Sanitizers and ifunc-based multiversioning do not mix: the clone
// resolver runs during dynamic relocation, before the sanitizer runtime
// initializes, and TSan's function-entry instrumentation in (or reached
// from) the resolver segfaults on the uninitialized runtime.  Fall back
// to the baseline loop under ASan and TSan.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RFADE_DETAIL_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RFADE_DETAIL_SANITIZED 1
#endif

#if defined(__x86_64__) && defined(__linux__) && \
    (defined(__GNUC__) || defined(__clang__)) && !defined(RFADE_DETAIL_SANITIZED)
#define RFADE_TARGET_CLONES_AVX2 __attribute__((target_clones("default", "avx2")))
#define RFADE_TARGET_CLONES_WIDE \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define RFADE_TARGET_CLONES_AVX2
#define RFADE_TARGET_CLONES_WIDE
#endif
