#pragma once

/// \file fading_stream.hpp
/// \brief The unified temporal-synthesis engine: N BranchSource streams
///        advanced in lockstep and colored per time instant.
///
/// Every temporally-correlated generator in rfade is the same picture
/// (paper Sec. 5, Fig. 3): N per-branch correlated complex-Gaussian
/// streams u_j[l], normalised by the assumed per-branch variance and
/// colored per instant with the shared plan's L, plus an optional
/// deterministic mean trajectory:
///
///   Z_l = L W_l / sigma_g + m(l),   W_l = (u_1[l] ... u_N[l])^T.
///
/// FadingStream is that picture, with the per-branch synthesis swappable
/// via doppler::BranchSource (independent IDFT blocks / windowed
/// overlap-add / exact overlap-save FIR — see doppler/branch_source.hpp)
/// and three equivalent ways to pull blocks:
///
///   * the stateful cursor: next_block() emits consecutive blocks of one
///     unbounded realisation keyed by options.seed; seek() jumps to any
///     block index (replaying at most history_blocks() of carried state);
///   * the keyed const path: generate_block(seed, b) is a pure function
///     of the key — blocks regenerate independently, in any order, on any
///     thread or node;
///   * the rng-driven path: generate_block_from(rng) consumes a
///     caller-owned rng exactly like the historical
///     RealTimeGenerator::generate_block (independent-block backend only,
///     and bit-identical to it).
///
/// Randomness layout: block b of the stream draws from the per-block
/// Philox substream (seed, b + 1) (random::block_substream), every
/// branch's spectrum in a fixed serial order — so the independent-block
/// backend reproduces today's RealTimeGenerator bit-for-bit under the
/// cascade's (stage seed, block) keying.  The overlap-save backend
/// instead keys a persistent bulk input substream per branch
/// (BranchSourceDesign::input_seed) indexed by absolute sample position —
/// seekable to any instant.  Either way the output is bit-reproducible
/// for any thread count, and the mean trajectory is threaded by absolute
/// first_instant through SamplePipeline::color_block, so time-varying
/// LOS/TWDP phasors stay continuous across blocks.

#include <cstdint>
#include <memory>
#include <vector>

#include "rfade/core/plan.hpp"
#include "rfade/doppler/branch_source.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/telemetry/instruments.hpp"

namespace rfade::metrics {
class MetricsTap;
}  // namespace rfade::metrics

namespace rfade::core {

/// Which variance the coloring normalisation divides by: the Eq. (19)
/// post-filter value (the paper's Sec. 5 step 6) or the raw input
/// variance (the Sorooshyari-Daut ref. [6] flaw, kept for experiment E7).
enum class VarianceHandling {
  AnalyticCorrection,   ///< Eq. (19) — the proposed algorithm
  AssumeInputVariance   ///< the Sorooshyari-Daut assumption (flawed)
};

/// Arithmetic precision of the *emission* pipeline (per-block Philox
/// fills, FFT convolutions, crossfades, normalisation, coloring GEMM).
/// Design and plan construction — eigen/Cholesky, PSD forcing,
/// Bessel/Doppler filter design — always run in double regardless; the
/// float pipeline down-converts the resulting operators once (the plan's
/// cached float32 L^T clone, the design's narrowed kernel spectrum and
/// fade weights) and then runs every hot kernel at twice the SIMD width
/// with half the memory traffic.  Each precision is its own
/// bit-reference: the float path satisfies the same keyed ≡ cursor ≡
/// seek identities within itself, but is not required to match the
/// double path bitwise.
enum class Precision {
  Float64,  ///< double end-to-end (the historical bit-reference)
  Float32   ///< float32 emission over double-designed operators
};

/// Short label for telemetry/bench reporting: "f64" / "f32".
[[nodiscard]] const char* precision_name(Precision precision) noexcept;

/// Options for FadingStream.  The temporal half mirrors RealTimeOptions;
/// backend/overlap select the branch synthesis, seed keys the stateful
/// cursor.
struct FadingStreamOptions {
  /// Branch synthesis backend (see doppler/branch_source.hpp for the
  /// exactness/cost/paper-fidelity trade-offs).
  doppler::StreamBackend backend = doppler::StreamBackend::IndependentBlock;
  /// IDFT size M.  Output blocks carry M rows (M - overlap for WOLA).
  std::size_t idft_size = 4096;
  /// Normalised maximum Doppler fm = Fm / Fs in (0, 0.5).
  double normalized_doppler = 0.05;
  /// sigma_orig^2 per dimension at the Doppler-filter inputs.
  double input_variance_per_dim = 0.5;
  /// WOLA crossfade length; 0 picks idft_size / 8.  \pre < idft_size / 2.
  std::size_t overlap = 0;
  VarianceHandling variance_handling = VarianceHandling::AnalyticCorrection;
  /// Optional specular mean m(l) added to every colored instant, indexed
  /// by the absolute stream instant (continuous across blocks).
  MeanSource los_mean;
  /// Optional multiplicative per-branch amplitude gain g(l) applied after
  /// coloring and mean addition, indexed by the absolute stream instant —
  /// the composite-fading (shadowing) hook.  The default unit gain takes
  /// the exact gain-free code paths (bit-identical output); the dynamic
  /// form keys its own randomness (e.g. ShadowingProcess's seekable
  /// bulk-Philox substreams), so next_block/seek/generate_block stay
  /// equivalent for every backend.
  GainSource gain;
  ColoringOptions coloring;
  /// Synthesize the N branch fills concurrently on the global thread
  /// pool.  Output is bit-identical either way.
  bool parallel_branches = true;
  /// Overlap-save backend only: run the stateful cursor's N branch
  /// convolutions as one batched planar FFT sweep over the shared plan
  /// (doppler::OverlapSaveBatch) instead of N independent per-branch
  /// passes.  Bit-identical either way — the keyed generate_block path
  /// always uses the per-branch sources, and the test suite pins the two
  /// against each other.  Ignored by the other backends and by the
  /// non-power-of-two Bluestein fallback.
  bool batched_fill = true;
  /// Emission-pipeline precision (see core::Precision).  A stream is
  /// constructed in one precision for its whole life; Float32 streams
  /// emit via next_block_f32()/generate_block_f32(), and their
  /// next_block()/generate_block() widen that float block so existing
  /// double-API callers (the service layer) work unchanged.
  Precision precision = Precision::Float64;
  /// Key of the stateful next_block()/seek() realisation.
  std::uint64_t seed = 0;
};

/// Generator of one unbounded realisation of N jointly-correlated,
/// temporally Doppler-faded complex Gaussians (see file comment).
class FadingStream {
 public:
  /// \param desired_covariance K of Eqs. (12)-(13).
  FadingStream(numeric::CMatrix desired_covariance,
               FadingStreamOptions options = {});

  /// Share an existing plan; options.coloring is ignored.
  FadingStream(std::shared_ptr<const ColoringPlan> plan,
               FadingStreamOptions options = {});

  /// Number of envelopes N.
  [[nodiscard]] std::size_t dimension() const noexcept {
    return pipeline_.dimension();
  }

  /// Rows per block (M, or M - overlap for WOLA).
  [[nodiscard]] std::size_t block_size() const noexcept {
    return design_->block_size();
  }

  [[nodiscard]] doppler::StreamBackend backend() const noexcept {
    return design_->backend();
  }

  /// The shared backend design (filter, window/kernel precomputation).
  [[nodiscard]] const doppler::BranchSourceDesign& design() const noexcept {
    return *design_;
  }

  /// The shared Fig. 2 branch (all N branches use the same filter).
  [[nodiscard]] const doppler::IdftRayleighBranch& branch() const noexcept {
    return design_->branch();
  }

  /// Analytic per-branch output variance sigma_g^2 (Eq. 19).
  [[nodiscard]] double branch_output_variance() const noexcept {
    return design_->output_variance();
  }

  /// The variance the normalisation actually divides by (differs from
  /// branch_output_variance() only in AssumeInputVariance mode).
  [[nodiscard]] double assumed_variance() const noexcept {
    return assumed_variance_;
  }

  /// K_bar = L L^H.
  [[nodiscard]] const numeric::CMatrix& effective_covariance() const noexcept {
    return pipeline_.plan().effective_covariance();
  }

  /// Coloring diagnostics.
  [[nodiscard]] const ColoringResult& coloring() const noexcept {
    return pipeline_.plan().coloring();
  }

  /// The shared build-phase plan.
  [[nodiscard]] const std::shared_ptr<const ColoringPlan>& plan()
      const noexcept {
    return pipeline_.plan_handle();
  }

  /// The stateful cursor's seed.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Emission-pipeline precision this stream was built in.
  [[nodiscard]] Precision precision() const noexcept { return precision_; }

  /// Attach (or detach with nullptr) a link-level metrics tap: every
  /// block the stateful cursor emits (next_block / next_block_f32 /
  /// next_envelope_block) is folded into the tap's streaming
  /// accumulators.  A disabled or absent tap costs the cursor one
  /// pointer test (plus one relaxed load) per block; the keyed const
  /// generate_block paths are never observed (shard runs attach one tap
  /// per shard and merge them instead).
  void set_metrics_tap(std::shared_ptr<metrics::MetricsTap> tap) noexcept {
    metrics_tap_ = std::move(tap);
  }
  [[nodiscard]] const std::shared_ptr<metrics::MetricsTap>& metrics_tap()
      const noexcept {
    return metrics_tap_;
  }

  // --- stateful cursor (one continuous realisation keyed by seed) ----------

  /// The next block of the stream: block_size() x N, row l at absolute
  /// instant next_instant() + l.  Equals generate_block(seed(), b) for
  /// the b this call consumes.  On a Float32 stream this is the float
  /// block of next_block_f32() widened to double.
  [[nodiscard]] numeric::CMatrix next_block();

  /// Float32 cursor (\pre precision() == Precision::Float32): the next
  /// block of the float realisation, block_size() x N.  Equals
  /// generate_block_f32(seed(), b) bit-for-bit for the b this call
  /// consumes.
  [[nodiscard]] numeric::CMatrixF next_block_f32();

  /// Envelopes |Z| of next_block().
  [[nodiscard]] numeric::RMatrix next_envelope_block();

  /// Jump the cursor to \p block_index (any direction).  Replays at most
  /// design().history_blocks() blocks to rebuild carried state, so a
  /// seek costs O(one block) for every backend.
  void seek(std::uint64_t block_index);

  /// Index of the block the next next_block() call will emit.
  [[nodiscard]] std::uint64_t next_block_index() const noexcept {
    return next_block_;
  }

  /// Absolute time instant of that block's first row.
  [[nodiscard]] std::uint64_t next_instant() const noexcept {
    return next_block_ * block_size();
  }

  // --- keyed const path (pure function of (seed, block index)) -------------

  /// Block \p block_index of the realisation keyed by \p seed — exactly
  /// what the stateful cursor emits for that key, regenerated
  /// independently (transient sources + history replay).  Safe to call
  /// concurrently; the backbone of multi-node fan-out.
  [[nodiscard]] numeric::CMatrix generate_block(
      std::uint64_t seed, std::uint64_t block_index) const;

  /// Float32 keyed path (\pre precision() == Precision::Float32): a pure
  /// function of (seed, block index), bit-identical to what the float
  /// cursor emits for that key — the float stream's reference sequence.
  [[nodiscard]] numeric::CMatrixF generate_block_f32(
      std::uint64_t seed, std::uint64_t block_index) const;

  /// Envelopes |Z| of generate_block().
  [[nodiscard]] numeric::RMatrix generate_envelope_block(
      std::uint64_t seed, std::uint64_t block_index) const;

  // --- rng-driven path (historical Sec. 5 block algorithm) ------------------

  /// One block drawn from a caller-owned rng, rows at instants
  /// \p first_instant + l.  Independent-block backend only (the other
  /// backends key their own randomness); bit-identical to the
  /// pre-stream-layer RealTimeGenerator::generate_block.
  [[nodiscard]] numeric::CMatrix generate_block_from(
      random::Rng& rng, std::uint64_t first_instant = 0) const;

 private:
  using SourceList = std::vector<std::unique_ptr<doppler::BranchSource>>;

  /// Cursor-path scratch, sized on first use and reused every block so
  /// the steady-state next_block() loop allocates nothing but its
  /// returned matrix: the per-branch fill buffers and the W matrix of
  /// the transpose/normalise pass, in whichever precision the stream
  /// runs.  The keyed const paths stay transient (they are the
  /// any-thread fan-out API) and bit-identical — buffer reuse never
  /// changes arithmetic.
  struct Workspace {
    std::vector<numeric::CVector> outputs;
    numeric::CMatrix w;
    std::vector<numeric::CVectorF> outputs_f;
    numeric::CMatrixF w_f;
  };

  [[nodiscard]] SourceList make_sources(std::uint64_t seed) const;

  /// Advance + fill + normalise + color one block: the single copy of the
  /// loop RealTimeGenerator, StreamingFadingSource and the cascaded /
  /// TWDP real-time generators used to duplicate.  When \p batch is
  /// non-null (the cursor's batched overlap-save sweep) the per-branch
  /// sources are bypassed and all N convolutions run as one planar
  /// batch — bit-identical to the per-branch path.  \p workspace reuses
  /// the cursor's scratch; null means transient buffers (keyed path).
  [[nodiscard]] numeric::CMatrix emit(SourceList& sources, random::Rng& rng,
                                      std::uint64_t block_index,
                                      std::uint64_t first_instant,
                                      doppler::OverlapSaveBatch* batch,
                                      Workspace* workspace) const;

  /// Float32 mirror of emit: fill_f32 per branch (or the float batched
  /// sweep), float normalise, float coloring GEMM.  The rng is consumed
  /// exactly as in the double emit, so the block keying is identical.
  [[nodiscard]] numeric::CMatrixF emit_f32(
      SourceList& sources, random::Rng& rng, std::uint64_t block_index,
      std::uint64_t first_instant, doppler::OverlapSaveBatch* batch,
      Workspace* workspace) const;

  /// Advance + fill, discarding the output (history replay for seeks and
  /// keyed access to stateful backends).  \p float32 replays through
  /// fill_f32 so the float carried state (e.g. WOLA's previous float
  /// block) is rebuilt in the stream's own precision.
  void replay(SourceList& sources, std::uint64_t seed,
              std::uint64_t block_index, bool float32) const;

  SamplePipeline pipeline_;
  std::shared_ptr<const doppler::BranchSourceDesign> design_;
  double assumed_variance_;
  bool parallel_branches_;
  Precision precision_;
  std::uint64_t seed_;
  SourceList sources_;
  Workspace workspace_;
  /// The cursor's batched overlap-save sweep (null when the backend,
  /// options.batched_fill, or the non-power-of-two fallback opt out).
  std::unique_ptr<doppler::OverlapSaveBatch> batch_;
  std::uint64_t next_block_ = 0;
  /// Per-backend latency instruments on the telemetry registry
  /// (rfade_stream_block_fill_ns / rfade_stream_seek_ns, labelled
  /// backend="...").  Null when telemetry is compiled out; recording is
  /// further gated on telemetry::enabled(), so the idle cost per block
  /// is one relaxed load and a never-taken branch — no clock reads on
  /// the real-time hot loop.
  std::shared_ptr<telemetry::LatencyHistogram> block_histogram_;
  std::shared_ptr<telemetry::LatencyHistogram> seek_histogram_;
  /// Opt-in link-level metrics tap over the cursor's emitted blocks
  /// (see set_metrics_tap); null by default.
  std::shared_ptr<metrics::MetricsTap> metrics_tap_;
};

}  // namespace rfade::core
