#pragma once

/// \file envelope_correlation.hpp
/// \brief Exact mapping between complex-Gaussian correlation and the
///        resulting *envelope* correlation coefficient.
///
/// The paper specifies correlation at the complex-Gaussian level (the
/// covariance matrix K of Eqs. 12-13), while several conventional methods
/// ([2], [3]) and many link-level requirements are stated in terms of the
/// Pearson correlation of the Rayleigh *envelopes*.  For a bivariate pair
/// z_k ~ CN(0, p_k), z_j ~ CN(0, p_j) with normalised complex correlation
/// rho = mu_kj / sqrt(p_k p_j), the exact envelope statistics are
///
///   E[r_k r_j] = (pi/4) sqrt(p_k p_j) 2F1(-1/2, -1/2; 1; |rho|^2)
///   rho_env    = (pi/4) (2F1(-1/2,-1/2;1;|rho|^2) - 1) / (1 - pi/4),
///
/// a strictly increasing function of |rho|^2 with rho_env(0)=0 and
/// rho_env(1)=1, close to (but not exactly) the popular |rho|^2
/// approximation.  The inverse map lets users specify a *desired envelope
/// correlation* and obtain the |rho| to put into the covariance matrix.

#include "rfade/numeric/matrix.hpp"

namespace rfade::core {

/// Pearson correlation coefficient of the two envelopes induced by the
/// complex-Gaussian cross-covariance \p mu_kj with branch powers \p power_k,
/// \p power_j.  \pre powers positive, |mu_kj| <= sqrt(power_k power_j).
[[nodiscard]] double envelope_correlation_from_gaussian(
    numeric::cdouble mu_kj, double power_k, double power_j);

/// Matrix of pairwise envelope correlation coefficients implied by a
/// covariance matrix K (diagonal = 1).
[[nodiscard]] numeric::RMatrix envelope_correlation_matrix(
    const numeric::CMatrix& k);

/// Inverse map: |rho| (magnitude of the normalised Gaussian correlation)
/// that produces the requested envelope correlation \p rho_env in [0, 1].
/// Solved by bisection on the exact forward map.
[[nodiscard]] double gaussian_correlation_for_envelope_correlation(
    double rho_env);

}  // namespace rfade::core
