#pragma once

/// \file generator.hpp
/// \brief The proposed correlated-Rayleigh-envelope generator, single
///        time-instant mode (paper Sec. 4.4, steps 1-7).
///
/// A thin façade over the shared plan layer (plan.hpp): construction builds
/// (or accepts) an immutable ColoringPlan — PSD forcing (Sec. 4.2) and the
/// coloring matrix L = V sqrt(Lambda_hat) (Sec. 4.3) — and every draw is
/// executed by a SamplePipeline: W of N i.i.d. CN(0, sigma_w^2) variables
/// with *arbitrary* common variance sigma_w^2 (step 6), emitted as
/// Z = L W / sigma_w (step 7).  The moduli |z_j| are the correlated
/// Rayleigh envelopes; E[Z Z^H] = K_bar (Sec. 4.5).  Repeated draws are
/// temporally white — use RealTimeGenerator (realtime.hpp) for
/// Doppler-correlated time series.
///
/// For high-throughput workloads prefer the batched entry points
/// (sample_block / sample_stream), which color whole blocks with one
/// blocked GEMM and fan blocks over the thread pool deterministically.

#include <memory>
#include <span>

#include "rfade/core/plan.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::core {

/// Options for EnvelopeGenerator.
struct GeneratorOptions {
  ColoringOptions coloring;
  /// Variance sigma_w^2 of the i.i.d. complex Gaussians in step 6.  The
  /// algorithm divides it back out, so any positive value yields identical
  /// statistics; it is kept configurable to mirror the paper exactly (and
  /// to let the real-time generator pass the Eq. (19) value through).
  double sample_variance = 1.0;
  /// Optional LOS mean vector added after coloring (see
  /// PipelineOptions::mean_offset); empty = zero-mean Rayleigh.  The
  /// scenario layer (scenario/scenario_spec.hpp) derives this from
  /// per-branch Rician K-factors.
  numeric::CVector mean_offset;
};

/// Generator of N correlated complex Gaussians / Rayleigh envelopes at
/// independent time instants.
class EnvelopeGenerator {
 public:
  /// \param desired_covariance the matrix K of Eqs. (12)-(13).
  /// \throws ContractViolation when K is not a valid covariance matrix;
  ///         NotPositiveDefiniteError when Cholesky coloring is requested
  ///         on a non-PD K.
  explicit EnvelopeGenerator(numeric::CMatrix desired_covariance,
                             GeneratorOptions options = {});

  /// Share an existing plan (built once, reused across generators) instead
  /// of recomputing the coloring.  options.coloring is ignored — the plan
  /// already encodes it.
  explicit EnvelopeGenerator(std::shared_ptr<const ColoringPlan> plan,
                             GeneratorOptions options = {});

  /// Number of envelopes N.
  [[nodiscard]] std::size_t dimension() const noexcept {
    return pipeline_.dimension();
  }

  /// The K the caller asked for.
  [[nodiscard]] const numeric::CMatrix& desired_covariance() const noexcept {
    return pipeline_.plan().desired_covariance();
  }

  /// K_bar = L L^H, what the generator actually realises (== desired K
  /// when that was PSD).
  [[nodiscard]] const numeric::CMatrix& effective_covariance() const noexcept {
    return pipeline_.plan().effective_covariance();
  }

  /// The coloring matrix L.
  [[nodiscard]] const numeric::CMatrix& coloring_matrix() const noexcept {
    return pipeline_.plan().coloring_matrix();
  }

  /// Full coloring diagnostics (PSD forcing report etc.).
  [[nodiscard]] const ColoringResult& coloring() const noexcept {
    return pipeline_.plan().coloring();
  }

  /// The shared build-phase plan (steps 1-5).
  [[nodiscard]] const std::shared_ptr<const ColoringPlan>& plan()
      const noexcept {
    return pipeline_.plan_handle();
  }

  /// The draw-phase executor (steps 6-7).
  [[nodiscard]] const SamplePipeline& pipeline() const noexcept {
    return pipeline_;
  }

  /// One draw: Z = L W / sigma_w, N correlated complex Gaussians.
  [[nodiscard]] numeric::CVector sample(random::Rng& rng) const {
    return pipeline_.sample(rng);
  }

  /// Write one draw into \p out (size N); allocation-free hot path.
  void sample_into(random::Rng& rng, std::span<numeric::cdouble> out) const {
    pipeline_.sample_into(rng, out);
  }

  /// One draw of the envelopes r_j = |z_j|.
  [[nodiscard]] numeric::RVector sample_envelopes(random::Rng& rng) const {
    return pipeline_.sample_envelopes(rng);
  }

  /// \p count draws stacked row-wise into a count x N matrix (batched,
  /// bit-identical to count per-draw calls on the same rng).
  [[nodiscard]] numeric::CMatrix sample_block(std::size_t count,
                                              random::Rng& rng) const {
    return pipeline_.sample_block(count, rng);
  }

  /// \p count draws generated block-parallel over the thread pool with
  /// per-block Philox substreams of \p seed; deterministic for any thread
  /// count.
  [[nodiscard]] numeric::CMatrix sample_stream(std::size_t count,
                                               std::uint64_t seed) const {
    return pipeline_.sample_stream(count, seed);
  }

 private:
  SamplePipeline pipeline_;
};

}  // namespace rfade::core
