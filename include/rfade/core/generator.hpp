#pragma once

/// \file generator.hpp
/// \brief The proposed correlated-Rayleigh-envelope generator, single
///        time-instant mode (paper Sec. 4.4, steps 1-7).
///
/// Given the desired covariance matrix K of the complex Gaussians (built
/// from powers + cross-covariances, see covariance_spec.hpp, or from the
/// channel models), the generator:
///   1. forces K positive semi-definite (Sec. 4.2),
///   2. computes the coloring matrix L = V sqrt(Lambda_hat) (Sec. 4.3),
///   3. per draw, samples W of N i.i.d. CN(0, sigma_w^2) variables with
///      *arbitrary* common variance sigma_w^2 (step 6) and returns
///      Z = L W / sigma_w (step 7).
/// The moduli |z_j| are the correlated Rayleigh envelopes; E[Z Z^H] = K_bar
/// (Sec. 4.5).  Repeated draws are temporally white — use
/// RealTimeGenerator (realtime.hpp) for Doppler-correlated time series.

#include <span>

#include "rfade/core/coloring.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::core {

/// Options for EnvelopeGenerator.
struct GeneratorOptions {
  ColoringOptions coloring;
  /// Variance sigma_w^2 of the i.i.d. complex Gaussians in step 6.  The
  /// algorithm divides it back out, so any positive value yields identical
  /// statistics; it is kept configurable to mirror the paper exactly (and
  /// to let the real-time generator pass the Eq. (19) value through).
  double sample_variance = 1.0;
};

/// Generator of N correlated complex Gaussians / Rayleigh envelopes at
/// independent time instants.
class EnvelopeGenerator {
 public:
  /// \param desired_covariance the matrix K of Eqs. (12)-(13).
  /// \throws ContractViolation when K is not a valid covariance matrix;
  ///         NotPositiveDefiniteError when Cholesky coloring is requested
  ///         on a non-PD K.
  explicit EnvelopeGenerator(numeric::CMatrix desired_covariance,
                             GeneratorOptions options = {});

  /// Number of envelopes N.
  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }

  /// The K the caller asked for.
  [[nodiscard]] const numeric::CMatrix& desired_covariance() const noexcept {
    return desired_;
  }

  /// K_bar = L L^H, what the generator actually realises (== desired K
  /// when that was PSD).
  [[nodiscard]] const numeric::CMatrix& effective_covariance() const noexcept {
    return coloring_.effective_covariance;
  }

  /// The coloring matrix L.
  [[nodiscard]] const numeric::CMatrix& coloring_matrix() const noexcept {
    return coloring_.matrix;
  }

  /// Full coloring diagnostics (PSD forcing report etc.).
  [[nodiscard]] const ColoringResult& coloring() const noexcept {
    return coloring_;
  }

  /// One draw: Z = L W / sigma_w, N correlated complex Gaussians.
  [[nodiscard]] numeric::CVector sample(random::Rng& rng) const;

  /// Write one draw into \p out (size N); allocation-free hot path.
  void sample_into(random::Rng& rng, std::span<numeric::cdouble> out) const;

  /// One draw of the envelopes r_j = |z_j|.
  [[nodiscard]] numeric::RVector sample_envelopes(random::Rng& rng) const;

  /// \p count draws stacked row-wise into a count x N matrix.
  [[nodiscard]] numeric::CMatrix sample_block(std::size_t count,
                                              random::Rng& rng) const;

 private:
  std::size_t dim_;
  numeric::CMatrix desired_;
  ColoringResult coloring_;
  double sample_variance_;
  double inv_sigma_w_;
};

}  // namespace rfade::core
