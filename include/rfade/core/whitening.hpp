#pragma once

/// \file whitening.hpp
/// \brief The inverse of the coloring step: whiten correlated complex
///        Gaussian observations back to (approximately) i.i.d. samples.
///
/// Coloring maps white W to correlated Z = L W; whitening maps Z back with
/// W_hat = Lambda^{-1/2} V^H Z using the same eigendecomposition, with
/// zero (clipped) eigenvalues handled by pseudo-inversion — the directions
/// the coloring matrix annihilates carry no information and are returned
/// as zeros.  Useful for receiver-side decorrelation and as a strong
/// self-test of the coloring machinery (whiten(color(w)) must recover w on
/// the positive-rank subspace).

#include "rfade/core/psd.hpp"
#include "rfade/numeric/matrix.hpp"

namespace rfade::core {

/// Whitening transform derived from a covariance matrix.
class WhiteningTransform {
 public:
  /// \param covariance the (desired) covariance K; non-PSD input is clipped
  ///        exactly as in the coloring step, so coloring and whitening are
  ///        mutually consistent.
  /// \param options PSD forcing options shared with compute_coloring.
  explicit WhiteningTransform(const numeric::CMatrix& covariance,
                              const PsdOptions& options = {});

  /// Dimension N.
  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }

  /// Number of strictly positive eigenvalues (whitenable directions).
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

  /// Apply the transform: returns Lambda^{+1/2-pseudo-inverse} V^H z.
  [[nodiscard]] numeric::CVector whiten(const numeric::CVector& z) const;

  /// The whitening matrix itself.
  [[nodiscard]] const numeric::CMatrix& matrix() const noexcept {
    return w_;
  }

 private:
  std::size_t dim_;
  std::size_t rank_ = 0;
  numeric::CMatrix w_;
};

}  // namespace rfade::core
