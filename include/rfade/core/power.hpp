#pragma once

/// \file power.hpp
/// \brief Envelope-power <-> Gaussian-power conversions (paper Eqs. 11,
///        14, 15).
///
/// For an envelope r = |z| of z ~ CN(0, sigma_g^2):
///   E{r}      = sigma_g sqrt(pi)/2  = 0.8862 sigma_g        (Eq. 14)
///   Var{r}    = sigma_g^2 (1 - pi/4) = 0.2146 sigma_g^2     (Eq. 15)
/// so a *desired envelope variance* sigma_r^2 requires
///   sigma_g^2 = sigma_r^2 / (1 - pi/4)                      (Eq. 11).

namespace rfade::core {

/// 1 - pi/4, the Rayleigh variance factor of Eq. (15).
inline constexpr double kRayleighVarianceFactor =
    1.0 - 3.141592653589793238462643383279502884 / 4.0;

/// Eq. (11): sigma_g^2 from a desired envelope variance sigma_r^2.
[[nodiscard]] double gaussian_power_from_envelope_power(
    double envelope_variance);

/// Eq. (15): envelope variance sigma_r^2 from sigma_g^2.
[[nodiscard]] double envelope_power_from_gaussian_power(
    double gaussian_power);

/// Eq. (14): envelope mean 0.8862 sigma_g from sigma_g^2.
[[nodiscard]] double envelope_mean_from_gaussian_power(double gaussian_power);

/// RMS of the envelope: sqrt(E{r^2}) = sigma_g.
[[nodiscard]] double envelope_rms_from_gaussian_power(double gaussian_power);

}  // namespace rfade::core
