#pragma once

/// \file validation.hpp
/// \brief Monte-Carlo verification of the generator's statistical claims
///        (paper Sec. 4.5), with deterministic parallel execution.
///
/// Draws n samples from an EnvelopeGenerator, fanned over the global thread
/// pool in fixed-size chunks with per-chunk Philox streams, and reports:
///   * relative Frobenius error between the sample covariance and the
///     effective covariance K_bar,
///   * per-branch envelope mean/variance against Eqs. (14)-(15),
///   * KS p-values of each envelope against the analytic Rayleigh CDF.
/// Results are bit-identical for any thread count (streams are keyed by
/// chunk index, not thread id).

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "rfade/core/generator.hpp"
#include "rfade/numeric/matrix.hpp"

namespace rfade::core {

/// Validation configuration.
struct ValidationOptions {
  std::size_t samples = 100000;
  std::uint64_t seed = 0xC0FFEE;
  bool parallel = true;
  /// Per-chunk draw count (chunk boundaries define RNG streams).
  std::size_t chunk_size = 8192;
  /// Envelope samples retained per branch for the KS test (subsampled
  /// deterministically from the first draws of each chunk).
  std::size_t ks_samples_per_branch = 20000;
};

/// Measured-vs-expected statistics report.
struct ValidationReport {
  std::size_t samples = 0;
  /// ||K_hat - K_bar||_F / ||K_bar||_F.
  double covariance_rel_error = 0.0;
  /// The sample covariance itself.
  numeric::CMatrix sample_covariance;
  /// Per-branch relative error of the envelope mean vs Eq. (14).
  numeric::RVector envelope_mean_rel_error;
  /// Per-branch relative error of the envelope variance vs Eq. (15).
  numeric::RVector envelope_variance_rel_error;
  /// Per-branch KS p-value against the Rayleigh CDF.
  numeric::RVector ks_p_values;
  /// Smallest of ks_p_values.
  double worst_ks_p_value = 1.0;
};

/// Run the validation Monte-Carlo.
[[nodiscard]] ValidationReport validate_generator(
    const EnvelopeGenerator& generator, const ValidationOptions& options = {});

// --- envelope-domain validation (scenario extensions) ------------------------
//
// The Rayleigh-only validator above hardcodes Eqs. (14)-(15) and the
// Rayleigh CDF.  The scenario layer (Rician/LOS, cascaded Rayleigh) brings
// other marginal laws, so the envelope-domain machinery is factored out:
// callers supply one analytic marginal per branch and any deterministic
// block source of envelopes.

/// Expected marginal law of one envelope branch: analytic mean/variance
/// plus the CDF for the KS test.
struct EnvelopeMarginal {
  double mean = 0.0;
  double variance = 0.0;
  std::function<double(double)> cdf;
};

/// Build the per-branch marginal list from any analytic distribution
/// family: \p branch_marginal(j) must return a copyable object exposing
/// mean(), variance() and cdf(double) — RicianDistribution,
/// DoubleRayleighDistribution, TwdpDistribution, ...  Shared by every
/// scenario's marginals() so the EnvelopeMarginal wiring lives in one
/// place.
template <typename BranchMarginalFn>
[[nodiscard]] std::vector<EnvelopeMarginal> make_marginals(
    std::size_t dimension, BranchMarginalFn&& branch_marginal) {
  std::vector<EnvelopeMarginal> result;
  result.reserve(dimension);
  for (std::size_t j = 0; j < dimension; ++j) {
    auto marginal = branch_marginal(j);
    const double mean = marginal.mean();
    const double variance = marginal.variance();
    result.push_back(EnvelopeMarginal{
        mean, variance,
        [marginal = std::move(marginal)](double r) {
          return marginal.cdf(r);
        }});
  }
  return result;
}

/// Measured-vs-expected envelope statistics, one entry per branch.
struct EnvelopeValidationReport {
  std::size_t samples = 0;
  /// Measured per-branch envelope mean / variance (the absolute values
  /// behind the relative errors below).
  numeric::RVector measured_mean;
  numeric::RVector measured_variance;
  numeric::RVector mean_rel_error;
  numeric::RVector variance_rel_error;
  /// Relative error of E[r^2] vs (mean^2 + variance) — the moment the
  /// cascaded-channel theory pins down exactly.
  numeric::RVector second_moment_rel_error;
  numeric::RVector ks_p_values;
  double worst_ks_p_value = 1.0;
  double max_mean_rel_error = 0.0;
  double max_variance_rel_error = 0.0;
  double max_second_moment_rel_error = 0.0;
};

/// Deterministic envelope-block source: the `count` x dimension envelope
/// matrix of logical block \p block_index of the stream keyed by \p seed.
/// Must be a pure function of its arguments (the validator fans blocks
/// over the thread pool and merges in block order).
using EnvelopeBlockSource = std::function<numeric::RMatrix(
    std::size_t count, std::uint64_t seed, std::uint64_t block_index)>;

/// Envelope-domain Monte-Carlo against per-branch analytic marginals.
/// Chunk boundaries come from options.chunk_size; bit-identical for any
/// thread count.  \pre marginals.size() == dimension, all variances and
/// means positive.
[[nodiscard]] EnvelopeValidationReport validate_envelope_source(
    std::size_t dimension, const EnvelopeBlockSource& source,
    std::span<const EnvelopeMarginal> marginals,
    const ValidationOptions& options = {});

/// Convenience overload drawing envelopes through the pipeline's bulk
/// batched path (LOS mean offsets included).
[[nodiscard]] EnvelopeValidationReport validate_envelopes(
    const SamplePipeline& pipeline,
    std::span<const EnvelopeMarginal> marginals,
    const ValidationOptions& options = {});

}  // namespace rfade::core
