#pragma once

/// \file validation.hpp
/// \brief Monte-Carlo verification of the generator's statistical claims
///        (paper Sec. 4.5), with deterministic parallel execution.
///
/// Draws n samples from an EnvelopeGenerator, fanned over the global thread
/// pool in fixed-size chunks with per-chunk Philox streams, and reports:
///   * relative Frobenius error between the sample covariance and the
///     effective covariance K_bar,
///   * per-branch envelope mean/variance against Eqs. (14)-(15),
///   * KS p-values of each envelope against the analytic Rayleigh CDF.
/// Results are bit-identical for any thread count (streams are keyed by
/// chunk index, not thread id).

#include <cstdint>

#include "rfade/core/generator.hpp"
#include "rfade/numeric/matrix.hpp"

namespace rfade::core {

/// Validation configuration.
struct ValidationOptions {
  std::size_t samples = 100000;
  std::uint64_t seed = 0xC0FFEE;
  bool parallel = true;
  /// Per-chunk draw count (chunk boundaries define RNG streams).
  std::size_t chunk_size = 8192;
  /// Envelope samples retained per branch for the KS test (subsampled
  /// deterministically from the first draws of each chunk).
  std::size_t ks_samples_per_branch = 20000;
};

/// Measured-vs-expected statistics report.
struct ValidationReport {
  std::size_t samples = 0;
  /// ||K_hat - K_bar||_F / ||K_bar||_F.
  double covariance_rel_error = 0.0;
  /// The sample covariance itself.
  numeric::CMatrix sample_covariance;
  /// Per-branch relative error of the envelope mean vs Eq. (14).
  numeric::RVector envelope_mean_rel_error;
  /// Per-branch relative error of the envelope variance vs Eq. (15).
  numeric::RVector envelope_variance_rel_error;
  /// Per-branch KS p-value against the Rayleigh CDF.
  numeric::RVector ks_p_values;
  /// Smallest of ks_p_values.
  double worst_ks_p_value = 1.0;
};

/// Run the validation Monte-Carlo.
[[nodiscard]] ValidationReport validate_generator(
    const EnvelopeGenerator& generator, const ValidationOptions& options = {});

}  // namespace rfade::core
