#pragma once

/// \file covariance_spec.hpp
/// \brief Assembly of the desired covariance matrix K (paper Eqs. 12-13).
///
/// The algorithm's input is the covariance matrix of the *complex Gaussian*
/// variables (not of the envelopes):
///
///   mu_kj = sigma_g_j^2                                   (k == j)
///   mu_kj = (Rxx + Ryy) - i (Rxy - Ryx)                   (k != j)
///
/// CovarianceBuilder accumulates per-branch powers and pairwise covariances,
/// enforces Hermitian symmetry, and validates the result.

#include "rfade/numeric/matrix.hpp"

namespace rfade::core {

/// The four real covariances between the real/imaginary parts of a pair of
/// complex Gaussians (paper Eqs. 1-2):
///   rxx = E(x_k x_j),  ryy = E(y_k y_j),
///   rxy = E(x_k y_j),  ryx = E(y_k x_j).
struct CrossCovariance {
  double rxx = 0.0;
  double ryy = 0.0;
  double rxy = 0.0;
  double ryx = 0.0;
};

/// Covariance entry mu_kj from the four real covariances (Eq. 13).
[[nodiscard]] numeric::cdouble covariance_entry(const CrossCovariance& c);

/// Incremental builder for the covariance matrix K.
class CovarianceBuilder {
 public:
  /// \param n number of envelopes N; \pre n >= 1.
  explicit CovarianceBuilder(std::size_t n);

  /// Set sigma_g_j^2, the power of complex Gaussian j.  \pre power > 0.
  CovarianceBuilder& set_gaussian_power(std::size_t j, double power);

  /// Set the desired *envelope* power sigma_r_j^2; converted through the
  /// paper's Eq. (11): sigma_g^2 = sigma_r^2 / (1 - pi/4).
  CovarianceBuilder& set_envelope_power(std::size_t j, double power);

  /// Set the pair (k, j), k != j, from the four real covariances; the
  /// mirror entry mu_jk is set to the conjugate automatically.
  CovarianceBuilder& set_cross_covariance(std::size_t k, std::size_t j,
                                          const CrossCovariance& c);

  /// Set mu_kj directly (mirror entry handled as above).  \pre k != j.
  CovarianceBuilder& set_cross_entry(std::size_t k, std::size_t j,
                                     numeric::cdouble mu);

  /// Finish: returns K after validating that every diagonal power was set.
  [[nodiscard]] numeric::CMatrix build() const;

 private:
  std::size_t n_;
  numeric::CMatrix k_;
  std::vector<bool> power_set_;
};

/// Validate that \p k is a plausible covariance matrix: square, Hermitian
/// within \p tol, real positive diagonal.  Throws ContractViolation.
void validate_covariance_matrix(const numeric::CMatrix& k, double tol = 1e-9);

}  // namespace rfade::core
