#pragma once

/// \file realtime.hpp
/// \brief Real-time correlated Rayleigh generation with Doppler spectrum
///        (paper Sec. 5, Fig. 3).
///
/// N Young-Beaulieu IDFT branches (Fig. 2) produce temporally-correlated
/// complex Gaussians u_j[l]; at each time instant l the vector
/// W_l = (u_1[l], ..., u_N[l])^T is colored exactly as in the instant-mode
/// algorithm: Z_l = L W_l / sigma_g.
///
/// The decisive detail — the paper's fix over Sorooshyari-Daut [6] — is
/// *which* sigma_g^2 the division uses:
///   * VarianceHandling::AnalyticCorrection (proposed): the Eq. (19)
///     post-filter variance sigma_g^2 = (2 sigma_orig^2 / M^2) sum F[k]^2,
///     so E[Z Z^H] = K_bar holds exactly;
///   * VarianceHandling::AssumeInputVariance (the [6] flaw, kept for
///     experiment E7): the *input* complex variance 2 sigma_orig^2, which
///     ignores the gain of the Doppler filter and mis-scales every envelope
///     by the same large factor.

#include "rfade/core/coloring.hpp"
#include "rfade/doppler/idft_generator.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::core {

/// Which variance the coloring normalisation divides by (see file comment).
enum class VarianceHandling {
  AnalyticCorrection,   ///< Eq. (19) — the proposed algorithm
  AssumeInputVariance   ///< the Sorooshyari-Daut assumption (flawed)
};

/// Options for RealTimeGenerator.
struct RealTimeOptions {
  /// IDFT size M — the block length (number of time samples per block).
  std::size_t idft_size = 4096;
  /// Normalised maximum Doppler fm = Fm / Fs in (0, 0.5).
  double normalized_doppler = 0.05;
  /// sigma_orig^2 per dimension at the Doppler-filter inputs.
  double input_variance_per_dim = 0.5;
  VarianceHandling variance_handling = VarianceHandling::AnalyticCorrection;
  ColoringOptions coloring;
};

/// Generator of N jointly-correlated, temporally-Doppler-faded envelopes.
class RealTimeGenerator {
 public:
  /// \param desired_covariance K of Eqs. (12)-(13).
  RealTimeGenerator(numeric::CMatrix desired_covariance,
                    RealTimeOptions options = {});

  /// Number of envelopes N.
  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }

  /// Block length M.
  [[nodiscard]] std::size_t block_size() const noexcept {
    return branch_.block_size();
  }

  /// One block: M x N complex Gaussians; row l is the vector Z at time l.
  [[nodiscard]] numeric::CMatrix generate_block(random::Rng& rng) const;

  /// One block of envelopes |Z|: M x N.
  [[nodiscard]] numeric::RMatrix generate_envelope_block(
      random::Rng& rng) const;

  /// Analytic per-branch output variance sigma_g^2 (Eq. 19).
  [[nodiscard]] double branch_output_variance() const noexcept {
    return branch_.output_variance();
  }

  /// The variance the normalisation actually divides by (differs from
  /// branch_output_variance() only in AssumeInputVariance mode).
  [[nodiscard]] double assumed_variance() const noexcept {
    return assumed_variance_;
  }

  /// K_bar = L L^H.
  [[nodiscard]] const numeric::CMatrix& effective_covariance() const noexcept {
    return coloring_.effective_covariance;
  }

  /// Coloring diagnostics.
  [[nodiscard]] const ColoringResult& coloring() const noexcept {
    return coloring_;
  }

  /// The shared branch design (all N branches use the same filter).
  [[nodiscard]] const doppler::IdftRayleighBranch& branch() const noexcept {
    return branch_;
  }

 private:
  std::size_t dim_;
  numeric::CMatrix desired_;
  ColoringResult coloring_;
  doppler::IdftRayleighBranch branch_;
  double assumed_variance_;
};

}  // namespace rfade::core
