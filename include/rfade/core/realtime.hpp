#pragma once

/// \file realtime.hpp
/// \brief Real-time correlated Rayleigh generation with Doppler spectrum
///        (paper Sec. 5, Fig. 3).
///
/// N Young-Beaulieu IDFT branches (Fig. 2) produce temporally-correlated
/// complex Gaussians u_j[l]; at each time instant l the vector
/// W_l = (u_1[l], ..., u_N[l])^T is colored exactly as in the instant-mode
/// algorithm: Z_l = L W_l / sigma_g.  RealTimeGenerator is the paper's
/// block algorithm verbatim: a thin rng-driven façade over the unified
/// stream engine (core/fading_stream.hpp) pinned to the independent-block
/// backend — every generate_block call is an independent realisation, and
/// the output is bit-identical to the pre-stream-layer implementation.
/// For continuous long traces (seam-free autocorrelation), use
/// core::FadingStream with the windowed-overlap-add or overlap-save
/// backend instead.
///
/// The decisive detail — the paper's fix over Sorooshyari-Daut [6] — is
/// *which* sigma_g^2 the division uses:
///   * VarianceHandling::AnalyticCorrection (proposed): the Eq. (19)
///     post-filter variance sigma_g^2 = (2 sigma_orig^2 / M^2) sum F[k]^2,
///     so E[Z Z^H] = K_bar holds exactly;
///   * VarianceHandling::AssumeInputVariance (the [6] flaw, kept for
///     experiment E7): the *input* complex variance 2 sigma_orig^2, which
///     ignores the gain of the Doppler filter and mis-scales every envelope
///     by the same large factor.

#include <memory>

#include "rfade/core/fading_stream.hpp"
#include "rfade/core/plan.hpp"
#include "rfade/doppler/idft_generator.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::core {

/// Options for RealTimeGenerator.
struct RealTimeOptions {
  /// IDFT size M — the block length (number of time samples per block).
  std::size_t idft_size = 4096;
  /// Normalised maximum Doppler fm = Fm / Fs in (0, 0.5).
  double normalized_doppler = 0.05;
  /// sigma_orig^2 per dimension at the Doppler-filter inputs.
  double input_variance_per_dim = 0.5;
  VarianceHandling variance_handling = VarianceHandling::AnalyticCorrection;
  /// Optional specular mean m(l) added to every colored time instant:
  /// Z_l = L W_l / sigma_g + m(l).  Zero (the default) = pure Rayleigh; a
  /// CVector (implicitly converted) is the constant-phasor LOS of a
  /// static terminal; MeanSource::doppler_phasor gives a moving terminal
  /// the line-of-sight Doppler shift m_j e^{i 2 pi f_LOS l}; a phasor
  /// pair is the deterministic-phase real-time TWDP mode (see
  /// scenario/timevarying/twdp.hpp).  The diffuse part keeps its Doppler
  /// spectrum; with any single-phasor mean branch j's envelope is Rician
  /// with K_j = |m_j|^2 / K_bar_jj (see scenario/scenario_spec.hpp for
  /// deriving m from K-factors).  Time instants restart at 0 for each
  /// generate_block(rng) call; pass a first_instant to continue a
  /// trajectory across blocks.
  MeanSource los_mean;
  ColoringOptions coloring;
  /// Synthesize the N branch IDFTs concurrently on the global thread pool.
  /// Output is bit-identical either way (spectra are drawn serially).
  bool parallel_branches = true;
};

/// Generator of N jointly-correlated, temporally-Doppler-faded envelopes.
class RealTimeGenerator {
 public:
  /// \param desired_covariance K of Eqs. (12)-(13).
  RealTimeGenerator(numeric::CMatrix desired_covariance,
                    RealTimeOptions options = {});

  /// Share an existing plan instead of recomputing the coloring;
  /// options.coloring is ignored.
  RealTimeGenerator(std::shared_ptr<const ColoringPlan> plan,
                    RealTimeOptions options = {});

  /// Number of envelopes N.
  [[nodiscard]] std::size_t dimension() const noexcept {
    return stream_.dimension();
  }

  /// Block length M.
  [[nodiscard]] std::size_t block_size() const noexcept {
    return stream_.block_size();
  }

  /// One block: M x N complex Gaussians; row l is the vector Z at time
  /// \p first_instant + l (the offset only matters for a time-varying
  /// LOS mean — see RealTimeOptions::los_mean).
  [[nodiscard]] numeric::CMatrix generate_block(
      random::Rng& rng, std::uint64_t first_instant = 0) const {
    return stream_.generate_block_from(rng, first_instant);
  }

  /// One block of envelopes |Z|: M x N.
  [[nodiscard]] numeric::RMatrix generate_envelope_block(
      random::Rng& rng, std::uint64_t first_instant = 0) const;

  /// Analytic per-branch output variance sigma_g^2 (Eq. 19).
  [[nodiscard]] double branch_output_variance() const noexcept {
    return stream_.branch_output_variance();
  }

  /// The variance the normalisation actually divides by (differs from
  /// branch_output_variance() only in AssumeInputVariance mode).
  [[nodiscard]] double assumed_variance() const noexcept {
    return stream_.assumed_variance();
  }

  /// K_bar = L L^H.
  [[nodiscard]] const numeric::CMatrix& effective_covariance() const noexcept {
    return stream_.effective_covariance();
  }

  /// Coloring diagnostics.
  [[nodiscard]] const ColoringResult& coloring() const noexcept {
    return stream_.coloring();
  }

  /// The shared build-phase plan.
  [[nodiscard]] const std::shared_ptr<const ColoringPlan>& plan()
      const noexcept {
    return stream_.plan();
  }

  /// The shared branch design (all N branches use the same filter).
  [[nodiscard]] const doppler::IdftRayleighBranch& branch() const noexcept {
    return stream_.branch();
  }

  /// The underlying stream engine (independent-block backend).
  [[nodiscard]] const FadingStream& stream() const noexcept { return stream_; }

 private:
  FadingStream stream_;
};

}  // namespace rfade::core
