#pragma once

/// \file plan.hpp
/// \brief The shared coloring plan + sampling pipeline every generator is
///        built on (paper Sec. 4.2-4.5, steps 1-7).
///
/// The paper's algorithm factors into two halves with very different cost
/// profiles:
///
///   *build once*  — steps 1-5: assemble the desired covariance K
///                   (covariance_spec.hpp / channel models), force it PSD
///                   (step 3, Sec. 4.2) and compute the coloring matrix
///                   L = V sqrt(Lambda_hat) (steps 4-5, Sec. 4.3).
///                   `ColoringPlan` captures all of this immutably.
///
///   *draw many*   — steps 6-7: sample i.i.d. CN(0, sigma_w^2) vectors W
///                   and emit Z = L W / sigma_w.  `SamplePipeline` executes
///                   draws against a plan: per-draw for callbacks and
///                   real-time coloring, or batched — a whole block of W
///                   colored with one blocked GEMM (numeric::multiply_block)
///                   and fanned over the thread pool with counter-based
///                   per-block Philox substreams (random::block_substream),
///                   so results are bit-identical for any thread count.
///
/// One plan can feed any number of pipelines and generators
/// (EnvelopeGenerator, RealTimeGenerator, the baselines' block coloring),
/// which is what makes plan construction — the only expensive part — a
/// one-time cost per scenario.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

#include "rfade/core/coloring.hpp"
#include "rfade/core/gain_source.hpp"
#include "rfade/core/mean_source.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::core {

/// Immutable product of the algorithm's build phase (steps 1-5): the PSD
/// forcing, the coloring factor and all diagnostics, computed once from a
/// desired covariance matrix and shared (by shared_ptr) between every
/// pipeline and generator that draws against it.
class ColoringPlan {
 public:
  /// Build a plan from the desired covariance K of Eqs. (12)-(13).
  /// \throws ContractViolation when K is not a valid covariance matrix;
  ///         NotPositiveDefiniteError when Cholesky coloring is requested
  ///         on a non-PD K.
  [[nodiscard]] static std::shared_ptr<const ColoringPlan> create(
      numeric::CMatrix desired_covariance, ColoringOptions options = {});

  /// Number of envelopes N.
  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }

  /// The K the caller asked for.
  [[nodiscard]] const numeric::CMatrix& desired_covariance() const noexcept {
    return desired_;
  }

  /// K_bar = L L^H, the covariance actually realised (== desired K when
  /// that was PSD).
  [[nodiscard]] const numeric::CMatrix& effective_covariance() const noexcept {
    return coloring_.effective_covariance;
  }

  /// The coloring matrix L.
  [[nodiscard]] const numeric::CMatrix& coloring_matrix() const noexcept {
    return coloring_.matrix;
  }

  /// L^T (not conjugated), precomputed for the blocked right-multiply
  /// Z_block = W_block * L^T used by the batched draw paths.
  [[nodiscard]] const numeric::CMatrix& coloring_matrix_transposed()
      const noexcept {
    return coloring_transposed_;
  }

  /// Split re/im planes of L^T (each N x N row-major) feeding the
  /// vectorized planar GEMM (numeric::multiply_block_planar).
  [[nodiscard]] const numeric::RVector& coloring_transposed_re()
      const noexcept {
    return coloring_transposed_re_;
  }
  [[nodiscard]] const numeric::RVector& coloring_transposed_im()
      const noexcept {
    return coloring_transposed_im_;
  }

  /// Full coloring diagnostics (PSD forcing report etc.).
  [[nodiscard]] const ColoringResult& coloring() const noexcept {
    return coloring_;
  }

  /// Float32 clone of the coloring operator for the mixed-precision
  /// emission pipeline: L^T narrowed element-by-element from the double
  /// factor, in both interleaved and split re/im layouts.  The design
  /// itself (eigen/Cholesky, PSD forcing) always runs in double — this is
  /// a one-time down-conversion, built lazily on the first float32 draw
  /// and cached for the plan's lifetime (thread-safe; plans are shared
  /// across streams and the PlanCache).
  struct ColoringF32 {
    numeric::CMatrixF transposed;     ///< L^T, N x N interleaved
    numeric::RVectorF transposed_re;  ///< split planes of L^T (row-major)
    numeric::RVectorF transposed_im;
  };
  [[nodiscard]] const ColoringF32& coloring_f32() const;

 private:
  ColoringPlan(numeric::CMatrix desired, const ColoringOptions& options);

  std::size_t dim_;
  numeric::CMatrix desired_;
  ColoringResult coloring_;
  numeric::CMatrix coloring_transposed_;
  numeric::RVector coloring_transposed_re_;
  numeric::RVector coloring_transposed_im_;
  mutable std::once_flag coloring_f32_once_;
  mutable ColoringF32 coloring_f32_;
};

/// Options for SamplePipeline.
struct PipelineOptions {
  /// Variance sigma_w^2 of the i.i.d. complex Gaussians in step 6.  The
  /// algorithm divides it back out, so any positive value yields identical
  /// statistics; it is kept configurable to mirror the paper exactly.
  double sample_variance = 1.0;
  /// Optional deterministic specular mean m(l) added after coloring:
  /// Z_l = L W_l / sigma_w + m(l).  The default (zero) MeanSource is the
  /// paper's pure-Rayleigh algorithm; assigning a CVector (implicitly
  /// converted) gives PR 2's constant LOS mean — branch j's envelope
  /// |z_j| is then Rician with K-factor |m_j|^2 / K_bar_jj (see
  /// scenario/scenario_spec.hpp) — and the time-varying forms
  /// (Doppler-shifted LOS phasor, TWDP phasor pair, precomputed block)
  /// index the mean by the absolute time instant of each row (see
  /// core/mean_source.hpp for how each draw path assigns instants).  A
  /// non-zero mean must have dimension() entries; an all-zero mean is
  /// treated exactly like the default, so a K = 0 scenario reproduces
  /// the zero-mean output bit-for-bit.
  MeanSource mean_offset;
  /// Optional multiplicative per-branch amplitude gain g(l) applied after
  /// coloring and mean addition: Z_l = g(l) (.) (L W_l / sigma_w + m(l)).
  /// The default (unit) GainSource is the paper's pipeline with no
  /// multiply pass at all — output is bit-identical to the gain-free
  /// paths; a constant vector models fixed per-link attenuation, and the
  /// dynamic form (e.g. scenario/composite's correlated-lognormal
  /// ShadowingProcess) is indexed by the absolute time instant of each
  /// row exactly like the mean.  A non-unit gain must have dimension()
  /// entries; an all-ones constant is treated exactly like the default.
  GainSource gain;
  /// Rows per block in the batched paths; also the work-unit handed to the
  /// thread pool by sample_stream (and the granularity of the per-block
  /// Philox substreams, so changing it changes the stream's bit pattern).
  std::size_t block_size = 4096;
  /// Fan sample_stream blocks over support::ThreadPool::global().  The
  /// result is bit-identical either way — substreams are keyed by block
  /// index, never by thread.
  bool parallel = true;
};

/// Executor of the algorithm's draw phase (steps 6-7) against a shared
/// ColoringPlan.  Cheap to construct; holds only the plan handle and
/// normalisation constants.
class SamplePipeline {
 public:
  explicit SamplePipeline(std::shared_ptr<const ColoringPlan> plan,
                          PipelineOptions options = {});

  [[nodiscard]] const ColoringPlan& plan() const noexcept { return *plan_; }
  [[nodiscard]] const std::shared_ptr<const ColoringPlan>& plan_handle()
      const noexcept {
    return plan_;
  }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return plan_->dimension();
  }
  [[nodiscard]] const PipelineOptions& options() const noexcept {
    return options_;
  }

  /// True when a non-trivial mean offset is applied to every draw.
  [[nodiscard]] bool has_mean_offset() const noexcept { return has_mean_; }

  /// True when the mean offset depends on the time instant (so draw paths
  /// must be given a meaningful first_instant).
  [[nodiscard]] bool has_time_varying_mean() const noexcept {
    return has_mean_ && options_.mean_offset.is_time_varying();
  }

  /// True when a non-unit multiplicative gain is applied to every draw.
  [[nodiscard]] bool has_gain() const noexcept { return has_gain_; }

  /// True when the gain depends on the time instant (so draw paths must
  /// be given a meaningful first_instant).
  [[nodiscard]] bool has_time_varying_gain() const noexcept {
    return has_gain_ && options_.gain.is_time_varying();
  }

  // --- per-draw path (steps 6-7, one time instant) -------------------------

  /// Write one draw Z = g(\p instant) (.) (L W / sigma_w + m(\p instant))
  /// into \p out (size N).  \p instant only matters for time-varying
  /// means/gains.
  void sample_into(random::Rng& rng, std::span<numeric::cdouble> out,
                   std::uint64_t instant = 0) const;

  /// One draw of N correlated complex Gaussians.
  [[nodiscard]] numeric::CVector sample(random::Rng& rng,
                                        std::uint64_t instant = 0) const;

  /// One draw of the envelopes r_j = |z_j|.
  [[nodiscard]] numeric::RVector sample_envelopes(
      random::Rng& rng, std::uint64_t instant = 0) const;

  // --- batched paths --------------------------------------------------------

  /// \p count draws stacked row-wise into a count x N matrix.  Consumes
  /// \p rng in exactly the per-draw order (row-major W), and the blocked
  /// GEMM accumulates in matvec order — the result is bit-identical to
  /// calling sample_into count times (row t at instant
  /// \p first_instant + t).
  [[nodiscard]] numeric::CMatrix sample_block(
      std::size_t count, random::Rng& rng,
      std::uint64_t first_instant = 0) const;

  /// One deterministic block keyed by (\p seed, \p block_index): the i.i.d.
  /// draws are the Philox bulk substream (seed, block_index + 1) of
  /// random::fill_complex_gaussians_planar — a pure function of the key,
  /// so any block of a logical stream can be (re)generated independently,
  /// in any order, on any thread.  This is the throughput path: planar
  /// vectorized RNG + planar GEMM; statistically identical to the per-draw
  /// path but its own bit-stream.  Invariant to options().sample_variance
  /// (the sigma_w of step 6 cancels exactly, so the batched path draws at
  /// unit variance directly).  Row t carries the mean at instant
  /// \p first_instant + t; the three-argument form assigns
  /// first_instant = block_index * options().block_size, matching the
  /// instants sample_stream gives the same rows.
  [[nodiscard]] numeric::CMatrix sample_block(std::size_t count,
                                              std::uint64_t seed,
                                              std::uint64_t block_index) const;

  /// Same deterministic block with an explicit first time instant for
  /// the mean trajectory.
  [[nodiscard]] numeric::CMatrix sample_block(std::size_t count,
                                              std::uint64_t seed,
                                              std::uint64_t block_index,
                                              std::uint64_t first_instant)
      const;

  /// The same deterministic bulk block written into caller memory
  /// (\p out, row-major count x N) — the zero-copy form composite
  /// generators build their streams on, so block assembly needs no
  /// per-chunk temporary.  Bit-identical to the matrix-returning
  /// overloads.
  void sample_block_into(std::size_t count, std::uint64_t seed,
                         std::uint64_t block_index,
                         std::uint64_t first_instant,
                         std::span<numeric::cdouble> out) const;

  /// \p count draws as a count x N matrix, generated block-by-block
  /// (options().block_size rows per block, per-block substreams of \p seed)
  /// and fanned over the global thread pool when options().parallel.
  /// Bit-identical for any thread count, including serial.  Row t carries
  /// the mean at instant t (each block starts at its absolute offset, so
  /// the trajectory is continuous across blocks).
  [[nodiscard]] numeric::CMatrix sample_stream(std::size_t count,
                                               std::uint64_t seed) const;

  /// Envelope moduli of sample_stream: count x N real matrix.
  [[nodiscard]] numeric::RMatrix sample_envelope_stream(
      std::size_t count, std::uint64_t seed) const;

  // --- shared coloring of externally-drawn W --------------------------------

  /// Color a block of externally-generated white vectors (rows of \p w,
  /// count x N): out = (w / sqrt(variance)) * L^T (+ the mean, then the
  /// multiplicative gain, at instant \p first_instant + t on row t when
  /// configured).  This is the Sec. 5
  /// step 6-8 normalisation + coloring used by the real-time generators;
  /// \p variance is the (assumed) per-branch complex variance divided
  /// out.  variance == 1.0 (input already normalised) skips the scaling
  /// pass and colors straight from \p w.
  [[nodiscard]] numeric::CMatrix color_block(
      const numeric::CMatrix& w, double variance,
      std::uint64_t first_instant = 0) const;

  /// Float32 coloring of an already-normalised W block (count x N): the
  /// float GEMM against the plan's cached float32 L^T clone, then the
  /// mean/gain tail evaluated per row in double (mean_at / gains_at) and
  /// applied narrowed.  The float analogue of color_block(w, 1.0, ...);
  /// callers fold their 1/sigma scaling into W assembly.
  [[nodiscard]] numeric::CMatrixF color_block_f32(
      const numeric::CMatrixF& w, std::uint64_t first_instant = 0) const;

  /// In-place form of color_block_f32 writing into caller memory
  /// (row-major count x N) — the allocation-free streaming hot path.
  void color_block_f32_into(const numeric::CMatrixF& w,
                            std::uint64_t first_instant,
                            numeric::CMatrixF& out) const;

 private:
  /// Draw `rows` white vectors scaled by 1/sigma_w from \p rng and color
  /// them into `out` (row-major, `rows` x N, caller-owned).  Per-draw
  /// bit-compatible path.
  void fill_colored_rows(random::Rng& rng, std::size_t rows,
                         std::uint64_t first_instant,
                         numeric::cdouble* out) const;

  /// Bulk throughput path: rows x N colored draws of logical block
  /// \p block_index of the stream keyed by \p seed, written to `out`;
  /// mean rows start at \p first_instant.
  void fill_colored_rows_bulk(std::uint64_t seed, std::uint64_t block_index,
                              std::uint64_t first_instant, std::size_t rows,
                              numeric::cdouble* out) const;

  /// Add the configured mean m(first_instant + t) to row t of the `rows`
  /// N-vectors in `out`; no-op when has_mean_offset() is false.
  void add_mean_rows(std::uint64_t first_instant, std::size_t rows,
                     numeric::cdouble* out) const;

  /// Apply the mean-then-gain tail of every draw path to the `rows`
  /// colored N-vectors in `out`: row t gains m(first_instant + t) and is
  /// then scaled by g(first_instant + t).  No-op for the default
  /// zero-mean/unit-gain pipeline.
  void finish_rows(std::uint64_t first_instant, std::size_t rows,
                   numeric::cdouble* out) const;

  /// Float32 mean/gain tail: each row's m / g evaluated in double (the
  /// sources are double by design) and applied narrowed.
  void finish_rows_f32(std::uint64_t first_instant, std::size_t rows,
                       numeric::cfloat* out) const;

  std::shared_ptr<const ColoringPlan> plan_;
  PipelineOptions options_;
  double inv_sigma_w_;
  bool has_mean_ = false;
  bool has_gain_ = false;
};

}  // namespace rfade::core
