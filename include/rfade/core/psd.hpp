#pragma once

/// \file psd.hpp
/// \brief Forced positive semi-definiteness of the covariance matrix
///        (paper Sec. 4.2).
///
/// Physically-specified covariance matrices need not be PSD (measurement
/// noise, inconsistent pairwise specifications).  The proposed algorithm
/// eigendecomposes K = V G V^H and clips negative eigenvalues to zero,
/// yielding the *nearest* PSD matrix in Frobenius norm.  The
/// Sorooshyari-Daut alternative [6] replaces non-positive eigenvalues by a
/// small epsilon > 0 (to keep Cholesky usable), which is strictly farther
/// from K — quantified in experiment E6.

#include "rfade/numeric/eigen_hermitian.hpp"
#include "rfade/numeric/matrix.hpp"

namespace rfade::core {

/// How non-PSD eigenvalues are repaired.
enum class PsdPolicy {
  ClipToZero,     ///< lambda_hat = max(lambda, 0) — the paper's choice
  EpsilonReplace  ///< lambda_hat = lambda > 0 ? lambda : eps — ref. [6]
};

/// Outcome of the PSD-forcing step.
struct PsdResult {
  /// The forced matrix K_bar = V Lambda_hat V^H (equals K when K is PSD).
  numeric::CMatrix matrix;
  /// Original eigenvalues of K, ascending.
  numeric::RVector eigenvalues;
  /// Adjusted eigenvalues lambda_hat, same order.
  numeric::RVector adjusted_eigenvalues;
  /// Eigenvectors of K (shared by K_bar).
  numeric::CMatrix eigenvectors;
  /// True when no eigenvalue needed adjustment.
  bool was_psd = true;
  /// ||K_bar - K||_F, the Frobenius approximation error.
  double frobenius_distance = 0.0;
};

/// Options for force_positive_semidefinite.
struct PsdOptions {
  PsdPolicy policy = PsdPolicy::ClipToZero;
  /// epsilon for PsdPolicy::EpsilonReplace.
  double epsilon = 1e-4;
  /// Eigenvalues above -tolerance * max|lambda| count as non-negative.
  double tolerance = 1e-12;
  numeric::EigenMethod eigen_method = numeric::EigenMethod::TridiagonalQL;
};

/// Force \p k to be positive semi-definite (identity on PSD input).
/// \pre k is a valid covariance matrix (square, Hermitian).
[[nodiscard]] PsdResult force_positive_semidefinite(const numeric::CMatrix& k,
                                                    const PsdOptions& options = {});

/// True when every eigenvalue of \p k is >= -tolerance * max(|lambda|).
[[nodiscard]] bool is_positive_semidefinite(const numeric::CMatrix& k,
                                            double tolerance = 1e-12);

}  // namespace rfade::core
