#pragma once

/// \file mean_source.hpp
/// \brief Time-indexed specular (mean) component of a sampling pipeline.
///
/// The paper's algorithm generates zero-mean correlated Gaussians; every
/// specular scenario adds a deterministic mean m on top of the colored
/// diffuse field: Z_l = L W_l / sigma_w + m(l).  PR 2's constant-phasor
/// LOS is the special case m(l) = m; the time-varying scenarios — a
/// moving-terminal LOS m_j e^{i 2 pi f_LOS l}, the deterministic-phase
/// real-time mode of TWDP fading (Maric & Njemcevic, "On the Simulation
/// and Correlation Properties of TWDP Fading Process",
/// arXiv:2502.03388) — need the mean to be a function of the time
/// instant l.  MeanSource is that function, in one of three closed
/// forms:
///
///   * zero            — the paper's pure-Rayleigh pipeline (no add pass);
///   * a phasor sum    — m(l) = sum_t a_t e^{i 2 pi f_t l} with complex
///                       per-branch amplitude vectors a_t and normalised
///                       frequencies f_t.  One term with f = 0 is the
///                       constant LOS mean; one term with f != 0 the
///                       Doppler-shifted LOS; two terms the TWDP specular
///                       pair;
///   * a mean block    — a precomputed M x N matrix, extended
///                       periodically in l (row l mod M), for means with
///                       no closed form.
///
/// The zero and constant cases take exactly the code paths the constant
/// CVector mean took before this class existed, so pure-Rayleigh and
/// constant-LOS pipeline output is bit-identical to the earlier
/// `PipelineOptions::mean_offset` vector.  Time-varying means evaluate
/// e^{i 2 pi f l} directly from the absolute instant l (never
/// incrementally), so any block of a stream can still be (re)generated
/// independently, in any order, on any thread.

#include <cstdint>
#include <span>
#include <vector>

#include "rfade/numeric/matrix.hpp"

namespace rfade::core {

/// One term a e^{i 2 pi f l} of a phasor-sum mean: a complex amplitude
/// per branch and a normalised frequency f = F / Fs in [-0.5, 0.5].
struct MeanPhasorTerm {
  numeric::CVector amplitudes;
  double normalized_frequency = 0.0;
};

/// Deterministic mean trajectory m(l) added after coloring (see file
/// comment).  Immutable once built; cheap to copy for the zero/phasor
/// forms.
class MeanSource {
 public:
  /// Zero mean — the paper's pure-Rayleigh pipeline.
  MeanSource() = default;

  /// Constant mean m(l) = m (PR 2's LOS vector).  Implicit so existing
  /// call sites assigning a CVector to a mean option keep compiling; an
  /// empty or all-zero vector is the zero mean.
  MeanSource(numeric::CVector constant_mean);  // NOLINT(google-explicit-*)

  /// Constant mean, named form.
  [[nodiscard]] static MeanSource constant(numeric::CVector mean);

  /// Doppler-shifted LOS of a terminal moving at normalised LOS Doppler
  /// \p normalized_frequency: m(l) = a e^{i 2 pi f l}.
  /// \pre f finite, |f| <= 0.5.
  [[nodiscard]] static MeanSource doppler_phasor(numeric::CVector amplitudes,
                                                 double normalized_frequency);

  /// General phasor sum m(l) = sum_t a_t e^{i 2 pi f_t l} (e.g. the two
  /// specular waves of real-time TWDP).  \pre all terms share one
  /// dimension; every frequency finite with |f| <= 0.5.
  [[nodiscard]] static MeanSource phasor_sum(std::vector<MeanPhasorTerm> terms);

  /// Precomputed M x N mean block, extended periodically: m(l) = row
  /// (l mod M) of \p mean_block.  \pre non-empty.
  [[nodiscard]] static MeanSource block(numeric::CMatrix mean_block);

  /// True when m(l) == 0 for all l — the pipeline skips the add pass
  /// entirely (pure-Rayleigh bit-compatibility).
  [[nodiscard]] bool is_zero() const noexcept { return kind_ == Kind::Zero; }

  /// True when m(l) does not depend on l (zero or constant).
  [[nodiscard]] bool is_constant() const noexcept {
    return kind_ == Kind::Zero || kind_ == Kind::Constant;
  }

  /// True when the mean genuinely varies with the time instant.
  [[nodiscard]] bool is_time_varying() const noexcept {
    return !is_constant();
  }

  /// Number of branches N, or 0 for the zero mean (which fits any N).
  [[nodiscard]] std::size_t dimension() const noexcept;

  /// m(\p instant) written into \p out (size N; zero mean requires the
  /// caller's N and writes zeros).
  void mean_at(std::uint64_t instant, std::span<numeric::cdouble> out) const;

  /// m(\p instant) as a vector of \p dimension entries (needed for the
  /// zero mean, whose own dimension is 0).
  [[nodiscard]] numeric::CVector mean_at_instant(std::uint64_t instant,
                                                 std::size_t dimension) const;

  /// Hot-path add pass: row t of \p out (row-major, \p rows x \p n) gains
  /// m(\p first_instant + t).  No-op for the zero mean; the constant case
  /// is the exact per-row add loop the constant-vector mean used.
  void add_to_rows(std::uint64_t first_instant, std::size_t rows,
                   std::size_t n, numeric::cdouble* out) const;

  /// Phasor terms (empty unless a phasor-sum/constant/doppler form).
  [[nodiscard]] const std::vector<MeanPhasorTerm>& terms() const noexcept {
    return terms_;
  }

  /// Periodic mean block (empty unless the block form).
  [[nodiscard]] const numeric::CMatrix& mean_block() const noexcept {
    return block_;
  }

 private:
  enum class Kind { Zero, Constant, Phasor, Block };

  Kind kind_ = Kind::Zero;
  /// Constant/phasor forms.  For Kind::Constant exactly one term with
  /// frequency 0 whose amplitudes are the mean vector.
  std::vector<MeanPhasorTerm> terms_;
  /// Block form: M x N, row l mod M is m(l).
  numeric::CMatrix block_;
};

}  // namespace rfade::core
