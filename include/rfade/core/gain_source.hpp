#pragma once

/// \file gain_source.hpp
/// \brief Time-indexed multiplicative (gain) component of a sampling
///        pipeline — the dual of the additive MeanSource.
///
/// The paper's algorithm produces the *diffuse* small-scale field
/// Z_l = L W_l / sigma_w (+ m(l) for specular scenarios).  Composite
/// channels modulate that field by a slowly-varying positive amplitude
/// gain per branch — most importantly lognormal shadowing (Suzuki,
/// "A Statistical Model for Urban Radio Propagation", IEEE Trans.
/// Commun., 1977), whose spatial correlation follows Gudmundson's
/// exponential law ("Correlation Model for Shadow Fading in Mobile Radio
/// Systems", Electron. Lett., 1991).  GainSource is that modulation:
///
///   Z_l = g(l) (.) (L W_l / sigma_w + m(l)),
///
/// with (.) the per-branch (Hadamard) product — the gain scales the whole
/// local-mean field, specular component included, which is the physical
/// reading of shadowing as a common large-scale attenuation.  Three
/// closed forms:
///
///   * unit       — g(l) == 1: the paper's pipeline.  No multiply pass is
///                  emitted at all, so output stays bit-identical to the
///                  gain-free code path;
///   * constant   — a fixed positive per-branch gain vector (deterministic
///                  per-link attenuation / power imbalance);
///   * dynamic    — any time-indexed gain process behind the
///                  TimeVaryingGain interface, indexed by the *absolute*
///                  instant l so any block of a stream can be (re)generated
///                  independently, in any order, on any thread.  The
///                  correlated-lognormal form lives in
///                  scenario/composite/shadowing.hpp (ShadowingProcess).
///
/// Like MeanSource, the unit form (explicit, default, or an all-ones
/// constant) takes exactly the code paths the pipeline took before this
/// class existed — pure-Rayleigh/Rician output is bit-identical.

#include <cstdint>
#include <memory>
#include <span>

#include "rfade/numeric/matrix.hpp"

namespace rfade::core {

/// Abstract time-indexed amplitude gain process g_j(l) > 0.  Must be a
/// pure function of the absolute instant (no mutable state observable
/// through gains_for_rows) — the pipeline calls it concurrently from the
/// thread pool with arbitrary, possibly overlapping instant ranges.
class TimeVaryingGain {
 public:
  virtual ~TimeVaryingGain() = default;

  /// Number of branches N.
  [[nodiscard]] virtual std::size_t dimension() const noexcept = 0;

  /// Write the amplitude gains of rows [\p first_instant,
  /// \p first_instant + \p rows) into \p out (row-major rows x N): entry
  /// t * N + j is g_j(first_instant + t).
  virtual void gains_for_rows(std::uint64_t first_instant, std::size_t rows,
                              std::span<double> out) const = 0;
};

/// Deterministic-or-stochastic multiplicative gain trajectory g(l)
/// applied after coloring and mean addition (see file comment).
/// Immutable once built; cheap to copy (the dynamic form shares its
/// process by shared_ptr).
class GainSource {
 public:
  /// Unit gain — the paper's pipeline, no multiply pass.
  GainSource() = default;

  /// Unit gain, named form.
  [[nodiscard]] static GainSource unit();

  /// Constant per-branch gain g(l) = g.  An empty or all-ones vector is
  /// the unit gain (and keeps its bit-compatibility fast path).
  /// \pre every entry finite and > 0.
  [[nodiscard]] static GainSource constant(numeric::RVector gains);

  /// Time-indexed gain process (e.g. correlated lognormal shadowing).
  /// \pre process non-null with dimension() > 0.
  [[nodiscard]] static GainSource dynamic(
      std::shared_ptr<const TimeVaryingGain> process);

  /// True when g(l) == 1 for all l — the pipeline skips the multiply
  /// pass entirely (bit-compatibility with the gain-free paths).
  [[nodiscard]] bool is_unit() const noexcept { return kind_ == Kind::Unit; }

  /// True when g(l) does not depend on l (unit or constant).
  [[nodiscard]] bool is_constant() const noexcept {
    return kind_ != Kind::Dynamic;
  }

  /// True when the gain genuinely varies with the time instant.
  [[nodiscard]] bool is_time_varying() const noexcept {
    return kind_ == Kind::Dynamic;
  }

  /// Number of branches N, or 0 for the unit gain (which fits any N).
  [[nodiscard]] std::size_t dimension() const noexcept;

  /// g(\p instant) written into \p out (size N; the unit gain requires
  /// the caller's N and writes ones).
  void gains_at(std::uint64_t instant, std::span<double> out) const;

  /// Hot-path multiply pass: row t of \p out (row-major, \p rows x \p n)
  /// is scaled entrywise by g(\p first_instant + t).  No-op for the unit
  /// gain.
  void multiply_rows(std::uint64_t first_instant, std::size_t rows,
                     std::size_t n, numeric::cdouble* out) const;

  /// Constant gain vector (empty unless the constant form).
  [[nodiscard]] const numeric::RVector& constant_gains() const noexcept {
    return constant_;
  }

  /// Dynamic gain process (null unless the dynamic form).
  [[nodiscard]] const std::shared_ptr<const TimeVaryingGain>& process()
      const noexcept {
    return process_;
  }

 private:
  enum class Kind { Unit, Constant, Dynamic };

  Kind kind_ = Kind::Unit;
  numeric::RVector constant_;
  std::shared_ptr<const TimeVaryingGain> process_;
};

}  // namespace rfade::core
