#pragma once

/// \file coloring.hpp
/// \brief Coloring-matrix computation L with L L^H = K_bar (paper Sec. 4.3).
///
/// The proposed route is eigendecomposition: K_bar = V Lambda_hat V^H with
/// Lambda_hat >= 0, then L = V sqrt(Lambda_hat) (steps 4-5 of the
/// algorithm).  Unlike Cholesky it requires only positive
/// *semi*-definiteness, which the PSD-forcing step guarantees; rank
/// deficiency is handled for free (zero columns).  Cholesky remains
/// available for the baselines and the A1 ablation.

#include "rfade/core/psd.hpp"
#include "rfade/numeric/matrix.hpp"

namespace rfade::core {

/// How the coloring matrix is obtained.
enum class ColoringMethod {
  EigenDecomposition,  ///< L = V sqrt(Lambda_hat) — the paper's method
  Cholesky             ///< L from K = L L^H; requires K positive definite
};

/// Options for compute_coloring.
struct ColoringOptions {
  ColoringMethod method = ColoringMethod::EigenDecomposition;
  PsdOptions psd;  ///< PSD forcing applied before eigen-coloring
};

/// Outcome of the coloring step.
struct ColoringResult {
  /// L with L L^H = effective covariance.
  numeric::CMatrix matrix;
  /// K_bar = L L^H, the covariance the generator will actually realise
  /// (equals the desired K whenever K was PSD).
  numeric::CMatrix effective_covariance;
  /// PSD-forcing diagnostics (only meaningful for EigenDecomposition).
  PsdResult psd;
  ColoringMethod method = ColoringMethod::EigenDecomposition;
};

/// Compute the coloring matrix of \p k.
/// \throws NotPositiveDefiniteError for ColoringMethod::Cholesky on a
///         non-PD matrix — the conventional methods' failure mode.
[[nodiscard]] ColoringResult compute_coloring(const numeric::CMatrix& k,
                                              const ColoringOptions& options = {});

}  // namespace rfade::core
