#pragma once

/// \file philox.hpp
/// \brief Philox4x32-10 counter-based PRNG (Salmon et al., SC'11).
///
/// Counter-based generators make parallel reproducibility trivial: the
/// output is a pure function `block = philox(key, counter)`, so disjoint
/// counter ranges give provably non-overlapping streams.  rfade uses the
/// (seed, stream) pair as the 64-bit key and the upper counter words, and
/// the block index as the lower counter words.

#include <array>
#include <cstdint>

#include "rfade/random/engine.hpp"

namespace rfade::random {

namespace detail {

// Philox4x32 round constants (Salmon et al., SC'11, Table 2).
inline constexpr std::uint32_t kPhiloxMult0 = 0xD2511F53u;
inline constexpr std::uint32_t kPhiloxMult1 = 0xCD9E8D57u;
inline constexpr std::uint32_t kPhiloxWeyl0 = 0x9E3779B9u;  // golden ratio
inline constexpr std::uint32_t kPhiloxWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void philox_round(std::array<std::uint32_t, 4>& ctr,
                         const std::array<std::uint32_t, 2>& key) {
  const std::uint64_t product0 =
      static_cast<std::uint64_t>(kPhiloxMult0) * ctr[0];
  const std::uint64_t product1 =
      static_cast<std::uint64_t>(kPhiloxMult1) * ctr[2];
  const auto hi0 = static_cast<std::uint32_t>(product0 >> 32);
  const auto lo0 = static_cast<std::uint32_t>(product0);
  const auto hi1 = static_cast<std::uint32_t>(product1 >> 32);
  const auto lo1 = static_cast<std::uint32_t>(product1);
  ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
}

/// The keyed Philox4x32-10 block function, inline so bulk kernels
/// (random/bulk_gaussian.cpp) pay no call per counter block.
inline std::array<std::uint32_t, 4> philox_block(
    std::array<std::uint32_t, 2> key, std::array<std::uint32_t, 4> counter) {
  for (int round = 0; round < 10; ++round) {
    if (round > 0) {
      key[0] += kPhiloxWeyl0;
      key[1] += kPhiloxWeyl1;
    }
    philox_round(counter, key);
  }
  return counter;
}

}  // namespace detail

/// Philox4x32 with 10 rounds.
class PhiloxEngine final : public RandomEngine {
 public:
  /// \param seed   64-bit key.
  /// \param stream 64-bit stream id (upper counter words); streams with the
  ///               same seed but different ids never overlap.
  explicit PhiloxEngine(std::uint64_t seed = 0x243F6A8885A308D3ULL,
                        std::uint64_t stream = 0);

  std::uint64_t next_u64() override;

  [[nodiscard]] std::unique_ptr<RandomEngine> fork_stream(
      std::uint64_t stream_id) const override;

  [[nodiscard]] const char* name() const override { return "philox4x32-10"; }

  /// Jump directly to 128-bit block index \p block (for tests).
  void seek(std::uint64_t block);

  /// The raw keyed block function: 4 output words from (key, counter).
  /// Exposed for the structural unit tests (avalanche, counter mapping).
  [[nodiscard]] static std::array<std::uint32_t, 4> block(
      std::array<std::uint32_t, 2> key, std::array<std::uint32_t, 4> counter);

 private:
  void refill();

  std::array<std::uint32_t, 2> key_{};
  std::array<std::uint32_t, 2> stream_words_{};
  std::uint64_t block_index_ = 0;
  std::array<std::uint32_t, 4> buffer_{};
  unsigned buffer_pos_ = 4;  // empty => refill on first use
};

}  // namespace rfade::random
