#pragma once

/// \file philox.hpp
/// \brief Philox4x32-10 counter-based PRNG (Salmon et al., SC'11).
///
/// Counter-based generators make parallel reproducibility trivial: the
/// output is a pure function `block = philox(key, counter)`, so disjoint
/// counter ranges give provably non-overlapping streams.  rfade uses the
/// (seed, stream) pair as the 64-bit key and the upper counter words, and
/// the block index as the lower counter words.

#include <array>
#include <cstdint>

#include "rfade/random/engine.hpp"

namespace rfade::random {

/// Philox4x32 with 10 rounds.
class PhiloxEngine final : public RandomEngine {
 public:
  /// \param seed   64-bit key.
  /// \param stream 64-bit stream id (upper counter words); streams with the
  ///               same seed but different ids never overlap.
  explicit PhiloxEngine(std::uint64_t seed = 0x243F6A8885A308D3ULL,
                        std::uint64_t stream = 0);

  std::uint64_t next_u64() override;

  [[nodiscard]] std::unique_ptr<RandomEngine> fork_stream(
      std::uint64_t stream_id) const override;

  [[nodiscard]] const char* name() const override { return "philox4x32-10"; }

  /// Jump directly to 128-bit block index \p block (for tests).
  void seek(std::uint64_t block);

  /// The raw keyed block function: 4 output words from (key, counter).
  /// Exposed for the structural unit tests (avalanche, counter mapping).
  [[nodiscard]] static std::array<std::uint32_t, 4> block(
      std::array<std::uint32_t, 2> key, std::array<std::uint32_t, 4> counter);

 private:
  void refill();

  std::array<std::uint32_t, 2> key_{};
  std::array<std::uint32_t, 2> stream_words_{};
  std::uint64_t block_index_ = 0;
  std::array<std::uint32_t, 4> buffer_{};
  unsigned buffer_pos_ = 4;  // empty => refill on first use
};

}  // namespace rfade::random
