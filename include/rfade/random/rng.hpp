#pragma once

/// \file rng.hpp
/// \brief The Rng façade: uniform, Gaussian and complex-Gaussian sampling.
///
/// Every stochastic component of rfade draws through this class, so the
/// engine (Philox/xoshiro) and Gaussian algorithm (Box-Muller/polar) can be
/// swapped for the A2 ablation without touching call sites.  `fork_stream`
/// provides the deterministic parallel streams used by the Monte-Carlo
/// harness: stream ids are derived from chunk indices, never thread ids.

#include <complex>
#include <cstdint>
#include <memory>

#include "rfade/random/engine.hpp"

namespace rfade::random {

/// Method used to transform uniform bits into standard normal samples.
enum class GaussianAlgorithm {
  BoxMuller,  ///< trigonometric Box-Muller, two normals per two uniforms
  Polar       ///< Marsaglia polar method, rejection-based, no trig calls
};

/// Convenience tag selecting the underlying engine.
enum class EngineKind { Philox, Xoshiro };

/// Random number façade used across the library.
class Rng {
 public:
  /// Philox-backed generator with the given seed and stream.
  explicit Rng(std::uint64_t seed = 0x5EEDF00DULL, std::uint64_t stream = 0);

  /// Generator over an explicit engine/algorithm combination.
  Rng(EngineKind kind, std::uint64_t seed, std::uint64_t stream,
      GaussianAlgorithm algorithm = GaussianAlgorithm::BoxMuller);

  Rng(Rng&&) noexcept = default;
  Rng& operator=(Rng&&) noexcept = default;
  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;

  /// Uniform in [0, 1).
  double uniform01();

  /// Uniform 64 random bits.
  std::uint64_t next_u64();

  /// Standard normal N(0, 1).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Zero-mean circularly-symmetric complex Gaussian CN(0, \p variance):
  /// independent real and imaginary parts, each with variance/2.  This is
  /// the distribution of the samples u_j in step 6 of the paper's
  /// algorithm (Sec. 4.4).
  std::complex<double> complex_gaussian(double variance);

  /// Deterministically derived independent stream (see engine.hpp).
  [[nodiscard]] Rng fork_stream(std::uint64_t stream_id) const;

  /// Engine name, for reports.
  [[nodiscard]] const char* engine_name() const;

  /// Gaussian algorithm in use.
  [[nodiscard]] GaussianAlgorithm algorithm() const noexcept {
    return algorithm_;
  }

 private:
  Rng(std::unique_ptr<RandomEngine> engine, GaussianAlgorithm algorithm);

  std::unique_ptr<RandomEngine> engine_;
  GaussianAlgorithm algorithm_ = GaussianAlgorithm::BoxMuller;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Counter-based per-block substream: a Philox generator keyed by
/// (\p seed, \p block_index + 1).  Philox streams occupy disjoint counter
/// spaces, so every block's randomness is independent of every other
/// block's *and* of the order blocks are generated in — the property the
/// batched SamplePipeline paths rely on for thread-count-independent
/// determinism.  The +1 keeps block streams disjoint from the default
/// stream 0 of a root `Rng(seed)`.
[[nodiscard]] Rng block_substream(
    std::uint64_t seed, std::uint64_t block_index,
    GaussianAlgorithm algorithm = GaussianAlgorithm::BoxMuller);

}  // namespace rfade::random
