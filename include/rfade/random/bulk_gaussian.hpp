#pragma once

/// \file bulk_gaussian.hpp
/// \brief Bulk, vectorizable complex-Gaussian generation on raw Philox
///        counter blocks — the RNG hot path of the batched SamplePipeline.
///
/// Sample t of the substream (seed, stream) consumes exactly Philox counter
/// block t: one block's four 32-bit words become the two uniforms of one
/// Box-Muller pair, re = r cos(2 pi v), im = r sin(2 pi v) with
/// r = sigma sqrt(-2 ln u) — the same construction as
/// Rng::complex_gaussian.  Because the mapping counter -> sample is pure,
/// any sub-range can be (re)generated independently, in any order, on any
/// thread: this is what makes the parallel sample_stream bit-identical for
/// every thread count.
///
/// The implementation runs the transform in split tile loops that the
/// compiler auto-vectorizes against libmvec (the translation unit builds
/// with relaxed-FP flags), so the output is *statistically* identical to —
/// but not the same bit-stream as — driving an Rng over the same engine
/// substream.  Use Rng/block_substream when bit-compatibility with the
/// per-draw paths is required; use this when throughput is.

#include <cstddef>
#include <cstdint>

namespace rfade::random {

/// Fill the planar arrays re[0..count) / im[0..count) with i.i.d.
/// CN(0, \p variance) samples t = 0..count-1 of the Philox bulk substream
/// (\p seed, \p stream).  Deterministic: a pure function of
/// (seed, stream, variance, count) — thread- and call-order-free.
void fill_complex_gaussians_planar(std::uint64_t seed, std::uint64_t stream,
                                   double variance, std::size_t count,
                                   double* re, double* im);

/// Stream-seekable form: samples first_sample..first_sample+count-1 of the
/// same substream (sample t consumes counter block t, so any two calls
/// whose ranges overlap agree bit-for-bit on the overlap).  This is how a
/// continuous source treats one substream as an unbounded input tape —
/// the overlap-save Doppler backend regenerates any window of its white
/// input stream from (seed, stream, offset) alone, which makes seeking
/// and multi-node fan-out pure key arithmetic.
void fill_complex_gaussians_planar(std::uint64_t seed, std::uint64_t stream,
                                   double variance,
                                   std::uint64_t first_sample,
                                   std::size_t count, double* re, double* im);

/// Single-precision variants for the float32 emission pipeline.  Same
/// contract (sample t consumes Philox counter block t; positionally pure
/// at any ISA width and for any call partitioning), but the uniforms and
/// the Box-Muller transform run in float: sample t draws
/// u = (words[0] + 1) * 2^-32 in (0, 1] and v = 2 pi words[2] * 2^-32,
/// giving the float path its own bit-reference — deterministic and
/// seekable, but a different value stream from the double fill.
void fill_complex_gaussians_planar_f32(std::uint64_t seed,
                                       std::uint64_t stream, double variance,
                                       std::size_t count, float* re,
                                       float* im);

/// Stream-seekable float form (see the double overload above).
void fill_complex_gaussians_planar_f32(std::uint64_t seed,
                                       std::uint64_t stream, double variance,
                                       std::uint64_t first_sample,
                                       std::size_t count, float* re,
                                       float* im);

}  // namespace rfade::random
