#pragma once

/// \file engine.hpp
/// \brief Abstract uniform-bit source with support for independent streams.
///
/// rfade's Monte-Carlo harnesses need *reproducible parallelism*: a run
/// split over 24 threads must produce the same statistics as a serial run.
/// Engines therefore expose `fork_stream(id)`, which derives a statistically
/// independent generator from (seed, id) only — never from thread identity.
/// The Philox counter-based engine implements this exactly (disjoint counter
/// spaces); xoshiro does it by hashing the stream id into a fresh seed.

#include <cstdint>
#include <memory>

namespace rfade::random {

/// Interface for a 64-bit uniform random bit source.
class RandomEngine {
 public:
  virtual ~RandomEngine() = default;

  /// Next 64 uniformly random bits.
  virtual std::uint64_t next_u64() = 0;

  /// A new engine whose output is independent of this one, identified by
  /// \p stream_id.  Deterministic: same (engine seed, stream_id) always
  /// yields the same stream.
  [[nodiscard]] virtual std::unique_ptr<RandomEngine> fork_stream(
      std::uint64_t stream_id) const = 0;

  /// Human-readable engine name (used in the A2 ablation tables).
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Uniform double in [0, 1) using the top 53 bits of \p bits.
[[nodiscard]] inline double to_unit_double(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace rfade::random
