#pragma once

/// \file xoshiro.hpp
/// \brief xoshiro256++ PRNG (Blackman & Vigna), the fast non-counter engine.
///
/// Kept alongside Philox for the A2 ablation: xoshiro is faster per call
/// but derives parallel streams by re-seeding through SplitMix64 rather
/// than by construction, so Philox remains rfade's default.

#include <array>
#include <cstdint>

#include "rfade/random/engine.hpp"

namespace rfade::random {

/// xoshiro256++ with SplitMix64 state initialisation.
class XoshiroEngine final : public RandomEngine {
 public:
  explicit XoshiroEngine(std::uint64_t seed = 0x9E3779B97F4A7C15ULL,
                         std::uint64_t stream = 0);

  std::uint64_t next_u64() override;

  [[nodiscard]] std::unique_ptr<RandomEngine> fork_stream(
      std::uint64_t stream_id) const override;

  [[nodiscard]] const char* name() const override { return "xoshiro256++"; }

 private:
  std::uint64_t seed_ = 0;
  std::array<std::uint64_t, 4> state_{};
};

/// SplitMix64 step — also used standalone for hashing stream ids.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace rfade::random
