#pragma once

/// \file histogram.hpp
/// \brief Uniform-bin histogram with density normalisation.

#include <cstddef>
#include <vector>

#include "rfade/numeric/matrix.hpp"

namespace rfade::stats {

/// Fixed-range uniform histogram; values outside [lo, hi) are clamped into
/// the first/last bin so no sample is silently dropped.
class Histogram {
 public:
  /// \pre hi > lo, bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const numeric::RVector& xs);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t count(std::size_t bin) const;

  /// Centre of bin \p bin.
  [[nodiscard]] double center(std::size_t bin) const;

  /// Bin width.
  [[nodiscard]] double width() const noexcept { return width_; }

  /// Empirical density at bin \p bin: count / (total * width); comparable
  /// to an analytic pdf.
  [[nodiscard]] double density(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rfade::stats
