#pragma once

/// \file ks_test.hpp
/// \brief One-sample Kolmogorov-Smirnov goodness-of-fit test.
///
/// The canonical check that generated envelopes are Rayleigh distributed
/// (paper Sec. 4.5): the KS distance between the empirical CDF and the
/// analytic Rayleigh CDF must be statistically unremarkable.

#include <functional>

#include "rfade/numeric/matrix.hpp"

namespace rfade::stats {

/// Outcome of a one-sample KS test.
struct KsResult {
  double statistic = 0.0;  ///< sup |F_n(x) - F(x)|
  double p_value = 0.0;    ///< asymptotic (Stephens-corrected) p-value
  std::size_t n = 0;       ///< sample count
};

/// KS statistic and p-value of \p samples against the CDF \p cdf.
/// \p samples need not be sorted (a sorted copy is made internally).
[[nodiscard]] KsResult ks_test(numeric::RVector samples,
                               const std::function<double(double)>& cdf);

/// Two-sample KS statistic (no p-value); used to compare generator variants.
[[nodiscard]] double ks_two_sample_statistic(numeric::RVector a,
                                             numeric::RVector b);

}  // namespace rfade::stats
