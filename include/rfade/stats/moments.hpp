#pragma once

/// \file moments.hpp
/// \brief Running moments (Welford) and simple descriptive statistics.

#include <cstddef>
#include <span>

#include "rfade/numeric/matrix.hpp"

namespace rfade::stats {

/// Numerically stable streaming mean/variance accumulator.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x) noexcept;

  /// Merge another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Population variance (divides by n). Returns 0 for n < 1.
  [[nodiscard]] double variance() const noexcept;

  /// Sample variance (divides by n-1). Returns 0 for n < 2.
  [[nodiscard]] double sample_variance() const noexcept;

  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean of a span; 0 when empty.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population variance of a span; 0 when size < 1.
[[nodiscard]] double variance(std::span<const double> xs);

/// Mean power (1/n) sum |z|^2 of complex samples; 0 when empty.
[[nodiscard]] double mean_power(std::span<const numeric::cdouble> zs);

/// Linear-interpolation quantile of *sorted* data, p in [0, 1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double p);

/// Pearson correlation coefficient of two equal-length spans.
[[nodiscard]] double pearson_correlation(std::span<const double> a,
                                         std::span<const double> b);

}  // namespace rfade::stats
