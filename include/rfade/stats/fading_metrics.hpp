#pragma once

/// \file fading_metrics.hpp
/// \brief Level-crossing rate and average fade duration of fading envelopes.
///
/// These are the classic second-order statistics of a Rayleigh fading
/// channel (Rappaport Ch. 5, ref. [9] of the paper).  For a Jakes/Clarke
/// Doppler spectrum with maximum Doppler frequency f_D and normalised
/// threshold rho = R / R_rms:
///     LCR(rho)  = sqrt(2 pi) f_D rho exp(-rho^2)          [crossings/s]
///     AFD(rho)  = (exp(rho^2) - 1) / (rho f_D sqrt(2 pi)) [s]
/// The real-time generator's output must match these, which the E8-adjacent
/// tests and the realtime example verify.

#include <cstddef>

#include "rfade/numeric/matrix.hpp"

namespace rfade::stats {

/// Empirical second-order fading statistics of one envelope trace.
struct FadingMetrics {
  double level_crossing_rate = 0.0;  ///< up-crossings per second
  double average_fade_duration = 0.0;  ///< seconds below threshold per fade
  std::size_t crossings = 0;           ///< raw up-crossing count
};

/// Measure LCR/AFD of \p envelope sampled at \p sample_rate_hz against the
/// absolute \p threshold.
[[nodiscard]] FadingMetrics measure_fading_metrics(
    const numeric::RVector& envelope, double threshold,
    double sample_rate_hz);

/// Theoretical Rayleigh LCR at normalised threshold \p rho (R/R_rms).
[[nodiscard]] double theoretical_lcr(double rho, double max_doppler_hz);

/// Theoretical Rayleigh AFD at normalised threshold \p rho (R/R_rms).
[[nodiscard]] double theoretical_afd(double rho, double max_doppler_hz);

/// Root-mean-square value of an envelope trace.
[[nodiscard]] double rms(const numeric::RVector& envelope);

}  // namespace rfade::stats
