#pragma once

/// \file covariance.hpp
/// \brief Streaming estimator of the complex covariance matrix E[Z Z^H].
///
/// This is the measurement side of the paper's Sec. 4.5: the generated
/// Gaussian vectors Z are zero-mean by construction, so the estimator
/// accumulates sum z z^H directly (a `subtract_mean` mode exists for
/// sanity checks).  Accumulators merge, enabling the deterministic
/// chunked parallel Monte-Carlo used by the benches.

#include <span>

#include "rfade/numeric/matrix.hpp"

namespace rfade::stats {

/// Accumulates sample covariance of N-dimensional complex vectors.
class CovarianceAccumulator {
 public:
  /// \param dimension N, the vector length (number of envelopes).
  explicit CovarianceAccumulator(std::size_t dimension);

  /// Add one observation z (length must equal dimension()).
  void add(std::span<const numeric::cdouble> z);

  /// Merge another accumulator of the same dimension.
  void merge(const CovarianceAccumulator& other);

  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// K_hat = (1/n) sum z z^H (zero-mean estimator).
  [[nodiscard]] numeric::CMatrix covariance() const;

  /// K_hat with the sample mean subtracted (for diagnostics).
  [[nodiscard]] numeric::CMatrix covariance_centered() const;

  /// Sample mean vector.
  [[nodiscard]] numeric::CVector mean() const;

 private:
  std::size_t dim_;
  std::size_t count_ = 0;
  numeric::CMatrix outer_sum_;  // sum of z z^H
  numeric::CVector vector_sum_;
};

/// Relative Frobenius error ||A - B||_F / max(||B||_F, eps) — the metric
/// used throughout EXPERIMENTS.md for covariance agreement.
[[nodiscard]] double relative_frobenius_error(const numeric::CMatrix& a,
                                              const numeric::CMatrix& b);

}  // namespace rfade::stats
