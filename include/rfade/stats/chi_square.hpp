#pragma once

/// \file chi_square.hpp
/// \brief Chi-square goodness-of-fit test with equal-probability binning.

#include <functional>

#include "rfade/numeric/matrix.hpp"

namespace rfade::stats {

/// Outcome of a chi-square goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0.0;
  double p_value = 0.0;
  std::size_t bins = 0;
  std::size_t dof = 0;  ///< bins - 1 (no parameters estimated from data)
};

/// Chi-square GoF of \p samples against a continuous distribution given by
/// its \p quantile function.  Bins are equal-probability, so every bin has
/// expected count n/bins.
/// \pre bins >= 2 and samples.size() >= 5 * bins (rule-of-thumb validity).
[[nodiscard]] ChiSquareResult chi_square_gof(
    const numeric::RVector& samples,
    const std::function<double(double)>& quantile, std::size_t bins);

}  // namespace rfade::stats
