#pragma once

/// \file mutual_information.hpp
/// \brief Closed-form statistics of the instantaneous mutual information
///        of a time-varying Rayleigh channel (Wang & Abdi,
///        arXiv cs/0603027).
///
/// For a flat Rayleigh channel with unit mean power gain, the
/// instantaneous mutual information at linear SNR s is
///
///     I(t) = log2(1 + s X(t)),    X = |h|^2 ~ Exp(1).
///
/// First- and second-order statistics all reduce to one-dimensional
/// integrals against the exponential density:
///
///   * mean (bits):      E[I] = log2(e) e^{1/s} E1(1/s)
///   * variance (bits^2): (log2 e)^2 (E[ln^2(1+sX)] - E[ln(1+sX)]^2)
///   * autocovariance:   expanding ln(1+sx) = sum_n a_n L_n(x) in
///     Laguerre polynomials and using the bivariate-exponential (Kibble)
///     kernel f(x,y) = e^{-x-y} sum_n rho_p^n L_n(x) L_n(y), the
///     covariance of I at two instants whose *field* correlation is
///     rho_h (so the power correlation is rho_p = |rho_h|^2) is
///
///         C(rho_h) = (log2 e)^2 sum_{n>=1} rho_p^n a_n^2,
///
///     with a_n = -(1/n) E[(sX / (1+sX))^n] (from Rodrigues' formula
///     and n-fold integration by parts).  For the Jakes spectrum
///     rho_h(tau) = J0(2 pi fm tau), which is what the metrics health
///     gate plugs in.
///
/// These are the analytic references the streaming
/// metrics::MutualInformationAccumulator is validated against.

#include <cstddef>
#include <vector>

namespace rfade::stats {

/// The exponential integral E1(x) = int_x^inf e^{-t}/t dt for x > 0:
/// alternating series for x <= 1, modified-Lentz continued fraction
/// beyond.  Relative accuracy ~1e-14 over the metric-relevant range.
/// \throws ValueError for x <= 0 or non-finite x.
[[nodiscard]] double expint_e1(double x);

/// E[log2(1 + snr X)], X ~ Exp(1), in bits: log2(e) e^{1/snr} E1(1/snr).
/// \pre snr_linear > 0.
[[nodiscard]] double mi_mean(double snr_linear);

/// Var[log2(1 + snr X)] in bits^2, via adaptive-free composite-Simpson
/// quadrature of the second moment (the integrand is smooth; the [0, 60]
/// truncation error is below e^{-60}).  \pre snr_linear > 0.
[[nodiscard]] double mi_variance(double snr_linear);

/// Laguerre coefficients a_1..a_terms (nats) of ln(1 + snr x) on the
/// Exp(1) weight: a_n = -(1/n) E[(snr X / (1 + snr X))^n].  a_0 (the
/// mean) is omitted; index [k] holds a_{k+1}.  \pre snr_linear > 0.
[[nodiscard]] std::vector<double> mi_laguerre_coefficients(
    double snr_linear, std::size_t terms);

/// Autocovariance (bits^2) of the instantaneous mutual information
/// between two instants whose complex *field* correlation is
/// \p field_correlation (e.g. J0(2 pi fm d) at lag d): the Laguerre
/// series (log2 e)^2 sum_n rho_p^n a_n^2 with rho_p = field_correlation^2,
/// truncated once the geometric tail bound drops below 1e-12.
/// At field_correlation = +/-1 this converges to mi_variance().
/// \pre snr_linear > 0, |field_correlation| <= 1.
[[nodiscard]] double mi_autocovariance(double snr_linear,
                                       double field_correlation);

}  // namespace rfade::stats
