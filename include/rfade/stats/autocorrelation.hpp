#pragma once

/// \file autocorrelation.hpp
/// \brief FFT-based autocorrelation estimation for complex sequences.
///
/// Used to verify the paper's Eq. (20): the normalised autocorrelation of
/// each Doppler-faded branch must follow J0(2 pi fm d).  The estimator
/// computes r[d] = (1/W(d)) sum_l x[l+d] conj(x[l]) by zero-padded FFT,
/// with W(d) = n (biased) or n-d (unbiased).

#include "rfade/numeric/matrix.hpp"

namespace rfade::stats {

/// Estimator normalisation.
enum class AutocorrMode {
  Biased,   ///< divide every lag by n (lower variance, damped tail)
  Unbiased  ///< divide lag d by n-d (unbiased, noisier tail)
};

/// Autocorrelation r[0..max_lag] of a complex sequence.
[[nodiscard]] numeric::CVector autocorrelation(
    const numeric::CVector& x, std::size_t max_lag,
    AutocorrMode mode = AutocorrMode::Biased);

/// r[d]/r[0] as a real sequence (real part of the normalised
/// autocorrelation) — directly comparable to J0(2 pi fm d).
[[nodiscard]] numeric::RVector normalized_autocorrelation(
    const numeric::CVector& x, std::size_t max_lag,
    AutocorrMode mode = AutocorrMode::Biased);

/// O(n * max_lag) reference estimator for validating the FFT version.
[[nodiscard]] numeric::CVector autocorrelation_direct(
    const numeric::CVector& x, std::size_t max_lag,
    AutocorrMode mode = AutocorrMode::Biased);

}  // namespace rfade::stats
