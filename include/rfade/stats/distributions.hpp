#pragma once

/// \file distributions.hpp
/// \brief Analytic distributions the test/bench harnesses compare against.
///
/// The Rayleigh distribution is parameterised the way the paper uses it:
/// the envelope r = |z| of a circularly-symmetric complex Gaussian
/// z ~ CN(0, sigma_g^2) is Rayleigh with scale sigma = sigma_g / sqrt(2),
/// mean 0.8862 sigma_g (Eq. 14) and variance 0.2146 sigma_g^2 (Eq. 15).
///
/// The scenario-layer marginals live here too: Rician (LOS),
/// double-Rayleigh (the closed-form Bessel-K law of cascaded channels
/// after Ibdah & Ding), TWDP (two specular waves plus diffuse, after
/// Maric & Njemcevic, arXiv:2502.03388), and the composite-fading family
/// — lognormal shadowing gain, Suzuki (lognormal-over-Rayleigh, after
/// Suzuki 1977), Nakagami-m and Weibull — each exposing the exact (or
/// quadrature-exact) mean/variance and a CDF usable by the KS
/// validators.

#include <vector>

namespace rfade::stats {

/// Rayleigh distribution with scale parameter sigma (the per-dimension
/// standard deviation of the underlying complex Gaussian).
class RayleighDistribution {
 public:
  /// \pre sigma > 0.
  explicit RayleighDistribution(double sigma);

  /// Construct from the power sigma_g^2 of the complex Gaussian whose
  /// envelope is Rayleigh (paper notation).
  static RayleighDistribution from_gaussian_power(double sigma_g_squared);

  [[nodiscard]] double sigma() const noexcept { return sigma_; }
  [[nodiscard]] double pdf(double r) const;
  [[nodiscard]] double cdf(double r) const;
  /// Inverse CDF; \pre p in [0, 1).
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double mean() const;      ///< sigma sqrt(pi/2)
  [[nodiscard]] double variance() const;  ///< (2 - pi/2) sigma^2

 private:
  double sigma_;
};

/// Rician (Rice) distribution of the envelope r = |z| of a complex
/// Gaussian with a deterministic (LOS) mean: z = m + g, |m| = nu,
/// g ~ CN(0, 2 sigma^2).  The Rician K-factor is the LOS-to-diffuse power
/// ratio K = nu^2 / (2 sigma^2); K = 0 degenerates to Rayleigh(sigma).
/// This is the marginal law of the scenario layer's LOS branches
/// (scenario/scenario_spec.hpp).
class RicianDistribution {
 public:
  /// \pre nu >= 0, sigma > 0.
  RicianDistribution(double nu, double sigma);

  /// Construct from the K-factor and the *diffuse* complex-Gaussian power
  /// sigma_g^2 (the covariance diagonal of the scenario's diffuse part):
  /// sigma = sqrt(sigma_g^2 / 2), nu = sqrt(K sigma_g^2).
  static RicianDistribution from_k_factor(double k_factor,
                                          double diffuse_gaussian_power);

  [[nodiscard]] double nu() const noexcept { return nu_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }
  /// K = nu^2 / (2 sigma^2).
  [[nodiscard]] double k_factor() const;

  [[nodiscard]] double pdf(double r) const;
  /// CDF 1 - Q_1(nu/sigma, r/sigma), evaluated by adaptive integration of
  /// the pdf (exponentially-scaled I_0 keeps it stable for any K).
  [[nodiscard]] double cdf(double r) const;
  /// Exact mean sigma sqrt(pi/2) L_{1/2}(-K) via scaled Bessel I_0/I_1.
  [[nodiscard]] double mean() const;
  /// E[r^2] = 2 sigma^2 + nu^2.
  [[nodiscard]] double second_moment() const;
  [[nodiscard]] double variance() const;  ///< second_moment - mean^2

 private:
  double nu_;
  double sigma_;
};

/// Double-Rayleigh (cascaded Rayleigh) distribution of the envelope
/// r = r1 r2 of the product of two independent Rayleigh factors with
/// per-dimension scales sigma1, sigma2 — the marginal of
/// scenario::CascadedRayleighGenerator and of each branch of the
/// real-time cascade.  With c = sigma1 sigma2 the law is closed-form in
/// the modified Bessel functions of the second kind (special/bessel_k.hpp):
///
///   pdf(r) = (r / c^2) K_0(r / c),   cdf(r) = 1 - (r / c) K_1(r / c),
///   E[r] = (pi/2) c,  E[r^2] = 4 c^2   (amount of fading 3).
class DoubleRayleighDistribution {
 public:
  /// \pre sigma1 > 0, sigma2 > 0 (per-dimension scales of the factors).
  DoubleRayleighDistribution(double sigma1, double sigma2);

  /// Construct from the complex powers sigma_g^2 = 2 sigma^2 of the two
  /// Gaussian stages whose envelopes are multiplied (the effective
  /// covariance diagonals of a cascade's stages).
  static DoubleRayleighDistribution from_gaussian_powers(double first_power,
                                                         double second_power);

  [[nodiscard]] double sigma1() const noexcept { return sigma1_; }
  [[nodiscard]] double sigma2() const noexcept { return sigma2_; }
  /// c = sigma1 sigma2, the scale of the product law.
  [[nodiscard]] double scale() const noexcept { return sigma1_ * sigma2_; }

  [[nodiscard]] double pdf(double r) const;
  [[nodiscard]] double cdf(double r) const;
  [[nodiscard]] double mean() const;           ///< (pi/2) sigma1 sigma2
  [[nodiscard]] double second_moment() const;  ///< 4 sigma1^2 sigma2^2
  [[nodiscard]] double variance() const;       ///< second_moment - mean^2

 private:
  double sigma1_;
  double sigma2_;
};

/// TWDP (two-wave with diffuse power) distribution of the envelope
/// r = |v1 e^{i phi1} + v2 e^{i phi2} + g|, g ~ CN(0, 2 sigma^2), with
/// phi1, phi2 independent uniform — the marginal of the TWDP scenario
/// (Maric & Njemcevic).  Conditional on the relative phase
/// alpha = phi1 - phi2 the law is Rician with
/// nu(alpha) = sqrt(v1^2 + v2^2 + 2 v1 v2 cos alpha); the TWDP law is the
/// phase average over alpha, evaluated by spectrally-convergent
/// trapezoidal quadrature of the Rician mixture (exact single-Rician
/// delegation when v2 = 0, so Delta = 0 reproduces Rician bit-for-bit
/// and K = 0 Rayleigh).
class TwdpDistribution {
 public:
  /// \pre v1 >= v2 >= 0, sigma > 0.
  TwdpDistribution(double v1, double v2, double sigma);

  /// Construct from the TWDP shape parameters: K = (v1^2 + v2^2) /
  /// (2 sigma^2) (total specular-to-diffuse power ratio, >= 0) and
  /// Delta = 2 v1 v2 / (v1^2 + v2^2) in [0, 1], with the diffuse complex
  /// power sigma_g^2 = 2 sigma^2 taken from the scenario's effective
  /// covariance diagonal.
  static TwdpDistribution from_parameters(double k_factor, double delta,
                                          double diffuse_gaussian_power);

  [[nodiscard]] double v1() const noexcept { return v1_; }
  [[nodiscard]] double v2() const noexcept { return v2_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }
  /// K = (v1^2 + v2^2) / (2 sigma^2).
  [[nodiscard]] double k_factor() const;
  /// Delta = 2 v1 v2 / (v1^2 + v2^2); 0 when K = 0.
  [[nodiscard]] double delta() const;

  [[nodiscard]] double pdf(double r) const;
  [[nodiscard]] double cdf(double r) const;
  /// Phase average of the exact conditional Rician means.
  [[nodiscard]] double mean() const;
  /// E[r^2] = 2 sigma^2 + v1^2 + v2^2 (exact).
  [[nodiscard]] double second_moment() const;
  [[nodiscard]] double variance() const;  ///< second_moment - mean^2

 private:
  double v1_;
  double v2_;
  double sigma_;
  /// Conditional Rician laws at the quadrature nodes alpha_i in [0, pi]
  /// with matching weights (normalised to sum 1).  A single entry with
  /// weight 1 when v2 = 0 — the exact Rician/Rayleigh degeneracy.
  std::vector<RicianDistribution> conditional_;
  std::vector<double> weights_;
  /// Precomputed cumulative integral of the mixture pdf on a uniform
  /// grid over the support [lo_, hi_] (composite Simpson per cell, built
  /// once at construction).  cdf(r) adds one local Simpson slice on top
  /// of the nearest grid value, so KS sweeps over thousands of sample
  /// points stay O(1) per query instead of re-integrating from lo_.
  double grid_lo_ = 0.0;
  double grid_hi_ = 0.0;
  double grid_step_ = 0.0;
  std::vector<double> cumulative_;
};

/// Lognormal distribution of a positive amplitude gain A = 10^{S/20}
/// with S ~ N(mu_dB, sigma_dB^2) — the large-scale shadowing law
/// (Suzuki 1977; the Gudmundson 1991 model correlates S over
/// time/space).  Internally the natural-log parameterisation
/// ln A ~ N(mu_ln, sigma_ln^2) with mu_ln = mu_dB ln(10)/20 and
/// sigma_ln = sigma_dB ln(10)/20; moments and the CDF/quantile are
/// closed-form in erf / the normal quantile.
class LognormalDistribution {
 public:
  /// ln(10)/20: dB-of-amplitude to natural log.  The single definition
  /// of the conversion every dB-parameterised consumer (from_db, the
  /// shadowing gain synthesis) must share, so "marginal of the
  /// generated gains" stays bit-exact.
  static constexpr double kDbToNaturalLog = 0.11512925464970229;

  /// Natural-log parameterisation.  \pre sigma_ln > 0, mu_ln finite.
  LognormalDistribution(double mu_ln, double sigma_ln);

  /// dB parameterisation of an amplitude gain (see class comment).
  [[nodiscard]] static LognormalDistribution from_db(double mean_db,
                                                     double sigma_db);

  [[nodiscard]] double mu_ln() const noexcept { return mu_; }
  [[nodiscard]] double sigma_ln() const noexcept { return sigma_; }

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  /// Inverse CDF; \pre p in [0, 1).
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double mean() const;           ///< exp(mu + sigma^2/2)
  [[nodiscard]] double second_moment() const;  ///< exp(2 mu + 2 sigma^2)
  [[nodiscard]] double variance() const;

 private:
  double mu_;
  double sigma_;
};

/// Nakagami-m distribution of an envelope with shape m >= 1/2 and spread
/// Omega = E[r^2] > 0:
///
///   pdf(r) = 2 m^m r^{2m-1} e^{-m r^2 / Omega} / (Gamma(m) Omega^m),
///   cdf(r) = P(m, m r^2 / Omega)   (regularized incomplete gamma).
///
/// m = 1 is exactly Rayleigh with sigma_g^2 = Omega; m = 1/2 the
/// one-sided Gaussian; m > 1 shallower-than-Rayleigh fading.  This is
/// the target marginal of the copula transform
/// (scenario/composite/copula.hpp).
class NakagamiDistribution {
 public:
  /// \pre m >= 0.5, omega > 0.
  NakagamiDistribution(double m, double omega);

  [[nodiscard]] double m() const noexcept { return m_; }
  [[nodiscard]] double omega() const noexcept { return omega_; }

  [[nodiscard]] double pdf(double r) const;
  [[nodiscard]] double cdf(double r) const;
  /// Inverse CDF sqrt(Omega/m * invP(m, p)); \pre p in [0, 1).
  [[nodiscard]] double quantile(double p) const;
  /// Gamma(m + 1/2) / Gamma(m) sqrt(Omega / m).
  [[nodiscard]] double mean() const;
  [[nodiscard]] double second_moment() const;  ///< Omega
  [[nodiscard]] double variance() const;       ///< Omega - mean^2

 private:
  double m_;
  double omega_;
};

/// Weibull distribution with shape k > 0 and scale lambda > 0:
/// cdf(r) = 1 - e^{-(r/lambda)^k}.  k = 2 is exactly Rayleigh with
/// sigma = lambda / sqrt(2); the quantile lambda (-ln(1-p))^{1/k} is
/// closed-form, which makes Weibull the cheapest copula target marginal.
class WeibullDistribution {
 public:
  /// \pre shape > 0, scale > 0.
  WeibullDistribution(double shape, double scale);

  [[nodiscard]] double shape() const noexcept { return shape_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }

  [[nodiscard]] double pdf(double r) const;
  [[nodiscard]] double cdf(double r) const;
  /// Inverse CDF; \pre p in [0, 1).
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double mean() const;           ///< lambda Gamma(1 + 1/k)
  [[nodiscard]] double second_moment() const;  ///< lambda^2 Gamma(1 + 2/k)
  [[nodiscard]] double variance() const;

 private:
  double shape_;
  double scale_;
};

/// Suzuki distribution of a composite envelope r = A R: a Rayleigh
/// envelope R (per-dimension scale sigma) whose local mean is modulated
/// by an independent lognormal amplitude gain A (Suzuki 1977).  Moments
/// factor exactly through the independent product; the CDF is the
/// lognormal mixture of Rayleigh CDFs
///
///   cdf(r) = E_A[ 1 - e^{-r^2 / (2 sigma^2 A^2)} ],
///
/// evaluated by spectrally-convergent Gauss-type quadrature over the
/// Gaussian dB variable — the exact marginal of SuzukiGenerator
/// (scenario/composite/suzuki.hpp) branches.
class SuzukiDistribution {
 public:
  /// \pre sigma > 0; shadowing's sigma_ln > 0.
  SuzukiDistribution(double sigma, LognormalDistribution shadowing);

  /// Construct from the diffuse complex-Gaussian power sigma_g^2 (the
  /// effective covariance diagonal) and the dB shadowing parameters.
  [[nodiscard]] static SuzukiDistribution from_gaussian_power(
      double sigma_g_squared, double mean_db, double sigma_db);

  [[nodiscard]] double sigma() const noexcept { return rayleigh_sigma_; }
  [[nodiscard]] const LognormalDistribution& shadowing() const noexcept {
    return shadowing_;
  }

  [[nodiscard]] double pdf(double r) const;
  [[nodiscard]] double cdf(double r) const;
  [[nodiscard]] double mean() const;           ///< E[A] sigma sqrt(pi/2)
  [[nodiscard]] double second_moment() const;  ///< E[A^2] 2 sigma^2
  [[nodiscard]] double variance() const;

 private:
  double rayleigh_sigma_;
  LognormalDistribution shadowing_;
  /// Quadrature nodes (values of A) and weights (normalised to sum 1)
  /// for the lognormal mixture, precomputed at construction.
  std::vector<double> mixture_gains_;
  std::vector<double> mixture_weights_;
};

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double x);

/// Standard normal quantile Phi^{-1}(p) (Acklam's rational approximation
/// refined by one Halley step on erfc); \pre p in (0, 1).
[[nodiscard]] double normal_quantile(double p);

/// Normal CDF with mean/stddev.
[[nodiscard]] double normal_cdf(double x, double mean, double stddev);

/// Exponential CDF with the given rate lambda (envelope power |z|^2 of a
/// CN(0, sigma_g^2) variable is exponential with rate 1/sigma_g^2).
[[nodiscard]] double exponential_cdf(double x, double rate);

}  // namespace rfade::stats
