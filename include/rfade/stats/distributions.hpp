#pragma once

/// \file distributions.hpp
/// \brief Analytic distributions the test/bench harnesses compare against.
///
/// The Rayleigh distribution is parameterised the way the paper uses it:
/// the envelope r = |z| of a circularly-symmetric complex Gaussian
/// z ~ CN(0, sigma_g^2) is Rayleigh with scale sigma = sigma_g / sqrt(2),
/// mean 0.8862 sigma_g (Eq. 14) and variance 0.2146 sigma_g^2 (Eq. 15).

namespace rfade::stats {

/// Rayleigh distribution with scale parameter sigma (the per-dimension
/// standard deviation of the underlying complex Gaussian).
class RayleighDistribution {
 public:
  /// \pre sigma > 0.
  explicit RayleighDistribution(double sigma);

  /// Construct from the power sigma_g^2 of the complex Gaussian whose
  /// envelope is Rayleigh (paper notation).
  static RayleighDistribution from_gaussian_power(double sigma_g_squared);

  [[nodiscard]] double sigma() const noexcept { return sigma_; }
  [[nodiscard]] double pdf(double r) const;
  [[nodiscard]] double cdf(double r) const;
  /// Inverse CDF; \pre p in [0, 1).
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double mean() const;      ///< sigma sqrt(pi/2)
  [[nodiscard]] double variance() const;  ///< (2 - pi/2) sigma^2

 private:
  double sigma_;
};

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double x);

/// Normal CDF with mean/stddev.
[[nodiscard]] double normal_cdf(double x, double mean, double stddev);

/// Exponential CDF with the given rate lambda (envelope power |z|^2 of a
/// CN(0, sigma_g^2) variable is exponential with rate 1/sigma_g^2).
[[nodiscard]] double exponential_cdf(double x, double rate);

}  // namespace rfade::stats
