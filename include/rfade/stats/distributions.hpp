#pragma once

/// \file distributions.hpp
/// \brief Analytic distributions the test/bench harnesses compare against.
///
/// The Rayleigh distribution is parameterised the way the paper uses it:
/// the envelope r = |z| of a circularly-symmetric complex Gaussian
/// z ~ CN(0, sigma_g^2) is Rayleigh with scale sigma = sigma_g / sqrt(2),
/// mean 0.8862 sigma_g (Eq. 14) and variance 0.2146 sigma_g^2 (Eq. 15).

namespace rfade::stats {

/// Rayleigh distribution with scale parameter sigma (the per-dimension
/// standard deviation of the underlying complex Gaussian).
class RayleighDistribution {
 public:
  /// \pre sigma > 0.
  explicit RayleighDistribution(double sigma);

  /// Construct from the power sigma_g^2 of the complex Gaussian whose
  /// envelope is Rayleigh (paper notation).
  static RayleighDistribution from_gaussian_power(double sigma_g_squared);

  [[nodiscard]] double sigma() const noexcept { return sigma_; }
  [[nodiscard]] double pdf(double r) const;
  [[nodiscard]] double cdf(double r) const;
  /// Inverse CDF; \pre p in [0, 1).
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double mean() const;      ///< sigma sqrt(pi/2)
  [[nodiscard]] double variance() const;  ///< (2 - pi/2) sigma^2

 private:
  double sigma_;
};

/// Rician (Rice) distribution of the envelope r = |z| of a complex
/// Gaussian with a deterministic (LOS) mean: z = m + g, |m| = nu,
/// g ~ CN(0, 2 sigma^2).  The Rician K-factor is the LOS-to-diffuse power
/// ratio K = nu^2 / (2 sigma^2); K = 0 degenerates to Rayleigh(sigma).
/// This is the marginal law of the scenario layer's LOS branches
/// (scenario/scenario_spec.hpp).
class RicianDistribution {
 public:
  /// \pre nu >= 0, sigma > 0.
  RicianDistribution(double nu, double sigma);

  /// Construct from the K-factor and the *diffuse* complex-Gaussian power
  /// sigma_g^2 (the covariance diagonal of the scenario's diffuse part):
  /// sigma = sqrt(sigma_g^2 / 2), nu = sqrt(K sigma_g^2).
  static RicianDistribution from_k_factor(double k_factor,
                                          double diffuse_gaussian_power);

  [[nodiscard]] double nu() const noexcept { return nu_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }
  /// K = nu^2 / (2 sigma^2).
  [[nodiscard]] double k_factor() const;

  [[nodiscard]] double pdf(double r) const;
  /// CDF 1 - Q_1(nu/sigma, r/sigma), evaluated by adaptive integration of
  /// the pdf (exponentially-scaled I_0 keeps it stable for any K).
  [[nodiscard]] double cdf(double r) const;
  /// Exact mean sigma sqrt(pi/2) L_{1/2}(-K) via scaled Bessel I_0/I_1.
  [[nodiscard]] double mean() const;
  /// E[r^2] = 2 sigma^2 + nu^2.
  [[nodiscard]] double second_moment() const;
  [[nodiscard]] double variance() const;  ///< second_moment - mean^2

 private:
  double nu_;
  double sigma_;
};

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double x);

/// Normal CDF with mean/stddev.
[[nodiscard]] double normal_cdf(double x, double mean, double stddev);

/// Exponential CDF with the given rate lambda (envelope power |z|^2 of a
/// CN(0, sigma_g^2) variable is exponential with rate 1/sigma_g^2).
[[nodiscard]] double exponential_cdf(double x, double rate);

}  // namespace rfade::stats
