#pragma once

/// \file plan_cache.hpp
/// \brief Thread-safe LRU cache of compiled channels, keyed by
///        ChannelSpec content hash.
///
/// Compilation is the expensive phase (PSD forcing + eigendecomposition
/// is O(N^3); shadowing FIR design and copula Laguerre tables add more),
/// while a CompiledChannel is immutable and freely shared.  The cache
/// therefore hands out shared_ptr<const CompiledChannel>: a hit is one
/// hash lookup + refcount bump, an eviction never invalidates sessions
/// still holding the old plan, and concurrent tenants of the same spec
/// all ride one compile.
///
/// Collision policy: the 64-bit content hash is the index key, but every
/// hit is confirmed with deep ChannelSpec equality.  A colliding spec
/// (same hash, different content) is compiled fresh and returned WITHOUT
/// caching — correctness is never sacrificed to the cache, and the
/// resident entry keeps serving its own spec.
///
/// Observability: the hit/miss/eviction/collision counters live on the
/// telemetry registry as rfade_plan_cache_{hits,misses,evictions,
/// collisions}_total, labelled cache="<instance>", so operators scrape
/// them through the Prometheus/JSON exporters.  stats() remains the
/// bit-compatible in-process view over those same counters.  Because
/// stats() is API (tests and benches assert exact values), these
/// counters always count — they are per-operation on a cold path, not
/// per-sample — regardless of telemetry::enabled(); compiling telemetry
/// out (RFADE_TELEMETRY=0) only skips the registry registration.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "rfade/service/channel_spec.hpp"
#include "rfade/telemetry/registry.hpp"

namespace rfade::service {

/// Counters snapshot (monotonic since construction; size/capacity are
/// instantaneous).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< includes collisions
  std::uint64_t evictions = 0;
  std::uint64_t collisions = 0;  ///< equal hash, unequal spec
  std::size_t size = 0;
  std::size_t capacity = 0;

  [[nodiscard]] double hit_ratio() const noexcept {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Thread-safe LRU cache of CompiledChannel bundles (see file comment).
class PlanCache {
 public:
  /// \pre capacity >= 1.
  explicit PlanCache(std::size_t capacity = 64);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The compiled channel for \p spec: cached when an equal spec is
  /// resident (LRU-touched), compiled otherwise.  Compilation runs
  /// outside the cache lock, so a slow compile never blocks hits on
  /// other specs; when two threads race to compile the same spec, the
  /// first insert wins and both get equal-content bundles.
  /// \throws whatever ChannelSpec::compile() throws, on misses.
  [[nodiscard]] std::shared_ptr<const CompiledChannel> get_or_compile(
      const ChannelSpec& spec);

  /// The resident entry for \p spec (nullptr on miss); never compiles,
  /// counts neither hit nor miss.
  [[nodiscard]] std::shared_ptr<const CompiledChannel> peek(
      const ChannelSpec& spec) const;

  /// Drop all resident entries (handed-out bundles stay valid).
  void clear();

  [[nodiscard]] PlanCacheStats stats() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::shared_ptr<const CompiledChannel> channel;
    std::list<std::uint64_t>::iterator lru_position;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<std::uint64_t> lru_;  ///< front = most recent
  std::unordered_map<std::uint64_t, Entry> entries_;
  /// Registry-hosted counters (see file comment); private instruments
  /// when telemetry is compiled out.
  std::shared_ptr<telemetry::Counter> hits_;
  std::shared_ptr<telemetry::Counter> misses_;
  std::shared_ptr<telemetry::Counter> evictions_;
  std::shared_ptr<telemetry::Counter> collisions_;
};

}  // namespace rfade::service
