#pragma once

/// \file accumulators.hpp
/// \brief Shard-mergeable validator/metrics accumulators.
///
/// Stream blocks are pure functions of (seed, block index), so a sharded
/// run partitions block indices across workers/nodes and each shard folds
/// its blocks into local accumulators.  Built on support::ExactSum, the
/// per-sample contributions are accumulated *exactly*, which makes merge()
/// exactly associative and commutative: merging any sharding of the same
/// blocks yields bit-identical statistics to the single-run answer — the
/// property the ChannelService fan-out tests pin.
///
/// These are validation/metrics-path accumulators (O(count·N) resp.
/// O(count·N²) ExactSum folds), not sample-hot-path code.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rfade/numeric/matrix.hpp"
#include "rfade/support/exact_sum.hpp"

namespace rfade::service {

/// Per-branch envelope moments of one branch, as read out by
/// EnvelopeMomentAccumulator::finalize().
struct EnvelopeMoments {
  double mean = 0.0;           ///< E[r]
  double second_moment = 0.0;  ///< E[r^2] (mean envelope power)
  double fourth_moment = 0.0;  ///< E[r^4]
  double variance = 0.0;       ///< E[r^2] - E[r]^2
  /// Amount of fading AF = Var[r^2] / E[r^2]^2 — the standard severity
  /// measure (1 for Rayleigh, 1/m for Nakagami-m).
  double amount_of_fading = 0.0;
};

/// Accumulates per-branch envelope moments (r, r^2, r^4) exactly.
///
/// Feed complex blocks (rows = instants, cols = branches) or envelope
/// blocks; shard instances merge() to the single-run state bit-exactly.
/// Not thread-safe: one instance per shard, merge at the join.
class EnvelopeMomentAccumulator {
 public:
  explicit EnvelopeMomentAccumulator(std::size_t dimension);

  /// Folds |z| for every element of a complex block (count x N).
  void accumulate(const numeric::CMatrix& block);

  /// Float32 block overload.  Samples are widened to double before the
  /// ExactSum fold (widening is exact), so shard merges over float
  /// blocks keep the bit-exact associativity contract.
  void accumulate(const numeric::CMatrixF& block);

  /// Folds an envelope block (count x N, r >= 0) directly.
  void accumulate_envelopes(const numeric::RMatrix& envelopes);

  /// Folds \p other in; exactly order-invariant.
  /// \throws DimensionError when dimensions differ.
  void merge(const EnvelopeMomentAccumulator& other);

  [[nodiscard]] std::size_t dimension() const noexcept {
    return dimension_;
  }

  /// Samples folded in per branch.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Moments of branch \p branch; deterministic pure function of the
  /// accumulated multiset.  \throws ValueError when no samples were fed.
  [[nodiscard]] EnvelopeMoments finalize(std::size_t branch) const;

 private:
  std::size_t dimension_;
  std::uint64_t count_ = 0;
  std::vector<support::ExactSum> sum_r_;
  std::vector<support::ExactSum> sum_r2_;
  std::vector<support::ExactSum> sum_r4_;
};

/// Accumulates the N x N sample covariance E[z_k conj(z_j)] of complex
/// blocks exactly (per-sample products folded into ExactSum planes).
///
/// merge() of any sharding equals the single-run state bit-exactly.
/// Not thread-safe: one instance per shard, merge at the join.
class ComplexCovarianceAccumulator {
 public:
  explicit ComplexCovarianceAccumulator(std::size_t dimension);

  /// Folds every row of a complex block (count x N).
  void accumulate(const numeric::CMatrix& block);

  /// Float32 block overload; widened to double (exactly) before the
  /// fold, preserving bit-exact shard-merge associativity.
  void accumulate(const numeric::CMatrixF& block);

  /// Folds \p other in; exactly order-invariant.
  /// \throws DimensionError when dimensions differ.
  void merge(const ComplexCovarianceAccumulator& other);

  [[nodiscard]] std::size_t dimension() const noexcept {
    return dimension_;
  }

  /// Rows (instants) folded in.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Sample covariance (sums / count); deterministic pure function of the
  /// accumulated multiset.  \throws ValueError when no samples were fed.
  [[nodiscard]] numeric::CMatrix finalize() const;

 private:
  std::size_t dimension_;
  std::uint64_t count_ = 0;
  std::vector<support::ExactSum> real_;  ///< row-major N x N
  std::vector<support::ExactSum> imag_;  ///< row-major N x N
};

}  // namespace rfade::service
