#pragma once

/// \file channel_spec.hpp
/// \brief The canonical, hashable channel description every serving-layer
///        request is keyed on, and its compiled immutable plan bundle.
///
/// Before this layer, each scenario family had its own hand-assembled
/// construction path (ColoringPlan + FadingStreamOptions + ScenarioSpec /
/// TwdpSpec / ShadowingSpec / CopulaMarginalTransform + Gain/MeanSource).
/// ChannelSpec collapses all of them into one declarative value type with
/// a fluent Builder:
///
///   auto spec = ChannelSpec::Builder()
///                   .rician(covariance, /*k=*/4.0)
///                   .backend(doppler::StreamBackend::OverlapSaveFir)
///                   .doppler(0.05)
///                   .build();
///
/// build() validates, *canonicalizes* (degenerate parameterisations — an
/// all-K-zero Rician, an all-zero mean — collapse to the same canonical
/// spec, and mode-irrelevant knobs reset to defaults), and stamps a
/// stable 64-bit content hash: equal specs hash equal no matter which
/// builder-call ordering or degenerate parameterisation produced them.
/// That hash is the PlanCache key (plan_cache.hpp), which is what turns
/// thousands of tenants reusing one scenario into a single plan build.
///
/// compile() runs the expensive build phase once — PSD forcing +
/// eigendecomposition coloring (the paper's steps 1-5), shadowing FIR
/// design, copula Laguerre tables, instant-mode engines — and returns the
/// immutable CompiledChannel bundle.  Everything inside is const and
/// internally synchronisation-free, so one compiled channel is shared by
/// any number of concurrent tenant Sessions (channel_service.hpp); each
/// session only adds a seed and a cursor.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "rfade/core/fading_stream.hpp"
#include "rfade/core/plan.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/scenario/cascaded.hpp"
#include "rfade/scenario/composite/copula.hpp"
#include "rfade/scenario/composite/shadowing.hpp"
#include "rfade/scenario/composite/suzuki.hpp"
#include "rfade/scenario/scenario_spec.hpp"
#include "rfade/scenario/timevarying/cascaded_realtime.hpp"
#include "rfade/scenario/timevarying/twdp.hpp"

namespace rfade::service {

class CompiledChannel;

/// The scenario family a spec describes.
enum class FadingFamily {
  Rayleigh,          ///< the paper's correlated Rayleigh core
  Rician,            ///< LOS mean per branch (scenario::ScenarioSpec)
  Twdp,              ///< two specular waves (scenario::TwdpSpec)
  CascadedRayleigh,  ///< product of two independent stages
  Suzuki,            ///< lognormal shadowing over the Rayleigh core
  CopulaMarginals    ///< Nakagami/Weibull marginals via Gaussian copula
};

/// Stable lowercase identifier of \p family (logs, tables, wire formats).
[[nodiscard]] const char* fading_family_name(FadingFamily family) noexcept;

/// How session blocks are produced.
enum class EmissionMode {
  /// Temporally Doppler-correlated blocks of one continuous realisation
  /// (core::FadingStream / the real-time cascade).  The default.
  Stream,
  /// Temporally-white draws from the batched instant pipelines
  /// (SamplePipeline and the instant-mode scenario generators).
  Instant
};

/// Hashable plain-value stand-in for composite::CopulaMarginal (which
/// holds type-erased callables and cannot be content-hashed).
struct MarginalSpec {
  enum class Family { Rayleigh, Nakagami, Weibull };
  Family family = Family::Rayleigh;
  /// Rayleigh: Gaussian power sigma_g^2.  Nakagami: shape m.
  /// Weibull: shape k.
  double param1 = 1.0;
  /// Rayleigh: unused.  Nakagami: spread omega.  Weibull: scale.
  double param2 = 1.0;

  [[nodiscard]] static MarginalSpec rayleigh(double sigma_g_squared);
  [[nodiscard]] static MarginalSpec nakagami(double m, double omega);
  [[nodiscard]] static MarginalSpec weibull(double shape, double scale);

  /// The runtime marginal (quantile/CDF closures) this spec describes.
  [[nodiscard]] scenario::composite::CopulaMarginal realize() const;

  friend bool operator==(const MarginalSpec&, const MarginalSpec&) = default;
};

/// One declarative, immutable, hashable description of a generation
/// scenario (see file comment).  Construct through ChannelSpec::Builder;
/// compile with compile() or through a PlanCache.
class ChannelSpec {
 public:
  class Builder;

  [[nodiscard]] FadingFamily family() const noexcept { return family_; }
  [[nodiscard]] EmissionMode mode() const noexcept { return mode_; }
  /// Number of envelopes N.
  [[nodiscard]] std::size_t dimension() const noexcept;

  [[nodiscard]] const numeric::CMatrix& covariance() const noexcept {
    return covariance_;
  }
  [[nodiscard]] const numeric::CMatrix& second_covariance() const noexcept {
    return second_covariance_;
  }
  [[nodiscard]] const std::vector<scenario::RicianBranch>& rician_branches()
      const noexcept {
    return rician_;
  }
  [[nodiscard]] const std::vector<scenario::TwdpBranch>& twdp_branches()
      const noexcept {
    return twdp_;
  }
  [[nodiscard]] const numeric::CVector& constant_mean() const noexcept {
    return constant_mean_;
  }
  [[nodiscard]] const scenario::composite::ShadowingSpec& shadowing()
      const noexcept {
    return shadowing_;
  }
  [[nodiscard]] const numeric::RMatrix& envelope_correlation_target()
      const noexcept {
    return envelope_target_;
  }
  [[nodiscard]] const std::vector<MarginalSpec>& marginal_specs()
      const noexcept {
    return marginals_;
  }

  [[nodiscard]] doppler::StreamBackend backend() const noexcept {
    return backend_;
  }
  [[nodiscard]] std::size_t idft_size() const noexcept { return idft_size_; }
  [[nodiscard]] double normalized_doppler() const noexcept { return doppler_; }
  [[nodiscard]] double second_doppler() const noexcept {
    return second_doppler_;
  }
  [[nodiscard]] double input_variance_per_dim() const noexcept {
    return input_variance_;
  }
  [[nodiscard]] std::size_t overlap() const noexcept { return overlap_; }
  [[nodiscard]] double los_doppler() const noexcept { return los_doppler_; }
  [[nodiscard]] double first_wave_doppler() const noexcept { return wave1_; }
  [[nodiscard]] double second_wave_doppler() const noexcept { return wave2_; }
  [[nodiscard]] std::size_t block_size() const noexcept { return block_size_; }
  [[nodiscard]] double sample_variance() const noexcept {
    return sample_variance_;
  }
  [[nodiscard]] bool parallel() const noexcept { return parallel_; }
  [[nodiscard]] const core::ColoringOptions& coloring() const noexcept {
    return coloring_;
  }
  [[nodiscard]] std::size_t laguerre_terms() const noexcept {
    return laguerre_terms_;
  }
  [[nodiscard]] std::size_t quadrature_panels() const noexcept {
    return quadrature_panels_;
  }
  /// Emission-pipeline precision (stream mode; see core::Precision).
  /// Canonicalized to Float64 where no float pipeline exists (instant
  /// emission, the cascaded real-time family), so a Float32 request on
  /// those specs hashes — and caches — identically to the Float64 one.
  [[nodiscard]] core::Precision precision() const noexcept {
    return precision_;
  }

  /// The stable 64-bit content hash stamped by Builder::build() — a pure
  /// function of the canonical field values (never of builder-call
  /// order), so equal specs always hash equal.  The PlanCache key.
  [[nodiscard]] std::uint64_t content_hash() const noexcept { return hash_; }

  /// Run the expensive build phase (steps 1-5 + family-specific design)
  /// and bundle the results immutably.  Callers serving many tenants
  /// should go through PlanCache instead of compiling directly.
  /// \throws rfade::Error subclasses with machine-readable codes —
  ///         InvalidSpecError for spec-level rejections, the layer-native
  ///         ContractViolation / NotPositiveDefiniteError / ... otherwise.
  [[nodiscard]] std::shared_ptr<const CompiledChannel> compile() const;

  /// Deep structural equality of canonical field values (the PlanCache
  /// uses it to reject hash collisions).
  friend bool operator==(const ChannelSpec& a, const ChannelSpec& b);

 private:
  friend class Builder;
  ChannelSpec() = default;

  [[nodiscard]] std::uint64_t compute_hash() const;

  FadingFamily family_ = FadingFamily::Rayleigh;
  EmissionMode mode_ = EmissionMode::Stream;
  numeric::CMatrix covariance_;
  numeric::CMatrix second_covariance_;
  std::vector<scenario::RicianBranch> rician_;
  std::vector<scenario::TwdpBranch> twdp_;
  numeric::CVector constant_mean_;
  scenario::composite::ShadowingSpec shadowing_;
  numeric::RMatrix envelope_target_;
  std::vector<MarginalSpec> marginals_;
  doppler::StreamBackend backend_ = doppler::StreamBackend::IndependentBlock;
  std::size_t idft_size_ = 4096;
  double doppler_ = 0.05;
  double second_doppler_ = 0.05;
  double input_variance_ = 0.5;
  std::size_t overlap_ = 0;
  double los_doppler_ = 0.0;
  double wave1_ = 0.0;
  double wave2_ = 0.0;
  std::size_t block_size_ = 4096;
  double sample_variance_ = 1.0;
  bool parallel_ = true;
  core::ColoringOptions coloring_;
  std::size_t laguerre_terms_ = 96;
  std::size_t quadrature_panels_ = 4096;
  core::Precision precision_ = core::Precision::Float64;
  std::uint64_t hash_ = 0;
};

/// Fluent assembler of a ChannelSpec.  Family methods pick the scenario;
/// the remaining setters tune emission; build() validates, canonicalizes
/// and stamps the content hash.  Setter order never matters.
class ChannelSpec::Builder {
 public:
  Builder() = default;

  // --- scenario family -----------------------------------------------------

  /// The paper's correlated Rayleigh core on \p covariance.
  Builder& rayleigh(numeric::CMatrix covariance);

  /// Uniform-K Rician: every branch shares \p k_factor / \p los_phase.
  Builder& rician(numeric::CMatrix covariance, double k_factor,
                  double los_phase = 0.0);

  /// Per-branch Rician.
  Builder& rician(numeric::CMatrix covariance,
                  std::vector<scenario::RicianBranch> branches);

  /// Uniform TWDP: every branch shares (K, Delta), zero phase offsets.
  Builder& twdp(numeric::CMatrix covariance, double k_factor, double delta);

  /// Per-branch TWDP.
  Builder& twdp(numeric::CMatrix covariance,
                std::vector<scenario::TwdpBranch> branches);

  /// Cascaded (double) Rayleigh: the product of two independent stages.
  Builder& cascaded(numeric::CMatrix first_covariance,
                    numeric::CMatrix second_covariance);

  /// Suzuki composite: \p shadowing over the Rayleigh core.
  Builder& suzuki(numeric::CMatrix covariance,
                  scenario::composite::ShadowingSpec shadowing);

  /// Copula marginal set: \p marginals with envelope-domain correlation
  /// \p envelope_correlation (instant emission only; envelope blocks).
  Builder& copula(numeric::RMatrix envelope_correlation,
                  std::vector<MarginalSpec> marginals);

  // --- scenario extras -----------------------------------------------------

  /// Raw constant LOS mean added after coloring (Rayleigh family only —
  /// the Rician family derives its mean from the K-factors).
  Builder& constant_mean(numeric::CVector mean);

  // --- emission ------------------------------------------------------------

  Builder& streaming();  ///< EmissionMode::Stream (the default)
  Builder& instant();    ///< EmissionMode::Instant

  Builder& backend(doppler::StreamBackend backend);
  Builder& idft_size(std::size_t idft_size);
  /// Normalised maximum Doppler of the (first) stage, in (0, 0.5).
  Builder& doppler(double normalized_doppler);
  /// Cascaded stage-2 Doppler.
  Builder& second_doppler(double normalized_doppler);
  Builder& input_variance_per_dim(double variance);
  /// WOLA crossfade length (0 picks idft_size / 8).
  Builder& overlap(std::size_t overlap);
  /// Rician stream mode: LOS Doppler shift of a moving terminal.
  Builder& los_doppler(double normalized_frequency);
  /// TWDP stream mode: the two wave Doppler trajectories.
  Builder& wave_dopplers(double first, double second);
  /// Instant mode: rows per block (Philox substream granularity).
  Builder& block_size(std::size_t block_size);
  /// Instant mode: sigma_w^2 of the step-6 white draws.
  Builder& sample_variance(double variance);
  Builder& parallel(bool parallel);
  Builder& coloring(core::ColoringOptions options);
  Builder& laguerre_terms(std::size_t terms);
  Builder& quadrature_panels(std::size_t panels);
  /// Emission-pipeline precision (Float64 default).  Float32 halves the
  /// memory traffic and doubles the SIMD width of every stream hot
  /// kernel; plan construction stays double either way.
  Builder& precision(core::Precision precision);

  /// Validate, canonicalize, stamp the content hash, and return the
  /// immutable spec.  \throws InvalidSpecError (ErrorCode::InvalidSpec)
  /// for inconsistent specs; deep numeric validation (covariance
  /// Hermitian-ness, PD-ness for Cholesky, ...) stays with the compile
  /// layers and their native error codes.
  [[nodiscard]] ChannelSpec build() const;

 private:
  ChannelSpec spec_;
  bool family_set_ = false;
  bool mode_set_ = false;
};

/// The immutable product of ChannelSpec::compile(): every build-once
/// artifact (plans, shadowing design, copula tables, instant engines,
/// mean sources) bundled behind const accessors.  Shared by any number
/// of concurrent sessions; engine factories mint the cheap per-seed
/// stateful parts.
class CompiledChannel {
 public:
  [[nodiscard]] static std::shared_ptr<const CompiledChannel> create(
      ChannelSpec spec);

  [[nodiscard]] const ChannelSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t content_hash() const noexcept {
    return spec_.content_hash();
  }
  [[nodiscard]] FadingFamily family() const noexcept {
    return spec_.family();
  }
  [[nodiscard]] EmissionMode mode() const noexcept { return spec_.mode(); }
  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }

  /// Rows per session block (idft-derived for streams, spec block_size
  /// for instant emission).
  [[nodiscard]] std::size_t block_size() const noexcept {
    return block_size_;
  }

  /// True when the channel only emits envelope blocks (copula family).
  [[nodiscard]] bool envelope_only() const noexcept {
    return spec_.family() == FadingFamily::CopulaMarginals;
  }

  /// The primary (diffuse / stage-1 / copula-core) coloring plan.
  [[nodiscard]] const std::shared_ptr<const core::ColoringPlan>& plan()
      const noexcept {
    return plan_;
  }
  /// Stage-2 plan (cascaded family; null otherwise).
  [[nodiscard]] const std::shared_ptr<const core::ColoringPlan>& second_plan()
      const noexcept {
    return second_plan_;
  }

  /// The deterministic mean trajectory stream sessions thread through
  /// FadingStreamOptions::los_mean (zero unless Rician / constant-mean).
  [[nodiscard]] const core::MeanSource& stream_mean() const noexcept {
    return stream_mean_;
  }

  // --- engine factories (cheap; one call per session) ----------------------

  /// The exact FadingStreamOptions a stream session runs with (seed
  /// keyed in) — tests reproduce session output by hand-assembling a
  /// FadingStream from these.  Stream-mode Rayleigh/Rician/Suzuki/Twdp
  /// only.
  [[nodiscard]] core::FadingStreamOptions stream_options(
      std::uint64_t seed) const;

  /// A per-seed continuous stream (stream-mode Rayleigh / Rician / Twdp /
  /// Suzuki).  \throws UnsupportedOperationError for other specs.
  [[nodiscard]] core::FadingStream make_stream(std::uint64_t seed) const;

  /// A per-seed real-time cascade (stream-mode CascadedRayleigh).
  [[nodiscard]] scenario::CascadedRealTimeGenerator make_cascaded_stream(
      std::uint64_t seed) const;

  // --- shared instant engines (const, keyed per call, thread-safe) ---------

  /// Instant Rayleigh/Rician draw pipeline (also what the legacy
  /// EnvelopeGenerator wrapper rides on).
  [[nodiscard]] const core::SamplePipeline& pipeline() const;

  /// Instant TWDP engine.
  [[nodiscard]] const scenario::TwdpGenerator& twdp_generator() const;

  /// Instant cascaded engine.
  [[nodiscard]] const scenario::CascadedRayleighGenerator&
  cascaded_generator() const;

  /// Suzuki engine (serves both modes: keyed sample_block and
  /// make_stream).
  [[nodiscard]] const scenario::composite::SuzukiGenerator&
  suzuki_generator() const;

  /// Copula transform (envelope blocks).
  [[nodiscard]] const scenario::composite::CopulaMarginalTransform&
  copula_transform() const;

 private:
  explicit CompiledChannel(ChannelSpec spec);

  ChannelSpec spec_;
  std::size_t dimension_ = 0;
  std::size_t block_size_ = 0;
  std::shared_ptr<const core::ColoringPlan> plan_;
  std::shared_ptr<const core::ColoringPlan> second_plan_;
  core::MeanSource stream_mean_;
  core::MeanSource instant_mean_;
  std::optional<scenario::TwdpSpec> twdp_spec_;
  std::optional<core::SamplePipeline> pipeline_;
  std::optional<scenario::TwdpGenerator> twdp_generator_;
  std::optional<scenario::CascadedRayleighGenerator> cascaded_generator_;
  std::optional<scenario::composite::SuzukiGenerator> suzuki_generator_;
  std::shared_ptr<const scenario::composite::CopulaMarginalTransform> copula_;
};

}  // namespace rfade::service
