#pragma once

/// \file channel_service.hpp
/// \brief Multi-tenant serving layer: sessions (tenant = spec + seed +
///        cursor) over PlanCache-shared compiled channels, plus a batcher
///        that coalesces many small concurrent pulls into one
///        thread-pool-amortised sweep.
///
/// The serving model rests on two reproducibility contracts the lower
/// layers already pin:
///
///   1. every block is a pure function of (spec, seed, block index) —
///      the keyed generate_block paths are const and thread-safe; and
///   2. the stateful stream walk equals the keyed walk bit-for-bit.
///
/// A Session is therefore three words of tenant state (compiled-channel
/// handle, seed, cursor) riding an immutable CompiledChannel that any
/// number of tenants share.  next_block()/seek() give each tenant its
/// own independent deterministic timeline; the keyed generate_block() is
/// what the batcher fans out over the global thread pool, so a thousand
/// tenants pulling one block each cost one parallel sweep, not a
/// thousand sequential engine hops.
///
/// Observability (recorded only when telemetry::enabled()):
/// rfade_session_next_block_ns latency histogram over every cursor pull,
/// rfade_session_seeks_total / rfade_sessions_opened_total counters, and
/// the rfade_batcher_sweep_width histogram of requests coalesced per
/// generate_blocks sweep; next_block and the batcher also open trace
/// spans when the Tracer is enabled.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "rfade/numeric/matrix.hpp"
#include "rfade/scenario/timevarying/cascaded_realtime.hpp"
#include "rfade/service/channel_spec.hpp"
#include "rfade/service/plan_cache.hpp"

namespace rfade::metrics {
class MetricsTap;
struct MetricsTapConfig;
}  // namespace rfade::metrics

namespace rfade::service {

/// One tenant's deterministic timeline over a shared compiled channel.
///
/// Sequential use (next_block / seek) is single-tenant stateful; the
/// keyed generate_block / generate_envelope_block are const and
/// thread-safe, and both walks are bit-identical: block b of seed s is
/// the same matrix no matter which tenant, thread, or walk order
/// produced it.
class Session {
 public:
  Session(std::shared_ptr<const CompiledChannel> channel, std::uint64_t seed);

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  [[nodiscard]] const CompiledChannel& channel() const noexcept {
    return *channel_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return channel_->dimension();
  }
  [[nodiscard]] std::size_t block_size() const noexcept {
    return channel_->block_size();
  }
  /// Index the next next_block() call will produce.
  [[nodiscard]] std::uint64_t next_block_index() const noexcept {
    return cursor_;
  }

  /// The next complex block of this tenant's timeline; advances the
  /// cursor.  \throws UnsupportedOperationError for envelope-only
  /// (copula) channels.
  [[nodiscard]] numeric::CMatrix next_block();

  /// The next envelope block (|z| elementwise; native for copula
  /// channels); advances the cursor.
  [[nodiscard]] numeric::RMatrix next_envelope_block();

  /// Reposition the timeline: the next next_block() returns block
  /// \p block_index.  O(1) — blocks are keyed, never replayed.  Counted
  /// on the telemetry registry (rfade_session_seeks_total).
  void seek(std::uint64_t block_index) noexcept;

  /// Block \p block_index of this tenant's timeline, cursor untouched.
  /// Const and thread-safe: the batcher's fan-out hook.
  [[nodiscard]] numeric::CMatrix generate_block(
      std::uint64_t block_index) const;

  /// Envelope form of generate_block (native for copula channels).
  [[nodiscard]] numeric::RMatrix generate_envelope_block(
      std::uint64_t block_index) const;

  /// Attach a link-level MetricsTap to this tenant's timeline: every
  /// complex block next_block() emits is folded into streaming LCR /
  /// ACF / mutual-information accumulators whose analytic reference
  /// (fm, per-branch powers, family, shadowing law) is derived from the
  /// compiled spec — see metrics/tap.hpp for the gauges published.
  /// Returns the tap (shared with the session) for health()/publish()/
  /// merge() access.  Off by default; a session without a tap pays one
  /// pointer test per block, one with a disabled tap adds one relaxed
  /// load.  The keyed generate_block paths are never observed.
  /// \throws UnsupportedOperationError for instant-mode or envelope-only
  /// channels (no continuous timeline to measure).
  std::shared_ptr<metrics::MetricsTap> enable_metrics(
      const metrics::MetricsTapConfig& config);

  /// The attached tap, null until enable_metrics().
  [[nodiscard]] const std::shared_ptr<metrics::MetricsTap>& metrics_tap()
      const noexcept {
    return metrics_tap_;
  }

 private:
  std::shared_ptr<const CompiledChannel> channel_;
  std::uint64_t seed_ = 0;
  std::uint64_t cursor_ = 0;
  /// Per-seed stream engines (stream mode only): hosts of the const
  /// keyed generate_block — their mutable next_block state is never
  /// touched by the session.
  std::optional<core::FadingStream> stream_;
  std::optional<scenario::CascadedRealTimeGenerator> cascaded_;
  /// Opt-in link-level metrics over next_block() (see enable_metrics).
  std::shared_ptr<metrics::MetricsTap> metrics_tap_;
};

/// One coalesced block request: \p session's block \p block_index.
struct BlockRequest {
  const Session* session = nullptr;
  std::uint64_t block_index = 0;
};

/// The serving facade: compiles specs through a shared PlanCache, opens
/// tenant sessions, and batches concurrent pulls.
class ChannelService {
 public:
  /// \pre plan_cache_capacity >= 1.
  explicit ChannelService(std::size_t plan_cache_capacity = 64);

  ChannelService(const ChannelService&) = delete;
  ChannelService& operator=(const ChannelService&) = delete;

  /// Compile \p spec through the plan cache (shared on repeat specs).
  [[nodiscard]] std::shared_ptr<const CompiledChannel> compile(
      const ChannelSpec& spec) {
    return cache_.get_or_compile(spec);
  }

  /// A new tenant session on \p spec (cache-shared plan) with its own
  /// \p seed timeline starting at block 0.
  [[nodiscard]] Session open_session(const ChannelSpec& spec,
                                     std::uint64_t seed) {
    return Session(compile(spec), seed);
  }

  /// A new tenant session on an already-compiled channel.
  [[nodiscard]] static Session open_session(
      std::shared_ptr<const CompiledChannel> channel, std::uint64_t seed) {
    return Session(std::move(channel), seed);
  }

  /// Batcher: fulfil many small block requests as one thread-pool sweep.
  /// Results are positionally aligned with \p requests and bit-identical
  /// to calling request.session->generate_block(request.block_index)
  /// sequentially.  Requests may mix sessions, repeat sessions, and
  /// repeat indices freely.
  [[nodiscard]] static std::vector<numeric::CMatrix> generate_blocks(
      const std::vector<BlockRequest>& requests);

  /// Batcher over the tenants' own cursors: pulls every session's next
  /// block concurrently, then advances each cursor by one — bit-identical
  /// to calling next_block() on each session in order.  Each session may
  /// appear at most once per call (cursors advance once per call).
  [[nodiscard]] static std::vector<numeric::CMatrix> pull_blocks(
      const std::vector<Session*>& sessions);

  [[nodiscard]] PlanCacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] PlanCache& cache() noexcept { return cache_; }

 private:
  PlanCache cache_;
};

}  // namespace rfade::service
