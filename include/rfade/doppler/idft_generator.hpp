#pragma once

/// \file idft_generator.hpp
/// \brief Young-Beaulieu IDFT Rayleigh branch generator (paper Fig. 2).
///
/// One branch produces a block of M complex Gaussian samples whose
/// normalised autocorrelation follows J0(2 pi fm d):
///
///   U[k] = F[k] A[k] - i F[k] B[k],  A,B iid N(0, sigma_orig^2)
///   u[l] = (1/M) sum_k U[k] e^{i 2 pi k l / M}
///
/// The output variance is *not* sigma_orig^2 — it is the Eq. (19) value
/// exposed by output_variance().  The proposed real-time algorithm divides
/// by exactly this value (paper Sec. 5, step 6); baselines that skip the
/// correction inherit a large power bias (experiment E7).

#include "rfade/doppler/filter.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::doppler {

/// A single correlated-in-time Rayleigh branch (Fig. 2 of the paper).
class IdftRayleighBranch {
 public:
  /// \param m  IDFT size M (block length); \pre m >= 8.
  /// \param fm normalised maximum Doppler Fm/Fs in (0, 0.5) with fm*m >= 1.
  /// \param input_variance_per_dim sigma_orig^2 of the A/B sequences.
  IdftRayleighBranch(std::size_t m, double fm, double input_variance_per_dim);

  /// Generate one block of M complex Gaussian samples u[0..M-1].
  [[nodiscard]] numeric::CVector generate_block(random::Rng& rng) const;

  /// The stochastic half of generate_block: draw the weighted spectrum
  /// U[k] = F[k](A[k] - i B[k]).  This is the only part that consumes
  /// \p rng, so callers generating many branches can draw all spectra in a
  /// fixed serial order and synthesize them concurrently.
  [[nodiscard]] numeric::CVector draw_spectrum(random::Rng& rng) const;

  /// The deterministic half: u = IDFT(spectrum).  Pure (no rng, no mutable
  /// state) — safe to run on any thread.
  [[nodiscard]] numeric::CVector synthesize(
      const numeric::CVector& spectrum) const;

  /// Allocation-free form of synthesize for steady-state streaming: writes
  /// u into \p out, reusing its capacity (power-of-two M never allocates
  /// once \p out is warm; the Bluestein fallback still does).
  /// Bit-identical to synthesize.
  void synthesize_into(const numeric::CVector& spectrum,
                       numeric::CVector& out) const;

  /// Envelope |u| of one generated block.
  [[nodiscard]] numeric::RVector generate_envelope_block(
      random::Rng& rng) const;

  /// Analytic output variance sigma_g^2 (Eq. 19).
  [[nodiscard]] double output_variance() const noexcept {
    return output_variance_;
  }

  /// The designed Doppler filter.
  [[nodiscard]] const DopplerFilterDesign& filter() const noexcept {
    return design_;
  }

  /// Block length M.
  [[nodiscard]] std::size_t block_size() const noexcept {
    return design_.size();
  }

  /// sigma_orig^2.
  [[nodiscard]] double input_variance_per_dim() const noexcept {
    return input_variance_per_dim_;
  }

 private:
  DopplerFilterDesign design_;
  double input_variance_per_dim_;
  double output_variance_;
};

}  // namespace rfade::doppler
