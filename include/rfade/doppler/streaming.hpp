#pragma once

/// \file streaming.hpp
/// \brief Continuous (unbounded-length) Doppler-faded sample stream.
///
/// The paper's real-time algorithm (Sec. 5) produces one M-sample block per
/// IDFT; a simulation that runs longer than M samples needs consecutive
/// blocks.  Naively concatenating independent blocks puts an
/// autocorrelation discontinuity at every boundary.  StreamingFadingSource
/// hides it with an equal-power crossfade: over the last `overlap` samples
/// of each block the output is
///
///     y = sqrt(1 - w) * current + sqrt(w) * next,   w: 0 -> 1,
///
/// which preserves the variance and Gaussianity exactly (the blocks are
/// independent), keeps the within-block autocorrelation J0(2 pi fm d), and
/// degrades it only inside the overlap window.  This is the standard
/// overlap trade-off; choose overlap << M for fidelity.

#include "rfade/doppler/idft_generator.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::doppler {

/// Unbounded stream of complex Gaussian fading samples with a Jakes
/// Doppler spectrum.
class StreamingFadingSource {
 public:
  /// \param m        IDFT block size M.
  /// \param fm       normalised maximum Doppler in (0, 0.5).
  /// \param input_variance_per_dim sigma_orig^2 of the branch generator.
  /// \param overlap  crossfade length in samples; \pre overlap < m / 2.
  StreamingFadingSource(std::size_t m, double fm,
                        double input_variance_per_dim, std::size_t overlap);

  /// Next complex fading sample.
  [[nodiscard]] numeric::cdouble next(random::Rng& rng);

  /// Fill \p count samples into a vector.
  [[nodiscard]] numeric::CVector take(std::size_t count, random::Rng& rng);

  /// Output variance (Eq. 19) — unchanged by the equal-power crossfade.
  [[nodiscard]] double output_variance() const noexcept {
    return branch_.output_variance();
  }

  /// The underlying block generator.
  [[nodiscard]] const IdftRayleighBranch& branch() const noexcept {
    return branch_;
  }

 private:
  void advance_block(random::Rng& rng);

  IdftRayleighBranch branch_;
  std::size_t overlap_;
  numeric::CVector current_;
  numeric::CVector next_;
  std::size_t position_ = 0;
  bool primed_ = false;
};

}  // namespace rfade::doppler
