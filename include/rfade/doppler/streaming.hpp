#pragma once

/// \file streaming.hpp
/// \brief Compatibility shim: per-sample crossfaded Doppler stream.
///
/// StreamingFadingSource predates the unified stream layer
/// (doppler/branch_source.hpp + core/fading_stream.hpp); it is now a thin
/// per-sample façade over a single WindowedOverlapAdd BranchSource, kept
/// for callers that want one branch pulled sample-by-sample from their
/// own rng.  The emitted sample sequence is bit-identical to the
/// historical implementation: over the last `overlap` samples of each
/// block the output is
///
///     y = sqrt(1 - w) * current + sqrt(w) * next,   w: 0 -> 1,
///
/// which preserves the variance and Gaussianity exactly (the blocks are
/// independent), keeps the within-block autocorrelation J0(2 pi fm d), and
/// degrades it only for lags beyond the overlap window.  New code should
/// use core::FadingStream directly: it serves N correlated branches, all
/// three backends (including the exactly continuous overlap-save FIR),
/// seekable keyed blocks, and the colored/mean-threaded output.

#include <cstdint>
#include <memory>

#include "rfade/doppler/branch_source.hpp"
#include "rfade/doppler/idft_generator.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::doppler {

/// Unbounded stream of complex Gaussian fading samples with a Jakes
/// Doppler spectrum (single branch, caller-owned rng; see file comment —
/// prefer core::FadingStream).
class StreamingFadingSource {
 public:
  /// \param m        IDFT block size M.
  /// \param fm       normalised maximum Doppler in (0, 0.5).
  /// \param input_variance_per_dim sigma_orig^2 of the branch generator.
  /// \param overlap  crossfade length in samples; \pre 1 <= overlap < m/2.
  StreamingFadingSource(std::size_t m, double fm,
                        double input_variance_per_dim, std::size_t overlap);

  /// Next complex fading sample.
  [[nodiscard]] numeric::cdouble next(random::Rng& rng);

  /// Fill \p count samples into a vector.
  [[nodiscard]] numeric::CVector take(std::size_t count, random::Rng& rng);

  /// Output variance (Eq. 19) — unchanged by the equal-power crossfade.
  [[nodiscard]] double output_variance() const noexcept {
    return design_.output_variance();
  }

  /// The underlying block generator.
  [[nodiscard]] const IdftRayleighBranch& branch() const noexcept {
    return design_.branch();
  }

  /// The WOLA backend design this shim wraps.
  [[nodiscard]] const BranchSourceDesign& design() const noexcept {
    return design_;
  }

 private:
  BranchSourceDesign design_;
  std::unique_ptr<BranchSource> source_;
  numeric::CVector buffer_;
  std::size_t position_ = 0;
  std::uint64_t block_index_ = 0;
};

}  // namespace rfade::doppler
