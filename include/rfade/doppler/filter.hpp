#pragma once

/// \file filter.hpp
/// \brief Young-Beaulieu Doppler filter design (paper Eq. 21) and the
///        analytic post-filter statistics (Eqs. 16, 17, 19).
///
/// The filter samples the Jakes Doppler spectrum S(f) = 1/sqrt(1-(f/fm)^2)
/// on an M-point IDFT grid, with a closed-form area-matching correction at
/// the band edge k = km = floor(fm M).  Key quantities:
///
///   * sum F[k]^2 determines the *post-filter variance* (Eq. 19)
///       sigma_g^2 = (2 sigma_orig^2 / M^2) sum_k F[k]^2,
///     the quantity the paper's Sec. 5 algorithm must feed into the
///     coloring step — ignoring it is the Sorooshyari-Daut flaw (E7).
///   * g[d] = IDFT{F^2}[d] gives the theoretical branch autocorrelation
///     (Eqs. 16-17); g[d]/g[0] approximates J0(2 pi fm d) (Eq. 20).

#include "rfade/numeric/matrix.hpp"

namespace rfade::doppler {

/// A designed Doppler filter for an M-point IDFT generator.
struct DopplerFilterDesign {
  /// Real, non-negative coefficients F[0..M-1]; symmetric (F[M-k] = F[k]).
  numeric::RVector coefficients;
  /// Normalised maximum Doppler fm = Fm / Fs, 0 < fm <= 0.5.
  double normalized_doppler = 0.0;
  /// Band-edge index km = floor(fm M).
  std::size_t km = 0;

  [[nodiscard]] std::size_t size() const { return coefficients.size(); }
};

/// Design the Eq. (21) filter.
/// \pre m >= 8, 0 < fm < 0.5, and floor(fm*m) >= 1.
[[nodiscard]] DopplerFilterDesign young_beaulieu_filter(std::size_t m,
                                                        double fm);

/// Analytic variance of the generator output (Eq. 19):
/// sigma_g^2 = (2 sigma_orig^2 / M^2) sum_k F[k]^2.
[[nodiscard]] double post_filter_variance(const DopplerFilterDesign& design,
                                          double input_variance_per_dim);

/// g[d] for d = 0..max_lag (Eq. 17): the IDFT of {F[k]^2}.  For the real
/// symmetric Eq. (21) filter g is real; the real part is returned.
[[nodiscard]] numeric::RVector theoretical_autocorrelation(
    const DopplerFilterDesign& design, std::size_t max_lag);

/// g[d]/g[0] for d = 0..max_lag — the normalised autocorrelation that
/// Eq. (20) identifies with J0(2 pi fm d).
[[nodiscard]] numeric::RVector theoretical_normalized_autocorrelation(
    const DopplerFilterDesign& design, std::size_t max_lag);

}  // namespace rfade::doppler
