#pragma once

/// \file branch_source.hpp
/// \brief Per-branch temporal-synthesis backends behind one pull interface.
///
/// The paper's Sec. 5 algorithm emits one M-sample IDFT block per branch
/// (Fig. 2) and restarts for the next block, so consecutive blocks are
/// independent realisations — fine for the paper's experiments, but an
/// autocorrelation discontinuity at every block seam of a long trace.  The
/// unbounded stationary processes of the time-varying scenarios (Maric &
/// Njemcevic's TWDP simulator, Ibdah & Ding's cascaded channels) need a
/// genuinely continuous stream.  BranchSource abstracts "one branch's
/// correlated complex Gaussian stream, one block at a time" so the
/// stream engine (core::FadingStream) can swap the synthesis backend:
///
///   * StreamBackend::IndependentBlock — the paper's Fig. 2 generator
///     verbatim: every block is a fresh IDFT realisation.  Bit-identical
///     to the pre-stream RealTimeGenerator; the autocorrelation across a
///     seam is zero (continuity_horizon() == 0).
///   * StreamBackend::WindowedOverlapAdd — windowed overlap-add (WOLA):
///     consecutive independent block realisations are crossfaded over
///     `overlap` samples with the equal-power window
///     y = sqrt(1-w) * current + sqrt(w) * next, which preserves variance
///     and Gaussianity exactly and keeps the J0 autocorrelation intact
///     for lags up to ~overlap across every seam
///     (continuity_horizon() == overlap).  Each advance consumes one
///     block spectrum and emits M - overlap samples.
///   * StreamBackend::OverlapSaveFir — state-carrying overlap-save FIR:
///     the Eq. (21) filter's impulse response h = IDFT(F) (centered, so
///     its linear autocorrelation matches the circular Eq. (17) law) is
///     convolved against a persistent white complex Gaussian input
///     stream drawn from a seekable bulk-Philox substream
///     (random::fill_complex_gaussians_planar with a sample offset).
///     The output is one exactly stationary process: the J0(2 pi fm d)
///     autocorrelation holds across any number of block boundaries
///     (continuity_horizon() == unbounded), the per-sample variance is
///     the same Eq. (19) sigma_g^2 as the block backends, and each
///     M-sample output block costs two 2M FFTs — O(log M) amortised per
///     sample.  Because the input stream is indexed by absolute sample
///     position, every output block is a pure function of
///     (branch seed, block index): seekable, order-free, thread-free.
///
/// Protocol: one `advance` (the stochastic half — consumes the caller's
/// rng in a fixed serial order, or nothing for the self-keyed
/// overlap-save backend) followed by exactly one `fill` (the heavy
/// deterministic half — IDFT / windowing / convolution; safe to run
/// concurrently across *distinct* sources).  `reset` drops carried state
/// so a seek can replay `history_blocks()` blocks to rebuild it.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "rfade/doppler/idft_generator.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/random/rng.hpp"

namespace rfade::fft {
class Pow2Plan;
class Pow2PlanF;
class BluesteinPlan;
class RealConvolver;
class RealConvolverF;
}  // namespace rfade::fft

namespace rfade::doppler {

/// Which temporal-synthesis backend drives each branch (see file comment).
enum class StreamBackend {
  IndependentBlock,   ///< paper Sec. 5: independent IDFT block realisations
  WindowedOverlapAdd, ///< equal-power crossfade of independent blocks (WOLA)
  OverlapSaveFir      ///< exact continuous FIR convolution (overlap-save)
};

/// Human-readable backend name, for reports and bench labels.
[[nodiscard]] const char* stream_backend_name(StreamBackend backend) noexcept;

/// One branch's correlated complex-Gaussian stream, pulled one block at a
/// time.  Stateful; sources for different branches are independent objects,
/// so `fill` may run concurrently across branches after the serial
/// `advance` pass.
class BranchSource {
 public:
  virtual ~BranchSource() = default;

  /// Output samples per advance/fill pair.
  [[nodiscard]] virtual std::size_t block_size() const noexcept = 0;

  /// The stochastic half of one block: draw this block's randomness from
  /// \p rng (backends with self-keyed randomness ignore it and key off
  /// \p block_index instead).  Called once per block, for every branch in
  /// a fixed serial order — rng consumption never depends on threads.
  virtual void advance(random::Rng& rng, std::uint64_t block_index) = 0;

  /// The deterministic half: write the block's block_size() samples into
  /// \p out.  Exactly one fill per advance (fill may rotate carried
  /// state).  No shared mutable state across sources — parallel-safe
  /// across branches.
  virtual void fill(std::span<numeric::cdouble> out) = 0;

  /// Single-precision fill for the float32 emission pipeline: same
  /// advance/fill protocol, but the block is emitted in float.  A given
  /// source instance is driven in ONE precision for its whole life (the
  /// stream's precision knob is fixed at construction); the float stream
  /// is its own bit-reference — deterministic and keyed exactly like the
  /// double path, but not required to match it bitwise.
  virtual void fill_f32(std::span<numeric::cfloat> out) = 0;

  /// Drop all carried state, as if freshly constructed (used by seeks,
  /// which then replay history_blocks() blocks to rebuild it).
  virtual void reset() = 0;
};

/// Immutable, shareable description of a branch backend: the Young-Beaulieu
/// filter/IDFT design plus backend-specific precomputation (crossfade
/// window, centered FIR kernel spectrum).  One design serves any number of
/// BranchSource instances (the N branches of a stream, transient keyed
/// replays, ...).
class BranchSourceDesign {
 public:
  /// \param backend   synthesis backend.
  /// \param m         IDFT size M; \pre m >= 8 (young_beaulieu_filter).
  /// \param fm        normalised maximum Doppler in (0, 0.5), fm*m >= 1.
  /// \param input_variance_per_dim sigma_orig^2 > 0 of the A/B sequences.
  /// \param overlap   WOLA crossfade length; 0 picks m / 8.
  ///                  \pre 1 <= overlap < m / 2 (WOLA only).
  BranchSourceDesign(StreamBackend backend, std::size_t m, double fm,
                     double input_variance_per_dim, std::size_t overlap = 0);

  [[nodiscard]] StreamBackend backend() const noexcept { return backend_; }

  /// Output samples per block: M, except M - overlap for WOLA.
  [[nodiscard]] std::size_t block_size() const noexcept { return block_size_; }

  /// Blocks of carried state a seek must replay (0 for the keyed
  /// backends, 1 for WOLA's previous-block crossfade state).
  [[nodiscard]] std::size_t history_blocks() const noexcept {
    return backend_ == StreamBackend::WindowedOverlapAdd ? 1 : 0;
  }

  /// Largest lag d for which the autocorrelation J0(2 pi fm d) survives a
  /// block seam: 0 (independent), overlap (WOLA), or SIZE_MAX
  /// (overlap-save — exactly stationary at every lag).
  [[nodiscard]] std::size_t continuity_horizon() const noexcept;

  /// Analytic per-sample output variance sigma_g^2 (Eq. 19) — identical
  /// for all three backends (the crossfade is equal-power; Parseval makes
  /// the FIR energy equal the IDFT one).
  [[nodiscard]] double output_variance() const noexcept {
    return branch_.output_variance();
  }

  /// The shared Fig. 2 branch (filter design, IDFT synthesis).
  [[nodiscard]] const IdftRayleighBranch& branch() const noexcept {
    return branch_;
  }

  /// WOLA crossfade length (0 unless the WOLA backend).
  [[nodiscard]] std::size_t overlap() const noexcept { return overlap_; }

  /// A fresh source.  \p branch_seed keys the overlap-save backend's
  /// persistent bulk-Philox input substream (ignored by the rng-driven
  /// backends); derive it per branch with input_seed.
  [[nodiscard]] std::unique_ptr<BranchSource> make_source(
      std::uint64_t branch_seed) const;

  /// Deterministic per-branch input seed for the overlap-save input
  /// streams: splitmix64 over (seed, branch), salted so it collides with
  /// neither the cascade stage seeds nor the TWDP phase seed.
  [[nodiscard]] static std::uint64_t input_seed(std::uint64_t seed,
                                                std::size_t branch);

 private:
  StreamBackend backend_;
  IdftRayleighBranch branch_;
  std::size_t overlap_ = 0;
  std::size_t block_size_;
  /// WOLA: precomputed equal-power fade weights, bit-identical to the
  /// historical StreamingFadingSource crossfade.
  numeric::RVector fade_in_;   ///< sqrt(w),   w = (i+1) / (overlap+1)
  numeric::RVector fade_out_;  ///< sqrt(1-w)
  /// Overlap-save: DFT_{2M} of the centered REAL impulse response (h =
  /// IDFT(F) is real because F is a real, even Doppler spectrum; the
  /// ~1e-16 imaginary FP residue of the complex IDFT is dropped), and the
  /// per-sample complex variance 2 sigma_orig^2 / M of the white input
  /// stream that reproduces the Fig. 2 output statistics exactly.
  numeric::CVector kernel_spectrum_;
  double input_stream_variance_ = 0.0;
  /// Overlap-save, power-of-two 2M: the shared 2M-point plan plus the
  /// real-kernel convolver built on it.  The I and Q Philox tapes pack
  /// into one complex FFT (the real-FFT pairing trick — see
  /// fft::RealConvolver), so each block costs one forward + one inverse
  /// transform for BOTH quadratures; kernel_spectrum_ aliases the
  /// convolver's spectrum.  Null for non-power-of-two 2M and the other
  /// backends.
  std::shared_ptr<const fft::Pow2Plan> convolution_plan_;
  std::shared_ptr<const fft::RealConvolver> convolver_;
  /// Overlap-save, non-power-of-two 2M: the Bluestein plan built once so
  /// the fallback stops rebuilding chirp/kernel tables and allocating
  /// fresh fft::dft/idft vectors every block.
  std::shared_ptr<const fft::BluesteinPlan> fallback_plan_;
  /// Float32 emission clones, down-converted once at construction: WOLA
  /// fade weights, and (power-of-two overlap-save only) the narrowed
  /// kernel spectrum with a float plan + convolver over it.  Null/empty
  /// when the backend has no float fast path — the float fill then
  /// computes in double and narrows.
  numeric::RVectorF fade_in_f_;
  numeric::RVectorF fade_out_f_;
  numeric::CVectorF kernel_spectrum_f_;
  std::shared_ptr<const fft::Pow2PlanF> convolution_plan_f_;
  std::shared_ptr<const fft::RealConvolverF> convolver_f_;

  friend class IndependentBlockBranchSource;
  friend class WolaBranchSource;
  friend class OverlapSaveBranchSource;
  friend class OverlapSaveBatch;
};

/// Batched overlap-save sweep over ALL branches of a stream: the N
/// branches' forward/inverse passes run as one planar-layout,
/// lane-lockstep batch over the design's shared plan
/// (fft::Pow2Plan::transform_batched), in groups of up to 8 lanes — one
/// zmm register of doubles — so the butterflies SIMD across transforms
/// instead of across the (strided) points of a single transform.  Every
/// lane's arithmetic is the scalar path's, so the sweep is bit-identical
/// to running the per-branch OverlapSaveBranchSource fills one by one:
/// core::FadingStream keeps the per-branch path as the keyed reference
/// and the test suite pins batched ≡ per-branch.
///
/// Owns all workspaces (inputs, transform buffers, Philox tapes),
/// preallocated at construction — the steady-state fill_block is
/// allocation-free.  Like the per-branch source, the input tape is keyed
/// by absolute sample position: fill_block(b) is a pure function of b
/// with a shift fast path when blocks are consumed in order, and reset()
/// only drops the cached inputs.
class OverlapSaveBatch {
 public:
  /// \pre supports(*design); branch_seeds.size() >= 1 (one per branch,
  /// in column order).  \p float32 selects the single-precision sweep:
  /// float Philox tapes, float transforms over the design's narrowed
  /// kernel spectrum, and 16 lanes per group (one zmm of floats) instead
  /// of 8.  A batch is built in ONE precision for its whole life; the
  /// float sweep is bit-identical to the per-branch fill_f32 path, which
  /// is its own reference (not the double path narrowed).
  OverlapSaveBatch(std::shared_ptr<const BranchSourceDesign> design,
                   std::vector<std::uint64_t> branch_seeds,
                   bool float32 = false);
  ~OverlapSaveBatch();

  /// True when \p design can drive the batched sweep: the overlap-save
  /// backend with a power-of-two 2M transform (the Bluestein fallback
  /// stays per-branch).
  [[nodiscard]] static bool supports(const BranchSourceDesign& design);

  [[nodiscard]] std::size_t branches() const noexcept;

  /// Compute output block \p block_index for every branch and write
  /// w(l, j) = u_j[l] * post_scale into the block_size() x branches()
  /// matrix \p w — the exact transpose-and-normalise pass of the
  /// per-branch path (post_scale is the caller's 1/sigma_g).  Lane
  /// groups run concurrently on the global pool when \p parallel.
  void fill_block(std::uint64_t block_index, double post_scale,
                  numeric::CMatrix& w, bool parallel);

  /// Single-precision fill_block (\pre constructed with float32 = true):
  /// identical protocol, float output matrix.  Bit-identical to running
  /// the per-branch fill_f32 fills one by one.
  void fill_block_f32(std::uint64_t block_index, float post_scale,
                      numeric::CMatrixF& w, bool parallel);

  /// Drop the cached input windows (seek support; the next fill_block
  /// regenerates them from the bulk-Philox tapes).
  void reset();

 private:
  struct LaneGroup;

  std::shared_ptr<const BranchSourceDesign> design_;
  std::vector<std::uint64_t> branch_seeds_;
  std::vector<LaneGroup> groups_;
  bool float32_ = false;
};

}  // namespace rfade::doppler
