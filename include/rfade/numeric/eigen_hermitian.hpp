#pragma once

/// \file eigen_hermitian.hpp
/// \brief Hermitian eigendecomposition K = V diag(lambda) V^H.
///
/// This is the substrate for the paper's Sections 4.2 (forced positive
/// semi-definiteness) and 4.3 (eigendecomposition-based coloring matrix).
/// Two independent solvers are provided:
///
///  * `Jacobi` — cyclic complex Jacobi rotations.  Unconditionally robust,
///    quadratically convergent, O(n^3) per sweep; the reference method.
///  * `TridiagonalQL` — complex Householder reduction to a real symmetric
///    tridiagonal matrix followed by implicit-shift QL.  The fast path for
///    larger matrices, cross-validated against Jacobi in the test suite and
///    compared in the A1 ablation bench.
///
/// Both return eigenvalues in ascending order with a unitary matrix of
/// eigenvectors in matching column order.

#include "rfade/numeric/matrix.hpp"

namespace rfade::numeric {

/// Result of a Hermitian eigendecomposition.
struct HermitianEigen {
  /// Eigenvalues, ascending.  Always real for Hermitian input.
  RVector values;
  /// Unitary matrix whose j-th column is the eigenvector of values[j].
  CMatrix vectors;
};

/// Which algorithm computes the decomposition.
enum class EigenMethod {
  Jacobi,        ///< cyclic complex Jacobi rotations (reference)
  TridiagonalQL  ///< Householder tridiagonalisation + implicit QL (fast)
};

/// Tuning knobs for the eigensolvers.
struct EigenOptions {
  /// Convergence threshold relative to the Frobenius norm of the input.
  double tolerance = 1e-14;
  /// Maximum Jacobi sweeps / QL iterations per eigenvalue.
  int max_iterations = 60;
};

/// Eigendecomposition via cyclic complex Jacobi rotations.
/// \param a Hermitian matrix (validated; ContractViolation otherwise).
/// \throws ConvergenceError if the off-diagonal mass does not vanish.
[[nodiscard]] HermitianEigen eigen_hermitian_jacobi(
    const CMatrix& a, const EigenOptions& options = {});

/// Eigendecomposition via Householder tridiagonalisation + implicit-shift QL.
/// \param a Hermitian matrix (validated; ContractViolation otherwise).
/// \throws ConvergenceError if QL exceeds its iteration budget.
[[nodiscard]] HermitianEigen eigen_hermitian_ql(const CMatrix& a,
                                                const EigenOptions& options = {});

/// Dispatch on \p method.
[[nodiscard]] HermitianEigen eigen_hermitian(
    const CMatrix& a, EigenMethod method = EigenMethod::TridiagonalQL,
    const EigenOptions& options = {});

/// Reconstruct V diag(values) V^H — used by tests and by the PSD-forcing
/// step (paper Eq. "K = V Lambda V^H").
[[nodiscard]] CMatrix reconstruct(const HermitianEigen& eig);

}  // namespace rfade::numeric
