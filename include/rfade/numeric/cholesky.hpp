#pragma once

/// \file cholesky.hpp
/// \brief Complex Cholesky factorization K = L L^H.
///
/// Cholesky is what the conventional generators ([4], [5], [6] in the
/// paper) use to obtain the coloring matrix, and its hard requirement of
/// positive *definiteness* is exactly the shortcoming the proposed
/// eigendecomposition route removes.  rfade keeps a careful implementation
/// both as a baseline ingredient and as the fast path whenever the caller
/// knows K is PD (ablation A1).

#include "rfade/numeric/matrix.hpp"

namespace rfade::numeric {

/// Lower-triangular L with K = L L^H.
///
/// \param k Hermitian matrix (validated).
/// \param tolerance pivot threshold relative to the largest diagonal entry;
///        pivots at or below it raise NotPositiveDefiniteError, mirroring
///        the round-off failures the paper reports for MATLAB's chol.
/// \throws NotPositiveDefiniteError when K is not numerically PD.
[[nodiscard]] CMatrix cholesky(const CMatrix& k, double tolerance = 0.0);

/// True when cholesky(k) succeeds — i.e. K is numerically positive definite.
[[nodiscard]] bool is_positive_definite(const CMatrix& k,
                                        double tolerance = 0.0);

/// Solve L y = b for lower-triangular L (unit checks only in debug);
/// used by tests to validate factors.
[[nodiscard]] CVector solve_lower_triangular(const CMatrix& l,
                                             const CVector& b);

}  // namespace rfade::numeric
