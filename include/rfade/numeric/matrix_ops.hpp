#pragma once

/// \file matrix_ops.hpp
/// \brief Free-function linear algebra kernels on Matrix<T>.
///
/// Concrete (non-template) signatures for the two element types rfade uses,
/// double and std::complex<double>.  Everything validates shapes via
/// contracts and throws rfade::DimensionError-compatible ContractViolation
/// on mismatch.

#include "rfade/numeric/matrix.hpp"

namespace rfade::numeric {

// --- construction / conversion ---------------------------------------------

/// Widen a real matrix to complex.
[[nodiscard]] CMatrix to_complex(const RMatrix& a);

/// Element-wise real parts.
[[nodiscard]] RMatrix real_part(const CMatrix& a);

/// Element-wise imaginary parts.
[[nodiscard]] RMatrix imag_part(const CMatrix& a);

/// Element-wise moduli |a_ij| — the envelope matrix of a block of
/// complex samples.
[[nodiscard]] RMatrix elementwise_abs(const CMatrix& a);

/// Diagonal matrix from a vector.
[[nodiscard]] CMatrix diag(const CVector& d);
[[nodiscard]] CMatrix diag(const RVector& d);

/// Main diagonal of a square matrix.
[[nodiscard]] CVector diagonal(const CMatrix& a);

// --- arithmetic --------------------------------------------------------------

/// C = A * B.
[[nodiscard]] CMatrix multiply(const CMatrix& a, const CMatrix& b);
[[nodiscard]] RMatrix multiply(const RMatrix& a, const RMatrix& b);

/// y = A * x.
[[nodiscard]] CVector multiply(const CMatrix& a, const CVector& x);
[[nodiscard]] RVector multiply(const RMatrix& a, const RVector& x);

/// A + B and A - B.
[[nodiscard]] CMatrix add(const CMatrix& a, const CMatrix& b);
[[nodiscard]] CMatrix subtract(const CMatrix& a, const CMatrix& b);

/// alpha * A.
[[nodiscard]] CMatrix scale(const CMatrix& a, cdouble alpha);

/// Conjugate transpose A^H.
[[nodiscard]] CMatrix conjugate_transpose(const CMatrix& a);

/// Transpose (real).
[[nodiscard]] RMatrix transpose(const RMatrix& a);

/// Gram product L * L^H (the coloring-matrix identity of the paper,
/// Eq. (10)).
[[nodiscard]] CMatrix gram(const CMatrix& l);

// --- batched (blocked) products ---------------------------------------------

/// Raw kernel behind multiply_block: c = a * b with a (m x k), b (k x n) and
/// c (m x n), all dense row-major.  The accumulation over k is strictly
/// ascending for every output element, so the result is bit-identical to a
/// naive dot product (and hence to the per-sample matvec loops it replaces);
/// the loop nest is row-tiled so one tile of c and one row of b stay
/// cache-resident while a is streamed.  \p c must not alias \p a or \p b.
void multiply_block_raw(const cdouble* a, std::size_t m, std::size_t k,
                        const cdouble* b, std::size_t n, cdouble* c);

/// out = a * b via the blocked kernel; \p out is resized/overwritten.
void multiply_block_into(const CMatrix& a, const CMatrix& b, CMatrix& out);

/// Blocked GEMM a * b — same contract (and bit pattern) as multiply(a, b),
/// but tiled for block-of-draws workloads where a has thousands of rows.
[[nodiscard]] CMatrix multiply_block(const CMatrix& a, const CMatrix& b);

/// Planar-operand variant of multiply_block_raw: a is given as split
/// real/imaginary planes a_re/a_im (each m x k row-major), b as planes
/// b_re/b_im (each k x n), and c is written interleaved (m x n complex,
/// row-major).  Same ascending-k accumulation — bit-identical to the
/// std::complex kernels — but the four plane updates are independent
/// stride-1 loops the compiler can vectorize without the complex-multiply
/// NaN-recovery branch.  \p c must not alias any input plane.
void multiply_block_planar(const double* a_re, const double* a_im,
                           std::size_t m, std::size_t k, const double* b_re,
                           const double* b_im, std::size_t n, cdouble* c);

// --- float32 emission-path kernels -------------------------------------------
//
// Single-precision clones of the hot emission kernels.  Same accumulation
// order and contraction discipline as the double versions (this TU keeps
// -ffp-contract=off), so each float kernel is bit-identical to its own
// scalar float loop at every ISA width — float is its own bit-reference,
// not required to match double bitwise.

/// Float clone of multiply_block_raw: c = a * b, ascending-k accumulation.
void multiply_block_raw(const cfloat* a, std::size_t m, std::size_t k,
                        const cfloat* b, std::size_t n, cfloat* c);

/// Float clone of multiply_block_planar (split-plane operands, interleaved
/// complex output).
void multiply_block_planar(const float* a_re, const float* a_im,
                           std::size_t m, std::size_t k, const float* b_re,
                           const float* b_im, std::size_t n, cfloat* c);

// --- streaming passes --------------------------------------------------------

/// WOLA equal-power crossfade (the per-seam pass of the
/// windowed-overlap-add branch source):
///   out[i] = fade_out[i] * previous[i] + fade_in[i] * current[i],
/// with real weight vectors applied to complex samples.  Multiversioned
/// (target_clones, like the planar GEMM) with no FMA, so every clone
/// reproduces the scalar mul/add bit pattern.  \p out must not alias
/// any input.
void crossfade_block(const double* fade_out, const double* fade_in,
                     const cdouble* previous, const cdouble* current,
                     std::size_t count, cdouble* out);

/// Strided scale-and-scatter (the branch->row interleave pass of the
/// stream engine): out[l * stride] = u[l] * scale for l in [0, count).
/// Multiversioned like crossfade_block; bit-identical to the scalar
/// loop.
void scale_into_strided(const cdouble* u, std::size_t count, double scale,
                        cdouble* out, std::size_t stride);

/// Float clone of crossfade_block (float weights, complex<float> samples).
void crossfade_block(const float* fade_out, const float* fade_in,
                     const cfloat* previous, const cfloat* current,
                     std::size_t count, cfloat* out);

/// Float clone of scale_into_strided.
void scale_into_strided(const cfloat* u, std::size_t count, float scale,
                        cfloat* out, std::size_t stride);

/// Trace of a square matrix.
[[nodiscard]] cdouble trace(const CMatrix& a);

// --- norms / comparisons -------------------------------------------------------

/// Frobenius norm sqrt(sum |a_ij|^2) — the metric of the paper's Sec. 4.2
/// PSD-approximation claim.
[[nodiscard]] double frobenius_norm(const CMatrix& a);
[[nodiscard]] double frobenius_norm(const RMatrix& a);

/// Largest |a_ij|.
[[nodiscard]] double max_abs(const CMatrix& a);

/// Largest |a_ij - b_ij|; shapes must match.
[[nodiscard]] double max_abs_diff(const CMatrix& a, const CMatrix& b);
[[nodiscard]] double max_abs_diff(const RMatrix& a, const RMatrix& b);

/// True when ||A - A^H||_max <= tol * max(1, ||A||_max).
[[nodiscard]] bool is_hermitian(const CMatrix& a, double tol = 1e-12);

/// Nearest Hermitian matrix (A + A^H)/2.
[[nodiscard]] CMatrix hermitian_part(const CMatrix& a);

}  // namespace rfade::numeric
