#pragma once

/// \file matrix_ops.hpp
/// \brief Free-function linear algebra kernels on Matrix<T>.
///
/// Concrete (non-template) signatures for the two element types rfade uses,
/// double and std::complex<double>.  Everything validates shapes via
/// contracts and throws rfade::DimensionError-compatible ContractViolation
/// on mismatch.

#include "rfade/numeric/matrix.hpp"

namespace rfade::numeric {

// --- construction / conversion ---------------------------------------------

/// Widen a real matrix to complex.
[[nodiscard]] CMatrix to_complex(const RMatrix& a);

/// Element-wise real parts.
[[nodiscard]] RMatrix real_part(const CMatrix& a);

/// Element-wise imaginary parts.
[[nodiscard]] RMatrix imag_part(const CMatrix& a);

/// Diagonal matrix from a vector.
[[nodiscard]] CMatrix diag(const CVector& d);
[[nodiscard]] CMatrix diag(const RVector& d);

/// Main diagonal of a square matrix.
[[nodiscard]] CVector diagonal(const CMatrix& a);

// --- arithmetic --------------------------------------------------------------

/// C = A * B.
[[nodiscard]] CMatrix multiply(const CMatrix& a, const CMatrix& b);
[[nodiscard]] RMatrix multiply(const RMatrix& a, const RMatrix& b);

/// y = A * x.
[[nodiscard]] CVector multiply(const CMatrix& a, const CVector& x);
[[nodiscard]] RVector multiply(const RMatrix& a, const RVector& x);

/// A + B and A - B.
[[nodiscard]] CMatrix add(const CMatrix& a, const CMatrix& b);
[[nodiscard]] CMatrix subtract(const CMatrix& a, const CMatrix& b);

/// alpha * A.
[[nodiscard]] CMatrix scale(const CMatrix& a, cdouble alpha);

/// Conjugate transpose A^H.
[[nodiscard]] CMatrix conjugate_transpose(const CMatrix& a);

/// Transpose (real).
[[nodiscard]] RMatrix transpose(const RMatrix& a);

/// Gram product L * L^H (the coloring-matrix identity of the paper,
/// Eq. (10)).
[[nodiscard]] CMatrix gram(const CMatrix& l);

/// Trace of a square matrix.
[[nodiscard]] cdouble trace(const CMatrix& a);

// --- norms / comparisons -------------------------------------------------------

/// Frobenius norm sqrt(sum |a_ij|^2) — the metric of the paper's Sec. 4.2
/// PSD-approximation claim.
[[nodiscard]] double frobenius_norm(const CMatrix& a);
[[nodiscard]] double frobenius_norm(const RMatrix& a);

/// Largest |a_ij|.
[[nodiscard]] double max_abs(const CMatrix& a);

/// Largest |a_ij - b_ij|; shapes must match.
[[nodiscard]] double max_abs_diff(const CMatrix& a, const CMatrix& b);
[[nodiscard]] double max_abs_diff(const RMatrix& a, const RMatrix& b);

/// True when ||A - A^H||_max <= tol * max(1, ||A||_max).
[[nodiscard]] bool is_hermitian(const CMatrix& a, double tol = 1e-12);

/// Nearest Hermitian matrix (A + A^H)/2.
[[nodiscard]] CMatrix hermitian_part(const CMatrix& a);

}  // namespace rfade::numeric
