#pragma once

/// \file matrix.hpp
/// \brief Dense row-major matrix container used throughout rfade.
///
/// rfade's covariance matrices are small (N = number of envelopes, rarely
/// more than a few hundred), so a plain contiguous row-major container with
/// unchecked `operator()` and checked `at()` covers every need; all heavy
/// algorithms live in free functions (matrix_ops.hpp, eigen_hermitian.hpp,
/// cholesky.hpp).

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "rfade/support/contracts.hpp"

namespace rfade::numeric {

/// Dense row-major matrix over an arithmetic or complex element type.
template <typename T>
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// \p rows x \p cols matrix with every element set to \p value.
  Matrix(std::size_t rows, std::size_t cols, T value = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Build from nested braces: Matrix<double>::from_rows({{1,2},{3,4}}).
  /// All rows must have equal length.
  static Matrix from_rows(
      std::initializer_list<std::initializer_list<T>> rows) {
    Matrix m(rows.size(), rows.size() ? rows.begin()->size() : 0);
    std::size_t i = 0;
    for (const auto& row : rows) {
      RFADE_EXPECTS(row.size() == m.cols_, "ragged initializer rows");
      std::size_t j = 0;
      for (const T& value : row) {
        m(i, j++) = value;
      }
      ++i;
    }
    return m;
  }

  /// n x n identity.
  static Matrix identity(std::size_t n) {
    Matrix m(n, n, T{});
    for (std::size_t i = 0; i < n; ++i) {
      m(i, i) = T{1};
    }
    return m;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool is_square() const noexcept { return rows_ == cols_; }

  /// Unchecked element access (hot paths).
  T& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  /// Bounds-checked element access.
  T& at(std::size_t i, std::size_t j) {
    RFADE_EXPECTS(i < rows_ && j < cols_, "matrix index out of range");
    return (*this)(i, j);
  }
  const T& at(std::size_t i, std::size_t j) const {
    RFADE_EXPECTS(i < rows_ && j < cols_, "matrix index out of range");
    return (*this)(i, j);
  }

  /// Raw contiguous storage (row-major).
  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  /// Set every element to \p value.
  void fill(T value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Canonical scalar/element aliases used across the library.
using cdouble = std::complex<double>;
using CMatrix = Matrix<cdouble>;
using RMatrix = Matrix<double>;
using CVector = std::vector<cdouble>;
using RVector = std::vector<double>;

/// Single-precision aliases for the float32 emission pipeline.  Plans and
/// designs stay double; these carry only hot emission-path data.
using cfloat = std::complex<float>;
using CMatrixF = Matrix<cfloat>;
using RMatrixF = Matrix<float>;
using CVectorF = std::vector<cfloat>;
using RVectorF = std::vector<float>;

}  // namespace rfade::numeric
