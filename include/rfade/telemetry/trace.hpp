#pragma once

/// \file trace.hpp
/// \brief RAII trace spans and the Chrome trace-event sink.
///
/// Span is the instrumentation primitive: construct at scope entry,
/// destruction records one complete ("ph":"X") event — name, dense
/// thread row, start timestamp and duration — into the global Tracer.
/// Nesting falls out of scoping: a child span's [ts, ts+dur] interval
/// lies inside its parent's on the same thread row, which is exactly how
/// chrome://tracing and Perfetto reconstruct the flame graph.
///
/// Tracing is off by default.  A disabled Span costs one relaxed load
/// and never reads the clock, so spans are safe on per-block paths; an
/// enabled Span appends to a bounded mutex-guarded buffer (events beyond
/// the capacity are counted as dropped, never reallocated unboundedly).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "rfade/telemetry/instruments.hpp"

namespace rfade::telemetry {

/// One complete trace event (Chrome trace-event "X" phase).
struct TraceEvent {
  std::string name;
  std::size_t thread = 0;  ///< dense telemetry::thread_index row
  double ts_us = 0.0;      ///< start, microseconds since the tracer epoch
  double dur_us = 0.0;
};

/// Bounded process-wide trace-event sink (see file comment).
class Tracer {
 public:
  Tracer() : epoch_ns_(now_ns()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& global();

  /// Turn span recording on or off (no-op when telemetry is compiled
  /// out); independent of telemetry::set_enabled so metrics can run
  /// without paying for traces.
  void set_enabled(bool on) noexcept {
    enabled_.store(on && kCompiledIn, std::memory_order_relaxed);
  }

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Append one event; beyond capacity() the event is dropped and
  /// counted instead.
  void record(TraceEvent event);

  /// Event-buffer cap (default 65536); shrinking does not drop resident
  /// events.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Drop all resident events and the dropped count.
  void clear();

  /// Nanosecond timestamp of this tracer's t = 0.
  [[nodiscard]] std::uint64_t epoch_ns() const noexcept { return epoch_ns_; }

  /// The resident events as a Chrome trace-event JSON document
  /// (`{"traceEvents": [...], ...}`) — load it in chrome://tracing,
  /// Perfetto, or speedscope.
  [[nodiscard]] std::string chrome_trace_json() const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = 1 << 16;
  std::uint64_t epoch_ns_;
};

/// RAII span over the global tracer (see file comment).  \p name must
/// outlive the span — string literals only.
class Span {
 public:
  explicit Span(const char* name) noexcept
      : name_(Tracer::global().enabled() ? name : nullptr),
        start_ns_(name_ != nullptr ? now_ns() : 0) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span();

 private:
  const char* name_;
  std::uint64_t start_ns_;
};

}  // namespace rfade::telemetry
