#pragma once

/// \file instruments.hpp
/// \brief Telemetry instruments: sharded Counter, Gauge, and the
///        mergeable log-bucketed LatencyHistogram.
///
/// Design rules, in priority order:
///
///   1. The record path is wait-free and contention-shy.  Counters shard
///      across cache lines by thread so concurrent add() never ping-pongs
///      a line; histogram recording is a handful of relaxed fetch_adds on
///      a fixed bucket array.
///   2. Every instrument is shard-mergeable with an order-invariant
///      merge(): bucket counts, counts and sums are commuting integer
///      adds, min/max commute by definition — so K per-shard instruments
///      merge to the single-run instrument bucket-for-bucket, the same
///      contract support::ExactSum pins for the moment accumulators.
///      This is what makes the instruments wire-shippable for the
///      ROADMAP's cross-process driver: ship the bucket array, add.
///   3. When telemetry is compiled out (RFADE_TELEMETRY=0) or idle
///      (set_enabled(false)), instrumented hot paths pay at most one
///      relaxed load and a never-taken branch per block — no clock reads,
///      no stores (ScopedTimer below is the disabled-mode fast path).
///
/// RFADE_TELEMETRY is normally injected by CMake (option RFADE_TELEMETRY,
/// default ON); compiling the headers without it keeps telemetry in.

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#ifndef RFADE_TELEMETRY
#define RFADE_TELEMETRY 1
#endif

namespace rfade::telemetry {

/// True when the instrumentation is compiled into the hot paths.
inline constexpr bool kCompiledIn = RFADE_TELEMETRY != 0;

/// Runtime recording switch, default off: instrumented paths record only
/// when telemetry is compiled in AND an operator opted in.  The one
/// exception is the PlanCache API counters, which always count because
/// PlanCache::stats() must stay exact (see plan_cache.hpp).
inline std::atomic<bool> g_enabled{false};

/// True when instrumented paths should record (one relaxed load).
[[nodiscard]] inline bool enabled() noexcept {
  return kCompiledIn && g_enabled.load(std::memory_order_relaxed);
}

/// Turn recording on or off (no-op when compiled out).
inline void set_enabled(bool on) noexcept {
  g_enabled.store(on && kCompiledIn, std::memory_order_relaxed);
}

/// Monotonic nanosecond clock shared by all latency instruments.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Small dense per-thread index in first-use order — spreads counter
/// shards and names trace rows without hashing thread::id.
[[nodiscard]] std::size_t thread_index() noexcept;

/// Monotonic counter sharded across cache lines: add() touches only the
/// calling thread's shard, value() sums the shards.  Sixteen shards cover
/// the pool sizes rfade runs at; two threads landing on one shard still
/// only contend that line, never the whole counter.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;
  static_assert((kShards & (kShards - 1)) == 0, "shard mask needs a pow2");

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    shards_[thread_index() & (kShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over shards (relaxed; exact once writers quiesce).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Fold \p other into this counter shard-by-shard (order-invariant).
  void merge(const Counter& other) noexcept {
    for (std::size_t i = 0; i < kShards; ++i) {
      shards_[i].value.fetch_add(
          other.shards_[i].value.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins instantaneous value (queue depths, occupancy).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }

  void add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-side copy of a LatencyHistogram (plain integers, no atomics).
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when empty
  std::uint64_t max = 0;

  /// Nearest-rank quantile, exact to the bucket: the representative
  /// (midpoint) of the bucket holding rank ceil(q * count).  Sub-bucket
  /// resolution is 2^-kSubBits of the value, so p50/p90/p99 land within
  /// ~1.6% of the true order statistic.  0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// HDR-style log-bucketed histogram of non-negative 64-bit values
/// (latencies in ns, sweep widths, queue depths).
///
/// Bucket layout (fixed, identical for every instance — merge needs no
/// negotiation): values < 32 get exact unit buckets; above that, each
/// power-of-two octave splits into 2^kSubBits = 32 linear sub-buckets,
/// bounding the relative quantization error by 1/32 ~ 3.1% (half that at
/// the midpoint representative).  1920 buckets cover the full uint64
/// range in 15 KiB.
///
/// record() is wait-free (relaxed fetch_adds) except for the min/max
/// update, a bounded CAS that almost always hits on the first try.
/// merge() adds bucket-for-bucket and is order- and shard-invariant:
/// merging K shard histograms equals the single-run histogram exactly.
class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 5;
  static constexpr std::size_t kLinear = std::size_t{1} << kSubBits;
  static constexpr std::size_t kBucketCount = (64 - kSubBits + 1) * kLinear;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Bucket of \p value: identity below kLinear, then
  /// (octave, top kSubBits mantissa bits).
  [[nodiscard]] static constexpr std::size_t bucket_index(
      std::uint64_t value) noexcept {
    if (value < kLinear) {
      return static_cast<std::size_t>(value);
    }
    const unsigned exp = static_cast<unsigned>(std::bit_width(value)) - 1;
    const auto mantissa = static_cast<std::size_t>(
        (value >> (exp - kSubBits)) & (kLinear - 1));
    return ((static_cast<std::size_t>(exp) - kSubBits + 1) << kSubBits) +
           mantissa;
  }

  /// Smallest value mapping to bucket \p index.
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(
      std::size_t index) noexcept {
    const std::size_t group = index >> kSubBits;
    if (group == 0) {
      return index;
    }
    const std::uint64_t mantissa = index & (kLinear - 1);
    return (kLinear + mantissa) << (group - 1);
  }

  /// Number of distinct values mapping to bucket \p index.
  [[nodiscard]] static constexpr std::uint64_t bucket_width(
      std::size_t index) noexcept {
    const std::size_t group = index >> kSubBits;
    return group == 0 ? 1 : std::uint64_t{1} << (group - 1);
  }

  /// Largest value mapping to bucket \p index (the Prometheus `le`).
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(
      std::size_t index) noexcept {
    return bucket_lower(index) + bucket_width(index) - 1;
  }

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Exact largest recorded value (0 when empty).
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  /// Exact smallest recorded value (0 when empty).
  [[nodiscard]] std::uint64_t min() const noexcept {
    const std::uint64_t value = min_.load(std::memory_order_relaxed);
    return value == kEmptyMin ? 0 : value;
  }

  /// Fold \p other into this histogram bucket-for-bucket (see class
  /// comment; order- and shard-invariant).
  void merge(const LatencyHistogram& other) noexcept;

  /// Plain-integer copy for queries (exact once writers quiesce).
  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// snapshot().quantile(q) without keeping the snapshot.
  [[nodiscard]] double quantile(double q) const { return snapshot().quantile(q); }

 private:
  static constexpr std::uint64_t kEmptyMin = ~std::uint64_t{0};

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> min_{kEmptyMin};
};

/// RAII latency recorder for instrumented paths: records the scope's
/// duration into \p histogram, or does nothing at all (no clock reads)
/// when the histogram is null or telemetry is idle — the disabled-mode
/// fast path costs one relaxed load and a never-taken branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* histogram) noexcept
      : histogram_(histogram != nullptr && enabled() ? histogram : nullptr),
        start_ns_(histogram_ != nullptr ? now_ns() : 0) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->record(now_ns() - start_ns_);
    }
  }

 private:
  LatencyHistogram* histogram_;
  std::uint64_t start_ns_;
};

/// record() gated the same way ScopedTimer is, for non-duration values
/// (sweep widths, sizes).
inline void record_if_enabled(LatencyHistogram* histogram,
                              std::uint64_t value) noexcept {
  if (histogram != nullptr && enabled()) {
    histogram->record(value);
  }
}

}  // namespace rfade::telemetry
