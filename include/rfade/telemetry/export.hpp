#pragma once

/// \file export.hpp
/// \brief Registry exporters: Prometheus text exposition and a JSON
///        snapshot.
///
/// Both walk the registry's sorted entries, so output is deterministic
/// for a quiesced process.  Histograms export in the native Prometheus
/// histogram shape (cumulative `_bucket{le="..."}` series ending at
/// `le="+Inf"`, plus `_sum` and `_count`); only occupied buckets are
/// emitted, which keeps a 1920-bucket instrument to a handful of lines.
/// The JSON snapshot adds the derived read-side values (min/max/mean,
/// p50/p90/p99) that a dashboard would otherwise recompute.

#include <string>

#include "rfade/telemetry/registry.hpp"

namespace rfade::telemetry {

/// Version of the JSON snapshot document layout, exported as the
/// top-level "schema_version" field.  Bump when a consumer-visible
/// shape change lands (2: added the field itself alongside the
/// link-level metrics gauge families).
inline constexpr int kJsonSchemaVersion = 2;

/// Prometheus text exposition (version 0.0.4) of every instrument in
/// \p registry — serve it at /metrics or dump it after a run.
[[nodiscard]] std::string prometheus_text(
    const Registry& registry = Registry::global());

/// One JSON document with every counter, gauge and histogram (occupied
/// buckets, count/sum/min/max, p50/p90/p99).
[[nodiscard]] std::string json_snapshot(
    const Registry& registry = Registry::global());

}  // namespace rfade::telemetry
