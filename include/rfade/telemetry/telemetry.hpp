#pragma once

/// \file telemetry.hpp
/// \brief Umbrella header for the telemetry subsystem: instruments
///        (Counter/Gauge/LatencyHistogram/ScopedTimer), the named
///        Registry, trace Spans, and the Prometheus/JSON exporters.
///
/// Quick start:
///
///   rfade::telemetry::set_enabled(true);            // metrics opt-in
///   rfade::telemetry::Tracer::global().set_enabled(true);  // traces
///   ... run the serving / streaming workload ...
///   std::cout << rfade::telemetry::prometheus_text();
///   write_file("trace.json",
///              rfade::telemetry::Tracer::global().chrome_trace_json());
///
/// Compile out every hot-path instrument with -DRFADE_TELEMETRY=OFF
/// (CMake) — the API keeps compiling, instruments simply never register
/// or record.

#include "rfade/telemetry/export.hpp"
#include "rfade/telemetry/instruments.hpp"
#include "rfade/telemetry/registry.hpp"
#include "rfade/telemetry/trace.hpp"
