#pragma once

/// \file registry.hpp
/// \brief Named-instrument registry: the process-wide scrape surface.
///
/// Instruments are identified by (name, labels) where labels is a
/// pre-formatted Prometheus label body such as `backend="overlap-save"`
/// (see telemetry::label).  Lookup is mutex-guarded and intended to run
/// once per instrumented object (constructors, function-local statics);
/// hot paths hold the returned shared_ptr and never touch the registry
/// again.  Instruments are shared: two callers asking for the same
/// (name, labels) get the same instrument, and the registry keeps every
/// instrument alive for exporters even after its registrant dies (the
/// values are monotonic, so a late scrape still reads truth).
///
/// Exporters (export.hpp) iterate the sorted entries, so exposition
/// output is deterministic.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rfade/telemetry/instruments.hpp"

namespace rfade::telemetry {

/// `key="value"` — one Prometheus label pair; join with commas for more.
[[nodiscard]] std::string label(std::string_view key, std::string_view value);

/// One named counter row as exporters see it.
struct CounterEntry {
  std::string name;
  std::string labels;
  std::uint64_t value = 0;
};

struct GaugeEntry {
  std::string name;
  std::string labels;
  double value = 0.0;
};

struct HistogramEntry {
  std::string name;
  std::string labels;
  std::shared_ptr<const LatencyHistogram> histogram;
};

/// Registry of named instruments (see file comment).  Separate instances
/// are fully independent — tests use local registries; the library's
/// instrumented paths use global().
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in instrument registers with.
  static Registry& global();

  /// The instrument named (\p name, \p labels), created on first use.
  [[nodiscard]] std::shared_ptr<Counter> counter(const std::string& name,
                                                 const std::string& labels = {});
  [[nodiscard]] std::shared_ptr<Gauge> gauge(const std::string& name,
                                             const std::string& labels = {});
  [[nodiscard]] std::shared_ptr<LatencyHistogram> histogram(
      const std::string& name, const std::string& labels = {});

  /// Sorted snapshots of every registered instrument (name, then labels).
  [[nodiscard]] std::vector<CounterEntry> counters() const;
  [[nodiscard]] std::vector<GaugeEntry> gauges() const;
  [[nodiscard]] std::vector<HistogramEntry> histograms() const;

  /// Drop every instrument (test isolation; outstanding shared_ptrs stay
  /// valid but orphaned).
  void clear();

 private:
  using Key = std::pair<std::string, std::string>;

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<Counter>> counters_;
  std::map<Key, std::shared_ptr<Gauge>> gauges_;
  std::map<Key, std::shared_ptr<LatencyHistogram>> histograms_;
};

}  // namespace rfade::telemetry
