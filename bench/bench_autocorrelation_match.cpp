// Experiment E8 — temporal statistics of the real-time generator
// (Sec. 5 / Eq. 20): each colored branch must keep the normalised
// autocorrelation J0(2 pi fm d), while the lag-0 cross-covariance across
// branches equals the desired K.  A sum-of-sinusoids Clarke generator is
// included as an independent reference construction.

#include <cmath>
#include <cstdio>

#include "rfade/baselines/sum_of_sinusoids.hpp"
#include "rfade/channel/spectral.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/doppler/filter.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/special/bessel.hpp"
#include "rfade/stats/autocorrelation.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/support/csv.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;
using numeric::CMatrix;

int main() {
  const double fm = 0.05;
  const std::size_t m = 4096;
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());

  core::RealTimeOptions options;
  options.idft_size = m;
  options.normalized_doppler = fm;
  options.input_variance_per_dim = 0.5;
  const core::RealTimeGenerator generator(k, options);

  // Measured branch autocorrelation, averaged over blocks.
  const std::size_t max_lag = 80;
  numeric::RVector measured(max_lag + 1, 0.0);
  stats::CovarianceAccumulator lag0(3);
  random::Rng rng(0xE8);
  const int blocks = 24;
  for (int b = 0; b < blocks; ++b) {
    const CMatrix block = generator.generate_block(rng);
    numeric::CVector series(block.rows());
    numeric::CVector z(3);
    for (std::size_t l = 0; l < block.rows(); ++l) {
      series[l] = block(l, 0);
      for (std::size_t j = 0; j < 3; ++j) {
        z[j] = block(l, j);
      }
      lag0.add(z);
    }
    const auto rho = stats::normalized_autocorrelation(series, max_lag);
    for (std::size_t d = 0; d <= max_lag; ++d) {
      measured[d] += rho[d] / blocks;
    }
  }

  // Sum-of-sinusoids reference.
  const baselines::SumOfSinusoidsGenerator sos(64, fm);
  numeric::RVector sos_measured(max_lag + 1, 0.0);
  random::Rng rng_sos(0xE85);
  const int sos_blocks = 60;
  for (int b = 0; b < sos_blocks; ++b) {
    const auto block = sos.generate_block(m, rng_sos);
    const auto rho = stats::normalized_autocorrelation(block, max_lag);
    for (std::size_t d = 0; d <= max_lag; ++d) {
      sos_measured[d] += rho[d] / sos_blocks;
    }
  }

  const auto filter_theory = doppler::theoretical_normalized_autocorrelation(
      doppler::young_beaulieu_filter(m, fm), max_lag);

  support::TablePrinter table(
      "E8: normalised autocorrelation, fm = 0.05 (paper Eq. 20 target: J0)");
  table.set_header({"lag d", "J0(2 pi fm d)", "filter g[d]/g[0]",
                    "measured (proposed)", "measured (sum-of-sinusoids)"});
  support::CsvWriter csv("autocorrelation_match.csv");
  csv.write_row({"lag", "j0", "filter_theory", "proposed", "sos"});
  for (std::size_t d = 0; d <= max_lag; ++d) {
    const double j0 = special::bessel_j0(2.0 * M_PI * fm * double(d));
    csv.write_numeric_row({double(d), j0, filter_theory[d], measured[d],
                           sos_measured[d]});
    if (d % 8 == 0) {
      table.add_row({std::to_string(d), support::fixed(j0, 4),
                     support::fixed(filter_theory[d], 4),
                     support::fixed(measured[d], 4),
                     support::fixed(sos_measured[d], 4)});
    }
  }
  table.print();

  const CMatrix khat = lag0.covariance();
  std::printf("\nlag-0 cross-covariance check: ||K_hat - K||_F / ||K||_F = %.4f"
              " (over %d blocks of %zu samples)\n",
              stats::relative_frobenius_error(khat, k), blocks, m);
  std::printf("wrote full series to autocorrelation_match.csv\n");
  std::printf("expected shape: all three curves track J0 through its first "
              "zeros near d=7.65 and d=17.6.\n");
  return 0;
}
