// Experiment E9 — every shortcoming the paper's Sec. 1 attributes to the
// conventional methods, demonstrated on concrete covariance specifications:
//
//   scenario A: equal-power, positive-definite, complex K   (Eq. 22)
//   scenario B: unequal powers, positive definite
//   scenario C: equal-power, NOT positive semi-definite
//   scenario D: rank-deficient (PSD but singular)
//
// For each (method, scenario) pair the harness reports OK + measured
// covariance error, a BIASED result (method runs but realises a different
// covariance), or the exception class it failed with.

#include <cmath>
#include <cstdio>
#include <functional>

#include "rfade/baselines/beaulieu_merani.hpp"
#include "rfade/baselines/natarajan.hpp"
#include "rfade/baselines/salz_winters.hpp"
#include "rfade/baselines/sorooshyari_daut.hpp"
#include "rfade/channel/spectral.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

namespace {

constexpr std::size_t kSamples = 60000;

/// Measured relative covariance error of a sampling closure.
double measure(std::size_t dim,
               const std::function<numeric::CVector(random::Rng&)>& draw,
               const CMatrix& target) {
  random::Rng rng(0xE9);
  stats::CovarianceAccumulator acc(dim);
  for (std::size_t i = 0; i < kSamples; ++i) {
    acc.add(draw(rng));
  }
  return stats::relative_frobenius_error(acc.covariance(), target);
}

std::string run_method(const std::string& label, const CMatrix& k,
                       const std::function<std::function<numeric::CVector(
                           random::Rng&)>(const CMatrix&)>& build) {
  (void)label;
  try {
    const auto draw = build(k);
    const double err = measure(k.rows(), draw, k);
    if (err > 0.1) {
      return "BIASED (err vs K = " + support::fixed(err, 3) + ")";
    }
    return "OK (err " + support::scientific(err, 1) + ")";
  } catch (const NotPositiveDefiniteError&) {
    return "FAIL: not positive definite";
  } catch (const ValueError& e) {
    std::string what = e.what();
    if (what.find("equal power") != std::string::npos) {
      return "FAIL: equal powers only";
    }
    if (what.find("N = 2") != std::string::npos) {
      return "FAIL: N = 2 only";
    }
    return "FAIL: " + what;
  }
}

CMatrix unequal_power_pd() {
  core::CovarianceBuilder builder(3);
  builder.set_gaussian_power(0, 0.5)
      .set_gaussian_power(1, 2.0)
      .set_gaussian_power(2, 4.0);
  builder.set_cross_entry(0, 1, cdouble(0.4, 0.2));
  builder.set_cross_entry(1, 2, cdouble(1.0, -0.5));
  builder.set_cross_entry(0, 2, cdouble(0.3, 0.1));
  return builder.build();
}

CMatrix equal_power_non_psd() {
  core::CovarianceBuilder builder(3);
  for (std::size_t j = 0; j < 3; ++j) {
    builder.set_gaussian_power(j, 1.0);
  }
  builder.set_cross_entry(0, 1, cdouble(0.9, 0.0));
  builder.set_cross_entry(1, 2, cdouble(0.9, 0.0));
  builder.set_cross_entry(0, 2, cdouble(-0.5, 0.0));
  return builder.build();
}

CMatrix rank_deficient_psd() {
  // K = v v^H + small full-rank part only on one branch pair => singular.
  CMatrix k(2, 2, cdouble{});
  const numeric::CVector v = {cdouble(1, 0), cdouble(0.6, 0.8)};
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      k(i, j) = v[i] * std::conj(v[j]);
    }
  }
  return k;
}

}  // namespace

int main() {
  const std::vector<std::pair<std::string, CMatrix>> scenarios = {
      {"A: eq-power PD complex (Eq.22)",
       channel::spectral_covariance_matrix(channel::paper_spectral_scenario())},
      {"B: unequal power PD", unequal_power_pd()},
      {"C: eq-power non-PSD", equal_power_non_psd()},
      {"D: rank-deficient PSD", rank_deficient_psd()},
  };

  // Method adapters returning a draw closure.
  using Builder = std::function<std::function<numeric::CVector(random::Rng&)>(
      const CMatrix&)>;
  const std::vector<std::pair<std::string, Builder>> methods = {
      {"proposed (this paper)",
       [](const CMatrix& k) {
         auto gen = std::make_shared<core::EnvelopeGenerator>(k);
         // Non-PSD K is *approximated*: measure against the effective one.
         return [gen](random::Rng& rng) { return gen->sample(rng); };
       }},
      {"Salz-Winters [1]",
       [](const CMatrix& k) {
         auto gen = std::make_shared<baselines::SalzWintersGenerator>(k);
         return [gen](random::Rng& rng) { return gen->sample(rng); };
       }},
      {"Beaulieu-Merani [4]",
       [](const CMatrix& k) {
         auto gen = std::make_shared<baselines::BeaulieuMeraniGenerator>(k);
         return [gen](random::Rng& rng) { return gen->sample(rng); };
       }},
      {"Natarajan [5]",
       [](const CMatrix& k) {
         auto gen = std::make_shared<baselines::NatarajanGenerator>(k);
         return [gen](random::Rng& rng) { return gen->sample(rng); };
       }},
      {"Sorooshyari-Daut [6]",
       [](const CMatrix& k) {
         auto gen = std::make_shared<baselines::SorooshyariDautGenerator>(k);
         return [gen](random::Rng& rng) { return gen->sample(rng); };
       }},
  };

  support::TablePrinter table(
      "E9: conventional-method shortcomings (paper Sec. 1), measured");
  table.set_header({"method", "A eq-pow PD", "B unequal", "C non-PSD",
                    "D rank-def"});
  for (const auto& [name, builder] : methods) {
    std::vector<std::string> row = {name};
    for (const auto& [sname, k] : scenarios) {
      if (name.rfind("proposed", 0) == 0) {
        // For the proposed method, measure against the effective (forced)
        // covariance — it approximates non-PSD K by the nearest PSD matrix.
        try {
          const core::EnvelopeGenerator gen(k);
          const double err =
              measure(k.rows(),
                      [&gen](random::Rng& rng) { return gen.sample(rng); },
                      gen.effective_covariance());
          std::string cell = "OK (err " + support::scientific(err, 1) + ")";
          if (!gen.coloring().psd.was_psd) {
            cell += " [forced PSD]";
          }
          row.push_back(cell);
        } catch (const Error& e) {
          row.push_back(std::string("FAIL: ") + e.what());
        }
      } else {
        row.push_back(run_method(name, k, builder));
      }
    }
    table.add_row(row);
  }
  table.print();

  std::printf(
      "\nexpected shape (paper Sec. 1):\n"
      "  proposed          : OK everywhere (non-PSD via nearest-PSD forcing)\n"
      "  Salz-Winters [1]  : equal powers only; fails on non-PSD\n"
      "  Beaulieu-Merani[4]: Cholesky => fails on non-PSD and rank-deficient\n"
      "  Natarajan [5]     : BIASED on complex K (real-forced covariances)\n"
      "  Sorooshyari-Daut  : equal powers only; eps-forcing lets non-PSD run;\n"
      "                      on the rank-deficient case an eigenvalue computed\n"
      "                      as +1e-17 escapes the 'lambda <= 0 -> eps' rule\n"
      "                      and Cholesky still fails — the round-off\n"
      "                      fragility the paper reports for [6].\n");
  return 0;
}
