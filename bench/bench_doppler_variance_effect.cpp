// Experiment E7 — the paper's headline fix (Sec. 5): Doppler filtering
// changes the branch variance, so the coloring step must divide by the
// analytic Eq. (19) value.  This harness quantifies:
//   * the post-filter variance sigma_g^2 across (M, fm), analytic vs
//     empirical — validating Eq. (19) itself;
//   * the achieved/desired envelope power ratio for the proposed algorithm
//     (with correction) vs the Sorooshyari-Daut combination [6] (without),
//     reproducing the failure the paper describes in Sec. 1 and Sec. 5.

#include <cmath>
#include <cstdio>

#include "rfade/baselines/sorooshyari_daut.hpp"
#include "rfade/channel/spatial.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/doppler/filter.hpp"
#include "rfade/doppler/idft_generator.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;
using numeric::CMatrix;

namespace {

double empirical_branch_variance(const doppler::IdftRayleighBranch& branch,
                                 int blocks, std::uint64_t seed) {
  random::Rng rng(seed);
  double power = 0.0;
  std::size_t count = 0;
  for (int b = 0; b < blocks; ++b) {
    const auto block = branch.generate_block(rng);
    for (const auto& v : block) {
      power += std::norm(v);
    }
    count += block.size();
  }
  return power / double(count);
}

double mean_output_power(const CMatrix& block) {
  double power = 0.0;
  for (std::size_t l = 0; l < block.rows(); ++l) {
    power += std::norm(block(l, 0));
  }
  return power / double(block.rows());
}

}  // namespace

int main() {
  const double sigma_orig2 = 0.5;

  support::TablePrinter eq19(
      "E7a: Eq. (19) post-filter variance sigma_g^2 (sigma_orig^2 = 1/2)");
  eq19.set_header({"M", "fm", "km", "analytic", "empirical", "ratio",
                   "input 2*sigma_orig^2"});
  for (const std::size_t m :
       {std::size_t{1024}, std::size_t{4096}, std::size_t{16384}}) {
    for (const double fm : {0.01, 0.05, 0.2}) {
      if (fm * double(m) < 1.0) {
        continue;
      }
      const doppler::IdftRayleighBranch branch(m, fm, sigma_orig2);
      const double analytic = branch.output_variance();
      const double empirical =
          empirical_branch_variance(branch, m >= 16384 ? 6 : 24, 0xE7);
      eq19.add_row({std::to_string(m), support::fixed(fm, 3),
                    std::to_string(branch.filter().km),
                    support::scientific(analytic),
                    support::scientific(empirical),
                    support::fixed(empirical / analytic, 3),
                    support::fixed(2.0 * sigma_orig2, 3)});
    }
  }
  eq19.print();

  // Achieved power: proposed (Eq. 19 correction) vs Sorooshyari-Daut [6].
  const CMatrix k =
      channel::spatial_covariance_matrix(channel::paper_spatial_scenario());
  support::TablePrinter power(
      "E7b: achieved/desired power ratio — proposed vs variance-unaware [6]");
  power.set_header({"M", "fm", "proposed", "ref [6]",
                    "predicted [6] ratio = sigma_g^2 / (2 sigma_orig^2)"});
  for (const std::size_t m : {std::size_t{1024}, std::size_t{4096}}) {
    for (const double fm : {0.02, 0.05, 0.1}) {
      core::RealTimeOptions options;
      options.idft_size = m;
      options.normalized_doppler = fm;
      options.input_variance_per_dim = sigma_orig2;
      const core::RealTimeGenerator proposed(k, options);
      const baselines::SorooshyariDautRealTime flawed(k, m, fm, sigma_orig2);

      random::Rng rng_a(0xE7B);
      random::Rng rng_b(0xE7C);
      double power_good = 0.0;
      double power_flawed = 0.0;
      const int blocks = 12;
      for (int b = 0; b < blocks; ++b) {
        power_good += mean_output_power(proposed.generate_block(rng_a)) / blocks;
        power_flawed += mean_output_power(flawed.generate_block(rng_b)) / blocks;
      }
      const double desired = k(0, 0).real();
      power.add_row(
          {std::to_string(m), support::fixed(fm, 3),
           support::fixed(power_good / desired, 4),
           support::scientific(power_flawed / desired),
           support::scientific(proposed.branch_output_variance() /
                               (2.0 * sigma_orig2))});
    }
  }
  std::printf("\n");
  power.print();

  std::printf(
      "\npaper claim (Sec. 5): '[6] fails to generate Rayleigh fading\n"
      "envelopes corresponding to a desired covariance matrix in a real-time\n"
      "scenario' — the proposed ratio stays ~1.0000 while [6] is off by the\n"
      "filter gain (orders of magnitude, e.g. ~1.9e-5 at M=4096, fm=0.05).\n");
  return 0;
}
