// Experiment E5 — the Sec. 4.5 statistical claims, quantified:
//   * sample covariance converges to the desired K at the Monte-Carlo
//     1/sqrt(n) rate, for equal and unequal powers, PSD and non-PSD K;
//   * envelope means/variances match Eqs. (14)-(15);
//   * envelopes pass the Rayleigh KS test.
//
// Exit status is the accuracy gate CI runs unconditionally: nonzero when
// any case misses the convergence rate, the moment bands, or the KS
// threshold — statistical drift fails the build, not just the table.

#include <cstdio>
#include <cstdlib>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/table.hpp"
#include "rfade/support/timer.hpp"

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

namespace {

struct Case {
  std::string name;
  CMatrix k;
};

CMatrix unequal_power_matrix(std::size_t n) {
  core::CovarianceBuilder builder(n);
  for (std::size_t j = 0; j < n; ++j) {
    builder.set_gaussian_power(j, 0.5 + static_cast<double>(j));
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double scale =
          0.3 * std::sqrt((0.5 + double(a)) * (0.5 + double(b)));
      builder.set_cross_entry(a, b, cdouble(scale, 0.5 * scale / double(b + 1)));
    }
  }
  return builder.build();
}

CMatrix non_psd_matrix() {
  core::CovarianceBuilder builder(3);
  builder.set_gaussian_power(0, 1.0)
      .set_gaussian_power(1, 1.0)
      .set_gaussian_power(2, 1.0);
  builder.set_cross_entry(0, 1, cdouble(0.9, 0.0));
  builder.set_cross_entry(1, 2, cdouble(0.9, 0.0));
  builder.set_cross_entry(0, 2, cdouble(-0.5, 0.0));
  return builder.build();
}

}  // namespace

int main() {
  bool ok = true;
  std::vector<Case> cases;
  cases.push_back({"eq-power PD (Eq.22), N=3",
                   channel::spectral_covariance_matrix(
                       channel::paper_spectral_scenario())});
  cases.push_back({"unequal power PD, N=4", unequal_power_matrix(4)});
  cases.push_back({"unequal power PD, N=8", unequal_power_matrix(8)});
  cases.push_back({"eq-power NON-PSD, N=3", non_psd_matrix()});

  support::TablePrinter convergence(
      "E5a: covariance convergence ||K_hat - K_bar||_F / ||K_bar||_F");
  convergence.set_header(
      {"case", "n=1e3", "n=1e4", "n=1e5", "n=1e6", "~1/sqrt(10) steps?"});

  for (const Case& c : cases) {
    const core::EnvelopeGenerator gen(c.k);
    std::vector<std::string> row = {c.name};
    numeric::RVector errors;
    for (const std::size_t n :
         {std::size_t{1000}, std::size_t{10000}, std::size_t{100000},
          std::size_t{1000000}}) {
      const auto report = core::validate_generator(
          gen, {.samples = n, .seed = 0xE5, .parallel = true,
                .chunk_size = 8192, .ks_samples_per_branch = 1000});
      errors.push_back(report.covariance_rel_error);
      row.push_back(support::scientific(report.covariance_rel_error));
    }
    // Each decade of samples should shrink the error by ~sqrt(10)=3.16.
    const double overall_ratio = errors.front() / errors.back();
    row.push_back(overall_ratio > 8.0 ? "yes" : "weak");
    if (overall_ratio <= 8.0) {
      ok = false;
    }
    convergence.add_row(row);
  }
  convergence.print();

  support::TablePrinter moments(
      "E5b: envelope moments vs Eqs. (14)-(15) and Rayleigh KS (n = 4e5)");
  moments.set_header({"case", "max |mean err|", "max |var err|",
                      "worst KS p-value", "Rayleigh?"});
  for (const Case& c : cases) {
    const core::EnvelopeGenerator gen(c.k);
    const auto report = core::validate_generator(
        gen, {.samples = 400000, .seed = 0xE5B, .parallel = true,
              .chunk_size = 8192, .ks_samples_per_branch = 50000});
    double mean_err = 0.0;
    double var_err = 0.0;
    for (std::size_t j = 0; j < gen.dimension(); ++j) {
      mean_err = std::max(mean_err, report.envelope_mean_rel_error[j]);
      var_err = std::max(var_err, report.envelope_variance_rel_error[j]);
    }
    moments.add_row({c.name, support::scientific(mean_err),
                     support::scientific(var_err),
                     support::fixed(report.worst_ks_p_value, 4),
                     report.worst_ks_p_value > 1e-3 ? "yes" : "NO"});
    if (report.worst_ks_p_value <= 1e-3 || mean_err > 0.01 ||
        var_err > 0.05) {
      ok = false;
    }
  }
  std::printf("\n");
  moments.print();

  std::printf("\npaper claim (Sec. 4.5): E{r} = 0.8862 sigma_g, "
              "Var{r} = 0.2146 sigma_g^2, E[ZZ^H] = K_bar — all measured.\n");
  std::printf("accuracy gate: %s\n", ok ? "PASS" : "FAIL");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
