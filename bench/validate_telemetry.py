#!/usr/bin/env python3
"""Validate the telemetry exporters' output files.

CI runs examples/telemetry_dashboard with --prom/--json/--trace and then
points this script at the three files.  Checks, per format:

  Prometheus text exposition (--prom)
    * every non-comment line is `name value` or `name{labels} value`
      with a parseable float value;
    * every sample's metric family has a preceding `# TYPE` line, and
      no family is declared twice;
    * for each histogram family: the `_bucket` series is cumulative
      (non-decreasing in file order), ends with le="+Inf", and the
      +Inf count equals the `_count` sample.

  JSON snapshot (--json)
    * parses, with counters/gauges/histograms arrays;
    * each histogram carries count/sum/min/max/mean/p50/p90/p99 and a
      bucket list whose counts sum to `count`;
    * quantiles are monotone: p50 <= p90 <= p99 <= max.

  Chrome trace (--trace)
    * parses, with a traceEvents array of complete events
      (ph == "X", numeric ts/dur >= 0, pid/tid present).

Exit status: 0 OK, 1 validation failure, 2 usage error.
"""

import argparse
import json
import re
import sys

SAMPLE_RE = re.compile(
    r'^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)'
    r'(?P<labels>\{[^}]*\})?'
    r' (?P<value>[^ ]+)$')
TYPE_RE = re.compile(
    r'^# TYPE (?P<name>[A-Za-z_:][A-Za-z0-9_:]*)'
    r' (?P<kind>counter|gauge|histogram)$')
LE_RE = re.compile(r'le="(?P<le>[^"]+)"')

errors = []


def err(message):
    errors.append(message)


def family_of(name, kind_by_family):
    """Strip the histogram sample suffix to find the declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        base = name[: -len(suffix)] if name.endswith(suffix) else None
        if base and kind_by_family.get(base) == "histogram":
            return base
    return name


def check_prometheus(path):
    with open(path) as f:
        lines = f.read().splitlines()
    kind_by_family = {}
    # histogram family -> {"series": {labels-minus-le: [counts...]},
    #                      "inf": {...}, "count": {...}}
    histograms = {}
    for lineno, line in enumerate(lines, 1):
        where = f"{path}:{lineno}"
        if not line:
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m is None:
                if line.startswith("# TYPE"):
                    err(f"{where}: malformed TYPE line: {line!r}")
                continue
            if m.group("name") in kind_by_family:
                err(f"{where}: duplicate TYPE for {m.group('name')}")
            kind_by_family[m.group("name")] = m.group("kind")
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            err(f"{where}: unparseable sample line: {line!r}")
            continue
        try:
            value = float(m.group("value"))
        except ValueError:
            err(f"{where}: non-numeric value: {line!r}")
            continue
        name = m.group("name")
        family = family_of(name, kind_by_family)
        if family not in kind_by_family:
            err(f"{where}: sample {name} has no preceding # TYPE")
            continue
        if kind_by_family[family] != "histogram":
            continue
        h = histograms.setdefault(family, {"series": {}, "inf": {},
                                           "count": {}})
        labels = m.group("labels") or "{}"
        le = LE_RE.search(labels)
        # Key on the labels minus the le pair so the bucket lines collate
        # with their _sum/_count (rfade label values never contain commas).
        pairs = [p for p in labels[1:-1].split(",")
                 if p and not p.startswith("le=")]
        key = "{" + ",".join(pairs) + "}"
        if name.endswith("_bucket"):
            if le is None:
                err(f"{where}: _bucket sample without an le label")
            elif le.group("le") == "+Inf":
                h["inf"][key] = value
            else:
                h["series"].setdefault(key, []).append(value)
        elif name.endswith("_count"):
            h["count"][key] = value

    for family, h in sorted(histograms.items()):
        for key in sorted(set(h["series"]) | set(h["inf"]) | set(h["count"])):
            series = h["series"].get(key, [])
            if any(b < a for a, b in zip(series, series[1:])):
                err(f"{path}: {family}{key}: bucket series not cumulative: "
                    f"{series}")
            if key not in h["inf"]:
                err(f"{path}: {family}{key}: no le=\"+Inf\" bucket")
                continue
            if series and series[-1] > h["inf"][key]:
                err(f"{path}: {family}{key}: last bucket exceeds +Inf")
            if key not in h["count"]:
                err(f"{path}: {family}{key}: no _count sample")
            elif h["inf"][key] != h["count"][key]:
                err(f"{path}: {family}{key}: +Inf bucket "
                    f"{h['inf'][key]} != _count {h['count'][key]}")
    if not kind_by_family:
        err(f"{path}: no metric families at all")
    print(f"{path}: {len(kind_by_family)} families "
          f"({len(histograms)} histograms)")


def check_json_snapshot(path):
    with open(path) as f:
        try:
            snapshot = json.load(f)
        except json.JSONDecodeError as e:
            err(f"{path}: invalid JSON: {e}")
            return
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), list):
            err(f"{path}: missing {section} array")
            return
    for h in snapshot["histograms"]:
        name = h.get("name", "?")
        for field in ("count", "sum", "min", "max", "mean",
                      "p50", "p90", "p99", "buckets"):
            if field not in h:
                err(f"{path}: histogram {name}: missing {field}")
        bucket_total = sum(b.get("count", 0) for b in h.get("buckets", []))
        if bucket_total != h.get("count"):
            err(f"{path}: histogram {name}: bucket counts sum to "
                f"{bucket_total}, count says {h.get('count')}")
        quantiles = [h.get("p50", 0), h.get("p90", 0), h.get("p99", 0),
                     h.get("max", 0)]
        if quantiles != sorted(quantiles):
            err(f"{path}: histogram {name}: non-monotone quantiles "
                f"{quantiles}")
    print(f"{path}: {len(snapshot['counters'])} counters, "
          f"{len(snapshot['gauges'])} gauges, "
          f"{len(snapshot['histograms'])} histograms")


def check_trace(path):
    with open(path) as f:
        try:
            trace = json.load(f)
        except json.JSONDecodeError as e:
            err(f"{path}: invalid JSON: {e}")
            return
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        err(f"{path}: no traceEvents array")
        return
    for i, event in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if event.get("ph") != "X":
            err(f"{where}: ph is {event.get('ph')!r}, want complete 'X'")
        if not isinstance(event.get("name"), str) or not event["name"]:
            err(f"{where}: missing name")
        for field in ("ts", "dur"):
            value = event.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                err(f"{where}: bad {field}: {value!r}")
        for field in ("pid", "tid"):
            if field not in event:
                err(f"{where}: missing {field}")
    print(f"{path}: {len(events)} trace events")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--prom", help="Prometheus text exposition file")
    parser.add_argument("--json", help="JSON snapshot file")
    parser.add_argument("--trace", help="Chrome trace JSON file")
    opts = parser.parse_args()
    if not (opts.prom or opts.json or opts.trace):
        parser.error("nothing to validate: pass --prom/--json/--trace")
    try:
        if opts.prom:
            check_prometheus(opts.prom)
        if opts.json:
            check_json_snapshot(opts.json)
        if opts.trace:
            check_trace(opts.trace)
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if errors:
        print(f"\n{len(errors)} telemetry validation failures:",
              file=sys.stderr)
        for message in errors:
            print(f"  - {message}", file=sys.stderr)
        return 1
    print("\nall telemetry outputs validate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
