#!/usr/bin/env python3
"""Validate the telemetry exporters' output files.

CI runs examples/telemetry_dashboard with --prom/--json/--trace and then
points this script at the three files.  Checks, per format:

  Prometheus text exposition (--prom)
    * every non-comment line is `name value` or `name{labels} value`
      with a parseable float value;
    * every sample's metric family has a preceding `# TYPE` line, and
      no family is declared twice;
    * for each histogram family: the `_bucket` series is cumulative
      (non-decreasing in file order), ends with le="+Inf", and the
      +Inf count equals the `_count` sample.

  JSON snapshot (--json)
    * parses, with an integer schema_version >= 2 and
      counters/gauges/histograms arrays;
    * each histogram carries count/sum/min/max/mean/p50/p90/p99 and a
      bucket list whose counts sum to `count`;
    * quantiles are monotone: p50 <= p90 <= p99 <= max.

  Chrome trace (--trace)
    * parses, with a traceEvents array of complete events
      (ph == "X", numeric ts/dur >= 0, pid/tid present).

  Link-level metrics families (--require-metrics, needs --prom + --json)
    * every rfade_metrics_* gauge family the MetricsTap publishes is
      present in the Prometheus text (declared as a gauge) and in the
      JSON gauges array, with identical (name, labels) sample sets;
    * rfade_metrics_observed_samples > 0, rfade_metrics_healthy is 0/1;
    * per-family label keys are right: lcr/afd carry branch+rho, acf and
      mi_autocov carry branch+lag, drift carries metric+branch+parameter.

Exit status: 0 OK, 1 validation failure, 2 usage error.
"""

import argparse
import json
import re
import sys

SAMPLE_RE = re.compile(
    r'^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)'
    r'(?P<labels>\{[^}]*\})?'
    r' (?P<value>[^ ]+)$')
TYPE_RE = re.compile(
    r'^# TYPE (?P<name>[A-Za-z_:][A-Za-z0-9_:]*)'
    r' (?P<kind>counter|gauge|histogram)$')
LE_RE = re.compile(r'le="(?P<le>[^"]+)"')

errors = []


def err(message):
    errors.append(message)


def family_of(name, kind_by_family):
    """Strip the histogram sample suffix to find the declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        base = name[: -len(suffix)] if name.endswith(suffix) else None
        if base and kind_by_family.get(base) == "histogram":
            return base
    return name


def check_prometheus(path):
    """Returns (kind_by_family, gauge_samples: {(name, labels): value})."""
    with open(path) as f:
        lines = f.read().splitlines()
    kind_by_family = {}
    gauge_samples = {}
    # histogram family -> {"series": {labels-minus-le: [counts...]},
    #                      "inf": {...}, "count": {...}}
    histograms = {}
    for lineno, line in enumerate(lines, 1):
        where = f"{path}:{lineno}"
        if not line:
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m is None:
                if line.startswith("# TYPE"):
                    err(f"{where}: malformed TYPE line: {line!r}")
                continue
            if m.group("name") in kind_by_family:
                err(f"{where}: duplicate TYPE for {m.group('name')}")
            kind_by_family[m.group("name")] = m.group("kind")
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            err(f"{where}: unparseable sample line: {line!r}")
            continue
        try:
            value = float(m.group("value"))
        except ValueError:
            err(f"{where}: non-numeric value: {line!r}")
            continue
        name = m.group("name")
        family = family_of(name, kind_by_family)
        if family not in kind_by_family:
            err(f"{where}: sample {name} has no preceding # TYPE")
            continue
        if kind_by_family[family] == "gauge":
            gauge_samples[(name, m.group("labels") or "")] = value
        if kind_by_family[family] != "histogram":
            continue
        h = histograms.setdefault(family, {"series": {}, "inf": {},
                                           "count": {}})
        labels = m.group("labels") or "{}"
        le = LE_RE.search(labels)
        # Key on the labels minus the le pair so the bucket lines collate
        # with their _sum/_count (rfade label values never contain commas).
        pairs = [p for p in labels[1:-1].split(",")
                 if p and not p.startswith("le=")]
        key = "{" + ",".join(pairs) + "}"
        if name.endswith("_bucket"):
            if le is None:
                err(f"{where}: _bucket sample without an le label")
            elif le.group("le") == "+Inf":
                h["inf"][key] = value
            else:
                h["series"].setdefault(key, []).append(value)
        elif name.endswith("_count"):
            h["count"][key] = value

    for family, h in sorted(histograms.items()):
        for key in sorted(set(h["series"]) | set(h["inf"]) | set(h["count"])):
            series = h["series"].get(key, [])
            if any(b < a for a, b in zip(series, series[1:])):
                err(f"{path}: {family}{key}: bucket series not cumulative: "
                    f"{series}")
            if key not in h["inf"]:
                err(f"{path}: {family}{key}: no le=\"+Inf\" bucket")
                continue
            if series and series[-1] > h["inf"][key]:
                err(f"{path}: {family}{key}: last bucket exceeds +Inf")
            if key not in h["count"]:
                err(f"{path}: {family}{key}: no _count sample")
            elif h["inf"][key] != h["count"][key]:
                err(f"{path}: {family}{key}: +Inf bucket "
                    f"{h['inf'][key]} != _count {h['count'][key]}")
    if not kind_by_family:
        err(f"{path}: no metric families at all")
    print(f"{path}: {len(kind_by_family)} families "
          f"({len(histograms)} histograms)")
    return kind_by_family, gauge_samples


def check_json_snapshot(path):
    with open(path) as f:
        try:
            snapshot = json.load(f)
        except json.JSONDecodeError as e:
            err(f"{path}: invalid JSON: {e}")
            return None
    version = snapshot.get("schema_version")
    if not isinstance(version, int) or version < 2:
        err(f"{path}: schema_version is {version!r}, want an int >= 2")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), list):
            err(f"{path}: missing {section} array")
            return None
    for h in snapshot["histograms"]:
        name = h.get("name", "?")
        for field in ("count", "sum", "min", "max", "mean",
                      "p50", "p90", "p99", "buckets"):
            if field not in h:
                err(f"{path}: histogram {name}: missing {field}")
        bucket_total = sum(b.get("count", 0) for b in h.get("buckets", []))
        if bucket_total != h.get("count"):
            err(f"{path}: histogram {name}: bucket counts sum to "
                f"{bucket_total}, count says {h.get('count')}")
        quantiles = [h.get("p50", 0), h.get("p90", 0), h.get("p99", 0),
                     h.get("max", 0)]
        if quantiles != sorted(quantiles):
            err(f"{path}: histogram {name}: non-monotone quantiles "
                f"{quantiles}")
    print(f"{path}: {len(snapshot['counters'])} counters, "
          f"{len(snapshot['gauges'])} gauges, "
          f"{len(snapshot['histograms'])} histograms")
    return snapshot


# MetricsTap gauge family -> label keys every sample must carry.
METRICS_FAMILIES = {
    "rfade_metrics_observed_samples": set(),
    "rfade_metrics_lcr_per_sample": {"branch", "rho"},
    "rfade_metrics_afd_samples": {"branch", "rho"},
    "rfade_metrics_acf_re": {"branch", "lag"},
    "rfade_metrics_acf_im": {"branch", "lag"},
    "rfade_metrics_mi_mean": {"branch"},
    "rfade_metrics_mi_variance": {"branch"},
    "rfade_metrics_mi_autocov": {"branch", "lag"},
    "rfade_metrics_drift": {"metric", "branch", "parameter"},
    "rfade_metrics_healthy": set(),
}
LABEL_KEY_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)=')


def check_metrics(prom_path, prom_result, json_path, snapshot):
    """The link-level metrics families, cross-checked across exporters."""
    kind_by_family, gauge_samples = prom_result
    # (name, labels-without-braces) -> value for the rfade_metrics_ set.
    prom = {(name, labels.strip("{}")): value
            for (name, labels), value in gauge_samples.items()
            if name.startswith("rfade_metrics_")}
    for family, required_keys in METRICS_FAMILIES.items():
        if kind_by_family.get(family) != "gauge":
            err(f"{prom_path}: metrics family {family} not declared as "
                f"a gauge")
            continue
        samples = {key: v for key, v in prom.items() if key[0] == family}
        if not samples:
            err(f"{prom_path}: metrics family {family} has no samples")
            continue
        for (_, labels), value in samples.items():
            keys = set(LABEL_KEY_RE.findall(labels))
            if not required_keys <= keys:
                err(f"{prom_path}: {family}{{{labels}}}: missing label "
                    f"keys {sorted(required_keys - keys)}")
        if family == "rfade_metrics_observed_samples":
            if all(v <= 0 for v in samples.values()):
                err(f"{prom_path}: {family}: no samples observed")
        if family == "rfade_metrics_healthy":
            for (_, labels), value in samples.items():
                if value not in (0.0, 1.0):
                    err(f"{prom_path}: {family}{{{labels}}}: value "
                        f"{value} not 0/1")

    json_gauges = {(g.get("name"), g.get("labels", "")): g.get("value")
                   for g in snapshot["gauges"]
                   if str(g.get("name", "")).startswith("rfade_metrics_")}
    if set(json_gauges) != set(prom):
        only_prom = sorted(set(prom) - set(json_gauges))
        only_json = sorted(set(json_gauges) - set(prom))
        err(f"{json_path}: metrics gauge sets disagree with {prom_path}: "
            f"prom-only {only_prom[:5]}, json-only {only_json[:5]}")
    print(f"metrics: {len(prom)} gauge samples across "
          f"{len(METRICS_FAMILIES)} families agree across exporters")


def check_trace(path):
    with open(path) as f:
        try:
            trace = json.load(f)
        except json.JSONDecodeError as e:
            err(f"{path}: invalid JSON: {e}")
            return
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        err(f"{path}: no traceEvents array")
        return
    for i, event in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if event.get("ph") != "X":
            err(f"{where}: ph is {event.get('ph')!r}, want complete 'X'")
        if not isinstance(event.get("name"), str) or not event["name"]:
            err(f"{where}: missing name")
        for field in ("ts", "dur"):
            value = event.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                err(f"{where}: bad {field}: {value!r}")
        for field in ("pid", "tid"):
            if field not in event:
                err(f"{where}: missing {field}")
    print(f"{path}: {len(events)} trace events")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--prom", help="Prometheus text exposition file")
    parser.add_argument("--json", help="JSON snapshot file")
    parser.add_argument("--trace", help="Chrome trace JSON file")
    parser.add_argument("--require-metrics", action="store_true",
                        help="require the rfade_metrics_* gauge families "
                             "in both --prom and --json")
    opts = parser.parse_args()
    if not (opts.prom or opts.json or opts.trace):
        parser.error("nothing to validate: pass --prom/--json/--trace")
    if opts.require_metrics and not (opts.prom and opts.json):
        parser.error("--require-metrics needs both --prom and --json")
    try:
        prom_result = check_prometheus(opts.prom) if opts.prom else None
        snapshot = check_json_snapshot(opts.json) if opts.json else None
        if opts.require_metrics and prom_result and snapshot:
            check_metrics(opts.prom, prom_result, opts.json, snapshot)
        if opts.trace:
            check_trace(opts.trace)
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if errors:
        print(f"\n{len(errors)} telemetry validation failures:",
              file=sys.stderr)
        for message in errors:
            print(f"  - {message}", file=sys.stderr)
        return 1
    print("\nall telemetry outputs validate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
