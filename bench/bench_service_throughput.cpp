// Serving-layer throughput: concurrent tenants x blocks/sec through the
// ChannelService batcher at tenant counts {1, 4, 16, 64}, the plan-cache
// hit ratio those sweeps run at, and the cold-compile vs warm-cache
// session-setup cost (the acceptance lever: warm setup rides one cache
// hit + one per-seed engine build, so at N = 64 tenants per scenario the
// amortised setup must be >= 10x cheaper than compiling per tenant).
//
// Smoke mode for CI: --benchmark_min_time=0.05.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "rfade/service/channel_service.hpp"
#include "rfade/service/channel_spec.hpp"
#include "rfade/service/plan_cache.hpp"

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;
using service::ChannelSpec;
using service::ChannelService;
using service::Session;

namespace {

constexpr std::size_t kBranches = 4;
constexpr std::size_t kIdftSize = 1024;

CMatrix tridiagonal_covariance(std::size_t n) {
  CMatrix k = CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = cdouble(0.4, 0.2);
    k(i + 1, i) = cdouble(0.4, -0.2);
  }
  return k;
}

ChannelSpec stream_spec() {
  return ChannelSpec::Builder()
      .rayleigh(tridiagonal_covariance(kBranches))
      .backend(doppler::StreamBackend::OverlapSaveFir)
      .idft_size(kIdftSize)
      .doppler(0.05)
      .build();
}

/// tenants x blocks/sec through the batcher: every iteration is one
/// coalesced sweep advancing all tenants by one block.
void ServiceTenantSweep(benchmark::State& state) {
  const auto tenants = static_cast<std::size_t>(state.range(0));
  ChannelService service;
  const ChannelSpec spec = stream_spec();
  std::vector<Session> sessions;
  sessions.reserve(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    sessions.push_back(service.open_session(spec, 0xBEEF + t));
  }
  std::vector<Session*> pointers;
  pointers.reserve(tenants);
  for (Session& session : sessions) {
    pointers.push_back(&session);
  }
  for (auto _ : state) {
    const auto blocks = ChannelService::pull_blocks(pointers);
    benchmark::DoNotOptimize(blocks.data());
  }
  const auto stats = service.cache_stats();
  state.counters["tenants"] = static_cast<double>(tenants);
  state.counters["blocks_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * tenants),
      benchmark::Counter::kIsRate);
  state.counters["samples_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * tenants *
                          sessions[0].block_size() * kBranches),
      benchmark::Counter::kIsRate);
  state.counters["cache_hit_ratio"] = stats.hit_ratio();
}
BENCHMARK(ServiceTenantSweep)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// The setup pair measures tenant arrival cost at covariance dimension
/// N = 64 (instant emission: sessions ride the shared pipeline, so the
/// per-tenant state is just the handle + seed + cursor).
ChannelSpec instant_spec_n64() {
  return ChannelSpec::Builder()
      .rayleigh(tridiagonal_covariance(64))
      .instant()
      .block_size(256)
      .build();
}

/// Cold setup: every arriving tenant compiles the spec from scratch
/// (PSD forcing + the O(N^3) eigendecomposition at N = 64) — the
/// pre-serving-layer cost of standing up a tenant.
void ServiceSessionSetupCold(benchmark::State& state) {
  const ChannelSpec spec = instant_spec_n64();
  for (auto _ : state) {
    Session session(spec.compile(), 0xC01D);
    benchmark::DoNotOptimize(&session);
  }
  state.counters["setups_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(ServiceSessionSetupCold)->Unit(benchmark::kMicrosecond);

/// Warm setup: one resident compile serves every arriving tenant; a
/// session is one cache hit + a refcount bump.  setups_per_s here over
/// setups_per_s cold is the >= 10x acceptance ratio.
void ServiceSessionSetupWarm(benchmark::State& state) {
  ChannelService service;
  const ChannelSpec spec = instant_spec_n64();
  (void)service.compile(spec);  // warm the cache
  for (auto _ : state) {
    Session session = service.open_session(spec, 0xAA44);
    benchmark::DoNotOptimize(&session);
  }
  const auto stats = service.cache_stats();
  state.counters["setups_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["cache_hit_ratio"] = stats.hit_ratio();
}
BENCHMARK(ServiceSessionSetupWarm)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
