// Experiment E3 — regenerate Fig. 4(a): three equal-power Rayleigh
// envelopes with *spectral* correlation (covariance Eq. 22), produced by
// the real-time algorithm of Sec. 5 with M=4096, fm=0.05, sigma_orig^2=1/2.

#include "fig4_common.hpp"
#include "rfade/channel/spectral.hpp"

int main() {
  const auto k = rfade::channel::spectral_covariance_matrix(
      rfade::channel::paper_spectral_scenario());
  return fig4::run("E3: Fig. 4(a) — spectrally-correlated envelopes", k,
                   "fig4a_envelopes.csv", 0xF16A);
}
