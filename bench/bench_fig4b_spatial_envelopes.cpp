// Experiment E4 — regenerate Fig. 4(b): three equal-power Rayleigh
// envelopes with *spatial* correlation (covariance Eq. 23), produced by
// the real-time algorithm of Sec. 5 with M=4096, fm=0.05, sigma_orig^2=1/2.

#include "fig4_common.hpp"
#include "rfade/channel/spatial.hpp"

int main() {
  const auto k = rfade::channel::spatial_covariance_matrix(
      rfade::channel::paper_spatial_scenario());
  return fig4::run("E4: Fig. 4(b) — spatially-correlated envelopes", k,
                   "fig4b_envelopes.csv", 0xF16B);
}
