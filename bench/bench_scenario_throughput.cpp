// Scenario-layer throughput: the Rician LOS mean-add on top of the batched
// stream path (overhead must stay marginal — one add pass over the colored
// block), and the cascaded generator (two stage draws + one Hadamard
// product, so ~2x the single-stage cost).  Same (N, block) grid as
// bench_throughput_scaling so the CI regression gate can relate them.
//
// Smoke mode for CI: --benchmark_min_time=0.05.

#include <benchmark/benchmark.h>

#include "rfade/core/plan.hpp"
#include "rfade/scenario/cascaded.hpp"
#include "rfade/scenario/scenario_spec.hpp"

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

namespace {

CMatrix tridiagonal_covariance(std::size_t n) {
  CMatrix k = CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = cdouble(0.4, 0.2);
    k(i + 1, i) = cdouble(0.4, -0.2);
  }
  return k;
}

void RicianStreamParallel(benchmark::State& state) {
  // The LOS path through the same bulk pipeline: RNG + planar GEMM + mean
  // add.  Compare against BatchedStreamParallel in
  // bench_throughput_scaling at matched args for the overhead.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto block = static_cast<std::size_t>(state.range(1));
  const scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::rician(tridiagonal_covariance(n), 4.0, 0.3);
  const auto plan = spec.build_plan();
  const core::SamplePipeline pipeline = spec.make_pipeline(plan);
  std::uint64_t seed = 0x51C1A;
  for (auto _ : state) {
    const CMatrix z = pipeline.sample_stream(block, seed++);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block));
  state.SetLabel("batched + LOS mean");
}
BENCHMARK(RicianStreamParallel)
    ->ArgsProduct({{8, 32}, {4096, 16384}})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void CascadedStreamParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto block = static_cast<std::size_t>(state.range(1));
  const auto plan = core::ColoringPlan::create(tridiagonal_covariance(n));
  const scenario::CascadedRayleighGenerator gen(plan, plan);
  std::uint64_t seed = 0xCA5C;
  for (auto _ : state) {
    const CMatrix z = gen.sample_stream(block, seed++);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block));
  state.SetLabel("two stages + Hadamard");
}
BENCHMARK(CascadedStreamParallel)
    ->ArgsProduct({{8, 32}, {4096, 16384}})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void CascadedMomentDiagnostics(benchmark::State& state) {
  const auto plan = core::ColoringPlan::create(tridiagonal_covariance(8));
  const scenario::CascadedRayleighGenerator gen(plan, plan);
  for (auto _ : state) {
    const auto report = gen.envelope_moment_diagnostics(100000, 0xD1A6);
    benchmark::DoNotOptimize(report.covariance_rel_error);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(CascadedMomentDiagnostics)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
