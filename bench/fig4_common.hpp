#pragma once

// Shared harness for the Fig. 4(a)/4(b) envelope reproductions: runs the
// real-time generator with the paper's Sec. 6 Doppler parameters, converts
// the first 200 samples to dB around the RMS value (the paper's y-axis),
// prints trace statistics, and dumps the full series to CSV.

#include <cmath>
#include <cstdio>
#include <string>

#include "rfade/core/realtime.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/stats/fading_metrics.hpp"
#include "rfade/stats/moments.hpp"
#include "rfade/support/csv.hpp"
#include "rfade/support/table.hpp"

namespace fig4 {

using namespace rfade;

inline int run(const std::string& title, const numeric::CMatrix& k,
               const std::string& csv_path, std::uint64_t seed) {
  // Paper Sec. 6 parameters: M=4096 IDFT points, sigma_orig^2 = 1/2,
  // Fs=1 kHz, Fm=50 Hz => fm=0.05, km=204.
  core::RealTimeOptions options;
  options.idft_size = 4096;
  options.normalized_doppler = 0.05;
  options.input_variance_per_dim = 0.5;
  const core::RealTimeGenerator generator(k, options);
  const std::size_t n = generator.dimension();

  random::Rng rng(seed);
  const numeric::RMatrix envelopes = generator.generate_envelope_block(rng);

  // dB around the RMS value, exactly the paper's y-axis.
  const std::size_t plot_samples = 200;
  std::vector<numeric::RVector> db(n);
  std::vector<double> rms_values(n);
  for (std::size_t j = 0; j < n; ++j) {
    numeric::RVector column(envelopes.rows());
    for (std::size_t l = 0; l < envelopes.rows(); ++l) {
      column[l] = envelopes(l, j);
    }
    rms_values[j] = stats::rms(column);
    db[j].resize(plot_samples);
    for (std::size_t l = 0; l < plot_samples; ++l) {
      db[j][l] = 20.0 * std::log10(column[l] / rms_values[j]);
    }
  }

  support::CsvWriter csv(csv_path);
  std::vector<std::string> header = {"sample"};
  for (std::size_t j = 0; j < n; ++j) {
    header.push_back("envelope" + std::to_string(j + 1) + "_db");
  }
  csv.write_row(header);
  for (std::size_t l = 0; l < plot_samples; ++l) {
    std::vector<double> row = {static_cast<double>(l)};
    for (std::size_t j = 0; j < n; ++j) {
      row.push_back(db[j][l]);
    }
    csv.write_numeric_row(row);
  }

  support::TablePrinter table(title);
  table.set_header({"envelope", "RMS", "min dB", "max dB", "deep fades < -10 dB",
                    "mean dB"});
  for (std::size_t j = 0; j < n; ++j) {
    double lo = 1e9;
    double hi = -1e9;
    int deep = 0;
    double mean_db = 0.0;
    for (const double value : db[j]) {
      lo = std::min(lo, value);
      hi = std::max(hi, value);
      deep += value < -10.0 ? 1 : 0;
      mean_db += value / double(plot_samples);
    }
    table.add_row({std::to_string(j + 1), support::fixed(rms_values[j], 3),
                   support::fixed(lo, 1), support::fixed(hi, 1),
                   std::to_string(deep), support::fixed(mean_db, 2)});
  }
  table.print();

  // Pairwise envelope correlation over the full block (fade alignment).
  support::TablePrinter corr("pairwise envelope correlation (full block)");
  corr.set_header({"pair", "pearson rho", "|K_kj| (Gaussian)"});
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      numeric::RVector ea(envelopes.rows());
      numeric::RVector eb(envelopes.rows());
      for (std::size_t l = 0; l < envelopes.rows(); ++l) {
        ea[l] = envelopes(l, a);
        eb[l] = envelopes(l, b);
      }
      corr.add_row({std::to_string(a + 1) + "-" + std::to_string(b + 1),
                    support::fixed(stats::pearson_correlation(ea, eb), 3),
                    support::fixed(std::abs(k(a, b)), 3)});
    }
  }
  std::printf("\n");
  corr.print();

  std::printf("\nwrote %zu-sample dB traces to %s\n", plot_samples,
              csv_path.c_str());
  std::printf("expected shape: Rayleigh fades spanning roughly -30..+10 dB "
              "with correlated deep fades\n");
  return 0;
}

}  // namespace fig4
