// Cost of the link-level MetricsTap on the streaming hot path
// (core::FadingStream, overlap-save FIR backend, N = 4) at
// M in {1024, 4096}:
//
//   MetricsNoTap     no tap attached — one never-taken pointer test per
//                    block (the reference the gate normalizes by);
//   MetricsTapIdle   tap attached but disabled — the reference plus one
//                    relaxed atomic load per block.  Gated by
//                    check_regression.py on its items/s ratio to
//                    MetricsNoTap at matched M (baseline 1.0x): the
//                    opt-out path must stay within noise;
//   MetricsTapActive tap enabled — the informational price of streaming
//                    LCR (2 thresholds) + complex ACF and MI
//                    autocovariance (lags 1/2/4/8) accumulation with
//                    exact superaccumulator sums, plus a gauge publish
//                    every 16 blocks.
//
// Smoke mode for CI: --benchmark_min_time=0.05.

#include <benchmark/benchmark.h>

#include <memory>

#include "rfade/core/fading_stream.hpp"
#include "rfade/metrics/tap.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/telemetry/telemetry.hpp"

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

namespace {

constexpr std::size_t kBranches = 4;

CMatrix tridiagonal_covariance(std::size_t n) {
  CMatrix k = CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = cdouble(0.4, 0.2);
    k(i + 1, i) = cdouble(0.4, -0.2);
  }
  return k;
}

enum class TapMode { None, Idle, Active };

void run_tap(benchmark::State& state, TapMode mode) {
  const auto m = static_cast<std::size_t>(state.range(0));
  core::FadingStreamOptions options;
  options.backend = doppler::StreamBackend::OverlapSaveFir;
  options.idft_size = m;
  options.normalized_doppler = 0.05;
  options.seed = 0x57E2;
  core::FadingStream stream(tridiagonal_covariance(kBranches), options);
  // Publishes intern into a bench-local registry so runs do not grow the
  // global one; the analytic reference mirrors what Session::
  // enable_metrics derives from a Rayleigh spec.
  telemetry::Registry registry;
  std::shared_ptr<metrics::MetricsTap> tap;
  if (mode != TapMode::None) {
    metrics::AnalyticReference reference;
    reference.normalized_doppler = options.normalized_doppler;
    reference.branch_power.assign(kBranches, 1.0);
    reference.rayleigh = true;
    metrics::MetricsTapConfig config;
    config.registry = &registry;
    config.enabled = mode == TapMode::Active;
    tap = std::make_shared<metrics::MetricsTap>(reference, config);
    stream.set_metrics_tap(tap);
  }
  for (auto _ : state) {
    const CMatrix z = stream.next_block();
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.block_size()) *
                          static_cast<std::int64_t>(kBranches));
  state.SetLabel(mode == TapMode::None   ? "no tap"
                 : mode == TapMode::Idle ? "tap disabled"
                                         : "tap enabled");
}

void MetricsNoTap(benchmark::State& state) {
  run_tap(state, TapMode::None);
}
BENCHMARK(MetricsNoTap)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void MetricsTapIdle(benchmark::State& state) {
  run_tap(state, TapMode::Idle);
}
BENCHMARK(MetricsTapIdle)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void MetricsTapActive(benchmark::State& state) {
  run_tap(state, TapMode::Active);
}
BENCHMARK(MetricsTapActive)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
