#!/usr/bin/env python3
"""Benchmark regression gate for the batched sampling paths.

Compares a fresh google-benchmark JSON (--benchmark_out) against the
committed baseline (bench/baseline_throughput.json) and fails when the
batched-path throughput regresses by more than the tolerance.

Raw items/s is machine-dependent, so by default each batched benchmark is
normalized by the PerSampleBlockBaseline result *from the same file* at
matched (N, block) args: the gated quantity is the batched-over-per-sample
speedup, which transfers across machines of the same ISA family.  The
committed baseline was recorded on a single-core machine, so the parallel
path's baseline speedup is its single-core floor — any multicore CI
runner clears it with margin unless the batched path itself regresses.

The reference benchmark is configurable (--reference): the streaming
gate normalizes the continuous backends by StreamingIndependentBlock at
matched M, gating their cost ratio rather than raw throughput.

Baselines are per-compiler (speedup ratios are codegen-dependent):
pass --compiler NAME to resolve bench/baseline_throughput_NAME.json when
it exists, falling back to the default g++ baseline otherwise.  An
explicit --baseline always wins.

Usage:
  check_regression.py --current BENCH_x.json [--baseline bench/baseline_throughput.json]
                      [--compiler g++|clang++] [--tolerance 0.25]
                      [--pattern REGEX] [--reference NAME] [--absolute]
                      [--summary FILE]

--summary appends a GitHub-flavoured markdown table of every gated entry
(ratio vs baseline, plus the inverse cost ratio in reference-normalized
mode) to FILE — point it at $GITHUB_STEP_SUMMARY to surface the gate in
the Actions run summary.

Exit status: 0 OK, 1 regression, 2 usage/data error.
"""

import argparse
import json
import os
import re
import statistics
import sys

DEFAULT_BASELINE = "bench/baseline_throughput.json"

REFERENCE = "PerSampleBlockBaseline"
DEFAULT_PATTERN = r"^(BatchedBlockSerial|BatchedStreamParallel)"


def die(message):
    """Usage/data error: exit 2 so it is distinguishable from a regression."""
    print(message, file=sys.stderr)
    raise SystemExit(2)


def load_items_per_second(path):
    """Map benchmark name -> items_per_second.

    With --benchmark_repetitions the same name repeats; the median across
    repetitions is used (and an explicit _median aggregate, when present,
    wins outright) to keep the gate robust to scheduler noise.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"error: cannot read benchmark JSON {path}: {e}")
    medians = {}
    raw_runs = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        ips = bench.get("items_per_second")
        if not ips:
            continue
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "median":
                medians[re.sub(r"_median$", "", name)] = float(ips)
        else:
            raw_runs.setdefault(name, []).append(float(ips))
    result = {name: statistics.median(runs) for name, runs in raw_runs.items()}
    result.update(medians)
    if not result:
        die(f"error: no benchmarks with items_per_second in {path}")
    return result


def args_suffix(name):
    """'BatchedBlockSerial/8/4096' -> '/8/4096' (minus timing suffixes)."""
    base = re.sub(r"/(real_time|process_time)$", "", name)
    i = base.find("/")
    return base[i:] if i >= 0 else ""


def reference_ips(bench, name, reference):
    """The reference benchmark's items/s at the same args, if present."""
    suffix = args_suffix(name)
    for candidate in (reference + suffix, reference + suffix + "/real_time"):
        if candidate in bench:
            return bench[candidate]
    return None


def write_summary(path, rows, opts):
    """Append a markdown table of the gated entries to ``path``.

    In reference-normalized mode the gated quantity is the items/s ratio
    (a speedup); its inverse is the cost ratio readers usually quote
    (e.g. overlap-save costs 1.04x the independent backend per sample),
    so both columns are emitted.
    """
    heading = opts.title or (f"Bench gate: vs `{opts.reference}`"
                             if not opts.absolute else "Bench gate (absolute)")
    try:
        with open(path, "a") as f:
            f.write(f"\n### {heading}")
            f.write(f" — pattern `{opts.pattern}`\n\n")
            if opts.absolute:
                f.write("| benchmark | current | baseline | floor | |\n")
                f.write("|---|---:|---:|---:|---|\n")
                for name, cur, base, floor, unit, status in rows:
                    f.write(f"| `{name}` | {cur:.3g} {unit} | {base:.3g} | "
                            f"{floor:.3g} | {status} |\n")
            else:
                f.write("| benchmark | speedup | cost ratio | baseline | "
                        "floor | |\n")
                f.write("|---|---:|---:|---:|---:|---|\n")
                for name, cur, base, floor, unit, status in rows:
                    cost = 1.0 / cur if cur > 0 else float("inf")
                    f.write(f"| `{name}` | {cur:.2f}x | {cost:.2f}x | "
                            f"{base:.2f}x | {floor:.2f}x | {status} |\n")
    except OSError as e:
        # The summary is advisory; never turn a bad path into a gate error.
        print(f"note: cannot write summary {path}: {e}", file=sys.stderr)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="fresh --benchmark_out JSON")
    parser.add_argument("--baseline", default=None,
                        help="explicit baseline JSON (overrides --compiler "
                             f"resolution; default {DEFAULT_BASELINE})")
    parser.add_argument("--compiler", default=None,
                        help="resolve bench/baseline_throughput_<NAME>.json "
                             "when present (e.g. clang++)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="max fractional drop vs baseline (default 0.25)")
    parser.add_argument("--pattern", default=DEFAULT_PATTERN,
                        help="regex of gated benchmark names")
    parser.add_argument("--reference", default=REFERENCE,
                        help="benchmark name the gated entries are "
                             f"normalized by (default {REFERENCE})")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw items/s instead of the "
                             "per-sample-normalized speedup")
    parser.add_argument("--summary", default=None,
                        help="append a markdown table of the gated entries "
                             "to FILE (e.g. $GITHUB_STEP_SUMMARY)")
    parser.add_argument("--title", default=None,
                        help="heading for the --summary table (default "
                             "derived from --reference) — lets multiple "
                             "gates in one run stay distinguishable")
    opts = parser.parse_args()

    baseline_path = opts.baseline
    if baseline_path is None:
        baseline_path = DEFAULT_BASELINE
        if opts.compiler:
            per_compiler = os.path.join(
                os.path.dirname(DEFAULT_BASELINE),
                f"baseline_throughput_{opts.compiler}.json")
            if os.path.exists(per_compiler):
                baseline_path = per_compiler
            else:
                print(f"note: no per-compiler baseline {per_compiler}; "
                      f"falling back to {DEFAULT_BASELINE}")
    print(f"baseline: {baseline_path}")

    current = load_items_per_second(opts.current)
    baseline = load_items_per_second(baseline_path)
    gate = re.compile(opts.pattern)

    gated = [n for n in baseline if gate.search(n)]
    if not gated:
        die(f"error: pattern {opts.pattern!r} matches nothing in "
            f"{baseline_path}")

    failures = []
    checked = 0
    rows = []
    for name in sorted(gated):
        if name not in current:
            failures.append(f"{name}: present in baseline but missing from "
                            f"current run")
            continue
        if opts.absolute:
            base_value, cur_value, unit = baseline[name], current[name], "items/s"
        else:
            base_ref = reference_ips(baseline, name, opts.reference)
            cur_ref = reference_ips(current, name, opts.reference)
            if base_ref is None or cur_ref is None:
                print(f"note: {name}: no {opts.reference} at matched args; "
                      f"skipping (run the full bench or use --absolute)")
                continue
            base_value = baseline[name] / base_ref
            cur_value = current[name] / cur_ref
            unit = "x speedup"
        checked += 1
        floor = (1.0 - opts.tolerance) * base_value
        status = "OK " if cur_value >= floor else "REG"
        print(f"{status} {name}: current {cur_value:.2f} {unit} vs baseline "
              f"{base_value:.2f} (floor {floor:.2f})")
        rows.append((name, cur_value, base_value, floor, unit,
                     status.strip()))
        if cur_value < floor:
            failures.append(
                f"{name}: {cur_value:.2f} {unit} < floor {floor:.2f} "
                f"({opts.tolerance:.0%} below baseline {base_value:.2f})")

    if opts.summary and rows:
        write_summary(opts.summary, rows, opts)

    if failures:
        print("\nbatched-path throughput regression detected:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if checked == 0:
        die("error: nothing compared (no matched reference entries)")
    print(f"\nall {checked} gated benchmarks within {opts.tolerance:.0%} of "
          f"baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
