// Time-varying scenario throughput: the cost of each MeanSource form on
// the bulk batched path (zero / constant / Doppler phasor / TWDP phasor
// pair / periodic block — the time-varying forms pay one sin/cos per
// row per term on top of the constant add), TWDP instant-mode draws
// (diffuse block + per-row phase pair from the dedicated Philox
// substream), and the real-time cascade (two IDFT stage blocks + one
// Hadamard product per instant).
//
// Smoke mode for CI: --benchmark_min_time=0.05.

#include <benchmark/benchmark.h>

#include "rfade/core/mean_source.hpp"
#include "rfade/core/plan.hpp"
#include "rfade/scenario/timevarying/cascaded_realtime.hpp"
#include "rfade/scenario/timevarying/twdp.hpp"

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;
using numeric::CVector;

namespace {

CMatrix tridiagonal_covariance(std::size_t n) {
  CMatrix k = CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = cdouble(0.4, 0.2);
    k(i + 1, i) = cdouble(0.4, -0.2);
  }
  return k;
}

core::MeanSource mean_source_form(int form, std::size_t n) {
  const CVector amplitude(n, cdouble(0.9, 0.4));
  switch (form) {
    case 0:
      return {};
    case 1:
      return core::MeanSource::constant(amplitude);
    case 2:
      return core::MeanSource::doppler_phasor(amplitude, 0.021);
    case 3:
      return core::MeanSource::phasor_sum(
          {core::MeanPhasorTerm{amplitude, 0.021},
           core::MeanPhasorTerm{amplitude, -0.013}});
    default: {
      CMatrix block(1024, n);
      for (std::size_t i = 0; i < block.size(); ++i) {
        block.data()[i] = cdouble(0.5, -0.25);
      }
      return core::MeanSource::block(std::move(block));
    }
  }
}

/// Bulk stream throughput under each mean form.  Form: 0 zero, 1
/// constant, 2 one phasor, 3 two phasors, 4 periodic block.
void MeanSourceStream(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto block = static_cast<std::size_t>(state.range(1));
  const auto form = static_cast<int>(state.range(2));
  const auto plan = core::ColoringPlan::create(tridiagonal_covariance(n));
  core::PipelineOptions options;
  options.mean_offset = mean_source_form(form, n);
  const core::SamplePipeline pipeline(plan, options);
  std::uint64_t seed = 0x7E4A;
  for (auto _ : state) {
    const CMatrix z = pipeline.sample_stream(block, seed++);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block));
  static const char* kLabels[] = {"zero mean", "constant mean", "one phasor",
                                  "two phasors", "periodic block"};
  state.SetLabel(kLabels[form]);
}
BENCHMARK(MeanSourceStream)
    ->ArgsProduct({{8}, {16384}, {0, 1, 2, 3, 4}})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void TwdpStreamParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto block = static_cast<std::size_t>(state.range(1));
  const scenario::TwdpSpec spec =
      scenario::TwdpSpec::uniform(tridiagonal_covariance(n), 4.0, 0.8);
  const scenario::TwdpGenerator generator(spec.build_plan(), spec);
  std::uint64_t seed = 0x7DD;
  for (auto _ : state) {
    const CMatrix z = generator.sample_stream(block, seed++);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block));
  state.SetLabel("diffuse + random-phase waves");
}
BENCHMARK(TwdpStreamParallel)
    ->ArgsProduct({{8, 32}, {4096, 16384}})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void CascadedRealTimeBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  scenario::CascadedRealTimeOptions options;
  options.idft_size = m;
  options.first_doppler = 0.05;
  options.second_doppler = 0.11;
  const scenario::CascadedRealTimeGenerator generator(
      tridiagonal_covariance(n), tridiagonal_covariance(n), options);
  std::uint64_t block_index = 0;
  for (auto _ : state) {
    const CMatrix z = generator.generate_block(0xCA5C, block_index++);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
  state.SetLabel("two Doppler stages + Hadamard");
}
BENCHMARK(CascadedRealTimeBlock)
    ->ArgsProduct({{4, 8}, {2048, 8192}})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
