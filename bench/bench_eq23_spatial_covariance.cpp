// Experiment E2 — regenerate the paper's Eq. (23): the spatial-correlation
// covariance matrix of the Sec. 6 three-antenna array scenario.
//
// Paper parameters: N=3, D/lambda=1, Delta=10 degrees, Phi=0, sigma^2=1.
// Because Phi=0, the matrix is real (every sin((2m+1)Phi) term vanishes).

#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>

#include "rfade/channel/spatial.hpp"
#include "rfade/numeric/eigen_hermitian.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/csv.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;

int main() {
  const auto scenario = channel::paper_spatial_scenario();
  const numeric::CMatrix computed =
      channel::spatial_covariance_matrix(scenario);
  const numeric::CMatrix paper = channel::paper_eq23_matrix();

  support::TablePrinter table(
      "E2: Eq. (23) spatial covariance — computed vs paper");
  table.set_header({"entry", "computed", "paper (printed)", "|diff|"});
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      table.add_row({"K(" + std::to_string(i + 1) + "," +
                         std::to_string(j + 1) + ")",
                     support::fixed(computed(i, j).real(), 4),
                     support::fixed(paper(i, j).real(), 4),
                     support::scientific(std::abs(computed(i, j) - paper(i, j)))});
    }
  }
  table.print();

  double max_imag = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      max_imag = std::max(max_imag, std::abs(computed(i, j).imag()));
    }
  }
  const double max_diff = numeric::max_abs_diff(computed, paper);
  const auto eig = numeric::eigen_hermitian(computed);
  std::printf("\nmax |computed - paper| = %.3e (paper precision: 5e-5)\n",
              max_diff);
  std::printf("max imaginary part = %.3e (Phi = 0 => real matrix)\n", max_imag);
  std::printf("eigenvalues: %.4f %.4f %.4f  => positive definite: %s\n",
              eig.values[0], eig.values[1], eig.values[2],
              eig.values[0] > 0 ? "yes (matches paper's claim)" : "NO");

  // Extension sweep the paper motivates: correlation vs antenna spacing.
  support::TablePrinter sweep("spacing sweep: adjacent-antenna correlation");
  sweep.set_header({"D/lambda", "K(1,2)", "K(1,3)"});
  for (const double spacing : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    channel::SpatialScenario s = scenario;
    s.spacing_wavelengths = spacing;
    const auto k = channel::spatial_covariance_matrix(s);
    sweep.add_row({support::fixed(spacing, 2),
                   support::fixed(k(0, 1).real(), 4),
                   support::fixed(k(0, 2).real(), 4)});
  }
  std::printf("\n");
  sweep.print();

  std::printf("reproduction %s\n", max_diff < 5e-5 ? "OK" : "MISMATCH");
  return max_diff < 5e-5 ? EXIT_SUCCESS : EXIT_FAILURE;
}
