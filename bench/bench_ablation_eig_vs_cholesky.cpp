// Ablation A1 — the coloring-matrix engine: cyclic Jacobi vs Householder+QL
// eigendecomposition vs Cholesky.  Prints a factorization-accuracy table
// (residual ||L L^H - K||_F / ||K||_F), then times all three across N.
//
// Context: the paper chooses eigendecomposition for robustness ("it is
// important to note that estimating and comparing the computational efforts
// ... are not our targets"); this ablation supplies the numbers anyway.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "rfade/numeric/cholesky.hpp"
#include "rfade/numeric/eigen_hermitian.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

namespace {

CMatrix random_spd(std::size_t n, std::uint64_t seed) {
  random::Rng rng(seed);
  CMatrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      g(i, j) = cdouble(rng.gaussian(), rng.gaussian());
    }
  }
  CMatrix k = numeric::gram(g);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) += cdouble(double(n), 0.0);
  }
  return k;
}

CMatrix coloring_from_eigen(const numeric::HermitianEigen& eig) {
  const std::size_t n = eig.values.size();
  CMatrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const double root = std::sqrt(std::max(eig.values[j], 0.0));
    for (std::size_t i = 0; i < n; ++i) {
      l(i, j) = eig.vectors(i, j) * root;
    }
  }
  return l;
}

void accuracy_table() {
  support::TablePrinter table(
      "A1: coloring residual ||L L^H - K||_F / ||K||_F");
  table.set_header({"N", "Jacobi", "Householder+QL", "Cholesky"});
  for (const std::size_t n :
       {std::size_t{4}, std::size_t{16}, std::size_t{64}, std::size_t{128}}) {
    const CMatrix k = random_spd(n, 0xA1 + n);
    const double norm_k = numeric::frobenius_norm(k);
    const auto jacobi = coloring_from_eigen(
        numeric::eigen_hermitian(k, numeric::EigenMethod::Jacobi));
    const auto ql = coloring_from_eigen(
        numeric::eigen_hermitian(k, numeric::EigenMethod::TridiagonalQL));
    const auto chol = numeric::cholesky(k);
    auto residual = [&](const CMatrix& l) {
      return numeric::frobenius_norm(numeric::subtract(numeric::gram(l), k)) /
             norm_k;
    };
    table.add_row({std::to_string(n), support::scientific(residual(jacobi)),
                   support::scientific(residual(ql)),
                   support::scientific(residual(chol))});
  }
  table.print();
  std::printf("\n");
}

void EigenJacobi(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CMatrix k = random_spd(n, 0xA1A);
  for (auto _ : state) {
    const auto eig = numeric::eigen_hermitian(k, numeric::EigenMethod::Jacobi);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(EigenJacobi)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Unit(benchmark::kMicrosecond);

void EigenHouseholderQL(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CMatrix k = random_spd(n, 0xA1B);
  for (auto _ : state) {
    const auto eig =
        numeric::eigen_hermitian(k, numeric::EigenMethod::TridiagonalQL);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(EigenHouseholderQL)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Unit(benchmark::kMicrosecond);

void CholeskyFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CMatrix k = random_spd(n, 0xA1C);
  for (auto _ : state) {
    const auto l = numeric::cholesky(k);
    benchmark::DoNotOptimize(l.data());
  }
}
BENCHMARK(CholeskyFactor)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  accuracy_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
