// Experiment E6 — the Sec. 4.2 precision claim: clip-to-zero PSD forcing
// (the paper) approximates a non-PSD covariance matrix strictly better in
// Frobenius norm than the epsilon-replacement of Sorooshyari-Daut [6].
//
// Random non-PSD Hermitian matrices are drawn with controlled spectra; for
// each, the Frobenius distance of both policies is computed.  The clip
// policy must win every single trial (it is the Frobenius-nearest PSD
// matrix), with the margin growing with epsilon.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "rfade/core/psd.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

namespace {

CMatrix random_non_psd(std::size_t n, random::Rng& rng) {
  // Prescribed spectrum with at least one negative eigenvalue.
  numeric::RVector spectrum(n);
  bool negative = false;
  for (auto& lambda : spectrum) {
    lambda = rng.gaussian();
    negative |= lambda < 0.0;
  }
  if (!negative) {
    spectrum[0] = -std::abs(spectrum[0]) - 0.05;
  }
  // Random unitary basis from a Hermitian eigenproblem.
  CMatrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      g(i, j) = cdouble(rng.gaussian(), rng.gaussian());
    }
  }
  const auto eig = numeric::eigen_hermitian(numeric::hermitian_part(
      numeric::add(g, numeric::conjugate_transpose(g))));
  numeric::HermitianEigen prescribed;
  prescribed.values = spectrum;
  prescribed.vectors = eig.vectors;
  return numeric::reconstruct(prescribed);
}

}  // namespace

int main() {
  const int trials = 50;
  random::Rng rng(0xE6);

  support::TablePrinter table(
      "E6: PSD forcing — Frobenius distance, clip-to-zero (paper) vs "
      "epsilon-replacement [6]");
  table.set_header({"N", "eps", "mean d_clip", "mean d_eps",
                    "mean d_eps/d_clip", "clip wins"});

  for (const std::size_t n :
       {std::size_t{4}, std::size_t{8}, std::size_t{16}, std::size_t{32}}) {
    for (const double epsilon : {1e-6, 1e-4, 1e-2}) {
      double sum_clip = 0.0;
      double sum_eps = 0.0;
      double sum_ratio = 0.0;
      int wins = 0;
      for (int t = 0; t < trials; ++t) {
        const CMatrix k = random_non_psd(n, rng);
        const auto clip = core::force_positive_semidefinite(k);
        core::PsdOptions options;
        options.policy = core::PsdPolicy::EpsilonReplace;
        options.epsilon = epsilon;
        const auto eps = core::force_positive_semidefinite(k, options);
        sum_clip += clip.frobenius_distance;
        sum_eps += eps.frobenius_distance;
        sum_ratio += eps.frobenius_distance / clip.frobenius_distance;
        wins += clip.frobenius_distance < eps.frobenius_distance ? 1 : 0;
      }
      table.add_row({std::to_string(n), support::scientific(epsilon, 0),
                     support::fixed(sum_clip / trials, 4),
                     support::fixed(sum_eps / trials, 4),
                     support::fixed(sum_ratio / trials, 6),
                     std::to_string(wins) + "/" + std::to_string(trials)});
    }
  }
  table.print();

  std::printf(
      "\npaper claim (Sec. 4.2): clipping approximates G better than [6]'s\n"
      "epsilon replacement 'from Frobenius point of view' — clip must win\n"
      "every trial, with the ratio increasing in epsilon.\n");
  return 0;
}
