// Experiment E1 — regenerate the paper's Eq. (22): the spectral-correlation
// covariance matrix of the Sec. 6 OFDM/GSM-like scenario.
//
// Paper parameters: N=3, sigma^2=1, Fm=50 Hz, adjacent carrier separation
// 200 kHz (f1 > f2 > f3), sigma_tau=1 us, tau12=1 ms, tau23=3 ms,
// tau13=4 ms.  The paper prints the matrix to 4 decimals; this harness
// prints computed vs printed entries and the maximum deviation.

#include <complex>
#include <cstdio>
#include <cstdlib>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/psd.hpp"
#include "rfade/numeric/eigen_hermitian.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/csv.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;

int main() {
  const auto scenario = channel::paper_spectral_scenario();
  const numeric::CMatrix computed =
      channel::spectral_covariance_matrix(scenario);
  const numeric::CMatrix paper = channel::paper_eq22_matrix();

  support::TablePrinter table(
      "E1: Eq. (22) spectral covariance — computed vs paper");
  table.set_header({"entry", "computed", "paper (printed)", "|diff|"});
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      table.add_row({"K(" + std::to_string(i + 1) + "," +
                         std::to_string(j + 1) + ")",
                     support::CsvWriter::format(computed(i, j), 4),
                     support::CsvWriter::format(paper(i, j), 4),
                     support::scientific(std::abs(computed(i, j) - paper(i, j)))});
    }
  }
  table.print();

  const double max_diff = numeric::max_abs_diff(computed, paper);
  const auto eig = numeric::eigen_hermitian(computed);
  std::printf("\nmax |computed - paper| = %.3e (paper precision: 5e-5)\n",
              max_diff);
  std::printf("eigenvalues: %.4f %.4f %.4f  => positive definite: %s\n",
              eig.values[0], eig.values[1], eig.values[2],
              eig.values[0] > 0 ? "yes (matches paper's claim)" : "NO");
  std::printf("reproduction %s\n", max_diff < 5e-5 ? "OK" : "MISMATCH");
  return max_diff < 5e-5 ? EXIT_SUCCESS : EXIT_FAILURE;
}
