// Experiment E10 — generation throughput and parallel scaling (the IPDPS
// context of the venue): instant-mode draws/s vs N, the seed per-sample
// path vs the batched SamplePipeline paths at matched (N, block) configs
// (PerSampleBlockBaseline vs BatchedBlockSerial vs BatchedStreamParallel),
// real-time block generation vs M, and strong scaling of the deterministic
// parallel Monte-Carlo validation harness (serial baseline vs the chunked
// thread-pool fan-out).
//
// Smoke mode for CI: pass --benchmark_min_time=0.05 (and optionally
// --benchmark_filter) to keep the run short while still exercising every
// path.

#include <benchmark/benchmark.h>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/random/rng.hpp"

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

namespace {

CMatrix tridiagonal_covariance(std::size_t n) {
  CMatrix k = CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = cdouble(0.4, 0.2);
    k(i + 1, i) = cdouble(0.4, -0.2);
  }
  return k;
}

void InstantModeSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::EnvelopeGenerator gen(tridiagonal_covariance(n));
  random::Rng rng(0xE10);
  numeric::CVector z(n);
  for (auto _ : state) {
    gen.sample_into(rng, z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(InstantModeSample)->RangeMultiplier(2)->Range(2, 64);

// --- the headline comparison: seed per-sample path vs the batched +
// multi-threaded SamplePipeline paths, at matched (N, block) configs.
// Throughput is items/s where one item is one N-vector draw; compare
// PerSampleBlockBaseline vs BatchedStreamParallel at the same arguments.

void PerSampleBlockBaseline(benchmark::State& state) {
  // The seed hot loop: one streaming matvec per draw, serial.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto block = static_cast<std::size_t>(state.range(1));
  const core::EnvelopeGenerator gen(tridiagonal_covariance(n));
  random::Rng rng(0xE10A);
  numeric::CVector z(n);
  for (auto _ : state) {
    for (std::size_t t = 0; t < block; ++t) {
      gen.sample_into(rng, z);
    }
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block));
  state.SetLabel("seed per-sample");
}
BENCHMARK(PerSampleBlockBaseline)
    ->ArgsProduct({{8, 16, 32, 64}, {4096, 16384}})
    ->Unit(benchmark::kMicrosecond);

void BatchedBlockSerial(benchmark::State& state) {
  // Batched draw + blocked GEMM, single thread, per-draw-compatible rng.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto block = static_cast<std::size_t>(state.range(1));
  const core::EnvelopeGenerator gen(tridiagonal_covariance(n));
  random::Rng rng(0xE10A);
  for (auto _ : state) {
    const CMatrix z = gen.sample_block(block, rng);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block));
  state.SetLabel("batched, rng-compatible");
}
BENCHMARK(BatchedBlockSerial)
    ->ArgsProduct({{8, 16, 32, 64}, {4096, 16384}})
    ->Unit(benchmark::kMicrosecond);

void BatchedStreamParallel(benchmark::State& state) {
  // The throughput path: bulk Philox substreams + planar GEMM, blocks
  // fanned over the global thread pool (deterministic for any count).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto block = static_cast<std::size_t>(state.range(1));
  const core::EnvelopeGenerator gen(tridiagonal_covariance(n));
  std::uint64_t seed = 0xE10B;
  for (auto _ : state) {
    const CMatrix z = gen.sample_stream(block, seed++);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block));
  state.SetLabel("batched + thread pool");
}
BENCHMARK(BatchedStreamParallel)
    ->ArgsProduct({{8, 16, 32, 64}, {4096, 16384}})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void GeneratorConstruction(benchmark::State& state) {
  // Coloring cost (eigendecomposition) as N grows.
  const auto n = static_cast<std::size_t>(state.range(0));
  const CMatrix k = tridiagonal_covariance(n);
  for (auto _ : state) {
    const core::EnvelopeGenerator gen(k);
    benchmark::DoNotOptimize(&gen);
  }
}
BENCHMARK(GeneratorConstruction)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Unit(benchmark::kMicrosecond);

void RealTimeBlock(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  core::RealTimeOptions options;
  options.idft_size = m;
  options.normalized_doppler = 0.05;
  options.input_variance_per_dim = 0.5;
  const core::RealTimeGenerator gen(k, options);
  random::Rng rng(0xE10B);
  for (auto _ : state) {
    const CMatrix block = gen.generate_block(rng);
    benchmark::DoNotOptimize(block.data());
  }
  // Samples per second = M x N per block.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m) * 3);
}
BENCHMARK(RealTimeBlock)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void MonteCarloValidation(benchmark::State& state) {
  // Strong scaling: serial (arg 0) vs thread-pool chunks (arg 1).
  const bool parallel = state.range(0) != 0;
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const core::EnvelopeGenerator gen(k);
  core::ValidationOptions options;
  options.samples = 200000;
  options.seed = 0xE10C;
  options.parallel = parallel;
  options.chunk_size = 8192;
  options.ks_samples_per_branch = 1000;
  for (auto _ : state) {
    const auto report = core::validate_generator(gen, options);
    benchmark::DoNotOptimize(report.covariance_rel_error);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(options.samples));
  state.SetLabel(parallel ? "parallel(chunked pool)" : "serial");
}
BENCHMARK(MonteCarloValidation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
