// Experiment E10 — generation throughput and parallel scaling (the IPDPS
// context of the venue): instant-mode draws/s vs N, real-time block
// generation vs M, and strong scaling of the deterministic parallel
// Monte-Carlo validation harness vs thread count (serial baseline vs the
// chunked thread-pool fan-out).

#include <benchmark/benchmark.h>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/random/rng.hpp"

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

namespace {

CMatrix tridiagonal_covariance(std::size_t n) {
  CMatrix k = CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = cdouble(0.4, 0.2);
    k(i + 1, i) = cdouble(0.4, -0.2);
  }
  return k;
}

void InstantModeSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::EnvelopeGenerator gen(tridiagonal_covariance(n));
  random::Rng rng(0xE10);
  numeric::CVector z(n);
  for (auto _ : state) {
    gen.sample_into(rng, z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(InstantModeSample)->RangeMultiplier(2)->Range(2, 64);

void GeneratorConstruction(benchmark::State& state) {
  // Coloring cost (eigendecomposition) as N grows.
  const auto n = static_cast<std::size_t>(state.range(0));
  const CMatrix k = tridiagonal_covariance(n);
  for (auto _ : state) {
    const core::EnvelopeGenerator gen(k);
    benchmark::DoNotOptimize(&gen);
  }
}
BENCHMARK(GeneratorConstruction)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Unit(benchmark::kMicrosecond);

void RealTimeBlock(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  core::RealTimeOptions options;
  options.idft_size = m;
  options.normalized_doppler = 0.05;
  options.input_variance_per_dim = 0.5;
  const core::RealTimeGenerator gen(k, options);
  random::Rng rng(0xE10B);
  for (auto _ : state) {
    const CMatrix block = gen.generate_block(rng);
    benchmark::DoNotOptimize(block.data());
  }
  // Samples per second = M x N per block.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m) * 3);
}
BENCHMARK(RealTimeBlock)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void MonteCarloValidation(benchmark::State& state) {
  // Strong scaling: serial (arg 0) vs thread-pool chunks (arg 1).
  const bool parallel = state.range(0) != 0;
  const CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const core::EnvelopeGenerator gen(k);
  core::ValidationOptions options;
  options.samples = 200000;
  options.seed = 0xE10C;
  options.parallel = parallel;
  options.chunk_size = 8192;
  options.ks_samples_per_branch = 1000;
  for (auto _ : state) {
    const auto report = core::validate_generator(gen, options);
    benchmark::DoNotOptimize(report.covariance_rel_error);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(options.samples));
  state.SetLabel(parallel ? "parallel(chunked pool)" : "serial");
}
BENCHMARK(MonteCarloValidation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
