// Composite-fading throughput: the multiplicative GainSource hook on the
// batched keyed-block path.  CompositeRayleighBaseline is the gain-free
// pipeline and doubles as the per-compiler regression reference —
// bench/check_regression.py gates the other entries on their cost *ratio*
// to it at matched (N, block):
//
//   * CompositeUnitGain      — must be ~1.0x: the unit GainSource takes
//     the exact gain-free code path (one branch check), mirroring PR 3's
//     constant-mean overhead proof;
//   * CompositeConstantGain  — one multiply pass over the colored block;
//   * CompositeSuzukiShadowing — the correlated-lognormal gain (FIR
//     shadowing nodes + exp + lerp per row);
//   * CompositeNakagamiCopula  — the full marginal transform (|z|^2 ->
//     exponential -> inverse incomplete-gamma quantile per sample), the
//     priciest composite path by far.
//
// Smoke mode for CI: --benchmark_min_time=0.05.

#include <benchmark/benchmark.h>

#include <memory>

#include "rfade/core/gain_source.hpp"
#include "rfade/core/plan.hpp"
#include "rfade/scenario/composite/copula.hpp"
#include "rfade/scenario/composite/shadowing.hpp"
#include "rfade/stats/distributions.hpp"

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

namespace {

CMatrix tridiagonal_covariance(std::size_t n) {
  CMatrix k = CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = cdouble(0.4, 0.2);
    k(i + 1, i) = cdouble(0.4, -0.2);
  }
  return k;
}

void run_pipeline(benchmark::State& state, core::GainSource gain,
                  const char* label) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto block = static_cast<std::size_t>(state.range(1));
  const auto plan = core::ColoringPlan::create(tridiagonal_covariance(n));
  core::PipelineOptions options;
  options.gain = std::move(gain);
  const core::SamplePipeline pipeline(plan, options);
  std::uint64_t block_index = 0;
  for (auto _ : state) {
    const CMatrix z = pipeline.sample_block(block, 0xC0BB, block_index++);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block));
  state.SetLabel(label);
}

void CompositeRayleighBaseline(benchmark::State& state) {
  run_pipeline(state, core::GainSource(), "gain-free keyed blocks");
}
BENCHMARK(CompositeRayleighBaseline)
    ->ArgsProduct({{8, 32}, {4096}})
    ->Unit(benchmark::kMicrosecond);

void CompositeUnitGain(benchmark::State& state) {
  run_pipeline(state, core::GainSource::unit(), "unit gain (~0 overhead)");
}
BENCHMARK(CompositeUnitGain)
    ->ArgsProduct({{8, 32}, {4096}})
    ->Unit(benchmark::kMicrosecond);

void CompositeConstantGain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_pipeline(state, core::GainSource::constant(numeric::RVector(n, 1.5)),
               "constant gain multiply pass");
}
BENCHMARK(CompositeConstantGain)
    ->ArgsProduct({{8, 32}, {4096}})
    ->Unit(benchmark::kMicrosecond);

void CompositeSuzukiShadowing(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  scenario::composite::ShadowingSpec spec;
  spec.sigma_db = 6.0;
  spec.decorrelation_samples = 2048.0;
  spec.spacing = 64;
  run_pipeline(state,
               core::GainSource::dynamic(
                   std::make_shared<const scenario::composite::ShadowingProcess>(
                       n, spec, 0x5D)),
               "correlated-lognormal gain");
}
BENCHMARK(CompositeSuzukiShadowing)
    ->ArgsProduct({{8, 32}, {4096}})
    ->Unit(benchmark::kMicrosecond);

void CompositeNakagamiCopula(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto block = static_cast<std::size_t>(state.range(1));
  numeric::RMatrix target(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    target(i, i) = 1.0;
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    target(i, i + 1) = target(i + 1, i) = 0.4;
  }
  std::vector<scenario::composite::CopulaMarginal> marginals;
  for (std::size_t j = 0; j < n; ++j) {
    marginals.push_back(
        scenario::composite::CopulaMarginal::nakagami(2.5, 1.0));
  }
  const scenario::composite::CopulaMarginalTransform transform(
      target, std::move(marginals));
  std::uint64_t block_index = 0;
  for (auto _ : state) {
    const numeric::RMatrix r =
        transform.sample_envelope_block(block, 0xC0B, block_index++);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block));
  state.SetLabel("copula marginal transform");
}
BENCHMARK(CompositeNakagamiCopula)
    ->ArgsProduct({{8, 32}, {4096}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
