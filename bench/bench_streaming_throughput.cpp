// Per-sample cost of each streaming backend (core::FadingStream) at
// M in {1024, 4096, 16384}: independent IDFT blocks (the Sec. 5 baseline),
// windowed overlap-add (one extra crossfade pass per seam), and the
// exactly continuous overlap-save FIR (two 2M FFTs + one bulk input fill
// per M output samples — the O(M log M) amortised price of seam-free
// autocorrelation).
//
// StreamingIndependentBlock doubles as the per-compiler regression
// reference: bench/check_regression.py gates the WOLA/overlap-save
// entries on their cost *ratio* to it at matched M
// (--reference StreamingIndependentBlock), which transfers across
// machines of the same ISA family.
//
// Smoke mode for CI: --benchmark_min_time=0.05.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>

#include "rfade/core/fading_stream.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/telemetry/instruments.hpp"

using namespace rfade;
using numeric::cdouble;
using numeric::CMatrix;

namespace {

constexpr std::size_t kBranches = 4;

CMatrix tridiagonal_covariance(std::size_t n) {
  CMatrix k = CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = cdouble(0.4, 0.2);
    k(i + 1, i) = cdouble(0.4, -0.2);
  }
  return k;
}

void run_backend(benchmark::State& state, doppler::StreamBackend backend) {
  const auto m = static_cast<std::size_t>(state.range(0));
  core::FadingStreamOptions options;
  options.backend = backend;
  options.idft_size = m;
  options.normalized_doppler = 0.05;
  options.seed = 0x57E0;
  core::FadingStream stream(tridiagonal_covariance(kBranches), options);
  // Per-block wall latencies, recorded straight into the mergeable
  // telemetry histogram (3.1% worst-case bucket quantization, exact
  // max) instead of an unbounded sample vector.  The two steady_clock
  // reads cost tens of ns against blocks of >= 100 us, and the
  // benchmark's own timing is untouched (no UseManualTime) — the
  // mean-throughput entries the regression gate consumes are unaffected.
  telemetry::LatencyHistogram latency;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const CMatrix z = stream.next_block();
    benchmark::DoNotOptimize(z.data());
    const auto t1 = std::chrono::steady_clock::now();
    latency.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.block_size()) *
                          static_cast<std::int64_t>(kBranches));
  if (latency.count() > 0) {
    // Real-time emitters care about the per-block tail, not just the
    // mean: a backend that amortises well but hiccups misses deadlines.
    // Counters carry no items_per_second, so check_regression.py keeps
    // gating only the mean-ratio entries.
    const telemetry::HistogramSnapshot snap = latency.snapshot();
    state.counters["p50_block_us"] = snap.quantile(0.50) / 1e3;
    state.counters["p99_block_us"] = snap.quantile(0.99) / 1e3;
    state.counters["max_block_us"] = static_cast<double>(snap.max) / 1e3;
  }
  state.SetLabel(doppler::stream_backend_name(backend));
}

void StreamingIndependentBlock(benchmark::State& state) {
  run_backend(state, doppler::StreamBackend::IndependentBlock);
}
BENCHMARK(StreamingIndependentBlock)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void StreamingWindowedOverlapAdd(benchmark::State& state) {
  run_backend(state, doppler::StreamBackend::WindowedOverlapAdd);
}
BENCHMARK(StreamingWindowedOverlapAdd)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void StreamingOverlapSaveFir(benchmark::State& state) {
  run_backend(state, doppler::StreamBackend::OverlapSaveFir);
}
BENCHMARK(StreamingOverlapSaveFir)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// --- precision sweep --------------------------------------------------------
// Float32 vs Float64 on the batched overlap-save sweep at N = 16 wide
// (one full zmm of floats per GEMM column tile).  The Float64 entry is
// the regression reference: check_regression.py gates the float entry on
// its items/s ratio to it at matched M (--reference
// StreamingFloat64Reference), i.e. the end-to-end float speedup, which
// transfers across machines of the same ISA family.

constexpr std::size_t kWideBranches = 16;

void run_precision(benchmark::State& state, core::Precision precision) {
  const auto m = static_cast<std::size_t>(state.range(0));
  core::FadingStreamOptions options;
  options.backend = doppler::StreamBackend::OverlapSaveFir;
  options.idft_size = m;
  options.normalized_doppler = 0.05;
  options.seed = 0x57E1;
  options.precision = precision;
  core::FadingStream stream(tridiagonal_covariance(kWideBranches), options);
  if (precision == core::Precision::Float32) {
    for (auto _ : state) {
      const numeric::CMatrixF z = stream.next_block_f32();
      benchmark::DoNotOptimize(z.data());
    }
  } else {
    for (auto _ : state) {
      const CMatrix z = stream.next_block();
      benchmark::DoNotOptimize(z.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.block_size()) *
                          static_cast<std::int64_t>(kWideBranches));
  state.SetLabel(core::precision_name(precision));
}

void StreamingFloat64Reference(benchmark::State& state) {
  run_precision(state, core::Precision::Float64);
}
BENCHMARK(StreamingFloat64Reference)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void StreamingFloat32OverlapSave(benchmark::State& state) {
  run_precision(state, core::Precision::Float32);
}
BENCHMARK(StreamingFloat32OverlapSave)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
