// Ablation A2 — the stochastic substrate: Philox vs xoshiro engines and
// Box-Muller vs polar Gaussian transforms.  Prints an end-to-end envelope
// quality table (KS distance against the analytic Rayleigh CDF for every
// combination), then times raw u64, Gaussian, complex-Gaussian and
// full-generator sampling.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/stats/distributions.hpp"
#include "rfade/stats/ks_test.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;
using random::EngineKind;
using random::GaussianAlgorithm;
using random::Rng;

namespace {

const char* kind_name(EngineKind k) {
  return k == EngineKind::Philox ? "philox" : "xoshiro";
}
const char* algo_name(GaussianAlgorithm a) {
  return a == GaussianAlgorithm::BoxMuller ? "box-muller" : "polar";
}

void quality_table() {
  support::TablePrinter table(
      "A2: end-to-end envelope quality (KS distance vs Rayleigh, n = 50k)");
  table.set_header({"engine", "gaussian", "KS distance", "KS p-value"});
  const auto k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const core::EnvelopeGenerator gen(k);
  const auto rayleigh = stats::RayleighDistribution::from_gaussian_power(1.0);
  for (const EngineKind engine : {EngineKind::Philox, EngineKind::Xoshiro}) {
    for (const GaussianAlgorithm algorithm :
         {GaussianAlgorithm::BoxMuller, GaussianAlgorithm::Polar}) {
      Rng rng(engine, 0xA2, 0, algorithm);
      numeric::RVector samples(50000);
      for (auto& s : samples) {
        s = gen.sample_envelopes(rng)[0];
      }
      const auto ks =
          stats::ks_test(samples, [&](double r) { return rayleigh.cdf(r); });
      table.add_row({kind_name(engine), algo_name(algorithm),
                     support::scientific(ks.statistic),
                     support::fixed(ks.p_value, 4)});
    }
  }
  table.print();
  std::printf("\n");
}

void RawU64(benchmark::State& state) {
  Rng rng(static_cast<EngineKind>(state.range(0)), 0xA2A, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
  state.SetLabel(kind_name(static_cast<EngineKind>(state.range(0))));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(RawU64)->Arg(0)->Arg(1);

void GaussianSample(benchmark::State& state) {
  Rng rng(static_cast<EngineKind>(state.range(0)), 0xA2B, 0,
          static_cast<GaussianAlgorithm>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.gaussian());
  }
  state.SetLabel(std::string(kind_name(static_cast<EngineKind>(state.range(0)))) +
                 "/" +
                 algo_name(static_cast<GaussianAlgorithm>(state.range(1))));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(GaussianSample)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

void ComplexGaussianSample(benchmark::State& state) {
  Rng rng(static_cast<EngineKind>(state.range(0)), 0xA2C, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.complex_gaussian(1.0));
  }
  state.SetLabel(kind_name(static_cast<EngineKind>(state.range(0))));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(ComplexGaussianSample)->Arg(0)->Arg(1);

void EndToEndEnvelopes(benchmark::State& state) {
  const auto k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const core::EnvelopeGenerator gen(k);
  Rng rng(static_cast<EngineKind>(state.range(0)), 0xA2D, 0,
          static_cast<GaussianAlgorithm>(state.range(1)));
  numeric::CVector z(3);
  for (auto _ : state) {
    gen.sample_into(rng, z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetLabel(std::string(kind_name(static_cast<EngineKind>(state.range(0)))) +
                 "/" +
                 algo_name(static_cast<GaussianAlgorithm>(state.range(1))));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(EndToEndEnvelopes)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

}  // namespace

int main(int argc, char** argv) {
  quality_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
