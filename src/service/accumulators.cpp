#include "rfade/service/accumulators.hpp"

#include <cmath>

#include "rfade/support/contracts.hpp"
#include "rfade/support/error.hpp"

namespace rfade::service {

EnvelopeMomentAccumulator::EnvelopeMomentAccumulator(std::size_t dimension)
    : dimension_(dimension),
      sum_r_(dimension),
      sum_r2_(dimension),
      sum_r4_(dimension) {
  RFADE_EXPECTS(dimension > 0, "accumulator needs at least one branch");
}

void EnvelopeMomentAccumulator::accumulate(const numeric::CMatrix& block) {
  RFADE_EXPECTS(block.cols() == dimension_,
                "block branch count must match accumulator dimension");
  const std::size_t rows = block.rows();
  for (std::size_t t = 0; t < rows; ++t) {
    for (std::size_t j = 0; j < dimension_; ++j) {
      const numeric::cdouble z = block(t, j);
      // r^2 from the exact components; r via one sqrt rounding — the same
      // arithmetic on every shard, so shard-invariance is preserved.
      const double r2 = z.real() * z.real() + z.imag() * z.imag();
      const double r = std::sqrt(r2);
      sum_r_[j].add(r);
      sum_r2_[j].add(r2);
      sum_r4_[j].add(r2 * r2);
    }
  }
  count_ += rows;
}

void EnvelopeMomentAccumulator::accumulate(const numeric::CMatrixF& block) {
  RFADE_EXPECTS(block.cols() == dimension_,
                "block branch count must match accumulator dimension");
  const std::size_t rows = block.rows();
  for (std::size_t t = 0; t < rows; ++t) {
    for (std::size_t j = 0; j < dimension_; ++j) {
      // Widen first (exact), then run the same double arithmetic as the
      // CMatrix path so float shards stay bit-exactly mergeable.
      const numeric::cfloat z = block(t, j);
      const double re = static_cast<double>(z.real());
      const double im = static_cast<double>(z.imag());
      const double r2 = re * re + im * im;
      const double r = std::sqrt(r2);
      sum_r_[j].add(r);
      sum_r2_[j].add(r2);
      sum_r4_[j].add(r2 * r2);
    }
  }
  count_ += rows;
}

void EnvelopeMomentAccumulator::accumulate_envelopes(
    const numeric::RMatrix& envelopes) {
  RFADE_EXPECTS(envelopes.cols() == dimension_,
                "block branch count must match accumulator dimension");
  const std::size_t rows = envelopes.rows();
  for (std::size_t t = 0; t < rows; ++t) {
    for (std::size_t j = 0; j < dimension_; ++j) {
      const double r = envelopes(t, j);
      const double r2 = r * r;
      sum_r_[j].add(r);
      sum_r2_[j].add(r2);
      sum_r4_[j].add(r2 * r2);
    }
  }
  count_ += rows;
}

void EnvelopeMomentAccumulator::merge(
    const EnvelopeMomentAccumulator& other) {
  if (other.dimension_ != dimension_) {
    throw DimensionError(
        "EnvelopeMomentAccumulator::merge: dimension mismatch");
  }
  for (std::size_t j = 0; j < dimension_; ++j) {
    sum_r_[j].merge(other.sum_r_[j]);
    sum_r2_[j].merge(other.sum_r2_[j]);
    sum_r4_[j].merge(other.sum_r4_[j]);
  }
  count_ += other.count_;
}

EnvelopeMoments EnvelopeMomentAccumulator::finalize(
    std::size_t branch) const {
  RFADE_EXPECTS(branch < dimension_, "branch index out of range");
  if (count_ == 0) {
    throw ValueError(
        "EnvelopeMomentAccumulator::finalize: no samples accumulated");
  }
  const auto n = static_cast<double>(count_);
  EnvelopeMoments m;
  m.mean = sum_r_[branch].value() / n;
  m.second_moment = sum_r2_[branch].value() / n;
  m.fourth_moment = sum_r4_[branch].value() / n;
  m.variance = m.second_moment - m.mean * m.mean;
  const double power_var = m.fourth_moment - m.second_moment * m.second_moment;
  m.amount_of_fading =
      m.second_moment > 0.0
          ? power_var / (m.second_moment * m.second_moment)
          : 0.0;
  return m;
}

ComplexCovarianceAccumulator::ComplexCovarianceAccumulator(
    std::size_t dimension)
    : dimension_(dimension),
      real_(dimension * dimension),
      imag_(dimension * dimension) {
  RFADE_EXPECTS(dimension > 0, "accumulator needs at least one branch");
}

void ComplexCovarianceAccumulator::accumulate(const numeric::CMatrix& block) {
  RFADE_EXPECTS(block.cols() == dimension_,
                "block branch count must match accumulator dimension");
  const std::size_t rows = block.rows();
  for (std::size_t t = 0; t < rows; ++t) {
    for (std::size_t k = 0; k < dimension_; ++k) {
      const numeric::cdouble zk = block(t, k);
      for (std::size_t j = 0; j < dimension_; ++j) {
        const numeric::cdouble p = zk * std::conj(block(t, j));
        real_[k * dimension_ + j].add(p.real());
        imag_[k * dimension_ + j].add(p.imag());
      }
    }
  }
  count_ += rows;
}

void ComplexCovarianceAccumulator::accumulate(
    const numeric::CMatrixF& block) {
  RFADE_EXPECTS(block.cols() == dimension_,
                "block branch count must match accumulator dimension");
  const std::size_t rows = block.rows();
  for (std::size_t t = 0; t < rows; ++t) {
    for (std::size_t k = 0; k < dimension_; ++k) {
      const numeric::cdouble zk(block(t, k).real(), block(t, k).imag());
      for (std::size_t j = 0; j < dimension_; ++j) {
        const numeric::cdouble zj(block(t, j).real(), block(t, j).imag());
        const numeric::cdouble p = zk * std::conj(zj);
        real_[k * dimension_ + j].add(p.real());
        imag_[k * dimension_ + j].add(p.imag());
      }
    }
  }
  count_ += rows;
}

void ComplexCovarianceAccumulator::merge(
    const ComplexCovarianceAccumulator& other) {
  if (other.dimension_ != dimension_) {
    throw DimensionError(
        "ComplexCovarianceAccumulator::merge: dimension mismatch");
  }
  for (std::size_t i = 0; i < dimension_ * dimension_; ++i) {
    real_[i].merge(other.real_[i]);
    imag_[i].merge(other.imag_[i]);
  }
  count_ += other.count_;
}

numeric::CMatrix ComplexCovarianceAccumulator::finalize() const {
  if (count_ == 0) {
    throw ValueError(
        "ComplexCovarianceAccumulator::finalize: no samples accumulated");
  }
  const auto n = static_cast<double>(count_);
  numeric::CMatrix covariance(dimension_, dimension_);
  for (std::size_t k = 0; k < dimension_; ++k) {
    for (std::size_t j = 0; j < dimension_; ++j) {
      const std::size_t idx = k * dimension_ + j;
      covariance(k, j) = numeric::cdouble(real_[idx].value() / n,
                                          imag_[idx].value() / n);
    }
  }
  return covariance;
}

}  // namespace rfade::service
