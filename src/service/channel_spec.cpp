#include "rfade/service/channel_spec.hpp"

#include <bit>
#include <cmath>
#include <utility>

#include "rfade/random/xoshiro.hpp"
#include "rfade/support/contracts.hpp"
#include "rfade/support/error.hpp"
#include "rfade/telemetry/telemetry.hpp"

namespace rfade::service {

namespace {

/// Incremental content hash: absorb tagged words, splitmix-mixed after
/// every absorption.  Stability contract: the serialization below (tags,
/// field order, canonical values) is append-only — changing it changes
/// every persisted hash.
class SpecHasher {
 public:
  void u64(std::uint64_t v) {
    state_ ^= v;
    state_ = random::splitmix64(state_);
  }
  void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u64(v ? 1 : 0); }
  void f64(double v) {
    // Canonicalize -0.0 so value-equal specs hash equal.
    u64(std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v));
  }
  void cplx(numeric::cdouble v) {
    f64(v.real());
    f64(v.imag());
  }
  void cmatrix(const numeric::CMatrix& m) {
    size(m.rows());
    size(m.cols());
    for (std::size_t i = 0; i < m.size(); ++i) {
      cplx(m.data()[i]);
    }
  }
  void rmatrix(const numeric::RMatrix& m) {
    size(m.rows());
    size(m.cols());
    for (std::size_t i = 0; i < m.size(); ++i) {
      f64(m.data()[i]);
    }
  }
  [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0x243F6A8885A308D3ull;  // pi fraction bits
};

bool branch_equal(const scenario::RicianBranch& a,
                  const scenario::RicianBranch& b) {
  return a.k_factor == b.k_factor && a.los_phase == b.los_phase;
}

bool branch_equal(const scenario::TwdpBranch& a,
                  const scenario::TwdpBranch& b) {
  return a.k_factor == b.k_factor && a.delta == b.delta &&
         a.phase1 == b.phase1 && a.phase2 == b.phase2;
}

bool shadowing_equal(const scenario::composite::ShadowingSpec& a,
                     const scenario::composite::ShadowingSpec& b) {
  return a.sigma_db == b.sigma_db && a.mean_db == b.mean_db &&
         a.decorrelation_samples == b.decorrelation_samples &&
         a.spacing == b.spacing &&
         a.branch_correlation == b.branch_correlation &&
         a.truncation_tolerance == b.truncation_tolerance;
}

bool coloring_equal(const core::ColoringOptions& a,
                    const core::ColoringOptions& b) {
  return a.method == b.method && a.psd.policy == b.psd.policy &&
         a.psd.epsilon == b.psd.epsilon &&
         a.psd.tolerance == b.psd.tolerance &&
         a.psd.eigen_method == b.psd.eigen_method;
}

/// Rows a stream-mode session block carries for the given backend
/// geometry (mirrors doppler::BranchSourceDesign::block_size()).
std::size_t stream_block_rows(doppler::StreamBackend backend,
                              std::size_t idft_size, std::size_t overlap) {
  if (backend == doppler::StreamBackend::WindowedOverlapAdd) {
    const std::size_t effective = overlap == 0 ? idft_size / 8 : overlap;
    return idft_size - effective;
  }
  return idft_size;
}

}  // namespace

const char* fading_family_name(FadingFamily family) noexcept {
  switch (family) {
    case FadingFamily::Rayleigh:
      return "rayleigh";
    case FadingFamily::Rician:
      return "rician";
    case FadingFamily::Twdp:
      return "twdp";
    case FadingFamily::CascadedRayleigh:
      return "cascaded_rayleigh";
    case FadingFamily::Suzuki:
      return "suzuki";
    case FadingFamily::CopulaMarginals:
      return "copula_marginals";
  }
  return "unknown";
}

// --- MarginalSpec -----------------------------------------------------------

MarginalSpec MarginalSpec::rayleigh(double sigma_g_squared) {
  return {Family::Rayleigh, sigma_g_squared, 1.0};
}

MarginalSpec MarginalSpec::nakagami(double m, double omega) {
  return {Family::Nakagami, m, omega};
}

MarginalSpec MarginalSpec::weibull(double shape, double scale) {
  return {Family::Weibull, shape, scale};
}

scenario::composite::CopulaMarginal MarginalSpec::realize() const {
  using scenario::composite::CopulaMarginal;
  switch (family) {
    case Family::Nakagami:
      return CopulaMarginal::nakagami(param1, param2);
    case Family::Weibull:
      return CopulaMarginal::weibull(param1, param2);
    case Family::Rayleigh:
      break;
  }
  return CopulaMarginal::rayleigh(param1);
}

// --- ChannelSpec ------------------------------------------------------------

std::size_t ChannelSpec::dimension() const noexcept {
  return family_ == FadingFamily::CopulaMarginals ? marginals_.size()
                                                  : covariance_.rows();
}

std::uint64_t ChannelSpec::compute_hash() const {
  SpecHasher h;
  h.u64(0x52464144452D5631ull);  // serialization version "RFADE-V1"
  h.u64(static_cast<std::uint64_t>(family_));
  h.u64(static_cast<std::uint64_t>(mode_));
  h.cmatrix(covariance_);
  h.cmatrix(second_covariance_);
  h.size(rician_.size());
  for (const auto& b : rician_) {
    h.f64(b.k_factor);
    h.f64(b.los_phase);
  }
  h.size(twdp_.size());
  for (const auto& b : twdp_) {
    h.f64(b.k_factor);
    h.f64(b.delta);
    h.f64(b.phase1);
    h.f64(b.phase2);
  }
  h.size(constant_mean_.size());
  for (const auto& m : constant_mean_) {
    h.cplx(m);
  }
  h.f64(shadowing_.sigma_db);
  h.f64(shadowing_.mean_db);
  h.f64(shadowing_.decorrelation_samples);
  h.size(shadowing_.spacing);
  h.rmatrix(shadowing_.branch_correlation);
  h.f64(shadowing_.truncation_tolerance);
  h.rmatrix(envelope_target_);
  h.size(marginals_.size());
  for (const auto& m : marginals_) {
    h.u64(static_cast<std::uint64_t>(m.family));
    h.f64(m.param1);
    h.f64(m.param2);
  }
  h.u64(static_cast<std::uint64_t>(backend_));
  h.size(idft_size_);
  h.f64(doppler_);
  h.f64(second_doppler_);
  h.f64(input_variance_);
  h.size(overlap_);
  h.f64(los_doppler_);
  h.f64(wave1_);
  h.f64(wave2_);
  h.size(block_size_);
  h.f64(sample_variance_);
  h.b(parallel_);
  h.u64(static_cast<std::uint64_t>(coloring_.method));
  h.u64(static_cast<std::uint64_t>(coloring_.psd.policy));
  h.f64(coloring_.psd.epsilon);
  h.f64(coloring_.psd.tolerance);
  h.u64(static_cast<std::uint64_t>(coloring_.psd.eigen_method));
  h.size(laguerre_terms_);
  h.size(quadrature_panels_);
  h.u64(static_cast<std::uint64_t>(precision_));
  return h.digest();
}

bool operator==(const ChannelSpec& a, const ChannelSpec& b) {
  if (a.hash_ != b.hash_) {
    return false;
  }
  if (a.family_ != b.family_ || a.mode_ != b.mode_ ||
      !(a.covariance_ == b.covariance_) ||
      !(a.second_covariance_ == b.second_covariance_) ||
      a.rician_.size() != b.rician_.size() ||
      a.twdp_.size() != b.twdp_.size() ||
      a.constant_mean_ != b.constant_mean_ ||
      !shadowing_equal(a.shadowing_, b.shadowing_) ||
      !(a.envelope_target_ == b.envelope_target_) ||
      a.marginals_ != b.marginals_) {
    return false;
  }
  for (std::size_t i = 0; i < a.rician_.size(); ++i) {
    if (!branch_equal(a.rician_[i], b.rician_[i])) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.twdp_.size(); ++i) {
    if (!branch_equal(a.twdp_[i], b.twdp_[i])) {
      return false;
    }
  }
  return a.backend_ == b.backend_ && a.idft_size_ == b.idft_size_ &&
         a.doppler_ == b.doppler_ && a.second_doppler_ == b.second_doppler_ &&
         a.input_variance_ == b.input_variance_ && a.overlap_ == b.overlap_ &&
         a.los_doppler_ == b.los_doppler_ && a.wave1_ == b.wave1_ &&
         a.wave2_ == b.wave2_ && a.block_size_ == b.block_size_ &&
         a.sample_variance_ == b.sample_variance_ &&
         a.parallel_ == b.parallel_ &&
         coloring_equal(a.coloring_, b.coloring_) &&
         a.laguerre_terms_ == b.laguerre_terms_ &&
         a.quadrature_panels_ == b.quadrature_panels_ &&
         a.precision_ == b.precision_;
}

// --- Builder ----------------------------------------------------------------

ChannelSpec::Builder& ChannelSpec::Builder::rayleigh(
    numeric::CMatrix covariance) {
  spec_.family_ = FadingFamily::Rayleigh;
  spec_.covariance_ = std::move(covariance);
  family_set_ = true;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::rician(numeric::CMatrix covariance,
                                                   double k_factor,
                                                   double los_phase) {
  const std::size_t n = covariance.rows();
  return rician(std::move(covariance),
                std::vector<scenario::RicianBranch>(
                    n, scenario::RicianBranch{k_factor, los_phase}));
}

ChannelSpec::Builder& ChannelSpec::Builder::rician(
    numeric::CMatrix covariance,
    std::vector<scenario::RicianBranch> branches) {
  spec_.family_ = FadingFamily::Rician;
  spec_.covariance_ = std::move(covariance);
  spec_.rician_ = std::move(branches);
  family_set_ = true;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::twdp(numeric::CMatrix covariance,
                                                 double k_factor,
                                                 double delta) {
  const std::size_t n = covariance.rows();
  return twdp(std::move(covariance),
              std::vector<scenario::TwdpBranch>(
                  n, scenario::TwdpBranch{k_factor, delta, 0.0, 0.0}));
}

ChannelSpec::Builder& ChannelSpec::Builder::twdp(
    numeric::CMatrix covariance, std::vector<scenario::TwdpBranch> branches) {
  spec_.family_ = FadingFamily::Twdp;
  spec_.covariance_ = std::move(covariance);
  spec_.twdp_ = std::move(branches);
  family_set_ = true;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::cascaded(
    numeric::CMatrix first_covariance, numeric::CMatrix second_covariance) {
  spec_.family_ = FadingFamily::CascadedRayleigh;
  spec_.covariance_ = std::move(first_covariance);
  spec_.second_covariance_ = std::move(second_covariance);
  family_set_ = true;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::suzuki(
    numeric::CMatrix covariance,
    scenario::composite::ShadowingSpec shadowing) {
  spec_.family_ = FadingFamily::Suzuki;
  spec_.covariance_ = std::move(covariance);
  spec_.shadowing_ = std::move(shadowing);
  family_set_ = true;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::copula(
    numeric::RMatrix envelope_correlation,
    std::vector<MarginalSpec> marginals) {
  spec_.family_ = FadingFamily::CopulaMarginals;
  spec_.envelope_target_ = std::move(envelope_correlation);
  spec_.marginals_ = std::move(marginals);
  family_set_ = true;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::constant_mean(
    numeric::CVector mean) {
  spec_.constant_mean_ = std::move(mean);
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::streaming() {
  spec_.mode_ = EmissionMode::Stream;
  mode_set_ = true;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::instant() {
  spec_.mode_ = EmissionMode::Instant;
  mode_set_ = true;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::backend(
    doppler::StreamBackend backend) {
  spec_.backend_ = backend;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::idft_size(std::size_t idft_size) {
  spec_.idft_size_ = idft_size;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::doppler(
    double normalized_doppler) {
  spec_.doppler_ = normalized_doppler;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::second_doppler(
    double normalized_doppler) {
  spec_.second_doppler_ = normalized_doppler;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::input_variance_per_dim(
    double variance) {
  spec_.input_variance_ = variance;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::overlap(std::size_t overlap) {
  spec_.overlap_ = overlap;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::los_doppler(
    double normalized_frequency) {
  spec_.los_doppler_ = normalized_frequency;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::wave_dopplers(double first,
                                                          double second) {
  spec_.wave1_ = first;
  spec_.wave2_ = second;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::block_size(
    std::size_t block_size) {
  spec_.block_size_ = block_size;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::sample_variance(double variance) {
  spec_.sample_variance_ = variance;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::parallel(bool parallel) {
  spec_.parallel_ = parallel;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::coloring(
    core::ColoringOptions options) {
  spec_.coloring_ = options;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::laguerre_terms(
    std::size_t terms) {
  spec_.laguerre_terms_ = terms;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::quadrature_panels(
    std::size_t panels) {
  spec_.quadrature_panels_ = panels;
  return *this;
}

ChannelSpec::Builder& ChannelSpec::Builder::precision(
    core::Precision precision) {
  spec_.precision_ = precision;
  return *this;
}

ChannelSpec ChannelSpec::Builder::build() const {
  ChannelSpec spec = spec_;

  RFADE_SPEC_EXPECTS(family_set_,
                     "a scenario family method (rayleigh/rician/twdp/"
                     "cascaded/suzuki/copula) must be called before build()");

  // --- family-consistency validation (spec-level rejections only; deep
  // numeric validation stays with the compile layers) ------------------------
  if (spec.family_ == FadingFamily::CopulaMarginals) {
    RFADE_SPEC_EXPECTS(!mode_set_ || spec.mode_ == EmissionMode::Instant,
                       "copula channels are envelope-only instant draws; "
                       "a streaming copula emission is not defined");
    spec.mode_ = EmissionMode::Instant;
    RFADE_SPEC_EXPECTS(
        spec.envelope_target_.rows() == spec.envelope_target_.cols(),
        "copula envelope-correlation target must be square");
    RFADE_SPEC_EXPECTS(
        spec.marginals_.size() == spec.envelope_target_.rows(),
        "copula needs exactly one marginal per correlation-target branch");
    for (const auto& m : spec.marginals_) {
      switch (m.family) {
        case MarginalSpec::Family::Rayleigh:
          RFADE_SPEC_EXPECTS(m.param1 > 0.0 && std::isfinite(m.param1),
                             "rayleigh marginal needs sigma_g^2 > 0");
          break;
        case MarginalSpec::Family::Nakagami:
          RFADE_SPEC_EXPECTS(m.param1 >= 0.5 && std::isfinite(m.param1),
                             "nakagami marginal needs shape m >= 0.5");
          RFADE_SPEC_EXPECTS(m.param2 > 0.0 && std::isfinite(m.param2),
                             "nakagami marginal needs spread omega > 0");
          break;
        case MarginalSpec::Family::Weibull:
          RFADE_SPEC_EXPECTS(m.param1 > 0.0 && std::isfinite(m.param1),
                             "weibull marginal needs shape > 0");
          RFADE_SPEC_EXPECTS(m.param2 > 0.0 && std::isfinite(m.param2),
                             "weibull marginal needs scale > 0");
          break;
      }
    }
  }
  if (spec.family_ == FadingFamily::Rician) {
    RFADE_SPEC_EXPECTS(spec.rician_.size() == spec.covariance_.rows(),
                       "rician needs exactly one branch per covariance row");
    for (const auto& b : spec.rician_) {
      RFADE_SPEC_EXPECTS(b.k_factor >= 0.0 && std::isfinite(b.k_factor),
                         "rician K-factor must be finite and >= 0");
      RFADE_SPEC_EXPECTS(std::isfinite(b.los_phase),
                         "rician LOS phase must be finite");
    }
  }
  if (spec.family_ == FadingFamily::Twdp) {
    RFADE_SPEC_EXPECTS(spec.twdp_.size() == spec.covariance_.rows(),
                       "twdp needs exactly one branch per covariance row");
    for (const auto& b : spec.twdp_) {
      RFADE_SPEC_EXPECTS(b.k_factor >= 0.0 && std::isfinite(b.k_factor),
                         "twdp K-factor must be finite and >= 0");
      RFADE_SPEC_EXPECTS(b.delta >= 0.0 && b.delta <= 1.0,
                         "twdp Delta must lie in [0, 1]");
      RFADE_SPEC_EXPECTS(std::isfinite(b.phase1) && std::isfinite(b.phase2),
                         "twdp wave phases must be finite");
    }
  }
  if (spec.family_ == FadingFamily::CascadedRayleigh) {
    RFADE_SPEC_EXPECTS(
        spec.second_covariance_.rows() == spec.covariance_.rows() &&
            spec.second_covariance_.cols() == spec.covariance_.cols(),
        "cascaded stage covariances must have equal dimensions");
  }
  RFADE_SPEC_EXPECTS(
      spec.constant_mean_.empty() ||
          spec.family_ == FadingFamily::Rayleigh,
      "constant_mean applies to the rayleigh family only (rician derives "
      "its mean from the K-factors)");
  if (spec.mode_ == EmissionMode::Stream &&
      spec.family_ != FadingFamily::CopulaMarginals) {
    RFADE_SPEC_EXPECTS(
        spec.doppler_ > 0.0 && spec.doppler_ < 0.5 &&
            std::isfinite(spec.doppler_),
        "stream emission needs a normalized Doppler in (0, 0.5)");
    if (spec.family_ == FadingFamily::CascadedRayleigh) {
      RFADE_SPEC_EXPECTS(
          spec.second_doppler_ > 0.0 && spec.second_doppler_ < 0.5 &&
              std::isfinite(spec.second_doppler_),
          "cascaded stream emission needs a stage-2 Doppler in (0, 0.5)");
    }
    RFADE_SPEC_EXPECTS(std::isfinite(spec.los_doppler_) &&
                           std::abs(spec.los_doppler_) <= 0.5,
                       "LOS Doppler must be finite with |f| <= 0.5");
    RFADE_SPEC_EXPECTS(std::isfinite(spec.wave1_) &&
                           std::abs(spec.wave1_) <= 0.5 &&
                           std::isfinite(spec.wave2_) &&
                           std::abs(spec.wave2_) <= 0.5,
                       "wave Dopplers must be finite with |f| <= 0.5");
  }

  // --- canonicalization: degenerate parameterisations collapse to one
  // canonical spec so equivalent builds hash equal -----------------------------
  const auto all_zero_k = [](const auto& branches) {
    for (const auto& b : branches) {
      if (b.k_factor != 0.0) {
        return false;
      }
    }
    return true;
  };
  if (spec.family_ == FadingFamily::Rician && all_zero_k(spec.rician_)) {
    spec.family_ = FadingFamily::Rayleigh;
    spec.rician_.clear();
  }
  if (spec.family_ == FadingFamily::Twdp && all_zero_k(spec.twdp_)) {
    spec.family_ = FadingFamily::Rayleigh;
    spec.twdp_.clear();
  }
  bool mean_nonzero = false;
  for (const auto& m : spec.constant_mean_) {
    if (m != numeric::cdouble(0.0, 0.0)) {
      mean_nonzero = true;
      break;
    }
  }
  if (!mean_nonzero) {
    spec.constant_mean_.clear();
  }
  if (spec.family_ != FadingFamily::Rician) {
    spec.los_doppler_ = 0.0;
  }
  if (spec.family_ != FadingFamily::Twdp ||
      spec.mode_ != EmissionMode::Stream) {
    spec.wave1_ = 0.0;
    spec.wave2_ = 0.0;
  }
  if (spec.family_ != FadingFamily::CascadedRayleigh) {
    spec.second_covariance_ = numeric::CMatrix();
    spec.second_doppler_ = 0.05;
  }
  if (spec.family_ != FadingFamily::Suzuki) {
    spec.shadowing_ = scenario::composite::ShadowingSpec{};
  }
  if (spec.family_ != FadingFamily::CopulaMarginals) {
    spec.envelope_target_ = numeric::RMatrix();
    spec.marginals_.clear();
    spec.laguerre_terms_ = 96;
    spec.quadrature_panels_ = 4096;
  }
  if (spec.mode_ == EmissionMode::Instant) {
    // Stream-only knobs are inert: reset so an instant spec hashes
    // independently of them.
    spec.backend_ = doppler::StreamBackend::IndependentBlock;
    spec.idft_size_ = 4096;
    spec.doppler_ = 0.05;
    spec.second_doppler_ =
        spec.family_ == FadingFamily::CascadedRayleigh ? 0.05
                                                       : spec.second_doppler_;
    spec.input_variance_ = 0.5;
    spec.overlap_ = 0;
    spec.los_doppler_ = 0.0;
  } else {
    // Instant-only knobs are inert in stream mode.
    spec.block_size_ = 4096;
    spec.sample_variance_ = 1.0;
  }
  if (spec.mode_ == EmissionMode::Instant ||
      spec.family_ == FadingFamily::CascadedRayleigh) {
    // Instant pipelines and the cascaded real-time generator have no
    // float32 path; the knob is inert there, so collapse it to the
    // default to keep equal specs hashing (and caching) equal.
    spec.precision_ = core::Precision::Float64;
  }

  spec.hash_ = spec.compute_hash();
  return spec;
}

// --- CompiledChannel --------------------------------------------------------

namespace {

/// Compilation is the expensive cold phase (O(N^3) plan builds); its
/// latency distribution is what capacity planning for cache misses
/// needs.  Interned once; null when telemetry is compiled out.
telemetry::LatencyHistogram* compile_histogram() {
  if constexpr (!telemetry::kCompiledIn) {
    return nullptr;
  }
  static const std::shared_ptr<telemetry::LatencyHistogram> histogram =
      telemetry::Registry::global().histogram("rfade_channel_compile_ns");
  return histogram.get();
}

/// Compiles split by emission precision: a fleet migrating specs from
/// f64 to f32 watches the two series cross over.  One interned counter
/// per precision (the label set is closed, so two statics suffice).
telemetry::Counter* compile_counter(core::Precision precision) {
  if constexpr (!telemetry::kCompiledIn) {
    return nullptr;
  }
  static const std::shared_ptr<telemetry::Counter> f64 =
      telemetry::Registry::global().counter(
          "rfade_channel_compiles_total",
          telemetry::label("precision",
                           core::precision_name(core::Precision::Float64)));
  static const std::shared_ptr<telemetry::Counter> f32 =
      telemetry::Registry::global().counter(
          "rfade_channel_compiles_total",
          telemetry::label("precision",
                           core::precision_name(core::Precision::Float32)));
  return precision == core::Precision::Float32 ? f32.get() : f64.get();
}

}  // namespace

std::shared_ptr<const CompiledChannel> ChannelSpec::compile() const {
  const telemetry::Span span("ChannelSpec::compile");
  const telemetry::ScopedTimer timer(compile_histogram());
  if (telemetry::Counter* compiles = compile_counter(precision_);
      compiles != nullptr && telemetry::enabled()) {
    compiles->add();
  }
  return CompiledChannel::create(*this);
}

std::shared_ptr<const CompiledChannel> CompiledChannel::create(
    ChannelSpec spec) {
  RFADE_SPEC_EXPECTS(spec.content_hash() != 0 || spec.dimension() > 0,
                     "compile() needs a Builder-built spec");
  return std::shared_ptr<const CompiledChannel>(
      new CompiledChannel(std::move(spec)));
}

CompiledChannel::CompiledChannel(ChannelSpec spec) : spec_(std::move(spec)) {
  const ChannelSpec& s = spec_;
  const bool instant = s.mode() == EmissionMode::Instant;

  switch (s.family()) {
    case FadingFamily::Rayleigh: {
      plan_ = core::ColoringPlan::create(s.covariance(), s.coloring());
      stream_mean_ = core::MeanSource(s.constant_mean());
      instant_mean_ = core::MeanSource(s.constant_mean());
      break;
    }
    case FadingFamily::Rician: {
      const scenario::ScenarioSpec scen =
          scenario::ScenarioSpec::rician(s.covariance(), s.rician_branches());
      plan_ = scen.build_plan(s.coloring());
      numeric::CVector mean = scen.los_mean(*plan_);
      instant_mean_ = core::MeanSource(mean);
      stream_mean_ = s.los_doppler() != 0.0
                         ? scen.doppler_los_mean(*plan_, s.los_doppler())
                         : core::MeanSource(std::move(mean));
      break;
    }
    case FadingFamily::Twdp: {
      twdp_spec_ = scenario::TwdpSpec::per_branch(s.covariance(),
                                                  s.twdp_branches());
      plan_ = twdp_spec_->build_plan(s.coloring());
      if (instant) {
        scenario::TwdpOptions options;
        options.block_size = s.block_size();
        options.parallel = s.parallel();
        options.coloring = s.coloring();
        twdp_generator_.emplace(plan_, *twdp_spec_, options);
      }
      break;
    }
    case FadingFamily::CascadedRayleigh: {
      plan_ = core::ColoringPlan::create(s.covariance(), s.coloring());
      second_plan_ =
          core::ColoringPlan::create(s.second_covariance(), s.coloring());
      if (instant) {
        scenario::CascadedOptions options;
        options.block_size = s.block_size();
        options.parallel = s.parallel();
        options.coloring = s.coloring();
        cascaded_generator_.emplace(plan_, second_plan_, options);
      }
      break;
    }
    case FadingFamily::Suzuki: {
      plan_ = core::ColoringPlan::create(s.covariance(), s.coloring());
      scenario::composite::SuzukiOptions options;
      options.block_size = s.block_size();
      options.parallel = s.parallel();
      options.coloring = s.coloring();
      suzuki_generator_.emplace(plan_, s.shadowing(), options);
      break;
    }
    case FadingFamily::CopulaMarginals: {
      std::vector<scenario::composite::CopulaMarginal> marginals;
      marginals.reserve(s.marginal_specs().size());
      for (const auto& m : s.marginal_specs()) {
        marginals.push_back(m.realize());
      }
      scenario::composite::CopulaOptions options;
      options.laguerre_terms = s.laguerre_terms();
      options.quadrature_panels = s.quadrature_panels();
      options.block_size = s.block_size();
      options.parallel = s.parallel();
      options.coloring = s.coloring();
      copula_ =
          std::make_shared<const scenario::composite::CopulaMarginalTransform>(
              s.envelope_correlation_target(), std::move(marginals), options);
      plan_ = copula_->plan();
      break;
    }
  }

  dimension_ = plan_->dimension();
  if (instant &&
      (s.family() == FadingFamily::Rayleigh ||
       s.family() == FadingFamily::Rician)) {
    core::PipelineOptions options;
    options.sample_variance = s.sample_variance();
    options.mean_offset = instant_mean_;
    options.block_size = s.block_size();
    options.parallel = s.parallel();
    pipeline_.emplace(plan_, options);
  }
  block_size_ = instant ? s.block_size()
                        : stream_block_rows(s.backend(), s.idft_size(),
                                            s.overlap());
}

core::FadingStreamOptions CompiledChannel::stream_options(
    std::uint64_t seed) const {
  core::FadingStreamOptions options;
  options.backend = spec_.backend();
  options.idft_size = spec_.idft_size();
  options.normalized_doppler = spec_.normalized_doppler();
  options.input_variance_per_dim = spec_.input_variance_per_dim();
  options.overlap = spec_.overlap();
  options.los_mean = stream_mean_;
  options.coloring = spec_.coloring();
  options.parallel_branches = spec_.parallel();
  options.precision = spec_.precision();
  options.seed = seed;
  return options;
}

core::FadingStream CompiledChannel::make_stream(std::uint64_t seed) const {
  if (spec_.mode() != EmissionMode::Stream) {
    throw UnsupportedOperationError(
        "make_stream: spec was compiled for instant emission");
  }
  switch (spec_.family()) {
    case FadingFamily::Rayleigh:
    case FadingFamily::Rician:
      return core::FadingStream(plan_, stream_options(seed));
    case FadingFamily::Twdp:
      return scenario::twdp_fading_stream(
          plan_, *twdp_spec_, spec_.first_wave_doppler(),
          spec_.second_wave_doppler(), stream_options(seed));
    case FadingFamily::Suzuki:
      return suzuki_generator_->make_stream(stream_options(seed));
    case FadingFamily::CascadedRayleigh:
    case FadingFamily::CopulaMarginals:
      break;
  }
  throw UnsupportedOperationError(
      std::string("make_stream: not defined for family ") +
      fading_family_name(spec_.family()));
}

scenario::CascadedRealTimeGenerator CompiledChannel::make_cascaded_stream(
    std::uint64_t seed) const {
  if (spec_.family() != FadingFamily::CascadedRayleigh ||
      spec_.mode() != EmissionMode::Stream) {
    throw UnsupportedOperationError(
        "make_cascaded_stream: spec is not a stream-mode cascade");
  }
  scenario::CascadedRealTimeOptions options;
  options.idft_size = spec_.idft_size();
  options.first_doppler = spec_.normalized_doppler();
  options.second_doppler = spec_.second_doppler();
  options.input_variance_per_dim = spec_.input_variance_per_dim();
  options.coloring = spec_.coloring();
  options.parallel_branches = spec_.parallel();
  options.backend = spec_.backend();
  options.overlap = spec_.overlap();
  options.stream_seed = seed;
  return scenario::CascadedRealTimeGenerator(plan_, second_plan_, options);
}

const core::SamplePipeline& CompiledChannel::pipeline() const {
  if (!pipeline_.has_value()) {
    throw UnsupportedOperationError(
        "pipeline: spec is not an instant-mode rayleigh/rician channel");
  }
  return *pipeline_;
}

const scenario::TwdpGenerator& CompiledChannel::twdp_generator() const {
  if (!twdp_generator_.has_value()) {
    throw UnsupportedOperationError(
        "twdp_generator: spec is not an instant-mode twdp channel");
  }
  return *twdp_generator_;
}

const scenario::CascadedRayleighGenerator& CompiledChannel::cascaded_generator()
    const {
  if (!cascaded_generator_.has_value()) {
    throw UnsupportedOperationError(
        "cascaded_generator: spec is not an instant-mode cascade");
  }
  return *cascaded_generator_;
}

const scenario::composite::SuzukiGenerator& CompiledChannel::suzuki_generator()
    const {
  if (!suzuki_generator_.has_value()) {
    throw UnsupportedOperationError(
        "suzuki_generator: spec is not a suzuki channel");
  }
  return *suzuki_generator_;
}

const scenario::composite::CopulaMarginalTransform&
CompiledChannel::copula_transform() const {
  if (copula_ == nullptr) {
    throw UnsupportedOperationError(
        "copula_transform: spec is not a copula channel");
  }
  return *copula_;
}

}  // namespace rfade::service
