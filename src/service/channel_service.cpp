#include "rfade/service/channel_service.hpp"

#include <cmath>
#include <utility>

#include "rfade/metrics/tap.hpp"
#include "rfade/support/contracts.hpp"
#include "rfade/support/error.hpp"
#include "rfade/support/parallel.hpp"
#include "rfade/telemetry/telemetry.hpp"

namespace rfade::service {

namespace {

numeric::RMatrix envelopes_of(const numeric::CMatrix& block) {
  numeric::RMatrix envelopes(block.rows(), block.cols());
  for (std::size_t i = 0; i < block.size(); ++i) {
    envelopes.data()[i] = std::abs(block.data()[i]);
  }
  return envelopes;
}

// Serving-layer instruments, interned once on first use; null when
// telemetry is compiled out so every record site degrades to a
// never-taken branch.
telemetry::LatencyHistogram* session_block_histogram() {
  if constexpr (!telemetry::kCompiledIn) {
    return nullptr;
  }
  static const std::shared_ptr<telemetry::LatencyHistogram> histogram =
      telemetry::Registry::global().histogram("rfade_session_next_block_ns");
  return histogram.get();
}

telemetry::LatencyHistogram* batcher_width_histogram() {
  if constexpr (!telemetry::kCompiledIn) {
    return nullptr;
  }
  static const std::shared_ptr<telemetry::LatencyHistogram> histogram =
      telemetry::Registry::global().histogram("rfade_batcher_sweep_width");
  return histogram.get();
}

telemetry::Counter* session_seek_counter() {
  if constexpr (!telemetry::kCompiledIn) {
    return nullptr;
  }
  static const std::shared_ptr<telemetry::Counter> counter =
      telemetry::Registry::global().counter("rfade_session_seeks_total");
  return counter.get();
}

telemetry::Counter* sessions_opened_counter() {
  if constexpr (!telemetry::kCompiledIn) {
    return nullptr;
  }
  static const std::shared_ptr<telemetry::Counter> counter =
      telemetry::Registry::global().counter("rfade_sessions_opened_total");
  return counter.get();
}

}  // namespace

Session::Session(std::shared_ptr<const CompiledChannel> channel,
                 std::uint64_t seed)
    : channel_(std::move(channel)), seed_(seed) {
  RFADE_EXPECTS(channel_ != nullptr, "Session needs a compiled channel");
  if (telemetry::Counter* opened = sessions_opened_counter();
      opened != nullptr && telemetry::enabled()) {
    opened->add();
  }
  if (channel_->mode() == EmissionMode::Stream) {
    // Per-seed engine instances: hosts of the const keyed
    // generate_block (their design work runs once per session).
    if (channel_->family() == FadingFamily::CascadedRayleigh) {
      cascaded_.emplace(channel_->make_cascaded_stream(seed));
    } else {
      stream_.emplace(channel_->make_stream(seed));
    }
  }
}

numeric::CMatrix Session::next_block() {
  const telemetry::Span span("Session::next_block");
  const telemetry::ScopedTimer timer(session_block_histogram());
  numeric::CMatrix block = generate_block(cursor_);
  ++cursor_;
  if (metrics_tap_) metrics_tap_->observe(block);
  return block;
}

numeric::RMatrix Session::next_envelope_block() {
  const telemetry::Span span("Session::next_envelope_block");
  const telemetry::ScopedTimer timer(session_block_histogram());
  numeric::RMatrix block = generate_envelope_block(cursor_);
  ++cursor_;
  return block;
}

void Session::seek(std::uint64_t block_index) noexcept {
  if (telemetry::Counter* seeks = session_seek_counter();
      seeks != nullptr && telemetry::enabled()) {
    seeks->add();
  }
  cursor_ = block_index;
}

numeric::CMatrix Session::generate_block(std::uint64_t block_index) const {
  if (stream_.has_value()) {
    return stream_->generate_block(seed_, block_index);
  }
  if (cascaded_.has_value()) {
    return cascaded_->generate_block(seed_, block_index);
  }
  const std::size_t count = channel_->block_size();
  switch (channel_->family()) {
    case FadingFamily::Rayleigh:
    case FadingFamily::Rician:
      return channel_->pipeline().sample_block(count, seed_, block_index);
    case FadingFamily::Twdp:
      return channel_->twdp_generator().sample_block(count, seed_,
                                                     block_index);
    case FadingFamily::CascadedRayleigh:
      return channel_->cascaded_generator().sample_block(count, seed_,
                                                         block_index);
    case FadingFamily::Suzuki:
      return channel_->suzuki_generator().sample_block(count, seed_,
                                                       block_index);
    case FadingFamily::CopulaMarginals:
      break;
  }
  throw UnsupportedOperationError(
      "generate_block: copula channels are envelope-only — use "
      "generate_envelope_block / next_envelope_block");
}

numeric::RMatrix Session::generate_envelope_block(
    std::uint64_t block_index) const {
  if (channel_->envelope_only()) {
    return channel_->copula_transform().sample_envelope_block(
        channel_->block_size(), seed_, block_index);
  }
  return envelopes_of(generate_block(block_index));
}

std::shared_ptr<metrics::MetricsTap> Session::enable_metrics(
    const metrics::MetricsTapConfig& config) {
  if (channel_->mode() != EmissionMode::Stream || channel_->envelope_only()) {
    throw UnsupportedOperationError(
        "enable_metrics: link-level metrics need a stream-mode complex "
        "timeline (instant and envelope-only channels have none)");
  }
  const auto& plan = channel_->plan();
  if (plan == nullptr) {
    throw UnsupportedOperationError(
        "enable_metrics: compiled channel carries no coloring plan");
  }
  // The spec-derived ground truth: fm and per-branch powers from the
  // compiled plan; the Rice/J0/Wang-Abdi gates apply to the Rayleigh
  // family, the ACF product law to Suzuki composites over it, and every
  // other family publishes measured values without analytic gates.
  metrics::AnalyticReference reference;
  reference.normalized_doppler = channel_->spec().normalized_doppler();
  const numeric::CMatrix& covariance = plan->effective_covariance();
  reference.branch_power.resize(channel_->dimension());
  for (std::size_t j = 0; j < channel_->dimension(); ++j) {
    reference.branch_power[j] = covariance(j, j).real();
  }
  const FadingFamily family = channel_->family();
  reference.rayleigh =
      family == FadingFamily::Rayleigh || family == FadingFamily::Suzuki;
  if (family == FadingFamily::Suzuki) {
    const auto& shadowing = channel_->spec().shadowing();
    reference.shadowing = metrics::ShadowingReference{
        shadowing.sigma_db,
        shadowing.decorrelation_samples};
  }
  metrics_tap_ = std::make_shared<metrics::MetricsTap>(std::move(reference),
                                                       config);
  return metrics_tap_;
}

ChannelService::ChannelService(std::size_t plan_cache_capacity)
    : cache_(plan_cache_capacity) {}

std::vector<numeric::CMatrix> ChannelService::generate_blocks(
    const std::vector<BlockRequest>& requests) {
  const telemetry::Span span("ChannelService::generate_blocks");
  telemetry::record_if_enabled(batcher_width_histogram(), requests.size());
  std::vector<numeric::CMatrix> blocks(requests.size());
  support::parallel_for_chunked(
      requests.size(),
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        for (std::size_t i = begin; i < end; ++i) {
          RFADE_EXPECTS(requests[i].session != nullptr,
                        "BlockRequest needs a session");
          blocks[i] =
              requests[i].session->generate_block(requests[i].block_index);
        }
      },
      {.chunk_size = 1});
  return blocks;
}

std::vector<numeric::CMatrix> ChannelService::pull_blocks(
    const std::vector<Session*>& sessions) {
  std::vector<BlockRequest> requests;
  requests.reserve(sessions.size());
  for (Session* session : sessions) {
    RFADE_EXPECTS(session != nullptr, "pull_blocks needs live sessions");
    requests.push_back({session, session->next_block_index()});
  }
  std::vector<numeric::CMatrix> blocks = generate_blocks(requests);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    sessions[i]->seek(requests[i].block_index + 1);
  }
  return blocks;
}

}  // namespace rfade::service
