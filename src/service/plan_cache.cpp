#include "rfade/service/plan_cache.hpp"

#include <utility>

#include "rfade/support/contracts.hpp"

namespace rfade::service {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  RFADE_EXPECTS(capacity >= 1, "PlanCache needs capacity >= 1");
}

std::shared_ptr<const CompiledChannel> PlanCache::get_or_compile(
    const ChannelSpec& spec) {
  const std::uint64_t key = spec.content_hash();
  bool collision = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.channel->spec() == spec) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second.lru_position);
        return it->second.channel;
      }
      collision = true;
    }
  }

  // Compile outside the lock: slow plans must not serialize the cache.
  std::shared_ptr<const CompiledChannel> channel = spec.compile();

  const std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  if (collision) {
    // Same hash, different content: serve fresh, never displace the
    // resident entry (see header collision policy).
    ++collisions_;
    return channel;
  }
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Another thread compiled the same spec while we were unlocked.
    if (it->second.channel->spec() == spec) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      return it->second.channel;
    }
    ++collisions_;
    return channel;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{channel, lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  return channel;
}

std::shared_ptr<const CompiledChannel> PlanCache::peek(
    const ChannelSpec& spec) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(spec.content_hash());
  if (it == entries_.end() || !(it->second.channel->spec() == spec)) {
    return nullptr;
  }
  return it->second.channel;
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

PlanCacheStats PlanCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  PlanCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.collisions = collisions_;
  stats.size = entries_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace rfade::service
