#include "rfade/service/plan_cache.hpp"

#include <atomic>
#include <string>
#include <utility>

#include "rfade/support/contracts.hpp"

namespace rfade::service {

namespace {

/// Distinct label per cache instance, so two services' counters never
/// alias on the shared registry.
std::string next_cache_label() {
  static std::atomic<std::uint64_t> next{0};
  return telemetry::label(
      "cache", std::to_string(next.fetch_add(1, std::memory_order_relaxed)));
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  RFADE_EXPECTS(capacity >= 1, "PlanCache needs capacity >= 1");
  if constexpr (telemetry::kCompiledIn) {
    const std::string labels = next_cache_label();
    telemetry::Registry& registry = telemetry::Registry::global();
    hits_ = registry.counter("rfade_plan_cache_hits_total", labels);
    misses_ = registry.counter("rfade_plan_cache_misses_total", labels);
    evictions_ = registry.counter("rfade_plan_cache_evictions_total", labels);
    collisions_ =
        registry.counter("rfade_plan_cache_collisions_total", labels);
  } else {
    hits_ = std::make_shared<telemetry::Counter>();
    misses_ = std::make_shared<telemetry::Counter>();
    evictions_ = std::make_shared<telemetry::Counter>();
    collisions_ = std::make_shared<telemetry::Counter>();
  }
}

std::shared_ptr<const CompiledChannel> PlanCache::get_or_compile(
    const ChannelSpec& spec) {
  const std::uint64_t key = spec.content_hash();
  bool collision = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.channel->spec() == spec) {
        hits_->add();
        lru_.splice(lru_.begin(), lru_, it->second.lru_position);
        return it->second.channel;
      }
      collision = true;
    }
  }

  // Compile outside the lock: slow plans must not serialize the cache.
  std::shared_ptr<const CompiledChannel> channel = spec.compile();

  const std::lock_guard<std::mutex> lock(mutex_);
  misses_->add();
  if (collision) {
    // Same hash, different content: serve fresh, never displace the
    // resident entry (see header collision policy).
    collisions_->add();
    return channel;
  }
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Another thread compiled the same spec while we were unlocked.
    if (it->second.channel->spec() == spec) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      return it->second.channel;
    }
    collisions_->add();
    return channel;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{channel, lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_->add();
  }
  return channel;
}

std::shared_ptr<const CompiledChannel> PlanCache::peek(
    const ChannelSpec& spec) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(spec.content_hash());
  if (it == entries_.end() || !(it->second.channel->spec() == spec)) {
    return nullptr;
  }
  return it->second.channel;
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

PlanCacheStats PlanCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  PlanCacheStats stats;
  stats.hits = hits_->value();
  stats.misses = misses_->value();
  stats.evictions = evictions_->value();
  stats.collisions = collisions_->value();
  stats.size = entries_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace rfade::service
