#include "rfade/core/covariance_spec.hpp"

#include <cmath>

#include "rfade/core/power.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::core {

numeric::cdouble covariance_entry(const CrossCovariance& c) {
  // Eq. (13): mu_kj = (Rxx + Ryy) - i (Rxy - Ryx).
  return {c.rxx + c.ryy, -(c.rxy - c.ryx)};
}

CovarianceBuilder::CovarianceBuilder(std::size_t n)
    : n_(n), k_(n, n, numeric::cdouble{}), power_set_(n, false) {
  RFADE_EXPECTS(n >= 1, "CovarianceBuilder: need at least one envelope");
}

CovarianceBuilder& CovarianceBuilder::set_gaussian_power(std::size_t j,
                                                         double power) {
  RFADE_EXPECTS(j < n_, "CovarianceBuilder: index out of range");
  RFADE_EXPECTS(power > 0.0, "CovarianceBuilder: power must be positive");
  k_(j, j) = numeric::cdouble(power, 0.0);
  power_set_[j] = true;
  return *this;
}

CovarianceBuilder& CovarianceBuilder::set_envelope_power(std::size_t j,
                                                         double power) {
  return set_gaussian_power(j, gaussian_power_from_envelope_power(power));
}

CovarianceBuilder& CovarianceBuilder::set_cross_covariance(
    std::size_t k, std::size_t j, const CrossCovariance& c) {
  return set_cross_entry(k, j, covariance_entry(c));
}

CovarianceBuilder& CovarianceBuilder::set_cross_entry(std::size_t k,
                                                      std::size_t j,
                                                      numeric::cdouble mu) {
  RFADE_EXPECTS(k < n_ && j < n_, "CovarianceBuilder: index out of range");
  RFADE_EXPECTS(k != j, "CovarianceBuilder: use set_gaussian_power for k==j");
  k_(k, j) = mu;
  k_(j, k) = std::conj(mu);
  return *this;
}

numeric::CMatrix CovarianceBuilder::build() const {
  for (std::size_t j = 0; j < n_; ++j) {
    RFADE_EXPECTS(power_set_[j],
                  "CovarianceBuilder: power not set for some branch");
  }
  validate_covariance_matrix(k_);
  return k_;
}

void validate_covariance_matrix(const numeric::CMatrix& k, double tol) {
  RFADE_EXPECTS(k.is_square(), "covariance matrix must be square");
  RFADE_EXPECTS(k.rows() >= 1, "covariance matrix must be non-empty");
  RFADE_EXPECTS(numeric::is_hermitian(k, tol),
                "covariance matrix must be Hermitian");
  for (std::size_t j = 0; j < k.rows(); ++j) {
    RFADE_EXPECTS(k(j, j).real() > 0.0,
                  "covariance matrix must have positive diagonal");
  }
}

}  // namespace rfade::core
