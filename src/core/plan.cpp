#include "rfade/core/plan.hpp"

#include <cmath>
#include <vector>

#include "rfade/core/covariance_spec.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/bulk_gaussian.hpp"
#include "rfade/support/contracts.hpp"
#include "rfade/support/parallel.hpp"

namespace rfade::core {

// --- ColoringPlan -----------------------------------------------------------

ColoringPlan::ColoringPlan(numeric::CMatrix desired,
                           const ColoringOptions& options)
    : dim_(desired.rows()), desired_(std::move(desired)) {
  validate_covariance_matrix(desired_);
  coloring_ = compute_coloring(desired_, options);
  const numeric::CMatrix& l = coloring_.matrix;
  coloring_transposed_ = numeric::CMatrix(dim_, dim_);
  coloring_transposed_re_.resize(dim_ * dim_);
  coloring_transposed_im_.resize(dim_ * dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      coloring_transposed_(j, i) = l(i, j);
      coloring_transposed_re_[j * dim_ + i] = l(i, j).real();
      coloring_transposed_im_[j * dim_ + i] = l(i, j).imag();
    }
  }
}

std::shared_ptr<const ColoringPlan> ColoringPlan::create(
    numeric::CMatrix desired_covariance, ColoringOptions options) {
  return std::shared_ptr<const ColoringPlan>(
      new ColoringPlan(std::move(desired_covariance), options));
}

const ColoringPlan::ColoringF32& ColoringPlan::coloring_f32() const {
  std::call_once(coloring_f32_once_, [this] {
    // One-time down-conversion of the double factor; element-by-element
    // narrowing so the interleaved and planar layouts agree bit-for-bit.
    coloring_f32_.transposed = numeric::CMatrixF(dim_, dim_);
    coloring_f32_.transposed_re.resize(dim_ * dim_);
    coloring_f32_.transposed_im.resize(dim_ * dim_);
    for (std::size_t i = 0; i < dim_ * dim_; ++i) {
      const float re = static_cast<float>(coloring_transposed_re_[i]);
      const float im = static_cast<float>(coloring_transposed_im_[i]);
      coloring_f32_.transposed.data()[i] = numeric::cfloat(re, im);
      coloring_f32_.transposed_re[i] = re;
      coloring_f32_.transposed_im[i] = im;
    }
  });
  return coloring_f32_;
}

// --- SamplePipeline ---------------------------------------------------------

SamplePipeline::SamplePipeline(std::shared_ptr<const ColoringPlan> plan,
                               PipelineOptions options)
    : plan_(std::move(plan)), options_(options) {
  RFADE_EXPECTS(plan_ != nullptr, "SamplePipeline: plan must not be null");
  RFADE_EXPECTS(options_.sample_variance > 0.0,
                "SamplePipeline: sample variance must be positive");
  RFADE_EXPECTS(options_.block_size > 0,
                "SamplePipeline: block size must be positive");
  RFADE_EXPECTS(options_.mean_offset.dimension() == 0 ||
                    options_.mean_offset.dimension() == plan_->dimension(),
                "SamplePipeline: mean offset dimension must equal the plan "
                "dimension N");
  RFADE_EXPECTS(options_.gain.dimension() == 0 ||
                    options_.gain.dimension() == plan_->dimension(),
                "SamplePipeline: gain dimension must equal the plan "
                "dimension N");
  inv_sigma_w_ = 1.0 / std::sqrt(options_.sample_variance);
  // A zero MeanSource (empty or all-zero constant) is the zero-mean
  // (Rayleigh) pipeline: skip the add pass entirely so a K = 0 scenario
  // stays bit-identical to the plain path (z + 0.0 could still flip the
  // sign bit of a -0.0 output).
  has_mean_ = !options_.mean_offset.is_zero();
  // Likewise a unit GainSource (default, explicit, or all-ones constant)
  // emits no multiply pass — z * 1.0 would preserve bits, but skipping
  // the pass keeps the gain-free hot loops untouched.
  has_gain_ = !options_.gain.is_unit();
}

void SamplePipeline::add_mean_rows(std::uint64_t first_instant,
                                   std::size_t rows,
                                   numeric::cdouble* out) const {
  if (!has_mean_) {
    return;
  }
  options_.mean_offset.add_to_rows(first_instant, rows, plan_->dimension(),
                                   out);
}

void SamplePipeline::finish_rows(std::uint64_t first_instant, std::size_t rows,
                                 numeric::cdouble* out) const {
  if (has_mean_) {
    add_mean_rows(first_instant, rows, out);
  }
  if (has_gain_) {
    options_.gain.multiply_rows(first_instant, rows, plan_->dimension(), out);
  }
}

void SamplePipeline::finish_rows_f32(std::uint64_t first_instant,
                                     std::size_t rows,
                                     numeric::cfloat* out) const {
  if (!has_mean_ && !has_gain_) {
    return;
  }
  // The mean/gain trajectories are double by design (Doppler phasors,
  // lognormal shadowing); evaluate each row in double and narrow at the
  // apply point so the float stream sees the same trajectory the double
  // stream does, to float rounding.
  const std::size_t n = plan_->dimension();
  numeric::CVector mean(has_mean_ ? n : 0);
  numeric::RVector gains(has_gain_ ? n : 0);
  for (std::size_t t = 0; t < rows; ++t) {
    numeric::cfloat* row = out + t * n;
    const std::uint64_t instant = first_instant + t;
    if (has_mean_) {
      options_.mean_offset.mean_at(instant, mean);
      for (std::size_t j = 0; j < n; ++j) {
        row[j] += numeric::cfloat(static_cast<float>(mean[j].real()),
                                  static_cast<float>(mean[j].imag()));
      }
    }
    if (has_gain_) {
      options_.gain.gains_at(instant, gains);
      for (std::size_t j = 0; j < n; ++j) {
        row[j] *= static_cast<float>(gains[j]);
      }
    }
  }
}

void SamplePipeline::sample_into(random::Rng& rng,
                                 std::span<numeric::cdouble> out,
                                 std::uint64_t instant) const {
  const std::size_t n = plan_->dimension();
  RFADE_EXPECTS(out.size() == n, "sample_into: output size mismatch");
  // Step 6: W = (u_1 ... u_N)^T, i.i.d. CN(0, sigma_w^2).
  // Step 7: Z = L W / sigma_w, computed as a streaming matvec.
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = numeric::cdouble{};
  }
  const numeric::CMatrix& l = plan_->coloring_matrix();
  for (std::size_t j = 0; j < n; ++j) {
    const numeric::cdouble w = rng.complex_gaussian(options_.sample_variance);
    const numeric::cdouble scaled = w * inv_sigma_w_;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] += l(i, j) * scaled;
    }
  }
  finish_rows(instant, 1, out.data());
}

numeric::CVector SamplePipeline::sample(random::Rng& rng,
                                        std::uint64_t instant) const {
  numeric::CVector z(plan_->dimension());
  sample_into(rng, z, instant);
  return z;
}

numeric::RVector SamplePipeline::sample_envelopes(
    random::Rng& rng, std::uint64_t instant) const {
  const numeric::CVector z = sample(rng, instant);
  numeric::RVector r(z.size());
  for (std::size_t j = 0; j < z.size(); ++j) {
    r[j] = std::abs(z[j]);
  }
  return r;
}

void SamplePipeline::fill_colored_rows(random::Rng& rng, std::size_t rows,
                                       std::uint64_t first_instant,
                                       numeric::cdouble* out) const {
  const std::size_t n = plan_->dimension();
  // Step 6, batched: the W block is drawn row-major — the same rng
  // consumption order as `rows` successive per-draw calls.
  std::vector<numeric::cdouble> w(rows * n);
  for (std::size_t t = 0; t < rows * n; ++t) {
    w[t] = rng.complex_gaussian(options_.sample_variance) * inv_sigma_w_;
  }
  // Step 7, batched: Z_block = W_block * L^T via the blocked GEMM, whose
  // ascending-j accumulation reproduces the per-draw matvec bit-for-bit.
  numeric::multiply_block_raw(w.data(), rows, n,
                              plan_->coloring_matrix_transposed().data(), n,
                              out);
  finish_rows(first_instant, rows, out);
}

numeric::CMatrix SamplePipeline::sample_block(
    std::size_t count, random::Rng& rng, std::uint64_t first_instant) const {
  RFADE_EXPECTS(count > 0, "sample_block: count must be positive");
  numeric::CMatrix block(count, plan_->dimension());
  fill_colored_rows(rng, count, first_instant, block.data());
  return block;
}

void SamplePipeline::fill_colored_rows_bulk(std::uint64_t seed,
                                            std::uint64_t block_index,
                                            std::uint64_t first_instant,
                                            std::size_t rows,
                                            numeric::cdouble* out) const {
  const std::size_t n = plan_->dimension();
  // Step 6, bulk: draw the W block at unit variance straight into planar
  // re/im planes (the sigma_w of step 6 cancels against the step-7
  // division, so nothing else is needed).  Sample (t, j) is counter block
  // t*N + j of the Philox substream (seed, block_index + 1).  The planes
  // are thread-local scratch: large enough to be mmap-threshold
  // allocations, so reusing them across blocks avoids a page-fault storm
  // in the hot loop (each pool worker keeps its own copy).
  thread_local std::vector<double> w_re;
  thread_local std::vector<double> w_im;
  if (w_re.size() < rows * n) {
    w_re.resize(rows * n);
    w_im.resize(rows * n);
  }
  random::fill_complex_gaussians_planar(seed, block_index + 1, 1.0, rows * n,
                                        w_re.data(), w_im.data());
  // Step 7, bulk: Z_block = W_block * L^T as a vectorized planar GEMM.
  numeric::multiply_block_planar(w_re.data(), w_im.data(), rows, n,
                                 plan_->coloring_transposed_re().data(),
                                 plan_->coloring_transposed_im().data(), n,
                                 out);
  finish_rows(first_instant, rows, out);
}

numeric::CMatrix SamplePipeline::sample_block(std::size_t count,
                                              std::uint64_t seed,
                                              std::uint64_t block_index) const {
  // Default instant assignment: block b of a stream starts at row
  // b * block_size, so standalone blocks see the same mean rows as
  // sample_stream hands the same block index.
  return sample_block(count, seed, block_index,
                      block_index * options_.block_size);
}

numeric::CMatrix SamplePipeline::sample_block(
    std::size_t count, std::uint64_t seed, std::uint64_t block_index,
    std::uint64_t first_instant) const {
  RFADE_EXPECTS(count > 0, "sample_block: count must be positive");
  numeric::CMatrix block(count, plan_->dimension());
  fill_colored_rows_bulk(seed, block_index, first_instant, count,
                         block.data());
  return block;
}

void SamplePipeline::sample_block_into(std::size_t count, std::uint64_t seed,
                                       std::uint64_t block_index,
                                       std::uint64_t first_instant,
                                       std::span<numeric::cdouble> out) const {
  RFADE_EXPECTS(count > 0, "sample_block_into: count must be positive");
  RFADE_EXPECTS(out.size() == count * plan_->dimension(),
                "sample_block_into: output size must be count * dimension");
  fill_colored_rows_bulk(seed, block_index, first_instant, count, out.data());
}

numeric::CMatrix SamplePipeline::sample_stream(std::size_t count,
                                               std::uint64_t seed) const {
  const std::size_t n = plan_->dimension();
  numeric::CMatrix out(count, n);
  const support::ChunkingOptions chunking{options_.block_size,
                                          !options_.parallel};
  support::parallel_for_chunked(
      count,
      [&](std::size_t begin, std::size_t end, std::size_t block) {
        fill_colored_rows_bulk(seed, block, begin, end - begin,
                               out.data() + begin * n);
      },
      chunking);
  return out;
}

numeric::RMatrix SamplePipeline::sample_envelope_stream(
    std::size_t count, std::uint64_t seed) const {
  return numeric::elementwise_abs(sample_stream(count, seed));
}

numeric::CMatrix SamplePipeline::color_block(const numeric::CMatrix& w,
                                             double variance,
                                             std::uint64_t first_instant)
    const {
  const std::size_t n = plan_->dimension();
  RFADE_EXPECTS(w.cols() == n, "color_block: column count != dimension");
  RFADE_EXPECTS(variance > 0.0, "color_block: variance must be positive");
  numeric::CMatrix out(w.rows(), n);
  if (variance == 1.0) {
    // Already normalised (callers on a hot path fold the 1/sigma scaling
    // into the pass that assembles W) — color straight from the input.
    numeric::multiply_block_raw(w.data(), w.rows(), n,
                                plan_->coloring_matrix_transposed().data(), n,
                                out.data());
    finish_rows(first_instant, w.rows(), out.data());
    return out;
  }
  // Sec. 5 steps 6-8: divide by the assumed per-branch complex variance,
  // then color every time instant with L — as one blocked GEMM.
  const double inv_sigma = 1.0 / std::sqrt(variance);
  numeric::CMatrix scaled(w.rows(), n);
  for (std::size_t t = 0; t < w.rows(); ++t) {
    for (std::size_t j = 0; j < n; ++j) {
      scaled(t, j) = w(t, j) * inv_sigma;
    }
  }
  numeric::multiply_block_raw(scaled.data(), w.rows(), n,
                              plan_->coloring_matrix_transposed().data(), n,
                              out.data());
  finish_rows(first_instant, w.rows(), out.data());
  return out;
}

numeric::CMatrixF SamplePipeline::color_block_f32(
    const numeric::CMatrixF& w, std::uint64_t first_instant) const {
  numeric::CMatrixF out(w.rows(), plan_->dimension());
  color_block_f32_into(w, first_instant, out);
  return out;
}

void SamplePipeline::color_block_f32_into(const numeric::CMatrixF& w,
                                          std::uint64_t first_instant,
                                          numeric::CMatrixF& out) const {
  const std::size_t n = plan_->dimension();
  RFADE_EXPECTS(w.cols() == n, "color_block_f32: column count != dimension");
  RFADE_EXPECTS(out.rows() == w.rows() && out.cols() == n,
                "color_block_f32: output shape mismatch");
  // Float analogue of the variance == 1.0 color_block path: callers fold
  // the 1/sigma normalisation into W assembly, so this is one float GEMM
  // against the cached float32 clone of L^T plus the mean/gain tail.
  const ColoringPlan::ColoringF32& clone = plan_->coloring_f32();
  numeric::multiply_block_raw(w.data(), w.rows(), n, clone.transposed.data(),
                              n, out.data());
  finish_rows_f32(first_instant, w.rows(), out.data());
}

}  // namespace rfade::core
