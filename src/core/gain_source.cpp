#include "rfade/core/gain_source.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "rfade/support/contracts.hpp"

namespace rfade::core {

namespace {

bool all_ones(const numeric::RVector& v) {
  for (double g : v) {
    if (g != 1.0) {
      return false;
    }
  }
  return true;
}

}  // namespace

GainSource GainSource::unit() { return GainSource(); }

GainSource GainSource::constant(numeric::RVector gains) {
  GainSource source;
  if (gains.empty() || all_ones(gains)) {
    return source;  // unit gain: keep the no-multiply fast path.
  }
  for (double g : gains) {
    RFADE_EXPECTS(std::isfinite(g) && g > 0.0,
                  "GainSource: constant gains must be finite and positive");
  }
  source.kind_ = Kind::Constant;
  source.constant_ = std::move(gains);
  return source;
}

GainSource GainSource::dynamic(
    std::shared_ptr<const TimeVaryingGain> process) {
  RFADE_EXPECTS(process != nullptr,
                "GainSource: dynamic gain process must not be null");
  RFADE_EXPECTS(process->dimension() > 0,
                "GainSource: dynamic gain process must have dimension > 0");
  GainSource source;
  source.kind_ = Kind::Dynamic;
  source.process_ = std::move(process);
  return source;
}

std::size_t GainSource::dimension() const noexcept {
  switch (kind_) {
    case Kind::Unit:
      return 0;
    case Kind::Constant:
      return constant_.size();
    case Kind::Dynamic:
      return process_->dimension();
  }
  return 0;
}

void GainSource::gains_at(std::uint64_t instant,
                          std::span<double> out) const {
  RFADE_EXPECTS(dimension() == 0 || out.size() == dimension(),
                "GainSource: output size must equal dimension");
  switch (kind_) {
    case Kind::Unit:
      for (double& g : out) {
        g = 1.0;
      }
      return;
    case Kind::Constant:
      for (std::size_t j = 0; j < out.size(); ++j) {
        out[j] = constant_[j];
      }
      return;
    case Kind::Dynamic:
      process_->gains_for_rows(instant, 1, out);
      return;
  }
}

void GainSource::multiply_rows(std::uint64_t first_instant, std::size_t rows,
                               std::size_t n, numeric::cdouble* out) const {
  RFADE_EXPECTS(kind_ == Kind::Unit || n == dimension(),
                "GainSource: row width must equal the gain dimension");
  switch (kind_) {
    case Kind::Unit:
      return;
    case Kind::Constant: {
      const double* g = constant_.data();
      for (std::size_t t = 0; t < rows; ++t) {
        numeric::cdouble* row = out + t * n;
        for (std::size_t j = 0; j < n; ++j) {
          row[j] *= g[j];
        }
      }
      return;
    }
    case Kind::Dynamic: {
      // The gains are materialised per call (thread-local scratch: the
      // pipeline calls this from pool workers, and the buffers are large
      // enough to be mmap-threshold allocations worth reusing).
      thread_local std::vector<double> gains;
      if (gains.size() < rows * n) {
        gains.resize(rows * n);
      }
      process_->gains_for_rows(first_instant, rows,
                               std::span<double>(gains.data(), rows * n));
      for (std::size_t t = 0; t < rows; ++t) {
        numeric::cdouble* row = out + t * n;
        const double* g = gains.data() + t * n;
        for (std::size_t j = 0; j < n; ++j) {
          row[j] *= g[j];
        }
      }
      return;
    }
  }
}

}  // namespace rfade::core
