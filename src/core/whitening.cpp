#include "rfade/core/whitening.hpp"

#include <cmath>

#include "rfade/core/covariance_spec.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::core {

WhiteningTransform::WhiteningTransform(const numeric::CMatrix& covariance,
                                       const PsdOptions& options)
    : dim_(covariance.rows()) {
  validate_covariance_matrix(covariance);
  const PsdResult psd = force_positive_semidefinite(covariance, options);

  // Rank threshold relative to the largest eigenvalue.
  double max_lambda = 0.0;
  for (const double lambda : psd.adjusted_eigenvalues) {
    max_lambda = std::max(max_lambda, lambda);
  }
  const double floor = 1e-12 * std::max(max_lambda, 1e-300);

  // W = Lambda^{-1/2} V^H row by row; annihilated directions become zero.
  w_ = numeric::CMatrix(dim_, dim_, numeric::cdouble{});
  for (std::size_t row = 0; row < dim_; ++row) {
    const double lambda = psd.adjusted_eigenvalues[row];
    if (lambda <= floor) {
      continue;  // pseudo-inverse: zero row
    }
    ++rank_;
    const double inv_root = 1.0 / std::sqrt(lambda);
    for (std::size_t col = 0; col < dim_; ++col) {
      w_(row, col) = inv_root * std::conj(psd.eigenvectors(col, row));
    }
  }
}

numeric::CVector WhiteningTransform::whiten(const numeric::CVector& z) const {
  RFADE_EXPECTS(z.size() == dim_, "whiten: dimension mismatch");
  return numeric::multiply(w_, z);
}

}  // namespace rfade::core
