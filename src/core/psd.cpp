#include "rfade/core/psd.hpp"

#include <algorithm>
#include <cmath>

#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::core {

PsdResult force_positive_semidefinite(const numeric::CMatrix& k,
                                      const PsdOptions& options) {
  RFADE_EXPECTS(k.is_square(), "force_psd: matrix must be square");
  RFADE_EXPECTS(options.epsilon > 0.0, "force_psd: epsilon must be positive");
  RFADE_EXPECTS(options.tolerance >= 0.0,
                "force_psd: tolerance must be non-negative");

  PsdResult result;
  const numeric::HermitianEigen eig =
      numeric::eigen_hermitian(k, options.eigen_method);
  result.eigenvalues = eig.values;
  result.eigenvectors = eig.vectors;

  double max_abs_lambda = 0.0;
  for (const double lambda : eig.values) {
    max_abs_lambda = std::max(max_abs_lambda, std::abs(lambda));
  }
  const double negative_floor = -options.tolerance * max_abs_lambda;

  result.adjusted_eigenvalues = eig.values;
  result.was_psd = true;
  for (double& lambda : result.adjusted_eigenvalues) {
    switch (options.policy) {
      case PsdPolicy::ClipToZero:
        // Paper Sec. 4.2: lambda_hat = lambda if lambda >= 0 else 0.
        if (lambda < 0.0) {
          if (lambda < negative_floor) {
            result.was_psd = false;
          }
          lambda = 0.0;
        }
        break;
      case PsdPolicy::EpsilonReplace:
        // Ref. [6]: lambda_hat = lambda if lambda > 0 else epsilon.
        if (lambda <= 0.0) {
          if (lambda < negative_floor) {
            result.was_psd = false;
          }
          lambda = options.epsilon;
        }
        break;
    }
  }

  if (result.was_psd &&
      result.adjusted_eigenvalues == result.eigenvalues) {
    // Nothing changed: keep K exactly (avoids reconstruction round-off).
    result.matrix = k;
    result.frobenius_distance = 0.0;
    return result;
  }

  numeric::HermitianEigen adjusted;
  adjusted.values = result.adjusted_eigenvalues;
  adjusted.vectors = eig.vectors;
  result.matrix = numeric::reconstruct(adjusted);
  result.frobenius_distance =
      numeric::frobenius_norm(numeric::subtract(result.matrix, k));
  return result;
}

bool is_positive_semidefinite(const numeric::CMatrix& k, double tolerance) {
  const numeric::HermitianEigen eig = numeric::eigen_hermitian(k);
  double max_abs_lambda = 0.0;
  for (const double lambda : eig.values) {
    max_abs_lambda = std::max(max_abs_lambda, std::abs(lambda));
  }
  // Smallest eigenvalue first (ascending order).
  return eig.values.empty() ||
         eig.values.front() >= -tolerance * std::max(max_abs_lambda, 1.0);
}

}  // namespace rfade::core
