#include "rfade/core/generator.hpp"

namespace rfade::core {

namespace {

PipelineOptions pipeline_options_from(const GeneratorOptions& options) {
  PipelineOptions pipeline;
  pipeline.sample_variance = options.sample_variance;
  pipeline.mean_offset = options.mean_offset;
  return pipeline;
}

}  // namespace

EnvelopeGenerator::EnvelopeGenerator(numeric::CMatrix desired_covariance,
                                     GeneratorOptions options)
    : pipeline_(ColoringPlan::create(std::move(desired_covariance),
                                     options.coloring),
                pipeline_options_from(options)) {}

EnvelopeGenerator::EnvelopeGenerator(std::shared_ptr<const ColoringPlan> plan,
                                     GeneratorOptions options)
    : pipeline_(std::move(plan), pipeline_options_from(options)) {}

}  // namespace rfade::core
