#include "rfade/core/generator.hpp"

#include "rfade/service/channel_spec.hpp"

namespace rfade::core {

namespace {

PipelineOptions pipeline_options_from(const GeneratorOptions& options) {
  PipelineOptions pipeline;
  pipeline.sample_variance = options.sample_variance;
  pipeline.mean_offset = options.mean_offset;
  return pipeline;
}

}  // namespace

// The covariance entry point is a thin wrapper over the canonical
// ChannelSpec path: one spec → compile() → the shared instant pipeline.
// Spec-level validation stays out of the way here — shape/positivity
// violations surface from the compile layers as ContractViolation,
// exactly as before the serving layer existed.
EnvelopeGenerator::EnvelopeGenerator(numeric::CMatrix desired_covariance,
                                     GeneratorOptions options)
    : pipeline_(service::ChannelSpec::Builder()
                    .rayleigh(std::move(desired_covariance))
                    .constant_mean(std::move(options.mean_offset))
                    .sample_variance(options.sample_variance)
                    .coloring(options.coloring)
                    .instant()
                    .build()
                    .compile()
                    ->pipeline()) {}

EnvelopeGenerator::EnvelopeGenerator(std::shared_ptr<const ColoringPlan> plan,
                                     GeneratorOptions options)
    : pipeline_(std::move(plan), pipeline_options_from(options)) {}

}  // namespace rfade::core
