#include "rfade/core/generator.hpp"

#include <cmath>

#include "rfade/core/covariance_spec.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::core {

EnvelopeGenerator::EnvelopeGenerator(numeric::CMatrix desired_covariance,
                                     GeneratorOptions options)
    : dim_(desired_covariance.rows()),
      desired_(std::move(desired_covariance)),
      sample_variance_(options.sample_variance) {
  validate_covariance_matrix(desired_);
  RFADE_EXPECTS(options.sample_variance > 0.0,
                "EnvelopeGenerator: sample variance must be positive");
  coloring_ = compute_coloring(desired_, options.coloring);
  inv_sigma_w_ = 1.0 / std::sqrt(sample_variance_);
}

void EnvelopeGenerator::sample_into(random::Rng& rng,
                                    std::span<numeric::cdouble> out) const {
  RFADE_EXPECTS(out.size() == dim_, "sample_into: output size mismatch");
  // Step 6: W = (u_1 ... u_N)^T, i.i.d. CN(0, sigma_w^2).
  // Step 7: Z = L W / sigma_w, computed as a streaming matvec.
  for (std::size_t i = 0; i < dim_; ++i) {
    out[i] = numeric::cdouble{};
  }
  const numeric::CMatrix& l = coloring_.matrix;
  for (std::size_t j = 0; j < dim_; ++j) {
    const numeric::cdouble w = rng.complex_gaussian(sample_variance_);
    const numeric::cdouble scaled = w * inv_sigma_w_;
    for (std::size_t i = 0; i < dim_; ++i) {
      out[i] += l(i, j) * scaled;
    }
  }
}

numeric::CVector EnvelopeGenerator::sample(random::Rng& rng) const {
  numeric::CVector z(dim_);
  sample_into(rng, z);
  return z;
}

numeric::RVector EnvelopeGenerator::sample_envelopes(random::Rng& rng) const {
  const numeric::CVector z = sample(rng);
  numeric::RVector r(dim_);
  for (std::size_t j = 0; j < dim_; ++j) {
    r[j] = std::abs(z[j]);
  }
  return r;
}

numeric::CMatrix EnvelopeGenerator::sample_block(std::size_t count,
                                                 random::Rng& rng) const {
  RFADE_EXPECTS(count > 0, "sample_block: count must be positive");
  numeric::CMatrix block(count, dim_);
  numeric::CVector row(dim_);
  for (std::size_t t = 0; t < count; ++t) {
    sample_into(rng, row);
    for (std::size_t j = 0; j < dim_; ++j) {
      block(t, j) = row[j];
    }
  }
  return block;
}

}  // namespace rfade::core
