#include "rfade/core/coloring.hpp"

#include <cmath>

#include "rfade/numeric/cholesky.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::core {

ColoringResult compute_coloring(const numeric::CMatrix& k,
                                const ColoringOptions& options) {
  RFADE_EXPECTS(k.is_square(), "compute_coloring: matrix must be square");
  RFADE_EXPECTS(numeric::is_hermitian(k, 1e-9),
                "compute_coloring: matrix must be Hermitian");
  const std::size_t n = k.rows();

  ColoringResult result;
  result.method = options.method;

  if (options.method == ColoringMethod::Cholesky) {
    result.matrix = numeric::cholesky(k);
    result.effective_covariance = k;
    return result;
  }

  // Paper steps 4-5: force PSD, then L = V sqrt(Lambda_hat).
  result.psd = force_positive_semidefinite(k, options.psd);
  const numeric::CMatrix& v = result.psd.eigenvectors;
  numeric::CMatrix l(n, n, numeric::cdouble{});
  for (std::size_t j = 0; j < n; ++j) {
    const double lambda = result.psd.adjusted_eigenvalues[j];
    const double root = std::sqrt(lambda);
    for (std::size_t i = 0; i < n; ++i) {
      l(i, j) = v(i, j) * root;
    }
  }
  result.matrix = std::move(l);
  result.effective_covariance = result.psd.matrix;
  return result;
}

}  // namespace rfade::core
