#include "rfade/core/fading_stream.hpp"

#include <cmath>
#include <span>
#include <utility>

#include "rfade/metrics/tap.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/contracts.hpp"
#include "rfade/support/parallel.hpp"
#include "rfade/telemetry/registry.hpp"

namespace rfade::core {

const char* precision_name(Precision precision) noexcept {
  return precision == Precision::Float32 ? "f32" : "f64";
}

namespace {

PipelineOptions stream_pipeline_options(const FadingStreamOptions& options) {
  PipelineOptions pipeline;
  pipeline.mean_offset = options.los_mean;
  pipeline.gain = options.gain;
  return pipeline;
}

/// Widen a float block to the double-API shape (service-layer compat for
/// Float32 streams; the float block stays the bit-reference).
numeric::CMatrix widen(const numeric::CMatrixF& z) {
  numeric::CMatrix out(z.rows(), z.cols());
  const numeric::cfloat* src = z.data();
  numeric::cdouble* dst = out.data();
  for (std::size_t i = 0; i < z.size(); ++i) {
    dst[i] = numeric::cdouble(static_cast<double>(src[i].real()),
                              static_cast<double>(src[i].imag()));
  }
  return out;
}

}  // namespace

FadingStream::FadingStream(numeric::CMatrix desired_covariance,
                           FadingStreamOptions options)
    : FadingStream(ColoringPlan::create(std::move(desired_covariance),
                                        options.coloring),
                   options) {}

FadingStream::FadingStream(std::shared_ptr<const ColoringPlan> plan,
                           FadingStreamOptions options)
    : pipeline_(std::move(plan), stream_pipeline_options(options)),
      design_(std::make_shared<const doppler::BranchSourceDesign>(
          options.backend, options.idft_size, options.normalized_doppler,
          options.input_variance_per_dim, options.overlap)),
      parallel_branches_(options.parallel_branches),
      precision_(options.precision),
      seed_(options.seed) {
  // Proposed (Sec. 5 step 6): divide by the Eq. (19) post-filter variance.
  // Flawed mode (ref. [6]): divide by the input complex variance
  // 2 sigma_orig^2, as if the Doppler filter did not change the power.
  assumed_variance_ =
      options.variance_handling == VarianceHandling::AnalyticCorrection
          ? design_->output_variance()
          : 2.0 * options.input_variance_per_dim;
  if constexpr (telemetry::kCompiledIn) {
    const std::string labels =
        telemetry::label("backend",
                         doppler::stream_backend_name(options.backend)) +
        "," + telemetry::label("precision", precision_name(precision_));
    telemetry::Registry& registry = telemetry::Registry::global();
    block_histogram_ =
        registry.histogram("rfade_stream_block_fill_ns", labels);
    seek_histogram_ = registry.histogram("rfade_stream_seek_ns", labels);
  }
  sources_ = make_sources(seed_);
  if (options.batched_fill && pipeline_.dimension() > 0 &&
      doppler::OverlapSaveBatch::supports(*design_)) {
    std::vector<std::uint64_t> seeds(pipeline_.dimension());
    for (std::size_t j = 0; j < seeds.size(); ++j) {
      seeds[j] = doppler::BranchSourceDesign::input_seed(seed_, j);
    }
    batch_ = std::make_unique<doppler::OverlapSaveBatch>(
        design_, std::move(seeds), precision_ == Precision::Float32);
  }
}

FadingStream::SourceList FadingStream::make_sources(std::uint64_t seed) const {
  SourceList sources;
  sources.reserve(pipeline_.dimension());
  for (std::size_t j = 0; j < pipeline_.dimension(); ++j) {
    sources.push_back(
        design_->make_source(doppler::BranchSourceDesign::input_seed(seed, j)));
  }
  return sources;
}

numeric::CMatrix FadingStream::emit(SourceList& sources, random::Rng& rng,
                                    std::uint64_t block_index,
                                    std::uint64_t first_instant,
                                    doppler::OverlapSaveBatch* batch,
                                    Workspace* workspace) const {
  const std::size_t n = pipeline_.dimension();
  const std::size_t m = design_->block_size();
  Workspace transient;
  Workspace& ws = workspace != nullptr ? *workspace : transient;
  if (ws.w.rows() != m || ws.w.cols() != n) {
    ws.w = numeric::CMatrix(m, n);
  }

  if (batch != nullptr) {
    // Batched overlap-save sweep: the backend keys its randomness off the
    // block index (its advance never touches the rng), so the whole
    // advance/fill/normalise picture collapses into one planar batch that
    // writes w(l, j) = u_j[l] / sigma_g directly — the same bits as the
    // per-branch path below.
    const double inv_sigma = 1.0 / std::sqrt(assumed_variance_);
    batch->fill_block(block_index, inv_sigma, ws.w, parallel_branches_);
    return pipeline_.color_block(ws.w, 1.0, first_instant);
  }

  // Stochastic halves run branch-by-branch in a fixed serial order — the
  // rng consumption order never depends on thread count.
  for (std::size_t j = 0; j < n; ++j) {
    sources[j]->advance(rng, block_index);
  }

  // The deterministic halves (IDFT / window / convolution) are
  // independent across branches: fill them concurrently.
  std::vector<numeric::CVector>& outputs = ws.outputs;
  outputs.resize(n);
  support::parallel_for_chunked(
      n,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        for (std::size_t j = begin; j < end; ++j) {
          outputs[j].resize(m);
          sources[j]->fill(std::span<numeric::cdouble>(outputs[j]));
        }
      },
      {/*chunk_size=*/1, /*serial=*/!parallel_branches_});

  // W row l is the vector (u_1[l] ... u_N[l]); the step-6 normalisation
  // 1/sigma_g is folded into this transpose pass (same scale-then-color
  // order, hence the same bits, as scaling inside color_block), then every
  // time instant is colored with L: Z_l = L W_l / sigma_g (steps 7-8).
  const double inv_sigma = 1.0 / std::sqrt(assumed_variance_);
  for (std::size_t j = 0; j < n; ++j) {
    // w(l, j) = u[l] / sigma_g as one vectorized strided pass
    // (bit-identical to the scalar transpose loop).
    numeric::scale_into_strided(outputs[j].data(), m, inv_sigma,
                                ws.w.data() + j, n);
  }
  return pipeline_.color_block(ws.w, 1.0, first_instant);
}

numeric::CMatrixF FadingStream::emit_f32(SourceList& sources, random::Rng& rng,
                                         std::uint64_t block_index,
                                         std::uint64_t first_instant,
                                         doppler::OverlapSaveBatch* batch,
                                         Workspace* workspace) const {
  const std::size_t n = pipeline_.dimension();
  const std::size_t m = design_->block_size();
  Workspace transient;
  Workspace& ws = workspace != nullptr ? *workspace : transient;
  if (ws.w_f.rows() != m || ws.w_f.cols() != n) {
    ws.w_f = numeric::CMatrixF(m, n);
  }
  // The step-6 normalisation narrowed once from the double constant, so
  // every float draw path divides by the same float scalar.
  const float inv_sigma =
      static_cast<float>(1.0 / std::sqrt(assumed_variance_));

  if (batch != nullptr) {
    batch->fill_block_f32(block_index, inv_sigma, ws.w_f, parallel_branches_);
    return pipeline_.color_block_f32(ws.w_f, first_instant);
  }

  // Same serial advance order as the double emit — the rng consumption
  // (and hence the block keying) is precision-independent.
  for (std::size_t j = 0; j < n; ++j) {
    sources[j]->advance(rng, block_index);
  }

  std::vector<numeric::CVectorF>& outputs = ws.outputs_f;
  outputs.resize(n);
  support::parallel_for_chunked(
      n,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        for (std::size_t j = begin; j < end; ++j) {
          outputs[j].resize(m);
          sources[j]->fill_f32(std::span<numeric::cfloat>(outputs[j]));
        }
      },
      {/*chunk_size=*/1, /*serial=*/!parallel_branches_});

  for (std::size_t j = 0; j < n; ++j) {
    numeric::scale_into_strided(outputs[j].data(), m, inv_sigma,
                                ws.w_f.data() + j, n);
  }
  return pipeline_.color_block_f32(ws.w_f, first_instant);
}

void FadingStream::replay(SourceList& sources, std::uint64_t seed,
                          std::uint64_t block_index, bool float32) const {
  const std::size_t n = pipeline_.dimension();
  random::Rng rng = random::block_substream(seed, block_index);
  for (std::size_t j = 0; j < n; ++j) {
    sources[j]->advance(rng, block_index);
  }
  support::parallel_for_chunked(
      n,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        // Replay in the stream's own precision so precision-specific
        // carried state (WOLA's previous float block) is rebuilt.
        std::vector<numeric::cdouble> scratch(float32 ? 0
                                                      : design_->block_size());
        std::vector<numeric::cfloat> scratch_f(float32 ? design_->block_size()
                                                       : 0);
        for (std::size_t j = begin; j < end; ++j) {
          if (float32) {
            sources[j]->fill_f32(scratch_f);
          } else {
            sources[j]->fill(scratch);
          }
        }
      },
      {/*chunk_size=*/1, /*serial=*/!parallel_branches_});
}

numeric::CMatrix FadingStream::next_block() {
  if (precision_ == Precision::Float32) {
    return widen(next_block_f32());
  }
  const telemetry::ScopedTimer timer(block_histogram_.get());
  random::Rng rng = random::block_substream(seed_, next_block_);
  numeric::CMatrix z = emit(sources_, rng, next_block_, next_instant(),
                            batch_.get(), &workspace_);
  ++next_block_;
  if (metrics_tap_) metrics_tap_->observe(z);
  return z;
}

numeric::CMatrixF FadingStream::next_block_f32() {
  RFADE_EXPECTS(precision_ == Precision::Float32,
                "next_block_f32: stream was built with Precision::Float64");
  const telemetry::ScopedTimer timer(block_histogram_.get());
  random::Rng rng = random::block_substream(seed_, next_block_);
  numeric::CMatrixF z = emit_f32(sources_, rng, next_block_, next_instant(),
                                 batch_.get(), &workspace_);
  ++next_block_;
  if (metrics_tap_) metrics_tap_->observe(z);
  return z;
}

numeric::RMatrix FadingStream::next_envelope_block() {
  return numeric::elementwise_abs(next_block());
}

void FadingStream::seek(std::uint64_t block_index) {
  const telemetry::ScopedTimer timer(seek_histogram_.get());
  for (auto& source : sources_) {
    source->reset();
  }
  if (batch_) {
    batch_->reset();
  }
  if (design_->history_blocks() > 0 && block_index > 0) {
    replay(sources_, seed_, block_index - 1,
           precision_ == Precision::Float32);
  }
  next_block_ = block_index;
}

numeric::CMatrix FadingStream::generate_block(std::uint64_t seed,
                                              std::uint64_t block_index) const {
  if (precision_ == Precision::Float32) {
    return widen(generate_block_f32(seed, block_index));
  }
  SourceList sources = make_sources(seed);
  if (design_->history_blocks() > 0 && block_index > 0) {
    replay(sources, seed, block_index - 1, /*float32=*/false);
  }
  random::Rng rng = random::block_substream(seed, block_index);
  // Always the per-branch sources: the keyed path is the bit-reference
  // the batched cursor is pinned against.
  return emit(sources, rng, block_index, block_index * block_size(),
              /*batch=*/nullptr, /*workspace=*/nullptr);
}

numeric::CMatrixF FadingStream::generate_block_f32(
    std::uint64_t seed, std::uint64_t block_index) const {
  RFADE_EXPECTS(precision_ == Precision::Float32,
                "generate_block_f32: stream was built with "
                "Precision::Float64");
  SourceList sources = make_sources(seed);
  if (design_->history_blocks() > 0 && block_index > 0) {
    replay(sources, seed, block_index - 1, /*float32=*/true);
  }
  random::Rng rng = random::block_substream(seed, block_index);
  return emit_f32(sources, rng, block_index, block_index * block_size(),
                  /*batch=*/nullptr, /*workspace=*/nullptr);
}

numeric::RMatrix FadingStream::generate_envelope_block(
    std::uint64_t seed, std::uint64_t block_index) const {
  return numeric::elementwise_abs(generate_block(seed, block_index));
}

numeric::CMatrix FadingStream::generate_block_from(
    random::Rng& rng, std::uint64_t first_instant) const {
  RFADE_EXPECTS(backend() == doppler::StreamBackend::IndependentBlock,
                "generate_block_from: caller-rng blocks exist only for the "
                "independent-block backend (the continuous backends key "
                "their own randomness; use next_block/generate_block)");
  SourceList sources = make_sources(0);
  return emit(sources, rng, 0, first_instant, /*batch=*/nullptr,
              /*workspace=*/nullptr);
}

}  // namespace rfade::core
