#include "rfade/core/power.hpp"

#include <cmath>

#include "rfade/support/contracts.hpp"

namespace rfade::core {

namespace {
constexpr double kPi = 3.141592653589793238462643383279502884;
}

double gaussian_power_from_envelope_power(double envelope_variance) {
  RFADE_EXPECTS(envelope_variance > 0.0,
                "gaussian_power_from_envelope_power: variance must be > 0");
  return envelope_variance / kRayleighVarianceFactor;
}

double envelope_power_from_gaussian_power(double gaussian_power) {
  RFADE_EXPECTS(gaussian_power > 0.0,
                "envelope_power_from_gaussian_power: power must be > 0");
  return gaussian_power * kRayleighVarianceFactor;
}

double envelope_mean_from_gaussian_power(double gaussian_power) {
  RFADE_EXPECTS(gaussian_power > 0.0,
                "envelope_mean_from_gaussian_power: power must be > 0");
  return std::sqrt(gaussian_power) * std::sqrt(kPi) / 2.0;
}

double envelope_rms_from_gaussian_power(double gaussian_power) {
  RFADE_EXPECTS(gaussian_power > 0.0,
                "envelope_rms_from_gaussian_power: power must be > 0");
  return std::sqrt(gaussian_power);
}

}  // namespace rfade::core
