#include "rfade/core/mean_source.hpp"

#include <cmath>
#include <complex>
#include <utility>

#include "rfade/support/contracts.hpp"

namespace rfade::core {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

bool all_zero(const numeric::CVector& v) {
  for (const numeric::cdouble& x : v) {
    if (x != numeric::cdouble{}) {
      return false;
    }
  }
  return true;
}

bool all_zero(const numeric::CMatrix& m) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m.data()[i] != numeric::cdouble{}) {
      return false;
    }
  }
  return true;
}

void validate_frequency(double f) {
  RFADE_EXPECTS(std::isfinite(f) && std::abs(f) <= 0.5,
                "MeanSource: normalized frequency must be finite with "
                "|f| <= 0.5");
}

void validate_amplitudes(const numeric::CVector& amplitudes) {
  for (const numeric::cdouble& a : amplitudes) {
    RFADE_EXPECTS(std::isfinite(a.real()) && std::isfinite(a.imag()),
                  "MeanSource: amplitudes must be finite");
  }
}

/// e^{i 2 pi f l}, evaluated from the absolute instant.  Reducing
/// f * l mod 1 only after the full product rounds would cost ~ulp(f*l)
/// cycles of phase (noticeable past l ~ 2^40), so the instant is split
/// into 32-bit halves and each partial product reduced separately —
/// phase error stays ~2^-20 cycles at any l, and for l < 2^32 the result
/// is bit-identical to fmod(f * l, 1).
numeric::cdouble unit_phasor(double frequency, std::uint64_t instant) {
  const double hi = static_cast<double>(instant >> 32);
  const double lo = static_cast<double>(instant & 0xFFFFFFFFULL);
  const double cycles = std::fmod(
      std::fmod(frequency * hi, 1.0) * 4294967296.0 + frequency * lo, 1.0);
  return std::polar(1.0, kTwoPi * cycles);
}

}  // namespace

MeanSource::MeanSource(numeric::CVector constant_mean) {
  if (constant_mean.empty() || all_zero(constant_mean)) {
    return;  // zero mean: a K = 0 scenario stays on the Rayleigh path.
  }
  validate_amplitudes(constant_mean);
  kind_ = Kind::Constant;
  terms_.push_back(MeanPhasorTerm{std::move(constant_mean), 0.0});
}

MeanSource MeanSource::constant(numeric::CVector mean) {
  return MeanSource(std::move(mean));
}

MeanSource MeanSource::doppler_phasor(numeric::CVector amplitudes,
                                      double normalized_frequency) {
  return phasor_sum(
      {MeanPhasorTerm{std::move(amplitudes), normalized_frequency}});
}

MeanSource MeanSource::phasor_sum(std::vector<MeanPhasorTerm> terms) {
  MeanSource source;
  std::size_t dim = 0;
  bool any_nonzero = false;
  bool time_varying = false;
  for (const MeanPhasorTerm& term : terms) {
    validate_frequency(term.normalized_frequency);
    validate_amplitudes(term.amplitudes);
    RFADE_EXPECTS(!term.amplitudes.empty(),
                  "MeanSource: phasor term amplitudes must be non-empty");
    if (dim == 0) {
      dim = term.amplitudes.size();
    }
    RFADE_EXPECTS(term.amplitudes.size() == dim,
                  "MeanSource: all phasor terms must share one dimension");
    if (!all_zero(term.amplitudes)) {
      any_nonzero = true;
      if (term.normalized_frequency != 0.0) {
        time_varying = true;
      }
    }
  }
  if (!any_nonzero) {
    return source;  // zero mean
  }
  source.kind_ = time_varying ? Kind::Phasor : Kind::Constant;
  if (!time_varying && terms.size() > 1) {
    // Collapse static terms to one constant vector so the hot path stays
    // the single add loop of the constant-vector mean.
    numeric::CVector sum(dim);
    for (const MeanPhasorTerm& term : terms) {
      for (std::size_t j = 0; j < dim; ++j) {
        sum[j] += term.amplitudes[j];
      }
    }
    if (all_zero(sum)) {
      // Individually non-zero static terms can cancel exactly; the
      // result is the zero mean and must keep its fast path (and the
      // -0.0 bit-compatibility promise).
      source.kind_ = Kind::Zero;
      return source;
    }
    source.terms_.push_back(MeanPhasorTerm{std::move(sum), 0.0});
  } else {
    // Drop all-zero terms (e.g. the second TWDP wave at Delta = 0): each
    // stored term costs one sin/cos + N complex FMAs per generated row.
    for (MeanPhasorTerm& term : terms) {
      if (!all_zero(term.amplitudes)) {
        source.terms_.push_back(std::move(term));
      }
    }
  }
  return source;
}

MeanSource MeanSource::block(numeric::CMatrix mean_block) {
  RFADE_EXPECTS(mean_block.rows() > 0 && mean_block.cols() > 0,
                "MeanSource: mean block must be non-empty");
  for (std::size_t i = 0; i < mean_block.size(); ++i) {
    const numeric::cdouble& x = mean_block.data()[i];
    RFADE_EXPECTS(std::isfinite(x.real()) && std::isfinite(x.imag()),
                  "MeanSource: mean block entries must be finite");
  }
  MeanSource source;
  if (all_zero(mean_block)) {
    return source;
  }
  source.kind_ = Kind::Block;
  source.block_ = std::move(mean_block);
  return source;
}

std::size_t MeanSource::dimension() const noexcept {
  switch (kind_) {
    case Kind::Zero:
      return 0;
    case Kind::Block:
      return block_.cols();
    case Kind::Constant:
    case Kind::Phasor:
      return terms_.front().amplitudes.size();
  }
  return 0;
}

void MeanSource::mean_at(std::uint64_t instant,
                         std::span<numeric::cdouble> out) const {
  RFADE_EXPECTS(dimension() == 0 || out.size() == dimension(),
                "MeanSource: output size must equal dimension");
  for (numeric::cdouble& x : out) {
    x = numeric::cdouble{};
  }
  add_to_rows(instant, 1, out.size(), out.data());
}

numeric::CVector MeanSource::mean_at_instant(std::uint64_t instant,
                                             std::size_t dimension) const {
  numeric::CVector out(dimension);
  mean_at(instant, out);
  return out;
}

void MeanSource::add_to_rows(std::uint64_t first_instant, std::size_t rows,
                             std::size_t n, numeric::cdouble* out) const {
  RFADE_EXPECTS(kind_ == Kind::Zero || n == dimension(),
                "MeanSource: row width must equal the mean dimension");
  switch (kind_) {
    case Kind::Zero:
      return;
    case Kind::Constant: {
      // Exactly the constant-vector add pass: one complex add per entry,
      // in the same order — bit-identical to the pre-MeanSource pipeline.
      const numeric::cdouble* m = terms_.front().amplitudes.data();
      for (std::size_t t = 0; t < rows; ++t) {
        numeric::cdouble* row = out + t * n;
        for (std::size_t j = 0; j < n; ++j) {
          row[j] += m[j];
        }
      }
      return;
    }
    case Kind::Phasor: {
      for (const MeanPhasorTerm& term : terms_) {
        const numeric::cdouble* a = term.amplitudes.data();
        for (std::size_t t = 0; t < rows; ++t) {
          const numeric::cdouble rot =
              unit_phasor(term.normalized_frequency, first_instant + t);
          numeric::cdouble* row = out + t * n;
          for (std::size_t j = 0; j < n; ++j) {
            row[j] += a[j] * rot;
          }
        }
      }
      return;
    }
    case Kind::Block: {
      const std::size_t period = block_.rows();
      for (std::size_t t = 0; t < rows; ++t) {
        const std::size_t l =
            static_cast<std::size_t>((first_instant + t) % period);
        const numeric::cdouble* m = block_.data() + l * block_.cols();
        numeric::cdouble* row = out + t * n;
        for (std::size_t j = 0; j < n; ++j) {
          row[j] += m[j];
        }
      }
      return;
    }
  }
}

}  // namespace rfade::core
