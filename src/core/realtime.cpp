#include "rfade/core/realtime.hpp"

#include <cmath>
#include <vector>

#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/parallel.hpp"

namespace rfade::core {

namespace {

PipelineOptions realtime_pipeline_options(const RealTimeOptions& options) {
  PipelineOptions pipeline;
  pipeline.mean_offset = options.los_mean;
  return pipeline;
}

}  // namespace

RealTimeGenerator::RealTimeGenerator(numeric::CMatrix desired_covariance,
                                     RealTimeOptions options)
    : RealTimeGenerator(ColoringPlan::create(std::move(desired_covariance),
                                             options.coloring),
                        options) {}

RealTimeGenerator::RealTimeGenerator(std::shared_ptr<const ColoringPlan> plan,
                                     RealTimeOptions options)
    : pipeline_(std::move(plan), realtime_pipeline_options(options)),
      branch_(options.idft_size, options.normalized_doppler,
              options.input_variance_per_dim),
      parallel_branches_(options.parallel_branches) {
  // Proposed (Sec. 5 step 6): divide by the Eq. (19) post-filter variance.
  // Flawed mode (ref. [6]): divide by the input complex variance
  // 2 sigma_orig^2, as if the Doppler filter did not change the power.
  assumed_variance_ =
      options.variance_handling == VarianceHandling::AnalyticCorrection
          ? branch_.output_variance()
          : 2.0 * options.input_variance_per_dim;
}

numeric::CMatrix RealTimeGenerator::generate_block(
    random::Rng& rng, std::uint64_t first_instant) const {
  const std::size_t n = pipeline_.dimension();
  const std::size_t m = branch_.block_size();

  // Spectra are drawn branch-by-branch in a fixed serial order — the rng
  // consumption order never depends on thread count.
  std::vector<numeric::CVector> spectra(n);
  for (std::size_t j = 0; j < n; ++j) {
    spectra[j] = branch_.draw_spectrum(rng);
  }

  // The IDFTs are pure and independent: synthesize branches concurrently.
  std::vector<numeric::CVector> outputs(n);
  support::parallel_for_chunked(
      n,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        for (std::size_t j = begin; j < end; ++j) {
          outputs[j] = branch_.synthesize(spectra[j]);
        }
      },
      {/*chunk_size=*/1, /*serial=*/!parallel_branches_});

  // W row l is the vector (u_1[l] ... u_N[l]); the step-6 normalisation
  // 1/sigma_g is folded into this transpose pass (same scale-then-color
  // order, hence the same bits, as scaling inside color_block), then every
  // time instant is colored with L: Z_l = L W_l / sigma_g (steps 7-8).
  const double inv_sigma = 1.0 / std::sqrt(assumed_variance_);
  numeric::CMatrix w(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    const numeric::CVector& u = outputs[j];
    for (std::size_t l = 0; l < m; ++l) {
      w(l, j) = u[l] * inv_sigma;
    }
  }
  return pipeline_.color_block(w, 1.0, first_instant);
}

numeric::RMatrix RealTimeGenerator::generate_envelope_block(
    random::Rng& rng, std::uint64_t first_instant) const {
  return numeric::elementwise_abs(generate_block(rng, first_instant));
}

}  // namespace rfade::core
