#include "rfade/core/realtime.hpp"

#include <cmath>

#include "rfade/core/covariance_spec.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::core {

RealTimeGenerator::RealTimeGenerator(numeric::CMatrix desired_covariance,
                                     RealTimeOptions options)
    : dim_(desired_covariance.rows()),
      desired_(std::move(desired_covariance)),
      branch_(options.idft_size, options.normalized_doppler,
              options.input_variance_per_dim) {
  validate_covariance_matrix(desired_);
  coloring_ = compute_coloring(desired_, options.coloring);
  // Proposed (Sec. 5 step 6): divide by the Eq. (19) post-filter variance.
  // Flawed mode (ref. [6]): divide by the input complex variance
  // 2 sigma_orig^2, as if the Doppler filter did not change the power.
  assumed_variance_ =
      options.variance_handling == VarianceHandling::AnalyticCorrection
          ? branch_.output_variance()
          : 2.0 * options.input_variance_per_dim;
}

numeric::CMatrix RealTimeGenerator::generate_block(random::Rng& rng) const {
  const std::size_t m = branch_.block_size();
  // Branch outputs u_j[0..M-1], one row per branch.
  numeric::CMatrix branch_outputs(dim_, m);
  for (std::size_t j = 0; j < dim_; ++j) {
    const numeric::CVector u = branch_.generate_block(rng);
    for (std::size_t l = 0; l < m; ++l) {
      branch_outputs(j, l) = u[l];
    }
  }

  // Color each time instant: Z_l = L W_l / sigma_g (steps 7-8).
  const double inv_sigma = 1.0 / std::sqrt(assumed_variance_);
  const numeric::CMatrix& l_mat = coloring_.matrix;
  numeric::CMatrix block(m, dim_, numeric::cdouble{});
  for (std::size_t l = 0; l < m; ++l) {
    for (std::size_t j = 0; j < dim_; ++j) {
      const numeric::cdouble w = branch_outputs(j, l) * inv_sigma;
      for (std::size_t i = 0; i < dim_; ++i) {
        block(l, i) += l_mat(i, j) * w;
      }
    }
  }
  return block;
}

numeric::RMatrix RealTimeGenerator::generate_envelope_block(
    random::Rng& rng) const {
  const numeric::CMatrix block = generate_block(rng);
  numeric::RMatrix envelopes(block.rows(), block.cols());
  for (std::size_t l = 0; l < block.rows(); ++l) {
    for (std::size_t j = 0; j < block.cols(); ++j) {
      envelopes(l, j) = std::abs(block(l, j));
    }
  }
  return envelopes;
}

}  // namespace rfade::core
