#include "rfade/core/realtime.hpp"

#include <utility>

#include "rfade/numeric/matrix_ops.hpp"

namespace rfade::core {

namespace {

FadingStreamOptions realtime_stream_options(const RealTimeOptions& options) {
  FadingStreamOptions stream;
  stream.backend = doppler::StreamBackend::IndependentBlock;
  stream.idft_size = options.idft_size;
  stream.normalized_doppler = options.normalized_doppler;
  stream.input_variance_per_dim = options.input_variance_per_dim;
  stream.variance_handling = options.variance_handling;
  stream.los_mean = options.los_mean;
  stream.coloring = options.coloring;
  stream.parallel_branches = options.parallel_branches;
  return stream;
}

}  // namespace

RealTimeGenerator::RealTimeGenerator(numeric::CMatrix desired_covariance,
                                     RealTimeOptions options)
    : stream_(std::move(desired_covariance), realtime_stream_options(options)) {
}

RealTimeGenerator::RealTimeGenerator(std::shared_ptr<const ColoringPlan> plan,
                                     RealTimeOptions options)
    : stream_(std::move(plan), realtime_stream_options(options)) {}

numeric::RMatrix RealTimeGenerator::generate_envelope_block(
    random::Rng& rng, std::uint64_t first_instant) const {
  return numeric::elementwise_abs(generate_block(rng, first_instant));
}

}  // namespace rfade::core
