#include "rfade/core/envelope_correlation.hpp"

#include <cmath>

#include "rfade/core/covariance_spec.hpp"
#include "rfade/special/hypergeometric.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::core {

namespace {
constexpr double kPi = 3.141592653589793238462643383279502884;
constexpr double kVarianceFactor = 1.0 - kPi / 4.0;

double envelope_correlation_from_rho_squared(double rho_sq) {
  const double f = special::hypergeometric_2f1(-0.5, -0.5, 1.0, rho_sq);
  return (kPi / 4.0) * (f - 1.0) / kVarianceFactor;
}
}  // namespace

double envelope_correlation_from_gaussian(numeric::cdouble mu_kj,
                                          double power_k, double power_j) {
  RFADE_EXPECTS(power_k > 0.0 && power_j > 0.0,
                "envelope_correlation: powers must be positive");
  const double rho_sq = std::norm(mu_kj) / (power_k * power_j);
  RFADE_EXPECTS(rho_sq <= 1.0 + 1e-12,
                "envelope_correlation: |mu| must be <= sqrt(p_k p_j)");
  return envelope_correlation_from_rho_squared(std::min(rho_sq, 1.0));
}

numeric::RMatrix envelope_correlation_matrix(const numeric::CMatrix& k) {
  validate_covariance_matrix(k);
  const std::size_t n = k.rows();
  numeric::RMatrix rho(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double value = envelope_correlation_from_gaussian(
          k(i, j), k(i, i).real(), k(j, j).real());
      rho(i, j) = value;
      rho(j, i) = value;
    }
  }
  return rho;
}

double gaussian_correlation_for_envelope_correlation(double rho_env) {
  RFADE_EXPECTS(rho_env >= 0.0 && rho_env <= 1.0,
                "inverse envelope correlation: rho_env must be in [0, 1]");
  if (rho_env == 0.0) {
    return 0.0;
  }
  if (rho_env >= 1.0) {
    return 1.0;
  }
  // The forward map is strictly increasing in rho^2: plain bisection.
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (envelope_correlation_from_rho_squared(mid * mid) < rho_env) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-14) {
      break;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace rfade::core
