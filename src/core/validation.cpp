#include "rfade/core/validation.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "rfade/core/power.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/stats/distributions.hpp"
#include "rfade/stats/ks_test.hpp"
#include "rfade/stats/moments.hpp"
#include "rfade/support/parallel.hpp"

namespace rfade::core {

namespace {

/// Per-chunk accumulation state, merged deterministically in chunk order.
struct ChunkState {
  explicit ChunkState(std::size_t dim)
      : covariance(dim), envelope_stats(dim), ks_reservoir(dim) {}

  stats::CovarianceAccumulator covariance;
  std::vector<stats::RunningStats> envelope_stats;
  std::vector<numeric::RVector> ks_reservoir;
};

}  // namespace

ValidationReport validate_generator(const EnvelopeGenerator& generator,
                                    const ValidationOptions& options) {
  const std::size_t n = generator.dimension();
  const support::ChunkingOptions chunking{options.chunk_size,
                                          !options.parallel};
  const std::size_t chunks = support::chunk_count(options.samples, chunking);
  const std::size_t ks_per_chunk =
      chunks == 0 ? 0
                  : (options.ks_samples_per_branch + chunks - 1) / chunks;

  std::vector<ChunkState> states;
  states.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    states.emplace_back(n);
  }

  const random::Rng root(options.seed);
  support::parallel_for_chunked(
      options.samples,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        random::Rng rng = root.fork_stream(chunk + 1);
        ChunkState& state = states[chunk];
        // Draw the whole chunk through the batched pipeline path — one
        // blocked GEMM instead of per-draw matvecs, bit-identical to the
        // per-draw loop (same rng order, same accumulation order).
        const numeric::CMatrix block =
            generator.pipeline().sample_block(end - begin, rng);
        numeric::CVector z(n);
        for (std::size_t t = begin; t < end; ++t) {
          const numeric::cdouble* row = block.data() + (t - begin) * n;
          z.assign(row, row + n);
          state.covariance.add(z);
          const bool keep_for_ks = (t - begin) < ks_per_chunk;
          for (std::size_t j = 0; j < n; ++j) {
            const double r = std::abs(z[j]);
            state.envelope_stats[j].add(r);
            if (keep_for_ks) {
              state.ks_reservoir[j].push_back(r);
            }
          }
        }
      },
      chunking);

  // Deterministic merge in chunk order.
  ChunkState total(n);
  for (const ChunkState& state : states) {
    total.covariance.merge(state.covariance);
    for (std::size_t j = 0; j < n; ++j) {
      total.envelope_stats[j].merge(state.envelope_stats[j]);
      total.ks_reservoir[j].insert(total.ks_reservoir[j].end(),
                                   state.ks_reservoir[j].begin(),
                                   state.ks_reservoir[j].end());
    }
  }

  ValidationReport report;
  report.samples = options.samples;
  report.sample_covariance = total.covariance.covariance();
  report.covariance_rel_error = stats::relative_frobenius_error(
      report.sample_covariance, generator.effective_covariance());

  report.envelope_mean_rel_error.resize(n);
  report.envelope_variance_rel_error.resize(n);
  report.ks_p_values.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double power = generator.effective_covariance()(j, j).real();
    const double expected_mean = envelope_mean_from_gaussian_power(power);
    const double expected_var = envelope_power_from_gaussian_power(power);
    report.envelope_mean_rel_error[j] =
        std::abs(total.envelope_stats[j].mean() - expected_mean) /
        expected_mean;
    report.envelope_variance_rel_error[j] =
        std::abs(total.envelope_stats[j].variance() - expected_var) /
        expected_var;
    const stats::RayleighDistribution rayleigh =
        stats::RayleighDistribution::from_gaussian_power(power);
    const stats::KsResult ks = stats::ks_test(
        total.ks_reservoir[j],
        [&rayleigh](double r) { return rayleigh.cdf(r); });
    report.ks_p_values[j] = ks.p_value;
  }
  report.worst_ks_p_value =
      *std::min_element(report.ks_p_values.begin(), report.ks_p_values.end());
  return report;
}

}  // namespace rfade::core
