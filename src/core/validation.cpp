#include "rfade/core/validation.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "rfade/core/power.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/stats/distributions.hpp"
#include "rfade/stats/ks_test.hpp"
#include "rfade/stats/moments.hpp"
#include "rfade/support/contracts.hpp"
#include "rfade/support/parallel.hpp"

namespace rfade::core {

namespace {

/// Per-chunk accumulation state, merged deterministically in chunk order.
struct ChunkState {
  explicit ChunkState(std::size_t dim)
      : covariance(dim), envelope_stats(dim), ks_reservoir(dim) {}

  stats::CovarianceAccumulator covariance;
  std::vector<stats::RunningStats> envelope_stats;
  std::vector<numeric::RVector> ks_reservoir;
};

}  // namespace

ValidationReport validate_generator(const EnvelopeGenerator& generator,
                                    const ValidationOptions& options) {
  const std::size_t n = generator.dimension();
  const support::ChunkingOptions chunking{options.chunk_size,
                                          !options.parallel};
  const std::size_t chunks = support::chunk_count(options.samples, chunking);
  const std::size_t ks_per_chunk =
      chunks == 0 ? 0
                  : (options.ks_samples_per_branch + chunks - 1) / chunks;

  std::vector<ChunkState> states;
  states.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    states.emplace_back(n);
  }

  const random::Rng root(options.seed);
  support::parallel_for_chunked(
      options.samples,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        random::Rng rng = root.fork_stream(chunk + 1);
        ChunkState& state = states[chunk];
        // Draw the whole chunk through the batched pipeline path — one
        // blocked GEMM instead of per-draw matvecs, bit-identical to the
        // per-draw loop (same rng order, same accumulation order).
        const numeric::CMatrix block =
            generator.pipeline().sample_block(end - begin, rng);
        numeric::CVector z(n);
        for (std::size_t t = begin; t < end; ++t) {
          const numeric::cdouble* row = block.data() + (t - begin) * n;
          z.assign(row, row + n);
          state.covariance.add(z);
          const bool keep_for_ks = (t - begin) < ks_per_chunk;
          for (std::size_t j = 0; j < n; ++j) {
            const double r = std::abs(z[j]);
            state.envelope_stats[j].add(r);
            if (keep_for_ks) {
              state.ks_reservoir[j].push_back(r);
            }
          }
        }
      },
      chunking);

  // Deterministic merge in chunk order.
  ChunkState total(n);
  for (const ChunkState& state : states) {
    total.covariance.merge(state.covariance);
    for (std::size_t j = 0; j < n; ++j) {
      total.envelope_stats[j].merge(state.envelope_stats[j]);
      total.ks_reservoir[j].insert(total.ks_reservoir[j].end(),
                                   state.ks_reservoir[j].begin(),
                                   state.ks_reservoir[j].end());
    }
  }

  ValidationReport report;
  report.samples = options.samples;
  report.sample_covariance = total.covariance.covariance();
  report.covariance_rel_error = stats::relative_frobenius_error(
      report.sample_covariance, generator.effective_covariance());

  report.envelope_mean_rel_error.resize(n);
  report.envelope_variance_rel_error.resize(n);
  report.ks_p_values.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double power = generator.effective_covariance()(j, j).real();
    const double expected_mean = envelope_mean_from_gaussian_power(power);
    const double expected_var = envelope_power_from_gaussian_power(power);
    report.envelope_mean_rel_error[j] =
        std::abs(total.envelope_stats[j].mean() - expected_mean) /
        expected_mean;
    report.envelope_variance_rel_error[j] =
        std::abs(total.envelope_stats[j].variance() - expected_var) /
        expected_var;
    const stats::RayleighDistribution rayleigh =
        stats::RayleighDistribution::from_gaussian_power(power);
    const stats::KsResult ks = stats::ks_test(
        total.ks_reservoir[j],
        [&rayleigh](double r) { return rayleigh.cdf(r); });
    report.ks_p_values[j] = ks.p_value;
  }
  report.worst_ks_p_value =
      *std::min_element(report.ks_p_values.begin(), report.ks_p_values.end());
  return report;
}

namespace {

/// Per-chunk accumulation for the envelope-domain validator.
struct EnvelopeChunkState {
  explicit EnvelopeChunkState(std::size_t dim)
      : envelope_stats(dim), ks_reservoir(dim) {}

  std::vector<stats::RunningStats> envelope_stats;
  std::vector<numeric::RVector> ks_reservoir;
};

}  // namespace

EnvelopeValidationReport validate_envelope_source(
    std::size_t dimension, const EnvelopeBlockSource& source,
    std::span<const EnvelopeMarginal> marginals,
    const ValidationOptions& options) {
  RFADE_EXPECTS(dimension > 0, "validate_envelope_source: dimension == 0");
  RFADE_EXPECTS(marginals.size() == dimension,
                "validate_envelope_source: one marginal per branch required");
  for (const EnvelopeMarginal& marginal : marginals) {
    RFADE_EXPECTS(marginal.mean > 0.0 && marginal.variance > 0.0,
                  "validate_envelope_source: marginal moments must be "
                  "positive");
    RFADE_EXPECTS(static_cast<bool>(marginal.cdf),
                  "validate_envelope_source: marginal cdf must be set");
  }
  const support::ChunkingOptions chunking{options.chunk_size,
                                          !options.parallel};
  const std::size_t chunks = support::chunk_count(options.samples, chunking);
  const std::size_t ks_per_chunk =
      chunks == 0 ? 0
                  : (options.ks_samples_per_branch + chunks - 1) / chunks;

  std::vector<EnvelopeChunkState> states;
  states.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    states.emplace_back(dimension);
  }

  support::parallel_for_chunked(
      options.samples,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        const numeric::RMatrix block = source(end - begin, options.seed, chunk);
        RFADE_EXPECTS(block.rows() == end - begin &&
                          block.cols() == dimension,
                      "validate_envelope_source: block shape mismatch");
        EnvelopeChunkState& state = states[chunk];
        for (std::size_t t = 0; t < block.rows(); ++t) {
          const bool keep_for_ks = t < ks_per_chunk;
          for (std::size_t j = 0; j < dimension; ++j) {
            const double r = block(t, j);
            state.envelope_stats[j].add(r);
            if (keep_for_ks) {
              state.ks_reservoir[j].push_back(r);
            }
          }
        }
      },
      chunking);

  // Deterministic merge in chunk order.
  EnvelopeChunkState total(dimension);
  for (const EnvelopeChunkState& state : states) {
    for (std::size_t j = 0; j < dimension; ++j) {
      total.envelope_stats[j].merge(state.envelope_stats[j]);
      total.ks_reservoir[j].insert(total.ks_reservoir[j].end(),
                                   state.ks_reservoir[j].begin(),
                                   state.ks_reservoir[j].end());
    }
  }

  EnvelopeValidationReport report;
  report.samples = options.samples;
  report.measured_mean.resize(dimension);
  report.measured_variance.resize(dimension);
  report.mean_rel_error.resize(dimension);
  report.variance_rel_error.resize(dimension);
  report.second_moment_rel_error.resize(dimension);
  report.ks_p_values.resize(dimension);
  for (std::size_t j = 0; j < dimension; ++j) {
    const EnvelopeMarginal& expected = marginals[j];
    const stats::RunningStats& measured = total.envelope_stats[j];
    const double expected_m2 =
        expected.mean * expected.mean + expected.variance;
    const double measured_m2 =
        measured.variance() + measured.mean() * measured.mean();
    report.measured_mean[j] = measured.mean();
    report.measured_variance[j] = measured.variance();
    report.mean_rel_error[j] =
        std::abs(measured.mean() - expected.mean) / expected.mean;
    report.variance_rel_error[j] =
        std::abs(measured.variance() - expected.variance) / expected.variance;
    report.second_moment_rel_error[j] =
        std::abs(measured_m2 - expected_m2) / expected_m2;
    const stats::KsResult ks =
        stats::ks_test(total.ks_reservoir[j], expected.cdf);
    report.ks_p_values[j] = ks.p_value;
    report.max_mean_rel_error =
        std::max(report.max_mean_rel_error, report.mean_rel_error[j]);
    report.max_variance_rel_error =
        std::max(report.max_variance_rel_error, report.variance_rel_error[j]);
    report.max_second_moment_rel_error =
        std::max(report.max_second_moment_rel_error,
                 report.second_moment_rel_error[j]);
  }
  report.worst_ks_p_value =
      *std::min_element(report.ks_p_values.begin(), report.ks_p_values.end());
  return report;
}

EnvelopeValidationReport validate_envelopes(
    const SamplePipeline& pipeline, std::span<const EnvelopeMarginal> marginals,
    const ValidationOptions& options) {
  return validate_envelope_source(
      pipeline.dimension(),
      [&pipeline](std::size_t count, std::uint64_t seed,
                  std::uint64_t block_index) {
        return numeric::elementwise_abs(
            pipeline.sample_block(count, seed, block_index));
      },
      marginals, options);
}

}  // namespace rfade::core
