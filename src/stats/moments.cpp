#include "rfade/stats/moments.hpp"

#include <cmath>

#include "rfade/support/contracts.hpp"

namespace rfade::stats {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
}

double RunningStats::variance() const noexcept {
  return count_ < 1 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  RunningStats acc;
  for (const double x : xs) {
    acc.add(x);
  }
  return acc.mean();
}

double variance(std::span<const double> xs) {
  RunningStats acc;
  for (const double x : xs) {
    acc.add(x);
  }
  return acc.variance();
}

double mean_power(std::span<const numeric::cdouble> zs) {
  if (zs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const numeric::cdouble& z : zs) {
    sum += std::norm(z);
  }
  return sum / static_cast<double>(zs.size());
}

double quantile_sorted(std::span<const double> sorted, double p) {
  RFADE_EXPECTS(!sorted.empty(), "quantile_sorted: empty data");
  RFADE_EXPECTS(p >= 0.0 && p <= 1.0, "quantile_sorted: p must be in [0,1]");
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double position = p * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  if (lower + 1 >= sorted.size()) {
    return sorted.back();
  }
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

double pearson_correlation(std::span<const double> a,
                           std::span<const double> b) {
  RFADE_EXPECTS(a.size() == b.size(), "pearson_correlation: length mismatch");
  RFADE_EXPECTS(a.size() >= 2, "pearson_correlation: need >= 2 points");
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  const double denom = std::sqrt(saa * sbb);
  return denom == 0.0 ? 0.0 : sab / denom;
}

}  // namespace rfade::stats
