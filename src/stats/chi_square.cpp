#include "rfade/stats/chi_square.hpp"

#include <algorithm>
#include <vector>

#include "rfade/special/gamma.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::stats {

ChiSquareResult chi_square_gof(const numeric::RVector& samples,
                               const std::function<double(double)>& quantile,
                               std::size_t bins) {
  RFADE_EXPECTS(bins >= 2, "chi_square_gof: need at least 2 bins");
  RFADE_EXPECTS(samples.size() >= 5 * bins,
                "chi_square_gof: need >= 5 samples per bin");

  // Equal-probability bin edges from the analytic quantile function.
  std::vector<double> edges(bins - 1);
  for (std::size_t b = 1; b < bins; ++b) {
    edges[b - 1] =
        quantile(static_cast<double>(b) / static_cast<double>(bins));
  }

  std::vector<std::size_t> counts(bins, 0);
  for (const double x : samples) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), x);
    ++counts[static_cast<std::size_t>(it - edges.begin())];
  }

  const double expected =
      static_cast<double>(samples.size()) / static_cast<double>(bins);
  double statistic = 0.0;
  for (const std::size_t observed : counts) {
    const double delta = static_cast<double>(observed) - expected;
    statistic += delta * delta / expected;
  }

  ChiSquareResult result;
  result.statistic = statistic;
  result.bins = bins;
  result.dof = bins - 1;
  result.p_value =
      special::chi_square_survival(statistic, static_cast<double>(result.dof));
  return result;
}

}  // namespace rfade::stats
