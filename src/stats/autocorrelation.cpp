#include "rfade/stats/autocorrelation.hpp"

#include <cmath>

#include "rfade/fft/fft.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::stats {

namespace {

double weight(std::size_t n, std::size_t lag, AutocorrMode mode) {
  return mode == AutocorrMode::Biased
             ? static_cast<double>(n)
             : static_cast<double>(n - lag);
}

}  // namespace

numeric::CVector autocorrelation(const numeric::CVector& x,
                                 std::size_t max_lag, AutocorrMode mode) {
  const std::size_t n = x.size();
  RFADE_EXPECTS(n > 0, "autocorrelation: empty input");
  RFADE_EXPECTS(max_lag < n, "autocorrelation: max_lag must be < n");

  // Zero-pad to at least 2n so the circular convolution is linear.
  std::size_t padded = 1;
  while (padded < 2 * n) {
    padded <<= 1;
  }
  numeric::CVector work(padded, numeric::cdouble{});
  for (std::size_t i = 0; i < n; ++i) {
    work[i] = x[i];
  }
  fft::fft_pow2_inplace(work, fft::Direction::Forward);
  for (auto& value : work) {
    value = numeric::cdouble(std::norm(value), 0.0);
  }
  fft::fft_pow2_inplace(work, fft::Direction::Inverse);

  numeric::CVector r(max_lag + 1);
  const double inv_padded = 1.0 / static_cast<double>(padded);
  for (std::size_t d = 0; d <= max_lag; ++d) {
    r[d] = work[d] * inv_padded / weight(n, d, mode);
  }
  return r;
}

numeric::RVector normalized_autocorrelation(const numeric::CVector& x,
                                            std::size_t max_lag,
                                            AutocorrMode mode) {
  const numeric::CVector r = autocorrelation(x, max_lag, mode);
  const double r0 = r[0].real();
  RFADE_EXPECTS(r0 > 0.0, "normalized_autocorrelation: zero power input");
  numeric::RVector rho(r.size());
  for (std::size_t d = 0; d < r.size(); ++d) {
    rho[d] = r[d].real() / r0;
  }
  return rho;
}

numeric::CVector autocorrelation_direct(const numeric::CVector& x,
                                        std::size_t max_lag,
                                        AutocorrMode mode) {
  const std::size_t n = x.size();
  RFADE_EXPECTS(n > 0, "autocorrelation_direct: empty input");
  RFADE_EXPECTS(max_lag < n, "autocorrelation_direct: max_lag must be < n");
  numeric::CVector r(max_lag + 1, numeric::cdouble{});
  for (std::size_t d = 0; d <= max_lag; ++d) {
    numeric::cdouble acc{};
    for (std::size_t l = 0; l + d < n; ++l) {
      acc += x[l + d] * std::conj(x[l]);
    }
    r[d] = acc / weight(n, d, mode);
  }
  return r;
}

}  // namespace rfade::stats
